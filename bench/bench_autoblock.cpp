// A3 (ablation): does the §6 machine model pick the right blocking factor?
// Runs selectblock (analytic candidates + cache-simulator sweep over a
// coverage grid) on the LU "2+" and pivoted "1+" derivations and checks the
// auto-chosen KS lands within tolerance of the exhaustive-sweep optimum.
// Writes the model-vs-sweep evidence to --bench_json (default
// BENCH_model.json); exits 1 when a choice misses the band — CI runs this
// binary as the acceptance gate for the model.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/benchutil.hpp"
#include "lang/parser.hpp"
#include "model/model.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"

namespace {

constexpr double kTolerance = 0.10;

const char* kLuSource = R"(PARAMETER N
REAL*8 A(N,N)
DO K = 1, N-1
  DO I = K+1, N
    10: A(I,K) = A(I,K)/A(K,K)
  ENDDO
  DO J = K+1, N
    DO I = K+1, N
      20: A(I,J) = A(I,J) - A(I,K)*A(K,J)
    ENDDO
  ENDDO
ENDDO
)";

const char* kLuPivotSource = R"(PARAMETER N
REAL*8 A(N,N)
REAL*8 IMAX, TAU
DO K = 1, N-1
  IMAX = K
  DO I = K+1, N
    IF (ABS(A(I,K)) .GT. ABS(A(IMAX,K))) THEN
      IMAX = I
    ENDIF
  ENDDO
  DO J = 1, N
    TAU = A(K,J)
    25: A(K,J) = A(IMAX,J)
    30: A(IMAX,J) = TAU
  ENDDO
  DO I = K+1, N
    20: A(I,K) = A(I,K)/A(K,K)
  ENDDO
  DO J = K+1, N
    DO I = K+1, N
      10: A(I,J) = A(I,J) - A(I,K)*A(K,J)
    ENDDO
  ENDDO
ENDDO
)";

struct Case {
  const char* name;
  const char* source;
  const char* spec;
};

// "2+" register-blocks the update nests after blocking; pivoted "1+"
// needs the §5.2 commutativity matcher to distribute across the pivot.
const Case kCases[] = {
    {"LU 2+", kLuSource, "selectblock(grid); autoblockplus(b=KS)"},
    {"Pivoted LU 1+", kLuPivotSource,
     "selectblock(grid); autoblock(b=KS, commutativity)"},
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      blk::bench::extract_json_path(argc, argv, "BENCH_model.json");

  // Small L1 keeps the probe size (and so the sweep) benchmark-friendly.
  std::vector<blk::cachesim::CacheConfig> machine = {
      blk::model::parse_cache_config("16K/64B/4")};

  blk::bench::Table t({"program", "analytic KS", "chosen KS", "sweep opt",
                       "chosen miss", "optimum miss", "within 10%"});
  std::vector<std::pair<std::string, blk::model::BlockChoice>> results;
  int status = 0;

  for (const Case& c : kCases) {
    blk::lang::CompileResult cr = blk::lang::compile(c.source);
    blk::pm::Pipeline pipe = blk::pm::parse_pipeline(c.spec);
    blk::analysis::Assumptions hints;
    blk::pm::PipelineContext ctx(cr.program, hints);
    ctx.machine = machine;
    blk::pm::run_pipeline(pipe, ctx);
    if (!ctx.block_choice) {
      std::fprintf(stderr, "%s: selectblock produced no choice\n", c.name);
      return 1;
    }
    const blk::model::BlockChoice& bc = *ctx.block_choice;
    char chosen[32], best[32];
    std::snprintf(chosen, sizeof chosen, "%.6f", bc.chosen_metric);
    std::snprintf(best, sizeof best, "%.6f", bc.best_swept_metric);
    bool ok = bc.within_tolerance(kTolerance);
    t.row({c.name, std::to_string(bc.analytic_ks), std::to_string(bc.ks),
           std::to_string(bc.best_swept_ks), chosen, best,
           ok ? "yes" : "NO"});
    if (!ok) status = 1;
    results.emplace_back(c.name, bc);
  }

  t.print("A3: machine-model KS choice vs exhaustive sweep "
          "(simulated 16K/64B/4 L1; §6's claim that the compiler can own "
          "the factor)");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_json: cannot open %s\n",
                   json_path.c_str());
      return status ? status : 1;
    }
    out << "{\n  \"tolerance\": " << kTolerance << ",\n"
        << "  \"programs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << "    {\"name\": \"" << results[i].first << "\",\n"
          << "     \"choice\": " << results[i].second.to_json() << "}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }
  return status;
}
