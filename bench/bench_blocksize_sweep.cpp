// A2 (ablation): block-size sweep for the optimized LU kernels ("2+" and
// pivoted "1+") on the host — the design-choice study behind the paper's
// fixed KS in {32, 64}, and the data the §6 machine model's choice should
// roughly match.
#include "bench/benchutil.hpp"
#include "kernels/lu.hpp"
#include "kernels/lu_pivot.hpp"

namespace {

using namespace blk::kernels;

void BM_NoPivOpt(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0 = random_diag_dominant(n, 23);
  Matrix a = a0;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    lu_block_opt(a, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

void BM_PivotOpt(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 24);
  Matrix a = a0;
  std::vector<std::size_t> piv;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    lu_pivot_block_opt(a, piv, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

constexpr long kBlocks[] = {8, 16, 32, 64, 128};

void BM_NoPivOptParallel(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0 = random_diag_dominant(n, 23);
  Matrix a = a0;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    lu_block_opt_parallel(a, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

void register_all() {
  for (long ks : kBlocks) {
    benchmark::RegisterBenchmark("BM_NoPivOpt", BM_NoPivOpt)
        ->Args({500, ks});
    benchmark::RegisterBenchmark("BM_NoPivOptParallel", BM_NoPivOptParallel)
        ->Args({500, ks})
        ->UseRealTime();
    benchmark::RegisterBenchmark("BM_PivotOpt", BM_PivotOpt)
        ->Args({500, ks});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"KS", "LU 2+ (N=500)", "2+ parallel J (A4)",
                       "Pivoted 1+ (N=500)"});
  for (long ks : kBlocks) {
    std::string sfx = "/500/" + std::to_string(ks);
    t.row({std::to_string(ks),
           blk::bench::fmt_time(rep.get("BM_NoPivOpt" + sfx)),
           blk::bench::fmt_time(
               rep.get("BM_NoPivOptParallel" + sfx + "/real_time")),
           blk::bench::fmt_time(rep.get("BM_PivotOpt" + sfx))});
  }
  t.print("A2/A4: block-size sweep plus the parallel trailing update "
          "(5.1's increased-parallelism remark; needs a multicore host to "
          "show a speedup)");
  return 0;
}
