// A1 (machine-independent stand-in for the paper's RS/6000 timings): run
// the point and automatically blocked LU through the cache simulator at
// several matrix sizes and cache geometries and report miss ratios.  This
// regenerates the *memory* behaviour behind every timing table without
// depending on the host's hierarchy.
#include <cstdio>

#include "bench/benchutil.hpp"
#include "cachesim/cache.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"
#include "lang/machine.hpp"
#include "transform/blocking.hpp"

namespace {

using namespace blk;
using namespace blk::ir;
using namespace blk::ir::dsl;

Program blocked_lu() {
  Program p = kernels::lu_point_ir();
  p.param("KS");
  analysis::Assumptions hints;
  hints.assert_le(v("K") + v("KS") - 1, v("N") - 1);
  auto res = transform::auto_block(p, p.body[0]->as_loop(), ivar("KS"),
                                   hints);
  if (!res.blocked) std::fprintf(stderr, "auto_block failed!\n");
  return p;
}

}  // namespace

int main() {
  Program point = kernels::lu_point_ir();
  Program blocked = blocked_lu();

  struct Geometry {
    const char* name;
    cachesim::CacheConfig cfg;
  };
  const Geometry geos[] = {
      {"16KB/64B/4w", {.size_bytes = 16 * 1024, .line_bytes = 64, .assoc = 4}},
      {"64KB/128B/4w (RS/6000 540)",
       {.size_bytes = 64 * 1024, .line_bytes = 128, .assoc = 4}},
      {"256KB/64B/8w",
       {.size_bytes = 256 * 1024, .line_bytes = 64, .assoc = 8}},
  };

  blk::bench::Table t({"Cache", "N", "KS (machine model)", "Point miss%",
                       "Blocked miss%", "Miss reduction"});
  for (const auto& g : geos) {
    // The blocking factor is the compiler's choice (the §6 machine model),
    // scaled to each geometry — a 32-wide panel cannot fit a 16 KB cache.
    lang::MachineModel mm;
    mm.cache_bytes = g.cfg.size_bytes;
    mm.line_bytes = g.cfg.line_bytes;
    mm.assoc = g.cfg.assoc;
    const long ks = static_cast<long>(mm.block_size_2d() / 2);
    // N=300 is the paper's headline size; feasible since the bytecode VM
    // streams the ~10^8-access trace through the simulator in batches, but
    // only worth the wall-clock at the RS/6000 geometry itself.
    const bool rs6000 = g.cfg.size_bytes == 64 * 1024;
    for (long n : {64L, 128L, 192L, 300L}) {
      if (n == 300 && !rs6000) continue;
      auto sp = cachesim::simulate(point, {{"N", n}}, g.cfg);
      auto sb = cachesim::simulate(blocked, {{"N", n}, {"KS", ks}}, g.cfg);
      char pm[32], bm[32], red[32];
      std::snprintf(pm, sizeof pm, "%.2f%%", 100.0 * sp.miss_ratio());
      std::snprintf(bm, sizeof bm, "%.2f%%", 100.0 * sb.miss_ratio());
      std::snprintf(red, sizeof red, "%.2fx",
                    static_cast<double>(sp.misses) /
                        static_cast<double>(sb.misses ? sb.misses : 1));
      t.row({g.name, std::to_string(n), std::to_string(ks), pm, bm, red});
    }
  }
  t.print("A1: cache-simulator miss ratios, point vs automatically blocked "
          "LU (the machine-independent mechanism behind tables T3/T4)");

  // Block-size sensitivity at the paper's cache size: the working-set rule
  // (§6 machine model) should sit near the sweet spot.
  blk::bench::Table t2({"KS", "Blocked miss% (64KB cache, N=192)"});
  cachesim::CacheConfig rs{.size_bytes = 64 * 1024, .line_bytes = 128,
                           .assoc = 4};
  for (long ks : {4L, 8L, 16L, 32L, 64L, 128L}) {
    auto sb = cachesim::simulate(blocked, {{"N", 192}, {"KS", ks}}, rs);
    char bm[32];
    std::snprintf(bm, sizeof bm, "%.2f%%", 100.0 * sb.miss_ratio());
    t2.row({std::to_string(ks), bm});
  }
  t2.print("A1b: block-size sweep under the RS/6000 cache model");
  return 0;
}
