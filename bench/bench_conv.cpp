// T1 (§3.2 table): adjoint convolution and convolution, point vs the
// hand pipeline (index-set splitting + unroll-and-jam + scalar
// replacement).  The paper reports ~1.8x at sizes 300 and 500 on an
// RS/6000 540; the expectation here is the same direction of win.
#include "bench/benchutil.hpp"
#include "kernels/conv.hpp"

namespace {

using namespace blk::kernels;

void BM_AconvPoint(benchmark::State& st) {
  ConvProblem p = ConvProblem::make_aconv(st.range(0), 5);
  for (auto _ : st) {
    aconv_point(p);
    benchmark::DoNotOptimize(p.f3.flat().data());
    benchmark::ClobberMemory();
  }
}

void BM_AconvOpt(benchmark::State& st) {
  ConvProblem p = ConvProblem::make_aconv(st.range(0), 5);
  for (auto _ : st) {
    aconv_opt(p);
    benchmark::DoNotOptimize(p.f3.flat().data());
    benchmark::ClobberMemory();
  }
}

void BM_ConvPoint(benchmark::State& st) {
  ConvProblem p = ConvProblem::make_conv(st.range(0), 6);
  for (auto _ : st) {
    conv_point(p);
    benchmark::DoNotOptimize(p.f3.flat().data());
    benchmark::ClobberMemory();
  }
}

void BM_ConvOpt(benchmark::State& st) {
  ConvProblem p = ConvProblem::make_conv(st.range(0), 6);
  for (auto _ : st) {
    conv_opt(p);
    benchmark::DoNotOptimize(p.f3.flat().data());
    benchmark::ClobberMemory();
  }
}

BENCHMARK(BM_AconvPoint)->Arg(300)->Arg(500)->Arg(2000);
BENCHMARK(BM_AconvOpt)->Arg(300)->Arg(500)->Arg(2000);
BENCHMARK(BM_ConvPoint)->Arg(300)->Arg(500)->Arg(2000);
BENCHMARK(BM_ConvOpt)->Arg(300)->Arg(500)->Arg(2000);

}  // namespace

int main(int argc, char** argv) {
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"Loop", "Size", "Original", "Xformed", "Speedup"});
  for (const char* loop : {"Aconv", "Conv"}) {
    std::string base = std::string("BM_") + (loop[0] == 'A' ? "Aconv" : "Conv");
    for (long size : {300L, 500L, 2000L}) {
      double orig = rep.get(base + "Point/" + std::to_string(size));
      double opt = rep.get(base + "Opt/" + std::to_string(size));
      t.row({loop, std::to_string(size), blk::bench::fmt_time(orig),
             blk::bench::fmt_time(opt), blk::bench::fmt_speedup(orig, opt)});
    }
  }
  t.print("Table T1 (paper §3.2): convolution kernels, point vs transformed "
          "(paper speedups 1.80-1.91 at 300/500)");
  return 0;
}
