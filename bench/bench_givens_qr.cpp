// T5 (§5.4 table): QR with Givens rotations — the point algorithm of
// Fig. 9 (long-stride row traversal) vs the optimized Fig. 10 form
// (index-set splitting + IF-inspection + scalar expansion + interchange,
// giving stride-one columns).  The paper's shape: ~2x at 300, growing to
// ~5.5x at 500 as the working set falls out of cache.
#include "bench/benchutil.hpp"
#include "kernels/qr_givens.hpp"

namespace {

using namespace blk::kernels;

void BM_GivensPoint(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 9);
  Matrix a = a0;
  for (auto _ : st) {
    a = a0;
    givens_qr_point(a);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

void BM_GivensOpt(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 9);
  Matrix a = a0;
  for (auto _ : st) {
    a = a0;
    givens_qr_opt(a);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

BENCHMARK(BM_GivensPoint)->Arg(300)->Arg(500)->Arg(1000);
BENCHMARK(BM_GivensOpt)->Arg(300)->Arg(500)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"Array Size", "Point", "Optimized", "Speedup"});
  for (long n : {300L, 500L, 1000L}) {
    double p = rep.get("BM_GivensPoint/" + std::to_string(n));
    double o = rep.get("BM_GivensOpt/" + std::to_string(n));
    t.row({std::to_string(n) + "x" + std::to_string(n),
           blk::bench::fmt_time(p), blk::bench::fmt_time(o),
           blk::bench::fmt_speedup(p, o)});
  }
  t.print("Table T5 (paper §5.4): Givens QR (paper: 2.04x at 300, 5.49x at "
          "500 — the gap widens as the matrix leaves cache)");
  return 0;
}
