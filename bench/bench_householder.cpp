// A3 (§5.3, qualitative): Householder QR point vs compact-WY block.  The
// paper proves the block form is NOT compiler-derivable (the T matrix is
// new computation) and motivates the §6 language extensions with it; this
// bench quantifies what that underivable form buys.
#include "bench/benchutil.hpp"
#include "kernels/qr_householder.hpp"

namespace {

using namespace blk::kernels;

void BM_HouseholderPoint(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 29);
  Matrix a = a0;
  std::vector<double> tau;
  for (auto _ : st) {
    a = a0;
    householder_qr_point(a, tau);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

void BM_HouseholderBlock(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 29);
  Matrix a = a0;
  std::vector<double> tau;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    householder_qr_block(a, tau, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

void register_all() {
  for (long n : {300L, 500L, 1000L}) {
    benchmark::RegisterBenchmark("BM_HouseholderPoint", BM_HouseholderPoint)
        ->Args({n, 0});
    for (long ks : {16L, 32L})
      benchmark::RegisterBenchmark("BM_HouseholderBlock",
                                   BM_HouseholderBlock)
          ->Args({n, ks});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t(
      {"Size", "Block", "Point", "Block (compact WY)", "Speedup"});
  for (long n : {300L, 500L, 1000L}) {
    double p = rep.get("BM_HouseholderPoint/" + std::to_string(n) + "/0");
    for (long ks : {16L, 32L}) {
      double b = rep.get("BM_HouseholderBlock/" + std::to_string(n) + "/" +
                         std::to_string(ks));
      t.row({std::to_string(n), std::to_string(ks), blk::bench::fmt_time(p),
             blk::bench::fmt_time(b), blk::bench::fmt_speedup(p, b)});
    }
  }
  t.print("A3 (paper §5.3): Householder QR — what the compiler-underivable "
          "compact-WY block form buys (motivation for BLOCK DO)");
  return 0;
}
