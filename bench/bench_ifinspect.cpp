// T2 (§4 table): guarded matrix multiply at guard frequencies 2.5% and
// 10% — Original vs unroll-and-jam with the guard pushed inside (UJ) vs
// IF-inspection + unroll-and-jam (UJ+IF).  The paper's shape: UJ is
// *slower* than the original; UJ+IF wins (~1.45x) when the executed
// ranges are long.  A run-length-1 ablation shows the caveat the paper
// states ("if the ranges ... are large").
#include "bench/benchutil.hpp"
#include "kernels/matmul.hpp"

namespace {

using namespace blk::kernels;

constexpr std::size_t kN = 300;

// Arg encoding: frequency in tenths of a percent, run length.
void with_inputs(benchmark::State& st,
                 void (*kernel)(const Matrix&, const Matrix&, Matrix&)) {
  const double freq = static_cast<double>(st.range(0)) / 1000.0;
  const std::size_t run = static_cast<std::size_t>(st.range(1));
  Matrix a(kN, kN);
  fill_random(a, 17);
  Matrix b = make_guard_matrix(kN, freq, run, 18);
  Matrix c(kN, kN);
  for (auto _ : st) {
    kernel(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
    benchmark::ClobberMemory();
  }
}

void BM_Original(benchmark::State& st) { with_inputs(st, matmul_guarded); }
void BM_UJ(benchmark::State& st) {
  with_inputs(st, [](const Matrix& a, const Matrix& b, Matrix& c) {
    matmul_uj_guard_inside(a, b, c, 4);
  });
}
void BM_UJIF(benchmark::State& st) {
  with_inputs(st, [](const Matrix& a, const Matrix& b, Matrix& c) {
    matmul_uj_ifinspect(a, b, c, 4);
  });
}

#define ARGS ->Args({25, 8})->Args({100, 8})->Args({25, 1})->Args({100, 1})
BENCHMARK(BM_Original) ARGS;
BENCHMARK(BM_UJ) ARGS;
BENCHMARK(BM_UJIF) ARGS;
#undef ARGS

}  // namespace

int main(int argc, char** argv) {
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"Frequency", "RunLen", "Original", "UJ", "UJ+IF",
                       "Speedup(UJ+IF vs Orig)"});
  for (long run : {8L, 1L}) {
    for (long f : {25L, 100L}) {
      std::string suffix = "/" + std::to_string(f) + "/" +
                           std::to_string(run);
      double orig = rep.get("BM_Original" + suffix);
      double uj = rep.get("BM_UJ" + suffix);
      double ujif = rep.get("BM_UJIF" + suffix);
      char freq[16];
      std::snprintf(freq, sizeof freq, "%.1f%%",
                    static_cast<double>(f) / 10.0);
      t.row({freq, std::to_string(run), blk::bench::fmt_time(orig),
             blk::bench::fmt_time(uj), blk::bench::fmt_time(ujif),
             blk::bench::fmt_speedup(orig, ujif)});
    }
  }
  t.print("Table T2 (paper §4): 300x300 guarded matmul (paper: UJ slower "
          "than Original, UJ+IF ~1.45x; run-length-1 rows are the paper's "
          "short-ranges caveat)");
  return 0;
}
