// A4: execution-engine throughput — the tree-walking interpreter (the
// correctness oracle) vs the bytecode VM that now backs every simulation
// and differential test.  Reported in IR statements/second on the §5.1 LU
// kernel; the VM must clear 10x.  Also times the traced configuration that
// feeds the cache simulator, since that is the path the A1/T3 tables pay.
//
// Writes machine-readable results (BENCH_interp.json by default, override
// with --bench_json=<path>) so CI can archive throughput history.
#include <cstdio>

#include "bench/benchutil.hpp"
#include "interp/interp.hpp"
#include "interp/vm.hpp"
#include "kernels/ir_kernels.hpp"

namespace {

using namespace blk;

constexpr long kSizes[] = {60, 100};

ir::Env params_for(long n) { return {{"N", n}}; }

void BM_TreeWalker(benchmark::State& st) {
  ir::Program p = kernels::lu_point_ir();
  interp::Interpreter in(p, params_for(st.range(0)));
  std::uint64_t stmts = 0;
  for (auto _ : st) {
    interp::seed_store(in.store(), 42);
    in.run();
    stmts += in.statements_executed();
    benchmark::DoNotOptimize(in.store().arrays.at("A").flat().data());
  }
  st.counters["stmts/s"] = benchmark::Counter(
      static_cast<double>(stmts), benchmark::Counter::kIsRate);
}

void BM_Vm(benchmark::State& st) {
  ir::Program p = kernels::lu_point_ir();
  interp::Vm vm(p, params_for(st.range(0)));
  std::uint64_t stmts = 0;
  for (auto _ : st) {
    interp::seed_store(vm.store(), 42);
    vm.run();
    stmts += vm.statements_executed();
    benchmark::DoNotOptimize(vm.store().arrays.at("A").flat().data());
  }
  st.counters["stmts/s"] = benchmark::Counter(
      static_cast<double>(stmts), benchmark::Counter::kIsRate);
}

void BM_TreeWalkerTraced(benchmark::State& st) {
  ir::Program p = kernels::lu_point_ir();
  interp::ExecEngine eng(p, params_for(st.range(0)),
                         interp::Engine::TreeWalker);
  std::uint64_t events = 0;
  for (auto _ : st) {
    interp::seed_store(eng.store(), 42);
    interp::TraceBuffer buf(1 << 20,
                            [&events](std::span<const interp::TraceRecord>
                                          recs) { events += recs.size(); });
    eng.run(buf);
    buf.flush();
  }
  benchmark::DoNotOptimize(events);
}

void BM_VmTraced(benchmark::State& st) {
  ir::Program p = kernels::lu_point_ir();
  interp::ExecEngine eng(p, params_for(st.range(0)), interp::Engine::Vm);
  std::uint64_t events = 0;
  for (auto _ : st) {
    interp::seed_store(eng.store(), 42);
    interp::TraceBuffer buf(1 << 20,
                            [&events](std::span<const interp::TraceRecord>
                                          recs) { events += recs.size(); });
    eng.run(buf);
    buf.flush();
  }
  benchmark::DoNotOptimize(events);
}

void register_all() {
  for (long n : kSizes) {
    benchmark::RegisterBenchmark("BM_TreeWalker", BM_TreeWalker)->Arg(n);
    benchmark::RegisterBenchmark("BM_Vm", BM_Vm)->Arg(n);
    benchmark::RegisterBenchmark("BM_TreeWalkerTraced", BM_TreeWalkerTraced)
        ->Arg(n);
    benchmark::RegisterBenchmark("BM_VmTraced", BM_VmTraced)->Arg(n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json =
      blk::bench::extract_json_path(argc, argv, "BENCH_interp.json");
  register_all();
  auto rep = blk::bench::run_all(argc, argv);

  blk::bench::JsonWriter jw(json);
  blk::bench::Table t({"N", "Tree-walker", "VM", "Speedup", "TW traced",
                       "VM traced", "Traced speedup"});
  for (long n : kSizes) {
    const std::string sfx = "/" + std::to_string(n);
    double tw = rep.get("BM_TreeWalker" + sfx);
    double vm = rep.get("BM_Vm" + sfx);
    double twt = rep.get("BM_TreeWalkerTraced" + sfx);
    double vmt = rep.get("BM_VmTraced" + sfx);
    t.row({std::to_string(n), blk::bench::fmt_time(tw),
           blk::bench::fmt_time(vm), blk::bench::fmt_speedup(tw, vm),
           blk::bench::fmt_time(twt), blk::bench::fmt_time(vmt),
           blk::bench::fmt_speedup(twt, vmt)});
    jw.row("BM_TreeWalker" + sfx, tw);
    if (tw > 0 && vm > 0) jw.row("BM_Vm" + sfx, vm, tw / vm);
    jw.row("BM_TreeWalkerTraced" + sfx, twt);
    if (twt > 0 && vmt > 0) jw.row("BM_VmTraced" + sfx, vmt, twt / vmt);
  }
  t.print("A4: IR execution engines on point LU (oracle tree-walker vs "
          "bytecode VM; target >=10x untraced)");
  if (jw.write()) std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
