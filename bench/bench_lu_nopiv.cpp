// T3 (§5.1 table): LU decomposition without pivoting — Point vs the
// hand-coded block "1" (Sorensen) vs the derived block "2" (Fig. 6) vs
// "2+" (Fig. 6 + unroll-and-jam + scalar replacement).  The paper's shape:
// "1" and "2" roughly tie with Point; "2+" wins ~2.5-3.2x.  Sizes beyond
// the paper's 300/500 are included because modern caches are far larger
// than the RS/6000 540's 64 KB.
#include "bench/benchutil.hpp"
#include "kernels/lu.hpp"

namespace {

using namespace blk::kernels;

// Arg encoding: n, ks (ks ignored by the point algorithm).
void BM_Point(benchmark::State& st) {
  Matrix a0 = random_diag_dominant(static_cast<std::size_t>(st.range(0)), 3);
  Matrix a = a0;
  for (auto _ : st) {
    a = a0;
    lu_point(a);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

template <void (*Kernel)(Matrix&, std::size_t)>
void BM_Block(benchmark::State& st) {
  Matrix a0 = random_diag_dominant(static_cast<std::size_t>(st.range(0)), 3);
  Matrix a = a0;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    Kernel(a, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

constexpr long kSizes[] = {300, 500, 1000};
constexpr long kBlocks[] = {32, 64};

void register_all() {
  for (long n : kSizes) {
    benchmark::RegisterBenchmark("BM_Point", BM_Point)->Args({n, 0});
    for (long ks : kBlocks) {
      benchmark::RegisterBenchmark("BM_Sorensen",
                                   BM_Block<lu_block_sorensen>)
          ->Args({n, ks});
      benchmark::RegisterBenchmark("BM_Derived", BM_Block<lu_block_derived>)
          ->Args({n, ks});
      benchmark::RegisterBenchmark("BM_Opt", BM_Block<lu_block_opt>)
          ->Args({n, ks});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"Size", "Block", "Point", "1 (Sorensen)",
                       "2 (derived)", "2+ (UJ+SR)", "Speedup(2+ vs Point)"});
  for (long n : kSizes) {
    double point = rep.get("BM_Point/" + std::to_string(n) + "/0");
    for (long ks : kBlocks) {
      std::string sfx = "/" + std::to_string(n) + "/" + std::to_string(ks);
      double s1 = rep.get("BM_Sorensen" + sfx);
      double s2 = rep.get("BM_Derived" + sfx);
      double s2p = rep.get("BM_Opt" + sfx);
      t.row({std::to_string(n), std::to_string(ks),
             blk::bench::fmt_time(point), blk::bench::fmt_time(s1),
             blk::bench::fmt_time(s2), blk::bench::fmt_time(s2p),
             blk::bench::fmt_speedup(point, s2p)});
    }
  }
  t.print("Table T3 (paper §5.1): LU without pivoting (paper speedups "
          "2.53-3.17 for 2+ at 300/500, KS 32/64)");
  return 0;
}
