// T4 (§5.2 table): LU with partial pivoting — Point (Fig. 7) vs the block
// algorithm "1" (Fig. 8, derivable only with commutativity knowledge) vs
// "1+" (block + unroll-and-jam + scalar replacement).  Paper shape: "1"
// roughly ties with Point; "1+" wins ~2.3-2.7x.
#include "bench/benchutil.hpp"
#include "kernels/lu_pivot.hpp"

namespace {

using namespace blk::kernels;

void BM_Point(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 7);
  Matrix a = a0;
  std::vector<std::size_t> piv;
  for (auto _ : st) {
    a = a0;
    lu_pivot_point(a, piv);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

template <void (*Kernel)(Matrix&, std::vector<std::size_t>&, std::size_t)>
void BM_Block(benchmark::State& st) {
  const std::size_t n = static_cast<std::size_t>(st.range(0));
  Matrix a0(n, n);
  fill_random(a0, 7);
  Matrix a = a0;
  std::vector<std::size_t> piv;
  const std::size_t ks = static_cast<std::size_t>(st.range(1));
  for (auto _ : st) {
    a = a0;
    Kernel(a, piv, ks);
    benchmark::DoNotOptimize(a.flat().data());
  }
}

constexpr long kSizes[] = {300, 500, 1000};
constexpr long kBlocks[] = {32, 64};

void register_all() {
  for (long n : kSizes) {
    benchmark::RegisterBenchmark("BM_Point", BM_Point)->Args({n, 0});
    for (long ks : kBlocks) {
      benchmark::RegisterBenchmark("BM_Block", BM_Block<lu_pivot_block>)
          ->Args({n, ks});
      benchmark::RegisterBenchmark("BM_Opt", BM_Block<lu_pivot_block_opt>)
          ->Args({n, ks});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  auto rep = blk::bench::run_all(argc, argv);
  blk::bench::Table t({"Size", "Block", "Point", "1 (block)", "1+ (UJ+SR)",
                       "Speedup(1+ vs Point)"});
  for (long n : kSizes) {
    double point = rep.get("BM_Point/" + std::to_string(n) + "/0");
    for (long ks : kBlocks) {
      std::string sfx = "/" + std::to_string(n) + "/" + std::to_string(ks);
      double b = rep.get("BM_Block" + sfx);
      double o = rep.get("BM_Opt" + sfx);
      t.row({std::to_string(n), std::to_string(ks),
             blk::bench::fmt_time(point), blk::bench::fmt_time(b),
             blk::bench::fmt_time(o), blk::bench::fmt_speedup(point, o)});
    }
  }
  t.print("Table T4 (paper §5.2): LU with partial pivoting (paper speedups "
          "2.27-2.72 for 1+ at 300/500, KS 32/64)");
  return 0;
}
