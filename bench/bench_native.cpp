// A5: the native JIT engine (IR -> C -> host toolchain -> dlopen) vs the
// bytecode VM across the paper's kernels — point and auto-blocked LU
// (§5.1), pivoted LU through the declarative pipeline (§5.2), Givens QR
// (§5.4), and convolution (§4) — at sizes the VM cannot reach interactively.
// The JIT must clear 20x over the VM on point LU, and the blocked-vs-point
// ratio on the native engine should keep the paper's shape (blocking is
// roughly neutral before unroll-and-jam).
//
// Writes machine-readable results (BENCH_native.json by default, override
// with --bench_json=<path>), including the native engine's compile/cache
// stats — a second run against a warm kernel cache must report zero
// compiles.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/benchutil.hpp"
#include "interp/interp.hpp"
#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"
#include "transform/blocking.hpp"

namespace {

using namespace blk;
using namespace blk::ir;
using namespace blk::ir::dsl;

constexpr long kSizes[] = {120, 500};
constexpr long kBlock = 32;

struct Case {
  std::string name;
  ir::Program prog;
  ir::Env (*env_for)(long n);
  double diag_boost;  // added to A's diagonal (0 = none)
  bool set_dt;        // conv kernels read the DT scalar
};

ir::Env env_n(long n) { return {{"N", n}}; }
ir::Env env_n_ks(long n) { return {{"N", n}, {"KS", kBlock}}; }
ir::Env env_n_bs(long n) { return {{"N", n}, {"BS", kBlock}}; }
ir::Env env_mn(long n) { return {{"M", n}, {"N", n}}; }
ir::Env env_conv(long n) {
  return {{"N1", n - 1}, {"N2", 6 * (n - 1) / 7}, {"N3", n - 1}};
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;

  cases.push_back({"lu_point", kernels::lu_point_ir(), env_n, 3.0, false});

  // Auto-blocked LU: the §5.1 driver under the standard full-block hint.
  {
    ir::Program blocked = kernels::lu_point_ir();
    blocked.param("KS");
    analysis::Assumptions hints;
    hints.assert_le(isub(iadd(ivar("K"), ivar("KS")), iconst(1)),
                    isub(ivar("N"), iconst(1)));
    (void)transform::auto_block(blocked, blocked.body[0]->as_loop(),
                                ivar("KS"), hints);
    cases.push_back({"lu_blocked", std::move(blocked), env_n_ks, 3.0, false});
  }

  cases.push_back(
      {"lu_pivot_point", kernels::lu_pivot_point_ir(), env_n, 0.0, false});

  // Pivoted LU blocked by the §5.2 declarative pipeline (distribution
  // legalized by commutativity of the interchange/max search).
  {
    ir::Program blocked = kernels::lu_pivot_point_ir();
    analysis::Assumptions hints;
    pm::add_fact(hints, "K+BS-1<=N-1");
    (void)pm::run_spec(
        blocked, "stripmine(b=BS); split; distribute(commutativity); "
                 "interchange",
        hints);
    cases.push_back(
        {"lu_pivot_blocked", std::move(blocked), env_n_bs, 0.0, false});
  }

  cases.push_back(
      {"givens_point", kernels::givens_qr_ir(), env_mn, 3.0, false});
  {
    ir::Program opt = kernels::givens_qr_ir();
    (void)transform::optimize_givens(opt);
    cases.push_back({"givens_opt", std::move(opt), env_mn, 3.0, false});
  }

  cases.push_back({"conv", kernels::conv_ir(), env_conv, 0.0, true});

  return cases;
}

void seed_engine(interp::ExecEngine& e, const Case& c) {
  for (auto& [name, t] : e.store().arrays) {
    std::uint64_t k = 42;
    for (char ch : name)
      k = k * 1099511628211ULL + static_cast<unsigned char>(ch);
    interp::fill_random(t, k);
    if (c.diag_boost != 0.0 && t.rank() == 2) {
      for (long i = t.lower(0); i <= t.upper(0); ++i) {
        if (i < t.lower(1) || i > t.upper(1)) continue;
        std::vector<long> idx{i, i};
        t.at(idx) += c.diag_boost;
      }
    }
  }
  if (c.set_dt) e.store().scalars["DT"] = 0.25;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json =
      blk::bench::extract_json_path(argc, argv, "BENCH_native.json");

  const bool have_native = blk::native::available();
  if (!have_native)
    std::fprintf(stderr,
                 "bench_native: no host C toolchain; native rows fall back "
                 "to the VM\n");

  std::vector<Case> cases = make_cases();
  for (const Case& c : cases) {
    for (long n : kSizes) {
      benchmark::RegisterBenchmark(
          (c.name + "/vm").c_str(),
          [&c](benchmark::State& st) {
            interp::ExecEngine e(c.prog, c.env_for(st.range(0)),
                                 interp::Engine::Vm);
            for (auto _ : st) {
              st.PauseTiming();
              seed_engine(e, c);
              st.ResumeTiming();
              e.run();
              benchmark::DoNotOptimize(
                  e.store().arrays.begin()->second.flat().data());
            }
          })
          ->Arg(n)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          (c.name + "/native").c_str(),
          [&c](benchmark::State& st) {
            interp::ExecEngine e(c.prog, c.env_for(st.range(0)),
                                 interp::Engine::Native);
            for (auto _ : st) {
              st.PauseTiming();
              seed_engine(e, c);
              st.ResumeTiming();
              e.run();
              benchmark::DoNotOptimize(
                  e.store().arrays.begin()->second.flat().data());
            }
          })
          ->Arg(n)
          ->Unit(benchmark::kMillisecond);
    }
  }

  auto rep = blk::bench::run_all(argc, argv);

  blk::bench::JsonWriter jw(json);
  blk::bench::Table t(
      {"Kernel", "N", "VM", "Native", "Native speedup"});
  for (const Case& c : cases) {
    for (long n : kSizes) {
      const std::string sfx = "/" + std::to_string(n);
      double vm = rep.get(c.name + "/vm" + sfx);
      double nat = rep.get(c.name + "/native" + sfx);
      t.row({c.name, std::to_string(n), blk::bench::fmt_time(vm),
             blk::bench::fmt_time(nat), blk::bench::fmt_speedup(vm, nat)});
      jw.row(c.name + "/vm" + sfx, vm);
      if (vm > 0 && nat > 0)
        jw.row(c.name + "/native" + sfx, nat, vm / nat);
      else
        jw.row(c.name + "/native" + sfx, nat);
    }
  }
  t.print("A5: bytecode VM vs native JIT (target >=20x on point LU)");

  // The paper's shape on real hardware: blocked vs point on the native
  // engine (roughly neutral at these sizes without unroll-and-jam).
  blk::bench::Table shape({"Pair", "N", "Point", "Blocked", "Ratio"});
  const std::pair<const char*, const char*> pairs[] = {
      {"lu_point", "lu_blocked"},
      {"lu_pivot_point", "lu_pivot_blocked"},
      {"givens_point", "givens_opt"}};
  for (auto [pt, blk_name] : pairs) {
    for (long n : kSizes) {
      const std::string sfx = "/" + std::to_string(n);
      double p = rep.get(std::string(pt) + "/native" + sfx);
      double b = rep.get(std::string(blk_name) + "/native" + sfx);
      shape.row({std::string(pt) + " vs " + blk_name, std::to_string(n),
                 blk::bench::fmt_time(p), blk::bench::fmt_time(b),
                 blk::bench::fmt_speedup(p, b)});
    }
  }
  shape.print("Blocked vs point on the native engine");

  jw.extra("native", blk::native::stats_json());
  if (jw.write()) std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
