// A6 (§14): certified multicore scaling of the parallel native backend.
//
// Three programs whose plans come straight out of `parallelize(check)` —
// the certifier labels the loops, the race re-check cross-examines the
// labels, and the plan drives the thread-pool codegen:
//
//   lu_blocked        auto-blocked §5.1 LU (N=1500, KS=64): the
//                     right-looking update J loops carry almost all the
//                     work and certify parallel.
//   lu_pivot_blocked  §5.2 pivoted LU through the declarative blocking
//                     pipeline (N=1500, BS=64).
//   stencil_wavefront the §14 Gauss-Seidel stencil (N=4000), serial as
//                     written; skew(f=1) + interchange expose the
//                     diagonal wavefront and the certifier re-proves the
//                     inner loop parallel.
//
// Each case times the serial native kernel and the threaded kernel at
// 1/2/4/8 threads.  Before any timing, every threaded variant is
// differentially checked against serial native on identical seeded
// inputs: the plans here contain no reductions, so the comparison is
// bitwise (memcmp), and any divergence exits 1.  Targets: blocked LU
// >=3x at 8 threads, the skewed stencil >=2x at 4 threads.
//
// Writes schema-3 machine-readable results (BENCH_parallel.json by
// default, override with --bench_json=<path>) with host.threads = 8 and
// host.parallel = true.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/benchutil.hpp"
#include "interp/interp.hpp"
#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "ir/codegen.hpp"
#include "kernels/ir_kernels.hpp"
#include "native/engine.hpp"
#include "pm/pass.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"

namespace {

using namespace blk;
using namespace blk::ir;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Case {
  std::string name;
  ir::Program prog;
  ir::ParallelOptions plan;  ///< from parallelize(check); threads set per run
  ir::Env env;
  double diag_boost;  ///< added to A's diagonal (0 = none)
};

/// Run spec (ending in parallelize(check)) over `p` and return the
/// certified plan.  The pipeline throws if the race re-check disagrees
/// with any certificate, so a plan that comes back here is vouched for
/// twice.
ir::ParallelOptions certified_plan(ir::Program& p, const std::string& spec,
                                   const std::string& fact) {
  analysis::Assumptions hints;
  if (!fact.empty()) pm::add_fact(hints, fact);
  pm::PipelineContext ctx(p, std::move(hints));
  (void)pm::run_pipeline(pm::parse_pipeline(spec), ctx);
  if (!ctx.parallel || !ctx.parallel->enabled()) {
    std::fprintf(stderr, "bench_parallel: no parallel plan from '%s'\n",
                 spec.c_str());
    std::exit(1);
  }
  return *ctx.parallel;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;

  {
    Case c;
    c.name = "lu_blocked";
    c.prog = kernels::lu_point_ir();
    c.prog.param("KS");
    c.plan = certified_plan(c.prog, "autoblock(b=KS); parallelize(check)",
                            "K+KS-1<=N-1");
    c.env = {{"N", 1500}, {"KS", 64}};
    c.diag_boost = 3.0;
    cases.push_back(std::move(c));
  }

  {
    Case c;
    c.name = "lu_pivot_blocked";
    c.prog = kernels::lu_pivot_point_ir();
    c.plan = certified_plan(c.prog,
                            "stripmine(b=BS); split; "
                            "distribute(commutativity); interchange; "
                            "parallelize(check)",
                            "K+BS-1<=N-1");
    c.env = {{"N", 1500}, {"BS", 64}};
    c.diag_boost = 0.0;
    cases.push_back(std::move(c));
  }

  {
    Case c;
    c.name = "stencil_wavefront";
    c.prog = kernels::stencil2d_ir();
    c.plan = certified_plan(
        c.prog, "skew(f=1); interchange; parallelize(check)", "");
    c.env = {{"N", 4000}};
    c.diag_boost = 0.0;
    cases.push_back(std::move(c));
  }

  return cases;
}

void seed_engine(interp::ExecEngine& e, const Case& c) {
  for (auto& [name, t] : e.store().arrays) {
    std::uint64_t k = 42;
    for (char ch : name)
      k = k * 1099511628211ULL + static_cast<unsigned char>(ch);
    interp::fill_random(t, k);
    if (c.diag_boost != 0.0 && t.rank() == 2) {
      for (long i = t.lower(0); i <= t.upper(0); ++i) {
        if (i < t.lower(1) || i > t.upper(1)) continue;
        std::vector<long> idx{i, i};
        t.at(idx) += c.diag_boost;
      }
    }
  }
}

/// Threaded run vs serial native on identical inputs; the plans contain
/// no reductions, so bitwise equality is the contract.  Exits 1 on any
/// divergence — scaling numbers from a wrong answer are worthless.
void differential_check(const Case& c, const ir::ParallelOptions& plan) {
  interp::ExecEngine serial(c.prog, c.env, interp::Engine::Native);
  interp::ExecEngine par(c.prog, c.env, interp::Engine::Native, &plan);
  seed_engine(serial, c);
  seed_engine(par, c);
  serial.run();
  par.run();
  for (const auto& [name, ta] : serial.store().arrays) {
    const interp::Tensor& tb = par.store().arrays.at(name);
    if (ta.size() != tb.size() ||
        std::memcmp(ta.flat().data(), tb.flat().data(),
                    ta.size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_parallel: %s diverges from serial on array %s "
                   "(%s)\n",
                   plan.summary().c_str(), name.c_str(), c.name.c_str());
      std::exit(1);
    }
  }
  for (const auto& [name, va] : serial.store().scalars) {
    const double vb = par.store().scalars.at(name);
    if (std::memcmp(&va, &vb, sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_parallel: %s diverges from serial on scalar %s "
                   "(%s)\n",
                   plan.summary().c_str(), name.c_str(), c.name.c_str());
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json =
      blk::bench::extract_json_path(argc, argv, "BENCH_parallel.json");

  if (!blk::native::available()) {
    std::fprintf(stderr,
                 "bench_parallel: no host C toolchain; nothing to "
                 "measure\n");
    return 0;
  }

  std::vector<Case> cases = make_cases();

  // Per-thread-count plans, stable addresses for the benchmark lambdas.
  struct Variant {
    const Case* c;
    ir::ParallelOptions plan;
  };
  std::vector<Variant> variants;
  variants.reserve(cases.size() * std::size(kThreadCounts));
  for (const Case& c : cases) {
    for (int nt : kThreadCounts) {
      Variant v{&c, c.plan};
      v.plan.threads = nt;
      variants.push_back(std::move(v));
    }
  }

  // Correctness before speed: every threaded kernel must reproduce the
  // serial native answer bitwise on the benchmark-size inputs.
  for (const Variant& v : variants) {
    differential_check(*v.c, v.plan);
    std::printf("bench_parallel: %s serial-vs-parallel ok (%s)\n",
                v.c->name.c_str(), v.plan.summary().c_str());
  }

  for (const Case& c : cases) {
    benchmark::RegisterBenchmark(
        (c.name + "/serial").c_str(), [&c](benchmark::State& st) {
          interp::ExecEngine e(c.prog, c.env, interp::Engine::Native);
          for (auto _ : st) {
            st.PauseTiming();
            seed_engine(e, c);
            st.ResumeTiming();
            e.run();
            benchmark::DoNotOptimize(
                e.store().arrays.begin()->second.flat().data());
          }
        })->Unit(benchmark::kMillisecond);
  }
  for (const Variant& v : variants) {
    benchmark::RegisterBenchmark(
        (v.c->name + "/t" + std::to_string(v.plan.threads)).c_str(),
        [&v](benchmark::State& st) {
          interp::ExecEngine e(v.c->prog, v.c->env, interp::Engine::Native,
                               &v.plan);
          for (auto _ : st) {
            st.PauseTiming();
            seed_engine(e, *v.c);
            st.ResumeTiming();
            e.run();
            benchmark::DoNotOptimize(
                e.store().arrays.begin()->second.flat().data());
          }
        })->Unit(benchmark::kMillisecond);
  }

  auto rep = blk::bench::run_all(argc, argv);

  blk::bench::JsonWriter jw(json);
  jw.set_threads(8);
  jw.set_parallel(true);
  blk::bench::Table t({"Case", "Serial", "1T", "2T", "4T", "8T",
                       "Speedup@4", "Speedup@8"});
  for (const Case& c : cases) {
    double serial = rep.get(c.name + "/serial");
    jw.row(c.name + "/serial", serial);
    std::vector<double> times;
    for (int nt : kThreadCounts) {
      double s = rep.get(c.name + "/t" + std::to_string(nt));
      times.push_back(s);
      if (serial > 0 && s > 0)
        jw.row(c.name + "/t" + std::to_string(nt), s, serial / s);
      else
        jw.row(c.name + "/t" + std::to_string(nt), s);
    }
    t.row({c.name, blk::bench::fmt_time(serial),
           blk::bench::fmt_time(times[0]), blk::bench::fmt_time(times[1]),
           blk::bench::fmt_time(times[2]), blk::bench::fmt_time(times[3]),
           blk::bench::fmt_speedup(serial, times[2]),
           blk::bench::fmt_speedup(serial, times[3])});
  }
  t.print(
      "A6: certified parallel scaling (targets: blocked LU >=3x @8T, "
      "wavefront stencil >=2x @4T)");

  jw.extra("native", blk::native::stats_json());
  if (jw.write()) std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
