// A5: pass-manager analysis caching — the same declarative pipelines with
// the context's AnalysisManager caching on (the default) vs off (every
// query rebuilt, the pre-manager behaviour).  The interesting number is
// the analysis-construction time the cache saves: Procedure IndexSetSplit
// alone used to rebuild the same dependence graph three to four times per
// trial iteration.  Target: >= 1.5x analysis-time reduction on the §5.1
// block-LU derivation.
//
// Writes machine-readable results (BENCH_pm.json by default, override
// with --bench_json=<path>) so CI can archive the reduction history.
#include <cstdio>
#include <string>

#include "bench/benchutil.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"

namespace {

using namespace blk;
using namespace blk::ir::dsl;

struct Scenario {
  const char* name;
  ir::Program (*make)();
  const char* spec;
  const char* block;  // the symbolic block-size parameter in the hint
};

const Scenario kScenarios[] = {
    {"block_lu", &kernels::lu_point_ir,
     "stripmine(b=KS); split; distribute; interchange", "KS"},
    {"pivoted_block_lu", &kernels::lu_pivot_point_ir,
     "stripmine(b=BS); split; distribute(commutativity); interchange",
     "BS"},
};

analysis::Assumptions hints_for(const Scenario& s) {
  analysis::Assumptions hints;
  hints.assert_le(v("K") + v(s.block) - 1, v("N") - 1);
  return hints;
}

/// One full pipeline run; returns the wall time spent *constructing*
/// analyses (cache misses), the quantity caching exists to shrink.
double analysis_seconds(const Scenario& s, bool caching) {
  ir::Program p = s.make();
  pm::PipelineContext ctx(p, hints_for(s));
  ctx.am.set_caching(caching);
  (void)pm::run_pipeline(pm::parse_pipeline(s.spec), ctx);
  return ctx.am.stats().build_seconds;
}

void BM_Pipeline(benchmark::State& st, const Scenario& s, bool caching) {
  double analysis = 0;
  for (auto _ : st) {
    analysis += analysis_seconds(s, caching);
  }
  st.counters["analysis_s"] = benchmark::Counter(
      analysis, benchmark::Counter::kAvgIterations);
}

void register_all() {
  for (const Scenario& s : kScenarios) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Cached/") + s.name).c_str(),
        [&s](benchmark::State& st) { BM_Pipeline(st, s, true); });
    benchmark::RegisterBenchmark(
        (std::string("BM_Uncached/") + s.name).c_str(),
        [&s](benchmark::State& st) { BM_Pipeline(st, s, false); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json =
      blk::bench::extract_json_path(argc, argv, "BENCH_pm.json");
  register_all();
  auto rep = blk::bench::run_all(argc, argv);

  // Direct measurement for the table and the JSON artifact: average the
  // analysis-construction seconds over a few runs of each configuration.
  constexpr int kReps = 3;
  blk::bench::JsonWriter jw(json);
  blk::bench::Table t({"Pipeline", "Analysis (uncached)",
                       "Analysis (cached)", "Reduction"});
  for (const Scenario& s : kScenarios) {
    double uncached = 0, cached = 0;
    for (int i = 0; i < kReps; ++i) {
      uncached += analysis_seconds(s, false);
      cached += analysis_seconds(s, true);
    }
    uncached /= kReps;
    cached /= kReps;
    t.row({s.name, blk::bench::fmt_time(uncached),
           blk::bench::fmt_time(cached),
           blk::bench::fmt_speedup(uncached, cached)});
    jw.row(std::string("analysis_uncached/") + s.name, uncached);
    jw.row(std::string("analysis_cached/") + s.name, cached,
           cached > 0 ? uncached / cached : 0.0);
  }
  t.print("A5: analysis-construction time per pipeline run (AnalysisManager "
          "caching off vs on; target >=1.5x reduction)");
  if (jw.write()) std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
