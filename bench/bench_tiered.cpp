// A6: the tiered adaptive engine's steady state vs its neighbours — the
// profiling VM (cold tier), the generic native kernel (symbolic
// parameters, -O2, the deopt target) and the warm tiered engine
// (specialized variant behind its entry guards, hot-tier -O3) — on point
// LU N=500 and auto-blocked LU N=501/KS=25 (25 | 500, so specialization
// collapses every block-edge MIN and the remainder structure).
//
// Two claims to hold: the warm specialized kernel beats the generic
// native build of the same program, and the steady-state guard overhead
// stays under 2%.  Guard overhead is measured directly — a row timing
// nothing but the entry-guard check (the only work the tiered dispatch
// adds per warm invocation), divided by the specialized invocation time
// — rather than by subtracting two multi-millisecond kernel timings,
// which on a busy host is dominated by frequency jitter.
//
// Writes machine-readable results (BENCH_tiered.json by default, override
// with --bench_json=<path>) including the tiered runtime's stats — a
// clean run must report one promotion per kernel and zero deopts.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/benchutil.hpp"
#include "interp/interp.hpp"
#include "interp/tiered.hpp"
#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"
#include "spec/assumptions.hpp"
#include "spec/specialize.hpp"

namespace {

using namespace blk;

struct Case {
  std::string name;
  ir::Program prog;       // generic program, parameters symbolic
  ir::Program spec_prog;  // specialized under `env`
  ir::GuardOptions guards;
  std::string hash;  // assumption-set hash (the cache variant key)
  ir::Env env;
  double diag_boost;  // added to A's diagonal
};

Case make_case(std::string name, ir::Program prog, ir::Env env,
               double diag_boost) {
  Case c{std::move(name), std::move(prog), {}, {}, {}, std::move(env),
         diag_boost};
  const spec::AssumptionSet as =
      spec::AssumptionSet::from_binding(c.prog, c.env);
  spec::SpecializeResult sr = spec::specialize(c.prog, as);
  c.spec_prog = std::move(sr.prog);
  c.guards = std::move(sr.guards);
  c.hash = as.hash();
  return c;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  cases.push_back(
      make_case("lu_point", kernels::lu_point_ir(), {{"N", 500}}, 3.0));

  // Auto-blocked LU at a divisible binding: KS | N-1, so the specializer
  // resolves MIN(K+KS-1, N-1) everywhere and the kernel runs full blocks
  // only.  (N=500 itself has a prime N-1; 501 keeps the size honest.)
  ir::Program blocked = kernels::lu_point_ir();
  pm::run_spec(blocked, "autoblock(b=KS)");
  cases.push_back(make_case("lu_blocked", std::move(blocked),
                            {{"N", 501}, {"KS", 25}}, 3.0));
  return cases;
}

void seed_store(interp::Store& s, const Case& c) {
  for (auto& [name, t] : s.arrays) {
    std::uint64_t k = 42;
    for (char ch : name)
      k = k * 1099511628211ULL + static_cast<unsigned char>(ch);
    interp::fill_random(t, k);
    if (c.diag_boost != 0.0 && t.rank() == 2) {
      for (long i = t.lower(0); i <= t.upper(0); ++i) {
        if (i < t.lower(1) || i > t.upper(1)) continue;
        std::vector<long> idx{i, i};
        t.at(idx) += c.diag_boost;
      }
    }
  }
}

/// Steady-state measurement loop shared by the ExecEngine rows.
void measure(benchmark::State& st, interp::ExecEngine& e, const Case& c) {
  for (auto _ : st) {
    st.PauseTiming();
    seed_store(e.store(), c);
    st.ResumeTiming();
    e.run();
    benchmark::DoNotOptimize(
        e.store().arrays.begin()->second.flat().data());
  }
}

/// Drive one compiled kernel directly (declaration-order marshaling, the
/// same sequence the tiered dispatcher runs).  `check` adds the entry
/// guard check in front of every call.
void measure_kernel(benchmark::State& st, native::Kernel& k,
                    interp::Store& store, const Case& c, bool check) {
  std::vector<long> params;
  for (const auto& name : k.param_names()) params.push_back(c.env.at(name));
  std::vector<double*> arrays;
  for (const auto& name : k.array_names())
    arrays.push_back(store.arrays.at(name).flat().data());
  std::vector<double> scalars(k.scalar_names().size() + 1, 0.0);
  for (auto _ : st) {
    st.PauseTiming();
    seed_store(store, c);
    st.ResumeTiming();
    if (check && k.check_guards(params.data(), arrays.data()) != 0) {
      st.SkipWithError("entry guards rejected the benchmark binding");
      return;
    }
    k.call(params.data(), arrays.data(), scalars.data());
    benchmark::DoNotOptimize(arrays[0]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json =
      blk::bench::extract_json_path(argc, argv, "BENCH_tiered.json");

  if (!blk::native::available())
    std::fprintf(stderr,
                 "bench_tiered: no host C toolchain; native and tiered "
                 "rows fall back to the VM\n");

  blk::interp::reset_tiered_stats();
  std::vector<Case> cases = make_cases();
  const bool native_ok = blk::native::available();
  for (const Case& c : cases) {
    benchmark::RegisterBenchmark(
        (c.name + "/vm").c_str(),
        [&c](benchmark::State& st) {
          interp::ExecEngine e(c.prog, c.env, interp::Engine::Vm);
          measure(st, e, c);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (c.name + "/generic").c_str(),
        [&c](benchmark::State& st) {
          interp::ExecEngine e(c.prog, c.env, interp::Engine::Native);
          measure(st, e, c);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (c.name + "/tiered_warm").c_str(),
        [&c](benchmark::State& st) {
          interp::TieredOptions topts;
          topts.promote_after = 1;
          topts.synchronous = true;
          interp::ExecEngine e(c.prog, c.env, interp::Engine::Tiered,
                               nullptr, &topts);
          seed_store(e.store(), c);
          e.run();  // promotes and compiles; every timed run is warm
          measure(st, e, c);
        })
        ->Unit(benchmark::kMillisecond);
    if (!native_ok) continue;
    benchmark::RegisterBenchmark(
        (c.name + "/spec_hot").c_str(),
        [&c](benchmark::State& st) {
          native::Kernel k(c.spec_prog, "blk_kernel", nullptr, nullptr,
                           &c.guards, c.hash, 3);
          interp::ExecEngine store_holder(c.spec_prog, c.env,
                                          interp::Engine::Vm);
          measure_kernel(st, k, store_holder.store(), c, true);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (c.name + "/guard_check").c_str(),
        [&c](benchmark::State& st) {
          native::Kernel k(c.spec_prog, "blk_kernel", nullptr, nullptr,
                           &c.guards, c.hash, 3);
          interp::ExecEngine store_holder(c.spec_prog, c.env,
                                          interp::Engine::Vm);
          std::vector<long> params;
          for (const auto& name : k.param_names())
            params.push_back(c.env.at(name));
          std::vector<double*> arrays;
          for (const auto& name : k.array_names())
            arrays.push_back(
                store_holder.store().arrays.at(name).flat().data());
          for (auto _ : st) {
            long g = k.check_guards(params.data(), arrays.data());
            benchmark::DoNotOptimize(g);
          }
        });
  }

  auto rep = blk::bench::run_all(argc, argv);
  blk::interp::tiered_drain();

  blk::bench::JsonWriter jw(json);
  blk::bench::Table t({"Kernel", "VM", "Generic (-O2)", "Spec hot (-O3)",
                       "Tiered warm", "Spec vs generic"});
  std::string overhead_json = "{";
  for (const Case& c : cases) {
    const double vm = rep.get(c.name + "/vm");
    const double gen = rep.get(c.name + "/generic");
    const double warm = rep.get(c.name + "/tiered_warm");
    const double spec = rep.get(c.name + "/spec_hot");
    t.row({c.name, blk::bench::fmt_time(vm), blk::bench::fmt_time(gen),
           blk::bench::fmt_time(spec), blk::bench::fmt_time(warm),
           blk::bench::fmt_speedup(gen, spec)});
    jw.row(c.name + "/vm", vm);
    jw.row(c.name + "/generic", gen, vm > 0 && gen > 0 ? vm / gen : -1.0);
    jw.row(c.name + "/spec_hot", spec,
           vm > 0 && spec > 0 ? vm / spec : -1.0);
    jw.row(c.name + "/tiered_warm", warm,
           vm > 0 && warm > 0 ? vm / warm : -1.0);
    jw.row(c.name + "/guard_check", rep.get(c.name + "/guard_check"));
    const double check = rep.get(c.name + "/guard_check");
    const double pct =
        check > 0 && spec > 0 ? check / spec * 100.0 : -1.0;
    if (overhead_json.size() > 1) overhead_json += ", ";
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s_pct\": %.6f", c.name.c_str(),
                  pct);
    overhead_json += buf;
  }
  overhead_json += ", \"target_pct\": 2.0}";
  t.print("A6: tiered adaptive engine, warm steady state");

  // Guard overhead: the entry-guard check is the only per-invocation
  // work the warm tiered dispatch adds over the bare specialized call.
  blk::bench::Table ov({"Kernel", "Guard check", "Spec invocation",
                        "Guard overhead"});
  for (const Case& c : cases) {
    const double check = rep.get(c.name + "/guard_check");
    const double spec = rep.get(c.name + "/spec_hot");
    char chk[32], pct[32];
    std::snprintf(chk, sizeof chk, "%.0f ns", check * 1e9);
    if (check > 0 && spec > 0)
      std::snprintf(pct, sizeof pct, "%.5f%%", check / spec * 100);
    else
      std::snprintf(pct, sizeof pct, "n/a");
    ov.row({c.name, check > 0 ? chk : "n/a", blk::bench::fmt_time(spec),
            pct});
  }
  ov.print("Steady-state guard overhead (target < 2%)");

  jw.extra("tiered", blk::interp::tiered_stats_json());
  jw.extra("native", blk::native::stats_json());
  jw.extra("guard_overhead", overhead_json);
  if (jw.write()) std::printf("\nwrote %s\n", json.c_str());
  return 0;
}
