// Trace-pipeline benchmarks (the evidence behind DESIGN.md §16):
//
//   1. sink dispatch   — TraceBuffer's devirtualized fn-pointer sink vs
//                        the legacy std::function sink (google-benchmark).
//   2. compression     — synthesized blocked-LU trace vs the raw
//                        TraceRecord stream it replaces (N=512: gigabytes
//                        down to megabytes).
//   3. sweep modes     — the same candidate sweep on the Raw path (VM
//                        re-execution per candidate), on the trace
//                        pipeline with a cold store (synthesize + replay),
//                        and with a warm store (replay only) — the
//                        record-once/replay-many claim, with the chosen KS
//                        pinned equal across all three.
//   4. sharded replay  — bit-identical merged stats at 1..8 workers, with
//                        per-worker-count timings.
//   5. sampling        — sampled-vs-full sweep agreement at a size where
//                        the full replay is feasible (N=256), then the
//                        headline: sampled selection on N=2000 LU, whose
//                        full trace is ~10^10 records, in seconds.
//
// --bench_json=PATH writes BENCH_trace.json (schema 3) with a "trace"
// extra carrying the machine-checkable evidence; CI gates on it.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/assume.hpp"
#include "bench/benchutil.hpp"
#include "interp/trace.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"
#include "model/sweep.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"
#include "trace/store.hpp"
#include "trace/synth.hpp"
#include "transform/blocking.hpp"

namespace {

using namespace blk;
using namespace blk::ir;
using namespace blk::ir::dsl;

// ---------------------------------------------------------------------
// 1. Sink dispatch micro-benchmark.

constexpr std::size_t kSinkRecords = 1 << 20;
constexpr std::size_t kSinkFlush = 1 << 12;

void BM_SinkFnPointer(benchmark::State& st) {
  std::uint64_t total = 0;
  for (auto _ : st) {
    interp::TraceBuffer tb(
        kSinkFlush, &total,
        [](void* ctx, std::span<const interp::TraceRecord> r) {
          *static_cast<std::uint64_t*>(ctx) += r.size();
        });
    for (std::size_t i = 0; i < kSinkRecords; ++i)
      tb.append(i * 8, (i & 7) == 0);
    tb.flush();
  }
  benchmark::DoNotOptimize(total);
  st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                       static_cast<std::int64_t>(kSinkRecords));
}
BENCHMARK(BM_SinkFnPointer);

void BM_SinkStdFunction(benchmark::State& st) {
  std::uint64_t total = 0;
  for (auto _ : st) {
    interp::TraceBuffer tb(
        kSinkFlush,
        interp::TraceBuffer::Sink(
            [&total](std::span<const interp::TraceRecord> r) {
              total += r.size();
            }));
    for (std::size_t i = 0; i < kSinkRecords; ++i)
      tb.append(i * 8, (i & 7) == 0);
    tb.flush();
  }
  benchmark::DoNotOptimize(total);
  st.SetItemsProcessed(static_cast<std::int64_t>(st.iterations()) *
                       static_cast<std::int64_t>(kSinkRecords));
}
BENCHMARK(BM_SinkStdFunction);

// ---------------------------------------------------------------------
// Shared fixtures.

/// Block point LU with a runtime-scalar KS (the selectblock recipe).
Program blocked_lu() {
  Program prog = kernels::lu_point_ir();
  prog.param("KS");
  analysis::Assumptions hints;
  hints.assert_le(isub(iadd(ivar("K"), ivar("KS")), iconst(1)),
                  isub(ivar("N"), iconst(1)));
  (void)transform::auto_block(prog, prog.body[0]->as_loop(), ivar("KS"),
                              hints);
  prog.scalar("KS");
  return prog;
}

const std::vector<cachesim::CacheConfig> kL1 = {
    {.size_bytes = 32 * 1024, .line_bytes = 64, .assoc = 4}};

double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string fmt_d(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = blk::bench::extract_json_path(argc, argv);
  blk::bench::CaptureReporter rep = blk::bench::run_all(argc, argv);

  const Program lu = blocked_lu();
  blk::bench::JsonWriter json(json_path);

  // -------------------------------------------------------------------
  // 2. Compression: blocked LU at N=512 — the raw stream is ~2.9 GB and
  // is never materialized; the synthesizer emits the compressed trace
  // directly from the IR.
  trace::EncodedTrace t512;
  double synth_s;
  {
    const auto t0 = std::chrono::steady_clock::now();
    trace::TraceEncoder enc(t512);
    (void)trace::synthesize(lu, {{"N", 512}, {"KS", 32}}, enc);
    enc.finish();
    synth_s = now_minus(t0);
  }
  const double compression = t512.compression_ratio();

  // -------------------------------------------------------------------
  // 3. The same sweep three ways.  min-of-2 timings.
  model::SweepOptions base;
  base.candidates = {4, 8, 16, 32, 64};
  base.probe_params = {{"N", 128}};
  base.levels = kL1;
  base.shard_records = 1u << 18;  // parallelize even probe-sized replays

  model::SweepResult raw_res, cold_res, warm_res;
  double raw_s = 1e30, cold_s = 1e30, warm_s = 1e30;
  {
    model::SweepOptions opt = base;
    opt.trace_format = model::TraceFormat::Raw;
    for (int i = 0; i < 2; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      raw_res = model::sweep_block_sizes(lu, opt);
      raw_s = std::min(raw_s, now_minus(t0));
    }
  }
  for (int i = 0; i < 2; ++i) {
    trace::TraceStore store;  // fresh: synthesize + replay each candidate
    model::SweepOptions opt = base;
    opt.store = &store;
    const auto t0 = std::chrono::steady_clock::now();
    cold_res = model::sweep_block_sizes(lu, opt);
    cold_s = std::min(cold_s, now_minus(t0));
  }
  {
    trace::TraceStore store;
    model::SweepOptions opt = base;
    opt.store = &store;
    (void)model::sweep_block_sizes(lu, opt);  // prime
    for (int i = 0; i < 2; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      warm_res = model::sweep_block_sizes(lu, opt);
      warm_s = std::min(warm_s, now_minus(t0));
    }
  }
  const long raw_ks = raw_res.rows[raw_res.best_index].ks;
  const long cold_ks = cold_res.rows[cold_res.best_index].ks;
  const long warm_ks = warm_res.rows[warm_res.best_index].ks;
  const bool ks_equal = raw_ks == cold_ks && cold_ks == warm_ks;
  const double replay_speedup = raw_s / warm_s;

  // -------------------------------------------------------------------
  // 4. Sharded replay: merged stats must be bit-identical at any worker
  // count (shard plan forced to ~43 shards via a small target).
  trace::EncodedTrace det;
  {
    trace::TraceEncoder enc(det, 1u << 14);  // dense sync points
    (void)trace::synthesize(lu, {{"N", 128}, {"KS", 16}}, enc);
    enc.finish();
  }
  bool bit_identical = true;
  std::vector<double> replay_secs(9, 0.0);
  trace::ReplayResult ref;
  for (unsigned w = 1; w <= 8; ++w) {
    trace::ReplayOptions ropt;
    ropt.levels = kL1;
    ropt.workers = w;
    ropt.shard_records = 1u << 16;
    const auto t0 = std::chrono::steady_clock::now();
    const trace::ReplayResult r = trace::replay(det, ropt);
    replay_secs[w] = now_minus(t0);
    if (w == 1) {
      ref = r;
    } else {
      bit_identical = bit_identical && r.records == ref.records &&
                      r.back_invalidations == ref.back_invalidations &&
                      r.levels.size() == ref.levels.size();
      for (std::size_t l = 0; bit_identical && l < r.levels.size(); ++l)
        bit_identical = r.levels[l] == ref.levels[l];
    }
  }

  // -------------------------------------------------------------------
  // 5a. Sampling fidelity where the full replay is feasible: N=256,
  // every 8th block row.  The sweep validates sampled-vs-full on the
  // middle candidate itself; we additionally pin the winning KS.
  model::SweepOptions agree = base;
  agree.probe_params = {{"N", 256}};
  agree.candidates = {8, 16, 32, 64};
  agree.shard_records = 4u << 20;
  trace::TraceStore agree_store;
  agree.store = &agree_store;
  const model::SweepResult full_res = model::sweep_block_sizes(lu, agree);
  agree.sample_every = 8;
  agree.sample_tolerance = 0.02;
  const model::SweepResult samp_res = model::sweep_block_sizes(lu, agree);
  const long full_ks = full_res.rows[full_res.best_index].ks;
  const long samp_ks = samp_res.rows[samp_res.best_index].ks;

  // 5b. The headline: sampled selection on N=2000 LU.  The full trace is
  // ~1.1e10 records (171 GB raw) — the validation probe is skipped by the
  // record cap and the tolerance above carries over.
  model::SweepOptions big;
  big.candidates = {16, 32, 64, 128};
  big.probe_params = {{"N", 2000}};
  big.levels = kL1;
  big.sample_every = 64;
  trace::TraceStore big_store;
  big.store = &big_store;
  model::SweepResult big_res;
  double big_s;
  {
    const auto t0 = std::chrono::steady_clock::now();
    big_res = model::sweep_block_sizes(lu, big);
    big_s = now_minus(t0);
  }
  std::uint64_t big_records = 0;
  for (const auto& row : big_res.rows) big_records += row.trace_len;

  // -------------------------------------------------------------------
  // Report.
  blk::bench::Table modes({"sweep mode", "time", "speedup", "best KS"});
  modes.row({"raw (VM per candidate)", blk::bench::fmt_time(raw_s), "1.00",
             std::to_string(raw_ks)});
  modes.row({"trace, cold store", blk::bench::fmt_time(cold_s),
             blk::bench::fmt_speedup(raw_s, cold_s), std::to_string(cold_ks)});
  modes.row({"trace, warm store", blk::bench::fmt_time(warm_s),
             blk::bench::fmt_speedup(raw_s, warm_s), std::to_string(warm_ks)});
  modes.print("T-TRACE: blocked LU N=128, 5 candidates, L1 32K/64B/4");

  blk::bench::Table ev({"evidence", "value"});
  ev.row({"LU N=512 raw trace", fmt_d("%.2f GB", t512.raw_bytes() / 1e9)});
  ev.row({"LU N=512 compressed",
          fmt_d("%.2f MB", static_cast<double>(t512.bytes.size()) / 1e6)});
  ev.row({"compression ratio", fmt_d("%.0fx", compression)});
  ev.row({"synthesis time (N=512)", blk::bench::fmt_time(synth_s)});
  ev.row({"sharded replay 1..8 workers",
          bit_identical ? "bit-identical" : "MISMATCH"});
  ev.row({"replay speedup 8w vs 1w",
          blk::bench::fmt_speedup(replay_secs[1], replay_secs[8])});
  ev.row({"sampled-vs-full KS (N=256)", std::to_string(samp_ks) + " vs " +
                                            std::to_string(full_ks)});
  ev.row({"sampled probe miss-ratio delta",
          fmt_d("%.6f", samp_res.sample_delta)});
  ev.row({"N=2000 sampled selection", blk::bench::fmt_time(big_s) + ", KS=" +
                                          std::to_string(
                                              big_res.rows[big_res.best_index]
                                                  .ks)});
  ev.row({"N=2000 records replayed (of ~1.1e10)",
          fmt_d("%.3g", static_cast<double>(big_records))});
  ev.print("T-TRACE: pipeline evidence");

  if (!ks_equal)
    std::fprintf(stderr,
                 "WARNING: sweep modes disagree on KS (raw=%ld cold=%ld "
                 "warm=%ld)\n",
                 raw_ks, cold_ks, warm_ks);

  if (json.enabled()) {
    json.set_parallel(true);
    json.row("sink_fnptr_1M", rep.get("BM_SinkFnPointer"));
    json.row("sink_stdfunction_1M", rep.get("BM_SinkStdFunction"),
             rep.get("BM_SinkFnPointer") > 0
                 ? rep.get("BM_SinkFnPointer") / rep.get("BM_SinkStdFunction")
                 : -1.0);
    json.row("synthesize_lu512", synth_s);
    json.row("sweep_raw_vm_n128", raw_s);
    json.row("sweep_trace_cold_n128", cold_s, raw_s / cold_s);
    json.row("sweep_trace_warm_n128", warm_s, raw_s / warm_s);
    for (unsigned w : {1u, 2u, 4u, 8u})
      json.row("replay_lu128_workers" + std::to_string(w), replay_secs[w],
               replay_secs[1] / replay_secs[w]);
    json.row("sampled_select_lu2000", big_s);
    std::string tr = "{";
    tr += "\"compression_ratio\": " + fmt_d("%.3f", compression);
    tr += ", \"lu512_records\": " + std::to_string(t512.records);
    tr += ", \"lu512_encoded_bytes\": " + std::to_string(t512.bytes.size());
    tr += ", \"shard_bit_identical\": ";
    tr += bit_identical ? "true" : "false";
    tr += ", \"workers_checked\": 8";
    tr += ", \"replay_speedup_vs_vm\": " + fmt_d("%.3f", replay_speedup);
    tr += ", \"ks\": {\"raw\": " + std::to_string(raw_ks) +
          ", \"cold\": " + std::to_string(cold_ks) +
          ", \"warm\": " + std::to_string(warm_ks) + "}";
    tr += ", \"sample\": {\"full_ks\": " + std::to_string(full_ks) +
          ", \"sampled_ks\": " + std::to_string(samp_ks) +
          ", \"every\": " + std::to_string(samp_res.sample_every) +
          ", \"validated\": " +
          (samp_res.sample_validated ? "true" : "false") +
          ", \"delta\": " + fmt_d("%.6f", samp_res.sample_delta) + "}";
    tr += ", \"n2000\": {\"seconds\": " + fmt_d("%.3f", big_s) +
          ", \"ks\": " + std::to_string(big_res.rows[big_res.best_index].ks) +
          ", \"sample_every\": " + std::to_string(big_res.sample_every) +
          ", \"records_replayed\": " + std::to_string(big_records) + "}";
    tr += "}";
    json.extra("trace", tr);
    json.write();
  }
  return 0;
}
