// Shared benchmark plumbing: google-benchmark as the timing engine, plus a
// capture reporter so each binary can end with the paper-style table
// (the same rows the 1992 tables report, with measured speedups).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// Compile flags of the benchmark binary, stamped in by bench/CMakeLists.txt
// so the JSON reports say how the numbers were produced.
#ifndef BLK_BENCH_FLAGS
#define BLK_BENCH_FLAGS ""
#endif

namespace blk::bench {

/// What produced the numbers: every --bench_json report embeds this so a
/// result file is interpretable without the CI log it came from.
struct HostInfo {
  std::string compiler;  ///< e.g. "gcc 12.2.0"
  std::string flags;     ///< benchmark binary's compile flags
  std::string cpu;       ///< /proc/cpuinfo model name (or "unknown")
  unsigned cores = 0;    ///< std::thread::hardware_concurrency()
};

[[nodiscard]] inline HostInfo host_info() {
  HostInfo h;
#if defined(__clang__)
  h.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  h.compiler = std::string("gcc ") + __VERSION__;
#else
  h.compiler = "unknown";
#endif
  h.flags = BLK_BENCH_FLAGS;
  h.cpu = "unknown";
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (!colon) break;
      std::string name = colon + 1;
      while (!name.empty() && (name.front() == ' ' || name.front() == '\t'))
        name.erase(name.begin());
      while (!name.empty() && (name.back() == '\n' || name.back() == ' '))
        name.pop_back();
      if (!name.empty()) h.cpu = name;
      break;
    }
    std::fclose(f);
  }
  h.cores = std::thread::hardware_concurrency();
  return h;
}

/// Machine-readable result sink, opt-in via `--bench_json=<path>`.
///
/// Schema 3: one object {"schema": 3, "host": {compiler, flags, cpu,
/// cores, threads, parallel}, <extras>, "rows": [{benchmark, seconds,
/// speedup_vs_baseline}]} — speedup is null for baseline rows, extras are
/// raw JSON values added with extra() (e.g. the native engine's
/// compile/cache stats).  `threads` is how many threads the run was
/// allowed (defaults to the core count) and `parallel` whether any
/// benchmark executed a parallel plan — schema 2 files, which lack both
/// fields, remain readable by treating them as cores/false.  CI uploads
/// these files as artifacts so perf history survives the run.
class JsonWriter {
 public:
  /// `path` may be empty (writer disabled).
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Thread budget recorded in the host block (default: core count).
  void set_threads(unsigned n) { threads_ = n; }
  /// Whether any benchmark in this report ran a parallel plan.
  void set_parallel(bool on) { parallel_ = on; }

  void row(const std::string& benchmark, double seconds,
           double speedup_vs_baseline = -1.0) {
    rows_.push_back({benchmark, seconds, speedup_vs_baseline});
  }

  /// Attach a pre-rendered JSON value under a top-level key.
  void extra(const std::string& key, const std::string& raw_json) {
    extras_.emplace_back(key, raw_json);
  }

  /// Write the collected report; returns false when disabled or on I/O
  /// error.
  bool write() const {
    if (!enabled()) return false;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      return false;
    }
    const HostInfo h = host_info();
    std::fprintf(f, "{\n  \"schema\": 3,\n");
    std::fprintf(f,
                 "  \"host\": {\"compiler\": \"%s\", \"flags\": \"%s\", "
                 "\"cpu\": \"%s\", \"cores\": %u, \"threads\": %u, "
                 "\"parallel\": %s},\n",
                 json_escape(h.compiler).c_str(),
                 json_escape(h.flags).c_str(), json_escape(h.cpu).c_str(),
                 h.cores, threads_ ? threads_ : h.cores,
                 parallel_ ? "true" : "false");
    for (const auto& [key, raw] : extras_)
      std::fprintf(f, "  \"%s\": %s,\n", json_escape(key).c_str(),
                   raw.c_str());
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"benchmark\": \"%s\", \"seconds\": %.9g, ",
                   json_escape(r.benchmark).c_str(), r.seconds);
      if (r.speedup > 0)
        std::fprintf(f, "\"speedup_vs_baseline\": %.6g}", r.speedup);
      else
        std::fprintf(f, "\"speedup_vs_baseline\": null}");
      std::fprintf(f, i + 1 < rows_.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string benchmark;
    double seconds;
    double speedup;
  };

  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, std::string>> extras_;
  unsigned threads_ = 0;  ///< 0: report the core count
  bool parallel_ = false;
};

/// Pull `--bench_json=<path>` out of argv (google-benchmark rejects flags
/// it does not know).  Returns `fallback` when the flag is absent; pass an
/// empty fallback to keep JSON opt-in.
inline std::string extract_json_path(int& argc, char** argv,
                                     const std::string& fallback = "") {
  const char* kFlag = "--bench_json=";
  std::string path = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
      path = argv[i] + std::strlen(kFlag);
    else
      argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Sentinel for "this benchmark did not run" (filtered out, or its name
/// was misspelled).  fmt_time/fmt_speedup render it "n/a", so a partial
/// run still prints a complete table instead of dying on a lookup.
inline constexpr double kNotRun = -1.0;

/// Console reporter that also records mean per-iteration real time (s)
/// under each benchmark's full name ("BM_LuPoint/300").
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::map<std::string, double> seconds;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.iterations > 0)
        seconds[r.benchmark_name()] =
            r.real_accumulated_time / static_cast<double>(r.iterations);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Time for a name, or kNotRun when the benchmark did not run.
  [[nodiscard]] double get(const std::string& name) const {
    auto it = seconds.find(name);
    return it == seconds.end() ? kNotRun : it->second;
  }
};

/// Run all registered benchmarks and return the capture.
inline CaptureReporter run_all(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  CaptureReporter rep;
  benchmark::RunSpecifiedBenchmarks(&rep);
  return rep;
}

/// Format seconds like the paper's tables (e.g. "2.55s" scaled to ms when
/// small).
inline std::string fmt_time(double s) {
  char buf[32];
  if (s < 0) return "n/a";
  if (s >= 0.1)
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  else
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  return buf;
}

inline std::string fmt_speedup(double base, double other) {
  if (base < 0 || other <= 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", base / other);
  return buf;
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::vector<std::size_t> w(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        if (r[c].size() > w[c]) w[c] = r[c].size();
    std::printf("\n=== %s ===\n", title.c_str());
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < header_.size(); ++c)
        std::printf(" %-*s |", static_cast<int>(w[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      std::printf("\n");
    };
    line(header_);
    std::printf("|");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      for (std::size_t i = 0; i < w[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blk::bench
