file(REMOVE_RECURSE
  "CMakeFiles/bench_blocksize_sweep.dir/bench_blocksize_sweep.cpp.o"
  "CMakeFiles/bench_blocksize_sweep.dir/bench_blocksize_sweep.cpp.o.d"
  "bench_blocksize_sweep"
  "bench_blocksize_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocksize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
