# Empty compiler generated dependencies file for bench_blocksize_sweep.
# This may be replaced when dependencies are built.
