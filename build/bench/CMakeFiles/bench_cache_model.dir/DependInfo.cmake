
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cache_model.cpp" "bench/CMakeFiles/bench_cache_model.dir/bench_cache_model.cpp.o" "gcc" "bench/CMakeFiles/bench_cache_model.dir/bench_cache_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/blk_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/blk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/blk_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/blk_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/blk_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/blk_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/blk_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
