file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_model.dir/bench_cache_model.cpp.o"
  "CMakeFiles/bench_cache_model.dir/bench_cache_model.cpp.o.d"
  "bench_cache_model"
  "bench_cache_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
