# Empty compiler generated dependencies file for bench_cache_model.
# This may be replaced when dependencies are built.
