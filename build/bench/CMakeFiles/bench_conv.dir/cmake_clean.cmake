file(REMOVE_RECURSE
  "CMakeFiles/bench_conv.dir/bench_conv.cpp.o"
  "CMakeFiles/bench_conv.dir/bench_conv.cpp.o.d"
  "bench_conv"
  "bench_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
