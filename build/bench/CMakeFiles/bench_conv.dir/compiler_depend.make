# Empty compiler generated dependencies file for bench_conv.
# This may be replaced when dependencies are built.
