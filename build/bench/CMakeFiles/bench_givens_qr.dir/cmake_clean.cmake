file(REMOVE_RECURSE
  "CMakeFiles/bench_givens_qr.dir/bench_givens_qr.cpp.o"
  "CMakeFiles/bench_givens_qr.dir/bench_givens_qr.cpp.o.d"
  "bench_givens_qr"
  "bench_givens_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_givens_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
