# Empty compiler generated dependencies file for bench_givens_qr.
# This may be replaced when dependencies are built.
