file(REMOVE_RECURSE
  "CMakeFiles/bench_householder.dir/bench_householder.cpp.o"
  "CMakeFiles/bench_householder.dir/bench_householder.cpp.o.d"
  "bench_householder"
  "bench_householder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_householder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
