# Empty compiler generated dependencies file for bench_householder.
# This may be replaced when dependencies are built.
