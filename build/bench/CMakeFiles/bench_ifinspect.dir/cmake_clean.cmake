file(REMOVE_RECURSE
  "CMakeFiles/bench_ifinspect.dir/bench_ifinspect.cpp.o"
  "CMakeFiles/bench_ifinspect.dir/bench_ifinspect.cpp.o.d"
  "bench_ifinspect"
  "bench_ifinspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ifinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
