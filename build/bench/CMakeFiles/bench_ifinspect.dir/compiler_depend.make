# Empty compiler generated dependencies file for bench_ifinspect.
# This may be replaced when dependencies are built.
