file(REMOVE_RECURSE
  "CMakeFiles/bench_lu_nopiv.dir/bench_lu_nopiv.cpp.o"
  "CMakeFiles/bench_lu_nopiv.dir/bench_lu_nopiv.cpp.o.d"
  "bench_lu_nopiv"
  "bench_lu_nopiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lu_nopiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
