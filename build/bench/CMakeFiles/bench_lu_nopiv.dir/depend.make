# Empty dependencies file for bench_lu_nopiv.
# This may be replaced when dependencies are built.
