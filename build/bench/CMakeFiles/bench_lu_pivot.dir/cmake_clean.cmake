file(REMOVE_RECURSE
  "CMakeFiles/bench_lu_pivot.dir/bench_lu_pivot.cpp.o"
  "CMakeFiles/bench_lu_pivot.dir/bench_lu_pivot.cpp.o.d"
  "bench_lu_pivot"
  "bench_lu_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lu_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
