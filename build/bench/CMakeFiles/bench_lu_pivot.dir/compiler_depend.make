# Empty compiler generated dependencies file for bench_lu_pivot.
# This may be replaced when dependencies are built.
