file(REMOVE_RECURSE
  "CMakeFiles/blockdo_language.dir/blockdo_language.cpp.o"
  "CMakeFiles/blockdo_language.dir/blockdo_language.cpp.o.d"
  "blockdo_language"
  "blockdo_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockdo_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
