# Empty compiler generated dependencies file for blockdo_language.
# This may be replaced when dependencies are built.
