file(REMOVE_RECURSE
  "CMakeFiles/convolution_pipeline.dir/convolution_pipeline.cpp.o"
  "CMakeFiles/convolution_pipeline.dir/convolution_pipeline.cpp.o.d"
  "convolution_pipeline"
  "convolution_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
