# Empty compiler generated dependencies file for convolution_pipeline.
# This may be replaced when dependencies are built.
