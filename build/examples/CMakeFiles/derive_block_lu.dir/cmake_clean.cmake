file(REMOVE_RECURSE
  "CMakeFiles/derive_block_lu.dir/derive_block_lu.cpp.o"
  "CMakeFiles/derive_block_lu.dir/derive_block_lu.cpp.o.d"
  "derive_block_lu"
  "derive_block_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derive_block_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
