# Empty dependencies file for derive_block_lu.
# This may be replaced when dependencies are built.
