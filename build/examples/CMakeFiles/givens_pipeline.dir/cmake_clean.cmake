file(REMOVE_RECURSE
  "CMakeFiles/givens_pipeline.dir/givens_pipeline.cpp.o"
  "CMakeFiles/givens_pipeline.dir/givens_pipeline.cpp.o.d"
  "givens_pipeline"
  "givens_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/givens_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
