# Empty dependencies file for givens_pipeline.
# This may be replaced when dependencies are built.
