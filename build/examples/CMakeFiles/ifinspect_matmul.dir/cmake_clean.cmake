file(REMOVE_RECURSE
  "CMakeFiles/ifinspect_matmul.dir/ifinspect_matmul.cpp.o"
  "CMakeFiles/ifinspect_matmul.dir/ifinspect_matmul.cpp.o.d"
  "ifinspect_matmul"
  "ifinspect_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifinspect_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
