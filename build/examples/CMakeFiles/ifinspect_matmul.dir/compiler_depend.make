# Empty compiler generated dependencies file for ifinspect_matmul.
# This may be replaced when dependencies are built.
