
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/assume.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/assume.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/assume.cpp.o.d"
  "/root/repo/src/analysis/ddtest.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/ddtest.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/ddtest.cpp.o.d"
  "/root/repo/src/analysis/depgraph.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/depgraph.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/depgraph.cpp.o.d"
  "/root/repo/src/analysis/refs.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/refs.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/refs.cpp.o.d"
  "/root/repo/src/analysis/reuse.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/reuse.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/reuse.cpp.o.d"
  "/root/repo/src/analysis/sections.cpp" "src/analysis/CMakeFiles/blk_analysis.dir/sections.cpp.o" "gcc" "src/analysis/CMakeFiles/blk_analysis.dir/sections.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/blk_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
