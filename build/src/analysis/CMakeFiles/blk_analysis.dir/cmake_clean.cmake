file(REMOVE_RECURSE
  "CMakeFiles/blk_analysis.dir/assume.cpp.o"
  "CMakeFiles/blk_analysis.dir/assume.cpp.o.d"
  "CMakeFiles/blk_analysis.dir/ddtest.cpp.o"
  "CMakeFiles/blk_analysis.dir/ddtest.cpp.o.d"
  "CMakeFiles/blk_analysis.dir/depgraph.cpp.o"
  "CMakeFiles/blk_analysis.dir/depgraph.cpp.o.d"
  "CMakeFiles/blk_analysis.dir/refs.cpp.o"
  "CMakeFiles/blk_analysis.dir/refs.cpp.o.d"
  "CMakeFiles/blk_analysis.dir/reuse.cpp.o"
  "CMakeFiles/blk_analysis.dir/reuse.cpp.o.d"
  "CMakeFiles/blk_analysis.dir/sections.cpp.o"
  "CMakeFiles/blk_analysis.dir/sections.cpp.o.d"
  "libblk_analysis.a"
  "libblk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
