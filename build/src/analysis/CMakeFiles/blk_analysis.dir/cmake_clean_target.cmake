file(REMOVE_RECURSE
  "libblk_analysis.a"
)
