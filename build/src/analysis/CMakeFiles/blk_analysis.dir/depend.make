# Empty dependencies file for blk_analysis.
# This may be replaced when dependencies are built.
