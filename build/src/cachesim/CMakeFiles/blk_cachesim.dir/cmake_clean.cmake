file(REMOVE_RECURSE
  "CMakeFiles/blk_cachesim.dir/cache.cpp.o"
  "CMakeFiles/blk_cachesim.dir/cache.cpp.o.d"
  "libblk_cachesim.a"
  "libblk_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
