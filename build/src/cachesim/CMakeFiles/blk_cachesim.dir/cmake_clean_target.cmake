file(REMOVE_RECURSE
  "libblk_cachesim.a"
)
