# Empty compiler generated dependencies file for blk_cachesim.
# This may be replaced when dependencies are built.
