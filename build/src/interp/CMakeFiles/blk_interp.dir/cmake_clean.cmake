file(REMOVE_RECURSE
  "CMakeFiles/blk_interp.dir/interp.cpp.o"
  "CMakeFiles/blk_interp.dir/interp.cpp.o.d"
  "libblk_interp.a"
  "libblk_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
