file(REMOVE_RECURSE
  "libblk_interp.a"
)
