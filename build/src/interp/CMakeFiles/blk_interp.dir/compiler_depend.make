# Empty compiler generated dependencies file for blk_interp.
# This may be replaced when dependencies are built.
