
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cpp" "src/ir/CMakeFiles/blk_ir.dir/affine.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/affine.cpp.o.d"
  "/root/repo/src/ir/codegen.cpp" "src/ir/CMakeFiles/blk_ir.dir/codegen.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/codegen.cpp.o.d"
  "/root/repo/src/ir/iexpr.cpp" "src/ir/CMakeFiles/blk_ir.dir/iexpr.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/iexpr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/blk_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/blk_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/ir/CMakeFiles/blk_ir.dir/stmt.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/stmt.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/ir/CMakeFiles/blk_ir.dir/validate.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/validate.cpp.o.d"
  "/root/repo/src/ir/vexpr.cpp" "src/ir/CMakeFiles/blk_ir.dir/vexpr.cpp.o" "gcc" "src/ir/CMakeFiles/blk_ir.dir/vexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
