file(REMOVE_RECURSE
  "CMakeFiles/blk_ir.dir/affine.cpp.o"
  "CMakeFiles/blk_ir.dir/affine.cpp.o.d"
  "CMakeFiles/blk_ir.dir/codegen.cpp.o"
  "CMakeFiles/blk_ir.dir/codegen.cpp.o.d"
  "CMakeFiles/blk_ir.dir/iexpr.cpp.o"
  "CMakeFiles/blk_ir.dir/iexpr.cpp.o.d"
  "CMakeFiles/blk_ir.dir/printer.cpp.o"
  "CMakeFiles/blk_ir.dir/printer.cpp.o.d"
  "CMakeFiles/blk_ir.dir/program.cpp.o"
  "CMakeFiles/blk_ir.dir/program.cpp.o.d"
  "CMakeFiles/blk_ir.dir/stmt.cpp.o"
  "CMakeFiles/blk_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/blk_ir.dir/validate.cpp.o"
  "CMakeFiles/blk_ir.dir/validate.cpp.o.d"
  "CMakeFiles/blk_ir.dir/vexpr.cpp.o"
  "CMakeFiles/blk_ir.dir/vexpr.cpp.o.d"
  "libblk_ir.a"
  "libblk_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
