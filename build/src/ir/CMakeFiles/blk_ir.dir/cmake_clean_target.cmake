file(REMOVE_RECURSE
  "libblk_ir.a"
)
