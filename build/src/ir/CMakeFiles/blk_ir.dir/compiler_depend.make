# Empty compiler generated dependencies file for blk_ir.
# This may be replaced when dependencies are built.
