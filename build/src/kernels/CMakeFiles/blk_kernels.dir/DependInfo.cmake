
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/conv.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/conv.cpp.o.d"
  "/root/repo/src/kernels/ir_kernels.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/ir_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/ir_kernels.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/lu.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/lu.cpp.o.d"
  "/root/repo/src/kernels/lu_pivot.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/lu_pivot.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/lu_pivot.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/matmul.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/matmul.cpp.o.d"
  "/root/repo/src/kernels/qr_givens.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/qr_givens.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/qr_givens.cpp.o.d"
  "/root/repo/src/kernels/qr_householder.cpp" "src/kernels/CMakeFiles/blk_kernels.dir/qr_householder.cpp.o" "gcc" "src/kernels/CMakeFiles/blk_kernels.dir/qr_householder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/blk_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
