file(REMOVE_RECURSE
  "CMakeFiles/blk_kernels.dir/conv.cpp.o"
  "CMakeFiles/blk_kernels.dir/conv.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/ir_kernels.cpp.o"
  "CMakeFiles/blk_kernels.dir/ir_kernels.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/lu.cpp.o"
  "CMakeFiles/blk_kernels.dir/lu.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/lu_pivot.cpp.o"
  "CMakeFiles/blk_kernels.dir/lu_pivot.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/matmul.cpp.o"
  "CMakeFiles/blk_kernels.dir/matmul.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/qr_givens.cpp.o"
  "CMakeFiles/blk_kernels.dir/qr_givens.cpp.o.d"
  "CMakeFiles/blk_kernels.dir/qr_householder.cpp.o"
  "CMakeFiles/blk_kernels.dir/qr_householder.cpp.o.d"
  "libblk_kernels.a"
  "libblk_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
