file(REMOVE_RECURSE
  "libblk_kernels.a"
)
