# Empty compiler generated dependencies file for blk_kernels.
# This may be replaced when dependencies are built.
