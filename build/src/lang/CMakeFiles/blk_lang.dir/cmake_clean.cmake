file(REMOVE_RECURSE
  "CMakeFiles/blk_lang.dir/blockdo.cpp.o"
  "CMakeFiles/blk_lang.dir/blockdo.cpp.o.d"
  "CMakeFiles/blk_lang.dir/lexer.cpp.o"
  "CMakeFiles/blk_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/blk_lang.dir/parser.cpp.o"
  "CMakeFiles/blk_lang.dir/parser.cpp.o.d"
  "libblk_lang.a"
  "libblk_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
