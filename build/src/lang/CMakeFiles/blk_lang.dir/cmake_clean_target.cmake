file(REMOVE_RECURSE
  "libblk_lang.a"
)
