# Empty compiler generated dependencies file for blk_lang.
# This may be replaced when dependencies are built.
