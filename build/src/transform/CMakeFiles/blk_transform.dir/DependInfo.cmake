
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/blocking.cpp" "src/transform/CMakeFiles/blk_transform.dir/blocking.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/blocking.cpp.o.d"
  "/root/repo/src/transform/distribute.cpp" "src/transform/CMakeFiles/blk_transform.dir/distribute.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/distribute.cpp.o.d"
  "/root/repo/src/transform/fuse.cpp" "src/transform/CMakeFiles/blk_transform.dir/fuse.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/fuse.cpp.o.d"
  "/root/repo/src/transform/ifinspect.cpp" "src/transform/CMakeFiles/blk_transform.dir/ifinspect.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/ifinspect.cpp.o.d"
  "/root/repo/src/transform/interchange.cpp" "src/transform/CMakeFiles/blk_transform.dir/interchange.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/interchange.cpp.o.d"
  "/root/repo/src/transform/pattern.cpp" "src/transform/CMakeFiles/blk_transform.dir/pattern.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/pattern.cpp.o.d"
  "/root/repo/src/transform/scalarrepl.cpp" "src/transform/CMakeFiles/blk_transform.dir/scalarrepl.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/scalarrepl.cpp.o.d"
  "/root/repo/src/transform/split.cpp" "src/transform/CMakeFiles/blk_transform.dir/split.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/split.cpp.o.d"
  "/root/repo/src/transform/stripmine.cpp" "src/transform/CMakeFiles/blk_transform.dir/stripmine.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/stripmine.cpp.o.d"
  "/root/repo/src/transform/unrolljam.cpp" "src/transform/CMakeFiles/blk_transform.dir/unrolljam.cpp.o" "gcc" "src/transform/CMakeFiles/blk_transform.dir/unrolljam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/blk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/blk_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
