file(REMOVE_RECURSE
  "CMakeFiles/blk_transform.dir/blocking.cpp.o"
  "CMakeFiles/blk_transform.dir/blocking.cpp.o.d"
  "CMakeFiles/blk_transform.dir/distribute.cpp.o"
  "CMakeFiles/blk_transform.dir/distribute.cpp.o.d"
  "CMakeFiles/blk_transform.dir/fuse.cpp.o"
  "CMakeFiles/blk_transform.dir/fuse.cpp.o.d"
  "CMakeFiles/blk_transform.dir/ifinspect.cpp.o"
  "CMakeFiles/blk_transform.dir/ifinspect.cpp.o.d"
  "CMakeFiles/blk_transform.dir/interchange.cpp.o"
  "CMakeFiles/blk_transform.dir/interchange.cpp.o.d"
  "CMakeFiles/blk_transform.dir/pattern.cpp.o"
  "CMakeFiles/blk_transform.dir/pattern.cpp.o.d"
  "CMakeFiles/blk_transform.dir/scalarrepl.cpp.o"
  "CMakeFiles/blk_transform.dir/scalarrepl.cpp.o.d"
  "CMakeFiles/blk_transform.dir/split.cpp.o"
  "CMakeFiles/blk_transform.dir/split.cpp.o.d"
  "CMakeFiles/blk_transform.dir/stripmine.cpp.o"
  "CMakeFiles/blk_transform.dir/stripmine.cpp.o.d"
  "CMakeFiles/blk_transform.dir/unrolljam.cpp.o"
  "CMakeFiles/blk_transform.dir/unrolljam.cpp.o.d"
  "libblk_transform.a"
  "libblk_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
