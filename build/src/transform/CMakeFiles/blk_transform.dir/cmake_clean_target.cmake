file(REMOVE_RECURSE
  "libblk_transform.a"
)
