# Empty compiler generated dependencies file for blk_transform.
# This may be replaced when dependencies are built.
