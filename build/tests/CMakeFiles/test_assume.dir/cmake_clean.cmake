file(REMOVE_RECURSE
  "CMakeFiles/test_assume.dir/analysis/assume_test.cpp.o"
  "CMakeFiles/test_assume.dir/analysis/assume_test.cpp.o.d"
  "test_assume"
  "test_assume.pdb"
  "test_assume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
