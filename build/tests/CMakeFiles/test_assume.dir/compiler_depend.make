# Empty compiler generated dependencies file for test_assume.
# This may be replaced when dependencies are built.
