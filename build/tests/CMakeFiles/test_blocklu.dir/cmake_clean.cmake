file(REMOVE_RECURSE
  "CMakeFiles/test_blocklu.dir/transform/blocklu_test.cpp.o"
  "CMakeFiles/test_blocklu.dir/transform/blocklu_test.cpp.o.d"
  "test_blocklu"
  "test_blocklu.pdb"
  "test_blocklu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocklu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
