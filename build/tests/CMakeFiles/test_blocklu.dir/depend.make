# Empty dependencies file for test_blocklu.
# This may be replaced when dependencies are built.
