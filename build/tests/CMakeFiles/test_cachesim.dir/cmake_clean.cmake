file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim.dir/cachesim/cache_test.cpp.o"
  "CMakeFiles/test_cachesim.dir/cachesim/cache_test.cpp.o.d"
  "test_cachesim"
  "test_cachesim.pdb"
  "test_cachesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
