file(REMOVE_RECURSE
  "CMakeFiles/test_conv.dir/kernels/conv_test.cpp.o"
  "CMakeFiles/test_conv.dir/kernels/conv_test.cpp.o.d"
  "test_conv"
  "test_conv.pdb"
  "test_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
