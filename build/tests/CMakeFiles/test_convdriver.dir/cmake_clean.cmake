file(REMOVE_RECURSE
  "CMakeFiles/test_convdriver.dir/transform/convdriver_test.cpp.o"
  "CMakeFiles/test_convdriver.dir/transform/convdriver_test.cpp.o.d"
  "test_convdriver"
  "test_convdriver.pdb"
  "test_convdriver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convdriver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
