# Empty dependencies file for test_convdriver.
# This may be replaced when dependencies are built.
