file(REMOVE_RECURSE
  "CMakeFiles/test_ddtest.dir/analysis/ddtest_test.cpp.o"
  "CMakeFiles/test_ddtest.dir/analysis/ddtest_test.cpp.o.d"
  "test_ddtest"
  "test_ddtest.pdb"
  "test_ddtest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
