# Empty compiler generated dependencies file for test_ddtest.
# This may be replaced when dependencies are built.
