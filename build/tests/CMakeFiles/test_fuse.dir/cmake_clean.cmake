file(REMOVE_RECURSE
  "CMakeFiles/test_fuse.dir/transform/fuse_test.cpp.o"
  "CMakeFiles/test_fuse.dir/transform/fuse_test.cpp.o.d"
  "test_fuse"
  "test_fuse.pdb"
  "test_fuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
