# Empty compiler generated dependencies file for test_fuse.
# This may be replaced when dependencies are built.
