file(REMOVE_RECURSE
  "CMakeFiles/test_givens_driver.dir/transform/givens_driver_test.cpp.o"
  "CMakeFiles/test_givens_driver.dir/transform/givens_driver_test.cpp.o.d"
  "test_givens_driver"
  "test_givens_driver.pdb"
  "test_givens_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_givens_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
