# Empty dependencies file for test_givens_driver.
# This may be replaced when dependencies are built.
