file(REMOVE_RECURSE
  "CMakeFiles/test_iexpr.dir/ir/iexpr_test.cpp.o"
  "CMakeFiles/test_iexpr.dir/ir/iexpr_test.cpp.o.d"
  "test_iexpr"
  "test_iexpr.pdb"
  "test_iexpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
