# Empty dependencies file for test_iexpr.
# This may be replaced when dependencies are built.
