file(REMOVE_RECURSE
  "CMakeFiles/test_ifinspect.dir/transform/ifinspect_test.cpp.o"
  "CMakeFiles/test_ifinspect.dir/transform/ifinspect_test.cpp.o.d"
  "test_ifinspect"
  "test_ifinspect.pdb"
  "test_ifinspect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ifinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
