# Empty compiler generated dependencies file for test_ifinspect.
# This may be replaced when dependencies are built.
