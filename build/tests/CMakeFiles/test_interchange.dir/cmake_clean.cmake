file(REMOVE_RECURSE
  "CMakeFiles/test_interchange.dir/transform/interchange_test.cpp.o"
  "CMakeFiles/test_interchange.dir/transform/interchange_test.cpp.o.d"
  "test_interchange"
  "test_interchange.pdb"
  "test_interchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
