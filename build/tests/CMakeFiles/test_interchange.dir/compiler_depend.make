# Empty compiler generated dependencies file for test_interchange.
# This may be replaced when dependencies are built.
