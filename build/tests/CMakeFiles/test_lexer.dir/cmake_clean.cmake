file(REMOVE_RECURSE
  "CMakeFiles/test_lexer.dir/lang/lexer_test.cpp.o"
  "CMakeFiles/test_lexer.dir/lang/lexer_test.cpp.o.d"
  "test_lexer"
  "test_lexer.pdb"
  "test_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
