file(REMOVE_RECURSE
  "CMakeFiles/test_lu_pivot.dir/kernels/lu_pivot_test.cpp.o"
  "CMakeFiles/test_lu_pivot.dir/kernels/lu_pivot_test.cpp.o.d"
  "test_lu_pivot"
  "test_lu_pivot.pdb"
  "test_lu_pivot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lu_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
