# Empty compiler generated dependencies file for test_lu_pivot.
# This may be replaced when dependencies are built.
