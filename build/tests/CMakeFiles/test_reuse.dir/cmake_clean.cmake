file(REMOVE_RECURSE
  "CMakeFiles/test_reuse.dir/analysis/reuse_test.cpp.o"
  "CMakeFiles/test_reuse.dir/analysis/reuse_test.cpp.o.d"
  "test_reuse"
  "test_reuse.pdb"
  "test_reuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
