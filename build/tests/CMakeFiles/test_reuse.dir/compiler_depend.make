# Empty compiler generated dependencies file for test_reuse.
# This may be replaced when dependencies are built.
