file(REMOVE_RECURSE
  "CMakeFiles/test_scalarrepl.dir/transform/scalarrepl_test.cpp.o"
  "CMakeFiles/test_scalarrepl.dir/transform/scalarrepl_test.cpp.o.d"
  "test_scalarrepl"
  "test_scalarrepl.pdb"
  "test_scalarrepl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalarrepl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
