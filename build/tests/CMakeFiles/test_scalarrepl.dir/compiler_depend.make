# Empty compiler generated dependencies file for test_scalarrepl.
# This may be replaced when dependencies are built.
