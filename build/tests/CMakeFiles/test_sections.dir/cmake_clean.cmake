file(REMOVE_RECURSE
  "CMakeFiles/test_sections.dir/analysis/sections_test.cpp.o"
  "CMakeFiles/test_sections.dir/analysis/sections_test.cpp.o.d"
  "test_sections"
  "test_sections.pdb"
  "test_sections[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
