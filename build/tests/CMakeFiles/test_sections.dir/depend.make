# Empty dependencies file for test_sections.
# This may be replaced when dependencies are built.
