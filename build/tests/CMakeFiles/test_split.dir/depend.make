# Empty dependencies file for test_split.
# This may be replaced when dependencies are built.
