file(REMOVE_RECURSE
  "CMakeFiles/test_stmt.dir/ir/stmt_test.cpp.o"
  "CMakeFiles/test_stmt.dir/ir/stmt_test.cpp.o.d"
  "test_stmt"
  "test_stmt.pdb"
  "test_stmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
