# Empty dependencies file for test_stmt.
# This may be replaced when dependencies are built.
