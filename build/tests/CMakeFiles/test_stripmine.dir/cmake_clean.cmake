file(REMOVE_RECURSE
  "CMakeFiles/test_stripmine.dir/transform/stripmine_test.cpp.o"
  "CMakeFiles/test_stripmine.dir/transform/stripmine_test.cpp.o.d"
  "test_stripmine"
  "test_stripmine.pdb"
  "test_stripmine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stripmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
