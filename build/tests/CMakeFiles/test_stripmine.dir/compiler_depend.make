# Empty compiler generated dependencies file for test_stripmine.
# This may be replaced when dependencies are built.
