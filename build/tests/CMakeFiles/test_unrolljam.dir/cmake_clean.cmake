file(REMOVE_RECURSE
  "CMakeFiles/test_unrolljam.dir/transform/unrolljam_test.cpp.o"
  "CMakeFiles/test_unrolljam.dir/transform/unrolljam_test.cpp.o.d"
  "test_unrolljam"
  "test_unrolljam.pdb"
  "test_unrolljam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unrolljam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
