# Empty dependencies file for test_unrolljam.
# This may be replaced when dependencies are built.
