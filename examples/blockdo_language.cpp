// §6 end to end: the machine-independent BLOCK DO source for block LU
// (Fig. 11), compiled by the mini-Fortran front end, with the blocking
// factor chosen by the compiler's machine model — never by the programmer.
//
//   $ ./examples/blockdo_language
#include <cstdio>

#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "kernels/ir_kernels.hpp"
#include "lang/blockdo.hpp"
#include "lang/parser.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"

using namespace blk;
using namespace blk::ir::dsl;

static const char* kFig11 = R"(
PARAMETER N
REAL*8 A(N,N)
BLOCK DO K = 1, N-1
  IN K DO KK
    DO I = KK+1, N
      A(I,KK) = A(I,KK)/A(KK,KK)
    ENDDO
    DO J = KK+1, LAST(K)
      DO I = KK+1, N
        A(I,J) = A(I,J) - A(I,KK)*A(KK,J)
      ENDDO
    ENDDO
  ENDDO
  DO J = LAST(K)+1, N
    DO I = K+1, N
      IN K DO KK = K, MIN(LAST(K), I-1)
        A(I,J) = A(I,J) - A(I,KK)*A(KK,J)
      ENDDO
    ENDDO
  ENDDO
ENDDO
)";

int main() {
  std::printf("Machine-independent source (the paper's Fig. 11):\n%s\n",
              kFig11);

  auto cr = lang::compile(kFig11);
  std::printf("Lowered IR (blocking factor still symbolic):\n%s\n",
              ir::print(cr.program.body).c_str());

  // Two machines, two factors — same source.
  struct Target {
    const char* name;
    lang::MachineModel machine;
  };
  const Target targets[] = {
      {"RS/6000 540 (64KB cache)", {}},
      {"small embedded (8KB cache)", {.cache_bytes = 8 * 1024}},
      {"large L2 (512KB)", {.cache_bytes = 512 * 1024}},
  };
  for (const auto& t : targets) {
    auto sizes = lang::choose_block_sizes(cr, t.machine);
    std::printf("%-28s -> BS_K = %ld\n", t.name, sizes.at("BS_K"));
  }

  // Bind the RS/6000 choice and check against the point algorithm.
  auto sizes = lang::choose_block_sizes(cr, {});
  lang::bind_block_sizes(cr, sizes);
  ir::Program point = kernels::lu_point_ir();
  const long n = 40;
  interp::ExecEngine ia(point, {{"N", n}});
  interp::ExecEngine ib(cr.program, {{"N", n}});
  for (auto* in : {&ia, &ib}) {
    auto& t = in->store().arrays.at("A");
    interp::fill_random(t, 7);
    for (long i = 1; i <= n; ++i) {
      std::vector<long> idx{i, i};
      t.at(idx) += static_cast<double>(n);
    }
  }
  ia.run();
  ib.run();
  std::printf("\nBLOCK DO LU vs point LU at N=%ld: max |difference| = %g\n",
              n, interp::max_abs_diff(ia.store(), ib.store()));

  // Close the loop with the optimizer: the same block algorithm the user
  // wrote in BLOCK DO form is what the pass pipeline derives from the
  // point algorithm automatically — run it at the machine-chosen factor
  // and check it computes the same thing.
  ir::Program derived = kernels::lu_point_ir();
  analysis::Assumptions hints;
  hints.assert_le(v("K") + v("KS") - 1, v("N") - 1);
  (void)pm::run_spec(derived, "autoblock(b=KS)", hints);
  interp::ExecEngine ic(derived, {{"N", n}, {"KS", sizes.at("BS_K")}});
  {
    auto& t = ic.store().arrays.at("A");
    interp::fill_random(t, 7);
    for (long i = 1; i <= n; ++i) {
      std::vector<long> idx{i, i};
      t.at(idx) += static_cast<double>(n);
    }
  }
  ic.run();
  std::printf("autoblock(b=KS)-derived LU at KS=%ld vs point LU: "
              "max |difference| = %g\n",
              sizes.at("BS_K"), interp::max_abs_diff(ia.store(), ic.store()));

  // The BLOCK DO program straight to native code via the JIT engine.
  if (native::available()) {
    // bind_block_sizes substituted BS_K into the body but the parameter
    // stays declared; the native ABI wants every declared param bound.
    interp::ExecEngine in(cr.program,
                          {{"N", n}, {"BS_K", sizes.at("BS_K")}},
                          interp::Engine::Native);
    auto& t = in.store().arrays.at("A");
    interp::fill_random(t, 7);
    for (long i = 1; i <= n; ++i) {
      std::vector<long> idx{i, i};
      t.at(idx) += static_cast<double>(n);
    }
    in.run();
    std::printf("native JIT vs VM on the BLOCK DO program: "
                "max |difference| = %g\n",
                interp::max_abs_diff(ib.store(), in.store()));
  }
  return 0;
}
