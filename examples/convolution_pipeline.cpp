// The §3.2 seismic pipeline: take the adjoint convolution with its
// MIN/MAX trapezoid bounds, split the iteration space, normalize the
// rhomboidal piece, unroll-and-jam — all on IR — then time the equivalent
// native kernels (the oil-exploration loops were 20% of that program's
// runtime).
//
//   $ ./examples/convolution_pipeline
#include <chrono>
#include <cstdio>

#include "interp/vm.hpp"
#include "ir/printer.hpp"
#include "kernels/conv.hpp"
#include "kernels/ir_kernels.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"

using namespace blk;
using namespace blk::ir;

int main() {
  Program p = kernels::aconv_ir();
  std::printf("Adjoint convolution, point form:\n%s\n",
              print(p.body).c_str());

  // 1. Index-set split the trapezoid: one rhomboidal piece (K = I..I+N2)
  //    and one triangular piece (K = I..N1).  The pipeline context keeps
  //    the pieces between stages.
  pm::PipelineContext ctx(p);
  (void)pm::run_pipeline(pm::parse_pipeline("split-trapezoid"), ctx);
  std::printf("After trapezoid splitting (%zu loops):\n%s\n",
              ctx.pieces.size(), print(p.body).c_str());

  // 2. Normalize the rhomboid's K loop, making it rectangular, then
  //    unroll-and-jam I by 4 (register blocking).  focus retargets the
  //    pipeline at each loop by variable name.
  (void)pm::run_pipeline(
      pm::parse_pipeline("focus(var=K); normalize; focus(var=I); "
                         "unrolljam(u=4)"),
      ctx);
  std::printf("After normalization + unroll-and-jam of the rhomboid:\n%s\n",
              print(p.body).c_str());

  // 3. Verify against the original on the interpreter.
  Program orig = kernels::aconv_ir();
  const long size = 40;
  ir::Env env{{"N1", size - 1}, {"N2", 6 * (size - 1) / 7},
              {"N3", size - 1}};
  interp::ExecEngine ia(orig, env), ib(p, env);
  for (auto* in : {&ia, &ib}) {
    std::uint64_t k = 5;
    for (auto& [name, t] : in->store().arrays) interp::fill_random(t, ++k);
    in->store().scalars["DT"] = 0.25;
  }
  ia.run();
  ib.run();
  std::printf("max |difference| after the IR pipeline: %g\n",
              interp::max_abs_diff(ia.store(), ib.store()));

  // The transformed nest through the native JIT (C backend + host cc).
  if (native::available()) {
    interp::ExecEngine in(p, env, interp::Engine::Native);
    std::uint64_t k = 5;
    for (auto& [name, t] : in.store().arrays) interp::fill_random(t, ++k);
    in.store().scalars["DT"] = 0.25;
    in.run();
    std::printf("max |difference| VM vs native JIT: %g\n",
                interp::max_abs_diff(ib.store(), in.store()));
  }
  std::printf("\n");

  // 4. The same pipeline hand-applied as native code (what the paper
  //    timed): quick wall-clock comparison.
  for (long s : {300L, 500L}) {
    auto a = kernels::ConvProblem::make_aconv(s, 5);
    auto b = kernels::ConvProblem::make_aconv(s, 5);
    auto time = [](auto&& fn) {
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 1000; ++i) fn();  // the paper's 1000 repetitions
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    double tp = time([&] { kernels::aconv_point(a); });
    double to = time([&] { kernels::aconv_opt(b); });
    std::printf("Aconv size %3ld x1000 reps: original %.3fs, transformed "
                "%.3fs, speedup %.2f\n",
                s, tp, to, tp / to);
  }
  return 0;
}
