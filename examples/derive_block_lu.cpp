// The paper's headline result (§5.1), reproduced as a program: start from
// the natural point LU decomposition, let the compiler derive the block
// algorithm of Fig. 6 fully automatically, verify it, and measure its
// cache behaviour on the RS/6000-like model.
//
//   $ ./examples/derive_block_lu
#include <cstdio>

#include "cachesim/cache.hpp"
#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "kernels/ir_kernels.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"

using namespace blk;
using namespace blk::ir;
using namespace blk::ir::dsl;

int main() {
  Program point = kernels::lu_point_ir();
  std::printf("LU decomposition, point algorithm (what a user writes):\n%s\n",
              print(point.body).c_str());

  // The automatic pipeline, spelled declaratively: strip-mine K, run
  // Procedure IndexSetSplit (Fig. 3) against the KK-carried recurrence,
  // distribute, and sink KK with triangular interchange (the §3.1 bound
  // rewrite).  The full-block hint K+KS-1 <= N-1 only steers the split
  // choice; the emitted code is exact for every N and KS.
  Program blocked = point.clone();
  analysis::Assumptions hints;
  hints.assert_le(v("K") + v("KS") - 1, v("N") - 1);
  const char* spec = "stripmine(b=KS); split; distribute; interchange";
  pm::RunReport report = pm::run_spec(blocked, spec, hints);
  std::printf("Pipeline '%s':\n", spec);
  for (const pm::PassStat& s : report.passes)
    std::printf("  %-16s %3ld -> %3ld statements  cache %llu hits / "
                "%llu misses%s%s\n",
                s.invocation.c_str(), s.stmts_before, s.stmts_after,
                static_cast<unsigned long long>(s.analysis_hits),
                static_cast<unsigned long long>(s.analysis_misses),
                s.note.empty() ? "" : "  — ", s.note.c_str());
  std::printf("\nDerived block algorithm (the paper's Fig. 6):\n%s\n",
              print(blocked.body).c_str());

  // Numeric identity with the point algorithm, including ragged blocks.
  for (long n : {30L, 43L}) {
    for (long ks : {8L, 7L}) {
      interp::ExecEngine ia(point, {{"N", n}});
      interp::ExecEngine ib(blocked, {{"N", n}, {"KS", ks}});
      for (auto* in : {&ia, &ib}) {
        auto& t = in->store().arrays.at("A");
        interp::fill_random(t, 42);
        for (long i = 1; i <= n; ++i) {
          std::vector<long> idx{i, i};
          t.at(idx) += static_cast<double>(n);
        }
      }
      ia.run();
      ib.run();
      std::printf("N=%2ld KS=%ld: max |point - blocked| = %g\n", n, ks,
                  interp::max_abs_diff(ia.store(), ib.store()));
    }
  }

  // The derived block algorithm also runs as compiled native code: one
  // JIT compile serves every (N, KS) binding above.
  if (native::available()) {
    interp::ExecEngine vm(blocked, {{"N", 43}, {"KS", 7}});
    interp::ExecEngine nat(blocked, {{"N", 43}, {"KS", 7}},
                           interp::Engine::Native);
    for (auto* in : {&vm, &nat}) {
      auto& t = in->store().arrays.at("A");
      interp::fill_random(t, 42);
      for (long i = 1; i <= 43; ++i) {
        std::vector<long> idx{i, i};
        t.at(idx) += 43.0;
      }
    }
    vm.run();
    nat.run();
    std::printf("native JIT vs VM on the block algorithm: max |diff| = %g\n",
                interp::max_abs_diff(vm.store(), nat.store()));
  }

  // Why it matters: miss ratios on the paper's 64 KB cache.
  cachesim::CacheConfig rs6000{.size_bytes = 64 * 1024, .line_bytes = 128,
                               .assoc = 4};
  const long n = 160;
  auto sp = cachesim::simulate(point, {{"N", n}}, rs6000);
  auto sb = cachesim::simulate(blocked, {{"N", n}, {"KS", 32}}, rs6000);
  std::printf("\nRS/6000-540-like cache model, N=%ld:\n  point  : %s\n"
              "  blocked: %s\n",
              n, cachesim::summary(rs6000, sp).c_str(),
              cachesim::summary(rs6000, sb).c_str());
  return 0;
}
