// §5.4 end to end: Fig. 9 -> Fig. 10 by the fully automatic driver, then
// the native kernels' timing shape (the paper's table T5).
//
//   $ ./examples/givens_pipeline
#include <chrono>
#include <cstdio>

#include "interp/vm.hpp"
#include "ir/printer.hpp"
#include "kernels/ir_kernels.hpp"
#include "kernels/qr_givens.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"
#include "pm/spec.hpp"

using namespace blk;
using namespace blk::ir;

int main() {
  Program p = kernels::givens_qr_ir();
  std::printf("Givens QR, point algorithm (the paper's Fig. 9):\n%s\n",
              print(p.body).c_str());

  Program orig = p.clone();
  pm::PipelineContext ctx(p);
  (void)pm::run_pipeline(pm::parse_pipeline("optgivens"), ctx);
  std::printf("After the 'optgivens' pipeline (%d interchanges — the "
              "paper's Fig. 10):\n%s\n",
              ctx.interchanges, print(p.body).c_str());

  // Identical results on the interpreter.
  const long m = 18, n = 14;
  interp::ExecEngine ia(orig, {{"M", m}, {"N", n}});
  interp::ExecEngine ib(p, {{"M", m}, {"N", n}});
  for (auto* in : {&ia, &ib}) {
    auto& t = in->store().arrays.at("A");
    interp::fill_random(t, 8);
  }
  ia.run();
  ib.run();
  std::printf("max |point - optimized| on the interpreter: %g\n",
              interp::max_abs_diff(ia.store(), ib.store()));

  // The optimized nest as JIT-compiled native code; its live-out rotation
  // scalars round-trip through the entry wrapper like the VM's.
  if (native::available()) {
    interp::ExecEngine in(p, {{"M", m}, {"N", n}}, interp::Engine::Native);
    interp::fill_random(in.store().arrays.at("A"), 8);
    in.run();
    std::printf("max |difference| VM vs native JIT: %g\n",
                interp::max_abs_diff(ib.store(), in.store()));
  }
  std::printf("\n");

  // The native kernels (what bench_givens_qr measures in full).
  for (std::size_t size : {300UL, 500UL}) {
    kernels::Matrix a0(size, size);
    kernels::fill_random(a0, 9);
    auto time = [&](auto&& fn) {
      kernels::Matrix a = a0;
      auto t0 = std::chrono::steady_clock::now();
      fn(a);
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    double tp = time([](kernels::Matrix& a) { kernels::givens_qr_point(a); });
    double to = time([](kernels::Matrix& a) { kernels::givens_qr_opt(a); });
    std::printf("%zux%zu: point %.1fms, optimized %.1fms, speedup %.2f "
                "(paper: %.2f)\n",
                size, size, tp * 1e3, to * 1e3, tp / to,
                size == 300 ? 2.04 : 5.49);
  }
  return 0;
}
