// §4 end to end: IF-inspection of the guarded SGEMM kernel.  Shows the
// Fig. 4 code the engine generates, verifies it, and demonstrates the
// run-time trade-off the paper describes: inspection pays off when the
// executed ranges are long.
//
//   $ ./examples/ifinspect_matmul
#include <chrono>
#include <cstdio>
#include <random>

#include "interp/vm.hpp"
#include "ir/printer.hpp"
#include "kernels/ir_kernels.hpp"
#include "kernels/matmul.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"

using namespace blk;
using namespace blk::ir;

int main() {
  Program p = kernels::matmul_guarded_ir();
  std::printf("Guarded matrix multiply (from BLAS SGEMM):\n%s\n",
              print(p.body).c_str());

  Program inspected = p.clone();
  (void)pm::run_spec(inspected, "focus(var=K); ifinspect");
  std::printf("After IF-inspection (the paper's Fig. 4):\n%s\n",
              print(inspected.body).c_str());

  // Verify on random guards.
  const long n = 24;
  interp::ExecEngine ia(p, {{"N", n}});
  interp::ExecEngine ib(inspected, {{"N", n}});
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (auto* in : {&ia, &ib}) {
    std::uint64_t s = 11;
    for (auto& [name, t] : in->store().arrays) interp::fill_random(t, ++s);
  }
  auto plant = [&](interp::ExecEngine& in, std::uint64_t seed) {
    std::mt19937_64 r2(seed);
    for (double& x : in.store().arrays.at("B").flat())
      x = coin(r2) < 0.2 ? 1.0 : 0.0;
  };
  plant(ia, 9);
  plant(ib, 9);
  ia.run();
  ib.run();
  std::printf("max |difference| original vs inspected: %g\n",
              interp::max_abs_diff(ia.store(), ib.store()));

  // The inspected nest JIT-compiled to native code, same guards planted.
  if (native::available()) {
    interp::ExecEngine in(inspected, {{"N", n}}, interp::Engine::Native);
    std::uint64_t s = 11;
    for (auto& [name, t] : in.store().arrays) interp::fill_random(t, ++s);
    plant(in, 9);
    in.run();
    std::printf("max |difference| VM vs native JIT: %g\n",
                interp::max_abs_diff(ib.store(), in.store()));
  }
  std::printf("\n");

  // The native kernels at the paper's 300x300, long vs short runs.
  const std::size_t nn = 300;
  kernels::Matrix a(nn, nn);
  kernels::fill_random(a, 4);
  auto time = [&](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  for (std::size_t run : {8UL, 1UL}) {
    kernels::Matrix b = kernels::make_guard_matrix(nn, 0.1, run, 5);
    kernels::Matrix c(nn, nn);
    double t_orig = time([&] { kernels::matmul_guarded(a, b, c); });
    double t_uj =
        time([&] { kernels::matmul_uj_guard_inside(a, b, c, 4); });
    double t_ujif = time([&] { kernels::matmul_uj_ifinspect(a, b, c, 4); });
    std::printf("10%% nonzero, run length %zu: original %.1fms, "
                "guard-inside UJ %.1fms, UJ+IF %.1fms\n",
                run, t_orig * 50, t_uj * 50, t_ujif * 50);
  }
  std::printf("\n(IF-inspection wins when ranges are long; with scattered "
              "singletons it merely breaks even — §4's closing remark.)\n");
  return 0;
}
