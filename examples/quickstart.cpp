// Quickstart: build a loop nest with the IR builder, block it with a
// two-stage pass pipeline, and verify the transformation with the
// interpreter — the §2.3 running example end to end.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "interp/vm.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "native/engine.hpp"
#include "pm/runner.hpp"

using namespace blk;
using namespace blk::ir;
using namespace blk::ir::dsl;

int main() {
  // The paper's §2.3 loop: every iteration of J re-reads all of A.
  //   DO J = 1,N / DO I = 1,M / A(I) = A(I) + B(J)
  Program p;
  p.param("N");
  p.param("M");
  p.array("A", {v("M")});
  p.array("B", {v("N")});
  p.add(loop("J", c(1), v("N"),
             loop("I", c(1), v("M"),
                  assign(lv("A", {v("I")}),
                         a("A", {v("I")}) + a("B", {v("J")})))));

  std::printf("Point form:\n%s\n", print(p).c_str());

  // Block the J loop: strip-mine by a symbolic factor JS (the pass
  // declares the parameter) and sink the strip loop inward — the
  // compiler checks dependence legality at the interchange stage.
  Program blocked = p.clone();
  const char* spec = "stripmine(b=JS); interchange";
  pm::RunReport report = pm::run_spec(blocked, spec);
  std::printf("After '%s' (JS-wide blocks of B now stay in cache):\n%s\n",
              spec, print(blocked.body).c_str());
  for (const pm::PassStat& s : report.passes)
    std::printf("  %-18s %3ld -> %3ld statements\n", s.invocation.c_str(),
                s.stmts_before, s.stmts_after);
  std::printf("\n");

  // Prove the two versions identical on real data.
  ir::Env env{{"N", 100}, {"M", 1000}};
  ir::Env benv = env;
  benv["JS"] = 16;
  interp::ExecEngine ia(p, env);
  interp::ExecEngine ib(blocked, benv);
  for (auto& [name, t] : ia.store().arrays) interp::fill_random(t, 1);
  for (auto& [name, t] : ib.store().arrays) interp::fill_random(t, 1);
  ia.run();
  ib.run();
  std::printf("max |difference| between point and blocked runs: %g\n",
              interp::max_abs_diff(ia.store(), ib.store()));

  // Same program, native JIT engine: compiled through the C backend and
  // bit-identical to the VM (skipped when the host has no C compiler).
  if (native::available()) {
    interp::ExecEngine in(blocked, benv, interp::Engine::Native);
    for (auto& [name, t] : in.store().arrays) interp::fill_random(t, 1);
    in.run();
    std::printf("max |difference| VM vs native JIT: %g\n",
                interp::max_abs_diff(ib.store(), in.store()));
  }
  return 0;
}
