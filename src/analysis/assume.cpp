#include "analysis/assume.hpp"

namespace blk::analysis {

using namespace blk::ir;

void Assumptions::assert_nonneg(Affine f) {
  // Constant facts carry no information (or are contradictions the caller
  // should not be asserting); skip them.
  if (f.is_constant()) return;
  facts_.push_back(std::move(f));
}

void Assumptions::assert_ge(const IExprPtr& a, const IExprPtr& b) {
  if (auto d = affine_difference(a, b)) {
    assert_nonneg(*d);
    return;
  }
  // Keep non-affine facts raw; proofs case-split their MIN/MAX nodes.
  raw_facts_.push_back(simplify(isub(a, b)));
}

void Assumptions::assert_le(const IExprPtr& a, const IExprPtr& b) {
  assert_ge(b, a);
}

namespace {

/// Record var >= e, decomposing MAX (var >= MAX(a,b) gives both) and the
/// provable side of any other non-affine shape.
void assert_lower(Assumptions& ctx, const IExprPtr& var, const IExprPtr& e) {
  if (e->kind == IKind::Max) {
    assert_lower(ctx, var, e->lhs);
    assert_lower(ctx, var, e->rhs);
    return;
  }
  ctx.assert_ge(var, e);  // no-op when non-affine
}

/// Record var <= e, decomposing MIN.
void assert_upper(Assumptions& ctx, const IExprPtr& var, const IExprPtr& e) {
  if (e->kind == IKind::Min) {
    assert_upper(ctx, var, e->lhs);
    assert_upper(ctx, var, e->rhs);
    return;
  }
  ctx.assert_le(var, e);
}

}  // namespace

void Assumptions::add_loop_range(const Loop& loop) {
  // Wider steps still satisfy lb <= var <= ub when step > 0; a descending
  // loop counts DO I = lb, ub, -s with ub <= var <= lb.  Symbolic steps
  // give no usable range (the sign is unknown).
  if (loop.step->kind != IKind::Const) return;
  if (loop.step->value > 0)
    add_loop_range(loop.var, loop.lb, loop.ub);
  else if (loop.step->value < 0)
    add_loop_range(loop.var, loop.ub, loop.lb);
}

void Assumptions::add_loop_range(const std::string& var, const IExprPtr& lb,
                                 const IExprPtr& ub) {
  assert_lower(*this, ivar(var), lb);
  assert_upper(*this, ivar(var), ub);
}

void Assumptions::add_loop_range(const std::string& var, const IExprPtr& lb,
                                 const IExprPtr& ub, const IExprPtr& step) {
  if (step && step->kind == IKind::Const && step->value < 0)
    add_loop_range(var, ub, lb);
  else
    add_loop_range(var, lb, ub);
}

bool Assumptions::nonneg_with(const Affine& f,
                              const std::vector<Affine>& extra) const {
  if (auto s = constant_sign(f); s && *s >= 0) return true;
  // Combined fact view.
  auto fact = [&](std::size_t i) -> const Affine& {
    return i < facts_.size() ? facts_[i] : extra[i - facts_.size()];
  };
  const std::size_t nf = facts_.size() + extra.size();

  // Depth-1: f - fact is a nonneg constant.
  for (std::size_t i = 0; i < nf; ++i) {
    Affine r = f - fact(i);
    if (auto s = constant_sign(r); s && *s >= 0) return true;
  }
  // Depth-2 and depth-3: subtract combinations of facts.  Depth 3 covers
  // chained loop-bound reasoning through two strip levels (e.g. N-1-KK via
  // KK <= K+KS-1 and the driver's K+KS-1 <= N-1).
  for (std::size_t i = 0; i < nf; ++i) {
    Affine r1 = f - fact(i);
    if (constant_sign(r1)) continue;  // handled at depth 1
    for (std::size_t j = i; j < nf; ++j) {
      Affine r2 = r1 - fact(j);
      if (auto s = constant_sign(r2)) {
        if (*s >= 0) return true;
        continue;
      }
      for (std::size_t k = j; k < nf; ++k) {
        Affine r3 = r2 - fact(k);
        if (auto s = constant_sign(r3); s && *s >= 0) return true;
      }
    }
  }
  return false;
}

bool Assumptions::nonneg(const Affine& f) const { return nonneg_with(f, {}); }

namespace {

/// A MIN/MAX occurrence with the polarity of its position: +1 the
/// surrounding expression is monotonically increasing in the node, -1
/// decreasing, 0 unknown.
struct MinMaxHit {
  const IExpr* node = nullptr;
  int polarity = 0;
};

MinMaxHit find_minmax(const IExprPtr& e, int pol = 1) {
  switch (e->kind) {
    case IKind::Const:
    case IKind::Var:
      return {};
    case IKind::Min:
    case IKind::Max:
      return {.node = e.get(), .polarity = pol};
    case IKind::Add: {
      if (MinMaxHit h = find_minmax(e->lhs, pol); h.node) return h;
      return find_minmax(e->rhs, pol);
    }
    case IKind::Sub: {
      if (MinMaxHit h = find_minmax(e->lhs, pol); h.node) return h;
      return find_minmax(e->rhs, -pol);
    }
    case IKind::Mul: {
      if (e->lhs->kind == IKind::Const) {
        long c = e->lhs->value;
        return find_minmax(e->rhs, c > 0 ? pol : c < 0 ? -pol : 0);
      }
      if (e->rhs->kind == IKind::Const) {
        long c = e->rhs->value;
        return find_minmax(e->lhs, c > 0 ? pol : c < 0 ? -pol : 0);
      }
      if (MinMaxHit h = find_minmax(e->lhs, 0); h.node) return h;
      return find_minmax(e->rhs, 0);
    }
    case IKind::FloorDiv:
    case IKind::CeilDiv:
      return find_minmax(e->lhs, pol);  // monotone in the numerator
    case IKind::ArrayElem:
      return find_minmax(e->lhs, 0);
  }
  return {};
}

/// Replace the node identified by pointer `target` with `repl`.
IExprPtr replace_node(const IExprPtr& e, const IExpr* target,
                      const IExprPtr& repl) {
  if (e.get() == target) return repl;
  switch (e->kind) {
    case IKind::Const:
    case IKind::Var:
      return e;
    default: {
      IExprPtr l = replace_node(e->lhs, target, repl);
      IExprPtr r = e->rhs ? replace_node(e->rhs, target, repl) : nullptr;
      if (l == e->lhs && r == e->rhs) return e;
      switch (e->kind) {
        case IKind::Add: return iadd(std::move(l), std::move(r));
        case IKind::Sub: return isub(std::move(l), std::move(r));
        case IKind::Mul: return imul(std::move(l), std::move(r));
        case IKind::Min: return imin(std::move(l), std::move(r));
        case IKind::Max: return imax(std::move(l), std::move(r));
        case IKind::FloorDiv: return ifloordiv(std::move(l), r->value);
        case IKind::CeilDiv: return iceildiv(std::move(l), r->value);
        default: break;
      }
      return e;
    }
  }
}

}  // namespace

bool Assumptions::split_and_prove(std::vector<IExprPtr> exprs,
                                  int budget) const {
  if (budget <= 0) return false;  // too many MIN/MAX combinations
  // Eliminate the first MIN/MAX found in the goal or any raw fact, using
  // its polarity:
  //  * goal, conjunctive position (MIN positive / MAX negative or unknown):
  //    the goal must hold with either operand -> prove both (AND).
  //  * goal, disjunctive position (MIN negative / MAX positive): the goal
  //    is implied by either single-operand bound -> prove one (OR).
  //  * fact, conjunctive position: the fact implies both instantiations
  //    simultaneously -> strengthen the fact set, no branch.
  //  * fact, otherwise: the fact holds with whichever operand is actual ->
  //    the branch proofs together cover every point (AND).
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    MinMaxHit hit = find_minmax(exprs[i]);
    if (!hit.node) continue;
    const IExpr* m = hit.node;
    const bool is_min = m->kind == IKind::Min;
    IExprPtr with_l = replace_node(exprs[i], m, m->lhs);
    IExprPtr with_r = replace_node(exprs[i], m, m->rhs);
    const bool conjunctive =
        (is_min && hit.polarity > 0) || (!is_min && hit.polarity < 0);
    if (i > 0 && conjunctive) {
      // Strengthen: the fact yields both instantiations at every point.
      exprs[i] = std::move(with_l);
      exprs.push_back(std::move(with_r));
      return split_and_prove(std::move(exprs), budget);
    }
    std::vector<IExprPtr> branch_l = exprs;
    branch_l[i] = std::move(with_l);
    std::vector<IExprPtr> branch_r = std::move(exprs);
    branch_r[i] = std::move(with_r);
    if (i == 0 && ((is_min && hit.polarity < 0) ||
                   (!is_min && hit.polarity > 0))) {
      // Disjunctive goal: either bound suffices.
      return split_and_prove(std::move(branch_l), budget / 2) ||
             split_and_prove(std::move(branch_r), budget / 2);
    }
    return split_and_prove(std::move(branch_l), budget / 2) &&
           split_and_prove(std::move(branch_r), budget / 2);
  }
  // All MIN/MAX-free: affine leaf.  Facts that still fail to normalize
  // (FloorDiv, ArrayElem) are dropped — sound, just weaker.
  auto goal = as_affine(*exprs[0]);
  if (!goal) return false;
  std::vector<Affine> extra;
  for (std::size_t i = 1; i < exprs.size(); ++i)
    if (auto f = as_affine(*exprs[i])) extra.push_back(std::move(*f));
  return nonneg_with(*goal, extra);
}

bool Assumptions::nonneg_expr(const IExprPtr& e) const {
  std::vector<IExprPtr> exprs;
  exprs.reserve(raw_facts_.size() + 1);
  exprs.push_back(e);
  for (const auto& f : raw_facts_) exprs.push_back(f);
  return split_and_prove(std::move(exprs), 256);
}

IExprPtr Assumptions::resolve_minmax(const IExprPtr& e) const {
  switch (e->kind) {
    case IKind::Const:
    case IKind::Var:
      return e;
    case IKind::Min:
    case IKind::Max: {
      IExprPtr l = resolve_minmax(e->lhs);
      IExprPtr r = resolve_minmax(e->rhs);
      bool l_ge_r = nonneg_expr(isub(l, r));
      bool r_ge_l = nonneg_expr(isub(r, l));
      if (e->kind == IKind::Min) {
        if (l_ge_r) return r;
        if (r_ge_l) return l;
        return imin(std::move(l), std::move(r));
      }
      if (l_ge_r) return l;
      if (r_ge_l) return r;
      return imax(std::move(l), std::move(r));
    }
    case IKind::FloorDiv:
      return ifloordiv(resolve_minmax(e->lhs), e->rhs->value);
    case IKind::CeilDiv:
      return iceildiv(resolve_minmax(e->lhs), e->rhs->value);
    default: {
      IExprPtr l = resolve_minmax(e->lhs);
      IExprPtr r = resolve_minmax(e->rhs);
      switch (e->kind) {
        case IKind::Add: return iadd(std::move(l), std::move(r));
        case IKind::Sub: return isub(std::move(l), std::move(r));
        case IKind::Mul: return imul(std::move(l), std::move(r));
        default: return e;
      }
    }
  }
}

bool Assumptions::ge(const IExprPtr& a, const IExprPtr& b) const {
  if (raw_facts_.empty()) {
    if (auto d = affine_difference(a, b)) return nonneg(*d);
  }
  return nonneg_expr(isub(a, b));
}

bool Assumptions::le(const IExprPtr& a, const IExprPtr& b) const {
  return ge(b, a);
}

bool Assumptions::eq(const IExprPtr& a, const IExprPtr& b) const {
  if (auto d = affine_difference(a, b)) {
    auto s = constant_sign(*d);
    if (s) return *s == 0;
  }
  return ge(a, b) && ge(b, a);
}

}  // namespace blk::analysis
