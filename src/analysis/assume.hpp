// Symbolic assumption context.
//
// Blocking decisions routinely need facts like "K+KS-1 <= N-1 inside a full
// block" or "KK >= K" that follow from loop bounds or from a driver's
// declared intent.  `Assumptions` stores affine facts of the form  f >= 0
// and answers conservative queries: a `false` answer means "not provable",
// never "provably false".
#pragma once

#include <optional>
#include <vector>

#include "ir/affine.hpp"
#include "ir/stmt.hpp"

namespace blk::analysis {

class Assumptions {
 public:
  /// Assert that `f` >= 0.
  void assert_nonneg(ir::Affine f);
  /// Assert a >= b, i.e. (a - b) >= 0.  Non-affine differences (MIN/MAX)
  /// are kept as raw expression facts and case-split during proofs.
  void assert_ge(const ir::IExprPtr& a, const ir::IExprPtr& b);
  /// Assert a <= b.
  void assert_le(const ir::IExprPtr& a, const ir::IExprPtr& b);

  /// Add lb <= var <= ub facts for a loop.  MIN/MAX bounds decompose:
  /// var <= MIN(a,b) contributes var <= a and var <= b; var >= MAX(a,b)
  /// contributes var >= a and var >= b.  `rename` optionally substitutes
  /// variable names in the recorded facts (used by the dependence tester to
  /// keep source and sink loop instances apart).
  void add_loop_range(const ir::Loop& loop);
  void add_loop_range(const std::string& var, const ir::IExprPtr& lb,
                      const ir::IExprPtr& ub);
  /// Like the (var, lb, ub) overload but step-aware: a provably negative
  /// constant `step` swaps the bounds (descending loops count ub..lb), any
  /// other step is treated as ascending.  Use wherever the loop header may
  /// have been reversed.
  void add_loop_range(const std::string& var, const ir::IExprPtr& lb,
                      const ir::IExprPtr& ub, const ir::IExprPtr& step);

  /// Provably f >= 0?  Proof search: constant sign; or f minus a sum of at
  /// most two asserted facts (each usable once) is a non-negative constant.
  [[nodiscard]] bool nonneg(const ir::Affine& f) const;

  /// Provably e >= 0 for a general index expression.  MIN/MAX nodes are
  /// eliminated by case splitting (MIN(a,b) equals a or b pointwise, so
  /// proving both substitutions proves the original), then the affine
  /// fact search runs on each case.
  [[nodiscard]] bool nonneg_expr(const ir::IExprPtr& e) const;

  /// Provably a >= b / a <= b / a == b.  MIN/MAX handled via nonneg_expr.
  [[nodiscard]] bool ge(const ir::IExprPtr& a, const ir::IExprPtr& b) const;
  [[nodiscard]] bool le(const ir::IExprPtr& a, const ir::IExprPtr& b) const;
  [[nodiscard]] bool eq(const ir::IExprPtr& a, const ir::IExprPtr& b) const;

  /// Rewrite `e` resolving every MIN/MAX whose winner is provable under
  /// this context (e.g. MIN(K+KS-1, N-1) -> K+KS-1 given K+KS <= N).
  [[nodiscard]] ir::IExprPtr resolve_minmax(const ir::IExprPtr& e) const;

  [[nodiscard]] std::size_t fact_count() const { return facts_.size(); }

 private:
  std::vector<ir::Affine> facts_;      ///< each fact f means f >= 0
  std::vector<ir::IExprPtr> raw_facts_;  ///< non-affine facts, each >= 0

  /// Case-split every MIN/MAX in goal and facts, then run the affine
  /// linear-combination search on each branch.  exprs[0] is the goal.
  [[nodiscard]] bool split_and_prove(std::vector<ir::IExprPtr> exprs,
                                     int budget) const;
  [[nodiscard]] bool nonneg_with(const ir::Affine& f,
                                 const std::vector<ir::Affine>& extra) const;
};

}  // namespace blk::analysis
