#include "analysis/ddtest.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "ir/affine.hpp"
#include "ir/error.hpp"

namespace blk::analysis {

using namespace blk::ir;

bool Dependence::carried_at(std::size_t level) const {
  for (const auto& v : vectors) {
    bool outer_eq = true;
    for (std::size_t i = 0; i < level && outer_eq; ++i)
      outer_eq = (v[i] == Dir::EQ);
    if (outer_eq && level < v.size() && v[level] == Dir::LT) return true;
  }
  return false;
}

bool Dependence::loop_independent() const {
  for (const auto& v : vectors)
    if (std::all_of(v.begin(), v.end(),
                    [](Dir d) { return d == Dir::EQ; }))
      return true;
  return vectors.empty();  // depth 0: no common loops => loop independent
}

std::optional<long> Dependence::distance_at(std::size_t level) const {
  if (level < distances.size()) return distances[level];
  return std::nullopt;
}

const char* to_string(DepType t) {
  switch (t) {
    case DepType::Flow: return "flow";
    case DepType::Anti: return "anti";
    case DepType::Output: return "output";
    case DepType::Input: return "input";
  }
  return "?";
}

char to_char(Dir d) {
  switch (d) {
    case Dir::LT: return '<';
    case Dir::EQ: return '=';
    case Dir::GT: return '>';
  }
  return '?';
}

std::string Dependence::to_string() const {
  std::ostringstream os;
  os << analysis::to_string(type) << ' ' << src.array << '(';
  for (std::size_t i = 0; i < src.subs.size(); ++i) {
    if (i) os << ',';
    os << ir::to_string(src.subs[i]);
  }
  os << ") -> " << dst.array << '(';
  for (std::size_t i = 0; i < dst.subs.size(); ++i) {
    if (i) os << ',';
    os << ir::to_string(dst.subs[i]);
  }
  os << ") {";
  for (std::size_t k = 0; k < vectors.size(); ++k) {
    if (k) os << ' ';
    os << '(';
    for (std::size_t i = 0; i < vectors[k].size(); ++i) {
      if (i) os << ',';
      os << to_char(vectors[k][i]);
    }
    os << ')';
  }
  os << '}';
  return os.str();
}

namespace {

/// Per-common-loop constraint produced by the subscript tests.
struct LoopConstraint {
  bool lt = true, eq = true, gt = true;    ///< feasible directions
  std::optional<long> distance;            ///< exact i'_l - i_l when known

  void intersect_distance(long d) {
    if (distance && *distance != d) {
      lt = eq = gt = false;  // contradictory distances: no dependence
      return;
    }
    distance = d;
    lt = lt && d > 0;
    eq = eq && d == 0;
    gt = gt && d < 0;
  }

  [[nodiscard]] bool infeasible() const { return !lt && !eq && !gt; }
  [[nodiscard]] bool allows(Dir d) const {
    switch (d) {
      case Dir::LT: return lt;
      case Dir::EQ: return eq;
      case Dir::GT: return gt;
    }
    return false;
  }
};

/// Outcome of testing one subscript dimension.
enum class DimResult { NoDependence, NoConstraint, Constrained };

/// Variables of `a` classified against the common loop set.
struct DimClassification {
  // common loop var name -> (coef in src, coef in dst)
  std::map<std::string, std::pair<long, long>> common;
  bool has_noncommon = false;
  Affine sym_const;  ///< constant + parameter part of (src - dst)
  std::vector<long> all_coefs;  ///< every loop-var coefficient (for GCD)
};

[[nodiscard]] bool is_common_var(const std::vector<Loop*>& common_loops,
                                 const std::string& name) {
  return std::any_of(common_loops.begin(), common_loops.end(),
                     [&](const Loop* l) { return l->var == name; });
}

/// Test one subscript dimension; refine `cons` (indexed by common-loop
/// position).
DimResult test_dim(const IExprPtr& s_src, const IExprPtr& s_dst,
                   const std::vector<Loop*>& common_loops,
                   const std::vector<Loop*>& src_loops,
                   const std::vector<Loop*>& dst_loops,
                   std::vector<LoopConstraint>& cons) {
  auto fa = as_affine(*s_src);
  auto fb = as_affine(*s_dst);
  if (!fa || !fb) return DimResult::NoConstraint;

  auto is_loop_var = [&](const std::vector<Loop*>& loops,
                         const std::string& n) {
    return std::any_of(loops.begin(), loops.end(),
                       [&](const Loop* l) { return l->var == n; });
  };

  DimClassification cls;
  cls.sym_const = Affine::constant_term(fa->constant - fb->constant);
  for (const auto& [v, k] : fa->coef) {
    if (is_common_var(common_loops, v)) {
      cls.common[v].first += k;
      cls.all_coefs.push_back(k);
    } else if (is_loop_var(src_loops, v)) {
      cls.has_noncommon = true;
      cls.all_coefs.push_back(k);
    } else {
      cls.sym_const += Affine::variable(v, k);  // symbolic parameter
    }
  }
  for (const auto& [v, k] : fb->coef) {
    if (is_common_var(common_loops, v)) {
      cls.common[v].second += k;
      cls.all_coefs.push_back(k);
    } else if (is_loop_var(dst_loops, v)) {
      cls.has_noncommon = true;
      cls.all_coefs.push_back(k);
    } else {
      cls.sym_const -= Affine::variable(v, k);
    }
  }

  const bool const_diff = cls.sym_const.is_constant();
  const long cdiff = cls.sym_const.constant;  // src - dst constant part

  // ZIV: no loop variables at all.
  if (cls.common.empty() && !cls.has_noncommon) {
    if (const_diff && cdiff != 0) return DimResult::NoDependence;
    return DimResult::NoConstraint;
  }

  // Strong SIV: exactly one common variable, equal coefficients, no
  // non-common variables.
  if (cls.common.size() == 1 && !cls.has_noncommon) {
    auto& [var, ab] = *cls.common.begin();
    auto [a_src, a_dst] = ab;
    if (a_src == a_dst && a_src != 0 && const_diff) {
      // a*i + c1 = a*i' + c2  =>  i' - i = (c1 - c2) / a = cdiff / a
      if (cdiff % a_src != 0) return DimResult::NoDependence;
      long delta = cdiff / a_src;
      auto it = std::find_if(common_loops.begin(), common_loops.end(),
                             [&](const Loop* l) { return l->var == var; });
      std::size_t pos =
          static_cast<std::size_t>(it - common_loops.begin());
      cons[pos].intersect_distance(delta);
      if (cons[pos].infeasible()) return DimResult::NoDependence;
      return DimResult::Constrained;
    }
    // Weak SIV variants fall through to the GCD screen below.
  }

  // GCD screen (MIV / weak SIV): a solution to sum(a_i x_i) = c requires
  // gcd(a_i) | c.
  if (const_diff && !cls.all_coefs.empty()) {
    long g = 0;
    for (long k : cls.all_coefs) g = std::gcd(g, std::abs(k));
    if (g != 0 && cdiff % g != 0) return DimResult::NoDependence;
  }
  return DimResult::NoConstraint;
}

void enumerate_vectors(const std::vector<LoopConstraint>& cons,
                       std::size_t level, DirVec& cur,
                       std::vector<DirVec>& lex_pos,
                       std::vector<DirVec>& lex_neg, bool& all_eq_ok) {
  if (level == cons.size()) {
    // Classify: first non-EQ decides.
    auto it = std::find_if(cur.begin(), cur.end(),
                           [](Dir d) { return d != Dir::EQ; });
    if (it == cur.end())
      all_eq_ok = true;
    else if (*it == Dir::LT)
      lex_pos.push_back(cur);
    else
      lex_neg.push_back(cur);
    return;
  }
  for (Dir d : {Dir::LT, Dir::EQ, Dir::GT}) {
    if (!cons[level].allows(d)) continue;
    cur.push_back(d);
    enumerate_vectors(cons, level + 1, cur, lex_pos, lex_neg, all_eq_ok);
    cur.pop_back();
  }
}

[[nodiscard]] DirVec reverse_vec(const DirVec& v) {
  DirVec out;
  out.reserve(v.size());
  for (Dir d : v)
    out.push_back(d == Dir::LT ? Dir::GT : d == Dir::GT ? Dir::LT : Dir::EQ);
  return out;
}

[[nodiscard]] DepType classify(bool src_write, bool dst_write) {
  if (src_write && dst_write) return DepType::Output;
  if (src_write) return DepType::Flow;
  if (dst_write) return DepType::Anti;
  return DepType::Input;
}

/// Textual execution order within one iteration: reads of a statement
/// happen before its write; distinct statements order by pre-order index.
[[nodiscard]] bool textually_before(const RefInfo& a, const RefInfo& b) {
  if (a.textual_pos != b.textual_pos) return a.textual_pos < b.textual_pos;
  if (a.is_write != b.is_write) return !a.is_write;  // read before write
  return false;
}

/// Banerjee-style feasibility screen for one candidate direction vector.
/// The source instance keeps its variable names; the sink instance's loop
/// variables are renamed (var -> var@d) wherever the two instances may
/// differ — common loops with a non-EQ direction, and every non-common
/// loop.  Loop ranges and the direction constraints become facts, and the
/// vector is infeasible if any subscript difference is provably >= 1 or
/// <= -1.
[[nodiscard]] bool vector_feasible(const RefInfo& a, const RefInfo& b,
                                   const std::vector<Loop*>& common,
                                   const DirVec& vec,
                                   const Assumptions* base) {
  if (a.subs.empty() || b.subs.empty()) return true;  // scalars: conflict

  std::map<std::string, std::string> ren;
  for (std::size_t l = 0; l < common.size(); ++l)
    if (vec[l] != Dir::EQ) ren[common[l]->var] = common[l]->var + "@d";
  for (std::size_t l = common.size(); l < b.loops.size(); ++l)
    ren[b.loops[l]->var] = b.loops[l]->var + "@d";

  auto renamed = [&ren](IExprPtr e) {
    for (const auto& [o, n] : ren) e = substitute(e, o, ivar(n));
    return e;
  };

  Assumptions ctx = base ? *base : Assumptions{};
  for (const Loop* l : a.loops) ctx.add_loop_range(*l);
  for (const Loop* l : b.loops) {
    auto it = ren.find(l->var);
    if (it == ren.end()) continue;  // same instance as the source side
    ctx.add_loop_range(it->second, renamed(l->lb), renamed(l->ub), l->step);
  }
  for (std::size_t l = 0; l < common.size(); ++l) {
    const std::string& v = common[l]->var;
    if (vec[l] == Dir::LT)
      ctx.assert_ge(ivar(v + "@d"), iadd(ivar(v), 1));
    else if (vec[l] == Dir::GT)
      ctx.assert_ge(ivar(v), iadd(ivar(v + "@d"), 1));
  }

  std::size_t rank = std::min(a.subs.size(), b.subs.size());
  for (std::size_t d = 0; d < rank; ++d) {
    IExprPtr h = isub(a.subs[d], renamed(b.subs[d]));
    if (ctx.nonneg_expr(isub(h, iconst(1)))) return false;   // h >= 1
    if (ctx.nonneg_expr(isub(iconst(-1), h))) return false;  // h <= -1
  }
  return true;
}

}  // namespace

std::vector<Dependence> test_pair(const RefInfo& a, const RefInfo& b,
                                  const Assumptions* ctx) {
  if (a.array != b.array) return {};
  std::size_t depth = a.common_depth(b);
  std::vector<Loop*> common(a.loops.begin(),
                            a.loops.begin() + static_cast<long>(depth));

  std::vector<LoopConstraint> cons(depth);
  std::size_t rank = std::min(a.subs.size(), b.subs.size());
  std::vector<std::optional<long>> distances(depth);
  for (std::size_t d = 0; d < rank; ++d) {
    DimResult r = test_dim(a.subs[d], b.subs[d], common, a.loops, b.loops,
                           cons);
    if (r == DimResult::NoDependence) return {};
  }
  for (std::size_t l = 0; l < depth; ++l) {
    if (cons[l].infeasible()) return {};
    distances[l] = cons[l].distance;
  }

  std::vector<DirVec> lex_pos, lex_neg;
  bool all_eq = false;
  DirVec cur;
  enumerate_vectors(cons, 0, cur, lex_pos, lex_neg, all_eq);

  // Banerjee screen with symbolic loop-range facts.
  std::erase_if(lex_pos, [&](const DirVec& v) {
    return !vector_feasible(a, b, common, v, ctx);
  });
  std::erase_if(lex_neg, [&](const DirVec& v) {
    return !vector_feasible(a, b, common, v, ctx);
  });
  if (all_eq)
    all_eq = vector_feasible(a, b, common, DirVec(depth, Dir::EQ), ctx);

  std::vector<Dependence> out;
  // a -> b: lexicographically positive vectors, plus all-EQ when `a`
  // textually precedes `b`.
  {
    std::vector<DirVec> vecs = lex_pos;
    if (all_eq && a.stmt != b.stmt && textually_before(a, b))
      vecs.push_back(DirVec(depth, Dir::EQ));
    if (all_eq && a.stmt == b.stmt && a.stmt != nullptr &&
        textually_before(a, b))
      vecs.push_back(DirVec(depth, Dir::EQ));
    if (!vecs.empty() || (depth == 0 && all_eq && textually_before(a, b)))
      out.push_back({.src = a,
                     .dst = b,
                     .type = classify(a.is_write, b.is_write),
                     .vectors = std::move(vecs),
                     .distances = distances});
  }
  // b -> a: reversed lexicographically negative vectors, plus all-EQ when
  // `b` textually precedes `a`.
  {
    std::vector<DirVec> vecs;
    vecs.reserve(lex_neg.size());
    for (const auto& v : lex_neg) vecs.push_back(reverse_vec(v));
    if (all_eq && a.stmt != b.stmt && textually_before(b, a))
      vecs.push_back(DirVec(depth, Dir::EQ));
    std::vector<std::optional<long>> rev_dist(depth);
    for (std::size_t l = 0; l < depth; ++l)
      if (distances[l]) rev_dist[l] = -*distances[l];
    if (!vecs.empty() || (depth == 0 && all_eq && textually_before(b, a)))
      out.push_back({.src = b,
                     .dst = a,
                     .type = classify(b.is_write, a.is_write),
                     .vectors = std::move(vecs),
                     .distances = std::move(rev_dist)});
  }
  // Drop edges that ended up with no feasible vectors (unless depth 0
  // loop-independent which is encoded with one empty vector).
  std::erase_if(out, [&](const Dependence& dep) {
    return dep.vectors.empty() && depth != 0;
  });
  return out;
}

std::vector<Dependence> all_dependences(ir::StmtList& body,
                                        const DepOptions& opt) {
  std::vector<RefInfo> refs = collect_refs(body);
  std::vector<Dependence> out;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = i; j < refs.size(); ++j) {
      const RefInfo& a = refs[i];
      const RefInfo& b = refs[j];
      if (a.array != b.array) continue;
      if (!a.is_write && !b.is_write && !opt.include_inputs) continue;
      if (i == j) {
        // Self pair: only meaningful for writes (output dependence across
        // iterations); the all-EQ vector is the same access and is skipped
        // because textually_before(a, a) is false.
        if (!a.is_write) continue;
      }
      auto deps = test_pair(a, b, opt.ctx);
      for (auto& d : deps) out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace blk::analysis
