// Data-dependence testing.
//
// Implements the classical subscript tests (ZIV, strong SIV, GCD for the
// multi-variable case) over affine subscripts with symbolic parameters, and
// summarizes each statement pair's dependences as sets of direction vectors
// over their common loops — the abstraction the paper's transformations
// consume (interchange and distribution legality, recurrence detection).
//
// Results are conservative: when a subscript pair cannot be analyzed the
// tester assumes all directions, never fewer.
#pragma once

#include <optional>
#include <vector>

#include "analysis/assume.hpp"
#include "analysis/refs.hpp"

namespace blk::analysis {

enum class DepType : std::uint8_t { Flow, Anti, Output, Input };

/// Direction of (dst iteration - src iteration) for one common loop.
enum class Dir : std::uint8_t { LT, EQ, GT };

/// One direction vector over the common loops (outermost first).
using DirVec = std::vector<Dir>;

/// A dependence edge from `src` to `dst` (source executes first).
struct Dependence {
  RefInfo src;
  RefInfo dst;
  DepType type = DepType::Flow;
  /// Feasible direction vectors; every vector is lexicographically
  /// non-negative (the source really does execute first).
  std::vector<DirVec> vectors;

  /// Number of common loops the vectors range over.
  [[nodiscard]] std::size_t depth() const {
    return vectors.empty() ? 0 : vectors.front().size();
  }
  /// True if some vector's first non-EQ entry is at `level` (0-based from
  /// the outermost common loop) — i.e. the dependence may be carried there.
  [[nodiscard]] bool carried_at(std::size_t level) const;
  /// True if the all-EQ vector is feasible (loop-independent dependence).
  [[nodiscard]] bool loop_independent() const;
  /// The unique distance at `level` when every vector agrees, else nullopt.
  /// Only meaningful when the subscript test produced an exact distance.
  [[nodiscard]] std::optional<long> distance_at(std::size_t level) const;

  [[nodiscard]] std::string to_string() const;

  /// Exact distances recorded by strong-SIV tests (index = level; nullopt
  /// where unknown).
  std::vector<std::optional<long>> distances;
};

/// Options for dependence collection.
struct DepOptions {
  bool include_inputs = false;        ///< also report read-read (reuse) edges
  const Assumptions* ctx = nullptr;   ///< extra symbolic facts for the
                                      ///< direction-vector screen
};

/// All dependences among memory references in `body`.
[[nodiscard]] std::vector<Dependence> all_dependences(
    ir::StmtList& body, const DepOptions& opt = {});

/// Dependences between one ordered occurrence pair (`a` textually first).
/// May return zero, one (a->b), or two (a->b and reversed b->a) edges.
/// Candidate direction vectors are screened with a Banerjee-style proof
/// under loop-range facts plus any caller-supplied `ctx` facts: for each
/// vector, if the subscript difference is provably nonzero in some
/// dimension, the vector is infeasible.
[[nodiscard]] std::vector<Dependence> test_pair(
    const RefInfo& a, const RefInfo& b, const Assumptions* ctx = nullptr);

[[nodiscard]] const char* to_string(DepType t);
[[nodiscard]] char to_char(Dir d);

}  // namespace blk::analysis
