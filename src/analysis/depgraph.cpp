#include "analysis/depgraph.hpp"

#include <algorithm>
#include <functional>

#include "ir/error.hpp"

namespace blk::analysis {

using namespace blk::ir;

namespace {

/// Which top-level child of `loop` contains `target` (or is it)?
/// Returns nodes_.size() when not inside this loop body.
std::size_t owner_node(const std::vector<Stmt*>& nodes, ir::Loop& loop,
                       const Stmt* target) {
  // Walk each child subtree looking for the assignment.
  std::function<bool(const StmtList&)> contains =
      [&](const StmtList& body) -> bool {
    for (const auto& s : body) {
      if (s.get() == target) return true;
      switch (s->kind()) {
        case SKind::Loop:
          if (contains(s->as_loop().body)) return true;
          break;
        case SKind::If:
          if (contains(s->as_if().then_body) ||
              contains(s->as_if().else_body))
            return true;
          break;
        case SKind::Assign:
          break;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Stmt* n = nodes[i];
    if (n == target) return i;
    if (n->kind() == SKind::Loop && contains(n->as_loop().body)) return i;
    if (n->kind() == SKind::If &&
        (contains(n->as_if().then_body) || contains(n->as_if().else_body)))
      return i;
  }
  (void)loop;
  return nodes.size();
}

}  // namespace

DepGraph::DepGraph(ir::StmtList& root, ir::Loop& loop,
                   const Assumptions* ctx) {
  for (auto& s : loop.body) nodes_.push_back(s.get());

  // The level of `loop` in each reference's enclosing chain: references
  // inside the body have `loop` somewhere in their chain.
  std::vector<Dependence> deps = all_dependences(root, {.ctx = ctx});
  for (auto& d : deps) {
    if (!d.src.owner || !d.dst.owner) continue;
    // Both endpoints must be inside this loop.
    auto level_of = [&](const RefInfo& r) -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < r.loops.size(); ++i)
        if (r.loops[i] == &loop) return i;
      return std::nullopt;
    };
    auto ls = level_of(d.src);
    auto ld = level_of(d.dst);
    if (!ls || !ld) continue;
    // `loop` is a common enclosing loop, so its level agrees.
    std::size_t lvl = *ls;
    bool carried = d.carried_at(lvl);
    // Loop-independent at this level: vectors that are EQ through `lvl`
    // (deeper entries may differ — they are inside the node subtrees).
    bool independent = false;
    for (const auto& v : d.vectors) {
      bool eq_through = true;
      for (std::size_t i = 0; i <= lvl && i < v.size(); ++i)
        eq_through = eq_through && v[i] == Dir::EQ;
      if (eq_through) independent = true;
    }
    if (d.vectors.empty()) independent = true;  // depth-0 edge
    if (!carried && !independent) continue;

    std::size_t from = owner_node(nodes_, loop, d.src.owner);
    std::size_t to = owner_node(nodes_, loop, d.dst.owner);
    if (from >= nodes_.size() || to >= nodes_.size())
      throw Error("DepGraph: dependence endpoint outside loop body");
    if (from == to && !carried) continue;  // intra-node, handled within
    edges_.push_back(
        {.from = from, .to = to, .dep = std::move(d), .carried = carried});
  }
  compute_sccs();
}

void DepGraph::compute_sccs() {
  // Tarjan's algorithm; components are emitted in reverse topological
  // order, so we reverse at the end.
  std::size_t n = nodes_.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& e : edges_) adj[e.from].push_back(e.to);

  std::vector<long> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  long next_index = 0;

  std::function<void(std::size_t)> strongconnect = [&](std::size_t v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (std::size_t w : adj[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::size_t> comp;
      for (;;) {
        std::size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());
      sccs_.push_back(std::move(comp));
    }
  };
  for (std::size_t v = 0; v < n; ++v)
    if (index[v] < 0) strongconnect(v);
  std::reverse(sccs_.begin(), sccs_.end());
  for (std::size_t c = 0; c < sccs_.size(); ++c)
    for (std::size_t v : sccs_[c]) comp_of_[v] = c;
}

std::vector<std::vector<std::size_t>> DepGraph::components(
    const EdgeFilter& ignore) const {
  if (!ignore) return sccs_;
  // Kosaraju over the filtered edge set; components are discovered in
  // topological order of the condensation.
  std::size_t n = nodes_.size();
  std::vector<std::vector<std::size_t>> adj(n), radj(n);
  for (const auto& e : edges_) {
    if (ignore(e)) continue;
    adj[e.from].push_back(e.to);
    radj[e.to].push_back(e.from);
  }
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> order;
  std::function<void(std::size_t)> dfs1 = [&](std::size_t v) {
    seen[v] = true;
    for (std::size_t w : adj[v])
      if (!seen[w]) dfs1(w);
    order.push_back(v);
  };
  for (std::size_t v = 0; v < n; ++v)
    if (!seen[v]) dfs1(v);
  std::vector<long> comp(n, -1);
  long nc = 0;
  std::function<void(std::size_t)> dfs2 = [&](std::size_t v) {
    comp[v] = nc;
    for (std::size_t w : radj[v])
      if (comp[w] < 0) dfs2(w);
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (comp[*it] < 0) {
      dfs2(*it);
      ++nc;
    }
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(nc));
  for (std::size_t v = 0; v < n; ++v)
    groups[static_cast<std::size_t>(comp[v])].push_back(v);
  for (auto& g : groups) std::sort(g.begin(), g.end());
  return groups;
}

bool DepGraph::has_recurrence() const {
  // Carried self-edges on a single node never prevent distribution (the
  // node stays whole), so only multi-node components count.
  for (const auto& c : sccs_)
    if (c.size() > 1) return true;
  return false;
}

std::vector<DepGraph::Edge> DepGraph::recurrence_edges() const {
  std::vector<Edge> out;
  for (const auto& e : edges_) {
    if (e.from == e.to) continue;
    if (comp_of_.at(e.from) == comp_of_.at(e.to)) out.push_back(e);
  }
  return out;
}

}  // namespace blk::analysis
