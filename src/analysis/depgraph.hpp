// Statement-level dependence graph and recurrence (SCC) detection.
//
// Transformations consult this graph for legality: loop distribution must
// keep each strongly-connected component (recurrence) in one loop and order
// components topologically; interchange must not reverse any dependence;
// Procedure IndexSetSplit starts from the edges that put two statements into
// the same SCC ("transformation-preventing dependences", Fig. 3).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "analysis/ddtest.hpp"

namespace blk::analysis {

/// Dependence graph over the direct child statements of one loop.
///
/// Nodes are the loop body's top-level statements (an inner loop nest is a
/// single node).  An edge u -> v exists when some dependence runs from a
/// reference inside u to a reference inside v and is either carried by this
/// loop or loop-independent at this level.
class DepGraph {
 public:
  /// Build for `loop` inside `root` (the tree that physically owns it —
  /// needed so references' enclosing-loop chains are complete).  Optional
  /// `ctx` facts sharpen the dependence tester's direction screen.
  DepGraph(ir::StmtList& root, ir::Loop& loop,
           const Assumptions* ctx = nullptr);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] ir::Stmt* node(std::size_t i) const { return nodes_[i]; }

  /// Edges as (from-node, to-node, dependence).
  struct Edge {
    std::size_t from;
    std::size_t to;
    Dependence dep;
    bool carried;  ///< carried by this loop (vs. loop-independent inside it)
  };
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Strongly connected components in a valid topological order of the
  /// condensation (sources first).  Each component lists node indices.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& sccs() const {
    return sccs_;
  }

  /// Predicate marking edges to disregard (commutativity knowledge, §5.2).
  using EdgeFilter = std::function<bool(const Edge&)>;

  /// Components over the edge set with `ignore`d edges removed, again in
  /// topological order.  With an empty filter this equals sccs().
  [[nodiscard]] std::vector<std::vector<std::size_t>> components(
      const EdgeFilter& ignore = {}) const;

  /// True when some component contains more than one node or a node with a
  /// carried self-edge — i.e. the loop sustains a recurrence.
  [[nodiscard]] bool has_recurrence() const;

  /// The edges participating in multi-node components (the candidates for
  /// Procedure IndexSetSplit).
  [[nodiscard]] std::vector<Edge> recurrence_edges() const;

  /// Component index of each node.
  [[nodiscard]] std::size_t component_of(std::size_t node) const {
    return comp_of_.at(node);
  }

 private:
  std::vector<ir::Stmt*> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> sccs_;
  std::map<std::size_t, std::size_t> comp_of_;

  void compute_sccs();
};

}  // namespace blk::analysis
