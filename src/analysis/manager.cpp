#include "analysis/manager.hpp"

#include <chrono>

namespace blk::analysis {

namespace {

thread_local std::vector<AnalysisManager*> t_managers;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

unsigned preserved_analyses(std::string_view pass) {
  // Every current transformation rewrites statement nodes somewhere under
  // its root, and all three analysis families key on node identity, so the
  // conservative answer is "nothing".  The table exists so that future
  // passes with surgical footprints (a rewrite proven not to change any
  // dependence) can opt in; a pass name absent here preserves nothing.
  (void)pass;
  return 0;
}

DepGraphPtr AnalysisManager::dep_graph(ir::StmtList& root, ir::Loop& loop,
                                       const Assumptions* ctx) {
  DepKey key{.root = &root,
             .loop = &loop,
             .ctx = ctx,
             .ctx_facts = ctx ? ctx->fact_count() : 0};
  if (caching_) {
    auto it = dep_cache_.find(key);
    if (it != dep_cache_.end()) {
      ++stats_.dep_hits;
      return it->second;
    }
  }
  ++stats_.dep_misses;
  auto t0 = std::chrono::steady_clock::now();
  auto g = std::make_shared<const DepGraph>(root, loop, ctx);
  stats_.build_seconds += seconds_since(t0);
  if (caching_) dep_cache_.insert_or_assign(key, g);
  return g;
}

Section AnalysisManager::section_within(const RefInfo& ref,
                                        const ir::Loop& outer) {
  SectionKey key{.outer = &outer,
                 .array = ref.array,
                 .is_write = ref.is_write,
                 .subs = {},
                 .loops = {}};
  key.subs.reserve(ref.subs.size());
  for (const auto& s : ref.subs) key.subs.push_back(s.get());
  key.loops.reserve(ref.loops.size());
  for (const auto* l : ref.loops) key.loops.push_back(l);
  if (caching_) {
    auto it = section_cache_.find(key);
    if (it != section_cache_.end()) {
      ++stats_.section_hits;
      return it->second;
    }
  }
  ++stats_.section_misses;
  auto t0 = std::chrono::steady_clock::now();
  Section s = blk::analysis::section_within(ref, outer);
  stats_.build_seconds += seconds_since(t0);
  if (caching_) section_cache_.insert_or_assign(std::move(key), s);
  return s;
}

std::vector<LoopReuse> AnalysisManager::reuse(ir::StmtList& body,
                                              long line_elements) {
  ReuseKey key{.body = &body, .line_elements = line_elements};
  if (caching_) {
    auto it = reuse_cache_.find(key);
    if (it != reuse_cache_.end()) {
      ++stats_.reuse_hits;
      return it->second;
    }
  }
  ++stats_.reuse_misses;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<LoopReuse> r = analyze_reuse(body, line_elements);
  stats_.build_seconds += seconds_since(t0);
  if (caching_) reuse_cache_.insert_or_assign(key, r);
  return r;
}

void AnalysisManager::invalidate(unsigned preserved) {
  ++stats_.invalidations;
  if (!(preserved & kDepGraphs)) dep_cache_.clear();
  if (!(preserved & kSections)) section_cache_.clear();
  if (!(preserved & kReuse)) reuse_cache_.clear();
}

AnalysisManager* current_analysis_manager() {
  return t_managers.empty() ? nullptr : t_managers.back();
}

ScopedAnalysisManager::ScopedAnalysisManager(AnalysisManager& am)
    : installed_(&am) {
  t_managers.push_back(&am);
}

ScopedAnalysisManager::~ScopedAnalysisManager() {
  // Pop down to (and including) our entry; tolerate out-of-order exits.
  while (!t_managers.empty()) {
    AnalysisManager* top = t_managers.back();
    t_managers.pop_back();
    if (top == installed_) break;
  }
}

void notify_pass_end(std::string_view pass, bool committed) {
  AnalysisManager* am = current_analysis_manager();
  if (!am) return;
  am->invalidate(committed ? preserved_analyses(pass) : 0);
}

void notify_ir_mutation() {
  if (AnalysisManager* am = current_analysis_manager()) am->invalidate_all();
}

DepGraphPtr dep_graph_for(ir::StmtList& root, ir::Loop& loop,
                          const Assumptions* ctx) {
  if (AnalysisManager* am = current_analysis_manager())
    return am->dep_graph(root, loop, ctx);
  return std::make_shared<const DepGraph>(root, loop, ctx);
}

Section section_within_for(const RefInfo& ref, const ir::Loop& outer) {
  if (AnalysisManager* am = current_analysis_manager())
    return am->section_within(ref, outer);
  return section_within(ref, outer);
}

}  // namespace blk::analysis
