// AnalysisManager: memoization of the expensive program analyses
// (dependence graphs, regular sections, reuse classification) keyed by
// statement-subtree identity, with invalidation driven by the pass
// instrumentation hooks (transform/instrument.hpp).
//
// Why: every driver in the repo used to rebuild `DepGraph` from scratch at
// each step — Procedure IndexSetSplit alone builds the same graph three to
// four times per trial iteration (candidate scan, shape-before, shape-
// after, next-iteration scan) even though the tree only changes when a
// trial split commits.  The manager caches analysis results between IR
// mutations: every PassScope ends with `notify_pass_end`, which drops the
// cached results the pass does not declare preserved.
//
// Lifetime: dependence graphs are handed out as shared_ptr, so a client
// holding a graph across a nested committed pass (IndexSetSplit iterating
// recurrence edges while trial splits commit) keeps its — now stale, but
// valid — copy alive, exactly as the old stack-built graphs did.
//
// Threading: managers are installed per thread (the fuzzer runs campaigns
// from a thread pool).  `ScopedAnalysisManager` pushes onto a thread_local
// stack, mirroring the pass-observer discipline; transforms reach the
// innermost installed manager through `dep_graph_for`, which degrades to
// a fresh build when no manager is active — caching is a pure
// accelerator, never a requirement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/reuse.hpp"
#include "analysis/sections.hpp"

namespace blk::analysis {

using DepGraphPtr = std::shared_ptr<const DepGraph>;

/// The analysis families the manager caches; passes declare which they
/// preserve (see `preserved_analyses`) as a bitmask of these.
enum AnalysisKind : unsigned {
  kDepGraphs = 1u << 0,
  kSections = 1u << 1,
  kReuse = 1u << 2,
  kAllAnalyses = kDepGraphs | kSections | kReuse,
};

/// Preservation declaration for a pass name: the analyses a *committed*
/// application leaves valid.  Unknown passes preserve nothing (a new pass
/// must opt in explicitly); aborted passes also preserve nothing, because
/// trial-undo restores values, not node identities.
[[nodiscard]] unsigned preserved_analyses(std::string_view pass);

class AnalysisManager {
 public:
  /// `caching = false` builds every query fresh while still collecting
  /// counters and build time — the uncached baseline for benchmarks.
  explicit AnalysisManager(bool caching = true) : caching_(caching) {}

  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  /// Memoized `DepGraph(root, loop, ctx)`.
  DepGraphPtr dep_graph(ir::StmtList& root, ir::Loop& loop,
                        const Assumptions* ctx = nullptr);

  /// Memoized `section_within(ref, outer)` (keyed by the reference's
  /// subscript-node identities, which are stable between IR mutations).
  Section section_within(const RefInfo& ref, const ir::Loop& outer);

  /// Memoized `analyze_reuse(body, line_elements)`.
  std::vector<LoopReuse> reuse(ir::StmtList& body, long line_elements = 8);

  /// Drop cached results not covered by `preserved` (bitmask of
  /// AnalysisKind).  Called from the PassScope hook; also call directly
  /// after mutating the tree outside any pass (manual trial undo).
  void invalidate(unsigned preserved = 0);
  void invalidate_all() { invalidate(0); }

  [[nodiscard]] bool caching() const { return caching_; }

  /// Flip caching at run time — the benchmark baseline drives the same
  /// pipeline (and the same context-owned manager) with caching off.
  /// Disabling drops any cached results so later queries rebuild.
  void set_caching(bool on) {
    caching_ = on;
    if (!on) {
      dep_cache_.clear();
      section_cache_.clear();
      reuse_cache_.clear();
    }
  }

  struct Stats {
    std::uint64_t dep_hits = 0, dep_misses = 0;
    std::uint64_t section_hits = 0, section_misses = 0;
    std::uint64_t reuse_hits = 0, reuse_misses = 0;
    std::uint64_t invalidations = 0;
    double build_seconds = 0;  ///< wall time constructing analyses (misses)

    [[nodiscard]] std::uint64_t hits() const {
      return dep_hits + section_hits + reuse_hits;
    }
    [[nodiscard]] std::uint64_t misses() const {
      return dep_misses + section_misses + reuse_misses;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct DepKey {
    const void* root;
    const void* loop;
    const void* ctx;
    std::size_t ctx_facts;  ///< guards against in-place ctx mutation
    auto operator<=>(const DepKey&) const = default;
  };
  struct SectionKey {
    const void* outer;
    std::string array;
    bool is_write;
    std::vector<const void*> subs;
    std::vector<const void*> loops;
    auto operator<=>(const SectionKey&) const = default;
  };
  struct ReuseKey {
    const void* body;
    long line_elements;
    auto operator<=>(const ReuseKey&) const = default;
  };

  bool caching_;
  Stats stats_;
  std::map<DepKey, DepGraphPtr> dep_cache_;
  std::map<SectionKey, Section> section_cache_;
  std::map<ReuseKey, std::vector<LoopReuse>> reuse_cache_;
};

/// The innermost manager installed on this thread (nullptr when none).
[[nodiscard]] AnalysisManager* current_analysis_manager();

/// RAII installation of a manager on this thread's stack.
class ScopedAnalysisManager {
 public:
  explicit ScopedAnalysisManager(AnalysisManager& am);
  ~ScopedAnalysisManager();
  ScopedAnalysisManager(const ScopedAnalysisManager&) = delete;
  ScopedAnalysisManager& operator=(const ScopedAnalysisManager&) = delete;

 private:
  AnalysisManager* installed_;
};

/// Pass-end hook (called by ~PassScope on every pass, committed or not):
/// invalidates the current manager's caches per the preservation table.
void notify_pass_end(std::string_view pass, bool committed);

/// Notify the current manager (if any) that the tree changed outside any
/// pass scope — the manual trial-undo path of Procedure IndexSetSplit.
void notify_ir_mutation();

/// Memoizing entry points for transform code: consult the thread's
/// current manager when installed, else compute fresh.
[[nodiscard]] DepGraphPtr dep_graph_for(ir::StmtList& root, ir::Loop& loop,
                                        const Assumptions* ctx = nullptr);
[[nodiscard]] Section section_within_for(const RefInfo& ref,
                                         const ir::Loop& outer);

}  // namespace blk::analysis
