#include "analysis/refs.hpp"

namespace blk::analysis {

using namespace blk::ir;

std::size_t RefInfo::common_depth(const RefInfo& other) const {
  std::size_t d = 0;
  while (d < loops.size() && d < other.loops.size() &&
         loops[d] == other.loops[d])
    ++d;
  return d;
}

namespace {

struct Collector {
  std::vector<RefInfo> out;
  std::vector<Loop*> chain;
  int pos = 0;

  [[nodiscard]] bool loop_bound(const std::string& name) const {
    for (const Loop* l : chain)
      if (l->var == name) return true;
    return false;
  }

  /// Reads hiding inside an index expression: free variables are runtime
  /// scalars (or harmless read-only parameters); ArrayElem nodes read an
  /// array element.
  void index_reads(const IExprPtr& e, Assign* owner_assign, Stmt* owner) {
    switch (e->kind) {
      case IKind::Const:
        return;
      case IKind::Var:
        if (!loop_bound(e->name))
          out.push_back({.stmt = owner_assign,
                         .owner = owner,
                         .is_write = false,
                         .array = e->name,
                         .subs = {},
                         .loops = chain,
                         .textual_pos = pos});
        return;
      case IKind::ArrayElem:
        out.push_back({.stmt = owner_assign,
                       .owner = owner,
                       .is_write = false,
                       .array = e->name,
                       .subs = {e->lhs},
                       .loops = chain,
                       .textual_pos = pos});
        index_reads(e->lhs, owner_assign, owner);
        return;
      default:
        index_reads(e->lhs, owner_assign, owner);
        if (e->rhs) index_reads(e->rhs, owner_assign, owner);
        return;
    }
  }

  void vexpr_reads(const VExprPtr& e, Assign* owner_assign, Stmt* owner) {
    switch (e->kind) {
      case VKind::Const:
        return;
      case VKind::IndexVal:
        index_reads(e->index, owner_assign, owner);
        return;
      case VKind::ScalarRef:
        out.push_back({.stmt = owner_assign,
                       .owner = owner,
                       .is_write = false,
                       .array = e->name,
                       .subs = {},
                       .loops = chain,
                       .textual_pos = pos});
        return;
      case VKind::ArrayRef:
        out.push_back({.stmt = owner_assign,
                       .owner = owner,
                       .is_write = false,
                       .array = e->name,
                       .subs = e->subs,
                       .loops = chain,
                       .textual_pos = pos});
        for (const auto& sub : e->subs)
          index_reads(sub, owner_assign, owner);
        return;
      case VKind::Bin:
        vexpr_reads(e->lhs, owner_assign, owner);
        vexpr_reads(e->rhs, owner_assign, owner);
        return;
      case VKind::Un:
        vexpr_reads(e->lhs, owner_assign, owner);
        return;
    }
  }

  void walk(StmtList& body) {
    for (auto& s : body) {
      ++pos;
      switch (s->kind()) {
        case SKind::Assign: {
          Assign& a = s->as_assign();
          vexpr_reads(a.rhs, &a, &a);
          out.push_back({.stmt = &a,
                         .owner = &a,
                         .is_write = true,
                         .array = a.lhs.name,
                         .subs = a.lhs.subs,
                         .loops = chain,
                         .textual_pos = pos});
          for (const auto& sub : a.lhs.subs) index_reads(sub, &a, &a);
          break;
        }
        case SKind::Loop: {
          Loop& l = s->as_loop();
          // Bounds are evaluated in the enclosing scope.
          index_reads(l.lb, nullptr, &l);
          index_reads(l.ub, nullptr, &l);
          index_reads(l.step, nullptr, &l);
          chain.push_back(&l);
          walk(l.body);
          chain.pop_back();
          break;
        }
        case SKind::If: {
          If& f = s->as_if();
          vexpr_reads(f.cond.lhs, nullptr, &f);
          vexpr_reads(f.cond.rhs, nullptr, &f);
          walk(f.then_body);
          walk(f.else_body);
          break;
        }
      }
    }
  }
};

}  // namespace

std::vector<RefInfo> collect_refs(ir::StmtList& body) {
  Collector c;
  c.walk(body);
  return std::move(c.out);
}

std::vector<RefInfo> refs_to(const std::vector<RefInfo>& refs,
                             const std::string& array) {
  std::vector<RefInfo> out;
  for (const auto& r : refs)
    if (r.array == array) out.push_back(r);
  return out;
}

std::set<std::string> privatizable_scalars(ir::StmtList& body) {
  std::vector<RefInfo> refs = collect_refs(body);
  // Writes under an IF or inside an inner loop do not dominate the
  // iteration's later reads, so only top-level first-writes qualify.
  std::set<std::string> conditional;
  for (const auto& s : body) {
    if (s->kind() != SKind::Assign) {
      // Any scalar touched inside a nested construct is disqualified
      // (its def may not execute or may interleave with inner reads).
      StmtList* sub = nullptr;
      if (s->kind() == SKind::Loop) {
        for (RefInfo& r :
             collect_refs(s->as_loop().body))
          if (r.is_scalar()) conditional.insert(r.array);
      } else {
        If& f = s->as_if();
        for (RefInfo& r : collect_refs(f.then_body))
          if (r.is_scalar()) conditional.insert(r.array);
        for (RefInfo& r : collect_refs(f.else_body))
          if (r.is_scalar()) conditional.insert(r.array);
      }
      (void)sub;
    }
  }
  std::set<std::string> out;
  std::set<std::string> decided;
  for (const RefInfo& r : refs) {
    if (!r.is_scalar() || decided.contains(r.array)) continue;
    decided.insert(r.array);
    if (r.is_write && !conditional.contains(r.array)) out.insert(r.array);
  }
  return out;
}

}  // namespace blk::analysis
