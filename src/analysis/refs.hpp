// Array-reference collection.
//
// Analyses work over a flat list of array references, each annotated with
// its owning assignment and the chain of loops enclosing it.  Loops are
// identified by pointer (names may repeat after distribution).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace blk::analysis {

/// One memory reference occurrence inside a statement tree.  Scalars are
/// modelled as rank-0 references (empty `subs`): every pair of accesses to
/// the same scalar conflicts, which is exactly the conservative behaviour
/// loop distribution needs before scalar expansion.
struct RefInfo {
  ir::Assign* stmt = nullptr;  ///< owning assignment (null for IF reads)
  ir::Stmt* owner = nullptr;   ///< owning statement (Assign or If), never null
  bool is_write = false;
  std::string array;           ///< array or scalar name
  std::vector<ir::IExprPtr> subs;  ///< empty for scalars
  std::vector<ir::Loop*> loops;    ///< enclosing loops, outermost first
  int textual_pos = 0;             ///< pre-order statement index

  [[nodiscard]] bool is_scalar() const { return subs.empty(); }

  /// Depth of the innermost common loop shared with `other` (count of
  /// common loops, comparing by pointer).
  [[nodiscard]] std::size_t common_depth(const RefInfo& other) const;
};

/// Collect every memory reference in `body`: assign targets, assign RHS
/// reads, IF-condition reads, and index-position reads — a free variable
/// inside a subscript or loop bound that no enclosing loop binds is a
/// runtime scalar read (the pivot row IMAX, IF-inspection's KC), and an
/// ArrayElem bound (KLB(KN)) is an array read.  Symbolic parameters are
/// swept up by the same rule; being read-only they never induce edges.
[[nodiscard]] std::vector<RefInfo> collect_refs(ir::StmtList& body);

/// Subset of `refs` on `array`.
[[nodiscard]] std::vector<RefInfo> refs_to(const std::vector<RefInfo>& refs,
                                           const std::string& array);

/// Scalars that are private per iteration of a loop with this `body`:
/// their first textual access is an unconditional write (def-before-use),
/// so any loop-carried dependence through them is an artifact of register
/// reuse, not a value flow.  Reordering transformations may disregard
/// dependences on these names (each iteration can use its own copy).
[[nodiscard]] std::set<std::string> privatizable_scalars(ir::StmtList& body);

}  // namespace blk::analysis
