#include "analysis/reuse.hpp"

#include <algorithm>

#include "ir/affine.hpp"

namespace blk::analysis {

using namespace blk::ir;

const char* to_string(ReuseKind k) {
  switch (k) {
    case ReuseKind::TemporalInvariant: return "temporal-invariant";
    case ReuseKind::SelfTemporal: return "self-temporal";
    case ReuseKind::SelfSpatial: return "self-spatial";
    case ReuseKind::None: return "none";
  }
  return "?";
}

std::size_t LoopReuse::none_count() const {
  return static_cast<std::size_t>(
      std::count_if(refs.begin(), refs.end(), [](const RefReuse& r) {
        return r.kind == ReuseKind::None;
      }));
}

std::size_t LoopReuse::invariant_count() const {
  return static_cast<std::size_t>(
      std::count_if(refs.begin(), refs.end(), [](const RefReuse& r) {
        return r.kind == ReuseKind::TemporalInvariant;
      }));
}

namespace {

/// Classify `ref` against loop variable `var`.
RefReuse classify(const RefInfo& ref, const std::string& var,
                  long line_elements,
                  const std::vector<RefInfo>& peers) {
  RefReuse out{.ref = ref};
  bool mentions_var = false;
  for (const auto& sub : ref.subs)
    if (mentions(*sub, var)) mentions_var = true;
  if (!mentions_var) {
    out.kind = ReuseKind::TemporalInvariant;
    return out;
  }

  // Self-temporal: a peer reference to the same array whose subscripts
  // differ only by a constant multiple of this loop's variable coordinate
  // (A(I) vs A(I-5)).
  for (const RefInfo& q : peers) {
    if (q.array != ref.array || q.subs.size() != ref.subs.size()) continue;
    if (&q == &ref || (q.stmt == ref.stmt && q.is_write == ref.is_write))
      continue;
    bool constant_gap = true;
    long gap = 0;
    for (std::size_t d = 0; d < ref.subs.size(); ++d) {
      auto diff = affine_difference(ref.subs[d], q.subs[d]);
      if (!diff || !diff->is_constant()) {
        constant_gap = false;
        break;
      }
      if (diff->constant != 0) gap = diff->constant;
    }
    if (constant_gap && gap != 0 && std::abs(gap) <= 64) {
      out.kind = ReuseKind::SelfTemporal;
      out.distance = gap;
      return out;
    }
  }

  // Self-spatial: var strides the fastest-varying subscript (dimension 0,
  // column-major) with a small coefficient and no other dimension moves.
  auto f0 = as_affine(*ref.subs[0]);
  if (f0) {
    long a0 = f0->coef_of(var);
    bool others_fixed = true;
    for (std::size_t d = 1; d < ref.subs.size(); ++d)
      if (mentions(*ref.subs[d], var)) others_fixed = false;
    if (a0 != 0 && std::abs(a0) < line_elements && others_fixed) {
      out.kind = ReuseKind::SelfSpatial;
      out.stride = a0;
      return out;
    }
  }
  out.kind = ReuseKind::None;
  return out;
}

void collect_loops(StmtList& body, std::vector<Loop*>& out) {
  for_each_stmt(body, [&](Stmt& s) {
    if (s.kind() == SKind::Loop) out.push_back(&s.as_loop());
  });
}

}  // namespace

std::vector<LoopReuse> analyze_reuse(StmtList& body, long line_elements) {
  std::vector<Loop*> loops;
  collect_loops(body, loops);
  std::vector<RefInfo> refs = collect_refs(body);

  std::vector<LoopReuse> out;
  out.reserve(loops.size());
  for (Loop* l : loops) {
    LoopReuse lr{.loop = l, .refs = {}};
    for (const RefInfo& r : refs) {
      if (r.is_scalar()) continue;
      // Only references governed by this loop.
      if (std::find(r.loops.begin(), r.loops.end(), l) == r.loops.end())
        continue;
      lr.refs.push_back(classify(r, l->var, line_elements, refs));
    }
    out.push_back(std::move(lr));
  }
  return out;
}

std::vector<const Loop*> blocking_candidates(StmtList& body) {
  std::vector<const Loop*> out;
  for (const LoopReuse& lr : analyze_reuse(body)) {
    // A loop is a blocking candidate when it carries temporal-invariant
    // references (re-touched every iteration) alongside references that it
    // actually moves: strip-mining it and sinking the strip loop shrinks
    // the distance between those invariant touches.
    if (!lr.refs.empty() && lr.invariant_count() > 0 &&
        lr.invariant_count() < lr.refs.size())
      out.push_back(lr.loop);
  }
  return out;
}

}  // namespace blk::analysis
