// Reuse analysis (§2.2): classify, per array reference and per loop, the
// kind of reuse the reference carries — the information a blocking driver
// needs to decide *which* loops are worth tiling and what the per-iteration
// working set is.
//
//   * temporal-invariant: the subscripts do not mention the loop variable;
//     each iteration re-touches the same element (B(J) in the I loop).
//   * self-temporal: a loop-carried self-dependence at a small constant
//     distance (A(I-5) five iterations after A(I)).
//   * self-spatial: the loop variable strides the fastest-varying (first,
//     column-major) subscript with a small constant coefficient, so
//     consecutive iterations hit the same cache line.
//   * none: a new line every iteration (the Fig. 9 row-walk problem).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/refs.hpp"

namespace blk::analysis {

enum class ReuseKind : std::uint8_t {
  TemporalInvariant,
  SelfTemporal,
  SelfSpatial,
  None,
};

[[nodiscard]] const char* to_string(ReuseKind k);

/// Reuse classification of one reference with respect to one loop.
struct RefReuse {
  RefInfo ref;
  ReuseKind kind = ReuseKind::None;
  std::optional<long> distance;  ///< SelfTemporal: iteration distance
  long stride = 0;               ///< SelfSpatial: elements per iteration
};

/// Summary for one loop of a nest.
struct LoopReuse {
  const ir::Loop* loop = nullptr;
  std::vector<RefReuse> refs;

  /// References gaining nothing from this loop's locality (candidates that
  /// make the loop a poor innermost choice).
  [[nodiscard]] std::size_t none_count() const;
  /// References whose element is re-touched every iteration; blocking an
  /// *outer* loop keeps their whole working set live (the §2.3 win).
  [[nodiscard]] std::size_t invariant_count() const;
};

/// Classify every array reference in `body` against each loop of the nest
/// rooted there.  `line_elements` is the cache-line capacity in elements
/// (lines/strides beyond it don't count as spatial reuse).
[[nodiscard]] std::vector<LoopReuse> analyze_reuse(ir::StmtList& body,
                                                   long line_elements = 8);

/// The §2.3/§5 decision in one call: loops whose blocking would convert
/// temporal-invariant reuse of out-of-cache data into in-cache reuse —
/// i.e. loops that carry invariant references while some *inner* loop
/// sweeps a large extent.  Returns loops ordered outermost-first.
[[nodiscard]] std::vector<const ir::Loop*> blocking_candidates(
    ir::StmtList& body);

}  // namespace blk::analysis
