#include "analysis/sections.hpp"

#include <algorithm>

#include "ir/error.hpp"

namespace blk::analysis {

using namespace blk::ir;

std::string Triplet::to_string() const {
  if (!lb || !ub) return "?";
  return ir::to_string(lb) + ":" + ir::to_string(ub);
}

std::string Section::to_string() const {
  std::string s = array + "(";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += ",";
    s += dims[i].to_string();
  }
  return s + ")";
}

namespace {

/// Lower/upper bound of `e` as variable `v` ranges over [vlb, vub],
/// exploiting monotonicity.  Returns nullptr when the shape defeats us.
IExprPtr expand_bound(const IExprPtr& e, const std::string& v,
                      const IExprPtr& vlb, const IExprPtr& vub,
                      bool want_lower) {
  switch (e->kind) {
    case IKind::Const:
      return e;
    case IKind::Var:
      if (e->name != v) return e;
      return want_lower ? vlb : vub;
    case IKind::Add: {
      IExprPtr l = expand_bound(e->lhs, v, vlb, vub, want_lower);
      IExprPtr r = expand_bound(e->rhs, v, vlb, vub, want_lower);
      if (!l || !r) return nullptr;
      return iadd(std::move(l), std::move(r));
    }
    case IKind::Sub: {
      IExprPtr l = expand_bound(e->lhs, v, vlb, vub, want_lower);
      IExprPtr r = expand_bound(e->rhs, v, vlb, vub, !want_lower);
      if (!l || !r) return nullptr;
      return isub(std::move(l), std::move(r));
    }
    case IKind::Mul: {
      // Require one constant factor to know the monotonicity direction.
      const IExpr* cst = nullptr;
      IExprPtr other;
      if (e->lhs->kind == IKind::Const) {
        cst = e->lhs.get();
        other = e->rhs;
      } else if (e->rhs->kind == IKind::Const) {
        cst = e->rhs.get();
        other = e->lhs;
      } else {
        if (!mentions(*e, v)) return e;
        return nullptr;
      }
      bool dir = cst->value >= 0 ? want_lower : !want_lower;
      IExprPtr o = expand_bound(other, v, vlb, vub, dir);
      if (!o) return nullptr;
      return imul(iconst(cst->value), std::move(o));
    }
    case IKind::Min:
    case IKind::Max: {
      IExprPtr l = expand_bound(e->lhs, v, vlb, vub, want_lower);
      IExprPtr r = expand_bound(e->rhs, v, vlb, vub, want_lower);
      if (!l || !r) return nullptr;
      return e->kind == IKind::Min ? imin(std::move(l), std::move(r))
                                   : imax(std::move(l), std::move(r));
    }
    case IKind::FloorDiv:
    case IKind::CeilDiv: {
      IExprPtr l = expand_bound(e->lhs, v, vlb, vub, want_lower);
      if (!l) return nullptr;
      long d = e->rhs->value;
      return e->kind == IKind::FloorDiv ? ifloordiv(std::move(l), d)
                                        : iceildiv(std::move(l), d);
    }
    case IKind::ArrayElem:
      return mentions(*e, v) ? nullptr : e;  // opaque runtime value
  }
  return nullptr;
}

}  // namespace

Section section_of(const RefInfo& ref, std::span<Loop* const> expand) {
  Section s;
  s.array = ref.array;
  s.dims.reserve(ref.subs.size());
  for (const auto& sub : ref.subs)
    s.dims.push_back({.lb = sub, .ub = sub});
  // Innermost-to-outermost so that bounds mentioning outer variables are
  // expanded by later iterations.
  for (auto it = expand.rbegin(); it != expand.rend(); ++it) {
    const Loop* l = *it;
    for (auto& t : s.dims) {
      if (t.lb) t.lb = expand_bound(t.lb, l->var, l->lb, l->ub, true);
      if (t.ub) t.ub = expand_bound(t.ub, l->var, l->lb, l->ub, false);
    }
  }
  for (auto& t : s.dims) {
    if (t.lb) t.lb = ir::simplify(t.lb);
    if (t.ub) t.ub = ir::simplify(t.ub);
  }
  return s;
}

ir::IExprPtr sweep_extreme(const ir::IExprPtr& e,
                           std::span<ir::Loop* const> loops, bool lower) {
  IExprPtr cur = e;
  for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
    if (!cur) return nullptr;
    cur = expand_bound(cur, (*it)->var, (*it)->lb, (*it)->ub, lower);
  }
  return cur ? ir::simplify(cur) : nullptr;
}

Section section_within(const RefInfo& ref, const ir::Loop& outer) {
  auto it = std::find(ref.loops.begin(), ref.loops.end(), &outer);
  if (it == ref.loops.end())
    throw Error("section_within: reference not inside the given loop");
  std::span<Loop* const> expand(&*it,
                                static_cast<std::size_t>(ref.loops.end() - it));
  return section_of(ref, expand);
}

namespace {

[[nodiscard]] bool dims_ok(const Section& a, const Section& b) {
  if (a.array != b.array || a.dims.size() != b.dims.size()) return false;
  for (const auto& t : a.dims)
    if (!t.lb || !t.ub) return false;
  for (const auto& t : b.dims)
    if (!t.lb || !t.ub) return false;
  return true;
}

}  // namespace

std::optional<bool> subset(const Section& a, const Section& b,
                           const Assumptions& ctx) {
  if (!dims_ok(a, b)) return std::nullopt;
  bool all = true;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    bool lo = ctx.ge(a.dims[d].lb, b.dims[d].lb);
    bool hi = ctx.le(a.dims[d].ub, b.dims[d].ub);
    if (lo && hi) continue;
    // Provably outside?
    if (ctx.ge(b.dims[d].lb, iadd(a.dims[d].lb, 1)) ||
        ctx.ge(a.dims[d].ub, iadd(b.dims[d].ub, 1)))
      return false;
    all = false;
  }
  if (all) return true;
  return std::nullopt;
}

std::optional<bool> equal(const Section& a, const Section& b,
                          const Assumptions& ctx) {
  if (!dims_ok(a, b)) return std::nullopt;
  bool all = true;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    bool same = ctx.eq(a.dims[d].lb, b.dims[d].lb) &&
                ctx.eq(a.dims[d].ub, b.dims[d].ub);
    if (same) continue;
    // Provably different in this dimension?
    if (ctx.ge(a.dims[d].lb, iadd(b.dims[d].lb, 1)) ||
        ctx.ge(b.dims[d].lb, iadd(a.dims[d].lb, 1)) ||
        ctx.ge(a.dims[d].ub, iadd(b.dims[d].ub, 1)) ||
        ctx.ge(b.dims[d].ub, iadd(a.dims[d].ub, 1)))
      return false;
    all = false;
  }
  if (all) return true;
  return std::nullopt;
}

std::optional<bool> disjoint(const Section& a, const Section& b,
                             const Assumptions& ctx) {
  if (!dims_ok(a, b)) return std::nullopt;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    if (ctx.ge(a.dims[d].lb, iadd(b.dims[d].ub, 1))) return true;
    if (ctx.ge(b.dims[d].lb, iadd(a.dims[d].ub, 1))) return true;
  }
  return std::nullopt;
}

std::vector<SplitBoundary> split_boundaries(const Section& a,
                                            const Section& b,
                                            const Assumptions& ctx) {
  std::vector<SplitBoundary> strict;  // disjoint piece provably nonempty
  std::vector<SplitBoundary> weak;    // piece may be empty on some inputs
  if (!dims_ok(a, b)) return strict;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const Triplet& ta = a.dims[d];
    const Triplet& tb = b.dims[d];
    // Upper side: one section extends at least as far up as the other.
    // Splitting the taller one at the other's upper bound leaves a
    // disjoint (possibly empty, when only >= is provable) top piece.
    auto upper = [&](const Triplet& small, const Triplet& big,
                     bool split_b) {
      SplitBoundary cand{.dim = d, .split_b = split_b,
                         .boundary = small.ub, .upper_side = true};
      if (ctx.ge(big.ub, iadd(small.ub, 1)))
        strict.push_back(cand);
      else if (ctx.ge(big.ub, small.ub))
        weak.push_back(cand);
    };
    upper(ta, tb, /*split_b=*/true);
    upper(tb, ta, /*split_b=*/false);
    // Lower side: one section starts at least as low as the other.
    // Splitting the lower one at other.lb - 1 leaves a disjoint bottom
    // piece.
    auto lower = [&](const Triplet& high, const Triplet& low,
                     bool split_b) {
      SplitBoundary cand{.dim = d, .split_b = split_b,
                         .boundary = ir::simplify(isub(high.lb, 1)),
                         .upper_side = false};
      if (ctx.ge(high.lb, iadd(low.lb, 1)))
        strict.push_back(cand);
      else if (ctx.ge(high.lb, low.lb))
        weak.push_back(cand);
    };
    lower(ta, tb, /*split_b=*/true);
    lower(tb, ta, /*split_b=*/false);
  }
  strict.insert(strict.end(), weak.begin(), weak.end());
  return strict;
}

}  // namespace blk::analysis
