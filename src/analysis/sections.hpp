// Bounded regular section analysis (Havlak/Kennedy-style, Fortran-90
// triplet precision) — the representation the paper chooses for Procedure
// IndexSetSplit: "equivalent to Fortran 90 array notation".
//
// A section summarizes the portion of an array touched by one reference
// over the full execution of a set of loops, as one triplet lb:ub per
// dimension (strides are tracked but the paper's algorithms need only the
// bounds).  Comparisons (subset / disjoint / equal) are answered with the
// symbolic Assumptions context.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/assume.hpp"
#include "analysis/refs.hpp"

namespace blk::analysis {

/// One dimension of a section: inclusive symbolic bounds.
struct Triplet {
  ir::IExprPtr lb;
  ir::IExprPtr ub;

  [[nodiscard]] std::string to_string() const;
};

/// A bounded regular section of `array`.
struct Section {
  std::string array;
  std::vector<Triplet> dims;

  [[nodiscard]] std::string to_string() const;
};

/// Compute the section touched by `ref` when the loops in `expand` run over
/// their full ranges.  `expand` must be a suffix of ref.loops (innermost
/// loops are expanded; outer ones stay symbolic).  Bounds containing
/// MIN/MAX are kept as-is (conservatively exact for these monotone forms).
[[nodiscard]] Section section_of(const RefInfo& ref,
                                 std::span<ir::Loop* const> expand);

/// Convenience: expand the loops strictly inside `outer` (i.e. every loop
/// of ref.loops from `outer` inward, including `outer` itself).
[[nodiscard]] Section section_within(const RefInfo& ref,
                                     const ir::Loop& outer);

/// Extreme value of `e` as the given loops sweep their full ranges
/// (`lower` selects min vs max), exploiting monotonicity; loops are
/// expanded innermost-first so bounds referencing outer variables resolve.
/// Returns nullptr when the expression's shape defeats the analysis.
[[nodiscard]] ir::IExprPtr sweep_extreme(const ir::IExprPtr& e,
                                         std::span<ir::Loop* const> loops,
                                         bool lower);

/// Section comparison verdicts are conservative: nullopt = cannot prove.
[[nodiscard]] std::optional<bool> subset(const Section& a, const Section& b,
                                         const Assumptions& ctx);
[[nodiscard]] std::optional<bool> equal(const Section& a, const Section& b,
                                        const Assumptions& ctx);
/// Disjoint if provably separated in at least one dimension.
[[nodiscard]] std::optional<bool> disjoint(const Section& a, const Section& b,
                                           const Assumptions& ctx);

/// A candidate split point produced from two overlapping sections
/// (Fig. 3 steps 3-4): splitting the generator loop of one section at
/// `boundary` (subscript values <= boundary in the first piece) makes the
/// piece beyond the boundary provably disjoint from the other section.
struct SplitBoundary {
  std::size_t dim;        ///< array dimension the sections diverge in
  bool split_b = false;   ///< true: split section b's generator, else a's
  ir::IExprPtr boundary;  ///< subscript value ending the "common" piece
  bool upper_side = true; ///< true: disjoint piece lies above the boundary
};

/// All provable split boundaries between two sections, best candidates
/// first (upper-side splits of the section that extends further).  Empty
/// when the sections are provably equal or nothing can be proven.
[[nodiscard]] std::vector<SplitBoundary> split_boundaries(
    const Section& a, const Section& b, const Assumptions& ctx);

}  // namespace blk::analysis
