#include "cachesim/cache.hpp"

#include <bit>
#include <sstream>

#include "interp/vm.hpp"
#include "ir/error.hpp"

namespace blk::cachesim {

namespace {

[[nodiscard]] bool power_of_two(std::size_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!power_of_two(cfg.size_bytes) || !power_of_two(cfg.line_bytes) ||
      !power_of_two(cfg.assoc))
    throw Error("Cache: geometry fields must be powers of two");
  if (cfg.size_bytes % (cfg.line_bytes * cfg.assoc) != 0)
    throw Error("Cache: size must be a multiple of line_bytes*assoc");
  set_shift_ = static_cast<std::size_t>(std::countr_zero(cfg.line_bytes));
  set_mask_ = cfg.num_sets() - 1;
  lines_.assign(cfg.num_sets() * cfg.assoc, Line{});
}

bool Cache::access(std::uint64_t addr) { return access_ex(addr).hit; }

Cache::AccessResult Cache::access_ex(std::uint64_t addr) {
  ++clock_;
  ++stats_.accesses;
  std::uint64_t block = addr >> set_shift_;
  std::size_t set = static_cast<std::size_t>(block) & set_mask_;
  Line* base = &lines_[set * cfg_.assoc];

  Line* victim = base;
  for (std::size_t w = 0; w < cfg_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == block) {
      line.last_use = clock_;
      ++stats_.hits;
      return {.hit = true};
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  ++stats_.misses;
  AccessResult result{.hit = false};
  if (victim->valid) {
    ++stats_.evictions;
    result.evicted = true;
    result.victim_addr = victim->tag << set_shift_;
  }
  victim->valid = true;
  victim->tag = block;
  victim->last_use = clock_;
  return result;
}

bool Cache::invalidate(std::uint64_t addr) {
  std::uint64_t block = addr >> set_shift_;
  std::size_t set = static_cast<std::size_t>(block) & set_mask_;
  Line* base = &lines_[set * cfg_.assoc];
  for (std::size_t w = 0; w < cfg_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == block) {
      line.valid = false;
      return true;
    }
  }
  return false;
}

void Cache::simulate(std::span<const interp::TraceRecord> recs) {
  for (const interp::TraceRecord& r : recs) access(r.addr);
}

void Cache::reset() {
  lines_.assign(lines_.size(), Line{});
  clock_ = 0;
  stats_ = CacheStats{};
}

namespace {

/// Records streamed from the VM to the cache, a batch at a time; keeps
/// arbitrarily long traces (N=300 LU is ~10^8 accesses) in constant memory.
constexpr std::size_t kTraceBatch = 1 << 20;

}  // namespace

CacheStats simulate(const ir::Program& p, const ir::Env& params,
                    const CacheConfig& cfg, std::uint64_t seed) {
  interp::ExecEngine eng(p, params);
  interp::seed_store(eng.store(), seed);
  Cache cache(cfg);
  interp::TraceBuffer buf(
      kTraceBatch, &cache,
      [](void* ctx, std::span<const interp::TraceRecord> recs) {
        static_cast<Cache*>(ctx)->simulate(recs);
      });
  eng.run(buf);
  buf.flush();
  return cache.stats();
}

Hierarchy::Hierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) throw Error("Hierarchy: need at least one level");
  levels_.reserve(levels.size());
  for (const auto& cfg : levels) levels_.emplace_back(cfg);
}

std::size_t Hierarchy::access(std::uint64_t addr) {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    Cache::AccessResult r = levels_[i].access_ex(addr);
    // Inclusion: a block displaced from level i may no longer be cached
    // in any level above it.
    if (r.evicted)
      for (std::size_t j = 0; j < i; ++j)
        if (levels_[j].invalidate(r.victim_addr)) ++back_invalidations_;
    if (r.hit) return i;
  }
  return levels_.size();
}

void Hierarchy::simulate(std::span<const interp::TraceRecord> recs) {
  for (const interp::TraceRecord& r : recs) access(r.addr);
}

void Hierarchy::reset() {
  for (auto& l : levels_) l.reset();
  back_invalidations_ = 0;
}

double amat(std::span<const CacheStats> levels,
            std::span<const double> latencies) {
  if (levels.empty()) throw Error("amat: need at least one level");
  if (latencies.size() != levels.size() + 1)
    throw Error("amat: need one latency per level plus memory");
  // Every access costs L1's latency; each level's misses additionally pay
  // the next level's latency.
  const double total = static_cast<double>(levels.front().accesses);
  if (total == 0) return 0.0;
  double cycles = total * latencies[0];
  for (std::size_t i = 0; i < levels.size(); ++i)
    cycles += static_cast<double>(levels[i].misses) * latencies[i + 1];
  return cycles / total;
}

double Hierarchy::amat(std::span<const double> latencies) const {
  std::vector<CacheStats> per_level;
  per_level.reserve(levels_.size());
  for (const Cache& l : levels_) per_level.push_back(l.stats());
  return cachesim::amat(per_level, latencies);
}

std::vector<CacheStats> simulate_hierarchy(const ir::Program& p,
                                           const ir::Env& params,
                                           std::vector<CacheConfig> levels,
                                           std::uint64_t seed) {
  interp::ExecEngine eng(p, params);
  interp::seed_store(eng.store(), seed);
  Hierarchy h(std::move(levels));
  interp::TraceBuffer buf(
      kTraceBatch, &h,
      [](void* ctx, std::span<const interp::TraceRecord> recs) {
        static_cast<Hierarchy*>(ctx)->simulate(recs);
      });
  eng.run(buf);
  buf.flush();
  std::vector<CacheStats> out;
  for (std::size_t i = 0; i < h.num_levels(); ++i)
    out.push_back(h.stats(i));
  return out;
}

std::string summary(const CacheConfig& cfg, const CacheStats& st) {
  // Fixed two-decimal percentage: default stream precision is locale- and
  // magnitude-dependent, which made the string unstable across runs.
  char buf[160];
  std::snprintf(buf, sizeof buf, "%zuKB/%zuB/%zu-way: %llu accesses, "
                "%.2f%% miss",
                cfg.size_bytes / 1024, cfg.line_bytes, cfg.assoc,
                static_cast<unsigned long long>(st.accesses),
                st.miss_ratio() * 100.0);
  return buf;
}

}  // namespace blk::cachesim
