// Set-associative LRU cache simulator.
//
// Stands in for the paper's IBM RS/6000 540 data cache (64 KB) so the memory
// behaviour of point vs. blocked codes can be measured machine-independently:
// the interpreter's access trace is replayed through a Cache and the
// hit/miss counts demonstrate the temporal reuse the transformations create.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interp/interp.hpp"
#include "interp/trace.hpp"

namespace blk::cachesim {

/// Geometry of a simulated cache.  All fields must be powers of two and
/// line_bytes * assoc must divide size_bytes.
struct CacheConfig {
  std::size_t size_bytes = 64 * 1024;  ///< RS/6000 540 data-cache capacity
  std::size_t line_bytes = 64;
  std::size_t assoc = 4;

  [[nodiscard]] std::size_t num_sets() const {
    return size_bytes / (line_bytes * assoc);
  }
};

/// Aggregate counters for one simulation.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double miss_ratio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }

  /// Accumulate another simulation's counters.  Pure unsigned sums, so the
  /// combine is commutative and associative: merging per-shard stats yields
  /// bit-identical totals at any worker count or merge order (the sharded
  /// trace replay relies on this).
  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }

  [[nodiscard]] friend CacheStats operator+(CacheStats a, const CacheStats& b) {
    a += b;
    return a;
  }

  [[nodiscard]] bool operator==(const CacheStats&) const = default;
};

/// Average memory-access time from per-level stats: every access pays
/// `latencies[0]`, and each level's misses additionally pay the next
/// level's latency (`latencies` has one entry per level plus memory).
/// Free function so merged shard stats can be scored without a Hierarchy.
[[nodiscard]] double amat(std::span<const CacheStats> levels,
                          std::span<const double> latencies);

/// One-level set-associative cache with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Simulate one access; returns true on hit.  Write-allocate policy:
  /// reads and writes are treated identically for residency.
  bool access(std::uint64_t addr);

  /// What one access did: hit/miss plus the line it displaced, so a
  /// hierarchy can enforce inclusion (a block evicted from a lower level
  /// must also leave the levels above it).
  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    std::uint64_t victim_addr = 0;  ///< line-aligned address displaced
  };
  AccessResult access_ex(std::uint64_t addr);

  /// Drop `addr`'s line if resident (back-invalidation); returns true when
  /// a line was actually dropped.  Not counted as a capacity eviction.
  bool invalidate(std::uint64_t addr);

  /// Replay a whole trace batch (equivalent to calling access() per
  /// record, without per-access callback overhead).  Pairs with the VM's
  /// TraceBuffer: pass it as the buffer's flush sink to stream traces of
  /// any length through the cache in constant memory.
  void simulate(std::span<const interp::TraceRecord> recs);

  void reset();
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Adapter usable directly as an interpreter trace callback.
  [[nodiscard]] interp::TraceFn trace_fn() {
    return [this](std::uint64_t addr, bool) { access(addr); };
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig cfg_;
  std::size_t set_shift_;  ///< log2(line_bytes)
  std::size_t set_mask_;   ///< num_sets - 1
  std::vector<Line> lines_;  ///< num_sets * assoc, set-major
  std::uint64_t clock_ = 0;
  CacheStats stats_;
};

/// Run `p` under `params` with inputs seeded by `seed`, replaying every
/// array access through a cache of geometry `cfg`; returns the statistics.
[[nodiscard]] CacheStats simulate(const ir::Program& p, const ir::Env& params,
                                  const CacheConfig& cfg,
                                  std::uint64_t seed = 42);

/// Multi-level hierarchy: an access that misses level i is looked up in
/// level i+1.  Contents are kept *inclusive*: when a lower level evicts a
/// block, every level above it is back-invalidated (the real mechanism on
/// inclusive hierarchies, and the reason upper-level hit ratios degrade
/// when a trace overflows lower-level sets).  As in hardware, an upper-
/// level hit does not refresh the lower level's LRU state, so a block hot
/// in L1 can still become L2's LRU victim — an "inclusion victim".
class Hierarchy {
 public:
  explicit Hierarchy(std::vector<CacheConfig> levels);

  /// Simulate one access; returns the level that hit (0-based), or the
  /// number of levels when it missed everywhere (memory).
  std::size_t access(std::uint64_t addr);

  /// Lines dropped from upper levels to preserve inclusion.
  [[nodiscard]] std::uint64_t back_invalidations() const {
    return back_invalidations_;
  }

  /// Bulk replay of a trace batch through every level.
  void simulate(std::span<const interp::TraceRecord> recs);

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const CacheStats& stats(std::size_t level) const {
    return levels_[level].stats();
  }
  void reset();

  /// Average memory-access time under the given per-level hit latencies
  /// (cycles); `latencies` must have num_levels()+1 entries, the last
  /// being memory.
  [[nodiscard]] double amat(std::span<const double> latencies) const;

  [[nodiscard]] interp::TraceFn trace_fn() {
    return [this](std::uint64_t addr, bool) { access(addr); };
  }

 private:
  std::vector<Cache> levels_;
  std::uint64_t back_invalidations_ = 0;
};

/// Like simulate() but through a hierarchy; returns per-level stats.
[[nodiscard]] std::vector<CacheStats> simulate_hierarchy(
    const ir::Program& p, const ir::Env& params,
    std::vector<CacheConfig> levels, std::uint64_t seed = 42);

/// Human-readable one-line summary ("64KB/64B/4-way: 1234 acc, 12.3% miss").
[[nodiscard]] std::string summary(const CacheConfig& cfg,
                                  const CacheStats& st);

}  // namespace blk::cachesim
