#include "interp/compile.hpp"

#include <optional>
#include <sstream>
#include <utility>

#include "ir/error.hpp"

namespace blk::interp {
namespace {

using namespace blk::ir;

/// Symbolic affine value over in-scope loop variables: c0 + sum(coef*var).
/// Parameters fold into c0 (compilation is per parameter binding).
struct Aff {
  long c0 = 0;
  std::map<std::string, long> coef;

  [[nodiscard]] long coef_of(const std::string& var) const {
    auto it = coef.find(var);
    return it == coef.end() ? 0 : it->second;
  }
};

class Compiler {
 public:
  Compiler(const ir::Program& p, const ir::Env& params, const Store& store)
      : p_(p), params_(params), store_(store) {
    for (const auto& [name, t] : store_.arrays) {
      array_slot_.emplace(name, static_cast<std::int32_t>(
                                    out_.array_names.size()));
      out_.array_names.push_back(name);
    }
    // Scalar slots cover every declared scalar plus every scalar assigned
    // anywhere in the program (the tree-walker's scalar map is permissive
    // on write); reads of names outside this set become runtime errors.
    for (const auto& s : p_.scalars()) scal_slot_ref(s);
    for_each_stmt(p_.body, [&](const Stmt& s) {
      if (s.kind() == SKind::Assign && !s.as_assign().lhs.is_array())
        scal_slot_ref(s.as_assign().lhs.name);
    });
  }

  [[nodiscard]] CompiledProgram run() {
    Buf code;
    compile_list(p_.body, code);
    code.push_back({.op = Op::Halt});
    out_.code = std::move(code);
    return std::move(out_);
  }

 private:
  using Buf = std::vector<Insn>;

  struct LoopCtx {
    std::string var;
    std::int32_t var_reg = -1;
    bool step_const = false;
    long step_val = 0;
    int base_if_depth = 0;  ///< if_depth_ when the loop body began
    std::vector<std::int32_t> hoisted_sites;  ///< inits in this preheader
  };

  const ir::Program& p_;
  const ir::Env& params_;
  const Store& store_;
  CompiledProgram out_;
  std::map<std::string, std::int32_t> array_slot_;
  std::map<std::string, std::int32_t> scal_slot_;
  std::vector<LoopCtx> loops_;
  int if_depth_ = 0;

  std::int32_t ireg() { return out_.n_ireg++; }
  std::int32_t freg() { return out_.n_freg++; }

  std::int32_t scal_slot_ref(const std::string& name) {
    auto [it, fresh] = scal_slot_.emplace(
        name, static_cast<std::int32_t>(out_.scal_names.size()));
    if (fresh) out_.scal_names.push_back(name);
    return it->second;
  }

  void fail(Buf& b, std::string m) {
    out_.msgs.push_back(std::move(m));
    b.push_back({.op = Op::Fail,
                 .a = static_cast<std::int32_t>(out_.msgs.size() - 1)});
  }

  /// Splice `src` onto `dst`, rebasing every absolute jump target.
  static void splice(Buf& dst, Buf&& src) {
    const auto base = static_cast<std::int32_t>(dst.size());
    for (Insn& in : src) {
      if (in.op == Op::Jump || in.op == Op::LoopGuard ||
          in.op == Op::LoopEnd || in.op == Op::CondJump)
        in.a += base;
      dst.push_back(in);
    }
  }

  [[nodiscard]] const LoopCtx* find_loop_var(const std::string& name) const {
    for (auto it = loops_.rbegin(); it != loops_.rend(); ++it)
      if (it->var == name) return &*it;
    return nullptr;
  }

  /// Affine view of an index expression, or nullopt when it needs the
  /// general evaluator (MIN/MAX, division, ArrayElem, scalar fallback).
  [[nodiscard]] std::optional<Aff> affine_of(const IExpr& e) const {
    switch (e.kind) {
      case IKind::Const:
        return Aff{.c0 = e.value, .coef = {}};
      case IKind::Var: {
        // Loop bindings shadow parameters, as in the tree-walker's env.
        if (const LoopCtx* l = find_loop_var(e.name))
          return Aff{.c0 = 0, .coef = {{l->var, 1}}};
        if (auto it = params_.find(e.name); it != params_.end())
          return Aff{.c0 = it->second, .coef = {}};
        return std::nullopt;  // runtime scalar fallback
      }
      case IKind::Add:
      case IKind::Sub: {
        auto l = affine_of(*e.lhs);
        auto r = affine_of(*e.rhs);
        if (!l || !r) return std::nullopt;
        const long sign = e.kind == IKind::Add ? 1 : -1;
        l->c0 += sign * r->c0;
        for (const auto& [v, k] : r->coef) {
          long& c = l->coef[v];
          c += sign * k;
          if (c == 0) l->coef.erase(v);
        }
        return l;
      }
      case IKind::Mul: {
        auto l = affine_of(*e.lhs);
        auto r = affine_of(*e.rhs);
        if (!l || !r) return std::nullopt;
        if (!l->coef.empty() && !r->coef.empty()) return std::nullopt;
        if (!l->coef.empty()) std::swap(l, r);  // l is now the constant
        for (auto& [v, k] : r->coef) k *= l->c0;
        r->c0 *= l->c0;
        if (l->c0 == 0) r->coef.clear();
        return r;
      }
      default:
        return std::nullopt;
    }
  }

  [[nodiscard]] AffineForm lower_form(const Aff& a) const {
    AffineForm f{.c0 = a.c0, .terms = {}};
    for (const auto& [v, k] : a.coef) {
      const LoopCtx* l = find_loop_var(v);
      f.terms.emplace_back(l->var_reg, k);
    }
    return f;
  }

  // ---- Index expressions ----------------------------------------------------

  std::int32_t eval_i(const IExpr& e, Buf& b) {
    if (auto af = affine_of(e); af && af->coef.empty()) {
      std::int32_t r = ireg();
      b.push_back({.op = Op::IConst, .a = r, .imm = af->c0});
      return r;
    }
    switch (e.kind) {
      case IKind::Const: {
        std::int32_t r = ireg();
        b.push_back({.op = Op::IConst, .a = r, .imm = e.value});
        return r;
      }
      case IKind::Var: {
        if (const LoopCtx* l = find_loop_var(e.name)) return l->var_reg;
        // Parameters were folded above; what remains is an integer-valued
        // runtime scalar (IF-inspection counter, pivot row) or an error.
        if (auto it = scal_slot_.find(e.name); it != scal_slot_.end()) {
          std::int32_t r = ireg();
          b.push_back({.op = Op::ILoadScalar, .a = r, .b = it->second});
          return r;
        }
        fail(b, "VM: unbound index variable " + e.name);
        return ireg();
      }
      case IKind::Add:
      case IKind::Sub:
      case IKind::Mul:
      case IKind::Min:
      case IKind::Max: {
        const std::int32_t l = eval_i(*e.lhs, b);
        const std::int32_t r = eval_i(*e.rhs, b);
        const std::int32_t d = ireg();
        Op op = Op::IAdd;
        switch (e.kind) {
          case IKind::Add: op = Op::IAdd; break;
          case IKind::Sub: op = Op::ISub; break;
          case IKind::Mul: op = Op::IMul; break;
          case IKind::Min: op = Op::IMin; break;
          case IKind::Max: op = Op::IMax; break;
          default: break;
        }
        b.push_back({.op = op, .a = d, .b = l, .c = r});
        return d;
      }
      case IKind::FloorDiv:
      case IKind::CeilDiv: {
        const std::int32_t l = eval_i(*e.lhs, b);
        const std::int32_t r = eval_i(*e.rhs, b);
        const std::int32_t d = ireg();
        b.push_back({.op = Op::IDiv,
                     .aux = static_cast<std::uint8_t>(
                         e.kind == IKind::CeilDiv ? 1 : 0),
                     .a = d,
                     .b = l,
                     .c = r});
        return d;
      }
      case IKind::ArrayElem: {
        const std::int32_t idx = eval_i(*e.lhs, b);
        auto it = store_.arrays.find(e.name);
        if (it == store_.arrays.end()) {
          fail(b, "VM: undeclared array " + e.name);
          return ireg();
        }
        const Tensor& t = it->second;
        if (t.rank() != 1) {
          fail(b, "VM: rank-" + std::to_string(t.rank()) + " array " +
                      e.name + " used as index element");
          return ireg();
        }
        AccessSite site;
        site.array = array_slot_.at(e.name);
        site.name = e.name;
        site.dims.push_back({.idx_reg = idx,
                             .lb = t.lower(0),
                             .ub = t.upper(0),
                             .stride = 1,
                             .form = {},
                             .delta = 0});
        out_.sites.push_back(std::move(site));
        const std::int32_t r = ireg();
        b.push_back({.op = Op::ILoadElem,
                     .a = r,
                     .b = static_cast<std::int32_t>(out_.sites.size() - 1)});
        return r;
      }
    }
    throw Error("compile: corrupt IExpr");
  }

  // ---- Array accesses -------------------------------------------------------

  /// Compile one element access.  `io_freg` is the destination (load) or
  /// source (store) floating register.  `count_stmt` folds the enclosing
  /// assignment's statement count into the store dispatch (aux bit 1).
  void access(const std::string& name, const std::vector<IExprPtr>& subs,
              bool is_store, std::int32_t io_freg, Buf& b,
              bool count_stmt = false) {
    auto it = store_.arrays.find(name);
    const bool rank_ok =
        it != store_.arrays.end() && subs.size() == it->second.rank();
    if (!rank_ok) {
      // Match the tree-walker's event order: subscripts evaluate (tracing
      // any ArrayElem reads) before the lookup/offset error fires.
      for (const auto& sub : subs) (void)eval_i(*sub, b);
      fail(b, it == store_.arrays.end()
                  ? "VM: undeclared array " + name
                  : "VM: subscript rank mismatch on " + name);
      return;
    }
    const Tensor& t = it->second;

    std::vector<Aff> forms;
    forms.reserve(subs.size());
    bool affine = true;
    for (const auto& sub : subs) {
      auto af = affine_of(*sub);
      if (!af) {
        affine = false;
        break;
      }
      forms.push_back(std::move(*af));
    }

    AccessSite site;
    site.array = array_slot_.at(name);
    site.name = name;
    site.affine = affine;
    std::uint8_t aux = 0;

    if (affine) {
      site.flat_reg = ireg();
      site.flat_form.c0 = 0;
      Aff flat;
      for (std::size_t d = 0; d < subs.size(); ++d) {
        const long stride = static_cast<long>(t.stride(d));
        site.dims.push_back({.idx_reg = ireg(),
                             .lb = t.lower(d),
                             .ub = t.upper(d),
                             .stride = stride,
                             .form = lower_form(forms[d]),
                             .delta = 0});
        flat.c0 += (forms[d].c0 - t.lower(d)) * stride;
        for (const auto& [v, k] : forms[d].coef) flat.coef[v] += k * stride;
      }
      site.flat_form = lower_form(flat);

      // Strength reduction: initialize in the innermost enclosing loop's
      // preheader and advance by constant deltas at its back-edge.  With
      // no enclosing loop — or a loop whose step is not a compile-time
      // constant — recompute inline just before the access instead.
      const bool hoist = !loops_.empty() && loops_.back().step_const;
      if (hoist) {
        const LoopCtx& g = loops_.back();
        for (std::size_t d = 0; d < site.dims.size(); ++d)
          site.dims[d].delta = forms[d].coef_of(g.var) * g.step_val;
        site.flat_delta = flat.coef_of(g.var) * g.step_val;
        // A site the loop executes unconditionally walks a line whose
        // endpoints AffineInit can validate once at loop entry; per-access
        // checks are then dead weight.  Sites under an IF keep them: the
        // guard may be exactly what makes an out-of-range index unreachable.
        site.range_checked = if_depth_ == g.base_if_depth;
      }
      aux = site.range_checked ? 0 : 1;
      if (count_stmt) aux |= 2;
      out_.sites.push_back(std::move(site));
      const auto idx = static_cast<std::int32_t>(out_.sites.size() - 1);
      if (hoist)
        loops_.back().hoisted_sites.push_back(idx);
      else
        b.push_back({.op = Op::AffineInit, .a = idx});
      b.push_back({.op = is_store ? Op::FStoreArr : Op::FLoadArr,
                   .aux = aux,
                   .a = io_freg,
                   .b = idx});
      return;
    }

    // General path: evaluate subscripts left-to-right (the tree-walker's
    // eval_subs order matters — they may contain traced ArrayElem reads),
    // then bounds-check and flatten in one DynOffset.
    site.flat_reg = ireg();
    for (std::size_t d = 0; d < subs.size(); ++d)
      site.dims.push_back({.idx_reg = eval_i(*subs[d], b),
                           .lb = t.lower(d),
                           .ub = t.upper(d),
                           .stride = static_cast<long>(t.stride(d)),
                           .form = {},
                           .delta = 0});
    out_.sites.push_back(std::move(site));
    const auto idx = static_cast<std::int32_t>(out_.sites.size() - 1);
    b.push_back({.op = Op::DynOffset, .a = idx});
    b.push_back({.op = is_store ? Op::FStoreArr : Op::FLoadArr,
                 .aux = static_cast<std::uint8_t>(count_stmt ? 2 : 0),
                 .a = io_freg,
                 .b = idx});
  }

  // ---- Value expressions ----------------------------------------------------

  std::int32_t eval_f(const VExpr& e, Buf& b) {
    switch (e.kind) {
      case VKind::Const: {
        const std::int32_t r = freg();
        b.push_back({.op = Op::FConst, .a = r, .fimm = e.cval});
        return r;
      }
      case VKind::ScalarRef: {
        if (auto it = scal_slot_.find(e.name); it != scal_slot_.end()) {
          const std::int32_t r = freg();
          b.push_back({.op = Op::FLoadScalar, .a = r, .b = it->second});
          return r;
        }
        fail(b, "VM: undeclared scalar " + e.name);
        return freg();
      }
      case VKind::IndexVal: {
        const std::int32_t i = eval_i(*e.index, b);
        const std::int32_t r = freg();
        b.push_back({.op = Op::FFromInt, .a = r, .b = i});
        return r;
      }
      case VKind::ArrayRef: {
        const std::int32_t r = freg();
        access(e.name, e.subs, /*is_store=*/false, r, b);
        return r;
      }
      case VKind::Bin: {
        const std::int32_t l = eval_f(*e.lhs, b);
        const std::int32_t r = eval_f(*e.rhs, b);
        const std::int32_t d = freg();
        b.push_back({.op = Op::FBin,
                     .aux = static_cast<std::uint8_t>(e.bop),
                     .a = d,
                     .b = l,
                     .c = r});
        return d;
      }
      case VKind::Un: {
        const std::int32_t l = eval_f(*e.lhs, b);
        const std::int32_t d = freg();
        b.push_back({.op = Op::FUn,
                     .aux = static_cast<std::uint8_t>(e.uop),
                     .a = d,
                     .b = l});
        return d;
      }
    }
    throw Error("compile: corrupt VExpr");
  }

  // ---- Statements -----------------------------------------------------------

  void compile_list(const StmtList& l, Buf& b) {
    for (const auto& s : l) compile_stmt(*s, b);
  }

  void compile_stmt(const Stmt& s, Buf& b) {
    switch (s.kind()) {
      case SKind::Assign: {
        // The statement count rides on the store dispatch (aux bit) rather
        // than a separate CountStmt: an assignment always reaches exactly
        // one store unless it throws, and counts are only observable on
        // successful runs.
        const Assign& a = s.as_assign();
        const std::int32_t v = eval_f(*a.rhs, b);
        if (a.lhs.is_array()) {
          access(a.lhs.name, a.lhs.subs, /*is_store=*/true, v, b,
                 /*count_stmt=*/true);
        } else {
          b.push_back({.op = Op::FStoreScalar,
                       .aux = 1,
                       .a = scal_slot_ref(a.lhs.name),
                       .b = v});
        }
        return;
      }
      case SKind::Loop: {
        compile_loop(s.as_loop(), b);
        return;
      }
      case SKind::If: {
        const If& f = s.as_if();
        b.push_back({.op = Op::CountStmt});
        const std::int32_t l = eval_f(*f.cond.lhs, b);
        const std::int32_t r = eval_f(*f.cond.rhs, b);
        const auto cj = static_cast<std::int32_t>(b.size());
        b.push_back({.op = Op::CondJump,
                     .aux = static_cast<std::uint8_t>(f.cond.op),
                     .b = l,
                     .c = r});
        ++if_depth_;
        compile_list(f.then_body, b);
        if (f.else_body.empty()) {
          b[static_cast<std::size_t>(cj)].a =
              static_cast<std::int32_t>(b.size());
        } else {
          const auto j = static_cast<std::int32_t>(b.size());
          b.push_back({.op = Op::Jump});
          b[static_cast<std::size_t>(cj)].a =
              static_cast<std::int32_t>(b.size());
          compile_list(f.else_body, b);
          b[static_cast<std::size_t>(j)].a =
              static_cast<std::int32_t>(b.size());
        }
        --if_depth_;
        return;
      }
    }
  }

  void compile_loop(const ir::Loop& l, Buf& b) {
    // Bounds and step evaluate once per loop entry, in the tree-walker's
    // order (they may contain traced ArrayElem reads).
    const std::int32_t lb = eval_i(*l.lb, b);
    const std::int32_t ub = eval_i(*l.ub, b);
    bool step_const = false;
    long step_val = 0;
    std::int32_t step_reg = -1;
    if (auto af = affine_of(*l.step); af && af->coef.empty()) {
      step_const = true;
      step_val = af->c0;
    } else {
      step_reg = eval_i(*l.step, b);
    }
    if (step_const && step_val == 0) {
      fail(b, "VM: zero loop step in " + l.var);
      return;
    }

    const std::int32_t var = ireg();
    b.push_back({.op = Op::IMove, .a = var, .b = lb});

    loops_.push_back({.var = l.var,
                      .var_reg = var,
                      .step_const = step_const,
                      .step_val = step_val,
                      .base_if_depth = if_depth_,
                      .hoisted_sites = {}});
    Buf body;
    compile_list(l.body, body);
    LoopCtx ctx = std::move(loops_.back());
    loops_.pop_back();

    for (std::int32_t si : ctx.hoisted_sites) {
      const AccessSite& s = out_.sites[static_cast<std::size_t>(si)];
      // Range-checked sites validate the whole iteration space once here
      // (var reg still holds lb); trips come from (lb, ub, const step).
      b.push_back({.op = Op::AffineInit,
                   .aux = static_cast<std::uint8_t>(s.range_checked ? 1 : 0),
                   .a = si,
                   .b = var,
                   .c = ub,
                   .imm = step_val});
    }

    // Rotated loop: the entry guard runs once; the back-edge is a single
    // bottom test (LoopEnd) after the fused register advance.
    const auto guard = static_cast<std::int32_t>(b.size());
    const auto sign_aux =
        static_cast<std::uint8_t>(step_const ? (step_val > 0 ? 1 : 2) : 0);
    b.push_back({.op = Op::LoopGuard,
                 .aux = sign_aux,
                 .b = var,
                 .c = ub,
                 .imm = step_reg});
    const auto body_start = static_cast<std::int32_t>(b.size());
    splice(b, std::move(body));
    // All sites advance together in one fused dispatch, the loop variable
    // among them.  Range-checked sites' per-dim registers are dead after
    // AffineInit (nothing reads them), so only their flat offsets move.
    StepGroup grp;
    if (step_const) grp.updates.emplace_back(var, step_val);
    for (std::int32_t si : ctx.hoisted_sites) {
      const AccessSite& s = out_.sites[static_cast<std::size_t>(si)];
      if (!s.range_checked)
        for (const auto& d : s.dims)
          if (d.delta != 0) grp.updates.emplace_back(d.idx_reg, d.delta);
      if (s.flat_delta != 0)
        grp.updates.emplace_back(s.flat_reg, s.flat_delta);
    }
    if (!step_const)
      b.push_back({.op = Op::IAdd, .a = var, .b = var, .c = step_reg});
    if (!grp.updates.empty()) {
      out_.step_groups.push_back(std::move(grp));
      b.push_back({.op = Op::AffineStep,
                   .a = static_cast<std::int32_t>(out_.step_groups.size() -
                                                  1)});
    }
    b.push_back({.op = Op::LoopEnd,
                 .aux = sign_aux,
                 .a = body_start,
                 .b = var,
                 .c = ub,
                 .imm = step_reg});
    b[static_cast<std::size_t>(guard)].a = static_cast<std::int32_t>(b.size());
  }
};

[[nodiscard]] const char* op_name(Op op) {
  switch (op) {
    case Op::IConst: return "iconst";
    case Op::IMove: return "imove";
    case Op::IAdd: return "iadd";
    case Op::ISub: return "isub";
    case Op::IMul: return "imul";
    case Op::IMin: return "imin";
    case Op::IMax: return "imax";
    case Op::IAddImm: return "iaddimm";
    case Op::IDiv: return "idiv";
    case Op::ILoadScalar: return "ildscal";
    case Op::ILoadElem: return "ildelem";
    case Op::AffineInit: return "affinit";
    case Op::AffineStep: return "affstep";
    case Op::DynOffset: return "dynoff";
    case Op::FConst: return "fconst";
    case Op::FLoadScalar: return "fldscal";
    case Op::FStoreScalar: return "fstscal";
    case Op::FLoadArr: return "fldarr";
    case Op::FStoreArr: return "fstarr";
    case Op::FBin: return "fbin";
    case Op::FUn: return "fun";
    case Op::FFromInt: return "ffromint";
    case Op::Jump: return "jump";
    case Op::LoopGuard: return "guard";
    case Op::LoopEnd: return "loopend";
    case Op::CondJump: return "condjump";
    case Op::CountStmt: return "count";
    case Op::Fail: return "fail";
    case Op::Halt: return "halt";
  }
  return "?";
}

}  // namespace

std::string CompiledProgram::disassemble() const {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Insn& in = code[pc];
    os << pc << ": " << op_name(in.op) << " a=" << in.a << " b=" << in.b
       << " c=" << in.c << " aux=" << static_cast<int>(in.aux)
       << " imm=" << in.imm;
    if (in.op == Op::FConst) os << " fimm=" << in.fimm;
    if ((in.op == Op::FLoadArr || in.op == Op::FStoreArr ||
         in.op == Op::ILoadElem) &&
        static_cast<std::size_t>(in.b) < sites.size())
      os << " (" << sites[static_cast<std::size_t>(in.b)].name << ")";
    os << "\n";
  }
  return os.str();
}

CompiledProgram compile(const ir::Program& p, const ir::Env& params,
                        const Store& store) {
  return Compiler(p, params, store).run();
}

}  // namespace blk::interp
