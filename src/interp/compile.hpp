// Bytecode for the compiled IR oracle (src/interp/vm.*).
//
// compile() lowers one (Program, parameter binding) pair to a flat
// register program.  Everything the tree-walking interpreter resolves per
// element access is resolved here once:
//
//  - array and scalar names become slot indices (no string map lookups),
//  - symbolic parameters are folded to constants (extents, strides and
//    base addresses of every array are concrete at compile time),
//  - affine subscripts are strength-reduced: each access site keeps its
//    per-dimension indices and column-major flat offset in dedicated
//    integer registers, initialized in the preheader of the innermost
//    enclosing loop and advanced by constant deltas at its back-edge,
//  - loop bounds are evaluated once per loop entry (hoisted out of the
//    iteration), and
//  - MIN/MAX bounds, floor/ceiling division, runtime ArrayElem subscripts
//    (KLB(KN)-style) and integer-valued scalar fallbacks keep a general
//    evaluation path that mirrors the tree-walker exactly.
//
// The compiler is deliberately per-instance: a different N recompiles.
// Compilation is linear in program size (microseconds) while a run is
// O(N^3) statements, so this is the right trade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/interp.hpp"
#include "ir/program.hpp"

namespace blk::interp {

enum class Op : std::uint8_t {
  // Integer (index) register ops; `a` is the destination register.
  IConst,       ///< ireg[a] = imm
  IMove,        ///< ireg[a] = ireg[b]
  IAdd,         ///< ireg[a] = ireg[b] + ireg[c]
  ISub,         ///< ireg[a] = ireg[b] - ireg[c]
  IMul,         ///< ireg[a] = ireg[b] * ireg[c]
  IMin,         ///< ireg[a] = min(ireg[b], ireg[c])
  IMax,         ///< ireg[a] = max(ireg[b], ireg[c])
  IAddImm,      ///< ireg[a] = ireg[b] + imm
  IDiv,         ///< ireg[a] = floor/ceil(ireg[b] / ireg[c]); aux 0=floor 1=ceil
  ILoadScalar,  ///< ireg[a] = (long)scal[b]  (runtime scalar used as index)
  ILoadElem,    ///< ireg[a] = (long)load at rank-1 site b (traced read)

  // Access-site bookkeeping (side table CompiledProgram::sites).
  AffineInit,   ///< site a: recompute idx/flat registers from affine forms;
                ///< aux 1: also validate the whole iteration range (b=var
                ///< reg holding lb, c=ub reg, imm=const step), licensing
                ///< check-free accesses inside the loop
  AffineStep,   ///< step group a: advance registers by constant deltas
  DynOffset,    ///< site a: bounds-check idx registers, compute flat register

  // Floating ops; `a` is the destination register.
  FConst,       ///< freg[a] = fimm
  FLoadScalar,  ///< freg[a] = scal[b]
  FStoreScalar, ///< scal[a] = freg[b]; aux 1: count enclosing assignment
  FLoadArr,     ///< freg[a] = element at site b (aux bit 0: check dims)
  FStoreArr,    ///< element at site b = freg[a] (aux bit 0: check dims,
                ///< bit 1: count enclosing assignment)
  FBin,         ///< freg[a] = freg[b] op freg[c]; aux = ir::BinOp
  FUn,          ///< freg[a] = op freg[b]; aux = ir::UnOp
  FFromInt,     ///< freg[a] = (double)ireg[b]

  // Control.
  Jump,         ///< pc = a
  LoopGuard,    ///< exit to a when done; b=var reg, c=ub reg;
                ///< aux 1: step>0, 2: step<0, 0: runtime step in ireg[imm]
  LoopEnd,      ///< rotated back-edge: continue to a unless done (same
                ///< operands as LoopGuard; the increment already happened
                ///< via the fused step group or an IAdd)
  CondJump,     ///< if !(freg[b] cmp freg[c]) pc = a; aux = ir::CmpOp
  CountStmt,    ///< ++statements_executed
  Fail,         ///< throw Error(msgs[a]) — runtime-only error sites
  Halt,
};

/// One fixed-width instruction.  Operand meaning is per-op (above).
struct Insn {
  Op op;
  std::uint8_t aux = 0;
  std::int32_t a = 0, b = 0, c = 0;
  long imm = 0;
  double fimm = 0.0;
};

/// c0 + sum(coef * ireg) over loop-variable registers.
struct AffineForm {
  long c0 = 0;
  std::vector<std::pair<std::int32_t, long>> terms;  ///< (ireg, coef)
};

/// One array access site (an ArrayRef / LValue / ArrayElem occurrence).
struct AccessSite {
  struct Dim {
    std::int32_t idx_reg = -1;  ///< register holding this subscript's value
    long lb = 0, ub = 0;        ///< concrete declared bounds
    long stride = 0;            ///< column-major stride in elements
    AffineForm form;            ///< affine path only
    long delta = 0;             ///< per-iteration advance (affine path)
  };

  std::int32_t array = -1;     ///< array slot
  std::int32_t flat_reg = -1;  ///< register holding the flat element offset
  std::vector<Dim> dims;
  AffineForm flat_form;        ///< affine path: flat offset as one form
  long flat_delta = 0;
  bool affine = false;
  bool range_checked = false;  ///< bounds proven for the whole loop at
                               ///< AffineInit; accesses skip per-dim checks
  std::string name;            ///< array name, for error messages
};

/// Register increments applied together at one loop back-edge (all the
/// strength-reduced sites of that loop fused into a single dispatch).
struct StepGroup {
  std::vector<std::pair<std::int32_t, long>> updates;  ///< (ireg, delta)
};

/// A fully lowered program plus its side tables.
struct CompiledProgram {
  std::vector<Insn> code;
  std::vector<AccessSite> sites;
  std::vector<StepGroup> step_groups;    ///< AffineStep side table
  std::vector<std::string> msgs;         ///< Fail payloads
  std::int32_t n_ireg = 0;
  std::int32_t n_freg = 0;
  std::vector<std::string> scal_names;   ///< scalar slot -> name
  std::vector<std::string> array_names;  ///< array slot -> name

  /// Human-readable disassembly (debugging aid for divergence reports).
  [[nodiscard]] std::string disassemble() const;
};

/// Lower `p` under concrete `params`.  `store` supplies the concrete array
/// geometry (as built by make_store) the bytecode hard-codes.
[[nodiscard]] CompiledProgram compile(const ir::Program& p,
                                      const ir::Env& params,
                                      const Store& store);

}  // namespace blk::interp
