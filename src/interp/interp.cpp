#include "interp/interp.hpp"

#include <array>
#include <cmath>
#include <random>

#include "ir/error.hpp"

namespace blk::interp {

using namespace blk::ir;

Tensor::Tensor(std::vector<long> lower, std::vector<long> upper,
               std::uint64_t base_addr)
    : lower_(std::move(lower)), upper_(std::move(upper)),
      base_addr_(base_addr) {
  if (lower_.size() != upper_.size())
    throw Error("Tensor: rank mismatch between bounds");
  std::size_t total = 1;
  stride_.resize(lower_.size());
  for (std::size_t d = 0; d < lower_.size(); ++d) {
    if (upper_[d] < lower_[d])
      throw Error("Tensor: empty dimension " + std::to_string(d));
    stride_[d] = total;
    total *= static_cast<std::size_t>(upper_[d] - lower_[d] + 1);
  }
  data_.assign(total, 0.0);
}

std::size_t Tensor::offset(std::span<const long> idx) const {
  if (idx.size() != lower_.size())
    throw Error("Tensor: subscript rank mismatch");
  std::size_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    if (idx[d] < lower_[d] || idx[d] > upper_[d])
      throw Error("Tensor: index " + std::to_string(idx[d]) +
                  " out of bounds [" + std::to_string(lower_[d]) + "," +
                  std::to_string(upper_[d]) + "] in dimension " +
                  std::to_string(d));
    flat += static_cast<std::size_t>(idx[d] - lower_[d]) * stride_[d];
  }
  return flat;
}

Store make_store(const ir::Program& program, const ir::Env& params) {
  Store store;
  // Allocate arrays at distinct synthetic addresses, 64-byte aligned, with a
  // guard gap so distinct arrays never share a cache line.
  std::uint64_t next_base = 1 << 20;
  for (const auto& [name, decl] : program.arrays()) {
    std::vector<long> lb, ub;
    lb.reserve(decl.dims.size());
    ub.reserve(decl.dims.size());
    for (const auto& d : decl.dims) {
      lb.push_back(evaluate(d.lb, params));
      ub.push_back(evaluate(d.ub, params));
    }
    Tensor t(std::move(lb), std::move(ub), next_base);
    next_base += (t.size() * sizeof(double) + 4095) / 4096 * 4096 + 4096;
    store.arrays.emplace(name, std::move(t));
  }
  for (const auto& s : program.scalars()) store.scalars[s] = 0.0;
  return store;
}

void seed_store(Store& store, std::uint64_t seed) {
  for (auto& [name, t] : store.arrays) {
    // Per-array stream derived from the name, so semantically equivalent
    // programs with extra compiler temporaries seed shared arrays alike.
    std::uint64_t k = seed;
    for (char ch : name)
      k = k * 1099511628211ULL + static_cast<unsigned char>(ch);
    fill_random(t, k);
  }
}

Interpreter::Interpreter(const ir::Program& program, ir::Env params)
    : program_(program), params_(std::move(params)) {
  store_ = make_store(program_, params_);
}

void Interpreter::run(const TraceFn& trace) {
  loop_env_ = params_;
  trace_ = trace ? &trace : nullptr;
  stmts_ = 0;
  exec_list(program_.body);
}

void Interpreter::exec_list(const ir::StmtList& body) {
  for (const auto& s : body) exec(*s);
}

void Interpreter::exec(const ir::Stmt& s) {
  switch (s.kind()) {
    case SKind::Assign: {
      const Assign& a = s.as_assign();
      ++stmts_;
      double v = eval(*a.rhs);
      if (a.lhs.is_array()) {
        std::vector<long> idx = eval_subs(a.lhs.subs);
        store_element(a.lhs.name, idx, v);
      } else {
        store_.scalars[a.lhs.name] = v;
      }
      return;
    }
    case SKind::Loop: {
      const Loop& l = s.as_loop();
      long lb = ieval(l.lb);
      long ub = ieval(l.ub);
      long step = ieval(l.step);
      if (step == 0) throw Error("Interpreter: zero loop step in " + l.var);
      // Loop variables may be reused sequentially (after distribution both
      // halves keep the same name); save and restore any outer binding.
      long saved = 0;
      bool had = false;
      if (auto it = loop_env_.find(l.var); it != loop_env_.end()) {
        saved = it->second;
        had = true;
      }
      if (step > 0)
        for (long i = lb; i <= ub; i += step) {
          loop_env_[l.var] = i;
          exec_list(l.body);
        }
      else
        for (long i = lb; i >= ub; i += step) {
          loop_env_[l.var] = i;
          exec_list(l.body);
        }
      if (had)
        loop_env_[l.var] = saved;
      else
        loop_env_.erase(l.var);
      return;
    }
    case SKind::If: {
      const If& f = s.as_if();
      ++stmts_;
      if (eval_cond(f.cond))
        exec_list(f.then_body);
      else
        exec_list(f.else_body);
      return;
    }
  }
}

std::vector<long> Interpreter::eval_subs(
    const std::vector<ir::IExprPtr>& subs) {
  std::vector<long> idx;
  idx.reserve(subs.size());
  for (const auto& e : subs) idx.push_back(ieval(e));
  return idx;
}

double Interpreter::load(const std::string& name, std::span<const long> idx) {
  auto it = store_.arrays.find(name);
  if (it == store_.arrays.end())
    throw Error("Interpreter: undeclared array " + name);
  Tensor& t = it->second;
  std::size_t flat = t.offset(idx);
  if (trace_) (*trace_)(t.address(flat), /*is_write=*/false);
  return t.flat()[flat];
}

void Interpreter::store_element(const std::string& name,
                                std::span<const long> idx, double v) {
  auto it = store_.arrays.find(name);
  if (it == store_.arrays.end())
    throw Error("Interpreter: undeclared array " + name);
  Tensor& t = it->second;
  std::size_t flat = t.offset(idx);
  if (trace_) (*trace_)(t.address(flat), /*is_write=*/true);
  t.flat()[flat] = v;
}

long Interpreter::ieval(const ir::IExpr& e) {
  switch (e.kind) {
    case IKind::Const:
      return e.value;
    case IKind::Var: {
      if (auto it = loop_env_.find(e.name); it != loop_env_.end())
        return it->second;
      // Integer-valued runtime scalar (IF-inspection counter, pivot row).
      if (auto it = store_.scalars.find(e.name); it != store_.scalars.end())
        return static_cast<long>(it->second);
      throw Error("Interpreter: unbound index variable " + e.name);
    }
    case IKind::Add:
      return ieval(*e.lhs) + ieval(*e.rhs);
    case IKind::Sub:
      return ieval(*e.lhs) - ieval(*e.rhs);
    case IKind::Mul:
      return ieval(*e.lhs) * ieval(*e.rhs);
    case IKind::Min:
      return std::min(ieval(*e.lhs), ieval(*e.rhs));
    case IKind::Max:
      return std::max(ieval(*e.lhs), ieval(*e.rhs));
    case IKind::FloorDiv:
    case IKind::CeilDiv: {
      long a = ieval(*e.lhs);
      long d = ieval(*e.rhs);
      if (d <= 0) throw Error("Interpreter: division by non-positive value");
      long q = a / d;
      long r = a % d;
      if (e.kind == IKind::FloorDiv) return (r != 0 && a < 0) ? q - 1 : q;
      return (r != 0 && a > 0) ? q + 1 : q;
    }
    case IKind::ArrayElem: {
      long ix = ieval(*e.lhs);
      std::array<long, 1> idx{ix};
      return static_cast<long>(load(e.name, idx));
    }
  }
  throw Error("Interpreter: corrupt IExpr");
}

double Interpreter::eval(const ir::VExpr& e) {
  switch (e.kind) {
    case VKind::Const:
      return e.cval;
    case VKind::ScalarRef: {
      auto it = store_.scalars.find(e.name);
      if (it == store_.scalars.end())
        throw Error("Interpreter: undeclared scalar " + e.name);
      return it->second;
    }
    case VKind::IndexVal:
      return static_cast<double>(ieval(e.index));
    case VKind::ArrayRef: {
      std::vector<long> idx = eval_subs(e.subs);
      return load(e.name, idx);
    }
    case VKind::Bin: {
      double l = eval(*e.lhs);
      double r = eval(*e.rhs);
      switch (e.bop) {
        case BinOp::Add: return l + r;
        case BinOp::Sub: return l - r;
        case BinOp::Mul: return l * r;
        case BinOp::Div: return l / r;
      }
      break;
    }
    case VKind::Un: {
      double l = eval(*e.lhs);
      switch (e.uop) {
        case UnOp::Neg: return -l;
        case UnOp::Sqrt: return std::sqrt(l);
        case UnOp::Abs: return std::fabs(l);
      }
      break;
    }
  }
  throw Error("Interpreter: corrupt VExpr");
}

bool Interpreter::eval_cond(const ir::Cond& c) {
  double l = eval(*c.lhs);
  double r = eval(*c.rhs);
  switch (c.op) {
    case CmpOp::EQ: return l == r;
    case CmpOp::NE: return l != r;
    case CmpOp::LT: return l < r;
    case CmpOp::LE: return l <= r;
    case CmpOp::GT: return l > r;
    case CmpOp::GE: return l >= r;
  }
  throw Error("Interpreter: corrupt Cond");
}

void fill_random(Tensor& t, std::uint64_t seed, double lo, double hi) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : t.flat()) x = dist(rng);
}

double max_abs_diff(const Store& a, const Store& b) {
  double m = 0.0;
  for (const auto& [name, ta] : a.arrays) {
    auto it = b.arrays.find(name);
    if (it == b.arrays.end())
      throw Error("max_abs_diff: array " + name + " missing in rhs store");
    const Tensor& tb = it->second;
    if (ta.size() != tb.size())
      throw Error("max_abs_diff: size mismatch for " + name);
    auto fa = ta.flat();
    auto fb = tb.flat();
    for (std::size_t i = 0; i < fa.size(); ++i)
      m = std::max(m, std::fabs(fa[i] - fb[i]));
  }
  return m;
}

}  // namespace blk::interp
