// IR interpreter.
//
// Executes any blk::ir::Program against dense double-precision storage.  It
// is the library's correctness oracle: a transformation is validated by
// running the original and transformed programs on identical random inputs
// and comparing every array element.  An optional trace callback receives
// each array access as a synthetic byte address, which feeds the cache
// simulator (src/cachesim) to measure memory behaviour machine-independently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace blk::interp {

/// Dense Fortran-layout (column-major) array with per-dimension lower bounds.
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::vector<long> lower, std::vector<long> upper,
         std::uint64_t base_addr);

  [[nodiscard]] std::size_t rank() const { return lower_.size(); }
  [[nodiscard]] long lower(std::size_t d) const { return lower_[d]; }
  [[nodiscard]] long upper(std::size_t d) const { return upper_[d]; }
  [[nodiscard]] std::size_t stride(std::size_t d) const { return stride_[d]; }
  [[nodiscard]] std::uint64_t base_addr() const { return base_addr_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Column-major flat offset of a (bounds-checked) index tuple.
  [[nodiscard]] std::size_t offset(std::span<const long> idx) const;

  [[nodiscard]] double& at(std::span<const long> idx) {
    return data_[offset(idx)];
  }
  [[nodiscard]] double at(std::span<const long> idx) const {
    return data_[offset(idx)];
  }

  /// Synthetic byte address of an element (for cache tracing).
  [[nodiscard]] std::uint64_t address(std::size_t flat) const {
    return base_addr_ + flat * sizeof(double);
  }

  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

 private:
  std::vector<long> lower_;
  std::vector<long> upper_;
  std::vector<std::size_t> stride_;
  std::vector<double> data_;
  std::uint64_t base_addr_ = 0;
};

/// All live variables during a run.
struct Store {
  std::map<std::string, Tensor> arrays;
  std::map<std::string, double> scalars;
};

/// Trace callback: one event per array-element access.
using TraceFn = std::function<void(std::uint64_t addr, bool is_write)>;

/// Allocate the Store for a program instance: one Tensor per declared
/// array (evaluated under `params`, each at a distinct 64-byte-aligned
/// synthetic base address with a guard gap) plus zeroed declared scalars.
/// Both execution engines build their state through this, so their
/// synthetic address maps — and therefore their traces — agree exactly.
[[nodiscard]] Store make_store(const ir::Program& program,
                               const ir::Env& params);

/// Seed every array with the deterministic per-name stream derived from
/// `seed` (so equivalent programs with extra compiler temporaries still
/// seed the shared arrays identically).
void seed_store(Store& store, std::uint64_t seed);

/// Interpreter for one program instance.
///
/// Lifecycle: construct with the program and concrete parameter values;
/// arrays are allocated from the declarations (each array placed at a
/// distinct 64-byte-aligned synthetic base address); fill inputs through
/// `store()`; then `run()`.
class Interpreter {
 public:
  Interpreter(const ir::Program& program, ir::Env params);

  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] const Store& store() const { return store_; }
  [[nodiscard]] const ir::Env& params() const { return params_; }

  /// Execute the program body.  Throws blk::Error on out-of-bounds
  /// accesses, unbound variables, or non-terminating loop steps.
  void run(const TraceFn& trace = nullptr);

  /// Total number of statement executions in the last run (a cheap
  /// operation-count proxy used by tests).
  [[nodiscard]] std::uint64_t statements_executed() const { return stmts_; }

 private:
  const ir::Program& program_;
  ir::Env params_;
  Store store_;
  ir::Env loop_env_;  ///< params + live loop variables
  const TraceFn* trace_ = nullptr;
  std::uint64_t stmts_ = 0;

  void exec_list(const ir::StmtList& body);
  void exec(const ir::Stmt& s);
  /// Index-expression evaluation with runtime extensions: variables not
  /// bound by a loop or parameter fall back to integer-valued scalars
  /// (IF-inspection counters, pivot indices), and ArrayElem nodes read the
  /// live store (KLB(KN)-style bounds).
  [[nodiscard]] long ieval(const ir::IExpr& e);
  [[nodiscard]] long ieval(const ir::IExprPtr& e) { return ieval(*e); }
  [[nodiscard]] double eval(const ir::VExpr& e);
  [[nodiscard]] bool eval_cond(const ir::Cond& c);
  [[nodiscard]] double load(const std::string& name,
                            std::span<const long> idx);
  void store_element(const std::string& name, std::span<const long> idx,
                     double v);
  [[nodiscard]] std::vector<long> eval_subs(
      const std::vector<ir::IExprPtr>& subs);
};

// ---- Test / benchmark conveniences ------------------------------------------

/// Fill a tensor with deterministic pseudo-random values in [lo, hi).
void fill_random(Tensor& t, std::uint64_t seed, double lo = -1.0,
                 double hi = 1.0);

/// Max |a-b| over all arrays common to both stores; throws if shapes differ.
[[nodiscard]] double max_abs_diff(const Store& a, const Store& b);

/// Which execution engine backs an ExecEngine instance (facade in vm.hpp).
enum class Engine : std::uint8_t {
  TreeWalker,  ///< reference semantics (src/interp/interp.*)
  Vm,          ///< compiled bytecode (default)
  Native,      ///< JIT through the C backend (src/native/)
  Tiered,      ///< adaptive: profiling VM -> guarded specialized native
               ///< (src/interp/tiered.*)
};

/// Run `p` under `params` with inputs seeded by `seed`; returns the store.
/// Executes on the bytecode VM by default (`engine` picks another; the
/// native engine falls back to the VM when no toolchain exists); the
/// tree-walker remains the reference semantics everything is
/// differentially tested against.
[[nodiscard]] Store run_seeded(const ir::Program& p, const ir::Env& params,
                               std::uint64_t seed,
                               Engine engine = Engine::Vm);

}  // namespace blk::interp
