#include "interp/tiered.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "interp/vm.hpp"
#include "ir/error.hpp"
#include "ir/printer.hpp"
#include "native/engine.hpp"
#include "spec/assumptions.hpp"
#include "spec/specialize.hpp"

namespace blk::interp {

namespace {

constexpr std::size_t kMaxRecordedDeopts = 256;

std::string hex16_of(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string binding_text(const ir::Env& env) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : env) {
    if (!first) os << ',';
    first = false;
    os << k << '=' << v;
  }
  return os.str();
}

long env_long(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return end == s ? fallback : v;
}

struct DeoptEvent {
  std::string kernel;   ///< kernel hash (16 hex of the printed program)
  std::string binding;  ///< canonical "KS=5,N=24" text
  long guard = 0;       ///< 1-based failing-guard index
  std::string desc;     ///< GuardOptions::describe(guard)
  std::string action;   ///< fallback taken: "generic" or "vm"
  std::uint64_t invocation = 0;  ///< the pair's invocation count at deopt
};

/// Profiling state of one (kernel-hash, binding-shape) pair.
struct PairState {
  std::mutex mu;
  std::uint64_t invocations = 0;
  std::uint64_t trips = 0;  ///< VM statements executed while cold
  bool spec_requested = false;  ///< this pair's specialization job launched
};

/// One guarded specialized variant of a kernel.  Variants are shared by
/// every binding of the kernel: a binding that violates a variant's
/// guards simply fails its entry check and falls through — that is the
/// deopt path.  `consecutive_fails` is global to the variant on purpose:
/// a variant that keeps bouncing incoming bindings has gone stale (the
/// hot shape changed) and is retired, exactly like deopt-storm code
/// invalidation in a method JIT.
struct Variant {
  std::shared_ptr<native::Kernel> kernel;
  ir::GuardOptions guards;
  std::string hash;  ///< assumption-set hash (dedupe key)
  bool demoted = false;
  int consecutive_fails = 0;
};

/// Native artifacts of one kernel, shared across bindings: the generic
/// kernel (parameters symbolic) plus every specialized variant built so
/// far.  A freshly-hot binding of an already-promoted kernel runs
/// natively at once and only pays one more compile for its own variant.
struct KernelArtifacts {
  std::mutex mu;
  enum class Phase : int { Cold, Compiling, Ready, Failed } phase =
      Phase::Cold;
  std::shared_ptr<native::Kernel> generic;
  std::vector<Variant> variants;
  std::vector<std::thread> workers;

  ~KernelArtifacts() {
    for (auto& w : workers)
      if (w.joinable()) w.join();
  }
};

struct Profile {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<PairState>> pairs;
  std::map<std::string, std::shared_ptr<KernelArtifacts>> kernels;
  TieredStats stats;
  std::vector<DeoptEvent> events;
};

Profile& profile() {
  static Profile p;
  return p;
}

void bump(std::uint64_t TieredStats::* field) {
  Profile& p = profile();
  std::lock_guard<std::mutex> lock(p.mu);
  ++(p.stats.*field);
}

void record_deopt(DeoptEvent ev) {
  Profile& p = profile();
  std::lock_guard<std::mutex> lock(p.mu);
  ++p.stats.deopts;
  if (p.events.size() < kMaxRecordedDeopts) p.events.push_back(std::move(ev));
}

}  // namespace

TieredOptions TieredOptions::resolved(const TieredOptions& base) {
  TieredOptions o = base;
  if (o.promote_after < 0)
    o.promote_after =
        static_cast<int>(env_long("BLK_TIERED_PROMOTE_AFTER", 3));
  if (o.promote_after < 1) o.promote_after = 1;
  if (o.demote_after < 0)
    o.demote_after = static_cast<int>(env_long("BLK_TIERED_DEMOTE_AFTER", 3));
  if (o.demote_after < 1) o.demote_after = 1;
  if (const char* s = std::getenv("BLK_TIERED_SYNC"); s && *s && *s != '0')
    o.synchronous = true;
  return o;
}

struct TieredRunner::Impl {
  const ir::Program& program;
  TieredOptions opts;
  Vm vm;
  std::string kernel_id;
  std::string binding;
  std::shared_ptr<PairState> state;
  std::shared_ptr<KernelArtifacts> art;
  std::uint64_t last_vm_stmts = 0;

  // Marshaling scratch, sized on first native call.
  std::vector<long> param_vals;
  std::vector<double*> array_ptrs;
  std::vector<double> scalar_vals;

  Impl(const ir::Program& p, ir::Env params, const TieredOptions& o)
      : program(p),
        opts(TieredOptions::resolved(o)),
        vm(p, std::move(params)),
        kernel_id(hex16_of(ir::print(p))),
        binding(binding_text(vm.params())) {
    Profile& pr = profile();
    std::lock_guard<std::mutex> lock(pr.mu);
    auto& pslot = pr.pairs[kernel_id + '|' + binding];
    if (!pslot) pslot = std::make_shared<PairState>();
    state = pslot;
    auto& kslot = pr.kernels[kernel_id];
    if (!kslot) kslot = std::make_shared<KernelArtifacts>();
    art = kslot;
  }

  struct BuildResult {
    std::shared_ptr<native::Kernel> gen;  ///< null: spec-only job
    Variant variant;                      ///< .kernel null: none built
    bool ok = false;
  };

  /// Build one binding's specialized variant; .kernel stays null when the
  /// binding yields no checkable assumptions or the build fails (not
  /// fatal — the kernel settles on generic).
  static Variant build_variant(const ir::Program& prog, const ir::Env& env) {
    Variant v;
    try {
      const spec::AssumptionSet as =
          spec::AssumptionSet::from_binding(prog, env);
      const spec::SpecializeResult sr = spec::specialize(prog, as);
      if (sr.guards.enabled()) {
        // Specialized variants are hot-tier code: compile them -O3 (the
        // generic kernel keeps the ordinary -O2 build).
        v.kernel = std::make_shared<native::Kernel>(
            sr.prog, "blk_kernel", nullptr, nullptr, &sr.guards, as.hash(),
            /*opt_level=*/3);
        v.guards = sr.guards;
        v.hash = as.hash();
      }
    } catch (const std::exception&) {
      v.kernel.reset();
    }
    return v;
  }

  static BuildResult build_kernels(const ir::Program& prog,
                                   const ir::Env& env, bool with_generic) {
    BuildResult r;
    r.ok = true;
    if (with_generic) {
      try {
        r.gen = std::make_shared<native::Kernel>(prog);
      } catch (const std::exception&) {
        r.ok = false;
        return r;
      }
    }
    r.variant = build_variant(prog, env);
    return r;
  }

  /// Caller holds a.mu.
  static void apply_build(KernelArtifacts& a, BuildResult r) {
    if (r.gen) {
      a.generic = std::move(r.gen);
      a.phase = KernelArtifacts::Phase::Ready;
    } else if (!r.ok) {
      a.phase = KernelArtifacts::Phase::Failed;
    }
    if (!r.variant.kernel) return;
    for (const Variant& v : a.variants)
      if (v.hash == r.variant.hash) return;  // already built by another pair
    a.variants.push_back(std::move(r.variant));
  }

  /// Launch one compile job for this pair's binding.  `with_generic`
  /// also builds the kernel's shared generic variant (the first
  /// promotion of the kernel).  Caller holds a.mu.
  void launch_build(KernelArtifacts& a, bool with_generic) {
    if (with_generic) a.phase = KernelArtifacts::Phase::Compiling;
    {
      Profile& p = profile();
      std::lock_guard<std::mutex> lock(p.mu);
      ++p.stats.promotions;
      ++p.stats.background_compiles;
    }
    // The worker owns a clone: the caller's program (and this runner) may
    // die while the compile is in flight.
    auto prog = std::make_shared<ir::Program>(program.clone());
    if (opts.synchronous || !native::available()) {
      // Without a toolchain the build fails fast; run it inline so the
      // kernel settles immediately instead of spawning a doomed thread.
      apply_build(a, build_kernels(*prog, vm.params(), with_generic));
    } else {
      a.workers.emplace_back(
          [ka = art, prog, env = vm.params(), with_generic] {
            BuildResult r = build_kernels(*prog, env, with_generic);
            std::lock_guard<std::mutex> lock(ka->mu);
            apply_build(*ka, std::move(r));
          });
    }
  }

  void marshal(const native::Kernel& k) {
    Store& st = vm.store();
    param_vals.clear();
    for (const auto& name : k.param_names()) {
      auto it = vm.params().find(name);
      if (it == vm.params().end())
        throw Error("tiered: unbound parameter " + name);
      param_vals.push_back(it->second);
    }
    array_ptrs.clear();
    for (const auto& name : k.array_names())
      array_ptrs.push_back(st.arrays.at(name).flat().data());
    scalar_vals.clear();
    for (const auto& name : k.scalar_names()) {
      auto it = st.scalars.find(name);
      scalar_vals.push_back(it == st.scalars.end() ? 0.0 : it->second);
    }
  }

  void sync_scalars_back(const native::Kernel& k) {
    Store& st = vm.store();
    for (std::size_t i = 0; i < k.scalar_names().size(); ++i)
      st.scalars[k.scalar_names()[i]] = scalar_vals[i];
  }

  void run_native(native::Kernel& k) {
    marshal(k);
    k.call(param_vals.data(), array_ptrs.data(), scalar_vals.data());
    sync_scalars_back(k);
  }

  void run_vm() {
    vm.run();
    last_vm_stmts = vm.statements_executed();
    bump(&TieredStats::vm_runs);
  }

  void run() {
    bump(&TieredStats::invocations);
    PairState& s = *state;
    KernelArtifacts& a = *art;
    std::scoped_lock lock(s.mu, a.mu);
    ++s.invocations;
    last_vm_stmts = 0;

    const bool hot =
        s.invocations >= static_cast<std::uint64_t>(opts.promote_after);
    if (hot) {
      if (a.phase == KernelArtifacts::Phase::Cold) {
        // First promotion of the kernel: generic + this binding's variant.
        s.spec_requested = true;
        launch_build(a, /*with_generic=*/true);
      } else if (a.phase == KernelArtifacts::Phase::Ready &&
                 !s.spec_requested) {
        // The kernel is already hot under another binding; this binding
        // crossed the threshold itself, so buy its own variant too.
        s.spec_requested = true;
        launch_build(a, /*with_generic=*/false);
      }
    }

    if (a.phase == KernelArtifacts::Phase::Ready) {
      // Try every live specialized variant; the first whose entry guards
      // accept this binding runs.  A binding rejected by all of them is
      // a deopt: record the event and fall back to the generic kernel.
      long first_fail = 0;
      std::string first_desc;
      for (Variant& v : a.variants) {
        if (v.demoted) continue;
        marshal(*v.kernel);
        const long failed =
            v.kernel->check_guards(param_vals.data(), array_ptrs.data());
        if (failed == 0) {
          v.consecutive_fails = 0;
          v.kernel->call(param_vals.data(), array_ptrs.data(),
                         scalar_vals.data());
          sync_scalars_back(*v.kernel);
          bump(&TieredStats::specialized_runs);
          return;
        }
        if (first_fail == 0) {
          first_fail = failed;
          first_desc = v.guards.describe(static_cast<std::size_t>(failed));
        }
        if (++v.consecutive_fails >= opts.demote_after) {
          v.demoted = true;
          v.kernel->demote();
          bump(&TieredStats::demotions);
        }
      }
      if (first_fail != 0)
        record_deopt({kernel_id, binding, first_fail, first_desc,
                      a.generic ? "generic" : "vm", s.invocations});
      if (a.generic) {
        run_native(*a.generic);
        bump(&TieredStats::generic_runs);
        return;
      }
    }

    // Cold, still compiling, or natively unreachable: the profiling VM.
    run_vm();
    s.trips += last_vm_stmts;
  }
};

TieredRunner::TieredRunner(const ir::Program& program, ir::Env params,
                           const TieredOptions& opts)
    : impl_(std::make_unique<Impl>(program, std::move(params), opts)) {}
TieredRunner::~TieredRunner() = default;
TieredRunner::TieredRunner(TieredRunner&&) noexcept = default;
TieredRunner& TieredRunner::operator=(TieredRunner&&) noexcept = default;

Store& TieredRunner::store() { return impl_->vm.store(); }
const Store& TieredRunner::store() const { return impl_->vm.store(); }
const ir::Env& TieredRunner::params() const { return impl_->vm.params(); }
void TieredRunner::run() { impl_->run(); }
std::uint64_t TieredRunner::statements_executed() const {
  return impl_->last_vm_stmts;
}

TieredStats tiered_stats() {
  Profile& p = profile();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.stats;
}

void tiered_drain() {
  Profile& p = profile();
  std::vector<std::shared_ptr<KernelArtifacts>> kernels;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    for (auto& [key, ka] : p.kernels) kernels.push_back(ka);
  }
  for (auto& ka : kernels) {
    std::vector<std::thread> workers;
    {
      std::lock_guard<std::mutex> lock(ka->mu);
      workers = std::move(ka->workers);
      ka->workers.clear();
    }
    for (auto& w : workers)
      if (w.joinable()) w.join();
  }
}

void reset_tiered_stats() {
  tiered_drain();
  Profile& p = profile();
  std::lock_guard<std::mutex> lock(p.mu);
  p.pairs.clear();
  p.kernels.clear();
  p.stats = TieredStats{};
  p.events.clear();
}

std::string tiered_stats_json() {
  Profile& p = profile();
  std::lock_guard<std::mutex> lock(p.mu);
  const TieredStats& t = p.stats;
  std::ostringstream os;
  os << "{\"invocations\": " << t.invocations
     << ", \"vm_runs\": " << t.vm_runs
     << ", \"generic_runs\": " << t.generic_runs
     << ", \"specialized_runs\": " << t.specialized_runs
     << ", \"promotions\": " << t.promotions
     << ", \"background_compiles\": " << t.background_compiles
     << ", \"deopts\": " << t.deopts << ", \"demotions\": " << t.demotions
     << ", \"deopt_events\": [";
  for (std::size_t i = 0; i < p.events.size(); ++i) {
    const DeoptEvent& e = p.events[i];
    os << (i ? ", " : "") << "{\"kernel\": \"" << e.kernel
       << "\", \"binding\": \"" << e.binding << "\", \"guard\": " << e.guard
       << ", \"desc\": \"" << e.desc << "\", \"action\": \"" << e.action
       << "\", \"invocation\": " << e.invocation << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace blk::interp
