// Tiered adaptive execution: profiling VM -> guarded specialized native.
//
// Engine::Tiered runs cold invocations on the bytecode VM while cheap
// per-(kernel-hash, binding-shape) counters accumulate in a process-wide
// profile.  The first pair of a kernel to cross the promotion threshold
// launches one background compile job building two native artifacts,
// shared by every binding of that kernel: the generic kernel (parameters
// symbolic — the ordinary Engine::Native build) and a specialized variant
// built under the promoting binding's derived AssumptionSet (parameters
// pinned, remainder loops deleted, entry guards emitted, compiled at the
// hot tier's -O3 -funroll-loops where the generic tier uses -O2).
// Later bindings
// of a promoted kernel run natively at once; each one that gets hot
// itself buys its own specialized variant.  Every hot invocation tries
// the live variants' entry guards first:
//
//   some variant's guards pass -> that specialized native kernel
//   all variants' guards fail  -> deopt event; generic native kernel (VM
//                                 when native is unavailable) — results
//                                 stay bit-identical to the VM on every
//                                 path
//
// Repeated consecutive guard failures demote a variant (the hot binding
// shape evidently changed for good — deopt-storm code invalidation) and
// the kernel settles on the generic build.  Promotion, deopt and
// demotion are all observable through tiered_stats()/tiered_stats_json();
// the native registry's guard-fail/demotion counters tick through the
// same events.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "interp/interp.hpp"

namespace blk::interp {

/// Tiering policy knobs (the CLI's --promote-after lands here).
struct TieredOptions {
  /// Invocations of one (kernel, binding) pair before promotion; 0/neg
  /// means "promote on first invocation".  Default from
  /// $BLK_TIERED_PROMOTE_AFTER, else 3.
  int promote_after = -1;  ///< -1 = resolve from the environment
  /// Consecutive guard failures before the specialized variant is
  /// demoted.  Default from $BLK_TIERED_DEMOTE_AFTER, else 3.
  int demote_after = -1;
  /// Compile promoted pairs synchronously instead of on a background
  /// thread (deterministic tests; $BLK_TIERED_SYNC=1 forces it).
  bool synchronous = false;

  /// Environment-resolved copy (defaults filled in).
  [[nodiscard]] static TieredOptions resolved(const TieredOptions& base);
};

/// Process-wide tiered-runtime counters since start (or reset).
struct TieredStats {
  std::uint64_t invocations = 0;       ///< Tiered runs, all pairs
  std::uint64_t vm_runs = 0;           ///< executed by the profiling VM
  std::uint64_t generic_runs = 0;      ///< executed by the generic kernel
  std::uint64_t specialized_runs = 0;  ///< executed by the specialized kernel
  std::uint64_t promotions = 0;        ///< pairs that crossed the threshold
  std::uint64_t background_compiles = 0;  ///< compile jobs launched
  std::uint64_t deopts = 0;            ///< guard-fail fallbacks taken
  std::uint64_t demotions = 0;         ///< variants retired by guard churn
};

[[nodiscard]] TieredStats tiered_stats();
void reset_tiered_stats();  ///< also clears the profile and kernel cache refs

/// Counters plus the recorded deopt events:
///   {"invocations": 7, ..., "deopt_events": [{"kernel": "<hash16>",
///    "binding": "KS=5,N=24", "guard": 1, "desc": "KS == 5",
///    "action": "generic", "invocation": 6}, ...]}
[[nodiscard]] std::string tiered_stats_json();

/// Block until every background compile launched so far has finished.
/// Tests and benchmarks call this between the warm-up loop and the
/// steady-state measurement; it is never required for correctness (a
/// still-compiling pair simply keeps running on the VM).
void tiered_drain();

/// One program instance under tiered execution (the Engine::Tiered arm of
/// the ExecEngine facade).  The profile is process-wide: a fresh
/// TieredRunner for an already-hot (kernel, binding) pair starts on the
/// promoted kernels immediately.
class TieredRunner {
 public:
  TieredRunner(const ir::Program& program, ir::Env params,
               const TieredOptions& opts = {});
  ~TieredRunner();
  TieredRunner(TieredRunner&&) noexcept;
  TieredRunner& operator=(TieredRunner&&) noexcept;

  [[nodiscard]] Store& store();
  [[nodiscard]] const Store& store() const;
  [[nodiscard]] const ir::Env& params() const;

  /// One invocation through the current tier (VM / generic / specialized).
  void run();

  /// The profiling VM's count from the most recent VM-tier run (0 once
  /// the pair runs native).
  [[nodiscard]] std::uint64_t statements_executed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace blk::interp
