// Flat access-trace records and the reusable buffer the VM emits them into.
//
// The tree-walking interpreter reports each array access through a
// per-access std::function callback; at fuzzer and cache-ablation scale
// that dispatch dominates the run.  The VM instead appends fixed-size
// records to a TraceBuffer, and consumers replay whole batches (e.g.
// cachesim::Cache::simulate) without any per-access indirection.  A
// buffer may optionally carry a sink: once `flush_threshold` records
// accumulate they are delivered in one span and the buffer is reused, so
// arbitrarily long traces (N=300 LU is ~10^8 accesses) run in constant
// memory.
//
// The sink is a plain function pointer plus context, not a std::function:
// every flush on the product path (cachesim streaming, the trace
// encoder's record hook) dispatches through one indirect call with no
// allocation or type erasure.  A std::function convenience constructor
// remains for tests and ad-hoc callers; it boxes the callable once and
// trampolines through the same pointer, so the hot append loop is
// identical either way (bench_trace pins the flush-dispatch difference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace blk::interp {

/// One array-element access: synthetic byte address plus direction.
struct TraceRecord {
  std::uint64_t addr = 0;
  bool is_write = false;

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

/// Growable, reusable trace store with optional batched delivery.
class TraceBuffer {
 public:
  /// Devirtualized sink: one indirect call per flush, no type erasure.
  using SinkFn = void (*)(void* ctx, std::span<const TraceRecord>);
  /// Legacy erased sink, kept for tests and ad-hoc consumers.
  using Sink = std::function<void(std::span<const TraceRecord>)>;

  TraceBuffer() { recs_.reserve(4096); }

  /// Streaming mode: whenever `flush_threshold` records accumulate they
  /// are handed to `sink(ctx, ...)` and dropped, bounding memory.
  TraceBuffer(std::size_t flush_threshold, void* ctx, SinkFn sink)
      : flush_threshold_(flush_threshold), sink_ctx_(ctx), sink_fn_(sink) {
    recs_.reserve(flush_threshold_ ? flush_threshold_ : 4096);
  }

  /// Legacy streaming mode: boxes the callable once; flushes trampoline
  /// through the same function-pointer path as the devirtualized sink.
  TraceBuffer(std::size_t flush_threshold, Sink sink)
      : flush_threshold_(flush_threshold),
        boxed_(std::make_unique<Sink>(std::move(sink))) {
    sink_ctx_ = boxed_.get();
    sink_fn_ = [](void* ctx, std::span<const TraceRecord> recs) {
      (*static_cast<Sink*>(ctx))(recs);
    };
    recs_.reserve(flush_threshold_ ? flush_threshold_ : 4096);
  }

  void append(std::uint64_t addr, bool is_write) {
    recs_.push_back({addr, is_write});
    if (flush_threshold_ != 0 && recs_.size() >= flush_threshold_) flush();
  }

  /// Deliver buffered records to the sink (if any) and clear them.
  /// Without a sink this is a no-op, so retained-mode users keep records.
  void flush() {
    if (!sink_fn_) return;
    if (!recs_.empty()) sink_fn_(sink_ctx_, recs_);
    recs_.clear();
  }

  void clear() { recs_.clear(); }

  /// Move the retained records out (the buffer is left empty and
  /// reusable).  Lets a consumer hand a whole trace to another thread
  /// without copying — the machine-model sweep replays per-candidate
  /// traces on a simulator pool while the VM produces the next one.
  [[nodiscard]] std::vector<TraceRecord> take_records() {
    std::vector<TraceRecord> out;
    out.swap(recs_);
    return out;
  }

  [[nodiscard]] std::span<const TraceRecord> records() const { return recs_; }
  [[nodiscard]] std::size_t size() const { return recs_.size(); }
  [[nodiscard]] bool empty() const { return recs_.empty(); }

 private:
  std::vector<TraceRecord> recs_;
  std::size_t flush_threshold_ = 0;
  void* sink_ctx_ = nullptr;
  SinkFn sink_fn_ = nullptr;
  std::unique_ptr<Sink> boxed_;  ///< keeps a legacy callable alive
};

}  // namespace blk::interp
