#include "interp/vm.hpp"

#include <cmath>
#include <string>

#include "interp/tiered.hpp"
#include "ir/error.hpp"
#include "native/engine.hpp"

namespace blk::interp {

namespace {

[[noreturn]] void oob(const AccessSite& site, std::size_t dim, long idx,
                      const AccessSite::Dim& d) {
  throw Error("VM: index " + std::to_string(idx) + " out of bounds [" +
              std::to_string(d.lb) + "," + std::to_string(d.ub) +
              "] in dimension " + std::to_string(dim) + " of " + site.name);
}

[[nodiscard]] inline long eval_form(const AffineForm& f, const long* ir) {
  long v = f.c0;
  for (const auto& [reg, coef] : f.terms) v += coef * ir[reg];
  return v;
}

}  // namespace

Vm::Vm(const ir::Program& program, ir::Env params)
    : params_(std::move(params)),
      store_(make_store(program, params_)),
      prog_(compile(program, params_, store_)) {
  ireg_.resize(static_cast<std::size_t>(prog_.n_ireg), 0);
  freg_.resize(static_cast<std::size_t>(prog_.n_freg), 0.0);
  scal_.resize(prog_.scal_names.size(), 0.0);
  arr_data_.reserve(prog_.array_names.size());
  arr_base_.reserve(prog_.array_names.size());
  for (const auto& name : prog_.array_names) {
    Tensor& t = store_.arrays.at(name);
    arr_data_.push_back(t.flat().data());
    arr_base_.push_back(t.base_addr());
  }
}

void Vm::sync_scalars_in() {
  for (std::size_t i = 0; i < scal_.size(); ++i) {
    auto it = store_.scalars.find(prog_.scal_names[i]);
    scal_[i] = it == store_.scalars.end() ? 0.0 : it->second;
  }
}

void Vm::sync_scalars_out() {
  for (std::size_t i = 0; i < scal_.size(); ++i)
    store_.scalars[prog_.scal_names[i]] = scal_[i];
}

void Vm::run(TraceBuffer* trace) {
  if (trace)
    run_impl<true>(trace);
  else
    run_impl<false>(nullptr);
}

template <bool kTrace>
void Vm::run_impl(TraceBuffer* trace) {
  stmts_ = 0;
  sync_scalars_in();
  std::fill(ireg_.begin(), ireg_.end(), 0L);
  std::fill(freg_.begin(), freg_.end(), 0.0);

  const Insn* code = prog_.code.data();
  const AccessSite* sites = prog_.sites.data();
  const StepGroup* groups = prog_.step_groups.data();
  long* ir = ireg_.data();
  double* fr = freg_.data();
  double* sc = scal_.data();

  std::size_t pc = 0;
  for (;;) {
    const Insn& in = code[pc];
    switch (in.op) {
      case Op::IConst:
        ir[in.a] = in.imm;
        break;
      case Op::IMove:
        ir[in.a] = ir[in.b];
        break;
      case Op::IAdd:
        ir[in.a] = ir[in.b] + ir[in.c];
        break;
      case Op::ISub:
        ir[in.a] = ir[in.b] - ir[in.c];
        break;
      case Op::IMul:
        ir[in.a] = ir[in.b] * ir[in.c];
        break;
      case Op::IMin:
        ir[in.a] = std::min(ir[in.b], ir[in.c]);
        break;
      case Op::IMax:
        ir[in.a] = std::max(ir[in.b], ir[in.c]);
        break;
      case Op::IAddImm:
        ir[in.a] = ir[in.b] + in.imm;
        break;
      case Op::IDiv: {
        const long a = ir[in.b];
        const long d = ir[in.c];
        if (d <= 0) throw Error("VM: division by non-positive value");
        const long q = a / d;
        const long r = a % d;
        ir[in.a] = in.aux == 0 ? ((r != 0 && a < 0) ? q - 1 : q)
                               : ((r != 0 && a > 0) ? q + 1 : q);
        break;
      }
      case Op::ILoadScalar:
        ir[in.a] = static_cast<long>(sc[in.b]);
        break;
      case Op::ILoadElem: {
        const AccessSite& s = sites[in.b];
        const AccessSite::Dim& d = s.dims[0];
        const long v = ir[d.idx_reg];
        if (v < d.lb || v > d.ub) oob(s, 0, v, d);
        const auto flat = static_cast<std::size_t>(v - d.lb);
        if constexpr (kTrace)
          trace->append(arr_base_[static_cast<std::size_t>(s.array)] +
                            flat * sizeof(double),
                        /*is_write=*/false);
        ir[in.a] = static_cast<long>(
            arr_data_[static_cast<std::size_t>(s.array)][flat]);
        break;
      }
      case Op::AffineInit: {
        const AccessSite& s = sites[in.a];
        for (const auto& d : s.dims) ir[d.idx_reg] = eval_form(d.form, ir);
        ir[s.flat_reg] = eval_form(s.flat_form, ir);
        if (in.aux != 0) {
          // Validate the whole iteration range now: each dimension's index
          // is linear in the loop variable, so checking both endpoints
          // covers every iteration and the in-loop accesses go unchecked.
          const long lo = ir[in.b];
          const long hi = ir[in.c];
          const long st = in.imm;
          long trips = 0;
          if ((st > 0 && lo <= hi) || (st < 0 && lo >= hi))
            trips = (hi - lo) / st + 1;
          if (trips > 0) {
            for (std::size_t di = 0; di < s.dims.size(); ++di) {
              const AccessSite::Dim& d = s.dims[di];
              const long first = ir[d.idx_reg];
              const long last = first + d.delta * (trips - 1);
              const long mn = std::min(first, last);
              const long mx = std::max(first, last);
              if (mn < d.lb || mx > d.ub)
                oob(s, di, mn < d.lb ? mn : mx, d);
            }
          }
        }
        break;
      }
      case Op::AffineStep: {
        for (const auto& [reg, delta] :
             groups[in.a].updates)
          ir[reg] += delta;
        break;
      }
      case Op::DynOffset: {
        const AccessSite& s = sites[in.a];
        long flat = 0;
        for (std::size_t di = 0; di < s.dims.size(); ++di) {
          const AccessSite::Dim& d = s.dims[di];
          const long v = ir[d.idx_reg];
          if (v < d.lb || v > d.ub) oob(s, di, v, d);
          flat += (v - d.lb) * d.stride;
        }
        ir[s.flat_reg] = flat;
        break;
      }
      case Op::FConst:
        fr[in.a] = in.fimm;
        break;
      case Op::FLoadScalar:
        fr[in.a] = sc[in.b];
        break;
      case Op::FStoreScalar:
        stmts_ += in.aux;  // assignment count folded into the store
        sc[in.a] = fr[in.b];
        break;
      case Op::FLoadArr: {
        const AccessSite& s = sites[in.b];
        if (in.aux & 1) {
          for (std::size_t di = 0; di < s.dims.size(); ++di) {
            const AccessSite::Dim& d = s.dims[di];
            const long v = ir[d.idx_reg];
            if (v < d.lb || v > d.ub) oob(s, di, v, d);
          }
        }
        const auto flat = static_cast<std::size_t>(ir[s.flat_reg]);
        if constexpr (kTrace)
          trace->append(arr_base_[static_cast<std::size_t>(s.array)] +
                            flat * sizeof(double),
                        /*is_write=*/false);
        fr[in.a] = arr_data_[static_cast<std::size_t>(s.array)][flat];
        break;
      }
      case Op::FStoreArr: {
        stmts_ += in.aux >> 1;  // assignment count folded into the store
        const AccessSite& s = sites[in.b];
        if (in.aux & 1) {
          for (std::size_t di = 0; di < s.dims.size(); ++di) {
            const AccessSite::Dim& d = s.dims[di];
            const long v = ir[d.idx_reg];
            if (v < d.lb || v > d.ub) oob(s, di, v, d);
          }
        }
        const auto flat = static_cast<std::size_t>(ir[s.flat_reg]);
        if constexpr (kTrace)
          trace->append(arr_base_[static_cast<std::size_t>(s.array)] +
                            flat * sizeof(double),
                        /*is_write=*/true);
        arr_data_[static_cast<std::size_t>(s.array)][flat] = fr[in.a];
        break;
      }
      case Op::FBin: {
        const double l = fr[in.b];
        const double r = fr[in.c];
        switch (static_cast<ir::BinOp>(in.aux)) {
          case ir::BinOp::Add: fr[in.a] = l + r; break;
          case ir::BinOp::Sub: fr[in.a] = l - r; break;
          case ir::BinOp::Mul: fr[in.a] = l * r; break;
          case ir::BinOp::Div: fr[in.a] = l / r; break;
        }
        break;
      }
      case Op::FUn: {
        const double l = fr[in.b];
        switch (static_cast<ir::UnOp>(in.aux)) {
          case ir::UnOp::Neg: fr[in.a] = -l; break;
          case ir::UnOp::Sqrt: fr[in.a] = std::sqrt(l); break;
          case ir::UnOp::Abs: fr[in.a] = std::fabs(l); break;
        }
        break;
      }
      case Op::FFromInt:
        fr[in.a] = static_cast<double>(ir[in.b]);
        break;
      case Op::Jump:
        pc = static_cast<std::size_t>(in.a);
        continue;
      case Op::LoopGuard: {
        bool done;
        if (in.aux == 1) {
          done = ir[in.b] > ir[in.c];
        } else if (in.aux == 2) {
          done = ir[in.b] < ir[in.c];
        } else {
          const long st = ir[in.imm];
          if (st == 0) throw Error("VM: zero loop step");
          done = st > 0 ? ir[in.b] > ir[in.c] : ir[in.b] < ir[in.c];
        }
        if (done) {
          pc = static_cast<std::size_t>(in.a);
          continue;
        }
        break;
      }
      case Op::LoopEnd: {
        bool done;
        if (in.aux == 1) {
          done = ir[in.b] > ir[in.c];
        } else if (in.aux == 2) {
          done = ir[in.b] < ir[in.c];
        } else {
          const long st = ir[in.imm];
          done = st > 0 ? ir[in.b] > ir[in.c] : ir[in.b] < ir[in.c];
        }
        if (!done) {
          pc = static_cast<std::size_t>(in.a);
          continue;
        }
        break;
      }
      case Op::CondJump: {
        const double l = fr[in.b];
        const double r = fr[in.c];
        bool taken = false;
        switch (static_cast<ir::CmpOp>(in.aux)) {
          case ir::CmpOp::EQ: taken = l == r; break;
          case ir::CmpOp::NE: taken = l != r; break;
          case ir::CmpOp::LT: taken = l < r; break;
          case ir::CmpOp::LE: taken = l <= r; break;
          case ir::CmpOp::GT: taken = l > r; break;
          case ir::CmpOp::GE: taken = l >= r; break;
        }
        if (!taken) {
          pc = static_cast<std::size_t>(in.a);
          continue;
        }
        break;
      }
      case Op::CountStmt:
        ++stmts_;
        break;
      case Op::Fail:
        throw Error(prog_.msgs[static_cast<std::size_t>(in.a)]);
      case Op::Halt:
        sync_scalars_out();
        return;
    }
    ++pc;
  }
}

// ---- ExecEngine -------------------------------------------------------------

Engine parse_engine(std::string_view name) {
  if (name == "tree" || name == "treewalker") return Engine::TreeWalker;
  if (name == "vm") return Engine::Vm;
  if (name == "native") return Engine::Native;
  if (name == "tiered") return Engine::Tiered;
  throw Error("unknown engine '" + std::string(name) +
              "' (expected tree, vm, native or tiered)");
}

const char* to_string(Engine e) {
  switch (e) {
    case Engine::TreeWalker: return "tree";
    case Engine::Vm: return "vm";
    case Engine::Native: return "native";
    case Engine::Tiered: return "tiered";
  }
  return "?";
}

/// native::Kernel bound to a Store: marshals parameter values, array base
/// pointers and the scalar block per the entry wrapper's declaration-order
/// contract, and syncs scalars back after each run (VM semantics).
class NativeRunner {
 public:
  NativeRunner(const ir::Program& program, ir::Env params,
               const ir::ParallelOptions* parallel)
      : params_(std::move(params)),
        store_(make_store(program, params_)),
        kernel_(program, "blk_kernel", nullptr, parallel) {
    param_vals_.reserve(kernel_.param_names().size());
    for (const auto& name : kernel_.param_names()) {
      auto it = params_.find(name);
      if (it == params_.end())
        throw Error("native: unbound parameter " + name);
      param_vals_.push_back(it->second);
    }
    array_ptrs_.resize(kernel_.array_names().size(), nullptr);
    scalar_vals_.resize(kernel_.scalar_names().size(), 0.0);
  }

  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] const Store& store() const { return store_; }
  [[nodiscard]] const ir::Env& params() const { return params_; }

  void run() {
    for (std::size_t i = 0; i < kernel_.array_names().size(); ++i)
      array_ptrs_[i] =
          store_.arrays.at(kernel_.array_names()[i]).flat().data();
    for (std::size_t i = 0; i < kernel_.scalar_names().size(); ++i) {
      auto it = store_.scalars.find(kernel_.scalar_names()[i]);
      scalar_vals_[i] = it == store_.scalars.end() ? 0.0 : it->second;
    }
    kernel_.call(param_vals_.data(), array_ptrs_.data(),
                 scalar_vals_.data());
    for (std::size_t i = 0; i < kernel_.scalar_names().size(); ++i)
      store_.scalars[kernel_.scalar_names()[i]] = scalar_vals_[i];
  }

 private:
  ir::Env params_;
  Store store_;
  native::Kernel kernel_;
  std::vector<long> param_vals_;
  std::vector<double*> array_ptrs_;
  std::vector<double> scalar_vals_;
};

ExecEngine::ExecEngine(const ir::Program& program, ir::Env params,
                       Engine engine, const ir::ParallelOptions* parallel,
                       const TieredOptions* tiered) {
  engine_ = engine;
  if (engine_ == Engine::Native && !native::available())
    engine_ = Engine::Vm;  // fallback policy: no toolchain -> VM
  switch (engine_) {
    case Engine::TreeWalker:
      tw_ = std::make_unique<Interpreter>(program, std::move(params));
      break;
    case Engine::Vm:
      vm_ = std::make_unique<Vm>(program, std::move(params));
      break;
    case Engine::Native:
      nat_ = std::make_unique<NativeRunner>(program, std::move(params),
                                            parallel);
      break;
    case Engine::Tiered:
      // No toolchain fallback here: the runner profiles on the VM and
      // simply never leaves it when no native backend exists.
      tiered_ = std::make_unique<TieredRunner>(
          program, std::move(params),
          tiered ? *tiered : TieredOptions{});
      break;
  }
}

ExecEngine::~ExecEngine() = default;
ExecEngine::ExecEngine(ExecEngine&&) noexcept = default;
ExecEngine& ExecEngine::operator=(ExecEngine&&) noexcept = default;

Store& ExecEngine::store() {
  if (tw_) return tw_->store();
  if (vm_) return vm_->store();
  if (tiered_) return tiered_->store();
  return nat_->store();
}
const Store& ExecEngine::store() const {
  if (tw_) return tw_->store();
  if (vm_) return vm_->store();
  if (tiered_) return tiered_->store();
  return nat_->store();
}
const ir::Env& ExecEngine::params() const {
  if (tw_) return tw_->params();
  if (vm_) return vm_->params();
  if (tiered_) return tiered_->params();
  return nat_->params();
}

void ExecEngine::run() {
  if (tw_)
    tw_->run();
  else if (vm_)
    vm_->run();
  else if (tiered_)
    tiered_->run();
  else
    nat_->run();
}

void ExecEngine::run(TraceBuffer& tb) {
  if (tw_) {
    tw_->run([&tb](std::uint64_t addr, bool w) { tb.append(addr, w); });
    return;
  }
  if (nat_ || tiered_)
    throw Error(
        "native/tiered engines do not produce access traces; use "
        "Engine::Vm");
  vm_->run(&tb);
}

void ExecEngine::run(const TraceFn& fn) {
  if (tw_) {
    tw_->run(fn);
    return;
  }
  if (nat_ || tiered_)
    throw Error(
        "native/tiered engines do not produce access traces; use "
        "Engine::Vm");
  // Adapt the VM's batched tracing to the legacy per-access callback.
  TraceBuffer buf(1 << 16, const_cast<TraceFn*>(&fn),
                  [](void* ctx, std::span<const TraceRecord> recs) {
                    const TraceFn& f = *static_cast<TraceFn*>(ctx);
                    for (const TraceRecord& r : recs) f(r.addr, r.is_write);
                  });
  vm_->run(&buf);
  buf.flush();
}

std::uint64_t ExecEngine::statements_executed() const {
  if (tw_) return tw_->statements_executed();
  if (vm_) return vm_->statements_executed();
  if (tiered_) return tiered_->statements_executed();
  return 0;  // the native engine does not count statements
}

Store run_seeded(const ir::Program& p, const ir::Env& params,
                 std::uint64_t seed, Engine engine) {
  ExecEngine eng(p, params, engine);
  seed_store(eng.store(), seed);
  eng.run();
  return std::move(eng.store());
}

}  // namespace blk::interp
