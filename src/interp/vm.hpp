// Bytecode VM for the IR oracle, and the ExecEngine facade that lets every
// consumer (tests, fuzzer, cache ablations, examples) pick an engine.
//
// The Vm executes the register program produced by compile() over the same
// Store layout the tree-walking Interpreter allocates, with the same
// synthetic addresses — so stores are bit-identical and access traces are
// event-for-event identical, at bytecode speed.  The tree-walker remains
// the reference semantics: tests/interp/vm_test.cpp and the fuzzer run
// both and require exact agreement.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "interp/compile.hpp"
#include "interp/interp.hpp"
#include "interp/trace.hpp"
#include "ir/codegen.hpp"

namespace blk::interp {

/// Executes one compiled program instance.
class Vm {
 public:
  Vm(const ir::Program& program, ir::Env params);

  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] const Store& store() const { return store_; }
  [[nodiscard]] const ir::Env& params() const { return params_; }
  [[nodiscard]] const CompiledProgram& compiled() const { return prog_; }

  /// Execute; when `trace` is non-null every array-element access appends
  /// one record.  Throws blk::Error on out-of-bounds accesses, unbound
  /// variables, or non-terminating loop steps, like the tree-walker.
  void run(TraceBuffer* trace = nullptr);

  [[nodiscard]] std::uint64_t statements_executed() const { return stmts_; }

 private:
  ir::Env params_;
  Store store_;
  CompiledProgram prog_;
  std::vector<long> ireg_;
  std::vector<double> freg_;
  std::vector<double> scal_;
  std::vector<double*> arr_data_;      ///< array slot -> element storage
  std::vector<std::uint64_t> arr_base_;  ///< array slot -> synthetic base
  std::uint64_t stmts_ = 0;

  void sync_scalars_in();
  void sync_scalars_out();

  /// The dispatch loop, specialized at compile time so the untraced path
  /// carries no per-access branch.
  template <bool kTrace>
  void run_impl(TraceBuffer* trace);
};

// (the Engine enum lives in interp.hpp so run_seeded can default it)

/// "tree", "vm", "native", "tiered" (the --engine spellings); throws
/// blk::Error on anything else.
[[nodiscard]] Engine parse_engine(std::string_view name);
[[nodiscard]] const char* to_string(Engine e);

class NativeRunner;  // vm.cpp: native::Kernel bound to a Store
class TieredRunner;  // tiered.hpp: adaptive VM -> native promotion
struct TieredOptions;

/// Uniform front door over the engines.  Construction allocates the
/// store; callers seed inputs through store() and then run().
///
/// Engine::Native compiles the program's emitted C through the host
/// toolchain (content-addressed .so cache, one compile per program shape
/// — parameters stay symbolic).  When no toolchain is available the
/// facade silently falls back to the VM: engine() reports the *effective*
/// engine, so callers can tell.  Compile or load failures with a working
/// toolchain still throw — those are bugs, not environment.  The native
/// engine produces no access traces and no statement counts (traced run()
/// overloads throw; statements_executed() is 0).
class ExecEngine {
 public:
  /// `parallel` (Native only) is the certified parallel plan forwarded to
  /// native::Kernel; it is copied, so callers may let theirs die.  The
  /// tree-walker and VM ignore it — they have no threads to give — and
  /// the silent-fallback path therefore runs the plan serially, which is
  /// semantically identical by construction.  `tiered` (Tiered only)
  /// overrides the tiering policy; null resolves it from the environment.
  ExecEngine(const ir::Program& program, ir::Env params,
             Engine engine = Engine::Vm,
             const ir::ParallelOptions* parallel = nullptr,
             const TieredOptions* tiered = nullptr);
  ~ExecEngine();
  ExecEngine(ExecEngine&&) noexcept;
  ExecEngine& operator=(ExecEngine&&) noexcept;

  [[nodiscard]] Store& store();
  [[nodiscard]] const Store& store() const;
  [[nodiscard]] const ir::Env& params() const;
  [[nodiscard]] Engine engine() const { return engine_; }

  void run();                  ///< untraced
  void run(TraceBuffer& tb);   ///< batched tracing
  void run(const TraceFn& fn); ///< legacy per-access callback

  [[nodiscard]] std::uint64_t statements_executed() const;

 private:
  Engine engine_;
  std::unique_ptr<Interpreter> tw_;
  std::unique_ptr<Vm> vm_;
  std::unique_ptr<NativeRunner> nat_;
  std::unique_ptr<TieredRunner> tiered_;
};

}  // namespace blk::interp
