#include "ir/affine.hpp"

#include "ir/error.hpp"

namespace blk::ir {

Affine& Affine::operator+=(const Affine& o) {
  for (const auto& [v, k] : o.coef) {
    long nk = coef_of(v) + k;
    if (nk == 0)
      coef.erase(v);
    else
      coef[v] = nk;
  }
  constant += o.constant;
  return *this;
}

Affine& Affine::operator-=(const Affine& o) {
  for (const auto& [v, k] : o.coef) {
    long nk = coef_of(v) - k;
    if (nk == 0)
      coef.erase(v);
    else
      coef[v] = nk;
  }
  constant -= o.constant;
  return *this;
}

Affine& Affine::operator*=(long k) {
  if (k == 0) {
    coef.clear();
    constant = 0;
    return *this;
  }
  for (auto& [v, c] : coef) c *= k;
  constant *= k;
  return *this;
}

std::optional<Affine> as_affine(const IExpr& e) {
  switch (e.kind) {
    case IKind::Const:
      return Affine::constant_term(e.value);
    case IKind::Var:
      return Affine::variable(e.name);
    case IKind::Add: {
      auto l = as_affine(*e.lhs);
      auto r = as_affine(*e.rhs);
      if (!l || !r) return std::nullopt;
      return *l + *r;
    }
    case IKind::Sub: {
      auto l = as_affine(*e.lhs);
      auto r = as_affine(*e.rhs);
      if (!l || !r) return std::nullopt;
      return *l - *r;
    }
    case IKind::Mul: {
      auto l = as_affine(*e.lhs);
      auto r = as_affine(*e.rhs);
      if (!l || !r) return std::nullopt;
      if (l->is_constant()) return *r * l->constant;
      if (r->is_constant()) return *l * r->constant;
      return std::nullopt;  // genuinely quadratic
    }
    case IKind::Min:
    case IKind::Max: {
      // MIN/MAX of provably-ordered affine operands collapses.
      auto l = as_affine(*e.lhs);
      auto r = as_affine(*e.rhs);
      if (!l || !r) return std::nullopt;
      auto s = constant_sign(*l - *r);
      if (!s) return std::nullopt;
      bool take_lhs = (e.kind == IKind::Min) ? (*s <= 0) : (*s >= 0);
      return take_lhs ? *l : *r;
    }
    case IKind::ArrayElem:
      return std::nullopt;  // runtime value, opaque to symbolic analysis
    case IKind::FloorDiv:
    case IKind::CeilDiv: {
      // Exactly divisible affine forms stay affine: (k*d*x + c*d)/d.
      auto l = as_affine(*e.lhs);
      if (!l || e.rhs->kind != IKind::Const) return std::nullopt;
      long d = e.rhs->value;
      if (d <= 0) return std::nullopt;
      for (const auto& [v, k] : l->coef)
        if (k % d != 0) return std::nullopt;
      if (l->constant % d != 0) return std::nullopt;
      Affine out;
      for (const auto& [v, k] : l->coef) out.coef[v] = k / d;
      out.constant = l->constant / d;
      return out;
    }
  }
  return std::nullopt;
}

IExprPtr from_affine(const Affine& a) {
  IExprPtr acc;
  for (const auto& [v, k] : a.coef) {
    if (k == 0) continue;
    if (!acc) {
      acc = (k == 1) ? ivar(v) : imul(iconst(k), ivar(v));
      continue;
    }
    // Subsequent terms render with their sign for readable output
    // (N1 - N2, not N1 + -1*N2).
    if (k > 0)
      acc = iadd(std::move(acc),
                 k == 1 ? ivar(v) : imul(iconst(k), ivar(v)));
    else
      acc = isub(std::move(acc),
                 k == -1 ? ivar(v) : imul(iconst(-k), ivar(v)));
  }
  if (!acc) return iconst(a.constant);
  if (a.constant > 0) return iadd(std::move(acc), iconst(a.constant));
  if (a.constant < 0) return isub(std::move(acc), iconst(-a.constant));
  return acc;
}

std::optional<Affine> affine_difference(const IExprPtr& a, const IExprPtr& b) {
  auto fa = as_affine(*a);
  auto fb = as_affine(*b);
  if (!fa || !fb) return std::nullopt;
  return *fa - *fb;
}

std::optional<int> constant_sign(const Affine& a) {
  if (!a.is_constant()) return std::nullopt;
  if (a.constant < 0) return -1;
  if (a.constant > 0) return 1;
  return 0;
}

}  // namespace blk::ir
