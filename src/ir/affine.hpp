// Affine normal form for index expressions.
//
// An `Affine` is   sum_i  coef[v_i] * v_i  +  constant   over distinct
// variable names.  Most of the compiler's symbolic reasoning — dependence
// tests, section intersection, split-point solving — happens on this form.
// `as_affine` converts an IExpr tree when possible (MIN/MAX/division nodes
// make an expression non-affine).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "ir/iexpr.hpp"

namespace blk::ir {

/// Affine form of an index expression: coef-map plus constant term.
/// Zero coefficients are never stored, so `coef.empty()` means "constant".
struct Affine {
  std::map<std::string, long> coef;
  long constant = 0;

  [[nodiscard]] bool is_constant() const { return coef.empty(); }

  /// Coefficient of `v` (0 when absent).
  [[nodiscard]] long coef_of(const std::string& v) const {
    auto it = coef.find(v);
    return it == coef.end() ? 0 : it->second;
  }

  Affine& operator+=(const Affine& o);
  Affine& operator-=(const Affine& o);
  Affine& operator*=(long k);
  [[nodiscard]] friend Affine operator+(Affine a, const Affine& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Affine operator-(Affine a, const Affine& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Affine operator*(Affine a, long k) {
    a *= k;
    return a;
  }
  [[nodiscard]] bool operator==(const Affine& o) const = default;

  [[nodiscard]] static Affine constant_term(long c) { return {.coef = {}, .constant = c}; }
  [[nodiscard]] static Affine variable(const std::string& v, long k = 1) {
    Affine a;
    if (k != 0) a.coef[v] = k;
    return a;
  }
};

/// Convert to affine normal form; nullopt when the tree contains MIN/MAX,
/// division, or a product of two non-constant subtrees.
[[nodiscard]] std::optional<Affine> as_affine(const IExpr& e);
[[nodiscard]] inline std::optional<Affine> as_affine(const IExprPtr& e) {
  return as_affine(*e);
}

/// Rebuild a canonical IExpr from an affine form (variables in map order,
/// constant last).
[[nodiscard]] IExprPtr from_affine(const Affine& a);

/// a - b when both sides are affine, else nullopt.
[[nodiscard]] std::optional<Affine> affine_difference(const IExprPtr& a,
                                                      const IExprPtr& b);

/// Sign of an affine form that is provably constant: returns -1, 0 or +1,
/// or nullopt when the form involves variables.
[[nodiscard]] std::optional<int> constant_sign(const Affine& a);

}  // namespace blk::ir
