// Terse construction helpers for writing kernels as IR.
//
// Typical use (LU point algorithm, §5.1):
//
//   using namespace blk::ir::dsl;
//   Program p;
//   p.param("N");
//   p.array("A", {v("N"), v("N")});
//   p.add(loop("K", c(1), v("N") - c(1), {
//       loop("I", v("K") + c(1), v("N"),
//            {assign(lv("A", {v("I"), v("K")}),
//                    a("A", {v("I"), v("K")}) / a("A", {v("K"), v("K")}), 20)}),
//       ...}));
#pragma once

#include "ir/program.hpp"

namespace blk::ir::dsl {

[[nodiscard]] inline IExprPtr c(long x) { return iconst(x); }
[[nodiscard]] inline IExprPtr v(const std::string& n) { return ivar(n); }

[[nodiscard]] inline IExprPtr operator+(IExprPtr a, IExprPtr b) {
  return iadd(std::move(a), std::move(b));
}
[[nodiscard]] inline IExprPtr operator+(IExprPtr a, long b) {
  return iadd(std::move(a), b);
}
[[nodiscard]] inline IExprPtr operator-(IExprPtr a, IExprPtr b) {
  return isub(std::move(a), std::move(b));
}
[[nodiscard]] inline IExprPtr operator-(IExprPtr a, long b) {
  return isub(std::move(a), b);
}
[[nodiscard]] inline IExprPtr operator*(long a, IExprPtr b) {
  return imul(a, std::move(b));
}
[[nodiscard]] inline IExprPtr operator*(IExprPtr a, IExprPtr b) {
  return imul(std::move(a), std::move(b));
}

/// Array read A(subs...).
[[nodiscard]] inline VExprPtr a(std::string name, std::vector<IExprPtr> subs) {
  return vref(std::move(name), std::move(subs));
}
/// Scalar read.
[[nodiscard]] inline VExprPtr s(std::string name) {
  return vscalar(std::move(name));
}
/// Floating literal.
[[nodiscard]] inline VExprPtr f(double x) { return vconst(x); }

[[nodiscard]] inline VExprPtr operator+(VExprPtr x, VExprPtr y) {
  return vadd(std::move(x), std::move(y));
}
[[nodiscard]] inline VExprPtr operator-(VExprPtr x, VExprPtr y) {
  return vsub(std::move(x), std::move(y));
}
[[nodiscard]] inline VExprPtr operator*(VExprPtr x, VExprPtr y) {
  return vmul(std::move(x), std::move(y));
}
[[nodiscard]] inline VExprPtr operator/(VExprPtr x, VExprPtr y) {
  return vdiv(std::move(x), std::move(y));
}
[[nodiscard]] inline VExprPtr operator-(VExprPtr x) {
  return vneg(std::move(x));
}

/// Array lvalue A(subs...).
[[nodiscard]] inline LValue lv(std::string name, std::vector<IExprPtr> subs) {
  return {.name = std::move(name), .subs = std::move(subs)};
}
/// Scalar lvalue.
[[nodiscard]] inline LValue lvs(std::string name) {
  return {.name = std::move(name), .subs = {}};
}

[[nodiscard]] inline StmtPtr assign(LValue l, VExprPtr r, int label = 0) {
  return make_assign(std::move(l), std::move(r), label);
}

/// Build a StmtList from move-only pointers (std::initializer_list cannot
/// hold unique_ptr, so take a parameter pack instead).
template <typename... Ts>
[[nodiscard]] StmtList stmts(Ts... ss) {
  StmtList l;
  (l.push_back(std::move(ss)), ...);
  return l;
}

template <typename... Ts>
[[nodiscard]] StmtPtr loop(std::string var, IExprPtr lb, IExprPtr ub,
                           Ts... body) {
  return make_loop(std::move(var), std::move(lb), std::move(ub),
                   stmts(std::move(body)...));
}

template <typename... Ts>
[[nodiscard]] StmtPtr loop_step(std::string var, IExprPtr lb, IExprPtr ub,
                                IExprPtr step, Ts... body) {
  return make_loop(std::move(var), std::move(lb), std::move(ub),
                   stmts(std::move(body)...), std::move(step));
}

[[nodiscard]] inline Cond cmp(VExprPtr l, CmpOp op, VExprPtr r) {
  return {.lhs = std::move(l), .op = op, .rhs = std::move(r)};
}

template <typename... Ts>
[[nodiscard]] StmtPtr when(Cond c, Ts... then_body) {
  return make_if(std::move(c), stmts(std::move(then_body)...));
}

}  // namespace blk::ir::dsl
