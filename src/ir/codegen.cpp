#include "ir/codegen.hpp"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "ir/error.hpp"

namespace blk::ir {

namespace {

// Scalar variables live as C doubles; using one as an index needs a cast.
const Program* g_prog = nullptr;

/// Parallel-emission state for one emit_c call.  Loops are matched against
/// the plan positionally (variable + pre-order occurrence), so the counter
/// map must tick for every loop the walk passes, outlined or not.
struct ParEmit {
  const ParallelOptions* plan = nullptr;
  std::map<std::string, int> occ;        ///< loops seen so far, per var
  std::vector<std::string> enclosing;    ///< loop vars live at this point
  std::ostringstream aux;                ///< outlined envs + worker bodies
  int next_id = 0;
  bool outlining = false;  ///< inside a worker body: no nested regions
};
ParEmit* g_par = nullptr;

void emit_iexpr(const IExpr& e, std::ostream& os);

void emit_binary(const IExpr& e, std::ostream& os, const char* op) {
  os << '(';
  emit_iexpr(*e.lhs, os);
  os << op;
  emit_iexpr(*e.rhs, os);
  os << ')';
}

void emit_iexpr(const IExpr& e, std::ostream& os) {
  switch (e.kind) {
    case IKind::Const:
      os << e.value << 'L';
      return;
    case IKind::Var:
      if (g_prog && g_prog->has_scalar(e.name))
        os << "(long)" << e.name;
      else
        os << e.name;
      return;
    case IKind::Add:
      emit_binary(e, os, " + ");
      return;
    case IKind::Sub:
      emit_binary(e, os, " - ");
      return;
    case IKind::Mul:
      emit_binary(e, os, " * ");
      return;
    case IKind::Min:
      os << "BLK_MIN(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::Max:
      os << "BLK_MAX(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::FloorDiv:
      os << "BLK_FDIV(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::CeilDiv:
      os << "BLK_CDIV(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::ArrayElem:
      os << "(long)" << e.name << '(';
      emit_iexpr(*e.lhs, os);
      os << ')';
      return;
  }
  throw Error("emit_c: corrupt IExpr");
}

void emit_vexpr(const VExpr& e, std::ostream& os) {
  switch (e.kind) {
    case VKind::Const: {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << e.cval;
      std::string s = tmp.str();
      os << s;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos)
        os << ".0";
      return;
    }
    case VKind::ScalarRef:
      os << e.name;
      return;
    case VKind::IndexVal:
      os << "(double)(";
      emit_iexpr(*e.index, os);
      os << ')';
      return;
    case VKind::ArrayRef: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.subs.size(); ++i) {
        if (i) os << ", ";
        emit_iexpr(*e.subs[i], os);
      }
      os << ')';
      return;
    }
    case VKind::Bin: {
      os << '(';
      emit_vexpr(*e.lhs, os);
      switch (e.bop) {
        case BinOp::Add: os << " + "; break;
        case BinOp::Sub: os << " - "; break;
        case BinOp::Mul: os << " * "; break;
        case BinOp::Div: os << " / "; break;
      }
      emit_vexpr(*e.rhs, os);
      os << ')';
      return;
    }
    case VKind::Un:
      switch (e.uop) {
        case UnOp::Neg:
          os << "(-";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
        case UnOp::Sqrt:
          os << "sqrt(";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
        case UnOp::Abs:
          os << "fabs(";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
      }
  }
  throw Error("emit_c: corrupt VExpr");
}

void pad(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

void emit_stmts(const StmtList& body, std::ostream& os, int depth);

/// Scalar names assigned anywhere in `body`.
void collect_written_scalars(const StmtList& body,
                             std::set<std::string>& out) {
  for (const auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign:
        if (!s->as_assign().lhs.is_array())
          out.insert(s->as_assign().lhs.name);
        break;
      case SKind::Loop:
        collect_written_scalars(s->as_loop().body, out);
        break;
      case SKind::If:
        collect_written_scalars(s->as_if().then_body, out);
        collect_written_scalars(s->as_if().else_body, out);
        break;
    }
  }
}

/// Emit one planned loop as an outlined worker plus an in-place dispatch
/// block.  The worker computes its contiguous chunk of [lb..ub] from
/// (tid, nt) alone, so the partition — and therefore every result bit —
/// depends only on the thread count, never on scheduling.  Reduction
/// accumulators become per-thread partials combined in tid order after
/// the join; other written scalars are privatized, with the thread owning
/// the last non-empty chunk writing the (serially last) value back.
void emit_parallel_loop(const Loop& l, const ParallelLoop& pl,
                        std::ostream& os, int depth) {
  ParEmit& pe = *g_par;
  const int id = pe.next_id++;
  const std::string env_ty = "struct blk_par_env_" + std::to_string(id);
  const std::string fn = "blk_par_body_" + std::to_string(id);

  std::set<std::string> written;
  collect_written_scalars(l.body, written);
  std::set<std::string> accs(pl.accumulators.begin(),
                             pl.accumulators.end());
  if (pl.reduction)
    for (const auto& a : accs) written.erase(a);
  const char* identity =
      pl.combine == ParallelLoop::Combine::Product ? "1.0" : "0.0";
  const char* comb_op =
      pl.combine == ParallelLoop::Combine::Product ? " * " : " + ";

  // --- the env struct and worker, hoisted above the kernel function ---
  std::ostringstream& aux = pe.aux;
  aux << env_ty << " {\n  long blk_lb, blk_ub, blk_st;\n";
  for (const auto& prm : g_prog->params()) aux << "  long " << prm << ";\n";
  for (const auto& v : pe.enclosing) aux << "  long " << v << ";\n";
  for (const auto& [name, decl] : g_prog->arrays())
    aux << "  double* " << name << "_buf;\n";
  for (const auto& sc : g_prog->scalars()) aux << "  double " << sc << ";\n";
  for (const auto& sc : written) aux << "  double blk_out_" << sc << ";\n";
  if (pl.reduction)
    for (const auto& a : accs) aux << "  double* blk_red_" << a << ";\n";
  aux << "};\n\n";

  aux << "static void " << fn
      << "(void* blk_varg, int blk_tid, int blk_nt) {\n"
      << "  " << env_ty << "* blk_e = (" << env_ty << "*)blk_varg;\n";
  for (const auto& prm : g_prog->params())
    aux << "  const long " << prm << " = blk_e->" << prm << ";\n";
  for (const auto& v : pe.enclosing)
    aux << "  const long " << v << " = blk_e->" << v << ";\n";
  for (const auto& [name, decl] : g_prog->arrays())
    aux << "  double* const " << name << "_buf = blk_e->" << name
        << "_buf;\n";
  for (const auto& sc : g_prog->scalars()) {
    if (pl.reduction && accs.contains(sc))
      // tid 0 carries the accumulator's incoming value so one thread
      // reproduces the serial kernel bit-for-bit; the rest start at the
      // operation's identity.
      aux << "  double " << sc << " = blk_tid == 0 ? blk_e->" << sc
          << " : " << identity << ";\n";
    else
      aux << "  double " << sc << " = blk_e->" << sc << ";\n";
  }
  aux << "  const long blk_lb = blk_e->blk_lb, blk_ub = blk_e->blk_ub, "
         "blk_st = blk_e->blk_st;\n"
      << "  const long blk_trip = blk_st > 0 ? (blk_ub - blk_lb) / blk_st "
         "+ 1 : (blk_lb - blk_ub) / (-blk_st) + 1;\n"
      << "  const long blk_chunk = blk_trip / blk_nt, blk_rem = blk_trip "
         "% blk_nt;\n"
      << "  const long blk_begin = (long)blk_tid * blk_chunk + "
         "(blk_tid < blk_rem ? blk_tid : blk_rem);\n"
      << "  const long blk_count = blk_chunk + (blk_tid < blk_rem ? 1 : "
         "0);\n"
      << "  for (long blk_i = 0; blk_i < blk_count; ++blk_i) {\n"
      << "    long " << l.var << " = blk_lb + (blk_begin + blk_i) * "
         "blk_st;\n";
  {
    const bool saved = pe.outlining;
    pe.outlining = true;
    emit_stmts(l.body, aux, 2);
    pe.outlining = saved;
  }
  aux << "  }\n";
  if (pl.reduction)
    for (const auto& a : accs)
      aux << "  blk_e->blk_red_" << a << "[blk_tid] = " << a << ";\n";
  if (!written.empty()) {
    aux << "  if (blk_count > 0 && blk_tid == (blk_trip < (long)blk_nt ? "
           "blk_trip : (long)blk_nt) - 1) {\n";
    for (const auto& sc : written)
      aux << "    blk_e->blk_out_" << sc << " = " << sc << ";\n";
    aux << "  }\n";
  }
  aux << "}\n\n";

  // --- the dispatch block, in place of the serial for ---
  pad(os, depth);
  os << "{ /* parallel DO " << l.var << " */\n";
  int d = depth + 1;
  pad(os, d);
  os << "long blk_lb = ";
  emit_iexpr(*l.lb, os);
  os << ", blk_ub = ";
  emit_iexpr(*l.ub, os);
  os << ", blk_st = ";
  emit_iexpr(*l.step, os);
  os << ";\n";
  pad(os, d);
  os << "long blk_trip = blk_st > 0 ? (blk_ub >= blk_lb ? (blk_ub - "
        "blk_lb) / blk_st + 1 : 0) : (blk_lb >= blk_ub ? (blk_lb - "
        "blk_ub) / (-blk_st) + 1 : 0);\n";
  pad(os, d);
  os << "if (blk_trip > 0) {\n";
  ++d;
  pad(os, d);
  os << "int blk_nt = blk_pool_threads();\n";
  pad(os, d);
  os << env_ty << " blk_env;\n";
  pad(os, d);
  os << "blk_env.blk_lb = blk_lb; blk_env.blk_ub = blk_ub; "
        "blk_env.blk_st = blk_st;\n";
  for (const auto& prm : g_prog->params()) {
    pad(os, d);
    os << "blk_env." << prm << " = " << prm << ";\n";
  }
  for (const auto& v : pe.enclosing) {
    pad(os, d);
    os << "blk_env." << v << " = " << v << ";\n";
  }
  for (const auto& [name, decl] : g_prog->arrays()) {
    pad(os, d);
    os << "blk_env." << name << "_buf = " << name << "_buf;\n";
  }
  for (const auto& sc : g_prog->scalars()) {
    pad(os, d);
    os << "blk_env." << sc << " = " << sc << ";\n";
  }
  if (pl.reduction)
    for (const auto& a : accs) {
      pad(os, d);
      os << "double blk_red_" << a << "[blk_nt];\n";
      pad(os, d);
      os << "blk_env.blk_red_" << a << " = blk_red_" << a << ";\n";
    }
  // Tiny trips run inline — same chunks, same tid order, same bits —
  // so wavefront tips never pay a pool dispatch.
  pad(os, d);
  os << "if (blk_nt == 1 || blk_trip < 4L * blk_nt) {\n";
  pad(os, d + 1);
  os << "for (int blk_t = 0; blk_t < blk_nt; ++blk_t) " << fn
     << "(&blk_env, blk_t, blk_nt);\n";
  pad(os, d);
  os << "} else {\n";
  pad(os, d + 1);
  os << "blk_pool_run(" << fn << ", &blk_env, blk_nt);\n";
  pad(os, d);
  os << "}\n";
  if (pl.reduction)
    for (const auto& a : accs) {
      pad(os, d);
      os << a << " = blk_red_" << a << "[0];\n";
      pad(os, d);
      os << "for (int blk_t = 1; blk_t < blk_nt; ++blk_t) " << a << " = "
         << a << comb_op << "blk_red_" << a << "[blk_t];\n";
    }
  for (const auto& sc : written) {
    pad(os, d);
    os << sc << " = blk_env.blk_out_" << sc << ";\n";
  }
  --d;
  pad(os, d);
  os << "}\n";
  pad(os, depth);
  os << "}\n";
}

void emit_stmts(const StmtList& body, std::ostream& os, int depth) {
  for (const auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign: {
        const Assign& a = s->as_assign();
        pad(os, depth);
        if (a.lhs.is_array()) {
          os << a.lhs.name << '(';
          for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
            if (i) os << ", ";
            emit_iexpr(*a.lhs.subs[i], os);
          }
          os << ')';
        } else {
          os << a.lhs.name;
        }
        os << " = ";
        emit_vexpr(*a.rhs, os);
        os << ";\n";
        break;
      }
      case SKind::Loop: {
        const Loop& l = s->as_loop();
        const ParallelLoop* pl = nullptr;
        if (g_par) {
          const int idx = g_par->occ[l.var]++;
          if (!g_par->outlining)
            for (const ParallelLoop& cand : g_par->plan->loops)
              if (cand.var == l.var && cand.occurrence == idx) {
                pl = &cand;
                break;
              }
        }
        if (pl) {
          emit_parallel_loop(l, *pl, os, depth);
          break;
        }
        pad(os, depth);
        os << "for (long " << l.var << " = ";
        emit_iexpr(*l.lb, os);
        os << ", " << l.var << "_ub = ";
        emit_iexpr(*l.ub, os);
        os << ", " << l.var << "_st = ";
        emit_iexpr(*l.step, os);
        os << "; " << l.var << "_st > 0 ? " << l.var << " <= " << l.var
           << "_ub : " << l.var << " >= " << l.var << "_ub; " << l.var
           << " += " << l.var << "_st) {\n";
        if (g_par) g_par->enclosing.push_back(l.var);
        emit_stmts(l.body, os, depth + 1);
        if (g_par) g_par->enclosing.pop_back();
        pad(os, depth);
        os << "}\n";
        break;
      }
      case SKind::If: {
        const If& f = s->as_if();
        pad(os, depth);
        static constexpr const char* kOps[] = {"==", "!=", "<",
                                               "<=", ">",  ">="};
        os << "if (";
        emit_vexpr(*f.cond.lhs, os);
        os << ' ' << kOps[static_cast<int>(f.cond.op)] << ' ';
        emit_vexpr(*f.cond.rhs, os);
        os << ") {\n";
        emit_stmts(f.then_body, os, depth + 1);
        if (!f.else_body.empty()) {
          pad(os, depth);
          os << "} else {\n";
          emit_stmts(f.else_body, os, depth + 1);
        }
        pad(os, depth);
        os << "}\n";
        break;
      }
    }
  }
}

/// The persistent fork-join pool compiled into every parallel kernel.
/// Workers are joinable and a destructor-attribute shutdown joins them
/// before dlclose unmaps the code they run — no thread ever outlives the
/// shared object.  The main thread always works as tid 0; helper tids are
/// fixed at creation, so the iteration-space partition never depends on
/// which thread got scheduled first.
///
/// Dispatch is spin-then-sleep: wavefront kernels enter a parallel region
/// per diagonal (O(N) regions of O(N) work each), so a condvar roundtrip
/// per region would swamp the region itself.  Workers spin on the atomic
/// generation counter for BLK_PAR_SPIN loads (a few milliseconds — the
/// budget must dwarf the inter-region gap, or workers doze off mid-sweep
/// and every region pays a futex roundtrip) before falling back to the
/// condvar, and the main thread spins on the join counter with
/// sched_yield.  All cross-thread handoff is through
/// release stores / acquire loads of `gen` and `remaining`, so the plain
/// fn/env/nt fields and the workers' array writes are properly ordered —
/// the emitted code is clean under -fsanitize=thread.
void emit_pool(std::ostream& os, int threads) {
  os << "#include <pthread.h>\n"
        "#include <sched.h>\n"
        "#include <stdatomic.h>\n"
        "#include <stdlib.h>\n"
        "#include <unistd.h>\n\n"
        "#define BLK_PAR_THREADS "
     << threads
     << "\n"
        "#define BLK_PAR_MAX_THREADS 256\n"
        "#define BLK_PAR_SPIN 4000000L\n\n"
        "typedef void (*blk_par_fn_t)(void*, int, int);\n\n"
        "static struct {\n"
        "  pthread_mutex_t mu;\n"
        "  pthread_cond_t go;\n"
        "  pthread_t workers[BLK_PAR_MAX_THREADS];\n"
        "  int nt;        /* latched worker count incl. the main thread "
        "*/\n"
        "  int launched;  /* helper threads created so far */\n"
        "  _Atomic int quit;\n"
        "  _Atomic unsigned long gen;\n"
        "  _Atomic int remaining;\n"
        "  _Atomic int sleeping;\n"
        "  blk_par_fn_t fn;\n"
        "  void* env;\n"
        "} blk_pool = {PTHREAD_MUTEX_INITIALIZER, "
        "PTHREAD_COND_INITIALIZER};\n\n"
        "static void* blk_pool_worker(void* blk_arg) {\n"
        "  const int blk_tid = (int)(long)blk_arg;\n"
        "  unsigned long blk_seen = 0UL;\n"
        "  for (;;) {\n"
        "    long blk_spins = 0;\n"
        "    while (atomic_load_explicit(&blk_pool.gen, "
        "memory_order_acquire) == blk_seen &&\n"
        "           !atomic_load_explicit(&blk_pool.quit, "
        "memory_order_acquire)) {\n"
        "      if (++blk_spins < BLK_PAR_SPIN) continue;\n"
        "      pthread_mutex_lock(&blk_pool.mu);\n"
        "      atomic_fetch_add_explicit(&blk_pool.sleeping, 1, "
        "memory_order_relaxed);\n"
        "      while (atomic_load_explicit(&blk_pool.gen, "
        "memory_order_acquire) == blk_seen &&\n"
        "             !atomic_load_explicit(&blk_pool.quit, "
        "memory_order_acquire))\n"
        "        pthread_cond_wait(&blk_pool.go, &blk_pool.mu);\n"
        "      atomic_fetch_sub_explicit(&blk_pool.sleeping, 1, "
        "memory_order_relaxed);\n"
        "      pthread_mutex_unlock(&blk_pool.mu);\n"
        "      break;\n"
        "    }\n"
        "    if (atomic_load_explicit(&blk_pool.quit, "
        "memory_order_acquire)) break;\n"
        "    blk_seen = atomic_load_explicit(&blk_pool.gen, "
        "memory_order_acquire);\n"
        "    blk_par_fn_t blk_fn = blk_pool.fn;\n"
        "    void* blk_env = blk_pool.env;\n"
        "    int blk_nt = blk_pool.nt;\n"
        "    blk_fn(blk_env, blk_tid, blk_nt);\n"
        "    atomic_fetch_sub_explicit(&blk_pool.remaining, 1, "
        "memory_order_acq_rel);\n"
        "  }\n"
        "  return 0;\n"
        "}\n\n"
        "static int blk_pool_threads(void) {\n"
        "  if (blk_pool.nt > 0) return blk_pool.nt;\n"
        "  int blk_nt = BLK_PAR_THREADS;\n"
        "  if (blk_nt <= 0) {\n"
        "    const char* blk_s = getenv(\"BLK_THREADS\");\n"
        "    if (blk_s && *blk_s) blk_nt = atoi(blk_s);\n"
        "    if (blk_nt <= 0) blk_nt = "
        "(int)sysconf(_SC_NPROCESSORS_ONLN);\n"
        "    if (blk_nt <= 0) blk_nt = 1;\n"
        "  }\n"
        "  if (blk_nt > BLK_PAR_MAX_THREADS) blk_nt = "
        "BLK_PAR_MAX_THREADS;\n"
        "  blk_pool.nt = blk_nt;\n"
        "  return blk_nt;\n"
        "}\n\n"
        "static void blk_pool_run(blk_par_fn_t blk_fn, void* blk_env, int "
        "blk_nt) {\n"
        "  if (blk_pool.launched < blk_nt - 1) {\n"
        "    pthread_mutex_lock(&blk_pool.mu);\n"
        "    while (blk_pool.launched < blk_nt - 1) {\n"
        "      if (pthread_create(&blk_pool.workers[blk_pool.launched], "
        "0,\n"
        "                         blk_pool_worker,\n"
        "                         (void*)(long)(blk_pool.launched + 1)) != "
        "0)\n"
        "        break;\n"
        "      ++blk_pool.launched;\n"
        "    }\n"
        "    pthread_mutex_unlock(&blk_pool.mu);\n"
        "  }\n"
        "  const int blk_helpers =\n"
        "      blk_pool.launched < blk_nt - 1 ? blk_pool.launched : blk_nt "
        "- 1;\n"
        "  blk_pool.fn = blk_fn;\n"
        "  blk_pool.env = blk_env;\n"
        "  atomic_store_explicit(&blk_pool.remaining, blk_helpers, "
        "memory_order_relaxed);\n"
        "  atomic_fetch_add_explicit(&blk_pool.gen, 1, "
        "memory_order_release);\n"
        "  if (atomic_load_explicit(&blk_pool.sleeping, "
        "memory_order_relaxed) > 0) {\n"
        "    pthread_mutex_lock(&blk_pool.mu);\n"
        "    pthread_cond_broadcast(&blk_pool.go);\n"
        "    pthread_mutex_unlock(&blk_pool.mu);\n"
        "  }\n"
        "  blk_fn(blk_env, 0, blk_nt);\n"
        "  /* chunks of helpers that failed to launch run here, in tid "
        "order */\n"
        "  for (int blk_t = blk_helpers + 1; blk_t < blk_nt; ++blk_t)\n"
        "    blk_fn(blk_env, blk_t, blk_nt);\n"
        "  long blk_spins = 0;\n"
        "  while (atomic_load_explicit(&blk_pool.remaining, "
        "memory_order_acquire) > 0)\n"
        "    if (++blk_spins > BLK_PAR_SPIN) sched_yield();\n"
        "}\n\n"
        "__attribute__((destructor)) static void blk_pool_shutdown(void) "
        "{\n"
        "  pthread_mutex_lock(&blk_pool.mu);\n"
        "  atomic_store_explicit(&blk_pool.quit, 1, "
        "memory_order_release);\n"
        "  pthread_cond_broadcast(&blk_pool.go);\n"
        "  pthread_mutex_unlock(&blk_pool.mu);\n"
        "  for (int blk_t = 0; blk_t < blk_pool.launched; ++blk_t)\n"
        "    pthread_join(blk_pool.workers[blk_t], 0);\n"
        "  blk_pool.launched = 0;\n"
        "}\n\n";
}

/// Renders a guard Term as C over the blk_params block.  Throws on a
/// parameter name the program does not declare.
std::string guard_term_c(const GuardOptions::Term& t, const Program& p) {
  std::ostringstream os;
  if (t.param.empty()) {
    os << t.add << 'L';
    return os.str();
  }
  std::size_t idx = 0;
  for (const auto& prm : p.params()) {
    if (prm == t.param) {
      os << "blk_params[" << idx << ']';
      if (t.add != 0) os << " + " << t.add << 'L';
      return os.str();
    }
    ++idx;
  }
  throw Error("emit_c: guard names unknown parameter '" + t.param + "'");
}

/// Index of array `name` in the program's name-ordered array map (the
/// blk_arrays slot the entry ABI assigns it).  Throws on unknown names.
std::size_t guard_array_slot(const std::string& name, const Program& p) {
  std::size_t idx = 0;
  for (const auto& [an, decl] : p.arrays()) {
    if (an == name) return idx;
    ++idx;
  }
  throw Error("emit_c: guard names unknown array '" + name + "'");
}

std::string guard_term_text(const GuardOptions::Term& t) {
  std::ostringstream os;
  if (t.param.empty()) {
    os << t.add;
  } else {
    os << t.param;
    if (t.add > 0) os << '+' << t.add;
    if (t.add < 0) os << t.add;
  }
  return os.str();
}

/// Emit the guard function: sequential checks, first failure wins.
void emit_guards(const Program& p, const std::string& fn_name,
                 const GuardOptions& g, std::ostream& os) {
  os << "\nlong " << fn_name
     << "_guard(const long* blk_params, double* const* blk_arrays) {\n"
     << "  (void)blk_params; (void)blk_arrays;\n";
  std::size_t code = 0;
  for (const auto& eq : g.param_eq) {
    GuardOptions::Term t{eq.param, 0};
    os << "  if (!(" << guard_term_c(t, p) << " == " << eq.value
       << "L)) return " << ++code << "L;\n";
  }
  for (const auto& d : g.divides) {
    const std::string den = guard_term_c(d.divisor, p);
    const std::string num = guard_term_c(d.dividend, p);
    os << "  if (!((" << den << ") != 0L && (" << num << ") % (" << den
       << ") == 0L)) return " << ++code << "L;\n";
  }
  for (const auto& r : g.ranges) {
    GuardOptions::Term t{r.param, 0};
    const std::string v = guard_term_c(t, p);
    os << "  if (!(" << r.lo << "L <= " << v << " && " << v
       << " <= " << r.hi << "L)) return " << ++code << "L;\n";
  }
  for (const auto& na : g.noalias) {
    os << "  if (!(blk_arrays[" << guard_array_slot(na.a, p)
       << "] != blk_arrays[" << guard_array_slot(na.b, p) << "])) return "
       << ++code << "L;\n";
  }
  os << "  return 0L;\n}\n";
}

}  // namespace

std::string GuardOptions::summary() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  for (const auto& eq : param_eq) {
    sep();
    os << eq.param << '=' << eq.value;
  }
  for (const auto& d : divides) {
    sep();
    os << guard_term_text(d.divisor) << '|' << guard_term_text(d.dividend);
  }
  for (const auto& r : ranges) {
    sep();
    os << r.lo << "<=" << r.param << "<=" << r.hi;
  }
  for (const auto& na : noalias) {
    sep();
    os << na.a << "!&" << na.b;
  }
  return os.str();
}

std::string GuardOptions::describe(std::size_t code) const {
  if (code == 0 || code > size())
    throw Error("GuardOptions::describe: code out of range");
  std::size_t i = code - 1;
  if (i < param_eq.size()) {
    const auto& eq = param_eq[i];
    return eq.param + " == " + std::to_string(eq.value);
  }
  i -= param_eq.size();
  if (i < divides.size()) {
    const auto& d = divides[i];
    return guard_term_text(d.dividend) + " % " + guard_term_text(d.divisor) +
           " == 0";
  }
  i -= divides.size();
  if (i < ranges.size()) {
    const auto& r = ranges[i];
    return std::to_string(r.lo) + " <= " + r.param +
           " <= " + std::to_string(r.hi);
  }
  i -= ranges.size();
  const auto& na = noalias[i];
  return na.a + " !alias " + na.b;
}

std::string ParallelOptions::summary() const {
  std::ostringstream os;
  os << "threads=" << threads << " loops=[";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const ParallelLoop& l = loops[i];
    if (i) os << ' ';
    os << l.var << '#' << l.occurrence;
    if (l.reduction) {
      os << ":red("
         << (l.combine == ParallelLoop::Combine::Product ? "product"
                                                         : "sum");
      for (const auto& a : l.accumulators) os << ':' << a;
      os << ')';
    }
  }
  os << ']';
  return os.str();
}

std::string emit_c(const Program& p, const std::string& fn_name,
                   const EmitOptions& opts) {
  g_prog = &p;
  const bool par = opts.parallel && opts.parallel->enabled();
  ParEmit pe;
  if (par) {
    pe.plan = opts.parallel;
    g_par = &pe;
  }
  std::ostringstream os;
  const bool guarded = opts.guards && opts.guards->enabled();
  os << "/* generated by blockability emit_c */\n";
  if (par) os << "/* parallel: " << opts.parallel->summary() << " */\n";
  if (guarded) os << "/* guards: " << opts.guards->summary() << " */\n";
  os << "#include <math.h>\n"
     << "#define BLK_MIN(a, b) ((a) < (b) ? (a) : (b))\n"
     << "#define BLK_MAX(a, b) ((a) > (b) ? (a) : (b))\n"
     << "/* floor/ceil division toward -inf/+inf for positive divisors */\n"
     << "#define BLK_FDIV(a, b) ((a) >= 0 ? (a) / (b) "
        ": -((-(a) + (b) - 1) / (b)))\n"
     << "#define BLK_CDIV(a, b) ((a) >= 0 ? ((a) + (b) - 1) / (b) "
        ": -((-(a)) / (b)))\n\n";

  // Column-major element macros with the declared lower bounds folded in.
  for (const auto& [name, decl] : p.arrays()) {
    os << "#define " << name << '(';
    for (std::size_t d = 0; d < decl.rank(); ++d) {
      if (d) os << ", ";
      os << 'i' << d;
    }
    os << ") " << name << "_buf[";
    std::string stride;
    for (std::size_t d = 0; d < decl.rank(); ++d) {
      if (d) os << " + ";
      os << '(';
      os << "(i" << d << ") - (";
      emit_iexpr(*decl.dims[d].lb, os);
      os << ')';
      os << ')';
      if (!stride.empty()) os << " * " << stride;
      // Extend the running stride by this dimension's extent.
      std::ostringstream ext;
      ext << "((";
      emit_iexpr(*decl.dims[d].ub, ext);
      ext << ") - (";
      emit_iexpr(*decl.dims[d].lb, ext);
      ext << ") + 1)";
      stride = stride.empty() ? ext.str() : stride + " * " + ext.str();
    }
    os << "]\n";
  }
  os << '\n';
  if (par) emit_pool(os, opts.parallel->threads);

  // The body walk fills pe.aux with outlined workers, which must precede
  // the kernel function in the unit — so emit the body first, then splice.
  std::ostringstream body;
  {
    std::size_t slot = 0;
    for (const auto& sc : p.scalars()) {
      body << "  double " << sc << " = ";
      if (opts.scalar_io)
        body << "blk_scalars[" << slot++ << "]";
      else
        body << "0.0";
      body << ";\n";
    }
  }
  emit_stmts(p.body, body, 1);
  if (opts.scalar_io) {
    std::size_t slot = 0;
    for (const auto& sc : p.scalars())
      body << "  blk_scalars[" << slot++ << "] = " << sc << ";\n";
  }

  if (par) os << pe.aux.str();
  os << "void " << fn_name << '(';
  bool first = true;
  for (const auto& prm : p.params()) {
    if (!first) os << ", ";
    first = false;
    os << "long " << prm;
  }
  for (const auto& [name, decl] : p.arrays()) {
    if (!first) os << ", ";
    first = false;
    os << "double* " << name << "_buf";
  }
  if (opts.scalar_io) {
    if (!first) os << ", ";
    first = false;
    os << "double* blk_scalars";
  }
  os << ") {\n" << body.str() << "}\n";

  if (opts.entry_wrapper) {
    // The uniform ABI: parameter values in declaration order, array base
    // pointers in name order, the scalar block last.  One symbol with one
    // signature, whatever the program's shape.
    os << "\nvoid " << fn_name
       << "_entry(const long* blk_params, double* const* blk_arrays, "
          "double* blk_scalars) {\n"
       << "  (void)blk_params; (void)blk_arrays; (void)blk_scalars;\n"
       << "  " << fn_name << '(';
    bool f2 = true;
    std::size_t pi = 0;
    for (const auto& prm : p.params()) {
      (void)prm;
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_params[" << pi++ << ']';
    }
    std::size_t ai = 0;
    for (const auto& arr : p.arrays()) {
      (void)arr;
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_arrays[" << ai++ << ']';
    }
    if (opts.scalar_io) {
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_scalars";
    }
    os << ");\n}\n";
  }
  if (guarded) emit_guards(p, fn_name, *opts.guards, os);
  g_prog = nullptr;
  g_par = nullptr;
  return os.str();
}

}  // namespace blk::ir
