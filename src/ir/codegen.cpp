#include "ir/codegen.hpp"

#include <sstream>

#include "ir/error.hpp"

namespace blk::ir {

namespace {

// Scalar variables live as C doubles; using one as an index needs a cast.
const Program* g_prog = nullptr;

void emit_iexpr(const IExpr& e, std::ostream& os);

void emit_binary(const IExpr& e, std::ostream& os, const char* op) {
  os << '(';
  emit_iexpr(*e.lhs, os);
  os << op;
  emit_iexpr(*e.rhs, os);
  os << ')';
}

void emit_iexpr(const IExpr& e, std::ostream& os) {
  switch (e.kind) {
    case IKind::Const:
      os << e.value << 'L';
      return;
    case IKind::Var:
      if (g_prog && g_prog->has_scalar(e.name))
        os << "(long)" << e.name;
      else
        os << e.name;
      return;
    case IKind::Add:
      emit_binary(e, os, " + ");
      return;
    case IKind::Sub:
      emit_binary(e, os, " - ");
      return;
    case IKind::Mul:
      emit_binary(e, os, " * ");
      return;
    case IKind::Min:
      os << "BLK_MIN(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::Max:
      os << "BLK_MAX(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::FloorDiv:
      os << "BLK_FDIV(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::CeilDiv:
      os << "BLK_CDIV(";
      emit_iexpr(*e.lhs, os);
      os << ", ";
      emit_iexpr(*e.rhs, os);
      os << ')';
      return;
    case IKind::ArrayElem:
      os << "(long)" << e.name << '(';
      emit_iexpr(*e.lhs, os);
      os << ')';
      return;
  }
  throw Error("emit_c: corrupt IExpr");
}

void emit_vexpr(const VExpr& e, std::ostream& os) {
  switch (e.kind) {
    case VKind::Const: {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << e.cval;
      std::string s = tmp.str();
      os << s;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos)
        os << ".0";
      return;
    }
    case VKind::ScalarRef:
      os << e.name;
      return;
    case VKind::IndexVal:
      os << "(double)(";
      emit_iexpr(*e.index, os);
      os << ')';
      return;
    case VKind::ArrayRef: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.subs.size(); ++i) {
        if (i) os << ", ";
        emit_iexpr(*e.subs[i], os);
      }
      os << ')';
      return;
    }
    case VKind::Bin: {
      os << '(';
      emit_vexpr(*e.lhs, os);
      switch (e.bop) {
        case BinOp::Add: os << " + "; break;
        case BinOp::Sub: os << " - "; break;
        case BinOp::Mul: os << " * "; break;
        case BinOp::Div: os << " / "; break;
      }
      emit_vexpr(*e.rhs, os);
      os << ')';
      return;
    }
    case VKind::Un:
      switch (e.uop) {
        case UnOp::Neg:
          os << "(-";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
        case UnOp::Sqrt:
          os << "sqrt(";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
        case UnOp::Abs:
          os << "fabs(";
          emit_vexpr(*e.lhs, os);
          os << ')';
          return;
      }
  }
  throw Error("emit_c: corrupt VExpr");
}

void pad(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

void emit_stmts(const StmtList& body, std::ostream& os, int depth) {
  for (const auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign: {
        const Assign& a = s->as_assign();
        pad(os, depth);
        if (a.lhs.is_array()) {
          os << a.lhs.name << '(';
          for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
            if (i) os << ", ";
            emit_iexpr(*a.lhs.subs[i], os);
          }
          os << ')';
        } else {
          os << a.lhs.name;
        }
        os << " = ";
        emit_vexpr(*a.rhs, os);
        os << ";\n";
        break;
      }
      case SKind::Loop: {
        const Loop& l = s->as_loop();
        pad(os, depth);
        os << "for (long " << l.var << " = ";
        emit_iexpr(*l.lb, os);
        os << ", " << l.var << "_ub = ";
        emit_iexpr(*l.ub, os);
        os << ", " << l.var << "_st = ";
        emit_iexpr(*l.step, os);
        os << "; " << l.var << "_st > 0 ? " << l.var << " <= " << l.var
           << "_ub : " << l.var << " >= " << l.var << "_ub; " << l.var
           << " += " << l.var << "_st) {\n";
        emit_stmts(l.body, os, depth + 1);
        pad(os, depth);
        os << "}\n";
        break;
      }
      case SKind::If: {
        const If& f = s->as_if();
        pad(os, depth);
        static constexpr const char* kOps[] = {"==", "!=", "<",
                                               "<=", ">",  ">="};
        os << "if (";
        emit_vexpr(*f.cond.lhs, os);
        os << ' ' << kOps[static_cast<int>(f.cond.op)] << ' ';
        emit_vexpr(*f.cond.rhs, os);
        os << ") {\n";
        emit_stmts(f.then_body, os, depth + 1);
        if (!f.else_body.empty()) {
          pad(os, depth);
          os << "} else {\n";
          emit_stmts(f.else_body, os, depth + 1);
        }
        pad(os, depth);
        os << "}\n";
        break;
      }
    }
  }
}

}  // namespace

std::string emit_c(const Program& p, const std::string& fn_name,
                   const EmitOptions& opts) {
  g_prog = &p;
  std::ostringstream os;
  os << "/* generated by blockability emit_c */\n"
     << "#include <math.h>\n"
     << "#define BLK_MIN(a, b) ((a) < (b) ? (a) : (b))\n"
     << "#define BLK_MAX(a, b) ((a) > (b) ? (a) : (b))\n"
     << "/* floor/ceil division toward -inf/+inf for positive divisors */\n"
     << "#define BLK_FDIV(a, b) ((a) >= 0 ? (a) / (b) "
        ": -((-(a) + (b) - 1) / (b)))\n"
     << "#define BLK_CDIV(a, b) ((a) >= 0 ? ((a) + (b) - 1) / (b) "
        ": -((-(a)) / (b)))\n\n";

  // Column-major element macros with the declared lower bounds folded in.
  for (const auto& [name, decl] : p.arrays()) {
    os << "#define " << name << '(';
    for (std::size_t d = 0; d < decl.rank(); ++d) {
      if (d) os << ", ";
      os << 'i' << d;
    }
    os << ") " << name << "_buf[";
    std::string stride;
    for (std::size_t d = 0; d < decl.rank(); ++d) {
      if (d) os << " + ";
      os << '(';
      os << "(i" << d << ") - (";
      emit_iexpr(*decl.dims[d].lb, os);
      os << ')';
      os << ')';
      if (!stride.empty()) os << " * " << stride;
      // Extend the running stride by this dimension's extent.
      std::ostringstream ext;
      ext << "((";
      emit_iexpr(*decl.dims[d].ub, ext);
      ext << ") - (";
      emit_iexpr(*decl.dims[d].lb, ext);
      ext << ") + 1)";
      stride = stride.empty() ? ext.str() : stride + " * " + ext.str();
    }
    os << "]\n";
  }
  os << '\n';

  os << "void " << fn_name << '(';
  bool first = true;
  for (const auto& prm : p.params()) {
    if (!first) os << ", ";
    first = false;
    os << "long " << prm;
  }
  for (const auto& [name, decl] : p.arrays()) {
    if (!first) os << ", ";
    first = false;
    os << "double* " << name << "_buf";
  }
  if (opts.scalar_io) {
    if (!first) os << ", ";
    first = false;
    os << "double* blk_scalars";
  }
  os << ") {\n";
  {
    std::size_t slot = 0;
    for (const auto& sc : p.scalars()) {
      os << "  double " << sc << " = ";
      if (opts.scalar_io)
        os << "blk_scalars[" << slot++ << "]";
      else
        os << "0.0";
      os << ";\n";
    }
  }
  emit_stmts(p.body, os, 1);
  if (opts.scalar_io) {
    std::size_t slot = 0;
    for (const auto& sc : p.scalars())
      os << "  blk_scalars[" << slot++ << "] = " << sc << ";\n";
  }
  os << "}\n";

  if (opts.entry_wrapper) {
    // The uniform ABI: parameter values in declaration order, array base
    // pointers in name order, the scalar block last.  One symbol with one
    // signature, whatever the program's shape.
    os << "\nvoid " << fn_name
       << "_entry(const long* blk_params, double* const* blk_arrays, "
          "double* blk_scalars) {\n"
       << "  (void)blk_params; (void)blk_arrays; (void)blk_scalars;\n"
       << "  " << fn_name << '(';
    bool f2 = true;
    std::size_t pi = 0;
    for (const auto& prm : p.params()) {
      (void)prm;
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_params[" << pi++ << ']';
    }
    std::size_t ai = 0;
    for (const auto& arr : p.arrays()) {
      (void)arr;
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_arrays[" << ai++ << ']';
    }
    if (opts.scalar_io) {
      if (!f2) os << ", ";
      f2 = false;
      os << "blk_scalars";
    }
    os << ");\n}\n";
  }
  g_prog = nullptr;
  return os.str();
}

}  // namespace blk::ir
