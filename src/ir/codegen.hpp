// C code generation from the IR.
//
// The paper's closing argument is that a machine-independent source plus
// compiler technology "could be used to port the library from machine to
// machine".  This backend closes that loop for the reproduction: any IR
// program — point or transformed — can be emitted as a portable C
// function and compiled by the host toolchain.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace blk::ir {

/// Emit `p` as a standalone C99 translation unit defining
///
///   void <fn_name>(<long params...>, <double* arrays...>);
///
/// Parameters appear in declaration order, arrays in name order (each
/// passed as a flat column-major buffer whose extent matches the declared
/// dimensions).  Scalars become local doubles; integer-valued scalars used
/// as subscripts are truncated with (long) casts, matching the
/// interpreter's semantics.  The unit is self-contained (includes math.h
/// and defines MIN/MAX/floor-division helpers).
[[nodiscard]] std::string emit_c(const Program& p,
                                 const std::string& fn_name);

}  // namespace blk::ir
