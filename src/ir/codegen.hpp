// C code generation from the IR.
//
// The paper's closing argument is that a machine-independent source plus
// compiler technology "could be used to port the library from machine to
// machine".  This backend closes that loop for the reproduction: any IR
// program — point or transformed — can be emitted as a portable C
// function and compiled by the host toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace blk::ir {

/// One loop the emitter may run across threads.  Loops are named
/// positionally — `var` plus the pre-order occurrence index among loops
/// with that variable — matching sa::CertifyResult::find, so a plan built
/// from certification verdicts survives the Loop* invalidation that later
/// cloning causes.  The emitter trusts the plan: building one is the
/// certifier's job (the pm `parallelize(check)` pass), never the
/// emitter's.
struct ParallelLoop {
  std::string var;
  int occurrence = 0;  ///< n-th loop (pre-order) with this variable

  /// Reduction lowering: thread-local partials per accumulator, combined
  /// in fixed tid order after the join (tid 0's partial is seeded with the
  /// accumulator's incoming value, every other with the identity), so a
  /// given thread count always produces the same bits and one thread
  /// reproduces the serial kernel exactly.
  bool reduction = false;
  enum class Combine : std::uint8_t { Sum, Product };
  Combine combine = Combine::Sum;
  std::vector<std::string> accumulators;  ///< scalar names (Reduction only)
};

/// The parallel execution plan threaded into emit_c.  An empty `loops`
/// plan emits the ordinary serial kernel.
struct ParallelOptions {
  /// Worker count: > 0 bakes a fixed count into the kernel; 0 defers to
  /// runtime ($BLK_THREADS, else the online CPU count).  Either way the
  /// strategy is part of the emitted source, so serial and parallel
  /// variants (and different fixed counts) get distinct cache keys.
  int threads = 0;
  std::vector<ParallelLoop> loops;

  [[nodiscard]] bool enabled() const { return !loops.empty(); }
  /// One-line rendering ("threads=4 loops=[J#0 red(sum:S)@I#0]") stamped
  /// into the emitted source header — the cache-key salt.
  [[nodiscard]] std::string summary() const;
};

/// Entry guards: the runtime checks a specialized kernel's assumptions at
/// call time.  When EmitOptions::guards is set, emit_c additionally
/// defines
///
///   long <fn_name>_guard(const long* blk_params,
///                        double* const* blk_arrays);
///
/// taking the entry wrapper's first two arguments and returning 0 when
/// every assumption holds, else the 1-based index of the first failing
/// guard (an index into describe()).  The guard never touches array
/// contents — it is O(#guards) per call — and deciding what to do on
/// failure (fall back to the generic kernel or the VM) is the caller's
/// job: emitted C cannot re-enter the interpreter.
struct GuardOptions {
  /// A small affine term over one parameter: params[param] + add, or the
  /// constant `add` when param is empty.
  struct Term {
    std::string param;
    long add = 0;
    [[nodiscard]] bool operator==(const Term&) const = default;
  };
  /// params[param] == value.
  struct ParamEq {
    std::string param;
    long value = 0;
  };
  /// divisor != 0 && dividend % divisor == 0.
  struct Divides {
    Term dividend;
    Term divisor;
    [[nodiscard]] bool operator==(const Divides&) const = default;
  };
  /// lo <= params[param] <= hi.
  struct Range {
    std::string param;
    long lo = 0;
    long hi = 0;
  };
  /// blk_arrays[a] != blk_arrays[b] (distinct base pointers).
  struct NoAlias {
    std::string a;
    std::string b;
  };

  std::vector<ParamEq> param_eq;
  std::vector<Divides> divides;
  std::vector<Range> ranges;
  std::vector<NoAlias> noalias;

  [[nodiscard]] bool enabled() const {
    return !(param_eq.empty() && divides.empty() && ranges.empty() &&
             noalias.empty());
  }
  /// Total guard count; failure codes run 1..size() in the order
  /// param_eq, divides, ranges, noalias.
  [[nodiscard]] std::size_t size() const {
    return param_eq.size() + divides.size() + ranges.size() +
           noalias.size();
  }
  /// One-line rendering stamped into the emitted source header (part of
  /// the cache-key material alongside the assumption-set hash).
  [[nodiscard]] std::string summary() const;
  /// Human-readable text of guard `code` (1-based, as returned by the
  /// emitted guard function).  Throws on out-of-range codes.
  [[nodiscard]] std::string describe(std::size_t code) const;
};

/// Emission knobs for consumers beyond the human-readable default.  The
/// native JIT engine (src/native/) uses both: `scalar_io` makes scalar
/// state round-trip through the caller exactly like the VM's
/// sync_scalars_in/out, and `entry_wrapper` provides one fixed-signature
/// symbol a dlopen caller can bind without per-program FFI.
struct EmitOptions {
  /// Append a trailing `double* blk_scalars` parameter; scalars are
  /// initialized from it (declaration order of Program::scalars()) and
  /// written back before return, instead of starting at 0.0 and being
  /// discarded.
  bool scalar_io = false;
  /// Also emit
  ///
  ///   void <fn_name>_entry(const long* blk_params,
  ///                        double* const* blk_arrays,
  ///                        double* blk_scalars);
  ///
  /// forwarding to <fn_name> with parameters in declaration order and
  /// arrays in name order — the uniform ABI the JIT dlsyms.
  bool entry_wrapper = false;
  /// When non-null and enabled(), each planned loop is outlined and run
  /// on a persistent pthread pool with a deterministic fixed partition of
  /// its iteration space (contiguous chunks in tid order).  Non-reduction
  /// loops are bit-identical to the serial kernel at any thread count;
  /// reductions are bit-identical at one thread and bit-stable across
  /// runs at any fixed count.  The emitted unit then needs -pthread.
  const ParallelOptions* parallel = nullptr;
  /// When non-null and enabled(), also emit <fn_name>_guard (see
  /// GuardOptions).  Guard terms name program parameters / arrays; an
  /// unknown name throws.
  const GuardOptions* guards = nullptr;
};

/// Emit `p` as a standalone C99 translation unit defining
///
///   void <fn_name>(<long params...>, <double* arrays...>);
///
/// Parameters appear in declaration order, arrays in name order (each
/// passed as a flat column-major buffer whose extent matches the declared
/// dimensions).  Scalars become local doubles; integer-valued scalars used
/// as subscripts are truncated with (long) casts, matching the
/// interpreter's semantics.  The unit is self-contained (includes math.h
/// and defines MIN/MAX/floor-division helpers).
[[nodiscard]] std::string emit_c(const Program& p,
                                 const std::string& fn_name,
                                 const EmitOptions& opts = {});

}  // namespace blk::ir
