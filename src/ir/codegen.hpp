// C code generation from the IR.
//
// The paper's closing argument is that a machine-independent source plus
// compiler technology "could be used to port the library from machine to
// machine".  This backend closes that loop for the reproduction: any IR
// program — point or transformed — can be emitted as a portable C
// function and compiled by the host toolchain.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace blk::ir {

/// Emission knobs for consumers beyond the human-readable default.  The
/// native JIT engine (src/native/) uses both: `scalar_io` makes scalar
/// state round-trip through the caller exactly like the VM's
/// sync_scalars_in/out, and `entry_wrapper` provides one fixed-signature
/// symbol a dlopen caller can bind without per-program FFI.
struct EmitOptions {
  /// Append a trailing `double* blk_scalars` parameter; scalars are
  /// initialized from it (declaration order of Program::scalars()) and
  /// written back before return, instead of starting at 0.0 and being
  /// discarded.
  bool scalar_io = false;
  /// Also emit
  ///
  ///   void <fn_name>_entry(const long* blk_params,
  ///                        double* const* blk_arrays,
  ///                        double* blk_scalars);
  ///
  /// forwarding to <fn_name> with parameters in declaration order and
  /// arrays in name order — the uniform ABI the JIT dlsyms.
  bool entry_wrapper = false;
};

/// Emit `p` as a standalone C99 translation unit defining
///
///   void <fn_name>(<long params...>, <double* arrays...>);
///
/// Parameters appear in declaration order, arrays in name order (each
/// passed as a flat column-major buffer whose extent matches the declared
/// dimensions).  Scalars become local doubles; integer-valued scalars used
/// as subscripts are truncated with (long) casts, matching the
/// interpreter's semantics.  The unit is self-contained (includes math.h
/// and defines MIN/MAX/floor-division helpers).
[[nodiscard]] std::string emit_c(const Program& p,
                                 const std::string& fn_name,
                                 const EmitOptions& opts = {});

}  // namespace blk::ir
