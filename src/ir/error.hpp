// Error type shared by every blockability library component.
#pragma once

#include <stdexcept>
#include <string>

namespace blk {

/// Exception thrown on contract violations anywhere in the library:
/// malformed IR, illegal transformation requests, unbound symbols during
/// interpretation, parse errors, and so on.  Carries a plain message; the
/// throwing site prefixes it with its component name (e.g. "interchange: ...").
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace blk
