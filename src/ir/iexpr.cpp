#include "ir/iexpr.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "ir/affine.hpp"
#include "ir/error.hpp"

namespace blk::ir {

namespace {

[[nodiscard]] bool is_const(const IExprPtr& e, long v) {
  return e->kind == IKind::Const && e->value == v;
}

[[nodiscard]] long floordiv(long a, long b) {
  long q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

[[nodiscard]] long ceildiv(long a, long b) { return -floordiv(-a, b); }

}  // namespace

IExprPtr iconst(long v) { return std::make_shared<IExpr>(IKind::Const, v); }

IExprPtr ivar(std::string name) {
  if (name.empty()) throw Error("ivar: empty variable name");
  return std::make_shared<IExpr>(IKind::Var, std::move(name));
}

IExprPtr iadd(IExprPtr a, IExprPtr b) {
  if (a->kind == IKind::Const && b->kind == IKind::Const)
    return iconst(a->value + b->value);
  if (is_const(a, 0)) return b;
  if (is_const(b, 0)) return a;
  return std::make_shared<IExpr>(IKind::Add, std::move(a), std::move(b));
}

IExprPtr isub(IExprPtr a, IExprPtr b) {
  if (a->kind == IKind::Const && b->kind == IKind::Const)
    return iconst(a->value - b->value);
  if (is_const(b, 0)) return a;
  return std::make_shared<IExpr>(IKind::Sub, std::move(a), std::move(b));
}

IExprPtr imul(IExprPtr a, IExprPtr b) {
  if (a->kind == IKind::Const && b->kind == IKind::Const)
    return iconst(a->value * b->value);
  if (is_const(a, 1)) return b;
  if (is_const(b, 1)) return a;
  if (is_const(a, 0) || is_const(b, 0)) return iconst(0);
  return std::make_shared<IExpr>(IKind::Mul, std::move(a), std::move(b));
}

IExprPtr imin(IExprPtr a, IExprPtr b) {
  if (a->kind == IKind::Const && b->kind == IKind::Const)
    return iconst(std::min(a->value, b->value));
  // MIN(x, x) and affine-comparable operands resolve in simplify(); here we
  // only fold the trivial identical-pointer case.
  if (a == b) return a;
  return std::make_shared<IExpr>(IKind::Min, std::move(a), std::move(b));
}

IExprPtr imax(IExprPtr a, IExprPtr b) {
  if (a->kind == IKind::Const && b->kind == IKind::Const)
    return iconst(std::max(a->value, b->value));
  if (a == b) return a;
  return std::make_shared<IExpr>(IKind::Max, std::move(a), std::move(b));
}

IExprPtr ifloordiv(IExprPtr a, long b) {
  if (b <= 0) throw Error("ifloordiv: divisor must be positive");
  if (b == 1) return a;
  if (a->kind == IKind::Const) return iconst(floordiv(a->value, b));
  return std::make_shared<IExpr>(IKind::FloorDiv, std::move(a), iconst(b));
}

IExprPtr iceildiv(IExprPtr a, long b) {
  if (b <= 0) throw Error("iceildiv: divisor must be positive");
  if (b == 1) return a;
  if (a->kind == IKind::Const) return iconst(ceildiv(a->value, b));
  return std::make_shared<IExpr>(IKind::CeilDiv, std::move(a), iconst(b));
}

IExprPtr ielem(std::string array, IExprPtr index) {
  if (array.empty()) throw Error("ielem: empty array name");
  auto e = std::make_shared<IExpr>(IKind::ArrayElem, std::move(index),
                                   nullptr);
  e->name = std::move(array);
  return e;
}

long evaluate(const IExpr& e, const Env& env) {
  switch (e.kind) {
    case IKind::Const:
      return e.value;
    case IKind::Var: {
      auto it = env.find(e.name);
      if (it == env.end()) throw Error("evaluate: unbound variable " + e.name);
      return it->second;
    }
    case IKind::Add:
      return evaluate(*e.lhs, env) + evaluate(*e.rhs, env);
    case IKind::Sub:
      return evaluate(*e.lhs, env) - evaluate(*e.rhs, env);
    case IKind::Mul:
      return evaluate(*e.lhs, env) * evaluate(*e.rhs, env);
    case IKind::Min:
      return std::min(evaluate(*e.lhs, env), evaluate(*e.rhs, env));
    case IKind::Max:
      return std::max(evaluate(*e.lhs, env), evaluate(*e.rhs, env));
    case IKind::FloorDiv: {
      long d = evaluate(*e.rhs, env);
      if (d <= 0) throw Error("evaluate: FloorDiv by non-positive value");
      return floordiv(evaluate(*e.lhs, env), d);
    }
    case IKind::CeilDiv: {
      long d = evaluate(*e.rhs, env);
      if (d <= 0) throw Error("evaluate: CeilDiv by non-positive value");
      return ceildiv(evaluate(*e.lhs, env), d);
    }
    case IKind::ArrayElem:
      throw Error("evaluate: array-element index " + e.name +
                  "(...) requires the interpreter (runtime store)");
  }
  throw Error("evaluate: corrupt IExpr kind");
}

IExprPtr substitute(const IExprPtr& e, const std::string& name,
                    const IExprPtr& replacement) {
  switch (e->kind) {
    case IKind::Const:
      return e;
    case IKind::Var:
      return e->name == name ? replacement : e;
    case IKind::ArrayElem: {
      IExprPtr ix = substitute(e->lhs, name, replacement);
      if (ix == e->lhs) return e;
      return ielem(e->name, std::move(ix));
    }
    default: {
      IExprPtr l = substitute(e->lhs, name, replacement);
      IExprPtr r = substitute(e->rhs, name, replacement);
      if (l == e->lhs && r == e->rhs) return e;
      switch (e->kind) {
        case IKind::Add:
          return iadd(std::move(l), std::move(r));
        case IKind::Sub:
          return isub(std::move(l), std::move(r));
        case IKind::Mul:
          return imul(std::move(l), std::move(r));
        case IKind::Min:
          return imin(std::move(l), std::move(r));
        case IKind::Max:
          return imax(std::move(l), std::move(r));
        case IKind::FloorDiv:
          if (r->kind != IKind::Const)
            throw Error("substitute: FloorDiv divisor became symbolic");
          return ifloordiv(std::move(l), r->value);
        case IKind::CeilDiv:
          if (r->kind != IKind::Const)
            throw Error("substitute: CeilDiv divisor became symbolic");
          return iceildiv(std::move(l), r->value);
        default:
          throw Error("substitute: corrupt IExpr kind");
      }
    }
  }
}

IExprPtr simplify(const IExprPtr& e) {
  // Affine subtrees canonicalize wholesale.
  if (auto a = as_affine(*e)) return from_affine(*a);
  switch (e->kind) {
    case IKind::Const:
    case IKind::Var:
      return e;
    case IKind::ArrayElem:
      return ielem(e->name, simplify(e->lhs));
    case IKind::Min:
    case IKind::Max: {
      // Flatten same-kind chains, then prune operands dominated by another
      // (their affine difference has a provable constant sign).
      const IKind kind = e->kind;
      std::vector<IExprPtr> ops;
      std::function<void(const IExprPtr&)> flatten =
          [&](const IExprPtr& node) {
            if (node->kind == kind) {
              flatten(node->lhs);
              flatten(node->rhs);
            } else {
              ops.push_back(simplify(node));
            }
          };
      flatten(e->lhs);
      flatten(e->rhs);
      std::vector<bool> dead(ops.size(), false);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (dead[i]) continue;
        for (std::size_t j = 0; j < ops.size(); ++j) {
          if (i == j || dead[j]) continue;
          auto d = affine_difference(ops[j], ops[i]);
          if (!d) continue;
          auto s = constant_sign(*d);
          if (!s) continue;
          // ops[j] - ops[i] >= 0: in a MIN, ops[j] is redundant; in a MAX,
          // ops[i] is.  Ties (== 0) drop the later operand.
          bool drop_j = (kind == IKind::Min) ? (*s >= 0) : (*s <= 0);
          if (*s == 0 && j < i) drop_j = false;
          if (drop_j)
            dead[j] = true;
          else
            dead[i] = true;
          if (dead[i]) break;
        }
      }
      IExprPtr acc;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (dead[i]) continue;
        if (!acc)
          acc = ops[i];
        else
          acc = kind == IKind::Min ? imin(std::move(acc), ops[i])
                                   : imax(std::move(acc), ops[i]);
      }
      return acc;
    }
    case IKind::FloorDiv:
      return ifloordiv(simplify(e->lhs), e->rhs->value);
    case IKind::CeilDiv:
      return iceildiv(simplify(e->lhs), e->rhs->value);
    default: {
      // Non-affine Add/Sub/Mul (e.g. MIN below a sum): simplify children.
      IExprPtr l = simplify(e->lhs);
      IExprPtr r = simplify(e->rhs);
      switch (e->kind) {
        case IKind::Add:
          return iadd(std::move(l), std::move(r));
        case IKind::Sub:
          return isub(std::move(l), std::move(r));
        case IKind::Mul:
          return imul(std::move(l), std::move(r));
        default:
          throw Error("simplify: corrupt IExpr kind");
      }
    }
  }
}

namespace {

[[nodiscard]] bool structurally_equal(const IExpr& a, const IExpr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case IKind::Const:
      return a.value == b.value;
    case IKind::Var:
      return a.name == b.name;
    case IKind::ArrayElem:
      return a.name == b.name && structurally_equal(*a.lhs, *b.lhs);
    default:
      return structurally_equal(*a.lhs, *b.lhs) &&
             structurally_equal(*a.rhs, *b.rhs);
  }
}

}  // namespace

bool provably_equal(const IExprPtr& a, const IExprPtr& b) {
  if (auto d = affine_difference(a, b)) {
    auto s = constant_sign(*d);
    return s.has_value() && *s == 0;
  }
  return structurally_equal(*simplify(a), *simplify(b));
}

void free_vars(const IExpr& e, std::vector<std::string>& out) {
  switch (e.kind) {
    case IKind::Const:
      return;
    case IKind::Var:
      if (std::find(out.begin(), out.end(), e.name) == out.end())
        out.push_back(e.name);
      return;
    case IKind::ArrayElem:
      free_vars(*e.lhs, out);
      return;
    default:
      free_vars(*e.lhs, out);
      free_vars(*e.rhs, out);
  }
}

std::vector<std::string> free_vars(const IExprPtr& e) {
  std::vector<std::string> out;
  free_vars(*e, out);
  return out;
}

bool mentions(const IExpr& e, const std::string& name) {
  switch (e.kind) {
    case IKind::Const:
      return false;
    case IKind::Var:
      return e.name == name;
    case IKind::ArrayElem:
      return mentions(*e.lhs, name);
    default:
      return mentions(*e.lhs, name) || mentions(*e.rhs, name);
  }
}

namespace {

// Precedence: additive 1, multiplicative 2, atoms 3.
void print(const IExpr& e, std::ostream& os, int parent_prec) {
  switch (e.kind) {
    case IKind::Const:
      os << e.value;
      return;
    case IKind::Var:
      os << e.name;
      return;
    case IKind::Add:
    case IKind::Sub: {
      bool paren = parent_prec > 1;
      if (paren) os << '(';
      print(*e.lhs, os, 1);
      os << (e.kind == IKind::Add ? '+' : '-');
      // Right side of '-' binds tighter to avoid a-b+c ambiguity.
      print(*e.rhs, os, e.kind == IKind::Sub ? 2 : 1);
      if (paren) os << ')';
      return;
    }
    case IKind::Mul: {
      bool paren = parent_prec > 2;
      if (paren) os << '(';
      print(*e.lhs, os, 2);
      os << '*';
      print(*e.rhs, os, 2);
      if (paren) os << ')';
      return;
    }
    case IKind::Min:
    case IKind::Max: {
      // Flatten nested same-kind chains into one variadic call:
      // MIN(MIN(a,b),c) prints as MIN(a,b,c).
      os << (e.kind == IKind::Min ? "MIN(" : "MAX(");
      bool first = true;
      std::function<void(const IExpr&)> emit = [&](const IExpr& node) {
        if (node.kind == e.kind) {
          emit(*node.lhs);
          emit(*node.rhs);
          return;
        }
        if (!first) os << ',';
        first = false;
        print(node, os, 0);
      };
      emit(e);
      os << ')';
      return;
    }
    case IKind::FloorDiv:
    case IKind::CeilDiv:
      os << (e.kind == IKind::FloorDiv ? "FLOOR(" : "CEIL(");
      print(*e.lhs, os, 0);
      os << '/';
      print(*e.rhs, os, 0);
      os << ')';
      return;
    case IKind::ArrayElem:
      os << e.name << '(';
      print(*e.lhs, os, 0);
      os << ')';
      return;
  }
}

}  // namespace

std::string to_string(const IExpr& e) {
  std::ostringstream os;
  print(e, os, 0);
  return os.str();
}

}  // namespace blk::ir
