// Symbolic integer index expressions.
//
// Index expressions appear in loop bounds and array subscripts.  They are
// immutable trees shared through `IExprPtr`; all mutation-like operations
// (substitution, simplification) build new trees.  The grammar is the one the
// paper needs: affine terms over loop variables and symbolic parameters,
// closed under MIN, MAX and (floor/ceiling) division by constants — exactly
// the forms produced by strip mining, triangular interchange and index-set
// splitting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace blk::ir {

enum class IKind : std::uint8_t {
  Const,     ///< integer literal
  Var,       ///< loop variable or symbolic parameter (e.g. I, N, KS)
  Add,       ///< lhs + rhs
  Sub,       ///< lhs - rhs
  Mul,       ///< lhs * rhs (affine only when one side is constant)
  Min,       ///< MIN(lhs, rhs)
  Max,       ///< MAX(lhs, rhs)
  FloorDiv,  ///< floor(lhs / rhs), rhs a positive constant
  CeilDiv,   ///< ceil(lhs / rhs), rhs a positive constant
  ArrayElem, ///< name(lhs): integer-valued array element used as an index
             ///< (IF-inspection's KLB(KN)/KUB(KN) bounds); opaque to all
             ///< symbolic analyses, evaluated only by the interpreter
};

class IExpr;
using IExprPtr = std::shared_ptr<const IExpr>;

/// One node of an index-expression tree.  Construct through the factory
/// functions below, which fold constants eagerly.
class IExpr {
 public:
  IKind kind;
  long value = 0;     ///< IKind::Const payload
  std::string name;   ///< IKind::Var payload
  IExprPtr lhs, rhs;  ///< binary payloads

  IExpr(IKind k, long v) : kind(k), value(v) {}
  IExpr(IKind k, std::string n) : kind(k), name(std::move(n)) {}
  IExpr(IKind k, IExprPtr l, IExprPtr r)
      : kind(k), lhs(std::move(l)), rhs(std::move(r)) {}
};

// ---- Factories -------------------------------------------------------------

[[nodiscard]] IExprPtr iconst(long v);
[[nodiscard]] IExprPtr ivar(std::string name);
[[nodiscard]] IExprPtr iadd(IExprPtr a, IExprPtr b);
[[nodiscard]] IExprPtr isub(IExprPtr a, IExprPtr b);
[[nodiscard]] IExprPtr imul(IExprPtr a, IExprPtr b);
[[nodiscard]] IExprPtr imin(IExprPtr a, IExprPtr b);
[[nodiscard]] IExprPtr imax(IExprPtr a, IExprPtr b);
[[nodiscard]] IExprPtr ifloordiv(IExprPtr a, long b);
[[nodiscard]] IExprPtr iceildiv(IExprPtr a, long b);
[[nodiscard]] IExprPtr ielem(std::string array, IExprPtr index);

// Convenience mixed-operand overloads.
[[nodiscard]] inline IExprPtr iadd(IExprPtr a, long b) {
  return iadd(std::move(a), iconst(b));
}
[[nodiscard]] inline IExprPtr isub(IExprPtr a, long b) {
  return isub(std::move(a), iconst(b));
}
[[nodiscard]] inline IExprPtr imul(long a, IExprPtr b) {
  return imul(iconst(a), std::move(b));
}

// ---- Queries and algebra ---------------------------------------------------

/// Environment binding variable names to concrete values.
using Env = std::map<std::string, long>;

/// Evaluate under `env`; throws blk::Error on an unbound variable or a
/// division by a non-positive divisor.
[[nodiscard]] long evaluate(const IExpr& e, const Env& env);
[[nodiscard]] inline long evaluate(const IExprPtr& e, const Env& env) {
  return evaluate(*e, env);
}

/// Replace every occurrence of variable `name` by `replacement`.
[[nodiscard]] IExprPtr substitute(const IExprPtr& e, const std::string& name,
                                  const IExprPtr& replacement);

/// Simplify: constant-fold, canonicalize affine subtrees, and resolve
/// MIN/MAX whose operands differ by a known constant.
[[nodiscard]] IExprPtr simplify(const IExprPtr& e);

/// True when the two expressions are provably equal for every assignment of
/// the free variables (affine difference identically zero, or structurally
/// identical after simplification).  A `false` answer means "not provably
/// equal", not "provably different".
[[nodiscard]] bool provably_equal(const IExprPtr& a, const IExprPtr& b);

/// Collect the free variable names of `e` into `out` (preserving first-seen
/// order, no duplicates).
void free_vars(const IExpr& e, std::vector<std::string>& out);
[[nodiscard]] std::vector<std::string> free_vars(const IExprPtr& e);

/// True when variable `name` occurs in `e`.
[[nodiscard]] bool mentions(const IExpr& e, const std::string& name);

/// Render in Fortran-like syntax, e.g. "MIN(K+KS-1,N-1)".
[[nodiscard]] std::string to_string(const IExpr& e);
[[nodiscard]] inline std::string to_string(const IExprPtr& e) {
  return to_string(*e);
}

}  // namespace blk::ir
