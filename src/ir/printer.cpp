#include "ir/printer.hpp"

#include <sstream>

namespace blk::ir {

namespace {

void print_list(const StmtList& body, std::ostream& os, int indent);

void pad(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void print_stmt(const Stmt& s, std::ostream& os, int indent) {
  switch (s.kind()) {
    case SKind::Assign: {
      const Assign& a = s.as_assign();
      pad(os, indent);
      if (a.label != 0) os << a.label << ": ";
      os << a.lhs.name;
      if (a.lhs.is_array()) {
        os << '(';
        for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
          if (i) os << ',';
          os << to_string(a.lhs.subs[i]);
        }
        os << ')';
      }
      os << " = " << to_string(*a.rhs) << '\n';
      return;
    }
    case SKind::Loop: {
      const Loop& l = s.as_loop();
      pad(os, indent);
      os << "DO " << l.var << " = " << to_string(l.lb) << ", "
         << to_string(l.ub);
      if (!(l.step->kind == IKind::Const && l.step->value == 1))
        os << ", " << to_string(l.step);
      os << '\n';
      print_list(l.body, os, indent + 1);
      pad(os, indent);
      os << "ENDDO\n";
      return;
    }
    case SKind::If: {
      const If& f = s.as_if();
      pad(os, indent);
      os << "IF (" << to_string(f.cond) << ") THEN\n";
      print_list(f.then_body, os, indent + 1);
      if (!f.else_body.empty()) {
        pad(os, indent);
        os << "ELSE\n";
        print_list(f.else_body, os, indent + 1);
      }
      pad(os, indent);
      os << "ENDIF\n";
      return;
    }
  }
}

void print_list(const StmtList& body, std::ostream& os, int indent) {
  for (const auto& s : body) print_stmt(*s, os, indent);
}

}  // namespace

std::string print(const StmtList& body, int indent) {
  std::ostringstream os;
  print_list(body, os, indent);
  return os.str();
}

std::string print(const Program& p) {
  std::ostringstream os;
  for (const auto& name : p.params()) os << "PARAMETER " << name << '\n';
  for (const auto& [name, decl] : p.arrays()) {
    os << "REAL*8 " << name << '(';
    for (std::size_t i = 0; i < decl.dims.size(); ++i) {
      if (i) os << ',';
      const Dim& d = decl.dims[i];
      if (d.lb->kind == IKind::Const && d.lb->value == 1)
        os << to_string(d.ub);
      else
        os << to_string(d.lb) << ':' << to_string(d.ub);
    }
    os << ")\n";
  }
  for (const auto& name : p.scalars()) os << "REAL*8 " << name << '\n';
  if (!p.params().empty() || !p.arrays().empty() || !p.scalars().empty())
    os << '\n';
  os << print(p.body, 0);
  return os.str();
}

}  // namespace blk::ir
