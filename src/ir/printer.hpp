// Fortran-style pretty printer.  The output format is stable and is used by
// golden tests that compare automatically derived loop nests against the
// paper's figures.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace blk::ir {

/// Render a statement list with 2-space indentation per nesting level.
/// Assign labels print as a leading "nn: " tag.
[[nodiscard]] std::string print(const StmtList& body, int indent = 0);

/// Render the whole program: declarations header then body.
[[nodiscard]] std::string print(const Program& p);

}  // namespace blk::ir
