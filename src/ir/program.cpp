#include "ir/program.hpp"

#include <algorithm>

#include "ir/error.hpp"

namespace blk::ir {

ArrayDecl& Program::array(const std::string& name,
                          std::vector<IExprPtr> extents) {
  std::vector<Dim> dims;
  dims.reserve(extents.size());
  for (auto& e : extents) dims.push_back({.lb = iconst(1), .ub = std::move(e)});
  return array_bounds(name, std::move(dims));
}

ArrayDecl& Program::array_bounds(const std::string& name,
                                 std::vector<Dim> dims) {
  if (name.empty()) throw Error("Program::array: empty name");
  if (dims.empty()) throw Error("Program::array: rank-0 array " + name);
  if (arrays_.contains(name) || scalars_.contains(name))
    throw Error("Program::array: duplicate declaration of " + name);
  auto [it, ok] =
      arrays_.emplace(name, ArrayDecl{.name = name, .dims = std::move(dims)});
  (void)ok;
  return it->second;
}

void Program::scalar(const std::string& name) {
  if (arrays_.contains(name))
    throw Error("Program::scalar: " + name + " already declared as array");
  scalars_.insert(name);
}

void Program::param(const std::string& name) {
  if (std::find(params_.begin(), params_.end(), name) == params_.end())
    params_.push_back(name);
}

bool Program::has_array(const std::string& name) const {
  return arrays_.contains(name);
}
bool Program::has_scalar(const std::string& name) const {
  return scalars_.contains(name);
}
bool Program::has_param(const std::string& name) const {
  return std::find(params_.begin(), params_.end(), name) != params_.end();
}

const ArrayDecl& Program::array_decl(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end())
    throw Error("Program: undeclared array " + name);
  return it->second;
}

ArrayDecl& Program::mutable_array_decl(const std::string& name) {
  auto it = arrays_.find(name);
  if (it == arrays_.end())
    throw Error("Program: undeclared array " + name);
  return it->second;
}

Stmt& Program::add(StmtPtr s) {
  body.push_back(std::move(s));
  Stmt& ref = *body.back();
  // Track loop variable names for fresh_var.
  for_each_stmt(body, [this](Stmt& st) {
    if (st.kind() == SKind::Loop) used_vars_.insert(st.as_loop().var);
  });
  return ref;
}

Program Program::clone() const {
  Program p;
  p.arrays_ = arrays_;
  p.scalars_ = scalars_;
  p.params_ = params_;
  p.used_vars_ = used_vars_;
  p.body = clone_list(body);
  return p;
}

std::string Program::fresh_var(const std::string& base) const {
  // Recompute the used set from the current tree: transformations add loops
  // without going through add().
  std::set<std::string> used = used_vars_;
  for_each_stmt(body, [&used](const Stmt& st) {
    if (st.kind() == SKind::Loop) used.insert(st.as_loop().var);
  });
  for (const auto& p : params_) used.insert(p);
  std::string doubled = base + base;  // K -> KK, I -> II: the paper's style
  if (!used.contains(doubled) && !scalars_.contains(doubled) &&
      !arrays_.contains(doubled))
    return doubled;
  for (int i = 2;; ++i) {
    std::string cand = doubled + std::to_string(i);
    if (!used.contains(cand) && !scalars_.contains(cand) &&
        !arrays_.contains(cand))
      return cand;
  }
}

}  // namespace blk::ir
