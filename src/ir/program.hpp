// Program: a statement list plus the symbol table describing its arrays,
// scalars and symbolic integer parameters.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/stmt.hpp"

namespace blk::ir {

/// One array dimension with (possibly symbolic) inclusive bounds.
/// Fortran-style: `REAL A(0:N)` has lb=0, ub=N; `REAL A(N,N)` has lb=1.
struct Dim {
  IExprPtr lb;
  IExprPtr ub;
};

/// Declared array: name plus per-dimension bounds.
struct ArrayDecl {
  std::string name;
  std::vector<Dim> dims;

  [[nodiscard]] std::size_t rank() const { return dims.size(); }
};

/// A whole kernel: declarations plus top-level statements.
class Program {
 public:
  /// Declare a rank-k array with 1-based dimensions given by `extents`.
  ArrayDecl& array(const std::string& name, std::vector<IExprPtr> extents);
  /// Declare with explicit per-dimension lower/upper bounds.
  ArrayDecl& array_bounds(const std::string& name, std::vector<Dim> dims);
  /// Declare a scalar double variable.
  void scalar(const std::string& name);
  /// Declare a symbolic integer parameter (N, KS, ...).
  void param(const std::string& name);

  [[nodiscard]] bool has_array(const std::string& name) const;
  [[nodiscard]] bool has_scalar(const std::string& name) const;
  [[nodiscard]] bool has_param(const std::string& name) const;
  [[nodiscard]] const ArrayDecl& array_decl(const std::string& name) const;
  /// Mutable declaration access — the specializer folds pinned parameters
  /// into extents so emitted strides become compile-time constants.
  [[nodiscard]] ArrayDecl& mutable_array_decl(const std::string& name);

  [[nodiscard]] const std::map<std::string, ArrayDecl>& arrays() const {
    return arrays_;
  }
  [[nodiscard]] const std::set<std::string>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::vector<std::string>& params() const {
    return params_;
  }

  /// Append a top-level statement and return a reference to it.
  Stmt& add(StmtPtr s);

  StmtList body;

  /// Deep copy (declarations shared structurally; statements cloned).
  [[nodiscard]] Program clone() const;

  /// Pick a loop-variable name not used anywhere in the program, derived
  /// from `base` ("K" -> "KK", "KK2", ...).
  [[nodiscard]] std::string fresh_var(const std::string& base) const;

  /// Record that `name` is used as a loop variable (fresh_var avoids it).
  void note_var(const std::string& name) { used_vars_.insert(name); }

 private:
  std::map<std::string, ArrayDecl> arrays_;
  std::set<std::string> scalars_;
  std::vector<std::string> params_;
  std::set<std::string> used_vars_;
};

}  // namespace blk::ir
