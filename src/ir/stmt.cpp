#include "ir/stmt.hpp"

#include "ir/error.hpp"

namespace blk::ir {

Assign& Stmt::as_assign() {
  if (kind_ != SKind::Assign) throw Error("Stmt: not an Assign");
  return static_cast<Assign&>(*this);
}
const Assign& Stmt::as_assign() const {
  if (kind_ != SKind::Assign) throw Error("Stmt: not an Assign");
  return static_cast<const Assign&>(*this);
}
Loop& Stmt::as_loop() {
  if (kind_ != SKind::Loop) throw Error("Stmt: not a Loop");
  return static_cast<Loop&>(*this);
}
const Loop& Stmt::as_loop() const {
  if (kind_ != SKind::Loop) throw Error("Stmt: not a Loop");
  return static_cast<const Loop&>(*this);
}
If& Stmt::as_if() {
  if (kind_ != SKind::If) throw Error("Stmt: not an If");
  return static_cast<If&>(*this);
}
const If& Stmt::as_if() const {
  if (kind_ != SKind::If) throw Error("Stmt: not an If");
  return static_cast<const If&>(*this);
}

StmtPtr Assign::clone() const {
  return std::make_unique<Assign>(lhs, rhs, label);
}

StmtPtr Loop::clone() const {
  return std::make_unique<Loop>(var, lb, ub, step, clone_list(body));
}

long Loop::const_step() const {
  if (step->kind != IKind::Const)
    throw Error("Loop: symbolic step for loop " + var);
  return step->value;
}

StmtPtr If::clone() const {
  return std::make_unique<If>(cond, clone_list(then_body),
                              clone_list(else_body));
}

StmtPtr make_assign(LValue lhs, VExprPtr rhs, int label) {
  return std::make_unique<Assign>(std::move(lhs), std::move(rhs), label);
}

StmtPtr make_loop(std::string var, IExprPtr lb, IExprPtr ub, StmtList body,
                  IExprPtr step) {
  if (!step) step = iconst(1);
  return std::make_unique<Loop>(std::move(var), std::move(lb), std::move(ub),
                                std::move(step), std::move(body));
}

StmtPtr make_if(Cond c, StmtList then_body, StmtList else_body) {
  return std::make_unique<If>(std::move(c), std::move(then_body),
                              std::move(else_body));
}

StmtList clone_list(const StmtList& l) {
  StmtList out;
  out.reserve(l.size());
  for (const auto& s : l) out.push_back(s->clone());
  return out;
}

void for_each_stmt(StmtList& body, const std::function<void(Stmt&)>& fn) {
  for (auto& s : body) {
    fn(*s);
    switch (s->kind()) {
      case SKind::Loop:
        for_each_stmt(s->as_loop().body, fn);
        break;
      case SKind::If:
        for_each_stmt(s->as_if().then_body, fn);
        for_each_stmt(s->as_if().else_body, fn);
        break;
      case SKind::Assign:
        break;
    }
  }
}

namespace {

void for_each_stmt_const(const StmtList& body,
                         const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) {
    fn(*s);
    switch (s->kind()) {
      case SKind::Loop: {
        const Loop& l = s->as_loop();
        for_each_stmt_const(l.body, fn);
        break;
      }
      case SKind::If: {
        const If& f = s->as_if();
        for_each_stmt_const(f.then_body, fn);
        for_each_stmt_const(f.else_body, fn);
        break;
      }
      case SKind::Assign:
        break;
    }
  }
}

}  // namespace

void for_each_stmt(const StmtList& body,
                   const std::function<void(const Stmt&)>& fn) {
  for_each_stmt_const(body, fn);
}

LoopLocation find_loop(StmtList& body, const std::string& var) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    Stmt& s = *body[i];
    switch (s.kind()) {
      case SKind::Loop: {
        Loop& l = s.as_loop();
        if (l.var == var) return {.parent = &body, .index = i, .loop = &l};
        if (auto found = find_loop(l.body, var)) return found;
        break;
      }
      case SKind::If: {
        If& f = s.as_if();
        if (auto found = find_loop(f.then_body, var)) return found;
        if (auto found = find_loop(f.else_body, var)) return found;
        break;
      }
      case SKind::Assign:
        break;
    }
  }
  return {};
}

namespace {

bool collect_enclosing(StmtList& body, const Stmt& target,
                       std::vector<Loop*>& chain) {
  for (auto& s : body) {
    if (s.get() == &target) return true;
    switch (s->kind()) {
      case SKind::Loop: {
        Loop& l = s->as_loop();
        chain.push_back(&l);
        if (collect_enclosing(l.body, target, chain)) return true;
        chain.pop_back();
        break;
      }
      case SKind::If: {
        If& f = s->as_if();
        if (collect_enclosing(f.then_body, target, chain)) return true;
        if (collect_enclosing(f.else_body, target, chain)) return true;
        break;
      }
      case SKind::Assign:
        break;
    }
  }
  return false;
}

}  // namespace

std::vector<Loop*> enclosing_loops(StmtList& body, const Stmt& target) {
  std::vector<Loop*> chain;
  if (!collect_enclosing(body, target, chain))
    throw Error("enclosing_loops: target statement not found in tree");
  return chain;
}

void substitute_index_in_list(StmtList& body, const std::string& name,
                              const IExprPtr& replacement) {
  for (auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign: {
        Assign& a = s->as_assign();
        for (auto& sub : a.lhs.subs) sub = substitute(sub, name, replacement);
        a.rhs = substitute_index(a.rhs, name, replacement);
        break;
      }
      case SKind::Loop: {
        Loop& l = s->as_loop();
        if (l.var == name)
          throw Error("substitute_index_in_list: variable " + name +
                      " is shadowed by an inner loop");
        l.lb = substitute(l.lb, name, replacement);
        l.ub = substitute(l.ub, name, replacement);
        l.step = substitute(l.step, name, replacement);
        substitute_index_in_list(l.body, name, replacement);
        break;
      }
      case SKind::If: {
        If& f = s->as_if();
        f.cond.lhs = substitute_index(f.cond.lhs, name, replacement);
        f.cond.rhs = substitute_index(f.cond.rhs, name, replacement);
        substitute_index_in_list(f.then_body, name, replacement);
        substitute_index_in_list(f.else_body, name, replacement);
        break;
      }
    }
  }
}

void rename_loop_var(Loop& loop, const std::string& fresh) {
  if (loop.var == fresh) return;
  substitute_index_in_list(loop.body, loop.var, ivar(fresh));
  loop.var = fresh;
}

}  // namespace blk::ir
