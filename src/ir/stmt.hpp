// Statements: DO loops, IF statements and assignments.
//
// Statements form a mutable tree owned through std::unique_ptr — the loop
// transformations in src/transform edit this tree in place (splitting,
// distributing, interchanging, unrolling).  `clone()` provides the deep
// copies unrolling and splitting need.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/iexpr.hpp"
#include "ir/vexpr.hpp"

namespace blk::ir {

enum class SKind : std::uint8_t { Assign, Loop, If };

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Assignment target: a scalar variable or an array element.
struct LValue {
  std::string name;
  std::vector<IExprPtr> subs;  ///< empty for scalars

  [[nodiscard]] bool is_array() const { return !subs.empty(); }
};

/// Base statement.  Concrete kinds are Assign, Loop and If; dynamic casts go
/// through the as_*() accessors which throw on kind mismatch.
class Stmt {
 public:
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] SKind kind() const { return kind_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

  [[nodiscard]] class Assign& as_assign();
  [[nodiscard]] const class Assign& as_assign() const;
  [[nodiscard]] class Loop& as_loop();
  [[nodiscard]] const class Loop& as_loop() const;
  [[nodiscard]] class If& as_if();
  [[nodiscard]] const class If& as_if() const;

 protected:
  explicit Stmt(SKind k) : kind_(k) {}

 private:
  SKind kind_;
};

/// `lhs = rhs`, optionally labelled with the paper's statement number so
/// analyses and golden tests can refer to "statement 10".
class Assign final : public Stmt {
 public:
  LValue lhs;
  VExprPtr rhs;
  int label = 0;  ///< 0 = unlabelled

  Assign(LValue l, VExprPtr r, int lab = 0)
      : Stmt(SKind::Assign), lhs(std::move(l)), rhs(std::move(r)), label(lab) {}
  [[nodiscard]] StmtPtr clone() const override;
};

/// `DO var = lb, ub, step` with a body.  `step` is a (usually constant)
/// index expression; strip-mined outer loops carry step KS.
class Loop final : public Stmt {
 public:
  std::string var;
  IExprPtr lb, ub, step;
  StmtList body;

  Loop(std::string v, IExprPtr l, IExprPtr u, IExprPtr s, StmtList b = {})
      : Stmt(SKind::Loop),
        var(std::move(v)),
        lb(std::move(l)),
        ub(std::move(u)),
        step(std::move(s)),
        body(std::move(b)) {}
  [[nodiscard]] StmtPtr clone() const override;

  /// Constant step value; throws if the step is symbolic.
  [[nodiscard]] long const_step() const;
};

/// `IF (cond) THEN ... [ELSE ...] ENDIF`.
class If final : public Stmt {
 public:
  Cond cond;
  StmtList then_body;
  StmtList else_body;

  If(Cond c, StmtList t, StmtList e = {})
      : Stmt(SKind::If),
        cond(std::move(c)),
        then_body(std::move(t)),
        else_body(std::move(e)) {}
  [[nodiscard]] StmtPtr clone() const override;
};

// ---- Construction helpers --------------------------------------------------

[[nodiscard]] StmtPtr make_assign(LValue lhs, VExprPtr rhs, int label = 0);
[[nodiscard]] StmtPtr make_loop(std::string var, IExprPtr lb, IExprPtr ub,
                                StmtList body = {}, IExprPtr step = nullptr);
[[nodiscard]] StmtPtr make_if(Cond c, StmtList then_body,
                              StmtList else_body = {});
[[nodiscard]] StmtList clone_list(const StmtList& l);

// ---- Traversal -------------------------------------------------------------

/// Call `fn` on every statement in pre-order (loop/if bodies included).
void for_each_stmt(StmtList& body, const std::function<void(Stmt&)>& fn);
void for_each_stmt(const StmtList& body,
                   const std::function<void(const Stmt&)>& fn);

/// Location of a loop inside its parent statement list, precise enough for a
/// transformation to replace the loop with something else.
struct LoopLocation {
  StmtList* parent = nullptr;  ///< list physically containing the loop
  std::size_t index = 0;       ///< position within *parent
  Loop* loop = nullptr;

  [[nodiscard]] explicit operator bool() const { return loop != nullptr; }
};

/// Find the first loop with induction variable `var` (pre-order); a null
/// result has `loop == nullptr`.
[[nodiscard]] LoopLocation find_loop(StmtList& body, const std::string& var);

/// Chain of loops enclosing each statement: outermost first.  Populated by
/// `enclosing_loops` walking from the roots.
[[nodiscard]] std::vector<Loop*> enclosing_loops(StmtList& body,
                                                 const Stmt& target);

/// Rename the induction variable of `loop` to `fresh`, substituting through
/// bounds/subscripts/conditions of its body.
void rename_loop_var(Loop& loop, const std::string& fresh);

/// Substitute index variable `name` by `replacement` in every bound,
/// subscript and condition in `body` (does not touch loops that rebind
/// `name`, which would be shadowing — the IR forbids shadowing and this
/// function throws if it finds it).
void substitute_index_in_list(StmtList& body, const std::string& name,
                              const IExprPtr& replacement);

}  // namespace blk::ir
