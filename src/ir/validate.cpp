#include "ir/validate.hpp"

#include <algorithm>
#include <set>

#include "ir/error.hpp"

namespace blk::ir {

namespace {

struct Checker {
  const Program& p;
  std::vector<std::string> problems;
  std::vector<std::string> loop_vars;

  [[nodiscard]] bool known_index_name(const std::string& n) const {
    if (std::find(loop_vars.begin(), loop_vars.end(), n) != loop_vars.end())
      return true;
    return p.has_param(n) || p.has_scalar(n);
  }

  void complain(std::string what) { problems.push_back(std::move(what)); }

  void check_iexpr(const IExpr& e, const std::string& where) {
    switch (e.kind) {
      case IKind::Const:
        return;
      case IKind::Var:
        if (!known_index_name(e.name))
          complain("unknown index name " + e.name + " in " + where);
        return;
      case IKind::ArrayElem:
        if (!p.has_array(e.name))
          complain("ArrayElem names undeclared array " + e.name + " in " +
                   where);
        else if (p.array_decl(e.name).rank() != 1)
          complain("ArrayElem " + e.name + " must be rank 1 in " + where);
        check_iexpr(*e.lhs, where);
        return;
      default:
        if (!e.lhs) {
          complain("null child in index expression in " + where);
          return;
        }
        check_iexpr(*e.lhs, where);
        if (e.rhs) check_iexpr(*e.rhs, where);
        return;
    }
  }

  void check_ref(const std::string& name,
                 const std::vector<IExprPtr>& subs,
                 const std::string& where) {
    if (!p.has_array(name)) {
      complain("reference to undeclared array " + name + " in " + where);
      return;
    }
    const std::size_t rank = p.array_decl(name).rank();
    if (rank != subs.size()) {
      // Point at the first offending subscript position: the first excess
      // one, or the first missing one just past the reference's last.
      const std::size_t position = std::min(rank, subs.size()) + 1;
      complain("rank mismatch on " + name + " in " + where + ": declared " +
               std::to_string(rank) + ", used with " +
               std::to_string(subs.size()) + " (first " +
               (subs.size() > rank ? "excess" : "missing") +
               " subscript at position " + std::to_string(position) + ")");
    }
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (!subs[i]) {
        complain("null subscript on " + name + " at position " +
                 std::to_string(i + 1) + " in " + where);
        continue;
      }
      check_iexpr(*subs[i], "subscript " + std::to_string(i + 1) + " of " +
                                name + " in " + where);
    }
  }

  void check_vexpr(const VExpr& e, const std::string& where) {
    switch (e.kind) {
      case VKind::Const:
        return;
      case VKind::ScalarRef:
        if (!p.has_scalar(e.name))
          complain("read of undeclared scalar " + e.name + " in " + where);
        return;
      case VKind::IndexVal:
        check_iexpr(*e.index, where);
        return;
      case VKind::ArrayRef:
        check_ref(e.name, e.subs, where);
        return;
      case VKind::Bin:
        if (!e.lhs || !e.rhs) {
          complain("null operand in " + where);
          return;
        }
        check_vexpr(*e.lhs, where);
        check_vexpr(*e.rhs, where);
        return;
      case VKind::Un:
        if (!e.lhs) {
          complain("null operand in " + where);
          return;
        }
        check_vexpr(*e.lhs, where);
        return;
    }
  }

  void walk(const StmtList& body) {
    for (const auto& s : body) {
      if (!s) {
        complain("null statement in body");
        continue;
      }
      switch (s->kind()) {
        case SKind::Assign: {
          const Assign& a = s->as_assign();
          std::string where = "assignment to " + a.lhs.name;
          if (a.lhs.is_array())
            check_ref(a.lhs.name, a.lhs.subs, where);
          else if (!p.has_scalar(a.lhs.name))
            complain("write to undeclared scalar " + a.lhs.name);
          if (!a.rhs)
            complain("null RHS in " + where);
          else
            check_vexpr(*a.rhs, where);
          break;
        }
        case SKind::Loop: {
          const Loop& l = s->as_loop();
          std::string where = "bounds of loop " + l.var;
          if (std::find(loop_vars.begin(), loop_vars.end(), l.var) !=
              loop_vars.end())
            complain("loop " + l.var + " shadows an enclosing loop");
          if (p.has_scalar(l.var) || p.has_array(l.var))
            complain("loop variable " + l.var +
                     " collides with a declaration");
          check_iexpr(*l.lb, where);
          check_iexpr(*l.ub, where);
          check_iexpr(*l.step, where);
          loop_vars.push_back(l.var);
          walk(l.body);
          loop_vars.pop_back();
          break;
        }
        case SKind::If: {
          const If& f = s->as_if();
          check_vexpr(*f.cond.lhs, "IF condition");
          check_vexpr(*f.cond.rhs, "IF condition");
          walk(f.then_body);
          walk(f.else_body);
          break;
        }
      }
    }
  }
};

}  // namespace

std::vector<std::string> validate(const Program& p) {
  Checker c{.p = p, .problems = {}, .loop_vars = {}};
  c.walk(p.body);
  return std::move(c.problems);
}

void validate_or_throw(const Program& p) {
  auto problems = validate(p);
  if (problems.empty()) return;
  std::string msg = "validate: " + std::to_string(problems.size()) +
                    " problem(s):";
  for (const auto& q : problems) msg += "\n  " + q;
  throw Error(msg);
}

}  // namespace blk::ir
