// Structural validation of IR programs.
//
// Transformations edit the tree in place; this checker enforces the
// invariants they must maintain, so tests can assert well-formedness after
// every mutation instead of discovering corruption later as a confusing
// interpreter error.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace blk::ir {

/// Violations found by validate(); empty means well-formed.
///
/// Checked invariants:
///  * every array reference names a declared array with matching rank;
///  * every scalar read/write names a declared scalar — or, in index
///    position, a declared parameter / enclosing loop variable;
///  * no loop shadows an enclosing loop's variable;
///  * loop bounds and steps only reference parameters, enclosing loop
///    variables, declared scalars and declared arrays (ArrayElem);
///  * every statement tree node is non-null.
[[nodiscard]] std::vector<std::string> validate(const Program& p);

/// Throws blk::Error listing every violation; no-op when well-formed.
void validate_or_throw(const Program& p);

}  // namespace blk::ir
