#include "ir/vexpr.hpp"

#include <sstream>

#include "ir/error.hpp"

namespace blk::ir {

VExprPtr vconst(double v) {
  auto e = std::make_shared<VExpr>(VKind::Const);
  e->cval = v;
  return e;
}

VExprPtr vref(std::string array, std::vector<IExprPtr> subs) {
  if (array.empty()) throw Error("vref: empty array name");
  auto e = std::make_shared<VExpr>(VKind::ArrayRef);
  e->name = std::move(array);
  e->subs = std::move(subs);
  return e;
}

VExprPtr vscalar(std::string name) {
  if (name.empty()) throw Error("vscalar: empty scalar name");
  auto e = std::make_shared<VExpr>(VKind::ScalarRef);
  e->name = std::move(name);
  return e;
}

VExprPtr vindex(IExprPtr ix) {
  auto e = std::make_shared<VExpr>(VKind::IndexVal);
  e->index = std::move(ix);
  return e;
}

VExprPtr vbin(BinOp op, VExprPtr a, VExprPtr b) {
  auto e = std::make_shared<VExpr>(VKind::Bin);
  e->bop = op;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

VExprPtr vun(UnOp op, VExprPtr a) {
  auto e = std::make_shared<VExpr>(VKind::Un);
  e->uop = op;
  e->lhs = std::move(a);
  return e;
}

VExprPtr substitute_index(const VExprPtr& e, const std::string& name,
                          const IExprPtr& replacement) {
  switch (e->kind) {
    case VKind::Const:
    case VKind::ScalarRef:
      return e;
    case VKind::IndexVal: {
      IExprPtr nx = substitute(e->index, name, replacement);
      if (nx == e->index) return e;
      return vindex(std::move(nx));
    }
    case VKind::ArrayRef: {
      bool changed = false;
      std::vector<IExprPtr> subs;
      subs.reserve(e->subs.size());
      for (const auto& s : e->subs) {
        IExprPtr ns = substitute(s, name, replacement);
        changed |= (ns != s);
        subs.push_back(std::move(ns));
      }
      if (!changed) return e;
      return vref(e->name, std::move(subs));
    }
    case VKind::Bin: {
      VExprPtr l = substitute_index(e->lhs, name, replacement);
      VExprPtr r = substitute_index(e->rhs, name, replacement);
      if (l == e->lhs && r == e->rhs) return e;
      return vbin(e->bop, std::move(l), std::move(r));
    }
    case VKind::Un: {
      VExprPtr l = substitute_index(e->lhs, name, replacement);
      if (l == e->lhs) return e;
      return vun(e->uop, std::move(l));
    }
  }
  throw Error("substitute_index: corrupt VExpr kind");
}

VExprPtr substitute_scalar(const VExprPtr& e, const std::string& name,
                           const VExprPtr& replacement) {
  switch (e->kind) {
    case VKind::Const:
    case VKind::IndexVal:
    case VKind::ArrayRef:
      return e;
    case VKind::ScalarRef:
      return e->name == name ? replacement : e;
    case VKind::Bin: {
      VExprPtr l = substitute_scalar(e->lhs, name, replacement);
      VExprPtr r = substitute_scalar(e->rhs, name, replacement);
      if (l == e->lhs && r == e->rhs) return e;
      return vbin(e->bop, std::move(l), std::move(r));
    }
    case VKind::Un: {
      VExprPtr l = substitute_scalar(e->lhs, name, replacement);
      if (l == e->lhs) return e;
      return vun(e->uop, std::move(l));
    }
  }
  throw Error("substitute_scalar: corrupt VExpr kind");
}

bool mentions_index(const VExpr& e, const std::string& name) {
  switch (e.kind) {
    case VKind::Const:
    case VKind::ScalarRef:
      return false;
    case VKind::IndexVal:
      return mentions(*e.index, name);
    case VKind::ArrayRef:
      for (const auto& s : e.subs)
        if (mentions(*s, name)) return true;
      return false;
    case VKind::Bin:
      return mentions_index(*e.lhs, name) || mentions_index(*e.rhs, name);
    case VKind::Un:
      return mentions_index(*e.lhs, name);
  }
  return false;
}

bool same_vexpr(const VExpr& a, const VExpr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case VKind::Const:
      return a.cval == b.cval;
    case VKind::ScalarRef:
      return a.name == b.name;
    case VKind::IndexVal:
      return provably_equal(a.index, b.index);
    case VKind::ArrayRef: {
      if (a.name != b.name || a.subs.size() != b.subs.size()) return false;
      for (std::size_t i = 0; i < a.subs.size(); ++i)
        if (!provably_equal(a.subs[i], b.subs[i])) return false;
      return true;
    }
    case VKind::Bin:
      return a.bop == b.bop && same_vexpr(*a.lhs, *b.lhs) &&
             same_vexpr(*a.rhs, *b.rhs);
    case VKind::Un:
      return a.uop == b.uop && same_vexpr(*a.lhs, *b.lhs);
  }
  return false;
}

namespace {

// Precedence: additive 1, multiplicative 2, unary 3, atoms 4.
void print(const VExpr& e, std::ostream& os, int parent_prec) {
  switch (e.kind) {
    case VKind::Const:
      os << e.cval;
      return;
    case VKind::ScalarRef:
      os << e.name;
      return;
    case VKind::IndexVal:
      os << to_string(e.index);
      return;
    case VKind::ArrayRef: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.subs.size(); ++i) {
        if (i) os << ',';
        os << to_string(e.subs[i]);
      }
      os << ')';
      return;
    }
    case VKind::Bin: {
      int prec = (e.bop == BinOp::Add || e.bop == BinOp::Sub) ? 1 : 2;
      bool paren = parent_prec > prec;
      if (paren) os << '(';
      print(*e.lhs, os, prec);
      switch (e.bop) {
        case BinOp::Add: os << " + "; break;
        case BinOp::Sub: os << " - "; break;
        case BinOp::Mul: os << "*"; break;
        case BinOp::Div: os << "/"; break;
      }
      print(*e.rhs, os, prec + 1);
      if (paren) os << ')';
      return;
    }
    case VKind::Un:
      switch (e.uop) {
        case UnOp::Neg:
          os << '-';
          print(*e.lhs, os, 3);
          return;
        case UnOp::Sqrt:
          os << "SQRT(";
          print(*e.lhs, os, 0);
          os << ')';
          return;
        case UnOp::Abs:
          os << "ABS(";
          print(*e.lhs, os, 0);
          os << ')';
          return;
      }
  }
}

}  // namespace

std::string to_string(const VExpr& e) {
  std::ostringstream os;
  print(e, os, 0);
  return os.str();
}

std::string to_string(const Cond& c) {
  static constexpr const char* kOps[] = {".EQ.", ".NE.", ".LT.",
                                         ".LE.", ".GT.", ".GE."};
  return to_string(*c.lhs) + " " + kOps[static_cast<int>(c.op)] + " " +
         to_string(*c.rhs);
}

}  // namespace blk::ir
