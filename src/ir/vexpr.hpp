// Scalar (floating-point) value expressions — the right-hand sides of
// assignments and the operands of IF conditions.
//
// Value expressions are immutable shared trees like IExpr.  Array subscripts
// inside them are IExpr index expressions, so loop transformations substitute
// induction variables uniformly across bounds and subscripts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/iexpr.hpp"

namespace blk::ir {

enum class VKind : std::uint8_t {
  Const,     ///< double literal
  ArrayRef,  ///< A(i, j, ...) read
  ScalarRef, ///< named scalar variable read (e.g. TAU, DEN)
  IndexVal,  ///< an index expression used as a value (e.g. DBLE(I-K))
  Bin,       ///< lhs op rhs
  Un,        ///< op arg
};

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div };
enum class UnOp : std::uint8_t { Neg, Sqrt, Abs };

class VExpr;
using VExprPtr = std::shared_ptr<const VExpr>;

/// One node of a value-expression tree.  Construct via the factories below.
class VExpr {
 public:
  VKind kind;
  double cval = 0.0;            ///< VKind::Const
  std::string name;             ///< ArrayRef / ScalarRef
  std::vector<IExprPtr> subs;   ///< ArrayRef subscripts
  IExprPtr index;               ///< IndexVal
  BinOp bop = BinOp::Add;       ///< Bin
  UnOp uop = UnOp::Neg;         ///< Un
  VExprPtr lhs, rhs;            ///< Bin (rhs null for Un)

  explicit VExpr(VKind k) : kind(k) {}
};

// ---- Factories -------------------------------------------------------------

[[nodiscard]] VExprPtr vconst(double v);
[[nodiscard]] VExprPtr vref(std::string array, std::vector<IExprPtr> subs);
[[nodiscard]] VExprPtr vscalar(std::string name);
[[nodiscard]] VExprPtr vindex(IExprPtr e);
[[nodiscard]] VExprPtr vbin(BinOp op, VExprPtr a, VExprPtr b);
[[nodiscard]] VExprPtr vun(UnOp op, VExprPtr a);

[[nodiscard]] inline VExprPtr vadd(VExprPtr a, VExprPtr b) {
  return vbin(BinOp::Add, std::move(a), std::move(b));
}
[[nodiscard]] inline VExprPtr vsub(VExprPtr a, VExprPtr b) {
  return vbin(BinOp::Sub, std::move(a), std::move(b));
}
[[nodiscard]] inline VExprPtr vmul(VExprPtr a, VExprPtr b) {
  return vbin(BinOp::Mul, std::move(a), std::move(b));
}
[[nodiscard]] inline VExprPtr vdiv(VExprPtr a, VExprPtr b) {
  return vbin(BinOp::Div, std::move(a), std::move(b));
}
[[nodiscard]] inline VExprPtr vneg(VExprPtr a) {
  return vun(UnOp::Neg, std::move(a));
}
[[nodiscard]] inline VExprPtr vsqrt(VExprPtr a) {
  return vun(UnOp::Sqrt, std::move(a));
}

// ---- Conditions ------------------------------------------------------------

enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/// IF-statement condition: a single comparison between value expressions.
/// Fortran logicals are modelled as doubles (0.0 false / 1.0 true), so
/// `.NOT. FLAG` becomes `FLAG .EQ. 0.0`.
struct Cond {
  VExprPtr lhs;
  CmpOp op = CmpOp::EQ;
  VExprPtr rhs;
};

// ---- Algebra ---------------------------------------------------------------

/// Substitute index variable `name` by `replacement` in every subscript and
/// IndexVal beneath `e`.
[[nodiscard]] VExprPtr substitute_index(const VExprPtr& e,
                                        const std::string& name,
                                        const IExprPtr& replacement);

/// Replace every read of scalar `name` with value expression `replacement`.
[[nodiscard]] VExprPtr substitute_scalar(const VExprPtr& e,
                                         const std::string& name,
                                         const VExprPtr& replacement);

/// True when index variable `name` occurs anywhere beneath `e`.
[[nodiscard]] bool mentions_index(const VExpr& e, const std::string& name);

/// True when the two trees are structurally identical (subscripts compared
/// with provably_equal).
[[nodiscard]] bool same_vexpr(const VExpr& a, const VExpr& b);

/// Render in Fortran-like syntax, e.g. "A(I,J) - A(I,KK)*A(KK,J)".
[[nodiscard]] std::string to_string(const VExpr& e);
[[nodiscard]] std::string to_string(const Cond& c);

}  // namespace blk::ir
