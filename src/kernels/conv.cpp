#include "kernels/conv.hpp"

#include <algorithm>

namespace blk::kernels {

ConvProblem ConvProblem::make_aconv(long size, std::uint64_t seed) {
  ConvProblem p;
  p.n1 = size - 1;
  p.n2 = 6 * p.n1 / 7;  // ~75% of the work in the triangular region
  p.n3 = size - 1;
  p.f1 = Signal(0, p.n1);
  p.f2 = Signal(-p.n2, 0);
  p.f3 = Signal(0, p.n3);
  fill_random(p.f1, seed);
  fill_random(p.f2, seed + 1);
  fill_random(p.f3, seed + 2);
  return p;
}

ConvProblem ConvProblem::make_conv(long size, std::uint64_t seed) {
  ConvProblem p;
  p.n1 = size - 1;
  p.n2 = 6 * p.n1 / 7;
  p.n3 = size - 1;
  p.f1 = Signal(0, p.n1);
  p.f2 = Signal(0, p.n2);
  p.f3 = Signal(0, p.n3);
  fill_random(p.f1, seed);
  fill_random(p.f2, seed + 1);
  fill_random(p.f3, seed + 2);
  return p;
}

void aconv_point(ConvProblem& p) {
  const double dt = p.dt;
  for (long i = 0; i <= p.n3; ++i) {
    const long khi = std::min(i + p.n2, p.n1);
    double s = p.f3[i];
    for (long k = i; k <= khi; ++k) s += dt * p.f1[k] * p.f2[i - k];
    p.f3[i] = s;
  }
}

void aconv_opt(ConvProblem& p) {
  const double dt = p.dt;
  const long n1 = p.n1, n2 = p.n2, n3 = p.n3;
  // Edge contribution for accumulator m over K in [klo, khi] (clamped to
  // that accumulator's own valid range).
  auto edge = [&](long base, long m, long klo, long khi) {
    double s = 0.0;
    long lo = std::max(klo, base + m);
    long hi = std::min(khi, std::min(base + m + n2, n1));
    for (long k = lo; k <= hi; ++k)
      s += dt * p.f1[k] * p.f2[base + m - k];
    return s;
  };

  long i = 0;
  for (; i + 3 <= n3; i += 4) {
    // Shared region: K valid for all four accumulators.
    const long slo = i + 3;
    const long shi = std::min(i + n2, n1);
    double s0 = p.f3[i], s1 = p.f3[i + 1], s2 = p.f3[i + 2],
           s3 = p.f3[i + 3];
    // Heads (K below the shared region) and tails (K above it).
    s0 += edge(i, 0, i, slo - 1) + edge(i, 0, shi + 1, n1);
    s1 += edge(i, 1, i, slo - 1) + edge(i, 1, shi + 1, n1);
    s2 += edge(i, 2, i, slo - 1) + edge(i, 2, shi + 1, n1);
    s3 += edge(i, 3, i, slo - 1) + edge(i, 3, shi + 1, n1);
    const double* f1 = p.f1.flat().data();           // index 0 = K=0
    const double* f2 = &p.f2[0];                     // f2[-j] valid
    for (long k = slo; k <= shi; ++k) {
      const double t = dt * f1[k];
      s0 += t * f2[i - k];
      s1 += t * f2[i + 1 - k];
      s2 += t * f2[i + 2 - k];
      s3 += t * f2[i + 3 - k];
    }
    p.f3[i] = s0;
    p.f3[i + 1] = s1;
    p.f3[i + 2] = s2;
    p.f3[i + 3] = s3;
  }
  for (; i <= n3; ++i) {
    const long khi = std::min(i + n2, n1);
    double s = p.f3[i];
    for (long k = i; k <= khi; ++k) s += dt * p.f1[k] * p.f2[i - k];
    p.f3[i] = s;
  }
}

void conv_point(ConvProblem& p) {
  const double dt = p.dt;
  for (long i = 0; i <= p.n3; ++i) {
    const long klo = std::max(0L, i - p.n2);
    const long khi = std::min(i, p.n1);
    double s = p.f3[i];
    for (long k = klo; k <= khi; ++k) s += dt * p.f1[k] * p.f2[i - k];
    p.f3[i] = s;
  }
}

void conv_opt(ConvProblem& p) {
  const double dt = p.dt;
  const long n1 = p.n1, n2 = p.n2, n3 = p.n3;
  auto edge = [&](long base, long m, long klo, long khi) {
    double s = 0.0;
    long lo = std::max(klo, std::max(0L, base + m - n2));
    long hi = std::min(khi, std::min(base + m, n1));
    for (long k = lo; k <= hi; ++k)
      s += dt * p.f1[k] * p.f2[base + m - k];
    return s;
  };

  long i = 0;
  for (; i + 3 <= n3; i += 4) {
    // Shared region: valid for all four accumulators.
    const long slo = std::max(0L, i + 3 - n2);
    const long shi = std::min(i, n1);
    double s0 = p.f3[i], s1 = p.f3[i + 1], s2 = p.f3[i + 2],
           s3 = p.f3[i + 3];
    s0 += edge(i, 0, std::max(0L, i - n2), slo - 1) +
          edge(i, 0, shi + 1, n1);
    s1 += edge(i, 1, std::max(0L, i + 1 - n2), slo - 1) +
          edge(i, 1, shi + 1, n1);
    s2 += edge(i, 2, std::max(0L, i + 2 - n2), slo - 1) +
          edge(i, 2, shi + 1, n1);
    s3 += edge(i, 3, std::max(0L, i + 3 - n2), slo - 1) +
          edge(i, 3, shi + 1, n1);
    const double* f1 = p.f1.flat().data();
    const double* f2 = p.f2.flat().data();  // index 0 = F2(0)
    for (long k = slo; k <= shi; ++k) {
      const double t = dt * f1[k];
      s0 += t * f2[i - k];
      s1 += t * f2[i + 1 - k];
      s2 += t * f2[i + 2 - k];
      s3 += t * f2[i + 3 - k];
    }
    p.f3[i] = s0;
    p.f3[i + 1] = s1;
    p.f3[i + 2] = s2;
    p.f3[i + 3] = s3;
  }
  for (; i <= n3; ++i) {
    const long klo = std::max(0L, i - p.n2);
    const long khi = std::min(i, n1);
    double s = p.f3[i];
    for (long k = klo; k <= khi; ++k) s += dt * p.f1[k] * p.f2[i - k];
    p.f3[i] = s;
  }
}

}  // namespace blk::kernels
