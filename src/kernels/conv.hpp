// §3.2 convolution kernels: the oil-exploration loops, in their original
// point form and after the paper's hand pipeline (index-set splitting of
// the MIN/MAX trapezoid bounds, unroll-and-jam of I, scalar replacement of
// the F3 accumulators and the F1 factor).
#pragma once

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Problem instance for both convolutions.  The paper's experiment uses
/// n3 = size with 75% of the work in the triangular regions; make_conv
/// picks n1 = size-1 and n2 = 6*n1/7 to reproduce that split.
struct ConvProblem {
  long n1 = 0, n2 = 0, n3 = 0;
  double dt = 0.25;
  Signal f1;  ///< (0:N1)
  Signal f2;  ///< conv: (0:N2); aconv: (-N2:0)
  Signal f3;  ///< (0:N3), output

  [[nodiscard]] static ConvProblem make_aconv(long size, std::uint64_t seed);
  [[nodiscard]] static ConvProblem make_conv(long size, std::uint64_t seed);
};

/// Adjoint convolution, point form:
///   DO I = 0,N3 / DO K = I, MIN(I+N2,N1) / F3(I) += DT*F1(K)*F2(I-K)
void aconv_point(ConvProblem& p);

/// Adjoint convolution after index-set splitting + unroll-and-jam (factor
/// 4) + scalar replacement.
void aconv_opt(ConvProblem& p);

/// Convolution, point form:
///   DO I = 0,N3 / DO K = MAX(0,I-N2), MIN(I,N1) / F3(I) += DT*F1(K)*F2(I-K)
void conv_point(ConvProblem& p);

/// Convolution after the same pipeline.
void conv_opt(ConvProblem& p);

}  // namespace blk::kernels
