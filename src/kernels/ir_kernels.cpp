#include "kernels/ir_kernels.hpp"

#include "ir/builder.hpp"

namespace blk::kernels {

using namespace blk::ir;
using namespace blk::ir::dsl;

Program sum_example_ir() {
  Program p;
  p.param("N");
  p.param("M");
  p.array("A", {v("M")});
  p.array("B", {v("N")});
  p.add(loop("J", c(1), v("N"),
             loop("I", c(1), v("M"),
                  assign(lv("A", {v("I")}),
                         a("A", {v("I")}) + a("B", {v("J")}), 10))));
  return p;
}

Program partial_recurrence_ir() {
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.array("T", {v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("T", {v("I")}), a("A", {v("I")})),
             loop("K", v("I"), v("N"),
                  assign(lv("A", {v("K")}),
                         a("A", {v("K")}) + a("T", {v("I")}), 10))));
  return p;
}

Program aconv_ir() {
  Program p;
  p.param("N1");
  p.param("N2");
  p.param("N3");
  p.scalar("DT");
  p.array_bounds("F1", {{.lb = c(0), .ub = v("N1")}});
  p.array_bounds("F2", {{.lb = c(0) - v("N2"), .ub = c(0)}});
  p.array_bounds("F3", {{.lb = c(0), .ub = v("N3")}});
  p.add(loop("I", c(0), v("N3"),
             loop("K", v("I"), imin(v("I") + v("N2"), v("N1")),
                  assign(lv("F3", {v("I")}),
                         a("F3", {v("I")}) +
                             s("DT") * a("F1", {v("K")}) *
                                 a("F2", {v("I") - v("K")}),
                         10))));
  return p;
}

Program conv_ir() {
  Program p;
  p.param("N1");
  p.param("N2");
  p.param("N3");
  p.scalar("DT");
  p.array_bounds("F1", {{.lb = c(0), .ub = v("N1")}});
  p.array_bounds("F2", {{.lb = c(0), .ub = v("N2")}});
  p.array_bounds("F3", {{.lb = c(0), .ub = v("N3")}});
  p.add(loop("I", c(0), v("N3"),
             loop("K", imax(c(0), v("I") - v("N2")),
                  imin(v("I"), v("N1")),
                  assign(lv("F3", {v("I")}),
                         a("F3", {v("I")}) +
                             s("DT") * a("F1", {v("K")}) *
                                 a("F2", {v("I") - v("K")}),
                         10))));
  return p;
}

Program matmul_guarded_ir() {
  Program p;
  p.param("N");
  p.array("A", {v("N"), v("N")});
  p.array("B", {v("N"), v("N")});
  p.array("C", {v("N"), v("N")});
  p.add(loop(
      "J", c(1), v("N"),
      loop("K", c(1), v("N"),
           when(cmp(a("B", {v("K"), v("J")}), CmpOp::NE, f(0.0)),
                loop("I", c(1), v("N"),
                     assign(lv("C", {v("I"), v("J")}),
                            a("C", {v("I"), v("J")}) +
                                a("A", {v("I"), v("K")}) *
                                    a("B", {v("K"), v("J")}),
                            10))))));
  return p;
}

Program lu_point_ir() {
  Program p;
  p.param("N");
  p.array("A", {v("N"), v("N")});
  p.add(loop(
      "K", c(1), v("N") - 1,
      loop("I", v("K") + 1, v("N"),
           assign(lv("A", {v("I"), v("K")}),
                  a("A", {v("I"), v("K")}) / a("A", {v("K"), v("K")}), 20)),
      loop("J", v("K") + 1, v("N"),
           loop("I", v("K") + 1, v("N"),
                assign(lv("A", {v("I"), v("J")}),
                       a("A", {v("I"), v("J")}) -
                           a("A", {v("I"), v("K")}) *
                               a("A", {v("K"), v("J")}),
                       10)))));
  return p;
}

Program lu_pivot_point_ir() {
  Program p;
  p.param("N");
  p.array("A", {v("N"), v("N")});
  p.scalar("IMAX");
  p.scalar("TAU");
  p.add(loop(
      "K", c(1), v("N") - 1,
      // Pivot search: IMAX = argmax |A(I,K)| over I = K..N.
      assign(lvs("IMAX"), vindex(v("K"))),
      loop("I", v("K") + 1, v("N"),
           when(cmp(vun(UnOp::Abs, a("A", {v("I"), v("K")})), CmpOp::GT,
                    vun(UnOp::Abs, a("A", {ivar("IMAX"), v("K")}))),
                assign(lvs("IMAX"), vindex(v("I"))))),
      // Row interchange K <-> IMAX (statements 25/30).
      loop("J", c(1), v("N"),
           assign(lvs("TAU"), a("A", {v("K"), v("J")})),
           assign(lv("A", {v("K"), v("J")}),
                  a("A", {ivar("IMAX"), v("J")}), 25),
           assign(lv("A", {ivar("IMAX"), v("J")}), s("TAU"), 30)),
      // Elimination (statements 20/10).
      loop("I", v("K") + 1, v("N"),
           assign(lv("A", {v("I"), v("K")}),
                  a("A", {v("I"), v("K")}) / a("A", {v("K"), v("K")}), 20)),
      loop("J", v("K") + 1, v("N"),
           loop("I", v("K") + 1, v("N"),
                assign(lv("A", {v("I"), v("J")}),
                       a("A", {v("I"), v("J")}) -
                           a("A", {v("I"), v("K")}) *
                               a("A", {v("K"), v("J")}),
                       10)))));
  return p;
}

Program givens_qr_ir() {
  Program p;
  p.param("M");  // rows
  p.param("N");  // columns
  p.array("A", {v("M"), v("N")});
  for (const char* sc : {"DEN", "C", "S", "A1", "A2"}) p.scalar(sc);
  p.add(loop(
      "L", c(1), v("N"),
      loop("J", v("L") + 1, v("M"),
           when(cmp(a("A", {v("J"), v("L")}), CmpOp::NE, f(0.0)),
                assign(lvs("DEN"),
                       vsqrt(a("A", {v("L"), v("L")}) *
                                 a("A", {v("L"), v("L")}) +
                             a("A", {v("J"), v("L")}) *
                                 a("A", {v("J"), v("L")}))),
                assign(lvs("C"), a("A", {v("L"), v("L")}) / s("DEN")),
                assign(lvs("S"), a("A", {v("J"), v("L")}) / s("DEN")),
                loop("K", v("L"), v("N"),
                     assign(lvs("A1"), a("A", {v("L"), v("K")})),
                     assign(lvs("A2"), a("A", {v("J"), v("K")})),
                     assign(lv("A", {v("L"), v("K")}),
                            s("C") * s("A1") + s("S") * s("A2")),
                     assign(lv("A", {v("J"), v("K")}),
                            vneg(s("S")) * s("A1") + s("C") * s("A2"),
                            10))))));
  return p;
}

Program stencil2d_ir() {
  Program p;
  p.param("N");
  p.array_bounds("A", {{.lb = c(0), .ub = v("N")},
                       {.lb = c(0), .ub = v("N")}});
  p.add(loop("I", c(1), v("N"),
             loop("J", c(1), v("N"),
                  assign(lv("A", {v("I"), v("J")}),
                         f(0.25) * (a("A", {v("I") - c(1), v("J")}) +
                                    a("A", {v("I"), v("J") - c(1)})),
                         10))));
  return p;
}

}  // namespace blk::kernels
