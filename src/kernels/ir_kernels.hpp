// The paper's kernels expressed as IR programs.
//
// These are the machine-independent "point algorithms" the study starts
// from; the transformation engine derives the block forms from them.  Each
// factory returns a fresh Program (callers own it and may mutate freely).
#pragma once

#include "ir/program.hpp"

namespace blk::kernels {

/// §2.3's running example:
///   DO J = 1,N / DO I = 1,M / A(I) = A(I) + B(J)
[[nodiscard]] ir::Program sum_example_ir();

/// §3.3's partial-recurrence example (strip-mined in the paper's text, here
/// in its original point form):
///   DO I = 1,N
///     T(I) = A(I)
///     DO K = I,N
///       A(K) = A(K) + T(I)
[[nodiscard]] ir::Program partial_recurrence_ir();

/// §3.2 adjoint convolution of two time series:
///   DO I = 0,N3 / DO K = I,MIN(I+N2,N1) / F3(I) += DT*F1(K)*F2(I-K)
/// Parameters N1, N2, N3; F2 is dimensioned (-N2:0) as the adjoint filter.
[[nodiscard]] ir::Program aconv_ir();

/// §3.2 convolution:
///   DO I = 0,N3 / DO K = MAX(0,I-N2),MIN(I,N1) / F3(I) += DT*F1(K)*F2(I-K)
/// F2 dimensioned (0:N2).
[[nodiscard]] ir::Program conv_ir();

/// §4 guarded matrix multiply (the SGEMM inner kernel):
///   DO J=1,N / DO K=1,N / IF (B(K,J).NE.0) THEN / DO I=1,N
///     C(I,J) = C(I,J) + A(I,K)*B(K,J)
[[nodiscard]] ir::Program matmul_guarded_ir();

/// §5.1 LU decomposition without pivoting, point algorithm (statement
/// labels 20 = column scale, 10 = update, matching the paper):
///   DO K = 1,N-1
///     DO I = K+1,N
///       A(I,K) = A(I,K)/A(K,K)                      ! 20
///     DO J = K+1,N / DO I = K+1,N
///       A(I,J) = A(I,J) - A(I,K)*A(K,J)             ! 10
[[nodiscard]] ir::Program lu_point_ir();

/// §5.2 LU decomposition with partial pivoting (Fig. 7).  The pivot search
/// writes the integer scalar IMAX; the row-interchange loop is statements
/// 25/30; the elimination is the same 20/10 pair as lu_point_ir.
[[nodiscard]] ir::Program lu_pivot_point_ir();

/// §5.4 QR decomposition with Givens rotations (Fig. 9).
[[nodiscard]] ir::Program givens_qr_ir();

/// §14 wavefront stencil: a Gauss-Seidel-style 2-D sweep whose loop-carried
/// dependences (A(I-1,J) and A(I,J-1)) serialize both loops as written.
/// Skewing J by I and interchanging exposes a parallel inner wavefront:
///   DO I = 1,N / DO J = 1,N / A(I,J) = 0.25*(A(I-1,J) + A(I,J-1))
/// A is dimensioned (0:N,0:N) so the halo reads stay in bounds.
[[nodiscard]] ir::Program stencil2d_ir();

}  // namespace blk::kernels
