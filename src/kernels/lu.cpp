#include "kernels/lu.hpp"

#include <algorithm>

namespace blk::kernels {

void lu_point(Matrix& a) {
  const std::size_t n = a.rows();
  if (n == 0) return;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double pivot = a(k, k);
    double* ak = a.col(k);
    for (std::size_t i = k + 1; i < n; ++i) ak[i] /= pivot;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      double* aj = a.col(j);
      for (std::size_t i = k + 1; i < n; ++i) aj[i] -= ak[i] * akj;
    }
  }
}

void lu_block_sorensen(Matrix& a, std::size_t ks) {
  const std::size_t n = a.rows();
  if (n == 0) return;
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    // Panel factorization: point LU restricted to columns kb..ke.
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      for (std::size_t j = kk + 1; j <= ke; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    if (ke + 1 >= n) break;
    // Trailing update, one column at a time: apply the panel's KS delayed
    // eliminations to column j in point order (triangular solve and
    // rank-update fused into one sweep per multiplier column).
    for (std::size_t j = ke + 1; j < n; ++j) {
      double* aj = a.col(j);
      for (std::size_t kk = kb; kk <= ke; ++kk) {
        const double av = aj[kk];
        const double* akk = a.col(kk);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
  }
}

void lu_block_derived(Matrix& a, std::size_t ks) {
  const std::size_t n = a.rows();
  if (n == 0) return;
  // Fig. 6, zero-based.  First nest: the point algorithm confined to the
  // block's columns; second nest: trailing columns with KK innermost.
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      const std::size_t jhi = std::min(kb + ks - 1, n - 1);
      for (std::size_t j = kk + 1; j <= jhi; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    for (std::size_t j = kb + ks; j < n; ++j) {
      double* aj = a.col(j);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t = aj[i];
        for (std::size_t kk = kb; kk <= khi; ++kk)
          t -= a(i, kk) * aj[kk];
        aj[i] = t;
      }
    }
  }
}

void lu_block_opt(Matrix& a, std::size_t ks) {
  const std::size_t n = a.rows();
  if (n == 0) return;
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    // Panel: identical to the derived block algorithm's first nest.
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      const std::size_t jhi = std::min(kb + ks - 1, n - 1);
      for (std::size_t j = kk + 1; j <= jhi; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    // Trailing nest after trapezoidal unroll-and-jam of J (factor 4) and
    // scalar replacement of the A(I,J) accumulators.
    std::size_t j = kb + ks;
    for (; j + 3 < n; j += 4) {
      double* c0 = a.col(j);
      double* c1 = a.col(j + 1);
      double* c2 = a.col(j + 2);
      double* c3 = a.col(j + 3);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t0 = c0[i], t1 = c1[i], t2 = c2[i], t3 = c3[i];
        for (std::size_t kk = kb; kk <= khi; ++kk) {
          const double aik = a(i, kk);
          t0 -= aik * c0[kk];
          t1 -= aik * c1[kk];
          t2 -= aik * c2[kk];
          t3 -= aik * c3[kk];
        }
        c0[i] = t0;
        c1[i] = t1;
        c2[i] = t2;
        c3[i] = t3;
      }
    }
    for (; j < n; ++j) {  // remainder columns
      double* cj = a.col(j);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t = cj[i];
        for (std::size_t kk = kb; kk <= khi; ++kk) t -= a(i, kk) * cj[kk];
        cj[i] = t;
      }
    }
  }
}

void lu_block_opt_parallel(Matrix& a, std::size_t ks) {
#ifndef BLK_HAVE_OPENMP
  lu_block_opt(a, ks);
#else
  const std::size_t n = a.rows();
  if (n == 0) return;
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    // Panel factorization stays sequential (it carries the recurrence).
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      const std::size_t jhi = std::min(kb + ks - 1, n - 1);
      for (std::size_t j = kk + 1; j <= jhi; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    // Trailing update: the J loop is dependence-free across columns (the
    // §5.1 parallelism), so 4-column blocks go to the team.
    const long first = static_cast<long>(kb + ks);
    const long last = static_cast<long>(n);
#pragma omp parallel for schedule(static)
    for (long j4 = first; j4 < last; j4 += 4) {
      const std::size_t j0 = static_cast<std::size_t>(j4);
      const std::size_t jend = std::min<std::size_t>(j0 + 4, n);
      if (jend - j0 == 4) {
        double* c0 = a.col(j0);
        double* c1 = a.col(j0 + 1);
        double* c2 = a.col(j0 + 2);
        double* c3 = a.col(j0 + 3);
        for (std::size_t i = kb + 1; i < n; ++i) {
          const std::size_t khi = std::min(ke, i - 1);
          double t0 = c0[i], t1 = c1[i], t2 = c2[i], t3 = c3[i];
          for (std::size_t kk = kb; kk <= khi; ++kk) {
            const double aik = a(i, kk);
            t0 -= aik * c0[kk];
            t1 -= aik * c1[kk];
            t2 -= aik * c2[kk];
            t3 -= aik * c3[kk];
          }
          c0[i] = t0;
          c1[i] = t1;
          c2[i] = t2;
          c3[i] = t3;
        }
      } else {
        for (std::size_t j = j0; j < jend; ++j) {
          double* cj = a.col(j);
          for (std::size_t i = kb + 1; i < n; ++i) {
            const std::size_t khi = std::min(ke, i - 1);
            double t = cj[i];
            for (std::size_t kk = kb; kk <= khi; ++kk)
              t -= a(i, kk) * cj[kk];
            cj[i] = t;
          }
        }
      }
    }
  }
#endif
}

double lu_residual(const Matrix& factors, const Matrix& a0) {
  const std::size_t n = factors.rows();
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lim = std::min(i, j);
      double s = 0.0;
      for (std::size_t k = 0; k < lim; ++k)
        s += factors(i, k) * factors(k, j);
      // L(i,i) = 1 contributes U(i,j) when i <= j; otherwise L(i,j)*U(j,j).
      s += (i <= j) ? factors(i, j) : factors(i, j) * factors(j, j);
      const double d = std::abs(s - a0(i, j));
      worst = std::max(worst, d);
    }
  }
  return worst / static_cast<double>(n);
}

}  // namespace blk::kernels
