// §5.1 LU decomposition without pivoting: the paper's four measured
// variants.
//
//   Point - the natural point algorithm (Gaussian elimination).
//   "1"   - the hand-coded block algorithm (Sorensen's version): panel
//           factorization followed by a blocked trailing update.
//   "2"   - the block algorithm the compiler derives (Fig. 6): strip-mined
//           K with the update loop split at the block boundary and the KK
//           loop interchanged innermost in the trailing nest.
//   "2+"  - "2" after trapezoidal unroll-and-jam and scalar replacement.
//
// All variants overwrite A in place with L (unit lower, below the
// diagonal) and U (upper).
#pragma once

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Point algorithm: DO K / scale column K / rank-1 update.
void lu_point(Matrix& a);

/// Hand-coded block algorithm ("1"): factor the KS-wide panel with the
/// point algorithm, then apply all KS updates to the trailing matrix.
void lu_block_sorensen(Matrix& a, std::size_t ks);

/// Fig. 6 exactly ("2"): the automatically derivable block form.
void lu_block_derived(Matrix& a, std::size_t ks);

/// "2+": Fig. 6 plus unroll-and-jam of the trailing-update J loop (factor
/// 4) and scalar replacement of the A(I,J) accumulators.
void lu_block_opt(Matrix& a, std::size_t ks);

/// "2+" with the trailing-update J loop run in parallel — the paper's
/// §5.1 remark that the blocked form "also has increased parallelism as
/// the J-loop ... can be made parallel" (each trailing column's delayed
/// updates are independent).  Falls back to the serial kernel when built
/// without OpenMP.
void lu_block_opt_parallel(Matrix& a, std::size_t ks);

/// ||L*U - A0||_max / n: reconstruction residual against the original
/// matrix (a0), for correctness checks.
[[nodiscard]] double lu_residual(const Matrix& factors, const Matrix& a0);

}  // namespace blk::kernels
