#include "kernels/lu_pivot.hpp"

#include <algorithm>
#include <cmath>

namespace blk::kernels {

namespace {

/// Pivot row for column k: argmax |A(i,k)| over i >= k.
[[nodiscard]] std::size_t find_pivot(const Matrix& a, std::size_t k) {
  const std::size_t n = a.rows();
  std::size_t imax = k;
  double best = std::fabs(a(k, k));
  const double* ak = a.col(k);
  for (std::size_t i = k + 1; i < n; ++i) {
    const double v = std::fabs(ak[i]);
    if (v > best) {
      best = v;
      imax = i;
    }
  }
  return imax;
}

/// Swap whole rows r1 and r2 across all n columns.
void swap_rows(Matrix& a, std::size_t r1, std::size_t r2) {
  if (r1 == r2) return;
  const std::size_t n = a.cols();
  for (std::size_t j = 0; j < n; ++j) std::swap(a(r1, j), a(r2, j));
}

}  // namespace

void lu_pivot_point(Matrix& a, std::vector<std::size_t>& piv) {
  const std::size_t n = a.rows();
  piv.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  if (n == 0) return;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const std::size_t imax = find_pivot(a, k);
    piv[k] = imax;
    swap_rows(a, k, imax);
    const double pivot = a(k, k);
    double* ak = a.col(k);
    for (std::size_t i = k + 1; i < n; ++i) ak[i] /= pivot;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      double* aj = a.col(j);
      for (std::size_t i = k + 1; i < n; ++i) aj[i] -= ak[i] * akj;
    }
  }
}

void lu_pivot_block(Matrix& a, std::vector<std::size_t>& piv,
                    std::size_t ks) {
  const std::size_t n = a.rows();
  piv.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  if (n == 0) return;
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    // Panel pass: the point algorithm with full-row interchanges, but with
    // the update confined to the panel's columns.  The delayed trailing
    // updates commute with the interchanges (§5.2).
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const std::size_t imax = find_pivot(a, kk);
      piv[kk] = imax;
      swap_rows(a, kk, imax);
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      const std::size_t jhi = std::min(kb + ks - 1, n - 1);
      for (std::size_t j = kk + 1; j <= jhi; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    // Delayed trailing update (Fig. 8's second nest, KK innermost).
    for (std::size_t j = kb + ks; j < n; ++j) {
      double* aj = a.col(j);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t = aj[i];
        for (std::size_t kk = kb; kk <= khi; ++kk)
          t -= a(i, kk) * aj[kk];
        aj[i] = t;
      }
    }
  }
}

void lu_pivot_block_opt(Matrix& a, std::vector<std::size_t>& piv,
                        std::size_t ks) {
  const std::size_t n = a.rows();
  piv.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  if (n == 0) return;
  for (std::size_t kb = 0; kb + 1 < n; kb += ks) {
    const std::size_t ke = std::min(kb + ks - 1, n - 2);
    for (std::size_t kk = kb; kk <= ke; ++kk) {
      const std::size_t imax = find_pivot(a, kk);
      piv[kk] = imax;
      swap_rows(a, kk, imax);
      const double pivot = a(kk, kk);
      double* akk = a.col(kk);
      for (std::size_t i = kk + 1; i < n; ++i) akk[i] /= pivot;
      const std::size_t jhi = std::min(kb + ks - 1, n - 1);
      for (std::size_t j = kk + 1; j <= jhi; ++j) {
        const double av = a(kk, j);
        double* aj = a.col(j);
        for (std::size_t i = kk + 1; i < n; ++i) aj[i] -= akk[i] * av;
      }
    }
    // Trailing update with unroll-and-jam (J by 4) + scalar replacement.
    std::size_t j = kb + ks;
    for (; j + 3 < n; j += 4) {
      double* c0 = a.col(j);
      double* c1 = a.col(j + 1);
      double* c2 = a.col(j + 2);
      double* c3 = a.col(j + 3);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t0 = c0[i], t1 = c1[i], t2 = c2[i], t3 = c3[i];
        for (std::size_t kk = kb; kk <= khi; ++kk) {
          const double aik = a(i, kk);
          t0 -= aik * c0[kk];
          t1 -= aik * c1[kk];
          t2 -= aik * c2[kk];
          t3 -= aik * c3[kk];
        }
        c0[i] = t0;
        c1[i] = t1;
        c2[i] = t2;
        c3[i] = t3;
      }
    }
    for (; j < n; ++j) {
      double* cj = a.col(j);
      for (std::size_t i = kb + 1; i < n; ++i) {
        const std::size_t khi = std::min(ke, i - 1);
        double t = cj[i];
        for (std::size_t kk = kb; kk <= khi; ++kk) t -= a(i, kk) * cj[kk];
        cj[i] = t;
      }
    }
  }
}

double lu_pivot_residual(const Matrix& factors,
                         const std::vector<std::size_t>& piv,
                         const Matrix& a0) {
  const std::size_t n = factors.rows();
  // Apply the recorded interchanges to a copy of A0 to get P*A0.
  Matrix pa = a0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (piv[k] != k)
      for (std::size_t j = 0; j < n; ++j) std::swap(pa(k, j), pa(piv[k], j));
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lim = std::min(i, j);
      double s = 0.0;
      for (std::size_t k = 0; k < lim; ++k)
        s += factors(i, k) * factors(k, j);
      s += (i <= j) ? factors(i, j) : factors(i, j) * factors(j, j);
      worst = std::max(worst, std::abs(s - pa(i, j)));
    }
  }
  return worst / static_cast<double>(n);
}

}  // namespace blk::kernels
