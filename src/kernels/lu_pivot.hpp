// §5.2 LU decomposition with partial pivoting: point (Fig. 7), block
// (Fig. 8, derivable only with commutativity knowledge), and the optimized
// block ("1+", unroll-and-jam + scalar replacement).
//
// All variants factor in place and record the pivot row chosen at each
// step in `piv` (piv[k] = row swapped with k).
#pragma once

#include <vector>

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Point algorithm with partial pivoting (Fig. 7): pick the pivot, swap
/// whole rows, scale, rank-1 update — every step immediately.
void lu_pivot_point(Matrix& a, std::vector<std::size_t>& piv);

/// Block algorithm (Fig. 8): the point algorithm runs on the panel with
/// full-row interchanges; the trailing-matrix updates are delayed and
/// applied in one blocked pass (KK innermost).  Whole-column updates
/// commute with row interchanges, so the result equals the point
/// algorithm's.
void lu_pivot_block(Matrix& a, std::vector<std::size_t>& piv,
                    std::size_t ks);

/// "1+": Fig. 8 with the trailing nest unroll-and-jammed (J by 4) and the
/// A(I,J) accumulators scalar-replaced.
void lu_pivot_block_opt(Matrix& a, std::vector<std::size_t>& piv,
                        std::size_t ks);

/// Reconstruction residual ||P*A0 - L*U||_max / n.
[[nodiscard]] double lu_pivot_residual(const Matrix& factors,
                                       const std::vector<std::size_t>& piv,
                                       const Matrix& a0);

}  // namespace blk::kernels
