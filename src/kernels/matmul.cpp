#include "kernels/matmul.hpp"

#include <algorithm>
#include <random>

namespace blk::kernels {

Matrix make_guard_matrix(std::size_t n, double frequency,
                         std::size_t run_len, std::uint64_t seed) {
  if (run_len == 0) run_len = 1;
  Matrix b(n, n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const double run_prob = frequency / static_cast<double>(run_len);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      if (coin(rng) < run_prob) {
        for (std::size_t r = 0; r < run_len && k < n; ++r, ++k)
          b(k, j) = 1.0;
        --k;  // outer loop increments past the run's last element
      }
    }
  }
  return b;
}

void matmul_guarded(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      const double* ak = a.col(k);
      double* cj = c.col(j);
      for (std::size_t i = 0; i < n; ++i) cj[i] += ak[i] * bkj;
    }
  }
}

void matmul_uj_guard_inside(const Matrix& a, const Matrix& b, Matrix& c,
                            std::size_t uf) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    std::size_t k = 0;
    for (; k + uf <= n; k += uf) {
      // The guard must be evaluated per unrolled K inside the I loop:
      // jamming moved the I loop outside the guards (the unsafe-reference
      // problem of §4 solved the slow way).
      for (std::size_t i = 0; i < n; ++i) {
        double s = cj[i];
        for (std::size_t m = 0; m < uf; ++m) {
          const double bkj = b(k + m, j);
          if (bkj != 0.0) s += a(i, k + m) * bkj;
        }
        cj[i] = s;
      }
    }
    for (; k < n; ++k) {
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      const double* ak = a.col(k);
      for (std::size_t i = 0; i < n; ++i) cj[i] += ak[i] * bkj;
    }
  }
}

void matmul_uj_ifinspect(const Matrix& a, const Matrix& b, Matrix& c,
                         std::size_t uf) {
  if (uf != 4)
    throw Error("matmul_uj_ifinspect: only the unroll factor 4 kernel is "
                "instantiated");
  const std::size_t n = a.rows();
  std::vector<std::size_t> klb(n + 1), kub(n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    // Inspector: record the maximal runs of nonzero B(K,J).
    std::size_t kc = 0;
    bool open = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (b(k, j) != 0.0) {
        if (!open) {
          klb[kc] = k;
          open = true;
        }
      } else if (open) {
        kub[kc++] = k - 1;
        open = false;
      }
    }
    if (open) kub[kc++] = n - 1;

    // Executor: unroll-and-jam K inside each range, guard-free.
    double* cj = c.col(j);
    for (std::size_t r = 0; r < kc; ++r) {
      std::size_t k = klb[r];
      const std::size_t hi = kub[r];
      for (; k + uf <= hi + 1; k += uf) {
        const double b0 = b(k, j), b1 = b(k + 1, j), b2 = b(k + 2, j),
                     b3 = b(k + 3, j);
        const double* a0 = a.col(k);
        const double* a1 = a.col(k + 1);
        const double* a2 = a.col(k + 2);
        const double* a3 = a.col(k + 3);
        for (std::size_t i = 0; i < n; ++i)
          cj[i] += a0[i] * b0 + a1[i] * b1 + a2[i] * b2 + a3[i] * b3;
      }
      for (; k <= hi; ++k) {
        const double bkj = b(k, j);
        const double* ak = a.col(k);
        for (std::size_t i = 0; i < n; ++i) cj[i] += ak[i] * bkj;
      }
    }
  }
}

}  // namespace blk::kernels
