// §4 guarded matrix multiply (the SGEMM kernel with a zero-skip guard) in
// three forms: the original, naive unroll-and-jam with the guard pushed
// into the innermost loop (the paper's negative result), and
// IF-inspection + unroll-and-jam (the paper's positive result).
#pragma once

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Generate the sparse-ish multiplier B: a `frequency` fraction of entries
/// are nonzero (set to 1.0), laid out in runs of `run_len` consecutive K
/// values per column — IF-inspection's profitability depends on run length
/// (the paper: "if the ranges ... are large").  run_len = 1 gives iid
/// scatter.
[[nodiscard]] Matrix make_guard_matrix(std::size_t n, double frequency,
                                       std::size_t run_len,
                                       std::uint64_t seed);

/// Original (Fig. 4 input): guard tested once per (K,J), inner I loop runs
/// only for nonzero B(K,J).
void matmul_guarded(const Matrix& a, const Matrix& b, Matrix& c);

/// Unroll-and-jam of K by `uf` with the guard replicated inside the
/// innermost loop — correct but slow (the paper's "UJ" column).
void matmul_uj_guard_inside(const Matrix& a, const Matrix& b, Matrix& c,
                            std::size_t uf = 4);

/// IF-inspection of the K loop, then unroll-and-jam by `uf` inside each
/// recorded range with no guards (the paper's "UJ+IF" column).
void matmul_uj_ifinspect(const Matrix& a, const Matrix& b, Matrix& c,
                         std::size_t uf = 4);

}  // namespace blk::kernels
