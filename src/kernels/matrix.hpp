// Column-major dense matrix and offset vector, matching the Fortran layout
// every kernel in the paper assumes (stride-one down columns).
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <vector>

#include "ir/error.hpp"

namespace blk::kernels {

/// Dense column-major matrix of doubles, 0-based.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), d_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return d_[j * rows_ + i];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return d_[j * rows_ + i];
  }

  /// Pointer to the top of column j.
  [[nodiscard]] double* col(std::size_t j) { return d_.data() + j * rows_; }
  [[nodiscard]] const double* col(std::size_t j) const {
    return d_.data() + j * rows_;
  }

  [[nodiscard]] std::span<double> flat() { return d_; }
  [[nodiscard]] std::span<const double> flat() const { return d_; }

  [[nodiscard]] bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> d_;
};

/// Fill with deterministic uniform values in [lo, hi).
inline void fill_random(Matrix& m, std::uint64_t seed, double lo = -1.0,
                        double hi = 1.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : m.flat()) x = dist(rng);
}

/// Random matrix made strongly diagonally dominant (safe for unpivoted LU).
inline Matrix random_diag_dominant(std::size_t n, std::uint64_t seed) {
  Matrix m(n, n);
  fill_random(m, seed);
  for (std::size_t i = 0; i < n; ++i)
    m(i, i) += static_cast<double>(n);
  return m;
}

/// Max |a-b| over all elements; matrices must agree in shape.
inline double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw Error("max_abs_diff: shape mismatch");
  double m = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    double d = fa[i] - fb[i];
    if (d < 0) d = -d;
    if (d > m) m = d;
  }
  return m;
}

/// 1-based signal with an arbitrary (possibly negative) lower index bound:
/// the adjoint-convolution filter F2(-N2:0) needs one.
class Signal {
 public:
  Signal() = default;
  Signal(long lb, long ub) : lb_(lb), d_(static_cast<std::size_t>(ub - lb + 1), 0.0) {}

  [[nodiscard]] long lower() const { return lb_; }
  [[nodiscard]] long upper() const { return lb_ + static_cast<long>(d_.size()) - 1; }
  [[nodiscard]] std::size_t size() const { return d_.size(); }

  [[nodiscard]] double& operator[](long i) {
    return d_[static_cast<std::size_t>(i - lb_)];
  }
  [[nodiscard]] double operator[](long i) const {
    return d_[static_cast<std::size_t>(i - lb_)];
  }

  [[nodiscard]] std::span<double> flat() { return d_; }
  [[nodiscard]] std::span<const double> flat() const { return d_; }

 private:
  long lb_ = 0;
  std::vector<double> d_;
};

inline void fill_random(Signal& s, std::uint64_t seed, double lo = -1.0,
                        double hi = 1.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : s.flat()) x = dist(rng);
}

}  // namespace blk::kernels
