#include "kernels/qr_givens.hpp"

#include <algorithm>
#include <cmath>

namespace blk::kernels {

void givens_qr_point(Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  for (std::size_t l = 0; l < n; ++l) {
    for (std::size_t j = l + 1; j < m; ++j) {
      if (a(j, l) == 0.0) continue;
      const double den =
          std::sqrt(a(l, l) * a(l, l) + a(j, l) * a(j, l));
      const double c = a(l, l) / den;
      const double s = a(j, l) / den;
      for (std::size_t k = l; k < n; ++k) {
        const double a1 = a(l, k);
        const double a2 = a(j, k);
        a(l, k) = c * a1 + s * a2;   // long-stride row accesses: the
        a(j, k) = -s * a1 + c * a2;  // cache problem of Fig. 9
      }
    }
  }
}

void givens_qr_opt(Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::vector<double> cs(m), sn(m);
  std::vector<std::size_t> jlb(m), jub(m);
  for (std::size_t l = 0; l < n; ++l) {
    // First distributed loop: generate rotations, apply them to column L
    // only, record the executed J ranges (IF-inspection).
    std::size_t jc = 0;
    bool open = false;
    for (std::size_t j = l + 1; j < m; ++j) {
      if (a(j, l) != 0.0) {
        const double den =
            std::sqrt(a(l, l) * a(l, l) + a(j, l) * a(j, l));
        const double c = a(l, l) / den;
        const double s = a(j, l) / den;
        cs[j] = c;  // scalar expansion of C and S
        sn[j] = s;
        const double a1 = a(l, l);
        const double a2 = a(j, l);
        a(l, l) = c * a1 + s * a2;  // index-set split of K at L: the K = L
        a(j, l) = -s * a1 + c * a2; // iteration runs here
        if (!open) {
          jlb[jc] = j;
          open = true;
        }
      } else if (open) {
        jub[jc++] = j - 1;
        open = false;
      }
    }
    if (open) jub[jc++] = m - 1;

    // Second loop: K outermost, J innermost over the recorded ranges —
    // stride-one down column K, with A(L,K) scalar-replaced across J.
    // K is additionally unroll-and-jammed by 4: each column's rotation
    // chain is serial in J, so jamming runs four independent chains and
    // shares the C(J)/S(J) loads.
    std::size_t k = l + 1;
    for (; k + 3 < n; k += 4) {
      double* k0 = a.col(k);
      double* k1 = a.col(k + 1);
      double* k2 = a.col(k + 2);
      double* k3 = a.col(k + 3);
      double t0 = k0[l], t1 = k1[l], t2 = k2[l], t3 = k3[l];
      for (std::size_t r = 0; r < jc; ++r) {
        const std::size_t hi = jub[r];
        for (std::size_t j = jlb[r]; j <= hi; ++j) {
          const double c = cs[j];
          const double s = sn[j];
          double a2;
          a2 = k0[j]; k0[j] = -s * t0 + c * a2; t0 = c * t0 + s * a2;
          a2 = k1[j]; k1[j] = -s * t1 + c * a2; t1 = c * t1 + s * a2;
          a2 = k2[j]; k2[j] = -s * t2 + c * a2; t2 = c * t2 + s * a2;
          a2 = k3[j]; k3[j] = -s * t3 + c * a2; t3 = c * t3 + s * a2;
        }
      }
      k0[l] = t0;
      k1[l] = t1;
      k2[l] = t2;
      k3[l] = t3;
    }
    for (; k < n; ++k) {
      double* ak = a.col(k);
      double all = ak[l];
      for (std::size_t r = 0; r < jc; ++r) {
        const std::size_t hi = jub[r];
        for (std::size_t j = jlb[r]; j <= hi; ++j) {
          const double a2 = ak[j];
          const double a1 = all;
          all = cs[j] * a1 + sn[j] * a2;
          ak[j] = -sn[j] * a1 + cs[j] * a2;
        }
      }
      ak[l] = all;
    }
  }
}

double givens_residual(const Matrix& r, const Matrix& r_ref) {
  const std::size_t n = r.cols();
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j && i < r.rows(); ++i)
      worst = std::max(worst, std::abs(r(i, j) - r_ref(i, j)));
  return worst;
}

}  // namespace blk::kernels
