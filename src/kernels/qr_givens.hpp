// §5.4 QR decomposition with Givens rotations: the point algorithm of
// Fig. 9 (row-oriented inner loop, long strides) and the optimized form of
// Fig. 10 (index-set splitting at K = L, IF-inspection of J, scalar
// expansion of the rotation coefficients, distribution and interchange —
// giving stride-one column access).
#pragma once

#include <cstddef>
#include <vector>

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Point algorithm (Fig. 9).  A is m x n, m >= n; on return the upper
/// triangle holds R and the sub-diagonal part is zeroed by rotations.
void givens_qr_point(Matrix& a);

/// Optimized algorithm (Fig. 10): rotation generation and the column-L
/// application stay in the J loop (recording C(J), S(J) and the executed
/// J ranges); the remaining columns are updated with K outermost and J
/// innermost over the recorded ranges.
void givens_qr_opt(Matrix& a);

/// ||R - R_ref||_max between two factorizations (rotations are sign-fixed
/// by construction, so R is unique given the same rotation order).
[[nodiscard]] double givens_residual(const Matrix& r, const Matrix& r_ref);

}  // namespace blk::kernels
