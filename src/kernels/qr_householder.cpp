#include "kernels/qr_householder.hpp"

#include <algorithm>
#include <cmath>

namespace blk::kernels {

namespace {

/// Generate the Householder reflector for column k (rows k..m-1), storing
/// v (scaled so v_k = 1) below the diagonal and beta in A(k,k).
/// Returns tau.
double make_reflector(Matrix& a, std::size_t k) {
  const std::size_t m = a.rows();
  double* ak = a.col(k);
  const double alpha = ak[k];
  double xnorm2 = 0.0;
  for (std::size_t i = k + 1; i < m; ++i) xnorm2 += ak[i] * ak[i];
  if (xnorm2 == 0.0) return 0.0;
  const double norm = std::sqrt(alpha * alpha + xnorm2);
  const double beta = alpha >= 0.0 ? -norm : norm;
  const double tau = (beta - alpha) / beta;
  const double scale = 1.0 / (alpha - beta);
  for (std::size_t i = k + 1; i < m; ++i) ak[i] *= scale;
  ak[k] = beta;
  return tau;
}

/// Apply (I - tau v v^T) to column j, with v stored in column k.
void apply_reflector(Matrix& a, std::size_t k, double tau, std::size_t j) {
  if (tau == 0.0) return;
  const std::size_t m = a.rows();
  const double* vk = a.col(k);
  double* cj = a.col(j);
  double w = cj[k];
  for (std::size_t i = k + 1; i < m; ++i) w += vk[i] * cj[i];
  w *= tau;
  cj[k] -= w;
  for (std::size_t i = k + 1; i < m; ++i) cj[i] -= w * vk[i];
}

}  // namespace

void householder_qr_point(Matrix& a, std::vector<double>& tau) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t kmax = std::min(n, m);
  tau.assign(n, 0.0);
  for (std::size_t k = 0; k < kmax; ++k) {
    tau[k] = make_reflector(a, k);
    for (std::size_t j = k + 1; j < n; ++j) apply_reflector(a, k, tau[k], j);
  }
}

void householder_qr_block(Matrix& a, std::vector<double>& tau,
                          std::size_t ks) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t kmax = std::min(n, m);
  tau.assign(n, 0.0);
  std::vector<double> t(ks * ks, 0.0);  // column-major b x b, upper tri
  std::vector<double> y(ks), w(ks), w2(ks);

  for (std::size_t kb = 0; kb < kmax; kb += ks) {
    const std::size_t b = std::min(ks, kmax - kb);
    // Panel factorization with immediate intra-panel application.
    for (std::size_t kk = 0; kk < b; ++kk) {
      const std::size_t k = kb + kk;
      tau[k] = make_reflector(a, k);
      for (std::size_t j = k + 1; j < kb + b; ++j)
        apply_reflector(a, k, tau[k], j);
    }
    if (kb + b >= n) break;  // no trailing columns

    // Form T: the paper's point-underivable extra computation (§5.3).
    std::fill(t.begin(), t.end(), 0.0);
    for (std::size_t j = 0; j < b; ++j) {
      t[j + j * b] = tau[kb + j];
      for (std::size_t i = 0; i < j; ++i) {
        // y(i) = v_i^T v_j over the rows where both are nonzero.
        double s = a(kb + j, kb + i);  // v_i at row kb+j times v_j's 1
        for (std::size_t r = kb + j + 1; r < m; ++r)
          s += a(r, kb + i) * a(r, kb + j);
        y[i] = s;
      }
      for (std::size_t i = 0; i < j; ++i) {
        double s = 0.0;
        for (std::size_t l = i; l < j; ++l) s += t[i + l * b] * y[l];
        t[i + j * b] = -tau[kb + j] * s;
      }
    }

    // Apply (I - V T V^T)^T to each trailing column: c -= V (T^T (V^T c)).
    for (std::size_t jc = kb + b; jc < n; ++jc) {
      double* c = a.col(jc);
      for (std::size_t i = 0; i < b; ++i) {
        const std::size_t k = kb + i;
        const double* vk = a.col(k);
        double s = c[k];
        for (std::size_t r = k + 1; r < m; ++r) s += vk[r] * c[r];
        w[i] = s;
      }
      for (std::size_t j = 0; j < b; ++j) {
        double s = 0.0;
        for (std::size_t i = 0; i <= j; ++i) s += t[i + j * b] * w[i];
        w2[j] = s;
      }
      for (std::size_t i = 0; i < b; ++i) {
        const std::size_t k = kb + i;
        const double* vk = a.col(k);
        c[k] -= w2[i];
        for (std::size_t r = k + 1; r < m; ++r) c[r] -= vk[r] * w2[i];
      }
    }
  }
}

double qr_gram_residual(const Matrix& factored, const Matrix& a0) {
  const std::size_t n = factored.cols();
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      // (R^T R)(i,j) = sum_k R(k,i) R(k,j), k <= min(i,j).
      double g1 = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k)
        g1 += factored(k, i) * factored(k, j);
      double g0 = 0.0;
      for (std::size_t k = 0; k < a0.rows(); ++k)
        g0 += a0(k, i) * a0(k, j);
      worst = std::max(worst, std::abs(g1 - g0));
    }
  }
  return worst / static_cast<double>(n);
}

}  // namespace blk::kernels
