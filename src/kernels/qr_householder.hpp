// §5.3 Householder QR.  The point algorithm applies one elementary
// reflector per column; the block algorithm aggregates KS reflectors with
// the compact-WY representation Q = I - V*T*V^T, whose T matrix is the
// computation the paper proves a compiler cannot derive from the point
// form (hence the BLOCK DO language extension of §6).
#pragma once

#include <vector>

#include "kernels/matrix.hpp"

namespace blk::kernels {

/// Point algorithm: for k = 0..n-1 compute the reflector for column k
/// (stored below the diagonal, v(k) = 1 implicit, scales in `tau`) and
/// apply it immediately to the trailing columns.
void householder_qr_point(Matrix& a, std::vector<double>& tau);

/// Block algorithm (compact WY): factor a KS-wide panel with the point
/// algorithm, accumulate T, and apply I - V*T^T*V^T to the trailing
/// matrix in matrix-matrix form.
void householder_qr_block(Matrix& a, std::vector<double>& tau,
                          std::size_t ks);

/// max |(R^T R - A0^T A0)(i,j)| / n — Q-free correctness invariant: the
/// Gram matrix of A is preserved by orthogonal transformation.
[[nodiscard]] double qr_gram_residual(const Matrix& factored,
                                      const Matrix& a0);

}  // namespace blk::kernels
