#include "lang/blockdo.hpp"

#include "ir/error.hpp"
#include "ir/stmt.hpp"

namespace blk::lang {

using namespace blk::ir;

ir::Env choose_block_sizes(const CompileResult& cr,
                           const MachineModel& machine) {
  ir::Env sizes;
  for (const auto& [var, bs] : cr.block_params)
    sizes[bs] = static_cast<long>(machine.block_size_2d());
  return sizes;
}

void bind_block_sizes(CompileResult& cr, const ir::Env& sizes) {
  for (const auto& [var, bs] : cr.block_params) {
    auto it = sizes.find(bs);
    if (it == sizes.end())
      throw Error("bind_block_sizes: no value chosen for " + bs);
    substitute_index_in_list(cr.program.body, bs, iconst(it->second));
  }
}

}  // namespace blk::lang
