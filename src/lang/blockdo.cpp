#include "lang/blockdo.hpp"

#include <algorithm>

#include "ir/error.hpp"
#include "ir/stmt.hpp"

namespace blk::lang {

using namespace blk::ir;

ir::Env choose_block_sizes(const CompileResult& cr,
                           const MachineModel& machine) {
  ir::Env sizes;
  for (const auto& [var, bs] : cr.block_params) {
    auto fx = cr.fixed_factors.find(bs);
    sizes[bs] = fx != cr.fixed_factors.end()
                    ? fx->second
                    : static_cast<long>(machine.block_size_2d());
  }
  return sizes;
}

ir::Env choose_block_sizes(CompileResult& cr,
                           const model::MachineParams& machine, long probe) {
  if (probe <= 0) {
    // Same sizing rule as pm's selectblock: the probe arrays must
    // overflow L1 or every factor looks equally good.
    const double target = 2.0 *
                          static_cast<double>(machine.l1().size_bytes) /
                          static_cast<double>(machine.element_bytes);
    probe = 16;
    while (static_cast<double>(probe) * static_cast<double>(probe) <
               target &&
           probe < 512)
      probe += 16;
  }

  ir::Env probe_env;
  for (const std::string& p : cr.program.params()) {
    bool is_factor = std::any_of(
        cr.block_params.begin(), cr.block_params.end(),
        [&](const auto& kv) { return kv.second == p; });
    if (!is_factor) probe_env[p] = probe;
  }

  ir::Env sizes;
  for (const auto& [var, bs] : cr.block_params) {
    auto fx = cr.fixed_factors.find(bs);
    if (fx != cr.fixed_factors.end()) {
      sizes[bs] = fx->second;
      continue;
    }
    Loop* focus = nullptr;
    for_each_stmt(cr.program.body, [&](Stmt& s) {
      if (!focus && s.kind() == SKind::Loop && s.as_loop().var == var)
        focus = &s.as_loop();
    });
    if (!focus)
      throw Error("choose_block_sizes: no loop over " + var);
    model::AnalyticModel am = model::build_analytic_model(
        cr.program.body, *focus, bs, probe_env, machine);
    sizes[bs] = am.largest_fitting(2, std::max(2L, am.trip));
  }
  return sizes;
}

void bind_block_sizes(CompileResult& cr, const ir::Env& sizes) {
  for (const auto& [var, bs] : cr.block_params) {
    auto it = sizes.find(bs);
    if (it == sizes.end())
      throw Error("bind_block_sizes: no value chosen for " + bs);
    substitute_index_in_list(cr.program.body, bs, iconst(it->second));
  }
}

}  // namespace blk::lang
