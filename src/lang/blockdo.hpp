// BLOCK DO lowering: bind each blocking-factor parameter introduced by the
// parser to a value chosen from the machine model.
#pragma once

#include "ir/iexpr.hpp"
#include "lang/machine.hpp"
#include "lang/parser.hpp"
#include "model/model.hpp"

namespace blk::lang {

/// Choose a blocking factor for every BLOCK DO in `cr` from the machine
/// model and return the parameter bindings (BS_<var> -> value), ready to
/// merge into the interpreter's parameter environment.  Factors fixed in
/// the source (BLOCK(n) DO) are passed through verbatim.
[[nodiscard]] ir::Env choose_block_sizes(const CompileResult& cr,
                                         const MachineModel& machine);

/// Analytic-model chooser: size each BLOCK DO's factor so the blocked
/// working set fits the effective cache fraction of `machine` (§6, the
/// same model selectblock uses).  Unbound parameters are probed at
/// `probe` (0: sized to overflow L1).  BLOCK(n) DO factors pass through.
[[nodiscard]] ir::Env choose_block_sizes(CompileResult& cr,
                                         const model::MachineParams& machine,
                                         long probe = 0);

/// Lower in place: substitute each blocking-factor parameter by its chosen
/// constant, yielding ordinary Fortran-level IR with literal block sizes.
void bind_block_sizes(CompileResult& cr, const ir::Env& sizes);

}  // namespace blk::lang
