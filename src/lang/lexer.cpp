#include "lang/lexer.hpp"

#include <cctype>

#include "ir/error.hpp"

namespace blk::lang {

namespace {

[[nodiscard]] char upper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  bool at_line_start = true;
  auto push = [&](Tok k, std::string text = {}, long iv = 0, double rv = 0) {
    out.push_back({.kind = k,
                   .text = std::move(text),
                   .ivalue = iv,
                   .rvalue = rv,
                   .line = line});
  };

  while (i < src.size()) {
    char c = src[i];
    // Fortran-style whole-line comments: C/c/* in column one.
    if (at_line_start && (c == 'C' || c == 'c' || c == '*') &&
        (i + 1 >= src.size() || src[i + 1] == ' ' || src[i + 1] == '\n')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    at_line_start = false;
    if (c == '!') {  // inline comment
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      if (!out.empty() && out.back().kind != Tok::Newline)
        push(Tok::Newline);
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '.') {
      // Relational operator .XX. or a real literal like .5
      if (i + 3 < src.size() && ident_start(src[i + 1])) {
        std::string op;
        op += upper(src[i + 1]);
        op += upper(src[i + 2]);
        if (src[i + 3] == '.') {
          if (op == "EQ" || op == "NE" || op == "LT" || op == "LE" ||
              op == "GT" || op == "GE") {
            push(Tok::RelOp, "." + op + ".");
            i += 4;
            continue;
          }
          throw Error("lex: unknown relational operator ." + op +
                      ". at line " + std::to_string(line));
        }
      }
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[j])))
        ++j;
      if (j < src.size() && src[j] == '.' &&
          !(j + 1 < src.size() && ident_start(src[j + 1]))) {
        is_real = true;
        ++j;
        while (j < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[j])))
          ++j;
      }
      if (j < src.size() && (src[j] == 'e' || src[j] == 'E' ||
                             src[j] == 'd' || src[j] == 'D')) {
        std::size_t k = j + 1;
        if (k < src.size() && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < src.size() &&
            std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_real = true;
          j = k;
          while (j < src.size() &&
                 std::isdigit(static_cast<unsigned char>(src[j])))
            ++j;
        }
      }
      std::string text(src.substr(i, j - i));
      for (char& ch : text)
        if (ch == 'd' || ch == 'D') ch = 'e';
      if (is_real)
        push(Tok::Real, text, 0, std::stod(text));
      else
        push(Tok::Integer, text, std::stol(text));
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      std::string name;
      while (j < src.size() && ident_char(src[j])) name += upper(src[j++]);
      push(Tok::Ident, std::move(name));
      i = j;
      continue;
    }
    switch (c) {
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case ',': push(Tok::Comma); break;
      case ':': push(Tok::Colon); break;
      case '=': push(Tok::Assign); break;
      default:
        throw Error(std::string("lex: unexpected character '") + c +
                    "' at line " + std::to_string(line));
    }
    ++i;
  }
  if (!out.empty() && out.back().kind != Tok::Newline) push(Tok::Newline);
  push(Tok::End);
  return out;
}

}  // namespace blk::lang
