// Lexer for the mini-Fortran input language (§6).
//
// The language is the Fortran-77 subset the paper's examples use — DO
// loops, IF/THEN/ELSE, REAL*8 arrays, MIN/MAX/SQRT/ABS intrinsics — plus
// the paper's proposed machine-independence extensions: BLOCK DO, IN ... DO
// and LAST().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace blk::lang {

enum class Tok : std::uint8_t {
  Ident,    // names and keywords (keyword-ness decided by the parser)
  Integer,  // 123
  Real,     // 1.5, 0.0, 2e-3
  RelOp,    // .EQ. .NE. .LT. .LE. .GT. .GE. (text carries which)
  Plus, Minus, Star, Slash,
  LParen, RParen, Comma, Colon, Assign,
  Newline,  // statement separator
  End,      // end of input
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // identifier/relop text (upper-cased), number text
  long ivalue = 0;    // Integer payload
  double rvalue = 0;  // Real payload
  int line = 0;       // 1-based source line for diagnostics
};

/// Tokenize `src`.  Comments ('!' to end of line, or a leading C/c/*)
/// are skipped; blank lines collapse.  Throws blk::Error with a line
/// number on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view src);

}  // namespace blk::lang
