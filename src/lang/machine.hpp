// Machine model used by the compiler to choose blocking factors (§6: the
// whole point of BLOCK DO is that this choice is the compiler's, not the
// programmer's).
#pragma once

#include <cstddef>

namespace blk::lang {

/// Memory-hierarchy parameters of the target.  Defaults model the paper's
/// IBM RS/6000 540 (64 KB data cache, 128-byte lines, 4-way).
struct MachineModel {
  std::size_t cache_bytes = 64 * 1024;
  std::size_t line_bytes = 128;
  std::size_t assoc = 4;
  std::size_t element_bytes = 8;   ///< double precision
  std::size_t fp_registers = 32;

  /// Blocking factor for a loop whose block touches roughly
  /// footprint_per_iter * BS bytes of reused data (the Lam/Rothberg/Wolf
  /// working-set rule: keep the block's working set within a fraction of
  /// capacity to dodge interference).  For the canonical 2-D case the
  /// working set is BS^2 elements, giving BS ~ sqrt(cache/(3*elem)).
  [[nodiscard]] std::size_t block_size_2d() const {
    std::size_t bs = 4;
    while ((bs * 2) * (bs * 2) * element_bytes * 3 <= cache_bytes)
      bs *= 2;
    if (bs < 4) bs = 4;
    if (bs > 256) bs = 256;
    return bs;
  }

  /// Register-blocking (unroll-and-jam) factor: leave room for the
  /// accumulators plus a couple of shared operands.
  [[nodiscard]] std::size_t unroll_factor() const {
    std::size_t u = fp_registers / 8;
    if (u < 2) u = 2;
    if (u > 8) u = 8;
    return u;
  }
};

}  // namespace blk::lang
