#include "lang/parser.hpp"

#include <set>

#include "ir/error.hpp"
#include "lang/lexer.hpp"

namespace blk::lang {

using namespace blk::ir;

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  CompileResult run() {
    skip_newlines();
    while (is_ident("PARAMETER") || is_ident("REAL")) {
      parse_decl();
      skip_newlines();
    }
    res_.program.body = parse_stmts({});
    expect(Tok::End, "end of input");
    return std::move(res_);
  }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  CompileResult res_;
  std::set<std::string> loop_vars_;

  struct BlockCtx {
    std::string var;
    IExprPtr ub;       // the BLOCK DO's upper bound
    std::string bs;    // blocking-factor parameter name
  };
  std::vector<BlockCtx> blocks_;

  // ---- token plumbing ------------------------------------------------

  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  void advance() {
    if (cur().kind != Tok::End) ++pos_;
  }
  [[nodiscard]] bool is(Tok k) const { return cur().kind == k; }
  [[nodiscard]] bool is_ident(std::string_view kw) const {
    return cur().kind == Tok::Ident && cur().text == kw;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("parse: " + what + " at line " +
                std::to_string(cur().line));
  }
  void expect(Tok k, const std::string& what) {
    if (!is(k)) fail("expected " + what);
    advance();
  }
  void expect_ident(std::string_view kw) {
    if (!is_ident(kw)) fail("expected " + std::string(kw));
    advance();
  }
  void end_of_stmt() {
    if (is(Tok::End)) return;
    expect(Tok::Newline, "end of statement");
    skip_newlines();
  }
  void skip_newlines() {
    while (is(Tok::Newline)) advance();
  }

  // ---- declarations ---------------------------------------------------

  void parse_decl() {
    if (is_ident("PARAMETER")) {
      advance();
      for (;;) {
        if (!is(Tok::Ident)) fail("expected parameter name");
        res_.program.param(cur().text);
        advance();
        if (!is(Tok::Comma)) break;
        advance();
      }
      end_of_stmt();
      return;
    }
    expect_ident("REAL");
    if (is(Tok::Star)) {  // REAL*8
      advance();
      expect(Tok::Integer, "width after REAL*");
    }
    for (;;) {
      if (!is(Tok::Ident)) fail("expected variable name");
      std::string name = cur().text;
      advance();
      if (is(Tok::LParen)) {
        advance();
        std::vector<Dim> dims;
        for (;;) {
          IExprPtr a = parse_iexpr();
          if (is(Tok::Colon)) {
            advance();
            IExprPtr b = parse_iexpr();
            dims.push_back({.lb = std::move(a), .ub = std::move(b)});
          } else {
            dims.push_back({.lb = iconst(1), .ub = std::move(a)});
          }
          if (is(Tok::Comma)) {
            advance();
            continue;
          }
          break;
        }
        expect(Tok::RParen, ")");
        res_.program.array_bounds(name, std::move(dims));
      } else {
        res_.program.scalar(name);
      }
      if (!is(Tok::Comma)) break;
      advance();
    }
    end_of_stmt();
  }

  // ---- statements -----------------------------------------------------

  /// Parse until one of `stops` (an identifier keyword) or End; the stop
  /// token is left unconsumed.
  StmtList parse_stmts(const std::set<std::string>& stops) {
    StmtList out;
    skip_newlines();
    while (!is(Tok::End)) {
      if (cur().kind == Tok::Ident && stops.contains(cur().text)) break;
      out.push_back(parse_stmt());
      skip_newlines();
    }
    return out;
  }

  StmtPtr parse_stmt() {
    if (is_ident("DO")) return parse_do(/*block=*/false);
    if (is_ident("BLOCK")) {
      advance();
      long factor = 0;
      if (is(Tok::LParen)) {  // BLOCK(8) DO: explicit factor override
        advance();
        if (!is(Tok::Integer)) fail("expected integer blocking factor");
        factor = std::stol(cur().text);
        if (factor < 1) fail("blocking factor must be >= 1");
        advance();
        expect(Tok::RParen, ")");
      }
      return parse_do(/*block=*/true, factor);
    }
    if (is_ident("IN")) return parse_in_do();
    if (is_ident("IF")) return parse_if();
    return parse_assign();
  }

  StmtPtr parse_do(bool block, long factor = 0) {
    expect_ident("DO");
    if (!is(Tok::Ident)) fail("expected loop variable");
    std::string var = cur().text;
    advance();
    expect(Tok::Assign, "=");
    IExprPtr lb = parse_iexpr();
    expect(Tok::Comma, ",");
    IExprPtr ub = parse_iexpr();
    IExprPtr step = iconst(1);
    if (!block && is(Tok::Comma)) {
      advance();
      step = parse_iexpr();
    }
    end_of_stmt();

    if (loop_vars_.contains(var)) fail("loop variable " + var + " shadowed");
    loop_vars_.insert(var);
    if (block) {
      // §6: the compiler owns the blocking factor; introduce BS_<var>.
      std::string bs = "BS_" + var;
      res_.program.param(bs);
      res_.block_params[var] = bs;
      if (factor > 0) res_.fixed_factors[bs] = factor;
      blocks_.push_back({.var = var, .ub = ub, .bs = bs});
      step = ivar(bs);
    }
    StmtList body = parse_stmts({"ENDDO"});
    expect_ident("ENDDO");
    loop_vars_.erase(var);
    if (block) blocks_.pop_back();
    res_.program.note_var(var);
    return make_loop(var, std::move(lb), std::move(ub), std::move(body),
                     std::move(step));
  }

  /// IN V DO VV [= lb, ub]: a loop over the current block of BLOCK DO V.
  StmtPtr parse_in_do() {
    expect_ident("IN");
    if (!is(Tok::Ident)) fail("expected BLOCK DO variable after IN");
    std::string region = cur().text;
    advance();
    const BlockCtx* ctx = nullptr;
    for (const auto& b : blocks_)
      if (b.var == region) ctx = &b;
    if (!ctx) fail("IN " + region + ": no enclosing BLOCK DO " + region);
    expect_ident("DO");
    if (!is(Tok::Ident)) fail("expected loop variable");
    std::string var = cur().text;
    advance();
    IExprPtr lb, ub;
    if (is(Tok::Assign)) {
      advance();
      lb = parse_iexpr();
      expect(Tok::Comma, ",");
      ub = parse_iexpr();
    } else {
      // Default region: first to last index of the current block.
      lb = ivar(region);
      ub = last_of(*ctx);
    }
    end_of_stmt();
    if (loop_vars_.contains(var)) fail("loop variable " + var + " shadowed");
    loop_vars_.insert(var);
    StmtList body = parse_stmts({"ENDDO"});
    expect_ident("ENDDO");
    loop_vars_.erase(var);
    res_.program.note_var(var);
    return make_loop(var, std::move(lb), std::move(ub), std::move(body));
  }

  StmtPtr parse_if() {
    expect_ident("IF");
    expect(Tok::LParen, "(");
    VExprPtr lhs = parse_vexpr();
    if (!is(Tok::RelOp)) fail("expected relational operator");
    std::string op = cur().text;
    advance();
    VExprPtr rhs = parse_vexpr();
    expect(Tok::RParen, ")");
    expect_ident("THEN");
    end_of_stmt();
    StmtList then_body = parse_stmts({"ELSE", "ENDIF"});
    StmtList else_body;
    if (is_ident("ELSE")) {
      advance();
      end_of_stmt();
      else_body = parse_stmts({"ENDIF"});
    }
    expect_ident("ENDIF");
    CmpOp cmp = op == ".EQ." ? CmpOp::EQ
                : op == ".NE." ? CmpOp::NE
                : op == ".LT." ? CmpOp::LT
                : op == ".LE." ? CmpOp::LE
                : op == ".GT." ? CmpOp::GT
                               : CmpOp::GE;
    return make_if({.lhs = std::move(lhs), .op = cmp, .rhs = std::move(rhs)},
                   std::move(then_body), std::move(else_body));
  }

  StmtPtr parse_assign() {
    int label = 0;
    if (is(Tok::Integer)) {  // optional "10:" statement label
      label = static_cast<int>(cur().ivalue);
      advance();
      expect(Tok::Colon, ":");
    }
    if (!is(Tok::Ident)) fail("expected assignment target");
    std::string name = cur().text;
    advance();
    LValue lhs{.name = name, .subs = {}};
    if (is(Tok::LParen)) {
      if (!res_.program.has_array(name))
        fail(name + " is not a declared array");
      advance();
      for (;;) {
        lhs.subs.push_back(parse_iexpr());
        if (is(Tok::Comma)) {
          advance();
          continue;
        }
        break;
      }
      expect(Tok::RParen, ")");
    } else if (!res_.program.has_scalar(name)) {
      fail(name + " is not a declared scalar");
    }
    expect(Tok::Assign, "=");
    VExprPtr rhs = parse_vexpr();
    end_of_stmt();
    return make_assign(std::move(lhs), std::move(rhs), label);
  }

  // ---- index expressions ----------------------------------------------

  [[nodiscard]] IExprPtr last_of(const BlockCtx& b) const {
    // LAST(V) = MIN(V + BS_V - 1, <BLOCK DO upper bound>)
    return imin(isub(iadd(ivar(b.var), ivar(b.bs)), iconst(1)), b.ub);
  }

  IExprPtr parse_iexpr() {
    IExprPtr e = parse_iterm();
    while (is(Tok::Plus) || is(Tok::Minus)) {
      bool add = is(Tok::Plus);
      advance();
      IExprPtr r = parse_iterm();
      e = add ? iadd(std::move(e), std::move(r))
              : isub(std::move(e), std::move(r));
    }
    return e;
  }

  IExprPtr parse_iterm() {
    IExprPtr e = parse_ifactor();
    while (is(Tok::Star) || is(Tok::Slash)) {
      bool mul = is(Tok::Star);
      advance();
      IExprPtr r = parse_ifactor();
      if (mul) {
        e = imul(std::move(e), std::move(r));
      } else {
        if (r->kind != IKind::Const || r->value <= 0)
          fail("index division requires a positive constant divisor");
        e = ifloordiv(std::move(e), r->value);
      }
    }
    return e;
  }

  IExprPtr parse_ifactor() {
    if (is(Tok::Minus)) {
      advance();
      return isub(iconst(0), parse_ifactor());
    }
    if (is(Tok::Integer)) {
      long v = cur().ivalue;
      advance();
      return iconst(v);
    }
    if (is(Tok::LParen)) {
      advance();
      IExprPtr e = parse_iexpr();
      expect(Tok::RParen, ")");
      return e;
    }
    if (!is(Tok::Ident)) fail("expected index expression");
    std::string name = cur().text;
    advance();
    if (name == "MIN" || name == "MAX") {
      expect(Tok::LParen, "(");
      IExprPtr e = parse_iexpr();
      do {
        expect(Tok::Comma, ",");
        IExprPtr r = parse_iexpr();
        e = name == "MIN" ? imin(std::move(e), std::move(r))
                          : imax(std::move(e), std::move(r));
      } while (is(Tok::Comma));
      expect(Tok::RParen, ")");
      return e;
    }
    if (name == "LAST") {
      expect(Tok::LParen, "(");
      if (!is(Tok::Ident)) fail("LAST expects a BLOCK DO variable");
      std::string region = cur().text;
      advance();
      expect(Tok::RParen, ")");
      for (const auto& b : blocks_)
        if (b.var == region) return last_of(b);
      fail("LAST(" + region + "): no enclosing BLOCK DO " + region);
    }
    if (is(Tok::LParen)) {
      // Integer-valued array element as an index (IF-inspection style).
      advance();
      IExprPtr ix = parse_iexpr();
      expect(Tok::RParen, ")");
      return ielem(name, std::move(ix));
    }
    return ivar(name);
  }

  // ---- value expressions ----------------------------------------------

  VExprPtr parse_vexpr() {
    VExprPtr e = parse_vterm();
    while (is(Tok::Plus) || is(Tok::Minus)) {
      bool add = is(Tok::Plus);
      advance();
      VExprPtr r = parse_vterm();
      e = add ? vadd(std::move(e), std::move(r))
              : vsub(std::move(e), std::move(r));
    }
    return e;
  }

  VExprPtr parse_vterm() {
    VExprPtr e = parse_vfactor();
    while (is(Tok::Star) || is(Tok::Slash)) {
      bool mul = is(Tok::Star);
      advance();
      VExprPtr r = parse_vfactor();
      e = mul ? vmul(std::move(e), std::move(r))
              : vdiv(std::move(e), std::move(r));
    }
    return e;
  }

  VExprPtr parse_vfactor() {
    if (is(Tok::Minus)) {
      advance();
      return vneg(parse_vfactor());
    }
    if (is(Tok::Integer)) {
      double v = static_cast<double>(cur().ivalue);
      advance();
      return vconst(v);
    }
    if (is(Tok::Real)) {
      double v = cur().rvalue;
      advance();
      return vconst(v);
    }
    if (is(Tok::LParen)) {
      advance();
      VExprPtr e = parse_vexpr();
      expect(Tok::RParen, ")");
      return e;
    }
    if (!is(Tok::Ident)) fail("expected expression");
    std::string name = cur().text;
    advance();
    if (name == "SQRT" || name == "ABS" || name == "DSQRT" ||
        name == "DABS") {
      expect(Tok::LParen, "(");
      VExprPtr e = parse_vexpr();
      expect(Tok::RParen, ")");
      return vun(name == "SQRT" || name == "DSQRT" ? UnOp::Sqrt : UnOp::Abs,
                 std::move(e));
    }
    if (is(Tok::LParen)) {
      if (!res_.program.has_array(name))
        fail(name + " is not a declared array");
      advance();
      std::vector<IExprPtr> subs;
      for (;;) {
        subs.push_back(parse_iexpr());
        if (is(Tok::Comma)) {
          advance();
          continue;
        }
        break;
      }
      expect(Tok::RParen, ")");
      return vref(name, std::move(subs));
    }
    if (res_.program.has_scalar(name)) return vscalar(name);
    // Loop variable or parameter used as a value.
    return vindex(ivar(name));
  }
};

}  // namespace

CompileResult compile(std::string_view source) {
  return Parser(source).run();
}

}  // namespace blk::lang
