// Recursive-descent parser: mini-Fortran source -> blk::ir::Program.
//
// Declarations:
//   PARAMETER N, KS
//   REAL*8 A(N,N), F2(-N2:0)
//   REAL*8 TAU                      ! scalars have no dimensions
// Statements:
//   DO V = lb, ub [, step] ... ENDDO
//   BLOCK DO V = lb, ub ... ENDDO              (§6 extension)
//   BLOCK(8) DO V = lb, ub ... ENDDO           (explicit factor override)
//   IN V DO VV [= lb, ub] ... ENDDO            (§6 extension)
//   IF (expr .OP. expr) THEN ... [ELSE ...] ENDIF
//   [label:] lvalue = expression
// Index expressions may use MIN(...), MAX(...) (any arity >= 2) and
// LAST(V) inside an IN-region (§6).
//
// Each BLOCK DO introduces a fresh symbolic blocking-factor parameter
// named BS_<var> recorded in CompileResult::block_params; callers bind it
// to a machine-chosen value (see blockdo.hpp) or at interpretation time.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "ir/program.hpp"

namespace blk::lang {

struct CompileResult {
  ir::Program program;
  /// BLOCK DO loop variable -> blocking-factor parameter name (BS_<var>).
  std::map<std::string, std::string> block_params;
  /// Explicit factors from BLOCK(n) DO, keyed by the parameter name.  The
  /// machine-model chooser honors these verbatim instead of modeling.
  std::map<std::string, long> fixed_factors;
};

/// Parse and lower mini-Fortran source text.  Throws blk::Error with a
/// line number on syntax or symbol errors.
[[nodiscard]] CompileResult compile(std::string_view source);

}  // namespace blk::lang
