#include "model/model.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "analysis/reuse.hpp"
#include "ir/affine.hpp"
#include "ir/error.hpp"
#include "ir/stmt.hpp"

namespace blk::model {

using namespace blk::ir;

namespace {

[[nodiscard]] std::size_t parse_size(const std::string& tok,
                                     const std::string& whole) {
  if (tok.empty())
    throw Error("parse_cache_config: empty field in '" + whole + "'");
  std::size_t pos = 0;
  while (pos < tok.size() &&
         std::isdigit(static_cast<unsigned char>(tok[pos])))
    ++pos;
  if (pos == 0)
    throw Error("parse_cache_config: expected a number in '" + whole + "'");
  std::size_t value = std::stoull(tok.substr(0, pos));
  std::string suffix = tok.substr(pos);
  for (char& c : suffix) c = static_cast<char>(std::toupper(c));
  if (suffix == "K" || suffix == "KB")
    value *= 1024;
  else if (suffix == "M" || suffix == "MB")
    value *= 1024 * 1024;
  else if (!suffix.empty() && suffix != "B")
    throw Error("parse_cache_config: bad size suffix '" + suffix + "' in '" +
                whole + "'");
  return value;
}

[[nodiscard]] long ceil_to(long bytes, long granule) {
  return (bytes + granule - 1) / granule * granule;
}

}  // namespace

cachesim::CacheConfig parse_cache_config(const std::string& s) {
  std::vector<std::string> fields;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, '/')) fields.push_back(item);
  if (fields.size() != 3)
    throw Error("parse_cache_config: expected SIZE/LINE/ASSOC, got '" + s +
                "'");
  cachesim::CacheConfig cfg;
  cfg.size_bytes = parse_size(fields[0], s);
  cfg.line_bytes = parse_size(fields[1], s);
  cfg.assoc = parse_size(fields[2], s);
  if (cfg.line_bytes == 0 || cfg.assoc == 0 ||
      cfg.size_bytes < cfg.line_bytes * cfg.assoc)
    throw Error("parse_cache_config: degenerate geometry '" + s + "'");
  return cfg;
}

long FootprintTerm::span(std::size_t dim, long ks, const ir::Env& env) const {
  const DimSpan& d = dims[dim];
  long s = 1 + d.ks_coef * (ks - 1) + d.fixed;
  for (const auto& [extent, coef] : d.dyn) {
    long ext = 1;
    try {
      ext = std::max(1L, ir::evaluate(extent, env));
    } catch (const Error&) {
      // Unresolvable extent (runtime scalar bound): no span contribution
      // beyond the conservative `fixed` part already accumulated.
    }
    s += coef * (ext - 1);
  }
  return std::max(1L, s);
}

long AnalyticModel::footprint_bytes(long ks) const {
  ir::Env e = env;
  e[ks_name] = ks;
  long total = 0;
  const long line = static_cast<long>(line_bytes);
  for (const FootprintTerm& t : terms) {
    if (t.streaming) {
      total += line;
      continue;
    }
    // Dimension 0 is contiguous (column-major): round to line granularity.
    long bytes = t.dims.empty()
                     ? static_cast<long>(element_bytes)
                     : ceil_to(t.span(0, ks, e) *
                                   static_cast<long>(element_bytes),
                               line);
    for (std::size_t d = 1; d < t.dims.size(); ++d) bytes *= t.span(d, ks, e);
    total += bytes;
  }
  return total;
}

long AnalyticModel::largest_fitting(long lo, long hi) const {
  if (hi < lo) return lo;
  if (footprint_bytes(lo) > static_cast<long>(budget_bytes)) return lo;
  // footprint is monotone non-decreasing in ks: binary-search the knee.
  long best = lo;
  while (lo <= hi) {
    long mid = lo + (hi - lo) / 2;
    if (footprint_bytes(mid) <= static_cast<long>(budget_bytes)) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

std::vector<long> AnalyticModel::candidates() const {
  const long hi = std::max(2L, trip);
  const long base = largest_fitting(2, hi);
  std::set<long> set;
  for (long k : {base / 4, base / 2, base, base * 3 / 2, base * 2, base * 3,
                 base * 4})
    set.insert(std::clamp(k, 2L, hi));
  return {set.begin(), set.end()};
}

AnalyticModel build_analytic_model(StmtList& root, Loop& focus,
                                   const std::string& ks_name,
                                   const ir::Env& probe_env,
                                   const MachineParams& machine) {
  AnalyticModel m;
  m.ks_name = ks_name;
  m.line_bytes = machine.l1().line_bytes;
  m.element_bytes = machine.element_bytes;
  m.budget_bytes = machine.effective_fraction *
                   static_cast<double>(machine.l1().size_bytes);

  // Bind every loop variable of the nest to its lower bound, outermost
  // first, so symbolic extents (N - K, MIN(K+KS-1, N-1) - K + 1) evaluate
  // to their maximum over the iteration space.
  m.env = probe_env;
  for_each_stmt(root, [&](Stmt& s) {
    if (s.kind() != SKind::Loop) return;
    Loop& l = s.as_loop();
    try {
      m.env[l.var] = ir::evaluate(l.lb, m.env);
    } catch (const Error&) {
      m.env[l.var] = 1;
    }
  });

  try {
    m.trip = std::max(1L, ir::evaluate(focus.ub, m.env) -
                              ir::evaluate(focus.lb, m.env) + 1);
  } catch (const Error&) {
    m.trip = 2;
  }

  const long line_elements = std::max(
      1L, static_cast<long>(m.line_bytes / std::max<std::size_t>(
                                               1, m.element_bytes)));
  std::vector<analysis::LoopReuse> reuse =
      analysis::analyze_reuse(root, line_elements);
  const analysis::LoopReuse* focus_reuse = nullptr;
  for (const analysis::LoopReuse& lr : reuse)
    if (lr.loop == &focus) focus_reuse = &lr;
  if (!focus_reuse) throw Error("build_analytic_model: focus not in root");

  std::set<std::string> seen;
  for (const analysis::RefReuse& rr : focus_reuse->refs) {
    const analysis::RefInfo& ref = rr.ref;
    FootprintTerm term;
    term.array = ref.array;
    term.reuse = analysis::to_string(rr.kind);
    std::string subs_text;
    for (const auto& sub : ref.subs) {
      if (!subs_text.empty()) subs_text += ",";
      subs_text += ir::to_string(sub);
    }
    term.subscripts = subs_text;
    if (!seen.insert(term.array + "(" + subs_text + ")").second)
      continue;  // a read and a write of the same region share one term

    bool ks_dependent = false;
    for (const auto& sub : ref.subs) {
      FootprintTerm::DimSpan d;
      auto f = as_affine(*sub);
      if (!f) {
        // MIN/MAX subscript: conservative — the whole dimension may be
        // touched if the blocked variable is involved at all.
        if (mentions(*sub, focus.var) || mentions(*sub, ks_name)) {
          d.ks_coef = 1;
          ks_dependent = true;
        }
        term.dims.push_back(std::move(d));
        continue;
      }
      for (const auto& [v, a] : f->coef) {
        const long coef = std::abs(a);
        if (v == focus.var || v == ks_name) {
          d.ks_coef += coef;
          continue;
        }
        // Resolve v against *this reference's* loop chain: loop-variable
        // names repeat across distributed nests (Fig. 11 has two KK
        // region loops), so a name-keyed map over the whole focus body
        // would conflate loops with very different extents.
        Loop* governing = nullptr;
        bool outer_bound = false;
        {
          bool past_focus = false;
          for (Loop* l : ref.loops) {
            if (l == &focus) {
              past_focus = true;
              continue;
            }
            if (l->var != v) continue;
            if (past_focus)
              governing = l;  // innermost match inside the focus
            else
              outer_bound = true;
          }
        }
        if (outer_bound && !governing)
          continue;  // fixed while the block executes: offset only
        if (governing) {
          Loop& l = *governing;
          IExprPtr extent = iadd(isub(l.ub, l.lb), iconst(1));
          if (mentions(*extent, ks_name)) {
            // An IN ... DO region loop: its extent tracks the factor —
            // but only a *growing* extent holds the block's reuse set.
            // A shrinking one (the trailing remainder, J = LAST(K)+1, N)
            // streams through the cache one iteration at a time and
            // contributes no resident span.
            bool grows = true;
            try {
              ir::Env lo = m.env, hi = m.env;
              lo[ks_name] = 2;
              hi[ks_name] = 4;
              grows = ir::evaluate(extent, hi) > ir::evaluate(extent, lo);
            } catch (const Error&) {
              // Unresolvable either way: keep the conservative dyn term.
            }
            if (grows) d.dyn.emplace_back(std::move(extent), coef);
            continue;
          }
          long ext = 1;
          try {
            ext = std::max(1L, ir::evaluate(extent, m.env));
          } catch (const Error&) {
            ext = m.trip;
          }
          d.fixed += coef * (ext - 1);
          continue;
        }
        if (probe_env.contains(v)) continue;  // parameter: fixed offset
        // Unknown runtime scalar (pivot row IMAX): conservatively the
        // whole probed extent.
        long worst = 1;
        for (const auto& [pname, pval] : probe_env)
          worst = std::max(worst, pval);
        d.fixed += coef * (worst - 1);
      }
      if (d.ks_coef != 0 || !d.dyn.empty()) ks_dependent = true;
      term.dims.push_back(std::move(d));
    }
    term.streaming = !ks_dependent;
    m.terms.push_back(std::move(term));
  }
  return m;
}

bool BlockChoice::within_tolerance(double tolerance) const {
  if (!swept || table.empty()) return true;
  // Guard the zero-optimum case with a small absolute allowance.
  return chosen_metric <= best_swept_metric * (1.0 + tolerance) + 1e-9;
}

std::string BlockChoice::to_string() const {
  std::ostringstream os;
  os << "auto-b: " << ks_name << " = " << ks << " (analytic " << analytic_ks
     << ", footprint " << analytic_footprint_bytes << "B of "
     << static_cast<long>(budget_bytes) << "B budget, probe " << probe
     << ")\n";
  if (swept) {
    os << "  " << metric_name << " sweep:\n";
    for (const Row& r : table) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "    ks=%-4ld %s=%.6f  miss=%.4f  acc=%llu  pred=%ldB%s%s",
                    r.ks, metric_name.c_str(), r.metric, r.miss_ratio,
                    static_cast<unsigned long long>(r.accesses),
                    r.predicted_bytes, r.from_model ? "  [model]" : "",
                    r.ks == ks ? "  <== chosen" : "");
      os << line << "\n";
    }
    char tail[128];
    std::snprintf(tail, sizeof tail,
                  "  sweep optimum ks=%ld (%s=%.6f); chosen within 10%%: %s",
                  best_swept_ks, metric_name.c_str(), best_swept_metric,
                  within_tolerance() ? "yes" : "NO");
    os << tail << "\n";
    if (compressed_traces) {
      os << "  traces: " << (traces_synthesized ? "synthesized" : "recorded")
         << ", store " << store_hits << " hit/" << store_misses << " miss";
      if (sample_every > 1) {
        char samp[96];
        std::snprintf(samp, sizeof samp,
                      ", sampled 1/%ld (probe delta %.6f)", sample_every,
                      sample_delta);
        os << samp;
      } else if (sample_validated) {
        char samp[96];
        std::snprintf(samp, sizeof samp,
                      ", sampling rejected (probe delta %.6f)", sample_delta);
        os << samp;
      }
      os << "\n";
    }
  }
  if (!note.empty()) os << "  note: " << note << "\n";
  return os.str();
}

std::string BlockChoice::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"ks_name\": \"" << ks_name << "\",\n"
     << "  \"ks\": " << ks << ",\n"
     << "  \"analytic_ks\": " << analytic_ks << ",\n"
     << "  \"probe\": " << probe << ",\n"
     << "  \"budget_bytes\": " << static_cast<long>(budget_bytes) << ",\n"
     << "  \"analytic_footprint_bytes\": " << analytic_footprint_bytes
     << ",\n"
     << "  \"candidates\": [";
  for (std::size_t i = 0; i < candidates.size(); ++i)
    os << (i ? ", " : "") << candidates[i];
  os << "],\n"
     << "  \"swept\": " << (swept ? "true" : "false") << ",\n"
     << "  \"metric\": \"" << metric_name << "\",\n"
     << "  \"chosen_metric\": " << chosen_metric << ",\n"
     << "  \"best_swept_ks\": " << best_swept_ks << ",\n"
     << "  \"best_swept_metric\": " << best_swept_metric << ",\n"
     << "  \"within_tolerance\": " << (within_tolerance() ? "true" : "false")
     << ",\n"
     << "  \"compressed_traces\": " << (compressed_traces ? "true" : "false")
     << ",\n"
     << "  \"traces_synthesized\": "
     << (traces_synthesized ? "true" : "false") << ",\n"
     << "  \"sample_every\": " << sample_every << ",\n"
     << "  \"sample_validated\": " << (sample_validated ? "true" : "false")
     << ",\n"
     << "  \"sample_delta\": " << sample_delta << ",\n"
     << "  \"store_hits\": " << store_hits << ",\n"
     << "  \"store_misses\": " << store_misses << ",\n"
     << "  \"sweep\": [";
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Row& r = table[i];
    os << (i ? ",\n    " : "\n    ") << "{\"ks\": " << r.ks
       << ", \"metric\": " << r.metric << ", \"miss_ratio\": " << r.miss_ratio
       << ", \"accesses\": " << r.accesses << ", \"misses\": " << r.misses
       << ", \"predicted_bytes\": " << r.predicted_bytes
       << ", \"from_model\": " << (r.from_model ? "true" : "false") << "}";
  }
  os << "\n  ],\n"
     << "  \"note\": \"" << note << "\"\n"
     << "}\n";
  return os.str();
}

}  // namespace blk::model
