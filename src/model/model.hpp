// Machine model for blocking-factor selection (§6: the whole pitch of
// BLOCK DO is that the *compiler* chooses KS, not the programmer).
//
// The analytic half follows the Lam/Rothberg/Wolf working-set rule as
// closed-formed by Coleman & McKinley's TSS: from the reuse classes of the
// focus nest (analysis::analyze_reuse) build the blocked nest's footprint
// as a function of the blocking factor KS — per array reference, the
// per-dimension span is KS-proportional where the subscript tracks the
// blocked loop variable, a full loop extent where it tracks an unblocked
// loop, and one cache line for KS-invariant streaming references — then
// pick the largest KS whose footprint fits an effective fraction of the
// cache (interference headroom), and emit that KS plus its neighbours as
// the candidate set for the empirical sweep (sweep.hpp) to referee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache.hpp"
#include "ir/iexpr.hpp"
#include "ir/program.hpp"

namespace blk::model {

/// Memory-hierarchy description consumed by the selector.  `levels[0]` is
/// the cache whose capacity bounds the analytic footprint; `latencies`
/// (one per level plus memory) switches the sweep metric from L1 miss
/// ratio to AMAT when its arity matches.
struct MachineParams {
  std::vector<cachesim::CacheConfig> levels = {cachesim::CacheConfig{}};
  std::vector<double> latencies;   ///< empty: rank by miss ratio
  double effective_fraction = 0.75;  ///< usable capacity (interference)
  std::size_t element_bytes = 8;   ///< REAL*8

  [[nodiscard]] const cachesim::CacheConfig& l1() const {
    return levels.front();
  }
};

/// Parse "64K/64B/4" (size/line/associativity; K and M suffixes accepted,
/// the B on the line size optional) into a cache geometry.  Throws
/// blk::Error on malformed input.
[[nodiscard]] cachesim::CacheConfig parse_cache_config(const std::string& s);

/// One array reference's contribution to the blocked working set.
struct FootprintTerm {
  std::string array;
  std::string subscripts;  ///< printed subscript list (dedup key, evidence)

  /// Per-dimension span of the region touched while the blocked loop
  /// variable ranges over one block of KS iterations:
  ///   span(ks) = 1 + ks_coef*(ks-1) + fixed_extent
  ///            + sum |coef| * (eval(extent_expr, env + {KS: ks}) - 1)
  /// The dynamic extents cover inner loops whose bounds mention the
  /// blocking factor (the IN ... DO region loops of §6).
  struct DimSpan {
    long ks_coef = 0;    ///< blocked-variable coefficient (|a|)
    long fixed = 0;      ///< sum |a|*(extent-1) over unblocked loop vars
    std::vector<std::pair<ir::IExprPtr, long>> dyn;  ///< (extent expr, |a|)
  };
  std::vector<DimSpan> dims;

  bool streaming = false;  ///< KS-invariant: costs one cache line
  std::string reuse;       ///< reuse class vs. the focus loop (evidence)

  /// `env` must already bind the blocking factor to the probed ks.
  [[nodiscard]] long span(std::size_t dim, long ks, const ir::Env& env) const;
};

/// The working-set model of one focus nest: footprint(KS) plus the
/// geometry needed to turn it into a blocking-factor choice.
struct AnalyticModel {
  std::string ks_name = "KS";
  std::vector<FootprintTerm> terms;
  ir::Env env;               ///< probe params + outer-loop lower bounds
  std::size_t line_bytes = 64;
  std::size_t element_bytes = 8;
  double budget_bytes = 0;   ///< effective_fraction * L1 capacity
  long trip = 0;             ///< focus-loop trip count at the probe size

  /// Bytes resident while one KS-block is processed (line-granular in the
  /// contiguous dimension; streaming terms cost one line each).
  [[nodiscard]] long footprint_bytes(long ks) const;

  /// Largest ks in [lo, hi] whose footprint fits the budget (footprint is
  /// monotone in ks); returns lo when even that overflows.
  [[nodiscard]] long largest_fitting(long lo, long hi) const;

  /// The TSS-style choice plus neighbours {ks/4, ks/2, ks, 3ks/2, 2ks,
  /// 3ks, 4ks}, clamped to [2, trip] and deduplicated, ascending.
  [[nodiscard]] std::vector<long> candidates() const;
};

/// Build the analytic model for the nest under `focus` (which must live in
/// the tree rooted at `root`), treating `ks_name` as the (symbolic)
/// blocking factor of `focus`'s loop variable.  `probe_env` binds every
/// symbolic parameter to the probe size.
[[nodiscard]] AnalyticModel build_analytic_model(ir::StmtList& root,
                                                 ir::Loop& focus,
                                                 const std::string& ks_name,
                                                 const ir::Env& probe_env,
                                                 const MachineParams& machine);

/// The full decision record: analytic prediction, swept evidence, choice.
/// Produced by the selectblock pass / blk-opt --auto-b / bench_autoblock.
struct BlockChoice {
  std::string ks_name = "KS";
  long ks = 0;            ///< final choice
  long analytic_ks = 0;   ///< the closed-form pick before the sweep
  double budget_bytes = 0;
  long analytic_footprint_bytes = 0;  ///< footprint at analytic_ks
  long probe = 0;         ///< probe extent the params were bound to
  std::vector<long> candidates;       ///< the model's candidate set
  bool swept = false;
  std::string metric_name;            ///< "miss_ratio" or "amat"
  double chosen_metric = 0;
  long best_swept_ks = 0;             ///< argmin over every swept row
  double best_swept_metric = 0;

  // Trace-pipeline evidence (compressed record-once/replay-many sweeps).
  bool compressed_traces = false;  ///< sweep ran on the trace pipeline
  bool traces_synthesized = false; ///< traces from the affine synthesizer
  long sample_every = 1;           ///< effective sampling stride
  bool sample_validated = false;   ///< a sampled-vs-full probe ran
  double sample_delta = 0;         ///< probe |sampled - full| L1 miss ratio
  std::uint64_t store_hits = 0;    ///< candidates replayed from the store
  std::uint64_t store_misses = 0;  ///< candidates traced this run

  struct Row {
    long ks = 0;
    double metric = 0;
    double miss_ratio = 0;            ///< L1 miss ratio
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    long predicted_bytes = 0;         ///< analytic footprint at this ks
    bool from_model = false;          ///< in the candidate set vs. grid
  };
  std::vector<Row> table;             ///< ascending by ks
  std::string note;

  /// Chosen metric within `tolerance` (fractional) of the swept optimum.
  [[nodiscard]] bool within_tolerance(double tolerance = 0.10) const;

  [[nodiscard]] std::string to_string() const;  ///< human-readable table
  [[nodiscard]] std::string to_json() const;    ///< BENCH_model.json row
};

}  // namespace blk::model
