#include "model/sweep.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>

#include "interp/trace.hpp"
#include "interp/vm.hpp"
#include "ir/error.hpp"

namespace blk::model {

namespace {

struct Job {
  std::size_t index = 0;
  std::vector<interp::TraceRecord> trace;
};

}  // namespace

SweepResult sweep_block_sizes(const ir::Program& blocked,
                              const SweepOptions& opt) {
  if (opt.candidates.empty())
    throw Error("sweep_block_sizes: no candidates");
  if (!blocked.has_scalar(opt.ks_scalar))
    throw Error("sweep_block_sizes: '" + opt.ks_scalar +
                "' is not a declared scalar of the blocked program");
  if (opt.levels.empty())
    throw Error("sweep_block_sizes: need at least one cache level");

  SweepResult result;
  const bool use_amat = opt.latencies.size() == opt.levels.size() + 1;
  result.metric_name = use_amat ? "amat" : "miss_ratio";
  result.rows.resize(opt.candidates.size());

  unsigned workers = opt.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 2;
    workers = std::min(workers, 8u);
  }
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(opt.candidates.size()));

  // Shared work queue: the producer (the single VM) stays at most
  // `max_in_flight` traces ahead of the simulators, bounding memory.
  std::mutex mu;
  std::condition_variable cv_put, cv_get;
  std::queue<Job> queue;
  bool done = false;
  const std::size_t cap = std::max<std::size_t>(1, opt.max_in_flight);

  auto worker = [&] {
    // Per-worker hierarchy: stats are reset between jobs, so one worker
    // can simulate many candidates without cross-talk.
    cachesim::Hierarchy h(opt.levels);
    for (;;) {
      Job job;
      {
        std::unique_lock lock(mu);
        cv_get.wait(lock, [&] { return !queue.empty() || done; });
        if (queue.empty()) return;
        job = std::move(queue.front());
        queue.pop();
      }
      cv_put.notify_one();
      h.reset();
      h.simulate(job.trace);
      CandidateResult& row = result.rows[job.index];
      row.trace_len = job.trace.size();
      for (std::size_t i = 0; i < h.num_levels(); ++i)
        row.levels.push_back(h.stats(i));
      row.metric = use_amat ? h.amat(opt.latencies)
                            : h.stats(0).miss_ratio();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);

  std::optional<Error> failure;
  {
    // ONE engine for the whole sweep: the blocking factor is a runtime
    // scalar, so each candidate is a store write plus a re-run.
    interp::ExecEngine eng(blocked, opt.probe_params);
    for (std::size_t i = 0; i < opt.candidates.size(); ++i) {
      result.rows[i].ks = opt.candidates[i];
      try {
        interp::seed_store(eng.store(), opt.seed);
        // Scalars keep values across runs; zero them so candidate i+1
        // starts from the same state candidate 0 did.
        for (auto& [name, value] : eng.store().scalars) value = 0.0;
        eng.store().scalars[opt.ks_scalar] =
            static_cast<double>(opt.candidates[i]);
        interp::TraceBuffer tb;
        eng.run(tb);
        Job job{.index = i, .trace = tb.take_records()};
        {
          std::unique_lock lock(mu);
          cv_put.wait(lock, [&] { return queue.size() < cap; });
          queue.push(std::move(job));
        }
        cv_get.notify_one();
      } catch (const Error& e) {
        failure = e;
        break;
      }
    }
  }
  {
    std::lock_guard lock(mu);
    done = true;
  }
  cv_get.notify_all();
  for (std::thread& t : pool) t.join();
  if (failure) throw *failure;

  result.best_index = 0;
  for (std::size_t i = 1; i < result.rows.size(); ++i)
    if (result.rows[i].metric < result.rows[result.best_index].metric)
      result.best_index = i;
  return result;
}

}  // namespace blk::model
