#include "model/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>

#include "interp/trace.hpp"
#include "interp/vm.hpp"
#include "ir/error.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"
#include "trace/synth.hpp"

namespace blk::model {

namespace {

struct Job {
  std::size_t index = 0;
  std::vector<interp::TraceRecord> trace;
};

/// The original in-memory path: one VM producer, raw traces fanned out to
/// per-worker cachesim instances through a bounded queue.
SweepResult sweep_raw(const ir::Program& blocked, const SweepOptions& opt) {
  SweepResult result;
  const bool use_amat = opt.latencies.size() == opt.levels.size() + 1;
  result.metric_name = use_amat ? "amat" : "miss_ratio";
  result.rows.resize(opt.candidates.size());

  unsigned workers = opt.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 2;
    workers = std::min(workers, 8u);
  }
  workers = std::min<unsigned>(
      workers, static_cast<unsigned>(opt.candidates.size()));

  // Shared work queue: the producer (the single VM) stays at most
  // `max_in_flight` traces ahead of the simulators, bounding memory.
  std::mutex mu;
  std::condition_variable cv_put, cv_get;
  std::queue<Job> queue;
  bool done = false;
  const std::size_t cap = std::max<std::size_t>(1, opt.max_in_flight);

  auto worker = [&] {
    // Per-worker hierarchy: stats are reset between jobs, so one worker
    // can simulate many candidates without cross-talk.
    cachesim::Hierarchy h(opt.levels);
    for (;;) {
      Job job;
      {
        std::unique_lock lock(mu);
        cv_get.wait(lock, [&] { return !queue.empty() || done; });
        if (queue.empty()) return;
        job = std::move(queue.front());
        queue.pop();
      }
      cv_put.notify_one();
      h.reset();
      h.simulate(job.trace);
      CandidateResult& row = result.rows[job.index];
      row.trace_len = job.trace.size();
      for (std::size_t i = 0; i < h.num_levels(); ++i)
        row.levels.push_back(h.stats(i));
      row.metric = use_amat ? h.amat(opt.latencies)
                            : h.stats(0).miss_ratio();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);

  std::optional<Error> failure;
  {
    // ONE engine for the whole sweep: the blocking factor is a runtime
    // scalar, so each candidate is a store write plus a re-run.
    interp::ExecEngine eng(blocked, opt.probe_params);
    for (std::size_t i = 0; i < opt.candidates.size(); ++i) {
      result.rows[i].ks = opt.candidates[i];
      try {
        interp::seed_store(eng.store(), opt.seed);
        // Scalars keep values across runs; zero them so candidate i+1
        // starts from the same state candidate 0 did.
        for (auto& [name, value] : eng.store().scalars) value = 0.0;
        eng.store().scalars[opt.ks_scalar] =
            static_cast<double>(opt.candidates[i]);
        interp::TraceBuffer tb;
        eng.run(tb);
        Job job{.index = i, .trace = tb.take_records()};
        {
          std::unique_lock lock(mu);
          cv_put.wait(lock, [&] { return queue.size() < cap; });
          queue.push(std::move(job));
        }
        cv_get.notify_one();
      } catch (const Error& e) {
        failure = e;
        break;
      }
    }
  }
  {
    std::lock_guard lock(mu);
    done = true;
  }
  cv_get.notify_all();
  for (std::thread& t : pool) t.join();
  if (failure) throw *failure;

  result.best_index = 0;
  for (std::size_t i = 1; i < result.rows.size(); ++i)
    if (result.rows[i].metric < result.rows[result.best_index].metric)
      result.best_index = i;
  return result;
}

/// Record-once/replay-many: compressed traces out of the TraceStore,
/// sharded deterministic replay per candidate.
class CompressedSweep {
 public:
  CompressedSweep(const ir::Program& blocked, const SweepOptions& opt)
      : prog_(blocked),
        opt_(opt),
        store_(opt.store ? *opt.store : trace::TraceStore::process()),
        program_hash_(trace::hash_program(blocked)),
        env_hash_(trace::hash_env(opt.probe_params)),
        eligible_(trace::synth_eligible(blocked)) {}

  SweepResult run() {
    SweepResult result;
    result.compressed = true;
    const bool use_amat = opt_.latencies.size() == opt_.levels.size() + 1;
    result.metric_name = use_amat ? "amat" : "miss_ratio";

    trace::ReplayOptions ropt;
    ropt.levels = opt_.levels;
    ropt.workers = opt_.workers;
    ropt.shard_records = opt_.shard_records;

    // Decide the effective sampling stride up front.
    long k = std::max(1L, opt_.sample_every);
    if (k > 1 && !eligible_) {
      k = 1;
      result.note =
          "sampling disabled: program is not trace-synthesizable (" +
          trace::synth_ineligible_reason(prog_).value_or("") + ")";
    }
    if (k > 1) {
      // Validate on one mid-range candidate: the sampled trace must
      // predict the full trace's L1 miss ratio within tolerance,
      // otherwise every candidate falls back to the full trace.
      const long probe_ks = opt_.candidates[opt_.candidates.size() / 2];
      const Acquired sampled = acquire(probe_ks, k);
      // The sampled trace keeps ~1/k of the full records, so the full
      // probe size is known without the (expensive) full walk.
      const std::uint64_t full_records =
          sampled.trace->records * static_cast<std::uint64_t>(k);
      if (full_records > opt_.sample_validate_max_records) {
        // A full replay at this size is exactly what sampling exists to
        // avoid; keep sampling but say the tolerance wasn't re-measured.
        result.sample_every = k;
        result.note = "sampling validation skipped: full probe trace has ~" +
                      std::to_string(full_records) +
                      " records (cap " +
                      std::to_string(opt_.sample_validate_max_records) +
                      "); tolerance carried over from smaller probes";
        return run_candidates(result, ropt, k, use_amat);
      }
      const Acquired full = acquire(probe_ks, 1);
      const trace::ReplayResult fr = trace::replay(*full.trace, ropt);
      const trace::ReplayResult sr = trace::replay(*sampled.trace, ropt);
      result.sample_validated = true;
      result.sample_delta = std::abs(sr.levels[0].miss_ratio() -
                                     fr.levels[0].miss_ratio());
      if (result.sample_delta > opt_.sample_tolerance) {
        k = 1;
        result.note = "sampling rejected: probe ks=" +
                      std::to_string(probe_ks) + " miss-ratio delta " +
                      std::to_string(result.sample_delta) +
                      " exceeds tolerance " +
                      std::to_string(opt_.sample_tolerance);
      }
    }
    result.sample_every = k;
    return run_candidates(result, ropt, k, use_amat);
  }

 private:
  struct Acquired {
    std::shared_ptr<const trace::EncodedTrace> trace;
    bool synthesized = false;
  };

  /// One trace per candidate.  Synthesis is independent per candidate, so
  /// eligible programs acquire in parallel (the store is thread-safe); the
  /// VM-recording fallback shares one ExecEngine and stays sequential.
  std::vector<Acquired> acquire_all(long k) {
    std::vector<Acquired> out(opt_.candidates.size());
    if (!eligible_ || opt_.candidates.size() < 2) {
      for (std::size_t i = 0; i < opt_.candidates.size(); ++i)
        out[i] = acquire(opt_.candidates[i], k);
      return out;
    }
    unsigned workers = opt_.workers;
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) workers = 2;
      workers = std::min(workers, 8u);
    }
    workers = std::min<unsigned>(
        workers, static_cast<unsigned>(opt_.candidates.size()));
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::optional<Error> failure;
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= opt_.candidates.size()) return;
        try {
          out[i] = acquire(opt_.candidates[i], k);
        } catch (const Error& e) {
          std::lock_guard lock(err_mu);
          if (!failure) failure = e;
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (failure) throw *failure;
    return out;
  }

  SweepResult run_candidates(SweepResult& result,
                             const trace::ReplayOptions& ropt, long k,
                             bool use_amat) {
    const std::vector<Acquired> traces = acquire_all(k);
    result.rows.resize(opt_.candidates.size());
    for (std::size_t i = 0; i < opt_.candidates.size(); ++i) {
      const Acquired& a = traces[i];
      const trace::ReplayResult res = trace::replay(*a.trace, ropt);
      CandidateResult& row = result.rows[i];
      row.ks = opt_.candidates[i];
      row.levels = res.levels;
      row.trace_len = res.records;
      row.synthesized = a.synthesized;
      row.compression = a.trace->compression_ratio();
      row.metric = use_amat ? res.amat(opt_.latencies)
                            : res.levels[0].miss_ratio();
    }

    result.store_hits = hits_;
    result.store_misses = misses_;
    result.best_index = 0;
    for (std::size_t i = 1; i < result.rows.size(); ++i)
      if (result.rows[i].metric < result.rows[result.best_index].metric)
        result.best_index = i;
    return result;
  }

  Acquired acquire(long ks, long sample_every) {
    trace::TraceKey key;
    key.program_hash = program_hash_;
    key.env_hash = env_hash_;
    key.ks = ks;
    key.seed = opt_.seed;
    key.sample_every = sample_every;
    key.sample_depth = opt_.sample_depth;
    if (auto cached = store_.get(key)) {
      ++hits_;
      return {std::move(cached), eligible_};
    }
    ++misses_;
    trace::EncodedTrace t;
    if (eligible_) {
      // Affine program: synthesize the trace without executing — the
      // blocking factor binds like any other parameter.
      ir::Env env = opt_.probe_params;
      env[opt_.ks_scalar] = ks;
      trace::TraceEncoder enc(t);
      trace::SynthOptions so;
      so.sample_every = sample_every;
      so.sample_depth = opt_.sample_depth;
      (void)trace::synthesize(prog_, env, enc, so);
      enc.finish();
    } else {
      // Data-dependent program: record one VM execution through the
      // encoder.  The engine is compiled once and reused per candidate
      // (the factor is a store write, exactly as in the Raw path).
      if (!engine_) engine_.emplace(prog_, opt_.probe_params);
      interp::seed_store(engine_->store(), opt_.seed);
      for (auto& [name, value] : engine_->store().scalars) value = 0.0;
      engine_->store().scalars[opt_.ks_scalar] = static_cast<double>(ks);
      trace::TraceEncoder enc(t);
      interp::TraceBuffer buf(1 << 16, &enc, &trace::TraceEncoder::sink);
      engine_->run(buf);
      buf.flush();
      enc.finish();
    }
    return {store_.put(key, std::move(t)), eligible_};
  }

  const ir::Program& prog_;
  const SweepOptions& opt_;
  trace::TraceStore& store_;
  std::uint64_t program_hash_;
  std::uint64_t env_hash_;
  bool eligible_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::optional<interp::ExecEngine> engine_;
};

}  // namespace

SweepResult sweep_block_sizes(const ir::Program& blocked,
                              const SweepOptions& opt) {
  if (opt.candidates.empty())
    throw Error("sweep_block_sizes: no candidates");
  if (!blocked.has_scalar(opt.ks_scalar))
    throw Error("sweep_block_sizes: '" + opt.ks_scalar +
                "' is not a declared scalar of the blocked program");
  if (opt.levels.empty())
    throw Error("sweep_block_sizes: need at least one cache level");
  if (opt.sample_every < 1)
    throw Error("sweep_block_sizes: sample_every must be >= 1");

  if (opt.trace_format == TraceFormat::Raw) return sweep_raw(blocked, opt);
  return CompressedSweep(blocked, opt).run();
}

}  // namespace blk::model
