// Empirical refiner for the blocking-factor choice.
//
// Two execution strategies:
//
//  - TraceFormat::Compressed (default): the production trace pipeline.
//    Each candidate's trace is obtained once — synthesized analytically
//    when the program's access pattern is affine (one RUNA op per inner
//    loop instance, megabytes where raw records are gigabytes), or
//    recorded through the VM into the compressed encoder otherwise — and
//    kept in a process-wide TraceStore keyed by (program, params, ks,
//    seed, sampling).  Replays run sharded across the worker pool with a
//    deterministic merge, so re-tuning against a different cache geometry
//    never re-executes the program.  Structural sampling (every k-th
//    block instance) is validated against a full replay of one probe
//    candidate and falls back to full tracing when the sampled L1 miss
//    ratio disagrees beyond `sample_tolerance`.
//
//  - TraceFormat::Raw: the original in-memory path — run the blocked
//    program once per candidate on the bytecode VM (compiled exactly
//    once; KS lives in a runtime scalar slot) and feed raw TraceRecord
//    batches to per-worker cachesim instances.
//
// Either way the candidate with the lowest L1 miss ratio (or AMAT, when
// per-level latencies are supplied) wins, and results are bit-identical
// at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache.hpp"
#include "ir/program.hpp"
#include "trace/store.hpp"

namespace blk::model {

enum class TraceFormat {
  Raw,         ///< uncompressed in-memory records, VM re-run per candidate
  Compressed,  ///< record-once/replay-many compressed traces (default)
};

struct SweepOptions {
  std::vector<long> candidates;   ///< ks values to measure, ascending
  std::string ks_scalar = "KS";   ///< runtime scalar holding the factor
  ir::Env probe_params;           ///< parameter bindings (without ks)
  std::vector<cachesim::CacheConfig> levels = {cachesim::CacheConfig{}};
  std::vector<double> latencies;  ///< num_levels+1 entries switch to AMAT
  unsigned workers = 0;           ///< 0: hardware concurrency (capped)
  std::uint64_t seed = 42;
  std::size_t max_in_flight = 3;  ///< Raw path: traces buffered ahead

  TraceFormat trace_format = TraceFormat::Compressed;
  /// Keep every `sample_every`-th instance of the depth-`sample_depth`
  /// loops (1 = full trace).  Only honoured when the program is trace-
  /// synthesizable; validated against a full replay before use.
  long sample_every = 1;
  int sample_depth = 1;
  /// Max |sampled - full| L1 miss-ratio disagreement on the validation
  /// candidate before sampling is abandoned for this sweep.
  double sample_tolerance = 0.02;
  /// Validation replays one candidate's *full* trace; when that trace
  /// would exceed this many records (estimated as sampled records * k)
  /// the probe is skipped with a note — the tolerance is then carried
  /// over from smaller-probe runs instead of being re-measured at a size
  /// where a full replay is infeasible.
  std::uint64_t sample_validate_max_records = 256u << 20;
  std::uint64_t shard_records = 4u << 20;  ///< replay shard target
  trace::TraceStore* store = nullptr;      ///< nullptr: process-wide store
};

struct CandidateResult {
  long ks = 0;
  std::vector<cachesim::CacheStats> levels;  ///< one per hierarchy level
  double metric = 0.0;
  std::uint64_t trace_len = 0;   ///< records replayed (sampled if sampling)
  bool synthesized = false;      ///< trace from the affine synthesizer
  double compression = 0.0;      ///< raw bytes / encoded bytes (0 for Raw)
};

struct SweepResult {
  std::vector<CandidateResult> rows;  ///< in candidate order
  std::size_t best_index = 0;         ///< argmin of metric
  std::string metric_name;            ///< "miss_ratio" or "amat"

  // Trace-pipeline evidence (Compressed path only).
  bool compressed = false;         ///< trace pipeline used
  long sample_every = 1;           ///< effective stride after validation
  bool sample_validated = false;   ///< a sampled-vs-full probe ran
  double sample_delta = 0.0;       ///< probe |sampled - full| L1 miss ratio
  std::uint64_t store_hits = 0;    ///< candidates served from the store
  std::uint64_t store_misses = 0;  ///< candidates traced this sweep
  std::string note;                ///< e.g. why sampling was dropped
};

/// Measure every candidate against `blocked` (a program whose blocking
/// factor is the declared runtime scalar `ks_scalar`).  Deterministic at
/// any worker count.  Throws blk::Error on an empty candidate list, an
/// undeclared ks scalar, or an empty cache-level list.
[[nodiscard]] SweepResult sweep_block_sizes(const ir::Program& blocked,
                                            const SweepOptions& opt);

}  // namespace blk::model
