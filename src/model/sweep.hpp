// Empirical refiner for the blocking-factor choice: run the *blocked*
// program once per candidate KS on the bytecode VM (the program is
// compiled exactly once — KS lives in a runtime scalar slot, so changing
// the candidate is a store write, not a recompilation) and replay each
// trace through per-worker cachesim instances on a thread pool.  The
// candidate with the lowest L1 miss ratio (or AMAT, when per-level
// latencies are supplied) wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache.hpp"
#include "ir/program.hpp"

namespace blk::model {

struct SweepOptions {
  std::vector<long> candidates;   ///< ks values to measure, ascending
  std::string ks_scalar = "KS";   ///< runtime scalar holding the factor
  ir::Env probe_params;           ///< parameter bindings (without ks)
  std::vector<cachesim::CacheConfig> levels = {cachesim::CacheConfig{}};
  std::vector<double> latencies;  ///< num_levels+1 entries switch to AMAT
  unsigned workers = 0;           ///< 0: hardware concurrency (capped)
  std::uint64_t seed = 42;
  std::size_t max_in_flight = 3;  ///< traces buffered ahead of the workers
};

struct CandidateResult {
  long ks = 0;
  std::vector<cachesim::CacheStats> levels;  ///< one per hierarchy level
  double metric = 0.0;
  std::uint64_t trace_len = 0;
};

struct SweepResult {
  std::vector<CandidateResult> rows;  ///< in candidate order
  std::size_t best_index = 0;         ///< argmin of metric
  std::string metric_name;            ///< "miss_ratio" or "amat"
};

/// Measure every candidate against `blocked` (a program whose blocking
/// factor is the declared runtime scalar `ks_scalar`).  One ExecEngine is
/// compiled up front and shared across the whole sweep; simulation runs on
/// `workers` threads with per-worker Cache/Hierarchy state.  Throws
/// blk::Error on an empty candidate list or an undeclared ks scalar.
[[nodiscard]] SweepResult sweep_block_sizes(const ir::Program& blocked,
                                            const SweepOptions& opt);

}  // namespace blk::model
