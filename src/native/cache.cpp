#include "native/cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "ir/error.hpp"

namespace blk::native {

namespace fs = std::filesystem;

namespace {

/// FNV-1a 64 with a caller-chosen offset basis; two bases give the
/// 128-bit key.
std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hash_text(const std::string& text) {
  return hex64(fnv1a(text, 14695981039346656037ULL)) +
         hex64(fnv1a(text, 88172645463325252ULL));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// RAII advisory lock on `path` (created if absent).  Degrades to a no-op
/// when the file cannot be opened — the cache then still works, just
/// without cross-process compile sharing.
class FileLock {
 public:
  explicit FileLock(const std::string& path)
      : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666)) {
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

void touch_now(const std::string& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

/// Sidecar format: one line, "so_hash=<32hex>".
std::string read_meta_hash(const std::string& meta_path) {
  std::string text = read_file(meta_path);
  const std::string kKey = "so_hash=";
  auto pos = text.find(kKey);
  if (pos == std::string::npos) return "";
  std::string v = text.substr(pos + kKey.size());
  while (!v.empty() && (v.back() == '\n' || v.back() == '\r')) v.pop_back();
  return v;
}

}  // namespace

KernelCache::KernelCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

std::string KernelCache::default_dir() {
  if (const char* d = std::getenv("BLK_NATIVE_CACHE_DIR"); d && *d) return d;
  if (const char* x = std::getenv("XDG_CACHE_HOME"); x && *x)
    return std::string(x) + "/blk-native";
  if (const char* h = std::getenv("HOME"); h && *h)
    return std::string(h) + "/.cache/blk-native";
  return "/tmp/blk-native-cache";
}

std::uint64_t KernelCache::default_max_bytes() {
  if (const char* mb = std::getenv("BLK_NATIVE_CACHE_MAX_MB"); mb && *mb) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(mb, &end, 10);
    if (end != mb) return static_cast<std::uint64_t>(v) * 1024 * 1024;
  }
  return 256ULL * 1024 * 1024;
}

std::string KernelCache::hash_key(const std::string& c_source,
                                  const Toolchain& tc,
                                  const std::string& salt) {
  std::string text = c_source + '\x1f' + tc.id();
  if (!salt.empty()) text += '\x1f' + salt;
  return hash_text(text);
}

CompileOutcome KernelCache::get_or_compile(const std::string& c_source,
                                           const Toolchain& tc,
                                           const std::string& salt) {
  std::error_code ec;
  fs::create_directories(dir_, ec);

  CompileOutcome out;
  out.key = hash_key(c_source, tc, salt);
  const std::string stem = dir_ + "/" + out.key;
  out.so_path = stem + ".so";
  out.c_path = stem + ".c";
  const std::string meta_path = stem + ".meta";

  FileLock lock(stem + ".lock");

  // Hit path: the object exists and still matches its recorded hash
  // (catching truncation or corruption from killed writers / bad disks).
  if (fs::exists(out.so_path, ec) && fs::exists(meta_path, ec)) {
    const std::string want = read_meta_hash(meta_path);
    if (!want.empty() && want == hash_text(read_file(out.so_path))) {
      out.cache_hit = true;
      touch_now(out.so_path);  // LRU recency
      return out;
    }
  }

  // Miss (or corrupt entry): compile under the lock.  The source is kept
  // beside the object as the inspection artifact.
  {
    std::ofstream src(out.c_path, std::ios::binary | std::ios::trunc);
    src << c_source;
    if (!src) throw Error("native: cannot write " + out.c_path);
  }
  const std::string tmp =
      out.so_path + ".tmp." + std::to_string(::getpid());
  const std::string err_path = stem + ".err";
  const std::string cmd =
      tc.command(out.c_path, tmp) + " 2> '" + err_path + "'";
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  out.compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (rc != 0) {
    std::string why = read_file(err_path);
    fs::remove(tmp, ec);
    throw Error("native: compilation failed (" + cmd + ")\n" + why);
  }
  fs::rename(tmp, out.so_path, ec);
  if (ec)
    throw Error("native: cannot move compiled object into cache: " +
                ec.message());
  {
    std::ofstream meta(meta_path, std::ios::trunc);
    meta << "so_hash=" << hash_text(read_file(out.so_path)) << "\n";
  }
  fs::remove(err_path, ec);

  evict_to_cap(out.key);
  return out;
}

std::uint64_t KernelCache::size_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (!e.is_regular_file(ec)) continue;
    total += static_cast<std::uint64_t>(e.file_size(ec));
  }
  return total;
}

void KernelCache::evict_to_cap(const std::string& keep_key) {
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return;
  FileLock lock(dir_ + "/.evict.lock");

  struct Entry {
    std::string key;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::uint64_t sz = static_cast<std::uint64_t>(e.file_size(ec));
    total += sz;
    const fs::path p = e.path();
    if (p.extension() != ".so") continue;
    entries.push_back({p.stem().string(), fs::last_write_time(p, ec), sz});
    // Charge the sidecars to the entry so eviction frees what it counts.
    for (const char* ext : {".c", ".meta"}) {
      std::error_code ec2;
      const auto side = fs::path(dir_) / (entries.back().key + ext);
      if (fs::exists(side, ec2))
        entries.back().bytes +=
            static_cast<std::uint64_t>(fs::file_size(side, ec2));
    }
  }
  if (total <= max_bytes_) return;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= max_bytes_) break;
    if (entry.key == keep_key) continue;
    for (const char* ext : {".so", ".c", ".meta", ".lock", ".err"})
      fs::remove(fs::path(dir_) / (entry.key + ext), ec);
    total -= std::min<std::uint64_t>(total, entry.bytes);
  }
}

KernelCache& default_cache() {
  static KernelCache cache;
  return cache;
}

}  // namespace blk::native
