// Content-addressed on-disk kernel cache.
//
// Key = hash(emitted C source + compiler identity + flags); value = the
// compiled shared object.  Entries are shared across processes: a
// per-entry advisory file lock (flock) serializes compilation, so a
// fuzzer fleet and a benchmark running concurrently compile each distinct
// kernel exactly once and everyone else waits for (then reuses) the
// result.  The emitted C is kept next to the .so for inspection, and a
// sidecar .meta records the object's own content hash so truncated or
// corrupted entries are detected and recompiled instead of dlopened.
//
// Hygiene: entry mtimes are refreshed on every hit, and after each insert
// the cache evicts least-recently-used entries until the directory is
// within its byte budget ($BLK_NATIVE_CACHE_MAX_MB, default 256).
#pragma once

#include <cstdint>
#include <string>

#include "native/jit.hpp"

namespace blk::native {

/// Result of a cache lookup-or-compile.
struct CompileOutcome {
  std::string so_path;   ///< the shared object to dlopen
  std::string c_path;    ///< the emitted C kept beside it
  std::string key;       ///< content hash (hex)
  bool cache_hit = false;
  double compile_seconds = 0.0;  ///< 0 on a hit
};

class KernelCache {
 public:
  explicit KernelCache(std::string dir = default_dir(),
                       std::uint64_t max_bytes = default_max_bytes());

  /// $BLK_NATIVE_CACHE_DIR, else $XDG_CACHE_HOME/blk-native, else
  /// $HOME/.cache/blk-native, else /tmp/blk-native-cache.
  [[nodiscard]] static std::string default_dir();

  /// $BLK_NATIVE_CACHE_MAX_MB (default 256) in bytes.
  [[nodiscard]] static std::uint64_t default_max_bytes();

  /// The 128-bit content key for (source, toolchain[, salt]), as 32 hex
  /// chars.  `salt` is extra key material beyond the source text — the
  /// specialized-kernel path passes the assumption-set hash, so generic
  /// and specialized variants of one program occupy distinct entries even
  /// if their sources ever coincided.  An empty salt reproduces the
  /// historical (source, toolchain) key.
  [[nodiscard]] static std::string hash_key(const std::string& c_source,
                                            const Toolchain& tc,
                                            const std::string& salt = "");

  /// Return the shared object for `c_source` compiled by `tc`, compiling
  /// under the entry's file lock when absent or failing re-verification.
  /// Throws blk::Error when the compiler rejects the source (the message
  /// carries the compiler's stderr).
  CompileOutcome get_or_compile(const std::string& c_source,
                                const Toolchain& tc,
                                const std::string& salt = "");

  /// Remove least-recently-used entries until the directory fits the
  /// byte budget; `keep_key` (the entry just produced) is never evicted.
  void evict_to_cap(const std::string& keep_key = "");

  /// Total bytes currently in the cache directory.
  [[nodiscard]] std::uint64_t size_bytes() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t max_bytes() const { return max_bytes_; }

 private:
  std::string dir_;
  std::uint64_t max_bytes_;
};

/// The process-wide cache every Kernel uses unless given its own.
[[nodiscard]] KernelCache& default_cache();

}  // namespace blk::native
