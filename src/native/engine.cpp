#include "native/engine.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "ir/codegen.hpp"
#include "ir/error.hpp"

namespace blk::native {

namespace {

struct Registry {
  std::mutex mu;
  Stats totals;
  std::vector<KernelTimings> kernels;
};

Registry& registry() {
  static Registry r;
  return r;
}

void record_construction(const KernelTimings& t) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.kernels;
  if (t.cache_hit)
    ++r.totals.cache_hits;
  else
    ++r.totals.compiles;
  r.totals.compile_seconds += t.compile_seconds;
  r.totals.load_seconds += t.load_seconds;
  r.kernels.push_back(t);
}

void record_run(const std::string& key, double seconds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.runs;
  r.totals.run_seconds += seconds;
  for (auto it = r.kernels.rbegin(); it != r.kernels.rend(); ++it) {
    if (it->key == key) {
      ++it->runs;
      it->run_seconds += seconds;
      break;
    }
  }
}

}  // namespace

Kernel::Kernel(const ir::Program& p, const std::string& fn_name,
               KernelCache* cache, const ir::ParallelOptions* parallel) {
  const Toolchain* tc = toolchain();
  if (!tc)
    throw Error(
        "native: no host C toolchain (install cc or set BLK_NATIVE_CC); "
        "use the VM engine instead");

  param_names_ = p.params();
  for (const auto& [name, decl] : p.arrays()) array_names_.push_back(name);
  for (const auto& sc : p.scalars()) scalar_names_.push_back(sc);

  source_ = ir::emit_c(p, fn_name,
                       {.scalar_io = true,
                        .entry_wrapper = true,
                        .parallel = parallel});
  KernelCache& kc = cache ? *cache : default_cache();
  CompileOutcome out = kc.get_or_compile(source_, *tc);
  so_path_ = out.so_path;
  module_ = std::make_unique<Module>(out.so_path);
  entry_ = reinterpret_cast<EntryFn>(module_->sym(fn_name + "_entry"));
  if (!entry_)
    throw Error("native: compiled object " + out.so_path +
                " does not export " + fn_name + "_entry");

  timings_.key = out.key;
  timings_.fn = fn_name;
  timings_.cache_hit = out.cache_hit;
  timings_.compile_seconds = out.compile_seconds;
  timings_.load_seconds = module_->load_seconds();
  record_construction(timings_);
}

void Kernel::call(const long* params, double* const* arrays,
                  double* scalars) {
  const auto t0 = std::chrono::steady_clock::now();
  entry_(params, arrays, scalars);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++timings_.runs;
  timings_.run_seconds += s;
  record_run(timings_.key, s);
}

void warm(const std::vector<const ir::Program*>& programs, int workers,
          KernelCache* cache) {
  if (programs.empty()) return;
  if (!available())
    throw Error("native: warm() needs a host C toolchain");
  unsigned n = workers > 0 ? static_cast<unsigned>(workers)
                           : std::thread::hardware_concurrency();
  if (n == 0) n = 2;
  n = std::min<unsigned>(n, static_cast<unsigned>(programs.size()));

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::string errors;
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < programs.size();
           i = next.fetch_add(1)) {
        try {
          Kernel k(*programs[i], "blk_kernel", cache);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(err_mu);
          errors += std::string(e.what()) + "\n";
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (!errors.empty()) throw Error("native: warm() failed:\n" + errors);
}

Stats stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.totals;
}

void reset_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.totals = Stats{};
  r.kernels.clear();
}

std::vector<KernelTimings> kernel_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.kernels;
}

std::string stats_json() {
  const Stats t = stats();
  const std::vector<KernelTimings> ks = kernel_stats();
  std::ostringstream os;
  os.precision(9);
  os << "{\"kernels_built\": " << t.kernels
     << ", \"compiles\": " << t.compiles
     << ", \"cache_hits\": " << t.cache_hits << ", \"runs\": " << t.runs
     << ", \"compile_seconds\": " << t.compile_seconds
     << ", \"load_seconds\": " << t.load_seconds
     << ", \"run_seconds\": " << t.run_seconds << ", \"kernels\": [";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const KernelTimings& k = ks[i];
    os << (i ? ", " : "") << "{\"key\": \"" << k.key << "\", \"fn\": \""
       << k.fn << "\", \"cache_hit\": " << (k.cache_hit ? "true" : "false")
       << ", \"compile_seconds\": " << k.compile_seconds
       << ", \"load_seconds\": " << k.load_seconds
       << ", \"runs\": " << k.runs
       << ", \"run_seconds\": " << k.run_seconds << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace blk::native
