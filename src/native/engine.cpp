#include "native/engine.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "ir/codegen.hpp"
#include "ir/error.hpp"

namespace blk::native {

namespace {

struct Registry {
  std::mutex mu;
  Stats totals;
  std::vector<KernelTimings> kernels;
};

Registry& registry() {
  static Registry r;
  return r;
}

void record_construction(const KernelTimings& t) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.kernels;
  if (t.cache_hit)
    ++r.totals.cache_hits;
  else
    ++r.totals.compiles;
  r.totals.compile_seconds += t.compile_seconds;
  r.totals.load_seconds += t.load_seconds;
  r.kernels.push_back(t);
}

void record_run(const std::string& key, double seconds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.runs;
  r.totals.run_seconds += seconds;
  for (auto it = r.kernels.rbegin(); it != r.kernels.rend(); ++it) {
    if (it->key == key) {
      ++it->runs;
      it->run_seconds += seconds;
      break;
    }
  }
}

void record_guard_fail(const std::string& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.guard_fails;
  for (auto it = r.kernels.rbegin(); it != r.kernels.rend(); ++it) {
    if (it->key == key) {
      ++it->guard_fails;
      break;
    }
  }
}

void record_demotion(const std::string& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.totals.demotions;
  for (auto it = r.kernels.rbegin(); it != r.kernels.rend(); ++it) {
    if (it->key == key) {
      it->demoted = true;
      break;
    }
  }
}

}  // namespace

Kernel::Kernel(const ir::Program& p, const std::string& fn_name,
               KernelCache* cache, const ir::ParallelOptions* parallel,
               const ir::GuardOptions* guards, const std::string& variant,
               int opt_level) {
  const Toolchain* tc = toolchain();
  if (!tc)
    throw Error(
        "native: no host C toolchain (install cc or set BLK_NATIVE_CC); "
        "use the VM engine instead");
  // Hot-tier builds swap -O2 for -O3 -funroll-loops (measured on the LU
  // kernels: -O3 alone helps point LU but regresses blocked LU under
  // gcc's vectorizer; adding -funroll-loops wins on both).  The flag set
  // is part of Toolchain::id(), so the levels never alias in the cache.
  Toolchain hot_tc;
  if (opt_level != 2) {
    hot_tc = *tc;
    for (auto& f : hot_tc.flags)
      if (f == "-O2") f = "-O" + std::to_string(opt_level);
    hot_tc.flags.push_back("-funroll-loops");
    tc = &hot_tc;
  }

  param_names_ = p.params();
  for (const auto& [name, decl] : p.arrays()) array_names_.push_back(name);
  for (const auto& sc : p.scalars()) scalar_names_.push_back(sc);

  const bool want_guards = guards && guards->enabled();
  source_ = ir::emit_c(p, fn_name,
                       {.scalar_io = true,
                        .entry_wrapper = true,
                        .parallel = parallel,
                        .guards = want_guards ? guards : nullptr});
  KernelCache& kc = cache ? *cache : default_cache();
  CompileOutcome out = kc.get_or_compile(source_, *tc, variant);
  so_path_ = out.so_path;
  module_ = std::make_unique<Module>(out.so_path);
  entry_ = reinterpret_cast<EntryFn>(module_->sym(fn_name + "_entry"));
  if (!entry_)
    throw Error("native: compiled object " + out.so_path +
                " does not export " + fn_name + "_entry");
  if (want_guards) {
    guard_ = reinterpret_cast<GuardFn>(module_->sym(fn_name + "_guard"));
    if (!guard_)
      throw Error("native: compiled object " + out.so_path +
                  " does not export " + fn_name + "_guard");
  }

  timings_.key = out.key;
  timings_.fn = fn_name;
  timings_.variant = variant;
  timings_.cache_hit = out.cache_hit;
  timings_.compile_seconds = out.compile_seconds;
  timings_.load_seconds = module_->load_seconds();
  record_construction(timings_);
}

void Kernel::call(const long* params, double* const* arrays,
                  double* scalars) {
  const auto t0 = std::chrono::steady_clock::now();
  entry_(params, arrays, scalars);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++timings_.runs;
  timings_.run_seconds += s;
  record_run(timings_.key, s);
}

long Kernel::check_guards(const long* params, double* const* arrays) {
  if (!guard_) return 0;
  const long failed = guard_(params, arrays);
  if (failed != 0) {
    ++timings_.guard_fails;
    record_guard_fail(timings_.key);
  }
  return failed;
}

void Kernel::demote() {
  if (timings_.demoted) return;
  timings_.demoted = true;
  record_demotion(timings_.key);
}

void warm(const std::vector<const ir::Program*>& programs, int workers,
          KernelCache* cache) {
  if (programs.empty()) return;
  if (!available())
    throw Error("native: warm() needs a host C toolchain");
  unsigned n = workers > 0 ? static_cast<unsigned>(workers)
                           : std::thread::hardware_concurrency();
  if (n == 0) n = 2;
  n = std::min<unsigned>(n, static_cast<unsigned>(programs.size()));

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::string errors;
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < programs.size();
           i = next.fetch_add(1)) {
        try {
          Kernel k(*programs[i], "blk_kernel", cache);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(err_mu);
          errors += std::string(e.what()) + "\n";
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (!errors.empty()) throw Error("native: warm() failed:\n" + errors);
}

Stats stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.totals;
}

void reset_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.totals = Stats{};
  r.kernels.clear();
}

std::vector<KernelTimings> kernel_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.kernels;
}

std::string stats_json() {
  const Stats t = stats();
  const std::vector<KernelTimings> ks = kernel_stats();
  std::ostringstream os;
  os.precision(9);
  os << "{\"kernels_built\": " << t.kernels
     << ", \"compiles\": " << t.compiles
     << ", \"cache_hits\": " << t.cache_hits << ", \"runs\": " << t.runs
     << ", \"guard_fails\": " << t.guard_fails
     << ", \"demotions\": " << t.demotions
     << ", \"compile_seconds\": " << t.compile_seconds
     << ", \"load_seconds\": " << t.load_seconds
     << ", \"run_seconds\": " << t.run_seconds << ", \"kernels\": [";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const KernelTimings& k = ks[i];
    os << (i ? ", " : "") << "{\"key\": \"" << k.key << "\", \"fn\": \""
       << k.fn << "\", \"variant\": \"" << k.variant
       << "\", \"cache_hit\": " << (k.cache_hit ? "true" : "false")
       << ", \"compile_seconds\": " << k.compile_seconds
       << ", \"load_seconds\": " << k.load_seconds
       << ", \"runs\": " << k.runs
       << ", \"run_seconds\": " << k.run_seconds
       << ", \"guard_fails\": " << k.guard_fails
       << ", \"demoted\": " << (k.demoted ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace blk::native
