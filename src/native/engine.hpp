// The native execution backend: IR program -> emitted C -> host-compiled
// shared object -> direct call.
//
// A Kernel compiles one Program through the kernel cache and binds the
// uniform `<fn>_entry` symbol.  Unlike the bytecode VM — which lowers per
// (program, parameter binding) — the emitted C keeps parameters symbolic,
// so one compile serves every N and the on-disk cache amortizes across
// processes and sessions.  Callers marshal state through the same
// ordering contract emit_c's entry wrapper uses: parameter values in
// declaration order, array base pointers in array-name order, scalars in
// scalar-name order (the interp::ExecEngine facade does this binding
// against a Store).
//
// Every compile/load/run is timed and aggregated in a process-wide stats
// registry (stats(), stats_json()) so tools can surface per-kernel JIT
// cost next to their other observability output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/codegen.hpp"
#include "ir/program.hpp"
#include "native/cache.hpp"
#include "native/jit.hpp"

namespace blk::native {

/// The fixed signature emit_c's entry wrapper exports.
using EntryFn = void (*)(const long* params, double* const* arrays,
                         double* scalars);

/// The guard symbol a specialized kernel exports (see
/// ir::GuardOptions): 0 when every assumption holds, else the 1-based
/// index of the first failing guard.
using GuardFn = long (*)(const long* params, double* const* arrays);

/// Per-kernel JIT observability record.
struct KernelTimings {
  std::string key;      ///< cache key (hex)
  std::string fn;       ///< emitted function name
  std::string variant;  ///< assumption-set hash ("" = generic kernel)
  bool cache_hit = false;
  double compile_seconds = 0.0;
  double load_seconds = 0.0;
  std::uint64_t runs = 0;
  double run_seconds = 0.0;
  std::uint64_t guard_fails = 0;  ///< entry-guard rejections of this variant
  bool demoted = false;           ///< runtime gave up on this variant
};

/// One compiled program.  Construction emits C, compiles (or reuses the
/// cached object) and resolves the entry point; throws blk::Error when no
/// toolchain is available or compilation fails.
///
/// A non-null `parallel` plan with loops makes the emitted C run those
/// loops on the in-kernel thread pool (see ir::EmitOptions::parallel).
/// The plan's summary is stamped into the source header, so serial and
/// parallel variants of the same program — and different thread-count
/// strategies — occupy distinct cache entries and coexist on disk.
class Kernel {
 public:
  /// `guards` non-null (and enabled) makes the emitted unit export a
  /// guard function checked by call_guarded; `variant` is the
  /// assumption-set hash keying this specialized build in the cache
  /// (generic kernels leave it empty).  `opt_level` selects the host
  /// compiler's -O level: the default 2 is the generic tier, 3 is the
  /// hot tier — -O3 plus -funroll-loops, the recipe the tiered runtime
  /// compiles specialized variants with (the flags are part of the
  /// toolchain id, so the two levels occupy distinct cache entries).
  explicit Kernel(const ir::Program& p,
                  const std::string& fn_name = "blk_kernel",
                  KernelCache* cache = nullptr,
                  const ir::ParallelOptions* parallel = nullptr,
                  const ir::GuardOptions* guards = nullptr,
                  const std::string& variant = "",
                  int opt_level = 2);

  /// Invoke the compiled code.  `params` / `arrays` / `scalars` follow
  /// the declaration-order contract above; the scalar block is read at
  /// entry and written back at return (VM sync semantics).
  void call(const long* params, double* const* arrays, double* scalars);

  /// Check entry guards without running the body: 0 when every assumption
  /// holds for this binding (or the kernel is unguarded), else the
  /// 1-based failing-guard index.  A failure is recorded against this
  /// variant's stats; deciding the fallback (generic kernel / VM) is the
  /// caller's job.
  [[nodiscard]] long check_guards(const long* params,
                                  double* const* arrays);

  [[nodiscard]] bool guarded() const { return guard_ != nullptr; }
  /// Mark this variant demoted (repeated guard failures); bumps the
  /// registry's demotion counter once per kernel.
  void demote();

  [[nodiscard]] const std::vector<std::string>& param_names() const {
    return param_names_;
  }
  [[nodiscard]] const std::vector<std::string>& array_names() const {
    return array_names_;
  }
  [[nodiscard]] const std::vector<std::string>& scalar_names() const {
    return scalar_names_;
  }

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const std::string& so_path() const { return so_path_; }
  [[nodiscard]] const KernelTimings& timings() const { return timings_; }

 private:
  std::vector<std::string> param_names_;
  std::vector<std::string> array_names_;
  std::vector<std::string> scalar_names_;
  std::string source_;
  std::string so_path_;
  std::unique_ptr<Module> module_;
  EntryFn entry_ = nullptr;
  GuardFn guard_ = nullptr;
  KernelTimings timings_;
};

/// Compile `programs` in parallel on `workers` threads (0 = hardware
/// concurrency), sharing the kernel cache; per-entry file locks make
/// concurrent identical compiles collapse into one.  Errors are collected
/// and rethrown as one blk::Error after all workers finish.  Use before a
/// benchmark or sweep that will construct Kernels for the same programs:
/// construction then hits the warm cache.
void warm(const std::vector<const ir::Program*>& programs, int workers = 0,
          KernelCache* cache = nullptr);

/// Aggregate JIT counters since process start (or reset_stats()).
struct Stats {
  std::uint64_t kernels = 0;      ///< Kernel constructions
  std::uint64_t compiles = 0;     ///< cache misses that ran the compiler
  std::uint64_t cache_hits = 0;
  std::uint64_t runs = 0;
  std::uint64_t guard_fails = 0;  ///< entry-guard rejections (all variants)
  std::uint64_t demotions = 0;    ///< variants the runtime gave up on
  double compile_seconds = 0.0;
  double load_seconds = 0.0;
  double run_seconds = 0.0;
};

[[nodiscard]] Stats stats();
void reset_stats();

/// Per-kernel records accumulated since reset_stats().
[[nodiscard]] std::vector<KernelTimings> kernel_stats();

/// The whole registry as a JSON object:
///   {"compiles": 2, "cache_hits": 5, ..., "guard_fails": 0,
///    "demotions": 0, "kernels": [{..., "variant": "", "guard_fails": 0,
///    "demoted": false}, ...]}
[[nodiscard]] std::string stats_json();

}  // namespace blk::native
