#include "native/jit.hpp"

#include <dlfcn.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ir/error.hpp"

namespace blk::native {

namespace {

/// First line of `cmd`'s stdout, or "" when the command fails.
std::string first_line_of(const std::string& cmd) {
  std::FILE* pipe = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  if (!pipe) return "";
  char buf[512] = {0};
  std::string line;
  if (std::fgets(buf, sizeof buf, pipe)) line = buf;
  int rc = ::pclose(pipe);
  if (rc != 0) return "";
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

struct Probe {
  bool ok = false;
  Toolchain tc;
};

const Probe& probe() {
  static const Probe p = [] {
    Probe r;
    const char* env_cc = std::getenv("BLK_NATIVE_CC");
    r.tc.cc = env_cc && *env_cc ? env_cc : "cc";
    r.tc.version = first_line_of(r.tc.cc + " --version");
    if (r.tc.version.empty()) return r;  // no usable compiler
    // -ffp-contract=off keeps a*b+c as two IEEE operations so native
    // results stay bit-identical to the VM even with -march=native FMA.
    // -pthread is unconditional: serial kernels ignore it and parallel
    // kernels (EmitOptions::parallel) link their fork-join pool with it.
    r.tc.flags = {"-O2", "-fPIC", "-shared", "-ffp-contract=off",
                  "-pthread"};
    const char* march = std::getenv("BLK_NATIVE_MARCH");
    if (march && *march)
      r.tc.flags.push_back(std::string("-march=") + march);
    // Extra flags for the emitted kernels themselves (e.g. CI compiles
    // them with -fsanitize=thread so TSAN sees into the pool).  Folded
    // into Toolchain::id(), so instrumented objects never alias clean
    // cache entries.
    if (const char* extra = std::getenv("BLK_NATIVE_EXTRA_CFLAGS");
        extra && *extra) {
      std::istringstream is(extra);
      std::string flag;
      while (is >> flag) r.tc.flags.push_back(flag);
    }
    r.ok = true;
    return r;
  }();
  return p;
}

bool g_forced_off = false;

}  // namespace

std::string Toolchain::id() const {
  std::ostringstream os;
  os << version;
  for (const auto& f : flags) os << ' ' << f;
  return os.str();
}

std::string Toolchain::command(const std::string& src,
                               const std::string& out) const {
  std::ostringstream os;
  os << cc;
  for (const auto& f : flags) os << ' ' << f;
  os << " -o '" << out << "' '" << src << "' -lm";
  return os.str();
}

const Toolchain* toolchain() {
  if (g_forced_off) return nullptr;
  const Probe& p = probe();
  return p.ok ? &p.tc : nullptr;
}

bool available() { return toolchain() != nullptr; }

void force_unavailable_for_testing(bool off) { g_forced_off = off; }

Module::Module(std::string so_path) : path_(std::move(so_path)) {
  const auto t0 = std::chrono::steady_clock::now();
  handle_ = ::dlopen(path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle_) {
    const char* why = ::dlerror();
    throw Error("native: dlopen failed for " + path_ +
                (why ? std::string(": ") + why : ""));
  }
  load_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

Module::~Module() {
  if (handle_) ::dlclose(handle_);
}

Module::Module(Module&& other) noexcept
    : handle_(other.handle_),
      path_(std::move(other.path_)),
      load_seconds_(other.load_seconds_) {
  other.handle_ = nullptr;
}

Module& Module::operator=(Module&& other) noexcept {
  if (this != &other) {
    if (handle_) ::dlclose(handle_);
    handle_ = other.handle_;
    path_ = std::move(other.path_);
    load_seconds_ = other.load_seconds_;
    other.handle_ = nullptr;
  }
  return *this;
}

void* Module::sym(const std::string& name) const {
  return ::dlsym(handle_, name.c_str());
}

}  // namespace blk::native
