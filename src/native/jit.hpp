// Host-toolchain JIT plumbing: compiler discovery and shared-object
// loading.
//
// The paper's closing argument is that a machine-independent source plus
// compiler technology suffices to port performance.  This module is the
// "compiler technology" half at execution time: it finds the host C
// compiler once per process, compiles emitted C to a position-independent
// shared object, and dlopens the result.  Everything above it (the kernel
// cache, the execution engine) treats a missing toolchain as a soft
// condition — callers fall back to the bytecode VM.
#pragma once

#include <string>
#include <vector>

namespace blk::native {

/// The probed host C toolchain.
struct Toolchain {
  std::string cc;                  ///< compiler command ($BLK_NATIVE_CC or cc)
  std::string version;             ///< first line of `cc --version`
  std::vector<std::string> flags;  ///< -O2 -fPIC -shared -ffp-contract=off...

  /// Stable identity string (version + flags) folded into cache keys so a
  /// compiler or flag change never reuses a stale shared object.
  [[nodiscard]] std::string id() const;

  /// Full shell command compiling `src` to `out` (stderr not redirected;
  /// callers append their own `2> file`).
  [[nodiscard]] std::string command(const std::string& src,
                                    const std::string& out) const;
};

/// The process-wide toolchain, probed once: nullptr when no usable C
/// compiler is on PATH.  `$BLK_NATIVE_CC` overrides the compiler,
/// `$BLK_NATIVE_MARCH=native` opts into -march=native (the default flag
/// set keeps -ffp-contract=off either way, so native results stay
/// bit-identical to the VM even on FMA hardware), and
/// `$BLK_NATIVE_EXTRA_CFLAGS` appends whitespace-separated flags (CI uses
/// it to build emitted kernels with -fsanitize=thread).  Every knob is
/// part of Toolchain::id() and therefore of the kernel-cache key.
[[nodiscard]] const Toolchain* toolchain();

/// True when toolchain() is usable (and not suppressed for testing).
[[nodiscard]] bool available();

/// Test hook: pretend no toolchain exists, exercising every fallback
/// path.  Not thread-safe; flip only at test setup.
void force_unavailable_for_testing(bool off);

/// A dlopened shared object (RTLD_NOW | RTLD_LOCAL), closed on
/// destruction.  Throws blk::Error when the object cannot be loaded.
class Module {
 public:
  explicit Module(std::string so_path);
  ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&& other) noexcept;
  Module& operator=(Module&& other) noexcept;

  /// Resolve a symbol; nullptr when absent.
  [[nodiscard]] void* sym(const std::string& name) const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] double load_seconds() const { return load_seconds_; }

 private:
  void* handle_ = nullptr;
  std::string path_;
  double load_seconds_ = 0.0;
};

}  // namespace blk::native
