// Stage functions and composite drivers of the pass manager, plus the
// transform/blocking.hpp driver entry points (kept as thin wrappers over
// this layer so every existing caller and golden test sees identical
// behavior).
#include "pm/drivers.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "ir/error.hpp"
#include "model/sweep.hpp"
#include "transform/ifinspect.hpp"
#include "transform/instrument.hpp"
#include "transform/interchange.hpp"
#include "transform/pattern.hpp"
#include "transform/scalarrepl.hpp"
#include "transform/split.hpp"
#include "transform/stripmine.hpp"
#include "transform/unrolljam.hpp"

namespace blk::pm::detail {

using namespace blk::ir;
using analysis::Assumptions;
using transform::AutoBlockResult;
using transform::ConvOptResult;
using transform::GivensOptResult;

void step_stripmine(PipelineContext& ctx, IExprPtr block, bool exact) {
  if (!block) block = ctx.default_block;
  if (!block)
    throw Error("stripmine: no block size (pass b=... or set a default)");
  // A symbolic block size names a parameter; declare it on first use so
  // specs like "stripmine(b=BS)" work on programs that never mention BS.
  if (block->kind == IKind::Var && !ctx.prog.has_param(block->name))
    ctx.prog.param(block->name);
  Loop& strip = transform::strip_mine(ctx.prog, ctx.target(), std::move(block),
                                      exact);
  ctx.strip = &strip;
  ctx.split_report.reset();
  ctx.pieces.clear();
}

void step_split(PipelineContext& ctx) {
  ctx.split_report = transform::index_set_split(
      ctx.prog.body, ctx.strip_or_target(), ctx.hints, ctx.commutativity);
}

void step_distribute(PipelineContext& ctx) {
  if (ctx.split_report && !ctx.split_report->distributable) {
    ctx.stage_skipped = true;
    ctx.stage_note = "split left the body non-distributable";
    return;
  }
  Loop& target = ctx.strip_or_target();
  // The commutativity filter is rebuilt here: splitting moved and cloned
  // statements.  Legality must not lean on the driver hints (they may be
  // false on the ragged block); loop-range facts alone decide.
  transform::IgnoreEdge ignore;
  if (ctx.commutativity) ignore = transform::commutativity_filter(target);
  ctx.pieces = transform::distribute(ctx.prog.body, target, nullptr, ignore);
  // Distribution replaced the strip node; re-point at the surviving copy
  // (the first piece still carries the strip variable at its head).
  if (ctx.strip && !ctx.pieces.empty()) ctx.strip = ctx.pieces.front();
}

void step_interchange(PipelineContext& ctx) {
  if (ctx.split_report && !ctx.split_report->distributable) {
    ctx.stage_skipped = true;
    ctx.stage_note = "split left the body non-distributable";
    return;
  }
  if (ctx.pieces.empty()) {
    // No distribution ran: plain strip-mine-and-interchange semantics.
    ctx.interchanges += transform::sink_loop(
        ctx.prog.body, ctx.strip_or_target(), /*check=*/true, nullptr);
    return;
  }
  // The MIN/MAX bounds created by splitting are first resolved using only
  // loop-range facts (always exact); e.g. MAX(KK+1, <split point>+1)
  // resolves to the split-point side because KK never exceeds it.
  for (Loop* piece : ctx.pieces) {
    if (piece->body.size() != 1 || piece->body[0]->kind() != SKind::Loop)
      continue;  // the point-algorithm piece keeps the strip loop outside
    Assumptions bounds_ctx;
    for (Loop* outer : enclosing_loops(ctx.prog.body, *piece))
      bounds_ctx.add_loop_range(*outer);
    bounds_ctx.add_loop_range(*piece);
    transform::simplify_bounds_in(piece->body, std::move(bounds_ctx));
    ctx.interchanges += transform::sink_loop(ctx.prog.body, *piece,
                                             /*check=*/true, nullptr);
  }
}

int step_register_block(PipelineContext& ctx, Loop& loop, long factor) {
  // Jam: triangular when the immediate inner bound tracks the unrolled
  // variable with slope one, rectangular otherwise.
  bool triangular = false;
  if (loop.body.size() == 1 && loop.body[0]->kind() == SKind::Loop) {
    const Loop& inner = loop.body[0]->as_loop();
    if (auto f = as_affine(*inner.lb);
        f && f->coef_of(loop.var) == 1 && !mentions(*inner.ub, loop.var))
      triangular = true;
  }
  if (triangular)
    transform::unroll_and_jam_triangular(ctx.prog.body, loop, factor,
                                         &ctx.hints);
  else
    transform::unroll_and_jam(ctx.prog.body, loop, factor, &ctx.hints);

  // Scalar-replace the invariant references of every innermost loop the
  // jam produced (the unrolled accumulators).
  std::vector<Loop*> innermost;
  for_each_stmt(ctx.prog.body, [&](Stmt& s) {
    if (s.kind() != SKind::Loop) return;
    Loop& l = s.as_loop();
    bool has_inner = false;
    for (const auto& c : l.body)
      if (c->kind() == SKind::Loop) has_inner = true;
    if (!has_inner) innermost.push_back(&l);
  });
  int replaced = 0;
  for (Loop* l : innermost)
    replaced += transform::scalar_replace(ctx.prog, ctx.prog.body, *l,
                                          ctx.hints);
  ctx.scalar_groups += replaced;
  return replaced;
}

namespace {

/// Pre-order list of every loop in `body` (the clone-correspondence key:
/// clone() preserves traversal order, so the i-th loop of the original is
/// the i-th loop of the clone).
std::vector<Loop*> all_loops(StmtList& body) {
  std::vector<Loop*> out;
  for_each_stmt(body, [&](Stmt& s) {
    if (s.kind() == SKind::Loop) out.push_back(&s.as_loop());
  });
  return out;
}

}  // namespace

model::BlockChoice& step_selectblock(PipelineContext& ctx,
                                     const SelectBlockOptions& opt) {
  model::MachineParams machine;
  if (!ctx.machine.empty()) machine.levels = ctx.machine;
  machine.latencies = ctx.latencies;
  machine.effective_fraction =
      static_cast<double>(opt.fraction_pct) / 100.0;

  // Probe size: the arrays must overflow L1 or every candidate looks
  // equally good; 2x capacity in one N*N array is comfortably past it.
  long probe = opt.probe;
  if (probe <= 0) {
    const double target =
        2.0 * static_cast<double>(machine.l1().size_bytes) /
        static_cast<double>(machine.element_bytes);
    probe = 16;
    while (static_cast<double>(probe) * static_cast<double>(probe) < target &&
           probe < 512)
      probe += 16;
  }

  ir::Env probe_env;
  for (const std::string& p : ctx.prog.params()) {
    if (p == opt.ks_name) continue;
    auto it = ctx.resolved.find(p);
    probe_env[p] = it != ctx.resolved.end() ? it->second : probe;
  }

  Loop& focus = ctx.target();
  model::AnalyticModel am = model::build_analytic_model(
      ctx.prog.body, focus, opt.ks_name, probe_env, machine);

  model::BlockChoice choice;
  choice.ks_name = opt.ks_name;
  choice.probe = probe;
  choice.budget_bytes = am.budget_bytes;
  choice.analytic_ks = am.largest_fitting(2, std::max(2L, am.trip));
  choice.analytic_footprint_bytes = am.footprint_bytes(choice.analytic_ks);
  choice.candidates = am.candidates();
  choice.ks = choice.analytic_ks;

  // The full-block view (focus + ks - 1 <= focus.ub) steers the later
  // split exactly as the hand-supplied --assume hints did; splitting
  // itself stays unconditionally safe on ragged blocks.
  ctx.hints.assert_le(isub(iadd(ivar(focus.var), ivar(opt.ks_name)),
                           iconst(1)),
                      focus.ub);

  if (opt.sweep && am.trip >= 4) {
    // Block a *clone* and measure it: observers muted (the verifier must
    // not audit throwaway work) and analyses private to the clone.
    ir::Program clone = ctx.prog.clone();
    std::vector<Loop*> orig_loops = all_loops(ctx.prog.body);
    std::vector<Loop*> clone_loops = all_loops(clone.body);
    auto fit = std::find(orig_loops.begin(), orig_loops.end(), &focus);
    Loop* clone_focus =
        fit == orig_loops.end()
            ? nullptr
            : clone_loops[static_cast<std::size_t>(fit - orig_loops.begin())];
    try {
      if (!clone_focus) throw Error("selectblock: focus not in program");
      transform::ObserverMute mute;
      PipelineContext cctx(clone, ctx.hints);
      cctx.commutativity = ctx.commutativity;
      cctx.focus = clone_focus;
      analysis::ScopedAnalysisManager sam(cctx.am);
      AutoBlockResult blocked = auto_block_impl(cctx, ivar(opt.ks_name));
      if (!blocked.blocked)
        throw Error("selectblock: the probe clone did not block");

      // The factor becomes a runtime scalar of the clone: the sweep's one
      // ExecEngine reads it per run instead of recompiling per candidate.
      clone.scalar(opt.ks_name);

      model::SweepOptions sopt;
      std::set<long> ks_set(choice.candidates.begin(),
                            choice.candidates.end());
      if (opt.grid)
        for (long k : {4L, 6L, 8L, 12L, 16L, 24L, 32L, 48L, 64L, 96L, 128L})
          if (k >= 2 && k <= am.trip) ks_set.insert(k);
      sopt.candidates.assign(ks_set.begin(), ks_set.end());
      sopt.ks_scalar = opt.ks_name;
      sopt.probe_params = probe_env;
      sopt.levels = machine.levels;
      sopt.latencies = machine.latencies;
      sopt.workers = opt.workers;
      sopt.seed = opt.seed;
      sopt.trace_format = opt.raw_traces ? model::TraceFormat::Raw
                                         : model::TraceFormat::Compressed;
      sopt.sample_every = opt.sample_every;
      sopt.sample_tolerance = opt.sample_tolerance;
      model::SweepResult sw = model::sweep_block_sizes(clone, sopt);

      choice.swept = true;
      choice.metric_name = sw.metric_name;
      choice.compressed_traces = sw.compressed;
      choice.traces_synthesized =
          !sw.rows.empty() && sw.rows.front().synthesized;
      choice.sample_every = sw.sample_every;
      choice.sample_validated = sw.sample_validated;
      choice.sample_delta = sw.sample_delta;
      choice.store_hits = sw.store_hits;
      choice.store_misses = sw.store_misses;
      if (!sw.note.empty()) choice.note = sw.note;
      std::size_t chosen_row = sw.rows.size();
      for (std::size_t i = 0; i < sw.rows.size(); ++i) {
        const model::CandidateResult& r = sw.rows[i];
        model::BlockChoice::Row row;
        row.ks = r.ks;
        row.metric = r.metric;
        row.miss_ratio = r.levels.empty() ? 0.0 : r.levels[0].miss_ratio();
        row.accesses = r.levels.empty() ? 0 : r.levels[0].accesses;
        row.misses = r.levels.empty() ? 0 : r.levels[0].misses;
        row.predicted_bytes = am.footprint_bytes(r.ks);
        row.from_model = std::find(choice.candidates.begin(),
                                   choice.candidates.end(),
                                   r.ks) != choice.candidates.end();
        if (row.from_model &&
            (chosen_row == sw.rows.size() ||
             row.metric < choice.table[chosen_row].metric))
          chosen_row = choice.table.size();
        choice.table.push_back(row);
      }
      if (chosen_row < choice.table.size()) {
        choice.ks = choice.table[chosen_row].ks;
        choice.chosen_metric = choice.table[chosen_row].metric;
      }
      choice.best_swept_ks = sw.rows[sw.best_index].ks;
      choice.best_swept_metric = sw.rows[sw.best_index].metric;
    } catch (const Error& e) {
      choice.note = std::string("sweep skipped: ") + e.what();
    }
  } else if (opt.sweep) {
    choice.note = "sweep skipped: focus trip count too small at probe";
  }

  ctx.resolved[opt.ks_name] = choice.ks;
  if (!ctx.default_block) ctx.default_block = ivar(opt.ks_name);
  ctx.block_choice = std::move(choice);
  return *ctx.block_choice;
}

AutoBlockResult auto_block_impl(PipelineContext& ctx, IExprPtr block) {
  AutoBlockResult result;
  int interchanges_before = ctx.interchanges;

  // 1. Strip-mine (with the MIN guard, so the result is exact for ragged
  //    trailing blocks).
  step_stripmine(ctx, std::move(block), /*exact=*/false);
  result.strip = ctx.strip;

  // 2. Procedure IndexSetSplit against the strip loop's recurrences.  The
  //    hints (e.g. the full-block view K+BS-1 <= N-1) steer only *where*
  //    to split — splitting itself is unconditionally safe.
  step_split(ctx);
  result.splits = ctx.split_report->splits;
  if (!ctx.split_report->distributable) return result;

  // 3. Distribute the strip loop over its dependence components.
  step_distribute(ctx);
  result.pieces = ctx.pieces;
  result.blocked =
      ctx.pieces.size() > 1 || ctx.split_report->distributable;
  result.strip = ctx.strip;

  // 4. Sink the strip loop in every piece that forms a perfect nest.
  step_interchange(ctx);
  result.interchanges = ctx.interchanges - interchanges_before;
  return result;
}

AutoBlockResult auto_block_plus_impl(PipelineContext& ctx, IExprPtr block,
                                     long unroll) {
  AutoBlockResult result = auto_block_impl(ctx, std::move(block));
  if (!result.blocked || unroll <= 1) return result;
  // Register-block the trailing pieces (the perfect nests the strip loop
  // sank into); the first piece keeps the point algorithm, as in Fig. 6.
  for (std::size_t i = 1; i < result.pieces.size(); ++i) {
    try {
      step_register_block(ctx, *result.pieces[i], unroll);
    } catch (const Error&) {
      // An unjammable piece stays as derived; blocking already succeeded.
    }
  }
  return result;
}

ConvOptResult optimize_convolution_impl(PipelineContext& ctx, long unroll) {
  ir::Program& p = ctx.prog;
  if (p.body.empty() || p.body[0]->kind() != SKind::Loop)
    throw Error("optimize_convolution: expected an outer loop");
  ConvOptResult result;

  // 1. De-trapezoidalize.
  result.pieces = transform::split_trapezoid_all(p.body, p.body[0]->as_loop());
  ctx.pieces = result.pieces;

  for (Loop* piece : result.pieces) {
    if (piece->body.size() != 1 || piece->body[0]->kind() != SKind::Loop)
      continue;
    Loop& inner = piece->body[0]->as_loop();
    // 2. Rhomboid (both inner bounds track the outer variable with the
    //    same slope): normalization makes it rectangular.
    auto flb = as_affine(*inner.lb);
    auto fub = as_affine(*inner.ub);
    if (flb && fub) {
      long a_lb = flb->coef_of(piece->var);
      long a_ub = fub->coef_of(piece->var);
      if (a_lb != 0 && a_lb == a_ub) {
        transform::normalize_loop(p.body, inner);
        ++result.normalized;
      }
    }
    // 3. Register blocking: unroll-and-jam + scalar replacement.  A piece
    //    whose dependences or shape refuse stays as split.
    try {
      step_register_block(ctx, *piece, unroll);
      ++result.jammed;
    } catch (const Error&) {
    }
  }
  return result;
}

GivensOptResult optimize_givens_impl(PipelineContext& ctx) {
  ir::Program& p = ctx.prog;
  if (p.body.empty() || p.body[0]->kind() != SKind::Loop)
    throw Error("optimize_givens: expected an outer column loop");
  Loop& l = p.body[0]->as_loop();
  if (l.body.size() != 1 || l.body[0]->kind() != SKind::Loop)
    throw Error("optimize_givens: expected the guarded row loop inside");
  Loop& j = l.body[0]->as_loop();

  // 1. Preparation + inspection (Fig. 10's first half).
  transform::IfInspectResult insp = transform::if_inspect_auto(p, p.body, j);
  ctx.inspector = insp.inspector;
  ctx.range_loop = insp.range_loop;
  ctx.executor = insp.executor;

  GivensOptResult result;
  // 2. Sink the executor's row loop below the update loop: the executor
  //    (DO J = JLB(JN), JUB(JN)) perfectly nests the K update loop; two
  //    rectangular interchanges make K outermost of the JN/J pair.
  transform::interchange(p.body, *insp.executor);
  transform::interchange(p.body, *insp.range_loop);
  result.interchanges = 2;
  ctx.interchanges += 2;
  result.column_loop = insp.range_loop;  // now the K loop (in place)
  return result;
}

namespace {

/// Install a fresh caching AnalysisManager unless the caller (a pipeline
/// run, a test fixture) already has one current on this thread — the
/// drivers get memoized analyses either way.
struct EnsureManager {
  std::optional<analysis::AnalysisManager> own;
  std::optional<analysis::ScopedAnalysisManager> scope;
  EnsureManager() {
    if (!analysis::current_analysis_manager()) {
      own.emplace();
      scope.emplace(*own);
    }
  }
};

}  // namespace

}  // namespace blk::pm::detail

// ---------------------------------------------------------------------------
// transform/blocking.hpp driver entry points: thin wrappers over the pass-
// manager layer (same stage functions the registry binds, so behavior and
// printed derivations are identical to the pre-pass-manager drivers).

namespace blk::transform {

AutoBlockResult auto_block(ir::Program& p, ir::Loop& loop,
                           ir::IExprPtr block,
                           const analysis::Assumptions& hints,
                           bool use_commutativity) {
  pm::detail::EnsureManager mgr;
  pm::PipelineContext ctx(p, hints);
  ctx.focus = &loop;
  ctx.commutativity = use_commutativity;
  return pm::detail::auto_block_impl(ctx, std::move(block));
}

int register_block(ir::Program& p, ir::Loop& loop, long factor,
                   const analysis::Assumptions& hints) {
  pm::detail::EnsureManager mgr;
  pm::PipelineContext ctx(p, hints);
  return pm::detail::step_register_block(ctx, loop, factor);
}

AutoBlockResult auto_block_plus(ir::Program& p, ir::Loop& loop,
                                ir::IExprPtr block, long unroll,
                                const analysis::Assumptions& hints,
                                bool use_commutativity) {
  pm::detail::EnsureManager mgr;
  pm::PipelineContext ctx(p, hints);
  ctx.focus = &loop;
  ctx.commutativity = use_commutativity;
  return pm::detail::auto_block_plus_impl(ctx, std::move(block), unroll);
}

ConvOptResult optimize_convolution(ir::Program& p, long unroll,
                                   const analysis::Assumptions& hints) {
  pm::detail::EnsureManager mgr;
  pm::PipelineContext ctx(p, hints);
  return pm::detail::optimize_convolution_impl(ctx, unroll);
}

GivensOptResult optimize_givens(ir::Program& p) {
  pm::detail::EnsureManager mgr;
  pm::PipelineContext ctx(p);
  return pm::detail::optimize_givens_impl(ctx);
}

}  // namespace blk::transform
