// Internal stage functions of the pass manager.
//
// Each step_* mutates the PipelineContext exactly the way one stage of the
// hand-written drivers used to: the registry's pass entries bind these,
// and the composite drivers (auto_block & friends, re-exported through
// transform/blocking.hpp as thin wrappers) call the *same* functions — so
// a textual pipeline "stripmine(b=BS); split; distribute(commutativity);
// interchange" and a call to transform::auto_block produce bit-identical
// derivations by construction.
#pragma once

#include "pm/pass.hpp"
#include "transform/blocking.hpp"

namespace blk::pm::detail {

/// §2.3/§5.1 step 1: strip-mine the target loop; ctx.strip points at the
/// new inner loop afterwards.  Resets downstream stage products.
void step_stripmine(PipelineContext& ctx, ir::IExprPtr block, bool exact);

/// §5.1 step 2: Procedure IndexSetSplit on the strip (or target) loop.
void step_split(PipelineContext& ctx);

/// §5.1 step 3: distribute the strip (or target) loop over its dependence
/// components, with the §5.2 commutativity filter when armed.  Skips
/// (ctx.stage_skipped) when a preceding split reported not-distributable.
void step_distribute(PipelineContext& ctx);

/// §5.1 step 4: in every distributed piece that forms a perfect nest,
/// resolve MIN/MAX bounds with the enclosing loops' range facts and sink
/// the strip loop inward.  Without pieces, sinks the strip/target loop
/// directly (plain strip-mine-and-interchange).
void step_interchange(PipelineContext& ctx);

/// Register blocking on `loop`: unroll-and-jam (triangular when the shape
/// demands) followed by scalar replacement of every innermost loop.
/// Returns the number of scalar groups replaced.
int step_register_block(PipelineContext& ctx, ir::Loop& loop, long factor);

/// §6: choose the blocking factor from the machine model.
struct SelectBlockOptions {
  std::string ks_name = "KS";
  long probe = 0;          ///< parameter probe size (0: derived from L1)
  long fraction_pct = 75;  ///< effective cache fraction, percent
  bool sweep = true;       ///< refine the analytic pick empirically
  bool grid = false;       ///< also sweep a coverage grid for evidence
  unsigned workers = 0;    ///< simulator threads (0: auto)
  std::uint64_t seed = 42;
  bool raw_traces = false; ///< legacy raw path (no trace pipeline)
  long sample_every = 1;   ///< trace sampling stride (1 = full traces)
  double sample_tolerance = 0.02;  ///< sampled-vs-full miss-ratio bound
};

/// Build the analytic model of ctx.target(), optionally refine it by
/// sweeping a *blocked clone* of the program (the clone is blocked under
/// an ObserverMute with a private AnalysisManager, so the caller's
/// verification observers and caches never see it; one ExecEngine serves
/// every candidate).  Leaves the decision in ctx.block_choice, binds
/// ctx.resolved[ks_name], defaults ctx.default_block to the symbolic
/// name, and adds the full-block hint  focus + ks - 1 <= focus.ub  so a
/// following split finds the §5.1 structure without caller --assume.
model::BlockChoice& step_selectblock(PipelineContext& ctx,
                                     const SelectBlockOptions& opt);

// Composite drivers, operating on ctx.prog / ctx.focus / ctx.hints.
transform::AutoBlockResult auto_block_impl(PipelineContext& ctx,
                                           ir::IExprPtr block);
transform::AutoBlockResult auto_block_plus_impl(PipelineContext& ctx,
                                                ir::IExprPtr block,
                                                long unroll);
transform::ConvOptResult optimize_convolution_impl(PipelineContext& ctx,
                                                   long unroll);
transform::GivensOptResult optimize_givens_impl(PipelineContext& ctx);

}  // namespace blk::pm::detail
