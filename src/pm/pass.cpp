#include "pm/pass.hpp"

#include "ir/error.hpp"
#include "ir/iexpr.hpp"

namespace blk::pm {

const char* to_string(OptKind k) {
  switch (k) {
    case OptKind::Int:
      return "int";
    case OptKind::Expr:
      return "expr";
    case OptKind::Str:
      return "name";
    case OptKind::Flag:
      return "flag";
  }
  return "?";
}

std::string OptionValue::to_string() const {
  switch (kind) {
    case Kind::Int:
      return std::to_string(int_value);
    case Kind::Name:
      return name;
    case Kind::Flag:
      return "";
  }
  return "";
}

const OptionValue* PassInvocation::find(std::string_view opt) const {
  for (const auto& [name, value] : options)
    if (name == opt) return &value;
  return nullptr;
}

bool PassInvocation::flag(std::string_view opt) const {
  return find(opt) != nullptr;
}

ir::IExprPtr PassInvocation::expr(std::string_view opt) const {
  const OptionValue* v = find(opt);
  if (!v) return nullptr;
  if (v->kind == OptionValue::Kind::Int) return ir::iconst(v->int_value);
  if (v->kind == OptionValue::Kind::Name) return ir::ivar(v->name);
  throw Error("pass '" + pass + "': option '" + std::string(opt) +
              "' has no value");
}

long PassInvocation::int_or(std::string_view opt, long fallback) const {
  const OptionValue* v = find(opt);
  if (!v) return fallback;
  if (v->kind != OptionValue::Kind::Int)
    throw Error("pass '" + pass + "': option '" + std::string(opt) +
                "' is not an integer");
  return v->int_value;
}

std::string PassInvocation::str_or(std::string_view opt,
                                   std::string fallback) const {
  const OptionValue* v = find(opt);
  if (!v) return fallback;
  return v->name;
}

std::string PassInvocation::to_string() const {
  std::string out = pass;
  if (!options.empty()) {
    out += '(';
    bool first = true;
    for (const auto& [name, value] : options) {
      if (!first) out += ", ";
      first = false;
      out += name;
      if (value.kind != OptionValue::Kind::Flag)
        out += "=" + value.to_string();
    }
    out += ')';
  }
  return out;
}

std::string Pipeline::to_string() const {
  std::string out;
  for (const PassInvocation& inv : passes) {
    if (!out.empty()) out += "; ";
    out += inv.to_string();
  }
  return out;
}

bool Pipeline::uses_commutativity() const {
  for (const PassInvocation& inv : passes)
    if (inv.flag("commutativity")) return true;
  return false;
}

ir::Loop& PipelineContext::target() {
  if (focus) return *focus;
  for (auto& s : prog.body)
    if (s->kind() == ir::SKind::Loop) return s->as_loop();
  throw Error("pipeline: program has no top-level loop to target");
}

ir::Loop& PipelineContext::strip_or_target() {
  return strip ? *strip : target();
}

const OptionSpec* PassInfo::option(std::string_view opt) const {
  for (const OptionSpec& spec : options)
    if (spec.name == opt) return &spec;
  return nullptr;
}

const Registry& Registry::instance() {
  static const Registry r;
  return r;
}

const PassInfo* Registry::lookup(std::string_view name) const {
  auto it = passes_.find(std::string(name));
  return it == passes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& [name, info] : passes_) out.push_back(name);
  return out;
}

}  // namespace blk::pm
