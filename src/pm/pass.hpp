// Pass-manager core: typed pass options, the pass registry, and the
// pipeline context threaded through a running pipeline.
//
// A *pass* here is a named, declaratively-optioned unit of transformation
// — either one of the repo's primitives (strip-mine, index-set split,
// distribute, interchange, ...) or a composite driver (the §5.1/§5.2
// auto-blocker, the §3.2 convolution optimizer, the §5.4 Givens recipe).
// Pipelines are *data*: a textual spec ("stripmine(b=32); split;
// distribute(commutativity); interchange") parsed by spec.hpp and executed
// by runner.hpp against a PipelineContext that carries the program, the
// driver hints, the focus loop, and the results each stage leaves for the
// next (the strip loop, the distributed pieces, the split report).
//
// The registry is the single source of truth for what exists and what
// options each pass takes; the spec parser validates against it and the
// `blk-opt` CLI prints it (--print-registry).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/assume.hpp"
#include "analysis/manager.hpp"
#include "cachesim/cache.hpp"
#include "ir/codegen.hpp"
#include "ir/program.hpp"
#include "model/model.hpp"
#include "sa/certify.hpp"
#include "transform/split.hpp"

namespace blk::pm {

/// Typed pass-option kinds.  `Expr` accepts an integer literal or a
/// parameter name (lowered to iconst / ivar); `Flag` is presence-only.
enum class OptKind : std::uint8_t { Int, Expr, Str, Flag };

[[nodiscard]] const char* to_string(OptKind k);

/// One declared option of a pass.
struct OptionSpec {
  std::string name;
  OptKind kind = OptKind::Flag;
  bool required = false;
  std::string doc;
};

/// A parsed option value (before typing against an OptionSpec).
struct OptionValue {
  enum class Kind : std::uint8_t { Int, Name, Flag } kind = Kind::Flag;
  long int_value = 0;
  std::string name;  ///< identifier payload for Name

  [[nodiscard]] std::string to_string() const;
};

/// One pass invocation from a spec: name plus option assignments in
/// source order.
struct PassInvocation {
  std::string pass;
  std::vector<std::pair<std::string, OptionValue>> options;

  [[nodiscard]] const OptionValue* find(std::string_view opt) const;
  [[nodiscard]] bool flag(std::string_view opt) const;
  /// Lower an Expr-kind option: Int -> iconst, Name -> ivar.  Returns
  /// nullptr when absent.
  [[nodiscard]] ir::IExprPtr expr(std::string_view opt) const;
  [[nodiscard]] long int_or(std::string_view opt, long fallback) const;
  [[nodiscard]] std::string str_or(std::string_view opt,
                                   std::string fallback) const;

  [[nodiscard]] std::string to_string() const;
};

/// A full parsed pipeline.  `to_string` produces the canonical spec,
/// which re-parses to an equal pipeline (round-trip property).
struct Pipeline {
  std::vector<PassInvocation> passes;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool uses_commutativity() const;
};

/// State threaded through a pipeline run.  Structural passes target the
/// *focus* loop (default: the program's first top-level loop) and leave
/// their products — the strip loop, the split report, the distributed
/// pieces — for downstream stages, mirroring how the hand-written drivers
/// passed results between steps.
struct PipelineContext {
  explicit PipelineContext(ir::Program& program,
                           analysis::Assumptions driver_hints = {})
      : prog(program), hints(std::move(driver_hints)) {}

  ir::Program& prog;
  analysis::Assumptions hints;

  /// Semantic knowledge armed for the whole pipeline (§5.2): naming
  /// `commutativity` on any stage arms the pattern matcher for every
  /// dependence decision, exactly as auto_block(use_commutativity=true)
  /// did — commutativity is a fact about the program, not a per-pass
  /// tuning knob.
  bool commutativity = false;

  ir::Loop* focus = nullptr;       ///< target loop (null: first top-level)
  ir::IExprPtr default_block;      ///< stripmine's `b` when not given
  long default_unroll = 2;         ///< unrolljam's `u` when not given

  // Stage products.
  ir::Loop* strip = nullptr;               ///< innermost strip loop
  std::optional<transform::SplitReport> split_report;
  std::vector<ir::Loop*> pieces;           ///< distributed pieces, in order
  int interchanges = 0;                    ///< sinks performed so far
  int scalar_groups = 0;                   ///< scalar-replaced groups

  // IF-inspection products (§4/§5.4).
  ir::Loop* inspector = nullptr;
  ir::Loop* range_loop = nullptr;
  ir::Loop* executor = nullptr;

  // Machine-model state (§6 / the selectblock pass).
  /// Cache hierarchy to model; empty means the default L1 (64K/64B/4).
  std::vector<cachesim::CacheConfig> machine;
  /// Per-level + memory hit latencies; arity num_levels+1 switches the
  /// sweep metric from L1 miss ratio to AMAT.
  std::vector<double> latencies;
  /// Values chosen for symbolic parameters by passes (KS -> 24); callers
  /// merge these into interpretation/check environments.
  ir::Env resolved;
  /// The full decision record of the last selectblock run.
  std::optional<model::BlockChoice> block_choice;

  /// Per-loop parallel-safety verdicts from the last `certify` stage
  /// (pre-order over the program at the time the stage ran; later
  /// structural passes invalidate the `loop` pointers, not the labels).
  std::vector<sa::LoopVerdict> verdicts;

  /// The certified parallel plan built by the `parallelize` stage: which
  /// loops the native backend may run multithreaded, and how reductions
  /// combine.  Consumers (blk-opt, benches) hand it to native::Kernel /
  /// interp::ExecEngine; it is only valid for the program shape as of
  /// that stage — structural passes after `parallelize` invalidate the
  /// pre-order loop coordinates inside.
  std::optional<ir::ParallelOptions> parallel;

  // Specialization products (the `specialize` stage, src/spec/).  The
  // pass rewrites ctx.prog under the assumption set derived from
  // `resolved`; these record what the rewritten program is only valid
  // for.  Consumers (blk-opt --keep-c, bench_json) emit the guard
  // prologue via EmitOptions::guards and key caches on assumption_hash.
  /// Entry guards the specialized program must be protected by.
  std::optional<ir::GuardOptions> guards;
  /// Canonical assumption-set text ("pin{...};div{...};...") and its
  /// 128-bit hash — the cache-key salt for specialized variants.
  std::string assumption_canonical;
  std::string assumption_hash;

  /// Per-stage reporting: a stage that decides to no-op (e.g. distribute
  /// after a not-distributable split) sets these; the runner resets them
  /// before each stage and copies them into the stage's PassStat.
  bool stage_skipped = false;
  std::string stage_note;

  /// Memoized analyses for this pipeline (installed for each stage).
  analysis::AnalysisManager am;

  /// Resolve the loop a structural stage should act on: focus if set,
  /// else the first top-level loop.  Throws blk::Error when none exists.
  [[nodiscard]] ir::Loop& target();
  /// The strip loop if one exists, else target().
  [[nodiscard]] ir::Loop& strip_or_target();
};

/// A registered pass: metadata plus the stage function.
struct PassInfo {
  std::string name;
  std::string doc;
  bool composite = false;  ///< a whole driver rather than one primitive
  std::vector<OptionSpec> options;
  std::function<void(PipelineContext&, const PassInvocation&)> run;

  [[nodiscard]] const OptionSpec* option(std::string_view opt) const;
};

/// The process-wide pass registry (immutable after first use; safe to
/// read concurrently).
class Registry {
 public:
  static const Registry& instance();

  [[nodiscard]] const PassInfo* lookup(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::map<std::string, PassInfo>& passes() const {
    return passes_;
  }

 private:
  Registry();
  std::map<std::string, PassInfo> passes_;
};

}  // namespace blk::pm
