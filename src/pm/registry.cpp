// The pass registry: every transform primitive and composite driver,
// with typed options.  This is the single catalogue the spec parser
// validates against and `blk-opt --print-registry` prints.
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "ir/error.hpp"
#include "pm/drivers.hpp"
#include "pm/pass.hpp"
#include "transform/fuse.hpp"
#include "transform/ifinspect.hpp"
#include "transform/interchange.hpp"
#include "transform/scalarrepl.hpp"
#include "spec/assumptions.hpp"
#include "spec/specialize.hpp"
#include "transform/skew.hpp"
#include "transform/split.hpp"
#include "transform/unrolljam.hpp"

namespace blk::pm {

namespace {

using namespace blk::ir;

/// Walk the tree in pre-order and return the `index`-th loop whose
/// variable matches `var` (any loop when `var` is empty).
Loop* nth_loop(StmtList& body, const std::string& var, long& index) {
  for (auto& s : body) {
    if (s->kind() == SKind::Loop) {
      Loop& l = s->as_loop();
      if (var.empty() || l.var == var) {
        if (index == 0) return &l;
        --index;
      }
      if (Loop* found = nth_loop(l.body, var, index)) return found;
    } else if (s->kind() == SKind::If) {
      if (Loop* found = nth_loop(s->as_if().then_body, var, index))
        return found;
      if (Loop* found = nth_loop(s->as_if().else_body, var, index))
        return found;
    }
  }
  return nullptr;
}

/// Every scalar assigned anywhere under `body`.
void written_scalars(const StmtList& body, std::set<std::string>& out) {
  for (const auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign: {
        const Assign& a = s->as_assign();
        if (!a.lhs.is_array()) out.insert(a.lhs.name);
        break;
      }
      case SKind::Loop:
        written_scalars(s->as_loop().body, out);
        break;
      case SKind::If:
        written_scalars(s->as_if().then_body, out);
        written_scalars(s->as_if().else_body, out);
        break;
    }
  }
}

/// True when `sc` has an unconditional top-level assignment in the loop's
/// direct body — the condition under which the parallel backend's
/// last-chunk write-back reproduces serial last-value semantics (every
/// iteration overwrites the scalar, so the value after the final chunk is
/// the value after the final iteration).
bool unconditionally_assigned(const Loop& l, const std::string& sc) {
  for (const auto& s : l.body)
    if (s->kind() == SKind::Assign && !s->as_assign().lhs.is_array() &&
        s->as_assign().lhs.name == sc)
      return true;
  return false;
}

/// Split "S, T" into {"S", "T"} (the certifier comma-joins multiple
/// accumulators into one string).
std::vector<std::string> split_accumulators(const std::string& acc) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : acc) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (ch != ' ') {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Registry::Registry() {
  auto add = [this](PassInfo info) {
    passes_.emplace(info.name, std::move(info));
  };

  // --- pipeline plumbing ---------------------------------------------------

  add({.name = "focus",
       .doc = "retarget the pipeline at a loop: the index-th loop (pre-"
              "order) whose variable is var; resets stage products",
       .options = {{.name = "var", .kind = OptKind::Str,
                    .doc = "loop variable to match (default: any loop)"},
                   {.name = "index", .kind = OptKind::Int,
                    .doc = "which match to take, 0-based (default 0)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         std::string var = inv.str_or("var", "");
         long index = inv.int_or("index", 0);
         long remaining = index;
         Loop* l = nth_loop(ctx.prog.body, var, remaining);
         if (!l)
           throw Error("focus: no loop " +
                       (var.empty() ? std::string("<any>") : "'" + var + "'") +
                       " at index " + std::to_string(index));
         ctx.focus = l;
         ctx.strip = nullptr;
         ctx.split_report.reset();
         ctx.pieces.clear();
         ctx.stage_note = "focus -> DO " + l->var;
       }});

  // --- primitives ----------------------------------------------------------

  add({.name = "stripmine",
       .doc = "strip-mine the target loop by b (§2.3 step 1)",
       .options = {{.name = "b", .kind = OptKind::Expr,
                    .doc = "block size: integer or parameter name"},
                   {.name = "exact", .kind = OptKind::Flag,
                    .doc = "omit the MIN guard (caller guarantees b | trip)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         detail::step_stripmine(ctx, inv.expr("b"), inv.flag("exact"));
       }});

  add({.name = "split",
       .doc = "Procedure IndexSetSplit on the strip/target loop (Fig. 3)",
       .options = {{.name = "commutativity", .kind = OptKind::Flag,
                    .doc = "arm the §5.2 pattern matcher pipeline-wide"}},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         detail::step_split(ctx);
         ctx.stage_note =
             std::to_string(ctx.split_report->splits) + " splits, " +
             (ctx.split_report->distributable ? "distributable"
                                              : "not distributable");
       }});

  add({.name = "splitat",
       .doc = "split the target loop at a point into two disjoint pieces",
       .options = {{.name = "at", .kind = OptKind::Expr, .required = true,
                    .doc = "split point: integer or parameter name"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         auto [lo, hi] = transform::split_at(ctx.prog.body,
                                             ctx.strip_or_target(),
                                             inv.expr("at"));
         ctx.pieces = {lo, hi};
       }});

  add({.name = "split-trapezoid",
       .doc = "de-trapezoidalize the target loop at every MIN/MAX "
              "crossover (§3.2 step 1)",
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         ctx.pieces =
             transform::split_trapezoid_all(ctx.prog.body, ctx.target());
         ctx.stage_note = std::to_string(ctx.pieces.size()) + " pieces";
       }});

  add({.name = "distribute",
       .doc = "distribute the strip/target loop over its dependence "
              "components (§5.1 step 3)",
       .options = {{.name = "commutativity", .kind = OptKind::Flag,
                    .doc = "arm the §5.2 pattern matcher pipeline-wide"}},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         detail::step_distribute(ctx);
         if (!ctx.stage_skipped)
           ctx.stage_note = std::to_string(ctx.pieces.size()) + " pieces";
       }});

  add({.name = "interchange",
       .doc = "resolve bounds and sink the strip loop in every perfect-"
              "nest piece (§5.1 step 4); without pieces, sink the "
              "strip/target loop",
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         int before = ctx.interchanges;
         detail::step_interchange(ctx);
         if (!ctx.stage_skipped)
           ctx.stage_note =
               std::to_string(ctx.interchanges - before) + " interchanges";
       }});

  add({.name = "fuse",
       .doc = "fuse the target loop with its next same-header sibling",
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         transform::fuse(ctx.prog.body, ctx.target());
       }});

  add({.name = "reverse",
       .doc = "reverse the target loop's iteration order",
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         transform::reverse_loop(ctx.prog.body, ctx.target());
       }});

  add({.name = "normalize",
       .doc = "shift the target loop to run from origin upward (makes "
              "rhomboids rectangular)",
       .options = {{.name = "origin", .kind = OptKind::Int,
                    .doc = "new lower bound (default 0)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         transform::normalize_loop(ctx.prog.body, ctx.target(),
                                   inv.int_or("origin", 0));
       }});

  add({.name = "unrolljam",
       .doc = "unroll-and-jam the target loop by u",
       .options = {{.name = "u", .kind = OptKind::Int,
                    .doc = "unroll factor (default: pipeline default, 2)"},
                   {.name = "triangular", .kind = OptKind::Flag,
                    .doc = "use the §3.1 triangular jam"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         long u = inv.int_or("u", ctx.default_unroll);
         if (inv.flag("triangular"))
           transform::unroll_and_jam_triangular(ctx.prog.body, ctx.target(),
                                                u, &ctx.hints);
         else
           transform::unroll_and_jam(ctx.prog.body, ctx.target(), u,
                                     &ctx.hints);
       }});

  add({.name = "scalarrepl",
       .doc = "scalar-replace provably identical references in the target "
              "loop",
       .options = {{.name = "carried", .kind = OptKind::Flag,
                    .doc = "rotate loop-carried values instead"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         int groups =
             inv.flag("carried")
                 ? transform::scalar_replace_carried(ctx.prog, ctx.prog.body,
                                                     ctx.target())
                 : transform::scalar_replace(ctx.prog, ctx.prog.body,
                                             ctx.target(), ctx.hints);
         ctx.scalar_groups += groups;
         ctx.stage_note = std::to_string(groups) + " groups";
       }});

  add({.name = "scalarexpand",
       .doc = "expand a scalar assigned in the target loop into a "
              "temporary array indexed by the loop variable",
       .options = {{.name = "var", .kind = OptKind::Str, .required = true,
                    .doc = "scalar name to expand"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         ctx.stage_note = transform::scalar_expand(
             ctx.prog, ctx.prog.body, ctx.target(), inv.str_or("var", ""));
       }});

  add({.name = "ifinspect",
       .doc = "IF-inspection (§4): inspector/executor split of the target "
              "loop's guard",
       .options = {{.name = "auto", .kind = OptKind::Flag,
                    .doc = "run the §5.4 preparation (scalar expansion + "
                           "recurrence splitting) first"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         transform::IfInspectResult r =
             inv.flag("auto")
                 ? transform::if_inspect_auto(ctx.prog, ctx.prog.body,
                                              ctx.target())
                 : transform::if_inspect(ctx.prog, ctx.prog.body,
                                         ctx.target());
         ctx.inspector = r.inspector;
         ctx.range_loop = r.range_loop;
         ctx.executor = r.executor;
       }});

  add({.name = "simplify-bounds",
       .doc = "resolve MIN/MAX loop bounds using the pipeline hints plus "
              "loop-range facts",
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         transform::simplify_all_bounds(ctx.prog.body, ctx.hints);
       }});

  add({.name = "specialize",
       .doc = "clone the program under the assumption set derived from "
              "the resolved parameter bindings (selectblock's factor plus "
              "any --bind values): constant-fold pinned parameters, "
              "resolve MIN/MAX bounds under the exact stepped ranges the "
              "constants expose, delete provably zero-trip remainder "
              "loops, and record the entry guards + assumption-set hash "
              "the specialized kernel must be keyed and protected by; "
              "validated differentially, not translation-verified",
       .options = {{.name = "noguards", .kind = OptKind::Flag,
                    .doc = "rewrite only; publish no entry guards (the "
                           "caller vouches for the binding)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         spec::AssumptionSet as =
             spec::AssumptionSet::from_binding(ctx.prog, ctx.resolved);
         if (as.empty()) {
           ctx.stage_skipped = true;
           ctx.stage_note = "no resolved bindings to specialize under";
           return;
         }
         spec::SpecializeResult r = spec::specialize(ctx.prog, as);
         ctx.prog = std::move(r.prog);
         // The clone replaced every statement: loop-pointer products
         // (focus, strip, pieces, inspector trio) now dangle, and loop
         // coordinates inside a parallel plan shifted if remainder
         // loops were deleted.
         ctx.focus = nullptr;
         ctx.strip = nullptr;
         ctx.split_report.reset();
         ctx.pieces.clear();
         ctx.inspector = ctx.range_loop = ctx.executor = nullptr;
         ctx.parallel.reset();
         if (!inv.flag("noguards")) ctx.guards = r.guards;
         ctx.assumption_canonical = as.canonical();
         ctx.assumption_hash = as.hash();
         // Pins fold into the text: bound params stay declared (shared
         // entry ABI) but the specialized body no longer reads them.
         ctx.stage_note = "folded " + std::to_string(r.folded_params) +
                          " params, deleted " +
                          std::to_string(r.deleted_loops) +
                          " zero-trip loops, " +
                          std::to_string(r.guards.size()) + " guards [" +
                          as.hash().substr(0, 8) + "]";
       }});

  add({.name = "selectblock",
       .doc = "choose the blocking factor from the machine model (§6): "
              "analytic working-set candidates refined by a cache-"
              "simulator trace sweep; resolves the symbolic factor and "
              "adds the full-block hint for later stages",
       .composite = true,
       .options = {{.name = "name", .kind = OptKind::Str,
                    .doc = "symbolic factor name (default KS)"},
                   {.name = "probe", .kind = OptKind::Int,
                    .doc = "parameter probe size (default: sized to "
                           "overflow L1)"},
                   {.name = "fraction", .kind = OptKind::Int,
                    .doc = "effective cache fraction in percent "
                           "(default 75)"},
                   {.name = "nosweep", .kind = OptKind::Flag,
                    .doc = "analytic choice only, no empirical sweep"},
                   {.name = "grid", .kind = OptKind::Flag,
                    .doc = "also sweep a coverage grid (tolerance "
                           "evidence for --auto-b)"},
                   {.name = "workers", .kind = OptKind::Int,
                    .doc = "simulator threads (default: auto)"},
                   {.name = "seed", .kind = OptKind::Int,
                    .doc = "input seed for the sweep (default 42)"},
                   {.name = "rawtrace", .kind = OptKind::Flag,
                    .doc = "legacy raw in-memory traces instead of the "
                           "compressed record-once/replay-many pipeline"},
                   {.name = "sample", .kind = OptKind::Int,
                    .doc = "replay every k-th block instance (validated "
                           "against a full replay; default 1 = full)"},
                   {.name = "sampletol", .kind = OptKind::Int,
                    .doc = "sampling tolerance in basis points of L1 "
                           "miss ratio (default 200 = 0.02)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         detail::SelectBlockOptions opt;
         opt.ks_name = inv.str_or("name", "KS");
         opt.probe = inv.int_or("probe", 0);
         opt.fraction_pct = inv.int_or("fraction", 75);
         opt.sweep = !inv.flag("nosweep");
         opt.grid = inv.flag("grid");
         opt.workers = static_cast<unsigned>(inv.int_or("workers", 0));
         opt.seed = static_cast<std::uint64_t>(inv.int_or("seed", 42));
         opt.raw_traces = inv.flag("rawtrace");
         opt.sample_every = inv.int_or("sample", 1);
         opt.sample_tolerance =
             static_cast<double>(inv.int_or("sampletol", 200)) / 10000.0;
         const model::BlockChoice& c = detail::step_selectblock(ctx, opt);
         ctx.stage_note =
             opt.ks_name + "=" + std::to_string(c.ks) + " (analytic " +
             std::to_string(c.analytic_ks) +
             (c.swept ? ", swept " + std::to_string(c.table.size()) +
                            " candidates"
                      : ", no sweep") +
             ")";
       }});

  add({.name = "certify",
       .doc = "label every loop parallel / reduction / serial (blk-lint's "
              "certifier) and record the verdicts for later stages; with "
              "check, re-verify each parallel label by section overlap and "
              "fail the pipeline on disagreement",
       .options = {{.name = "check", .kind = OptKind::Flag,
                    .doc = "run the independent write-write race re-check"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         sa::CertifyOptions opt{.ctx = &ctx.hints};
         sa::CertifyResult r = sa::certify(ctx.prog, opt);
         if (inv.flag("check")) {
           verify::Report races = sa::check_races(ctx.prog, r, &ctx.hints);
           if (!races.diags.empty())
             throw Error("certify: race re-check disagrees: " +
                         races.diags.front().message);
         }
         ctx.verdicts = std::move(r.loops);
         std::size_t np = 0, nr = 0, ns = 0;
         for (const auto& lv : ctx.verdicts) {
           if (lv.verdict == sa::Verdict::Parallel) ++np;
           else if (lv.verdict == sa::Verdict::Reduction) ++nr;
           else ++ns;
         }
         ctx.stage_note = std::to_string(np) + " parallel, " +
                          std::to_string(nr) + " reduction, " +
                          std::to_string(ns) + " serial";
       }});

  add({.name = "skew",
       .doc = "skew the target 2-nest's inner loop by f (unimodular "
              "wavefront preparation; compose with interchange to expose "
              "the parallel inner loop)",
       .options = {{.name = "f", .kind = OptKind::Int,
                    .doc = "skew factor (default 1)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         ir::Loop& inner =
             transform::skew(ctx.prog, ctx.target(), inv.int_or("f", 1));
         ctx.stage_note = "inner -> DO " + inner.var;
       }});

  add({.name = "parallelize",
       .doc = "build the certified parallel plan the native backend "
              "executes: certify every loop, select the outermost "
              "parallel / scalar sum-product reduction levels, and record "
              "ir::ParallelOptions in the context; with check, first "
              "re-verify each parallel label by independent section "
              "overlap and fail the pipeline on disagreement",
       .options = {{.name = "check", .kind = OptKind::Flag,
                    .doc = "run the independent write-write race re-check"},
                   {.name = "threads", .kind = OptKind::Int,
                    .doc = "fixed thread count baked into the plan "
                           "(default 0: $BLK_THREADS else online CPUs)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         sa::CertifyResult r = sa::certify(ctx.prog, {.ctx = &ctx.hints});
         if (inv.flag("check")) {
           verify::Report races = sa::check_races(ctx.prog, r, &ctx.hints);
           if (!races.diags.empty())
             throw Error("parallelize: race re-check disagrees: " +
                         races.diags.front().message);
         }

         ir::ParallelOptions plan;
         plan.threads = static_cast<int>(inv.int_or("threads", 0));
         std::map<std::string, int> occ;
         int selected_depth = -1;  // skip descendants of a selected loop
         for (const auto& lv : r.loops) {
           const int occurrence = occ[lv.var]++;
           if (selected_depth >= 0 && lv.depth > selected_depth) continue;
           selected_depth = -1;

           ir::ParallelLoop pl;
           pl.var = lv.var;
           pl.occurrence = occurrence;
           std::set<std::string> exempt;  // accumulators: combined, not
                                          // written back last-value
           if (lv.verdict == sa::Verdict::Reduction) {
             if (lv.op != sa::ReduceOp::Sum &&
                 lv.op != sa::ReduceOp::Product)
               continue;  // min/max combine order is not bit-pinned yet
             std::vector<std::string> accs =
                 split_accumulators(lv.accumulator);
             bool all_scalar = !accs.empty();
             for (const auto& acc : accs)
               if (acc.find('(') != std::string::npos) all_scalar = false;
             if (!all_scalar) continue;  // array accumulators stay serial
             pl.reduction = true;
             pl.combine = lv.op == sa::ReduceOp::Sum
                              ? ir::ParallelLoop::Combine::Sum
                              : ir::ParallelLoop::Combine::Product;
             pl.accumulators = std::move(accs);
             for (const auto& acc : pl.accumulators) exempt.insert(acc);
           } else if (lv.verdict != sa::Verdict::Parallel) {
             continue;
           }

           // Privatized scalars are written back from the last chunk;
           // that reproduces serial last-value semantics only when every
           // iteration unconditionally overwrites them.
           if (!lv.loop) continue;
           std::set<std::string> written;
           written_scalars(lv.loop->body, written);
           bool ok = true;
           for (const auto& sc : written)
             if (!exempt.contains(sc) &&
                 !unconditionally_assigned(*lv.loop, sc))
               ok = false;
           if (!ok) continue;

           plan.loops.push_back(std::move(pl));
           selected_depth = lv.depth;
         }

         ctx.verdicts = std::move(r.loops);
         ctx.parallel = std::move(plan);
         ctx.stage_note = ctx.parallel->enabled()
                              ? "plan: " + ctx.parallel->summary()
                              : "no parallelizable loops";
       }});

  // --- composite drivers ---------------------------------------------------

  add({.name = "autoblock",
       .doc = "the §5.1 pipeline: stripmine; split; distribute; "
              "interchange",
       .composite = true,
       .options = {{.name = "b", .kind = OptKind::Expr,
                    .doc = "block size: integer or parameter name"},
                   {.name = "commutativity", .kind = OptKind::Flag,
                    .doc = "arm the §5.2 pattern matcher"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         auto r = detail::auto_block_impl(ctx, inv.expr("b"));
         ctx.stage_note = std::string(r.blocked ? "blocked" : "not blocked") +
                          ", " + std::to_string(r.splits) + " splits, " +
                          std::to_string(r.interchanges) + " interchanges";
       }});

  add({.name = "autoblockplus",
       .doc = "autoblock taken to the paper's \"+\" variants: register-"
              "block the derived update nests",
       .composite = true,
       .options = {{.name = "b", .kind = OptKind::Expr,
                    .doc = "block size: integer or parameter name"},
                   {.name = "u", .kind = OptKind::Int,
                    .doc = "unroll factor (default: pipeline default, 2)"},
                   {.name = "commutativity", .kind = OptKind::Flag,
                    .doc = "arm the §5.2 pattern matcher"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         auto r = detail::auto_block_plus_impl(
             ctx, inv.expr("b"), inv.int_or("u", ctx.default_unroll));
         ctx.stage_note = std::string(r.blocked ? "blocked" : "not blocked") +
                          ", " + std::to_string(ctx.scalar_groups) +
                          " scalar groups";
       }});

  add({.name = "registerblock",
       .doc = "unroll-and-jam the target loop (triangular where the shape "
              "demands) and scalar-replace the innermost loops",
       .composite = true,
       .options = {{.name = "u", .kind = OptKind::Int,
                    .doc = "unroll factor (default: pipeline default, 2)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         int groups = detail::step_register_block(
             ctx, ctx.target(), inv.int_or("u", ctx.default_unroll));
         ctx.stage_note = std::to_string(groups) + " scalar groups";
       }});

  add({.name = "optconv",
       .doc = "the §3.2 pipeline: split-trapezoid; normalize rhomboids; "
              "register-block each piece",
       .composite = true,
       .options = {{.name = "u", .kind = OptKind::Int,
                    .doc = "unroll factor (default 4)"}},
       .run = [](PipelineContext& ctx, const PassInvocation& inv) {
         auto r = detail::optimize_convolution_impl(ctx, inv.int_or("u", 4));
         ctx.stage_note = std::to_string(r.pieces.size()) + " pieces, " +
                          std::to_string(r.normalized) + " normalized, " +
                          std::to_string(r.jammed) + " jammed";
       }});

  add({.name = "optgivens",
       .doc = "the §5.4 pipeline: ifinspect(auto) then two interchanges "
              "to make the update loop outermost",
       .composite = true,
       .options = {},
       .run = [](PipelineContext& ctx, const PassInvocation&) {
         detail::optimize_givens_impl(ctx);
       }});
}

}  // namespace blk::pm
