#include "pm/runner.hpp"

#include <chrono>
#include <sstream>

#include "ir/error.hpp"
#include "pm/spec.hpp"

namespace blk::pm {

long stmt_count(const ir::StmtList& body) {
  long n = 0;
  ir::for_each_stmt(body, [&](const ir::Stmt&) { ++n; });
  return n;
}

RunReport run_pipeline(const Pipeline& pipe, PipelineContext& ctx) {
  using clock = std::chrono::steady_clock;
  analysis::ScopedAnalysisManager scope(ctx.am);
  if (pipe.uses_commutativity()) ctx.commutativity = true;

  RunReport report;
  auto run_start = clock::now();
  for (const PassInvocation& inv : pipe.passes) {
    const PassInfo* info = Registry::instance().lookup(inv.pass);
    if (!info) throw Error("pipeline: unknown pass '" + inv.pass + "'");

    PassStat stat;
    stat.invocation = inv.to_string();
    stat.stmts_before = stmt_count(ctx.prog.body);
    std::uint64_t hits0 = ctx.am.stats().hits();
    std::uint64_t misses0 = ctx.am.stats().misses();
    ctx.stage_skipped = false;
    ctx.stage_note.clear();

    auto t0 = clock::now();
    info->run(ctx, inv);
    auto t1 = clock::now();

    stat.seconds = std::chrono::duration<double>(t1 - t0).count();
    stat.stmts_after = stmt_count(ctx.prog.body);
    stat.analysis_hits = ctx.am.stats().hits() - hits0;
    stat.analysis_misses = ctx.am.stats().misses() - misses0;
    stat.skipped = ctx.stage_skipped;
    stat.note = ctx.stage_note;
    report.passes.push_back(std::move(stat));
  }
  report.total_seconds =
      std::chrono::duration<double>(clock::now() - run_start).count();
  report.analysis = ctx.am.stats();
  return report;
}

RunReport run_spec(ir::Program& p, std::string_view spec,
                   const analysis::Assumptions& hints) {
  Pipeline pipe = parse_pipeline(spec);
  PipelineContext ctx(p, hints);
  return run_pipeline(pipe, ctx);
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string report_json(const RunReport& report, std::string_view program,
                        std::string_view pipeline,
                        std::string_view native_json,
                        std::string_view tiered_json) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"program\": \"" << json_escape(program) << "\",\n";
  os << "  \"pipeline\": \"" << json_escape(pipeline) << "\",\n";
  os << "  \"total_seconds\": " << report.total_seconds << ",\n";
  os << "  \"analysis\": {\"hits\": " << report.analysis.hits()
     << ", \"misses\": " << report.analysis.misses()
     << ", \"invalidations\": " << report.analysis.invalidations
     << ", \"build_seconds\": " << report.analysis.build_seconds << "},\n";
  if (!native_json.empty())
    os << "  \"native\": " << native_json << ",\n";
  if (!tiered_json.empty())
    os << "  \"tiered\": " << tiered_json << ",\n";
  os << "  \"passes\": [\n";
  for (std::size_t i = 0; i < report.passes.size(); ++i) {
    const PassStat& p = report.passes[i];
    os << "    {\"pass\": \"" << json_escape(p.invocation) << "\""
       << ", \"seconds\": " << p.seconds
       << ", \"stmts_before\": " << p.stmts_before
       << ", \"stmts_after\": " << p.stmts_after
       << ", \"analysis_hits\": " << p.analysis_hits
       << ", \"analysis_misses\": " << p.analysis_misses
       << ", \"skipped\": " << (p.skipped ? "true" : "false");
    if (!p.note.empty()) os << ", \"note\": \"" << json_escape(p.note) << "\"";
    os << "}" << (i + 1 < report.passes.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace blk::pm
