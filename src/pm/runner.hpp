// Pipeline execution with per-pass observability.
//
// run_pipeline drives a parsed Pipeline over a PipelineContext with the
// context's AnalysisManager installed, recording for every stage its wall
// time, the statement-count IR delta, and the analysis-cache hit/miss
// delta.  report_json renders the result in the same spirit as the
// benchmark suite's --bench_json files.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pm/pass.hpp"

namespace blk::pm {

/// Observability record for one executed stage.
struct PassStat {
  std::string invocation;   ///< canonical spelling, e.g. "stripmine(b=BS)"
  double seconds = 0.0;
  long stmts_before = 0;    ///< IR statement count entering the stage
  long stmts_after = 0;
  std::uint64_t analysis_hits = 0;    ///< cache hits during the stage
  std::uint64_t analysis_misses = 0;
  bool skipped = false;     ///< the stage decided to no-op
  std::string note;         ///< stage-provided detail
};

/// Result of a pipeline run.
struct RunReport {
  std::vector<PassStat> passes;
  double total_seconds = 0.0;
  analysis::AnalysisManager::Stats analysis;  ///< final cache counters
};

/// Count every statement node under `body` (loops, ifs, assignments).
[[nodiscard]] long stmt_count(const ir::StmtList& body);

/// Execute `pipe` over `ctx`.  Installs ctx.am for the duration, arms
/// ctx.commutativity when any stage names it, and records per-stage
/// stats.  Throws blk::Error out of the failing stage (IR state is
/// whatever the stage left; use verify::VerifiedPipeline around the run
/// for transactional checking).
RunReport run_pipeline(const Pipeline& pipe, PipelineContext& ctx);

/// Parse `spec` and run it over a fresh context for `p`.  Convenience
/// entry for tests and tools.
RunReport run_spec(ir::Program& p, std::string_view spec,
                   const analysis::Assumptions& hints = {});

/// Render a run report as a JSON object (pretty-printed, stable key
/// order) — the payload blk-opt writes for --bench_json.  `native_json`
/// and `tiered_json`, when non-empty, are spliced in verbatim under the
/// "native" / "tiered" keys (the caller passes native::stats_json() /
/// interp::tiered_stats_json(); pm itself stays independent of both
/// backends).
[[nodiscard]] std::string report_json(const RunReport& report,
                                      std::string_view program,
                                      std::string_view pipeline,
                                      std::string_view native_json = {},
                                      std::string_view tiered_json = {});

}  // namespace blk::pm
