#include "pm/spec.hpp"

#include <cctype>
#include <string>

#include "ir/error.hpp"
#include "ir/iexpr.hpp"

namespace blk::pm {

namespace {

/// One lexical token of a pipeline spec, with its source offset so error
/// messages can point at it.
struct Token {
  enum class Kind : std::uint8_t { Name, Int, Punct, End } kind = Kind::End;
  std::string text;
  long int_value = 0;
  std::size_t offset = 0;

  [[nodiscard]] std::string describe() const {
    switch (kind) {
      case Kind::Name:
        return "'" + text + "'";
      case Kind::Int:
        return "'" + std::to_string(int_value) + "'";
      case Kind::Punct:
        return "'" + text + "'";
      case Kind::End:
        return "end of spec";
    }
    return "?";
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
    tok_ = Token{};
    tok_.offset = pos_;
    if (pos_ >= src_.size()) {
      tok_.kind = Token::Kind::End;
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = pos_;
      while (j < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[j])) ||
              src_[j] == '_' || src_[j] == '-'))
        ++j;
      // A '-' is part of a name only when followed by a letter (so
      // "simplify-bounds" lexes whole but "b-1" would not arise: values
      // are INT or NAME, never arithmetic).
      tok_.kind = Token::Kind::Name;
      tok_.text = std::string(src_.substr(pos_, j - pos_));
      pos_ = j;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      std::size_t j = pos_ + 1;
      while (j < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[j])))
        ++j;
      tok_.kind = Token::Kind::Int;
      tok_.text = std::string(src_.substr(pos_, j - pos_));
      tok_.int_value = std::stol(tok_.text);
      pos_ = j;
      return;
    }
    tok_.kind = Token::Kind::Punct;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token tok_;
};

[[noreturn]] void fail(const std::string& msg, const Token& at) {
  throw Error("pipeline spec: " + msg + " at offset " +
              std::to_string(at.offset));
}

/// Check one parsed option value against its declared kind.
void check_option(const PassInfo& pass, const std::string& opt,
                  const OptionValue& value, const Token& at) {
  const OptionSpec* spec = pass.option(opt);
  if (!spec)
    fail("pass '" + pass.name + "' has no option '" + opt + "'", at);
  switch (spec->kind) {
    case OptKind::Int:
      if (value.kind != OptionValue::Kind::Int)
        fail("option '" + opt + "' of pass '" + pass.name +
                 "' expects an integer, got " +
                 (value.kind == OptionValue::Kind::Flag
                      ? "no value"
                      : "name '" + value.name + "'"),
             at);
      break;
    case OptKind::Expr:
      if (value.kind == OptionValue::Kind::Flag)
        fail("option '" + opt + "' of pass '" + pass.name +
                 "' expects an integer or parameter name, got no value",
             at);
      break;
    case OptKind::Str:
      if (value.kind != OptionValue::Kind::Name)
        fail("option '" + opt + "' of pass '" + pass.name +
                 "' expects a name, got " +
                 (value.kind == OptionValue::Kind::Flag
                      ? "no value"
                      : "integer '" + std::to_string(value.int_value) + "'"),
             at);
      break;
    case OptKind::Flag:
      if (value.kind != OptionValue::Kind::Flag)
        fail("option '" + opt + "' of pass '" + pass.name +
                 "' is a flag and takes no value",
             at);
      break;
  }
}

PassInvocation parse_stage(Lexer& lex) {
  Token name = lex.take();
  if (name.kind != Token::Kind::Name)
    fail("expected a pass name, got " + name.describe(), name);
  const PassInfo* info = Registry::instance().lookup(name.text);
  if (!info) fail("unknown pass '" + name.text + "'", name);

  PassInvocation inv;
  inv.pass = name.text;
  if (lex.peek().kind == Token::Kind::Punct && lex.peek().text == "(") {
    lex.take();
    bool first = true;
    while (!(lex.peek().kind == Token::Kind::Punct &&
             lex.peek().text == ")")) {
      if (!first) {
        Token comma = lex.take();
        if (comma.kind != Token::Kind::Punct || comma.text != ",")
          fail("expected ',' or ')' in options of '" + inv.pass +
                   "', got " + comma.describe(),
               comma);
      }
      first = false;
      Token opt = lex.take();
      if (opt.kind != Token::Kind::Name)
        fail("expected an option name in '" + inv.pass + "', got " +
                 opt.describe(),
             opt);
      OptionValue value;  // defaults to Flag
      if (lex.peek().kind == Token::Kind::Punct && lex.peek().text == "=") {
        lex.take();
        Token val = lex.take();
        if (val.kind == Token::Kind::Int) {
          value.kind = OptionValue::Kind::Int;
          value.int_value = val.int_value;
        } else if (val.kind == Token::Kind::Name) {
          value.kind = OptionValue::Kind::Name;
          value.name = val.text;
        } else {
          fail("expected a value after '" + opt.text + "=', got " +
                   val.describe(),
               val);
        }
      }
      check_option(*info, opt.text, value, opt);
      if (inv.find(opt.text))
        fail("duplicate option '" + opt.text + "' for pass '" + inv.pass +
                 "'",
             opt);
      inv.options.emplace_back(opt.text, std::move(value));
    }
    lex.take();  // ')'
  }
  for (const OptionSpec& spec : info->options)
    if (spec.required && !inv.find(spec.name))
      fail("pass '" + inv.pass + "' is missing required option '" +
               spec.name + "'",
           name);
  return inv;
}

}  // namespace

Pipeline parse_pipeline(std::string_view spec) {
  Lexer lex(spec);
  Pipeline pipe;
  if (lex.peek().kind == Token::Kind::End)
    throw Error("pipeline spec: empty spec");
  for (;;) {
    pipe.passes.push_back(parse_stage(lex));
    const Token& next = lex.peek();
    if (next.kind == Token::Kind::End) break;
    if (next.kind == Token::Kind::Punct && next.text == ";") {
      lex.take();
      if (lex.peek().kind == Token::Kind::End) break;  // trailing ';' ok
      continue;
    }
    fail("trailing garbage " + next.describe() + " after pass '" +
             pipe.passes.back().pass + "'",
         next);
  }
  return pipe;
}

namespace {

/// Parse a +/- chain of names and integer literals ("K+BS-1").
ir::IExprPtr parse_fact_term(const std::string& text) {
  ir::IExprPtr acc;
  std::size_t i = 0;
  int sign = 1;
  while (i < text.size()) {
    char c = text[i];
    if (c == '+') { sign = 1; ++i; continue; }
    if (c == '-') { sign = -1; ++i; continue; }
    ir::IExprPtr piece;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j])))
        ++j;
      piece = ir::iconst(std::stol(text.substr(i, j - i)));
      i = j;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_'))
        ++j;
      piece = ir::ivar(text.substr(i, j - i));
      i = j;
    } else {
      throw Error(std::string("fact: unexpected character '") + c + "'");
    }
    if (sign < 0) piece = ir::isub(ir::iconst(0), std::move(piece));
    acc = acc ? ir::iadd(std::move(acc), std::move(piece))
              : std::move(piece);
  }
  if (!acc) throw Error("fact: empty expression");
  return acc;
}

}  // namespace

void add_fact(analysis::Assumptions& ctx, std::string_view text) {
  std::string fact;
  for (char c : text)
    if (!std::isspace(static_cast<unsigned char>(c))) fact += c;
  for (const char* op : {"<=", ">="}) {
    auto pos = fact.find(op);
    if (pos == std::string::npos) continue;
    ir::IExprPtr lhs = parse_fact_term(fact.substr(0, pos));
    ir::IExprPtr rhs = parse_fact_term(fact.substr(pos + 2));
    if (op[0] == '<')
      ctx.assert_le(lhs, rhs);
    else
      ctx.assert_ge(lhs, rhs);
    return;
  }
  throw Error("fact: expected '<=' or '>=' in '" + std::string(text) + "'");
}

}  // namespace blk::pm
