// Pipeline-spec parsing: the textual pass-pipeline language of the
// pass manager, plus the shared `--assume` fact parser the CLI tools use.
//
// Grammar (whitespace-insensitive):
//
//   pipeline := stage (';' stage)* [';']
//   stage    := NAME [ '(' [arg (',' arg)*] ')' ]
//   arg      := NAME '=' value          (typed option)
//             | NAME                    (flag)
//   value    := INT | NAME
//   NAME     := [A-Za-z_][A-Za-z0-9_-]*
//   INT      := ['-'] digit+
//
// Example: "stripmine(b=32); split; distribute(commutativity); interchange"
//
// parse_pipeline validates against the pass Registry: unknown pass names,
// unknown options, wrongly-typed option values, missing required options
// and trailing garbage are all reported with the offending token named in
// the error message.  Pipeline::to_string() emits the canonical spelling,
// which re-parses to an equal pipeline.
#pragma once

#include <string_view>

#include "analysis/assume.hpp"
#include "pm/pass.hpp"

namespace blk::pm {

/// Parse and validate `spec` against the registry.  Throws blk::Error
/// with a message naming the offending token on any syntax or typing
/// problem.
[[nodiscard]] Pipeline parse_pipeline(std::string_view spec);

/// Parse a fact like "K+BS-1<=N-1" or "N>=1" (names, integer literals and
/// +/- chains around `<=` / `>=`) into `ctx`.  Shared by blk-verify's and
/// blk-opt's `--assume` flags.  Throws blk::Error on malformed input.
void add_fact(analysis::Assumptions& ctx, std::string_view text);

}  // namespace blk::pm
