#include "sa/certify.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/depgraph.hpp"
#include "analysis/refs.hpp"
#include "analysis/sections.hpp"
#include "ir/affine.hpp"
#include "ir/iexpr.hpp"
#include "ir/printer.hpp"

namespace blk::sa {

using namespace blk::ir;
using analysis::Assumptions;
using analysis::RefInfo;
using analysis::Section;

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Parallel: return "parallel";
    case Verdict::Reduction: return "reduction";
    case Verdict::Serial: return "serial";
  }
  return "?";
}

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Product: return "product";
    case ReduceOp::Min: return "min";
    case ReduceOp::Max: return "max";
  }
  return "?";
}

std::string LoopVerdict::to_string() const {
  std::ostringstream os;
  os << "DO " << var << ": " << sa::to_string(verdict);
  if (verdict == Verdict::Reduction)
    os << "(" << sa::to_string(op) << ", " << accumulator << ")";
  if (verdict == Verdict::Serial && !witness.empty())
    os << " [" << witness << "]";
  return os.str();
}

const LoopVerdict* CertifyResult::find(const std::string& var,
                                       int occurrence) const {
  int seen = 0;
  for (const auto& lv : loops)
    if (lv.var == var && seen++ == occurrence) return &lv;
  return nullptr;
}

std::size_t CertifyResult::count(Verdict v) const {
  return static_cast<std::size_t>(
      std::count_if(loops.begin(), loops.end(),
                    [v](const LoopVerdict& lv) { return lv.verdict == v; }));
}

std::string CertifyResult::to_string() const {
  std::ostringstream os;
  for (const auto& lv : loops) os << lv.to_string() << "\n";
  return os.str();
}

namespace {

/// A recognized accumulation target: scalar or loop-invariant array element.
struct Accumulator {
  std::string name;
  std::vector<IExprPtr> subs;        ///< empty for scalars
  ReduceOp op = ReduceOp::Sum;
  std::set<const Stmt*> owners;      ///< statements allowed to touch it
  bool poisoned = false;             ///< conflicting ops on the same target

  [[nodiscard]] bool is_scalar() const { return subs.empty(); }
  [[nodiscard]] std::string to_string() const {
    std::string out = name;
    if (!subs.empty()) {
      out += "(";
      for (std::size_t i = 0; i < subs.size(); ++i) {
        if (i) out += ",";
        out += ir::to_string(subs[i]);
      }
      out += ")";
    }
    return out;
  }
};

/// `e` is exactly a read of the accumulation target `lhs`.
[[nodiscard]] bool is_acc_read(const VExpr& e, const LValue& lhs) {
  if (lhs.is_array()) {
    if (e.kind != VKind::ArrayRef || e.name != lhs.name ||
        e.subs.size() != lhs.subs.size())
      return false;
    for (std::size_t i = 0; i < e.subs.size(); ++i)
      if (!e.subs[i] || !lhs.subs[i] ||
          !provably_equal(e.subs[i], lhs.subs[i]))
        return false;
    return true;
  }
  return e.kind == VKind::ScalarRef && e.name == lhs.name;
}

/// `e` contains a read of the accumulation target anywhere beneath it
/// (for scalars this includes index-position uses in subscripts).
[[nodiscard]] bool reads_acc(const VExpr& e, const LValue& lhs) {
  if (is_acc_read(e, lhs)) return true;
  if (!lhs.is_array()) {
    if (e.kind == VKind::ArrayRef) {
      for (const auto& s : e.subs)
        if (s && mentions(*s, lhs.name)) return true;
    }
    if (e.kind == VKind::IndexVal && e.index &&
        mentions(*e.index, lhs.name))
      return true;
  }
  if (e.lhs && reads_acc(*e.lhs, lhs)) return true;
  if (e.rhs && reads_acc(*e.rhs, lhs)) return true;
  return false;
}

/// Flatten the +/- spine of `e` into terms with signs.
void flatten_add(const VExprPtr& e, bool neg,
                 std::vector<std::pair<VExprPtr, bool>>& terms) {
  if (e->kind == VKind::Bin &&
      (e->bop == BinOp::Add || e->bop == BinOp::Sub)) {
    flatten_add(e->lhs, neg, terms);
    flatten_add(e->rhs, e->bop == BinOp::Sub ? !neg : neg, terms);
    return;
  }
  terms.emplace_back(e, neg);
}

/// Flatten the * spine of `e` into factors (stops at any non-Mul node).
void flatten_mul(const VExprPtr& e, std::vector<VExprPtr>& factors) {
  if (e->kind == VKind::Bin && e->bop == BinOp::Mul) {
    flatten_mul(e->lhs, factors);
    flatten_mul(e->rhs, factors);
    return;
  }
  factors.push_back(e);
}

/// Forms A/B: `ACC = ACC +- e` / `ACC = ACC * e` with the accumulator
/// appearing exactly once, positively, and nowhere inside `e`.
[[nodiscard]] std::optional<ReduceOp> match_accumulation(const Assign& a) {
  if (!a.rhs) return std::nullopt;
  std::vector<std::pair<VExprPtr, bool>> terms;
  flatten_add(a.rhs, /*neg=*/false, terms);
  if (terms.size() > 1) {
    int acc_terms = 0;
    bool positive = false, stray = false;
    for (const auto& [t, neg] : terms) {
      if (is_acc_read(*t, a.lhs)) {
        ++acc_terms;
        positive = !neg;
      } else if (reads_acc(*t, a.lhs)) {
        stray = true;
      }
    }
    if (acc_terms == 1 && positive && !stray) return ReduceOp::Sum;
    return std::nullopt;
  }
  std::vector<VExprPtr> factors;
  flatten_mul(a.rhs, factors);
  if (factors.size() > 1) {
    int acc_factors = 0;
    bool stray = false;
    for (const auto& f : factors) {
      if (is_acc_read(*f, a.lhs))
        ++acc_factors;
      else if (reads_acc(*f, a.lhs))
        stray = true;
    }
    if (acc_factors == 1 && !stray) return ReduceOp::Product;
  }
  return std::nullopt;
}

/// `e` mentions scalar `name` (as a value read or in index position).
[[nodiscard]] bool vexpr_mentions_scalar(const VExpr& e,
                                         const std::string& name) {
  switch (e.kind) {
    case VKind::Const:
      return false;
    case VKind::ScalarRef:
      return e.name == name;
    case VKind::IndexVal:
      return e.index && mentions(*e.index, name);
    case VKind::ArrayRef:
      for (const auto& s : e.subs)
        if (s && mentions(*s, name)) return true;
      return false;
    case VKind::Bin:
      return (e.lhs && vexpr_mentions_scalar(*e.lhs, name)) ||
             (e.rhs && vexpr_mentions_scalar(*e.rhs, name));
    case VKind::Un:
      return e.lhs && vexpr_mentions_scalar(*e.lhs, name);
  }
  return false;
}

/// Form C: a MIN/MAX (or arg-min/arg-max) update,
///
///   IF (cand .REL. current) ACC = new          e.g.
///   IF (X(I) .LT. XMIN) XMIN = X(I)            min value
///   IF (ABS(A(I,K)) .GT. ABS(A(IMAX,K))) IMAX = I     pivot search
///
/// recognized by substitution: replacing the accumulator in the "current"
/// side of the condition with the assigned value must reproduce the
/// candidate side exactly — that one rule covers plain comparisons, unary
/// chains (ABS, -, SQRT) and the arg-form where ACC is a subscript.
[[nodiscard]] std::optional<ReduceOp> match_minmax(const If& f) {
  if (!f.else_body.empty() || f.then_body.size() != 1 || !f.then_body[0] ||
      f.then_body[0]->kind() != SKind::Assign)
    return std::nullopt;
  const Assign& a = f.then_body[0]->as_assign();
  if (a.lhs.is_array() || !a.rhs) return std::nullopt;
  const std::string& acc = a.lhs.name;
  if (!f.cond.lhs || !f.cond.rhs) return std::nullopt;

  // Candidate index value for the arg-form (IMAX = I).
  IExprPtr cand_index;
  if (a.rhs->kind == VKind::IndexVal && a.rhs->index)
    cand_index = a.rhs->index;
  else if (a.rhs->kind == VKind::ScalarRef)
    cand_index = ivar(a.rhs->name);

  for (bool acc_on_rhs : {true, false}) {
    const VExprPtr& acc_side = acc_on_rhs ? f.cond.rhs : f.cond.lhs;
    const VExprPtr& cand_side = acc_on_rhs ? f.cond.lhs : f.cond.rhs;
    if (!vexpr_mentions_scalar(*acc_side, acc)) continue;
    if (vexpr_mentions_scalar(*cand_side, acc)) continue;
    VExprPtr replaced = substitute_scalar(acc_side, acc, a.rhs);
    if (cand_index) replaced = substitute_index(replaced, acc, cand_index);
    if (!same_vexpr(*replaced, *cand_side)) continue;
    // Normalize to "cand REL current": the update keeps the winner, so
    // cand > current => running maximum, cand < current => minimum.
    CmpOp rel = f.cond.op;
    if (!acc_on_rhs) {  // condition was "current REL cand": flip
      switch (rel) {
        case CmpOp::LT: rel = CmpOp::GT; break;
        case CmpOp::LE: rel = CmpOp::GE; break;
        case CmpOp::GT: rel = CmpOp::LT; break;
        case CmpOp::GE: rel = CmpOp::LE; break;
        default: break;
      }
    }
    if (rel == CmpOp::GT || rel == CmpOp::GE) return ReduceOp::Max;
    if (rel == CmpOp::LT || rel == CmpOp::LE) return ReduceOp::Min;
  }
  return std::nullopt;
}

/// All statements in the subtree rooted at `s` (inclusive).
void subtree_stmts(const Stmt& s, std::set<const Stmt*>& out) {
  out.insert(&s);
  auto walk_list = [&out](const StmtList& body) {
    for (const auto& c : body)
      if (c) subtree_stmts(*c, out);
  };
  if (s.kind() == SKind::Loop) {
    walk_list(s.as_loop().body);
  } else if (s.kind() == SKind::If) {
    walk_list(s.as_if().then_body);
    walk_list(s.as_if().else_body);
  }
}

/// Recognize every accumulator in `l.body` (any nesting depth) whose target
/// is invariant in `l.var`, then reject any whose name is touched by a
/// statement outside its own accumulation set (the mid-body re-read guard).
[[nodiscard]] std::vector<Accumulator> recognize_reductions(Loop& l) {
  std::map<std::string, Accumulator> by_key;

  auto add = [&by_key](const LValue& lhs, ReduceOp op,
                       std::set<const Stmt*> owners) {
    Accumulator acc;
    acc.name = lhs.name;
    acc.subs = lhs.subs;
    acc.op = op;
    acc.owners = std::move(owners);
    std::string key = acc.to_string();
    auto [it, fresh] = by_key.emplace(std::move(key), acc);
    if (fresh) return;
    if (it->second.op != op) it->second.poisoned = true;
    it->second.owners.insert(acc.owners.begin(), acc.owners.end());
  };

  std::function<void(StmtList&)> scan = [&](StmtList& body) {
    for (auto& s : body) {
      if (!s) continue;
      switch (s->kind()) {
        case SKind::Assign: {
          Assign& a = s->as_assign();
          bool invariant = true;
          for (const auto& sub : a.lhs.subs)
            if (!sub || mentions(*sub, l.var)) invariant = false;
          if (invariant)
            if (auto op = match_accumulation(a)) add(a.lhs, *op, {&a});
          break;
        }
        case SKind::Loop:
          scan(s->as_loop().body);
          break;
        case SKind::If: {
          If& f = s->as_if();
          if (auto op = match_minmax(f)) {
            add(f.then_body[0]->as_assign().lhs, *op,
                {&f, f.then_body[0].get()});
          } else {
            scan(f.then_body);
            scan(f.else_body);
          }
          break;
        }
      }
    }
  };
  scan(l.body);

  // Mid-body stray references kill a scalar accumulator: every touch of
  // its name inside the loop must come from its own accumulation set.
  std::vector<RefInfo> refs = analysis::collect_refs(l.body);
  std::vector<Accumulator> out;
  for (auto& [key, acc] : by_key) {
    if (acc.poisoned) continue;
    if (acc.is_scalar()) {
      bool stray = false;
      for (const auto& r : refs)
        if (r.array == acc.name && !acc.owners.count(r.owner)) stray = true;
      if (stray) continue;
    }
    out.push_back(acc);
  }
  return out;
}

/// One endpoint of a dependence refers to the accumulator's location and
/// comes from its accumulation statements.
[[nodiscard]] bool endpoint_matches(const RefInfo& r, const Accumulator& acc) {
  if (r.array != acc.name) return false;
  if (!acc.owners.count(r.owner)) return false;
  if (r.subs.size() != acc.subs.size()) return false;
  for (std::size_t i = 0; i < r.subs.size(); ++i)
    if (!r.subs[i] || !acc.subs[i] ||
        !provably_equal(r.subs[i], acc.subs[i]))
      return false;
  return true;
}

struct Certifier {
  Program& p;
  const CertifyOptions& opt;
  CertifyResult result;
  std::vector<RefInfo> all_refs;

  std::vector<std::string> path;
  std::vector<Assumptions> ctxs;

  explicit Certifier(Program& prog, const CertifyOptions& o)
      : p(prog), opt(o) {
    ctxs.push_back(o.ctx ? *o.ctx : Assumptions{});
    all_refs = analysis::collect_refs(p.body);
  }

  [[nodiscard]] std::string path_str() const {
    std::string out;
    for (const auto& seg : path) {
      if (!out.empty()) out += " > ";
      out += seg;
    }
    return out;
  }

  /// Scalars written in `l` that privatization makes iteration-local:
  /// per-iteration def-before-use and no reference anywhere outside `l`.
  [[nodiscard]] std::set<std::string> ignorable_scalars(Loop& l) const {
    std::set<std::string> priv = analysis::privatizable_scalars(l.body);
    if (priv.empty()) return priv;
    std::set<const Stmt*> inside;
    subtree_stmts(l, inside);
    std::set<std::string> out;
    for (const auto& name : priv) {
      bool outside_use = false;
      for (const auto& r : all_refs)
        if (r.array == name && !inside.count(r.owner)) outside_use = true;
      if (!outside_use) out.insert(name);
    }
    return out;
  }

  void certify_loop(Loop& l, int depth) {
    LoopVerdict lv;
    lv.loop = &l;
    lv.var = l.var;
    lv.path = path_str();
    lv.depth = depth;
    analysis::DepGraph graph(p.body, l, &ctxs.back());
    std::vector<const analysis::Dependence*> carried;
    for (const auto& e : graph.edges())
      if (e.carried) carried.push_back(&e.dep);

    if (carried.empty()) {
      lv.verdict = Verdict::Parallel;
      result.loops.push_back(std::move(lv));
      return;
    }

    std::vector<Accumulator> accs = recognize_reductions(l);
    std::set<std::string> private_scalars = ignorable_scalars(l);

    std::set<std::string> used_accs;
    ReduceOp op = ReduceOp::Sum;
    const analysis::Dependence* unattributed = nullptr;
    for (const analysis::Dependence* dep : carried) {
      if (dep->src.is_scalar() && dep->dst.is_scalar() &&
          dep->src.array == dep->dst.array &&
          private_scalars.count(dep->src.array))
        continue;  // privatization removes this carried dependence
      const Accumulator* owner = nullptr;
      for (const auto& acc : accs)
        if (endpoint_matches(dep->src, acc) &&
            endpoint_matches(dep->dst, acc)) {
          owner = &acc;
          break;
        }
      if (!owner) {
        unattributed = dep;
        break;
      }
      if (used_accs.empty()) op = owner->op;
      used_accs.insert(owner->to_string());
    }

    if (unattributed) {
      lv.verdict = Verdict::Serial;
      lv.witness = unattributed->to_string() + " carried by DO " + l.var;
    } else if (!used_accs.empty()) {
      lv.verdict = Verdict::Reduction;
      lv.op = op;
      for (const auto& name : used_accs) {
        if (!lv.accumulator.empty()) lv.accumulator += ",";
        lv.accumulator += name;
      }
    } else {
      lv.verdict = Verdict::Parallel;  // carried deps were all privatizable
    }
    result.loops.push_back(std::move(lv));
  }

  void walk(StmtList& body, int depth) {
    for (auto& s : body) {
      if (!s) continue;
      switch (s->kind()) {
        case SKind::Assign:
          break;
        case SKind::Loop: {
          Loop& l = s->as_loop();
          path.push_back("DO " + l.var);
          certify_loop(l, depth);
          Assumptions inner = ctxs.back();
          if (l.lb && l.ub) inner.add_loop_range(l.var, l.lb, l.ub, l.step);
          ctxs.push_back(std::move(inner));
          walk(l.body, depth + 1);
          ctxs.pop_back();
          path.pop_back();
          break;
        }
        case SKind::If: {
          If& f = s->as_if();
          path.push_back("IF (" + ir::to_string(f.cond) + ")");
          walk(f.then_body, depth);
          walk(f.else_body, depth);
          path.pop_back();
          break;
        }
      }
    }
  }
};

}  // namespace

namespace {
CertifyMutator g_mutator = nullptr;
}  // namespace

void set_certify_mutator_for_testing(CertifyMutator m) { g_mutator = m; }

CertifyResult certify(Program& p, const CertifyOptions& opt) {
  Certifier c(p, opt);
  c.walk(p.body, 0);
  if (g_mutator) g_mutator(c.result);
  return std::move(c.result);
}

verify::Report verdict_report(const CertifyResult& result) {
  verify::Report rep;
  for (const auto& lv : result.loops) {
    std::string code = std::string("certify-") + to_string(lv.verdict);
    rep.add(verify::Severity::Note, std::move(code), lv.to_string(),
            lv.path);
  }
  return rep;
}

// ---- Independent write-write race re-check ---------------------------------

namespace {

/// Section one iteration of `l` writes through `ref`: loops strictly inside
/// `l` are expanded, then `l.var` is renamed to the fresh iteration symbol.
[[nodiscard]] Section iteration_section(const RefInfo& ref, const Loop* l,
                                        const std::string& iter) {
  auto it = std::find(ref.loops.begin(), ref.loops.end(), l);
  std::size_t pos = static_cast<std::size_t>(it - ref.loops.begin());
  std::span<ir::Loop* const> inner(ref.loops.data() + pos + 1,
                                   ref.loops.size() - pos - 1);
  Section s = analysis::section_of(ref, inner);
  for (auto& t : s.dims) {
    if (t.lb) t.lb = substitute(t.lb, l->var, ivar(iter));
    if (t.ub) t.ub = substitute(t.ub, l->var, ivar(iter));
  }
  return s;
}

/// Stride argument: in some dimension both sections are single points
/// `c*iter + r` with the same non-zero coefficient and identical remainder,
/// so two distinct iterations cannot produce the same subscript value.
[[nodiscard]] bool stride_disjoint(const Section& a, const Section& b) {
  if (a.dims.size() != b.dims.size()) return false;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const auto& t1 = a.dims[d];
    const auto& t2 = b.dims[d];
    if (!t1.lb || !t1.ub || !t2.lb || !t2.ub) continue;
    if (!provably_equal(t1.lb, t1.ub) || !provably_equal(t2.lb, t2.ub))
      continue;
    auto a1 = as_affine(t1.lb);
    auto a2 = as_affine(t2.lb);
    if (!a1 || !a2) continue;
    long c1 = a1->coef_of("__p1");
    long c2 = a2->coef_of("__p2");
    if (c1 == 0 || c1 != c2) continue;
    Affine r1 = *a1;
    Affine r2 = *a2;
    r1.coef.erase("__p1");
    r2.coef.erase("__p2");
    if (r1 == r2) return true;
  }
  return false;
}

/// Coupled-subscript argument, for diagonal patterns the rectangular
/// section abstraction cannot separate (e.g. A(I+K, -2*K): a collision
/// forces the inner K's equal, which then forces the I's equal).  Assume
/// the two iterations touch a common element, turn per-dimension equality
/// into affine equations, eliminate the inner-loop symbols by exact
/// cross-multiplication, and look for a remaining equation the iteration
/// separation cannot satisfy.  Rational elimination only ever *disproves*
/// integer solutions, so a contradiction here is a sound disjointness
/// proof even though loop ranges are ignored.
[[nodiscard]] bool coupled_disjoint(const RefInfo& a, const RefInfo& b,
                                    const Loop* l, const char* pa,
                                    const char* pb, long const_gap) {
  std::set<std::string> qvars;
  // Non-affine subtrees (MIN/MAX bounds folded into subscripts by
  // normalize/fuse, divisions, index arrays) are replaced by opaque
  // symbols shared across both sides, keyed by printed form: identical
  // terms denote identical values, so they cancel in the equations, and
  // distinct ones act as unknown parameters.  Relaxing a term to a free
  // symbol only enlarges the rational solution set, so disproofs stay
  // sound.
  std::map<std::string, std::string> opaque;
  auto opaquify = [&opaque](const IExprPtr& e, auto&& self) -> IExprPtr {
    switch (e->kind) {
      case ir::IKind::Const:
      case ir::IKind::Var:
        return e;
      case ir::IKind::Add:
        return iadd(self(e->lhs, self), self(e->rhs, self));
      case ir::IKind::Sub:
        return isub(self(e->lhs, self), self(e->rhs, self));
      case ir::IKind::Mul:
        if (e->lhs->kind == ir::IKind::Const)
          return imul(e->lhs, self(e->rhs, self));
        if (e->rhs->kind == ir::IKind::Const)
          return imul(self(e->lhs, self), e->rhs);
        break;
      default:
        break;
    }
    auto [it, ins] = opaque.emplace(
        ir::to_string(e), "__t" + std::to_string(opaque.size()));
    return ivar(it->second);
  };
  // Rename one side's loop symbols: the certified loop becomes its fresh
  // iteration symbol, loops strictly inside it become side-local symbols.
  // Bails (nullopt) on shadowed names, where renaming would conflate two
  // distinct iteration variables and the "proof" would be unsound.
  auto side = [&](const RefInfo& r, const char* p_name,
                  const char* q_suffix)
      -> std::optional<std::vector<std::optional<Affine>>> {
    auto it = std::find(r.loops.begin(), r.loops.end(), l);
    std::size_t pos = static_cast<std::size_t>(it - r.loops.begin());
    std::set<std::string> seen;
    std::vector<std::pair<std::string, std::string>> ren;
    ren.emplace_back(l->var, p_name);
    for (std::size_t k = pos + 1; k < r.loops.size(); ++k) {
      const std::string& v = r.loops[k]->var;
      if (!seen.insert(v).second) return std::nullopt;
      ren.emplace_back(v, v + q_suffix);
      qvars.insert(v + q_suffix);
    }
    std::vector<std::optional<Affine>> out;
    for (const auto& sub : r.subs) {
      IExprPtr e = sub;
      for (const auto& [o, n] : ren) e = substitute(e, o, ivar(n));
      e = opaquify(e, opaquify);
      out.push_back(as_affine(*e));
    }
    return out;
  };

  auto sa = side(a, pa, "__q1");
  auto sb = side(b, pb, "__q2");
  if (!sa || !sb) return false;

  std::vector<Affine> eqs;
  std::size_t rank = std::min(sa->size(), sb->size());
  for (std::size_t d = 0; d < rank; ++d)
    if ((*sa)[d] && (*sb)[d]) eqs.push_back(*(*sa)[d] - *(*sb)[d]);

  // Eliminate each side-local symbol: pick a pivot equation that uses it,
  // cross-multiply it out of the others, drop the pivot (the symbol is
  // otherwise free, so the pivot is always rationally satisfiable).
  for (const std::string& q : qvars) {
    std::size_t pivot = eqs.size();
    for (std::size_t i = 0; i < eqs.size(); ++i)
      if (eqs[i].coef_of(q) != 0) {
        pivot = i;
        break;
      }
    if (pivot == eqs.size()) continue;
    long pc = eqs[pivot].coef_of(q);
    for (std::size_t i = 0; i < eqs.size(); ++i) {
      if (i == pivot) continue;
      long c = eqs[i].coef_of(q);
      if (c != 0) eqs[i] = eqs[i] * pc - eqs[pivot] * c;
    }
    eqs.erase(eqs.begin() + static_cast<long>(pivot));
  }

  // Whatever remains must hold for a collision to exist.  The facts give
  // __p2 >= __p1 + gap with (p2 - p1) a multiple of the constant step.
  for (const Affine& e : eqs) {
    long k1 = 0, k2 = 0;
    bool other = false;
    for (const auto& [v, c] : e.coef) {
      if (c == 0) continue;
      if (v == "__p1")
        k1 = c;
      else if (v == "__p2")
        k2 = c;
      else
        other = true;  // parameter or enclosing loop: value unknown
    }
    if (other) continue;
    if (k1 == 0 && k2 == 0) {
      if (e.constant != 0) return true;  // 0 = c, c != 0: no collision
      continue;
    }
    if (k1 != -k2) continue;  // pins one iteration; collision possible
    // k1*(p1 - p2) + c = 0  =>  p2 - p1 = c / k1.
    if (e.constant % k1 != 0) return true;  // non-integer distance
    long d = e.constant / k1;
    if (d <= 0) return true;  // contradicts p2 >= p1 + gap
    if (const_gap > 0 && d % const_gap != 0)
      return true;  // not a multiple of the step separation
  }
  return false;
}

}  // namespace

verify::Report check_races(Program& p, const CertifyResult& result,
                           const Assumptions* ctx) {
  verify::Report rep;
  std::vector<RefInfo> all_refs = analysis::collect_refs(p.body);

  for (const auto& lv : result.loops) {
    if (lv.verdict != Verdict::Parallel) continue;
    Loop& l = *const_cast<Loop*>(lv.loop);

    std::vector<const RefInfo*> writes;
    std::set<std::string> scalar_writes;
    for (const auto& r : all_refs) {
      if (!r.is_write) continue;
      if (std::find(r.loops.begin(), r.loops.end(), &l) == r.loops.end())
        continue;
      if (r.is_scalar())
        scalar_writes.insert(r.array);
      else
        writes.push_back(&r);
    }

    // Scalars written by a parallel iteration must be provably private.
    std::set<const Stmt*> inside;
    subtree_stmts(l, inside);
    std::set<std::string> priv = analysis::privatizable_scalars(l.body);
    for (const auto& name : scalar_writes) {
      bool ok = priv.count(name) > 0;
      if (ok)
        for (const auto& r : all_refs)
          if (r.array == name && !inside.count(r.owner)) ok = false;
      if (!ok)
        rep.add(verify::Severity::Error, "parallel-cert-race",
                "scalar " + name + " written inside DO " + lv.var +
                    " (certified parallel) is not provably private",
                lv.path);
    }

    // Two distinct iterations __p1 < __p2 of l, with every enclosing loop
    // range and the step-separation facts (and small multiples of it, so
    // the two-fact proof search can scale the separation).
    Assumptions base = ctx ? *ctx : Assumptions{};
    for (ir::Loop* outer : enclosing_loops(p.body, l))
      base.add_loop_range(*outer);
    if (!l.lb || !l.ub) continue;  // malformed; lint reports it
    IExprPtr step = l.step ? l.step : iconst(1);
    bool descending = step->kind == IKind::Const && step->value < 0;
    const IExprPtr& lo = descending ? l.ub : l.lb;
    const IExprPtr& hi = descending ? l.lb : l.ub;
    base.add_loop_range("__p1", lo, hi);
    base.add_loop_range("__p2", lo, hi);
    IExprPtr gap = descending ? isub(iconst(0), step) : step;
    long const_gap =
        step->kind == IKind::Const ? std::labs(step->value) : 0;
    if (auto gap_aff = as_affine(gap)) {
      for (long k = 1; k <= 8; ++k) {
        Affine sep = Affine::variable("__p2", k) -
                     Affine::variable("__p1", k) - *gap_aff * k;
        base.assert_nonneg(sep);
      }
    } else {
      base.assert_ge(ivar("__p2"), iadd(ivar("__p1"), gap));
    }

    for (std::size_t i = 0; i < writes.size(); ++i) {
      for (std::size_t j = i; j < writes.size(); ++j) {
        if (writes[i]->array != writes[j]->array) continue;
        // Both interleavings: statement i in the earlier iteration and in
        // the later one (for i == j they coincide).
        for (int dir = 0; dir < (i == j ? 1 : 2); ++dir) {
          Section s1 = iteration_section(*writes[i], &l,
                                         dir == 0 ? "__p1" : "__p2");
          Section s2 = iteration_section(*writes[j], &l,
                                         dir == 0 ? "__p2" : "__p1");
          if (analysis::disjoint(s1, s2, base) == true) continue;
          if (stride_disjoint(s1, s2) || stride_disjoint(s2, s1)) continue;
          if (coupled_disjoint(*writes[i], *writes[j], &l,
                               dir == 0 ? "__p1" : "__p2",
                               dir == 0 ? "__p2" : "__p1", const_gap))
            continue;
          rep.add(verify::Severity::Error, "parallel-cert-race",
                  "cannot prove writes " + s1.to_string() + " and " +
                      s2.to_string() +
                      " disjoint for two iterations of DO " + lv.var +
                      " (certified parallel)",
                  lv.path);
        }
      }
    }
  }
  return rep;
}

}  // namespace blk::sa
