// Parallel-safety certification: label every loop level of a program
//
//     parallel               no loop-carried dependence survives
//     reduction(op, var)     every carried dependence is an accumulation
//                            into a loop-invariant location through a
//                            recognized sum / product / min / max pattern
//     serial(witness)        some carried dependence resists both proofs
//
// — the §5.2-style legality reasoning of the source paper turned into a
// standing analysis.  Verdicts come from `analysis::DepGraph` carried-edge
// queries plus a reduction recognizer that handles scalar and array-element
// accumulators (including the scalar-replaced forms scalar replacement
// introduces, and the pivot search's arg-max IF pattern).
//
// `check_races` is the independent safety net: for every loop certified
// `parallel` it re-derives, from regular-section overlap alone (no
// dependence tester involved), that two distinct iterations never write the
// same location — so a wrong certification surfaces as a hard error.
#pragma once

#include <string>
#include <vector>

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "verify/diagnostic.hpp"

namespace blk::sa {

enum class Verdict : std::uint8_t { Parallel, Reduction, Serial };
enum class ReduceOp : std::uint8_t { Sum, Product, Min, Max };

[[nodiscard]] const char* to_string(Verdict v);
[[nodiscard]] const char* to_string(ReduceOp op);

/// Certification of one loop level.
struct LoopVerdict {
  const ir::Loop* loop = nullptr;
  std::string var;    ///< induction variable
  std::string path;   ///< statement path ("DO K > DO I")
  int depth = 0;      ///< 0 = outermost
  Verdict verdict = Verdict::Serial;
  ReduceOp op = ReduceOp::Sum;    ///< valid when verdict == Reduction
  std::string accumulator;        ///< e.g. "S" or "A(I,J)" (Reduction)
  std::string witness;            ///< carried edge that forces Serial

  [[nodiscard]] std::string to_string() const;
};

struct CertifyOptions {
  const analysis::Assumptions* ctx = nullptr;  ///< extra symbolic facts
};

struct CertifyResult {
  std::vector<LoopVerdict> loops;  ///< pre-order over the program

  /// n-th verdict (0-based) among loops with this induction variable.
  [[nodiscard]] const LoopVerdict* find(const std::string& var,
                                        int occurrence = 0) const;
  [[nodiscard]] std::size_t count(Verdict v) const;
  [[nodiscard]] std::string to_string() const;
};

/// Certify every loop of `p`.
[[nodiscard]] CertifyResult certify(ir::Program& p,
                                    const CertifyOptions& opt = {});

/// Test hook: a mutator applied to every certify() result before it is
/// returned.  Tests sabotage verdicts (e.g. flip serial(witness) to
/// parallel) to prove the independent race re-check catches a lying
/// certifier.  Pass nullptr to clear.  Not thread-safe; flip only at
/// test setup.
using CertifyMutator = void (*)(CertifyResult&);
void set_certify_mutator_for_testing(CertifyMutator m);

/// Render verdicts as Note diagnostics (codes certify-parallel /
/// certify-reduction / certify-serial), one per loop.
[[nodiscard]] verify::Report verdict_report(const CertifyResult& result);

/// Independently re-verify every `parallel` verdict by proving, from
/// section overlap under `ctx`, that distinct iterations write disjoint
/// locations (and that written scalars are privatizable).  Disagreement is
/// an Error with code "parallel-cert-race".
[[nodiscard]] verify::Report check_races(ir::Program& p,
                                         const CertifyResult& result,
                                         const analysis::Assumptions* ctx =
                                             nullptr);

}  // namespace blk::sa
