#include "sa/checks.hpp"

#include <set>
#include <vector>

#include "analysis/refs.hpp"
#include "analysis/sections.hpp"
#include "sa/dataflow.hpp"

namespace blk::sa {

using analysis::Assumptions;

namespace {

/// Dead stores, one statement list at a time.  A store becomes "pending"
/// when its subtree writes it unconditionally and its own reads provably
/// miss it; a later sibling kills it (dead store) by writing a covering
/// region unconditionally, or consumes it (live) by any read that is not
/// provably disjoint.  Pending stores surviving to the end of the list are
/// simply dropped — something after the sequence may still read them.
class DeadStoreChecker final : public Checker {
 public:
  explicit DeadStoreChecker(verify::Report& rep) : rep_(rep) {}

  void on_sequence(std::span<const StmtFacts> children,
                   const Assumptions& ctx) override {
    std::vector<const Region*> pending;
    for (const auto& child : children) {
      // Reads first (Fortran evaluates the RHS before storing): any read
      // that may touch a pending region keeps it alive.
      std::erase_if(pending, [&](const Region* store) {
        for (const auto& rd : child.reads)
          if (rd.array == store->array &&
              (!rd.analyzable ||
               analysis::disjoint(rd.section, store->section, ctx) != true))
            return true;
        return false;
      });
      // Kills: an unconditional covering write makes the pending store
      // dead — its value was never observable.
      if (child.must_execute) {
        std::erase_if(pending, [&](const Region* store) {
          for (const auto& w : child.writes)
            if (!w.guarded && w.analyzable && w.array == store->array &&
                analysis::subset(store->section, w.section, ctx) == true) {
              rep_.add(verify::Severity::Warning, "dead-store",
                       "store to " + store->section.to_string() +
                           " is overwritten by " + w.path +
                           " before any read",
                       store->path);
              return true;
            }
          return false;
        });
      }
      // The child's own unconditional stores become candidates, provided
      // the child itself provably never reads them back (unknown internal
      // ordering otherwise).
      for (const auto& w : child.writes) {
        if (!w.analyzable || w.guarded || !child.must_execute) continue;
        bool self_read = false;
        for (const auto& rd : child.reads)
          if (rd.array == w.array &&
              (!rd.analyzable ||
               analysis::disjoint(rd.section, w.section, ctx) != true))
            self_read = true;
        if (!self_read) pending.push_back(&w);
      }
    }
  }

 private:
  verify::Report& rep_;
};

/// Uninitialized region reads.  Warn only when every part of the proof
/// succeeds: the read's fully-expanded region is provably disjoint from
/// every write region that may execute before it, the array *is* written
/// somewhere in the program (else it is an external input), and no write
/// to it defeats section analysis.
class UninitReadChecker final : public Checker {
 public:
  UninitReadChecker(ir::Program& p, verify::Report& rep) : rep_(rep) {
    for (const auto& r : analysis::collect_refs(p.body)) {
      if (!r.is_write || r.is_scalar()) continue;
      written_.insert(r.array);
      for (const auto& s : r.subs)
        if (!s) unanalyzable_.insert(r.array);
    }
  }

  void on_read(const Region& r, const RegionState& state,
               const Assumptions& ctx) override {
    if (!r.analyzable) return;
    if (!written_.count(r.array) || unanalyzable_.count(r.array)) return;
    const RegionSet* writes = state.writes(r.array);
    if (writes && writes->may_overlap(r.section, ctx)) return;
    rep_.add(verify::Severity::Warning, "uninit-region-read",
             "read of " + r.section.to_string() +
                 " precedes every write of " + r.array +
                 "; the region is provably never initialized here",
             r.path);
  }

 private:
  verify::Report& rep_;
  std::set<std::string> written_;
  std::set<std::string> unanalyzable_;
};

}  // namespace

verify::Report check_dead_stores(ir::Program& p, const CheckOptions& opt) {
  verify::Report rep;
  DeadStoreChecker checker(rep);
  Checker* list[] = {&checker};
  run_dataflow(p, list, {.ctx = opt.ctx});
  rep.canonicalize();
  return rep;
}

verify::Report check_uninit_reads(ir::Program& p, const CheckOptions& opt) {
  verify::Report rep;
  UninitReadChecker checker(p, rep);
  Checker* list[] = {&checker};
  run_dataflow(p, list, {.ctx = opt.ctx});
  rep.canonicalize();
  return rep;
}

}  // namespace blk::sa
