// Dataflow-based checkers: dead/redundant array-region stores, and reads
// of array regions no preceding write can have initialized.  Both run on
// the sa dataflow engine and emit verify::Diagnostics; both are sound for
// warnings — an unprovable fact suppresses the finding, never invents one.
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "verify/diagnostic.hpp"

namespace blk::sa {

struct CheckOptions {
  const analysis::Assumptions* ctx = nullptr;
};

/// Stores whose region is fully overwritten by a later unconditional store
/// before any possibly-overlapping read (code "dead-store", Warning).
[[nodiscard]] verify::Report check_dead_stores(ir::Program& p,
                                               const CheckOptions& opt = {});

/// Array-region reads provably disjoint from every region written before
/// them, on arrays the program does write elsewhere — the regular-section
/// generalization of the scalar use-before-def check (code
/// "uninit-region-read", Warning).
[[nodiscard]] verify::Report check_uninit_reads(ir::Program& p,
                                                const CheckOptions& opt = {});

}  // namespace blk::sa
