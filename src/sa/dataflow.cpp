#include "sa/dataflow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/refs.hpp"
#include "ir/iexpr.hpp"
#include "ir/printer.hpp"

namespace blk::sa {

using namespace blk::ir;
using analysis::Assumptions;
using analysis::Section;
using analysis::Triplet;

// ---- RegionSet / RegionState -----------------------------------------------

bool RegionSet::add(const Region& r) {
  if (!r.analyzable) {
    if (top_) return false;
    top_ = true;
    return true;
  }
  if (top_) return false;  // TOP absorbs everything
  const std::string key = r.section.to_string();
  for (const auto& s : sections_)
    if (s.to_string() == key) return false;
  sections_.push_back(r.section);
  return true;
}

bool RegionSet::covers(const Section& s, const Assumptions& ctx) const {
  if (top_) return false;  // unanalyzable: nothing is *provably* covered
  for (const auto& m : sections_)
    if (analysis::subset(s, m, ctx) == true) return true;
  return false;
}

bool RegionSet::may_overlap(const Section& s, const Assumptions& ctx) const {
  if (top_) return true;
  for (const auto& m : sections_)
    if (analysis::disjoint(s, m, ctx) != true) return true;
  return false;
}

bool RegionSet::join(const RegionSet& o) {
  bool changed = false;
  if (o.top_ && !top_) {
    top_ = true;
    sections_.clear();
    return true;
  }
  if (top_) return false;
  for (const auto& s : o.sections_) {
    Region r;
    r.section = s;
    r.analyzable = true;
    changed |= add(r);
  }
  return changed;
}

bool RegionState::add_write(const Region& r) {
  return writes_[r.array].add(r);
}

const RegionSet* RegionState::writes(const std::string& array) const {
  auto it = writes_.find(array);
  return it == writes_.end() ? nullptr : &it->second;
}

bool RegionState::join(const RegionState& o) {
  bool changed = false;
  for (const auto& [array, set] : o.writes_)
    changed |= writes_[array].join(set);
  return changed;
}

// ---- Section expansion -----------------------------------------------------

Section expand_over(const Section& s, std::span<Loop* const> loops) {
  Section out;
  out.array = s.array;
  for (const auto& t : s.dims) {
    Triplet e;
    if (t.lb) e.lb = analysis::sweep_extreme(t.lb, loops, /*lower=*/true);
    if (t.ub) e.ub = analysis::sweep_extreme(t.ub, loops, /*lower=*/false);
    out.dims.push_back(std::move(e));
  }
  return out;
}

namespace {

[[nodiscard]] bool fully_bounded(const Section& s) {
  for (const auto& t : s.dims)
    if (!t.lb || !t.ub) return false;
  return !s.dims.empty();
}

[[nodiscard]] std::string describe_assign(const Assign& a) {
  std::ostringstream os;
  if (a.label != 0) os << a.label << ": ";
  os << a.lhs.name;
  if (a.lhs.is_array()) {
    os << "(";
    for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
      if (i) os << ",";
      os << ir::to_string(a.lhs.subs[i]);
    }
    os << ")";
  }
  os << "=...";
  return os.str();
}

[[nodiscard]] std::string join_path(const std::string& prefix,
                                    const std::string& seg) {
  return prefix.empty() ? seg : prefix + " > " + seg;
}

/// Region of one reference with the given loops expanded, the rest symbolic.
[[nodiscard]] Region region_of(const analysis::RefInfo& ref,
                               std::span<Loop* const> expand,
                               bool guarded, const std::string& path) {
  Region r;
  r.array = ref.array;
  r.is_write = ref.is_write;
  r.guarded = guarded;
  r.def = ref.stmt;
  r.path = path;
  if (ref.subs.empty()) {  // scalars: rank-0 region, never analyzable
    r.analyzable = false;
    r.section.array = ref.array;
    return r;
  }
  r.section = analysis::section_of(ref, expand);
  r.analyzable = fully_bounded(r.section);
  return r;
}

/// Walks one subtree accumulating reads/writes for summarize_stmt.
struct Summarizer {
  Program& p;
  std::span<Loop* const> enclosing;  ///< loops around the subtree root
  const Assumptions& outer_ctx;
  StmtFacts facts;

  Summarizer(Program& prog, std::span<Loop* const> enc,
             const Assumptions& ctx)
      : p(prog), enclosing(enc), outer_ctx(ctx) {}

  std::vector<Loop*> internal;  ///< loops opened inside the subtree
  std::vector<std::string> path;
  int if_depth = 0;
  bool maybe_empty_loop = false;  ///< some internal loop not provably >=1 trip

  [[nodiscard]] std::string path_str(const std::string& prefix) const {
    std::string out = prefix;
    for (const auto& seg : path) out = join_path(out, seg);
    return out;
  }

  /// All loops enclosing the current point: subtree-internal only, so
  /// sections stay symbolic in the enclosing loops' variables.
  void record(analysis::RefInfo ref, const std::string& prefix) {
    // section_of needs the full chain in ref.loops with `expand` a suffix;
    // build the chain as enclosing + internal.
    ref.loops.assign(enclosing.begin(), enclosing.end());
    ref.loops.insert(ref.loops.end(), internal.begin(), internal.end());
    bool guarded = if_depth > 0 || maybe_empty_loop;
    Region r = region_of(
        ref, std::span<Loop* const>(ref.loops).subspan(enclosing.size()),
        guarded, path_str(prefix));
    (ref.is_write ? facts.writes : facts.reads).push_back(std::move(r));
  }

  void scan_iexpr(const IExpr& e, const std::string& prefix) {
    if (e.kind == IKind::ArrayElem && p.has_array(e.name) &&
        p.array_decl(e.name).rank() == 1) {
      analysis::RefInfo ref;
      ref.array = e.name;
      ref.subs = {e.lhs};
      record(std::move(ref), prefix);
    }
    if (e.lhs) scan_iexpr(*e.lhs, prefix);
    if (e.rhs) scan_iexpr(*e.rhs, prefix);
  }

  void scan_vexpr(const VExpr& e, Assign* owner, const std::string& prefix) {
    switch (e.kind) {
      case VKind::ArrayRef: {
        analysis::RefInfo ref;
        ref.stmt = owner;
        ref.array = e.name;
        ref.subs = e.subs;
        record(std::move(ref), prefix);
        for (const auto& s : e.subs)
          if (s) scan_iexpr(*s, prefix);
        return;
      }
      case VKind::IndexVal:
        if (e.index) scan_iexpr(*e.index, prefix);
        return;
      default:
        if (e.lhs) scan_vexpr(*e.lhs, owner, prefix);
        if (e.rhs) scan_vexpr(*e.rhs, owner, prefix);
        return;
    }
  }

  void visit(Stmt& s, const std::string& prefix) {
    switch (s.kind()) {
      case SKind::Assign: {
        Assign& a = s.as_assign();
        path.push_back(describe_assign(a));
        if (a.rhs) scan_vexpr(*a.rhs, &a, prefix);
        analysis::RefInfo ref;
        ref.stmt = &a;
        ref.is_write = true;
        ref.array = a.lhs.name;
        ref.subs = a.lhs.subs;
        record(std::move(ref), prefix);
        for (const auto& sub : a.lhs.subs)
          if (sub) scan_iexpr(*sub, prefix);
        path.pop_back();
        break;
      }
      case SKind::Loop: {
        Loop& l = s.as_loop();
        path.push_back("DO " + l.var);
        if (l.lb) scan_iexpr(*l.lb, prefix);
        if (l.ub) scan_iexpr(*l.ub, prefix);

        // A section swept over this loop is fully touched only when the
        // loop provably executes; otherwise accesses count as guarded.
        bool saved = maybe_empty_loop;
        bool pos_step = !l.step || (l.step->kind == IKind::Const &&
                                    l.step->value > 0);
        if (!pos_step || !l.lb || !l.ub || !outer_ctx.ge(l.ub, l.lb))
          maybe_empty_loop = true;
        internal.push_back(&l);
        for (auto& c : l.body)
          if (c) visit(*c, prefix);
        internal.pop_back();
        maybe_empty_loop = saved;
        path.pop_back();
        break;
      }
      case SKind::If: {
        If& f = s.as_if();
        path.push_back("IF (" + ir::to_string(f.cond) + ")");
        if (f.cond.lhs) scan_vexpr(*f.cond.lhs, nullptr, prefix);
        if (f.cond.rhs) scan_vexpr(*f.cond.rhs, nullptr, prefix);
        ++if_depth;
        for (auto& c : f.then_body)
          if (c) visit(*c, prefix);
        for (auto& c : f.else_body)
          if (c) visit(*c, prefix);
        --if_depth;
        path.pop_back();
        break;
      }
    }
  }
};

}  // namespace

StmtFacts summarize_stmt(Program& p, Stmt& s,
                         std::span<Loop* const> enclosing,
                         const Assumptions& ctx,
                         const std::string& outer_path) {
  Summarizer sum(p, enclosing, ctx);
  sum.visit(s, outer_path);
  sum.facts.stmt = &s;
  sum.facts.path = outer_path;
  if (s.kind() == SKind::Assign)
    sum.facts.path = join_path(outer_path, describe_assign(s.as_assign()));
  else if (s.kind() == SKind::Loop)
    sum.facts.path = join_path(outer_path, "DO " + s.as_loop().var);
  else
    sum.facts.path =
        join_path(outer_path, "IF (" + ir::to_string(s.as_if().cond) + ")");
  sum.facts.must_execute = s.kind() != SKind::If;
  if (s.kind() == SKind::Loop) {
    const Loop& l = s.as_loop();
    bool pos_step =
        !l.step || (l.step->kind == IKind::Const && l.step->value > 0);
    sum.facts.must_execute =
        pos_step && l.lb && l.ub && ctx.ge(l.ub, l.lb);
  }
  return sum.facts;
}

// ---- Forward engine --------------------------------------------------------

namespace {

struct Engine {
  Program& p;
  std::span<Checker* const> checkers;
  const EngineOptions& opt;

  std::vector<Loop*> loops;
  std::vector<std::string> path;
  std::vector<Assumptions> ctxs;
  int if_depth = 0;
  RegionState state;
  bool dirty = false;  ///< state grew during the current pass

  Engine(Program& prog, std::span<Checker* const> ch,
         const EngineOptions& o)
      : p(prog), checkers(ch), opt(o) {
    ctxs.push_back(o.ctx ? *o.ctx : Assumptions{});
  }

  [[nodiscard]] std::string path_str() const {
    std::string out;
    for (const auto& seg : path) out = join_path(out, seg);
    return out;
  }

  /// Fully-expanded region of one access at the current point.
  [[nodiscard]] Region full_region(analysis::RefInfo ref) {
    ref.loops = loops;
    return region_of(ref, std::span<Loop* const>(ref.loops),
                     if_depth > 0, path_str());
  }

  void fire_read(const Region& r, bool reporting) {
    if (!reporting) return;
    for (Checker* c : checkers) c->on_read(r, state, ctxs.back());
  }

  void do_write(const Region& r, bool reporting) {
    if (reporting)
      for (Checker* c : checkers) c->on_write(r, state, ctxs.back());
    dirty |= state.add_write(r);
  }

  void scan_iexpr(const IExpr& e, bool reporting) {
    if (e.kind == IKind::ArrayElem && p.has_array(e.name) &&
        p.array_decl(e.name).rank() == 1) {
      analysis::RefInfo ref;
      ref.array = e.name;
      ref.subs = {e.lhs};
      fire_read(full_region(std::move(ref)), reporting);
    }
    if (e.lhs) scan_iexpr(*e.lhs, reporting);
    if (e.rhs) scan_iexpr(*e.rhs, reporting);
  }

  void scan_vexpr(const VExpr& e, Assign* owner, bool reporting) {
    switch (e.kind) {
      case VKind::ArrayRef: {
        analysis::RefInfo ref;
        ref.stmt = owner;
        ref.array = e.name;
        ref.subs = e.subs;
        fire_read(full_region(std::move(ref)), reporting);
        for (const auto& s : e.subs)
          if (s) scan_iexpr(*s, reporting);
        return;
      }
      case VKind::IndexVal:
        if (e.index) scan_iexpr(*e.index, reporting);
        return;
      default:
        if (e.lhs) scan_vexpr(*e.lhs, owner, reporting);
        if (e.rhs) scan_vexpr(*e.rhs, owner, reporting);
        return;
    }
  }

  void walk(StmtList& body, bool reporting) {
    if (reporting && !checkers.empty()) {
      std::vector<StmtFacts> facts;
      facts.reserve(body.size());
      for (auto& s : body)
        if (s)
          facts.push_back(summarize_stmt(
              p, *s, std::span<Loop* const>(loops), ctxs.back(),
              path_str()));
      for (Checker* c : checkers)
        c->on_sequence(std::span<const StmtFacts>(facts), ctxs.back());
    }
    for (auto& s : body) {
      if (s) visit(*s, reporting);
    }
  }

  void visit(Stmt& s, bool reporting) {
    switch (s.kind()) {
      case SKind::Assign: {
        Assign& a = s.as_assign();
        path.push_back(describe_assign(a));
        if (a.rhs) scan_vexpr(*a.rhs, &a, reporting);
        if (a.lhs.is_array()) {
          analysis::RefInfo ref;
          ref.stmt = &a;
          ref.is_write = true;
          ref.array = a.lhs.name;
          ref.subs = a.lhs.subs;
          for (const auto& sub : a.lhs.subs)
            if (sub) scan_iexpr(*sub, reporting);
          do_write(full_region(std::move(ref)), reporting);
        }
        path.pop_back();
        break;
      }
      case SKind::Loop: {
        Loop& l = s.as_loop();
        path.push_back("DO " + l.var);
        if (l.lb) scan_iexpr(*l.lb, reporting);
        if (l.ub) scan_iexpr(*l.ub, reporting);

        Assumptions inner = ctxs.back();
        if (l.lb && l.ub) inner.add_loop_range(l.var, l.lb, l.ub, l.step);
        ctxs.push_back(std::move(inner));
        loops.push_back(&l);
        // Fixpoint: silent passes make writes from earlier iterations
        // visible to reads at the top of the body.  Regions are expanded
        // over all enclosing loops, so the state is iteration-independent
        // and converges in at most two passes; the cap is a safety net.
        for (int i = 0; i < opt.max_iterations; ++i) {
          bool saved_dirty = dirty;
          dirty = false;
          walk(l.body, /*reporting=*/false);
          bool grew = dirty;
          dirty = saved_dirty || dirty;
          if (!grew) break;
        }
        walk(l.body, reporting);
        loops.pop_back();
        ctxs.pop_back();
        path.pop_back();
        break;
      }
      case SKind::If: {
        If& f = s.as_if();
        path.push_back("IF (" + ir::to_string(f.cond) + ")");
        if (f.cond.lhs) scan_vexpr(*f.cond.lhs, nullptr, reporting);
        if (f.cond.rhs) scan_vexpr(*f.cond.rhs, nullptr, reporting);
        // Writes in either branch *may* have happened after the IF, so both
        // branches accumulate into the same (may-write) state.
        ++if_depth;
        walk(f.then_body, reporting);
        walk(f.else_body, reporting);
        --if_depth;
        path.pop_back();
        break;
      }
    }
  }
};

}  // namespace

void run_dataflow(Program& p, std::span<Checker* const> checkers,
                  const EngineOptions& opt) {
  Engine eng(p, checkers, opt);
  eng.walk(p.body, /*reporting=*/true);
}

}  // namespace blk::sa
