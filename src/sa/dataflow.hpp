// Monotone dataflow framework over the structured IR.
//
// The lattice value is a set of bounded regular sections per array
// (analysis/sections): joins are set unions with provable-equality
// deduplication, and a per-array TOP absorbs everything once an access
// defeats section analysis.  Transfer functions are derived from the IR
// itself — every assignment "gens" the region its target sweeps, with
// enclosing loops expanded so stored facts are closed over iteration —
// and the runner iterates each loop body to a fixpoint (worklist-style:
// re-run while the state still grows, then a final reporting pass), which
// is how writes from *earlier iterations* become visible to reads at the
// top of a body.
//
// Checkers plug in as observers: they see every read/write event with the
// state at that program point, and every straight-line statement list with
// per-child gen/use region summaries (the kill/gen granularity dead-store
// detection needs).  The engine guarantees observers only fire on the
// final (stable) pass, so a checker never reports from a partial state.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/assume.hpp"
#include "analysis/sections.hpp"
#include "ir/program.hpp"

namespace blk::sa {

/// One array region with provenance: which access generated it, where.
struct Region {
  std::string array;
  analysis::Section section;  ///< triplet bounds may be null (unanalyzable)
  bool analyzable = false;    ///< every triplet bound is non-null
  bool is_write = false;
  bool guarded = false;       ///< under an IF inside the summarized subtree
  const ir::Assign* def = nullptr;  ///< producing assignment (reads: owner)
  std::string path;           ///< statement path of the access
};

/// Join-semilattice of regions touched on one array.  TOP (set by an
/// unanalyzable access) covers and overlaps everything.
class RegionSet {
 public:
  /// Add a region; returns true when the set actually grew (an already-
  /// present provably-equal section is deduplicated).
  bool add(const Region& r);

  /// Some member provably contains `s` (conservative: false = unproven).
  [[nodiscard]] bool covers(const analysis::Section& s,
                            const analysis::Assumptions& ctx) const;
  /// Not provably disjoint from every member.  TOP overlaps everything;
  /// an empty set overlaps nothing.
  [[nodiscard]] bool may_overlap(const analysis::Section& s,
                                 const analysis::Assumptions& ctx) const;

  [[nodiscard]] bool is_top() const { return top_; }
  [[nodiscard]] const std::vector<analysis::Section>& sections() const {
    return sections_;
  }

  /// Set-union join; returns true when this set changed.
  bool join(const RegionSet& o);

 private:
  std::vector<analysis::Section> sections_;
  bool top_ = false;
};

/// The dataflow state: written regions per array, fully expanded over the
/// loops enclosing the writing access.
class RegionState {
 public:
  /// Record a write region; returns true when the state grew.
  bool add_write(const Region& r);
  [[nodiscard]] const RegionSet* writes(const std::string& array) const;
  bool join(const RegionState& o);

 private:
  std::map<std::string, RegionSet> writes_;
};

/// Straight-line summary of one child of a statement list: the regions its
/// subtree reads and writes, expanded over the subtree's *internal* loops
/// only (enclosing loop variables stay symbolic — "same iteration" view).
struct StmtFacts {
  const ir::Stmt* stmt = nullptr;
  std::string path;           ///< path of the child statement itself
  bool must_execute = false;  ///< unguarded, and any internal loop bounds
                              ///< provably run at least once
  std::vector<Region> reads;
  std::vector<Region> writes;
};

/// Observer interface.  Hooks fire only on the engine's final stable pass
/// over each scope, with the fixpoint state.
class Checker {
 public:
  virtual ~Checker() = default;

  /// An array read at a program point.  `region` is fully expanded over
  /// all enclosing loops; `state` holds every write region that may have
  /// executed before this point (including earlier iterations).
  virtual void on_read(const Region& /*region*/, const RegionState& /*state*/,
                       const analysis::Assumptions& /*ctx*/) {}
  /// An array write at a program point (fully expanded, pre-insertion).
  virtual void on_write(const Region& /*region*/, const RegionState& /*state*/,
                        const analysis::Assumptions& /*ctx*/) {}
  /// One straight-line statement list with per-child region summaries.
  /// `ctx` carries the loop-range facts of every enclosing loop.
  virtual void on_sequence(std::span<const StmtFacts> /*children*/,
                           const analysis::Assumptions& /*ctx*/) {}
};

struct EngineOptions {
  const analysis::Assumptions* ctx = nullptr;  ///< extra symbolic facts
  int max_iterations = 4;  ///< fixpoint cap per loop body (safety net)
};

/// Run the forward engine over `p`, firing every checker's hooks.
void run_dataflow(ir::Program& p, std::span<Checker* const> checkers,
                  const EngineOptions& opt = {});

/// Compute the read/write summary of one statement subtree, expanding only
/// loops inside the subtree (exposed for tests and for the certifier's
/// race re-check).  `outer_path` prefixes the recorded access paths.
[[nodiscard]] StmtFacts summarize_stmt(ir::Program& p, ir::Stmt& s,
                                       std::span<ir::Loop* const> enclosing,
                                       const analysis::Assumptions& ctx,
                                       const std::string& outer_path = {});

/// Expand a section over additional enclosing loops (sweeping each bound
/// to its extreme).  Bounds whose shape defeats the sweep become null.
[[nodiscard]] analysis::Section expand_over(
    const analysis::Section& s, std::span<ir::Loop* const> loops);

}  // namespace blk::sa
