#include "sa/sa.hpp"

#include "sa/checks.hpp"
#include "verify/lint.hpp"

namespace blk::sa {

SaResult analyze(ir::Program& p, const SaOptions& opt) {
  SaResult out;
  out.report = verify::lint(p, {.ctx = opt.ctx, .pedantic = opt.pedantic});
  if (opt.certify) {
    out.verdicts = certify(p, {.ctx = opt.ctx});
    out.report.merge(verdict_report(out.verdicts));
    if (opt.races)
      out.report.merge(check_races(p, out.verdicts, opt.ctx));
  }
  out.report.merge(check_dead_stores(p, {.ctx = opt.ctx}));
  out.report.merge(check_uninit_reads(p, {.ctx = opt.ctx}));
  out.report.canonicalize();
  return out;
}

}  // namespace blk::sa
