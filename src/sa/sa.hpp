// Facade over the static-analysis subsystem: one call runs the structural
// lint, the parallel-safety certifier (with its independent race re-check),
// and the dataflow checkers, returning one canonical diagnostics report —
// what the blk-lint CLI and the pm `certify` pass build on.
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "sa/certify.hpp"
#include "verify/diagnostic.hpp"

namespace blk::sa {

struct SaOptions {
  const analysis::Assumptions* ctx = nullptr;
  bool pedantic = false;  ///< forwarded to verify::lint
  bool certify = true;    ///< include per-loop verdict notes
  bool races = true;      ///< re-check parallel verdicts independently
};

struct SaResult {
  verify::Report report;
  CertifyResult verdicts;  ///< empty when opt.certify is false
};

/// Run every analysis over `p`.  The report is canonicalized (sorted,
/// deduplicated) so output is diff-able.
[[nodiscard]] SaResult analyze(ir::Program& p, const SaOptions& opt = {});

}  // namespace blk::sa
