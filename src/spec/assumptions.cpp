#include "spec/assumptions.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "ir/affine.hpp"

namespace blk::spec {

namespace {

std::string term_text(const ir::GuardOptions::Term& t) {
  std::ostringstream os;
  if (t.param.empty()) {
    os << t.add;
  } else {
    os << t.param;
    if (t.add > 0) os << '+' << t.add;
    if (t.add < 0) os << t.add;
  }
  return os.str();
}

std::string divides_text(const ir::GuardOptions::Divides& d) {
  return term_text(d.dividend) + '%' + term_text(d.divisor);
}

long term_eval(const ir::GuardOptions::Term& t, const ir::Env& env) {
  return (t.param.empty() ? 0 : env.at(t.param)) + t.add;
}

/// Affine with at most one unit-coefficient variable -> guard Term.
bool term_of_affine(const ir::Affine& a, ir::GuardOptions::Term& out) {
  if (a.coef.empty()) {
    out = {"", a.constant};
    return true;
  }
  if (a.coef.size() == 1 && a.coef.begin()->second == 1) {
    out = {a.coef.begin()->first, a.constant};
    return true;
  }
  return false;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void AssumptionSet::pin(const std::string& param, long value) {
  pins_[param] = value;
}

void AssumptionSet::divides(ir::GuardOptions::Term dividend,
                            ir::GuardOptions::Term divisor) {
  ir::GuardOptions::Divides d{std::move(dividend), std::move(divisor)};
  const std::string text = divides_text(d);
  for (const auto& have : divides_)
    if (divides_text(have) == text) return;
  divides_.push_back(std::move(d));
}

void AssumptionSet::range(const std::string& param, long lo, long hi) {
  ranges_[param] = {lo, hi};
}

void AssumptionSet::no_alias(const std::string& a, const std::string& b) {
  auto pair = a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (std::find(noalias_.begin(), noalias_.end(), pair) == noalias_.end())
    noalias_.push_back(std::move(pair));
}

bool AssumptionSet::empty() const {
  return pins_.empty() && divides_.empty() && ranges_.empty() &&
         noalias_.empty();
}

std::string AssumptionSet::canonical() const {
  std::ostringstream os;
  os << "pin{";
  bool first = true;
  for (const auto& [p, v] : pins_) {
    if (!first) os << ',';
    first = false;
    os << p << '=' << v;
  }
  os << "};div{";
  std::vector<std::string> dv;
  dv.reserve(divides_.size());
  for (const auto& d : divides_) dv.push_back(divides_text(d));
  std::sort(dv.begin(), dv.end());
  for (std::size_t i = 0; i < dv.size(); ++i) os << (i ? "," : "") << dv[i];
  os << "};rng{";
  first = true;
  for (const auto& [p, lohi] : ranges_) {
    if (!first) os << ',';
    first = false;
    os << lohi.first << "<=" << p << "<=" << lohi.second;
  }
  os << "};na{";
  std::vector<std::string> na;
  na.reserve(noalias_.size());
  for (const auto& [a, b] : noalias_) na.push_back(a + '!' + b);
  std::sort(na.begin(), na.end());
  for (std::size_t i = 0; i < na.size(); ++i) os << (i ? "," : "") << na[i];
  os << '}';
  return os.str();
}

std::string AssumptionSet::hash() const {
  const std::string text = canonical();
  return hex64(fnv1a(text, 14695981039346656037ULL)) +
         hex64(fnv1a(text, 88172645463325252ULL));
}

ir::GuardOptions AssumptionSet::to_guards() const {
  ir::GuardOptions g;
  for (const auto& [p, v] : pins_) g.param_eq.push_back({p, v});
  // Canonical order, so equal sets emit byte-identical guard code.
  std::vector<ir::GuardOptions::Divides> dv = divides_;
  std::sort(dv.begin(), dv.end(),
            [](const ir::GuardOptions::Divides& a,
               const ir::GuardOptions::Divides& b) {
              return divides_text(a) < divides_text(b);
            });
  g.divides = std::move(dv);
  for (const auto& [p, lohi] : ranges_)
    g.ranges.push_back({p, lohi.first, lohi.second});
  std::vector<std::pair<std::string, std::string>> na = noalias_;
  std::sort(na.begin(), na.end());
  for (const auto& [a, b] : na) g.noalias.push_back({a, b});
  return g;
}

analysis::Assumptions AssumptionSet::to_assumptions() const {
  analysis::Assumptions ctx;
  for (const auto& [p, v] : pins_) {
    ctx.assert_ge(ir::ivar(p), ir::iconst(v));
    ctx.assert_le(ir::ivar(p), ir::iconst(v));
  }
  for (const auto& [p, lohi] : ranges_) {
    ctx.assert_ge(ir::ivar(p), ir::iconst(lohi.first));
    ctx.assert_le(ir::ivar(p), ir::iconst(lohi.second));
  }
  return ctx;
}

AssumptionSet AssumptionSet::from_binding(const ir::Program& p,
                                          const ir::Env& env) {
  AssumptionSet as;
  for (const auto& prm : p.params()) {
    auto it = env.find(prm);
    if (it != env.end()) as.pin(prm, it->second);
  }

  // Interpreter stores allocate one distinct buffer per declared array, so
  // a binding built from a Store always satisfies pairwise no-alias — and
  // a caller who rebinds two names to one buffer violates exactly this.
  std::vector<std::string> names;
  names.reserve(p.arrays().size());
  for (const auto& [name, decl] : p.arrays()) names.push_back(name);
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      as.no_alias(names[i], names[j]);

  // Divisibility: for every loop whose bounds and step are affine in the
  // pinned parameters alone (outer strip loops — inner loops mention loop
  // variables and are skipped), record "step divides trip extent" when
  // the binding satisfies it.  This is the fact that lets the specializer
  // erase the loop's remainder, so it must be guarded.
  ir::for_each_stmt(
      p.body, [&](const ir::Stmt& s) {
        if (s.kind() != ir::SKind::Loop) return;
        const ir::Loop& l = s.as_loop();
        auto lb = ir::as_affine(l.lb);
        auto ub = ir::as_affine(l.ub);
        auto st = ir::as_affine(l.step);
        if (!lb || !ub || !st) return;
        const ir::Affine ext = *ub - *lb + ir::Affine::constant_term(1);
        ir::GuardOptions::Term ext_t, step_t;
        if (!term_of_affine(ext, ext_t) || !term_of_affine(*st, step_t))
          return;
        auto bound = [&](const ir::GuardOptions::Term& t) {
          return t.param.empty() || as.pins().contains(t.param);
        };
        if (!bound(ext_t) || !bound(step_t)) return;
        const long step_v = term_eval(step_t, env);
        const long ext_v = term_eval(ext_t, env);
        if (step_v <= 1 || ext_v <= 0) return;
        if (ext_v % step_v != 0) return;
        if (step_t.param.empty() && ext_t.param.empty())
          return;  // constant fact, nothing to guard
        as.divides(ext_t, step_t);
      });
  return as;
}

}  // namespace blk::spec
