// First-class assumption sets.
//
// A specialized kernel is legal only relative to explicit facts about its
// binding — the Fractal Symbolic Analysis stance: an optimization proved
// under assumptions must carry those assumptions as checked objects, not
// comments.  `AssumptionSet` is that object: a value type holding the
// facts a specializer is allowed to exploit (parameter constants,
// divisibility such as (N-1) % KS == 0 so remainder loops vanish,
// parameter ranges, no-alias array pairs), with a canonical serialization
// whose hash keys the kernel cache and whose guard rendering the emitted
// kernel checks at entry.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/assume.hpp"
#include "ir/codegen.hpp"
#include "ir/program.hpp"

namespace blk::spec {

class AssumptionSet {
 public:
  /// Pin a parameter to a constant (last write wins).
  void pin(const std::string& param, long value);
  /// Record (dividend) % (divisor) == 0, divisor != 0.
  void divides(ir::GuardOptions::Term dividend,
               ir::GuardOptions::Term divisor);
  /// Record lo <= param <= hi (an extent bound).
  void range(const std::string& param, long lo, long hi);
  /// Record that two arrays' base pointers are distinct.
  void no_alias(const std::string& a, const std::string& b);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] const std::map<std::string, long>& pins() const {
    return pins_;
  }

  /// Stable one-line serialization: fact kinds in fixed order, each kind's
  /// entries sorted.  Equal sets serialize identically regardless of
  /// insertion order.
  [[nodiscard]] std::string canonical() const;
  /// 128-bit FNV-1a of canonical(), as 32 hex chars — the assumption-set
  /// component of the kernel-cache key.
  [[nodiscard]] std::string hash() const;

  /// Render as entry guards for ir::emit_c (EmitOptions::guards).
  [[nodiscard]] ir::GuardOptions to_guards() const;
  /// The affine facts (pins and ranges) as an analysis context; the
  /// divisibility and aliasing facts are not affine and do not appear.
  [[nodiscard]] analysis::Assumptions to_assumptions() const;

  /// Derive the full assumption set of one concrete binding of `p`:
  /// every bound parameter is pinned; every pair of distinct arrays is
  /// no-alias (interpreter stores always allocate distinct buffers); and
  /// for every loop over parameters whose stepped range divides evenly
  /// under `env`, the divisibility fact that makes its remainder vanish
  /// is recorded.  Parameters `p` does not declare are ignored.
  [[nodiscard]] static AssumptionSet from_binding(const ir::Program& p,
                                                  const ir::Env& env);

  [[nodiscard]] bool operator==(const AssumptionSet& o) const = default;

 private:
  std::map<std::string, long> pins_;
  std::vector<ir::GuardOptions::Divides> divides_;
  std::map<std::string, std::pair<long, long>> ranges_;
  std::vector<std::pair<std::string, std::string>> noalias_;
};

}  // namespace blk::spec
