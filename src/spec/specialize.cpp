#include "spec/specialize.hpp"

#include "analysis/assume.hpp"
#include "ir/affine.hpp"

namespace blk::spec {

namespace {

bool is_const(const ir::IExprPtr& e) {
  return e->kind == ir::IKind::Const;
}

/// Resolve MIN/MAX bounds top-down.  Constant headers contribute the loop
/// variable's *exact stepped* range: the last iterate of DO K = 1, 499, 50
/// is 451, and K <= 451 is what proves MIN(K+49, 499) = K+49 — the header
/// fact K <= 499 alone is too weak.  Symbolic headers fall back to the
/// ordinary (step-aware) header range.
void resolve_bounds(ir::StmtList& body, const analysis::Assumptions& ctx) {
  for (auto& s : body) {
    switch (s->kind()) {
      case ir::SKind::Assign:
        break;
      case ir::SKind::If: {
        ir::If& f = s->as_if();
        resolve_bounds(f.then_body, ctx);
        resolve_bounds(f.else_body, ctx);
        break;
      }
      case ir::SKind::Loop: {
        ir::Loop& l = s->as_loop();
        l.lb = ir::simplify(ctx.resolve_minmax(l.lb));
        l.ub = ir::simplify(ctx.resolve_minmax(l.ub));
        l.step = ir::simplify(ctx.resolve_minmax(l.step));
        analysis::Assumptions inner = ctx;
        if (is_const(l.lb) && is_const(l.ub) && is_const(l.step) &&
            l.step->value != 0) {
          const long lb = l.lb->value, ub = l.ub->value, st = l.step->value;
          if (st > 0 && ub >= lb) {
            const long last = lb + ((ub - lb) / st) * st;
            inner.assert_ge(ir::ivar(l.var), ir::iconst(lb));
            inner.assert_le(ir::ivar(l.var), ir::iconst(last));
          } else if (st < 0 && lb >= ub) {
            const long last = lb - ((lb - ub) / (-st)) * (-st);
            inner.assert_le(ir::ivar(l.var), ir::iconst(lb));
            inner.assert_ge(ir::ivar(l.var), ir::iconst(last));
          }
        } else {
          inner.add_loop_range(l.var, l.lb, l.ub, l.step);
        }
        resolve_bounds(l.body, inner);
        break;
      }
    }
  }
}

/// Delete loops that provably run zero iterations (constant header, empty
/// range) or whose bodies became empty after inner deletions.  Zero-step
/// loops are left alone: the interpreter rejects them, and deleting one
/// would hide that.
int delete_dead_loops(ir::StmtList& body) {
  int deleted = 0;
  for (auto it = body.begin(); it != body.end();) {
    ir::Stmt& s = **it;
    bool drop = false;
    if (s.kind() == ir::SKind::Loop) {
      ir::Loop& l = s.as_loop();
      deleted += delete_dead_loops(l.body);
      if (is_const(l.lb) && is_const(l.ub) && is_const(l.step) &&
          l.step->value != 0) {
        const long st = l.step->value;
        drop = st > 0 ? l.ub->value < l.lb->value
                      : l.ub->value > l.lb->value;
      }
      drop = drop || l.body.empty();
    } else if (s.kind() == ir::SKind::If) {
      ir::If& f = s.as_if();
      deleted += delete_dead_loops(f.then_body);
      deleted += delete_dead_loops(f.else_body);
    }
    if (drop) {
      it = body.erase(it);
      ++deleted;
    } else {
      ++it;
    }
  }
  return deleted;
}

}  // namespace

SpecializeResult specialize(const ir::Program& p, const AssumptionSet& as) {
  SpecializeResult r;
  r.prog = p.clone();
  r.guards = as.to_guards();

  for (const auto& [prm, v] : as.pins()) {
    if (!r.prog.has_param(prm)) continue;
    const ir::IExprPtr c = ir::iconst(v);
    ir::substitute_index_in_list(r.prog.body, prm, c);
    for (const auto& [name, decl] : p.arrays()) {
      ir::ArrayDecl& d = r.prog.mutable_array_decl(name);
      for (ir::Dim& dim : d.dims) {
        dim.lb = ir::simplify(ir::substitute(dim.lb, prm, c));
        dim.ub = ir::simplify(ir::substitute(dim.ub, prm, c));
      }
    }
    ++r.folded_params;
  }

  // Resolution can expose new zero-trip loops (a remainder loop's bounds
  // only become constant once its MIN collapses), so iterate to a
  // fixpoint; two rounds settle every kernel in the suite.
  const analysis::Assumptions ctx = as.to_assumptions();
  for (int round = 0; round < 4; ++round) {
    resolve_bounds(r.prog.body, ctx);
    const int n = delete_dead_loops(r.prog.body);
    r.deleted_loops += n;
    if (n == 0) break;
  }
  return r;
}

}  // namespace blk::spec
