// The specializer: clone a program under an assumption set.
//
// Pinned parameters are constant-folded through every bound, subscript,
// condition and array extent; MIN/MAX loop bounds are then resolved under
// the exact stepped ranges the constants expose (the last iterate of
// DO K = 1, N-1, KS is a computable constant once N and KS are pinned, so
// MIN(K+KS-1, N-1) collapses even though the loop header's K <= N-1 fact
// alone is too weak); finally, loops whose trip count is provably zero
// are deleted — the blocked kernels' remainder loops vanish exactly when
// the divisibility assumption holds.  The result is only legal for
// bindings satisfying the assumptions, which is why it ships with entry
// guards (AssumptionSet::to_guards) and why callers must fall back on
// guard failure.  Specialization is validated differentially (the
// tests/spec suite runs specialized and generic kernels bit-exact against
// the VM), not translation-validated: constant folding legitimately
// changes the dependence structure.
#pragma once

#include "ir/codegen.hpp"
#include "ir/program.hpp"
#include "spec/assumptions.hpp"

namespace blk::spec {

struct SpecializeResult {
  ir::Program prog;        ///< the specialized clone
  ir::GuardOptions guards; ///< entry guards for the variant
  int folded_params = 0;   ///< parameters substituted by constants
  int deleted_loops = 0;   ///< provably zero-trip loops removed
};

/// Clone `p` and specialize it under `as`.  The parameter list is left
/// intact (folded parameters become unused), so generic and specialized
/// variants share the entry ABI and one marshaling path serves both.
[[nodiscard]] SpecializeResult specialize(const ir::Program& p,
                                          const AssumptionSet& as);

}  // namespace blk::spec
