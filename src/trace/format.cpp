#include "trace/format.hpp"

#include <cstdio>
#include <cstring>

#include "interp/vm.hpp"
#include "ir/error.hpp"

namespace blk::trace {

namespace {

constexpr std::uint8_t kOpLit = 0x01;
constexpr std::uint8_t kOpRun = 0x02;
constexpr std::uint8_t kOpRunA = 0x03;

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void write_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Delta+write bit of one access relative to the previous address.
[[nodiscard]] std::uint64_t make_val(std::uint64_t addr, std::uint64_t prev,
                                     bool is_write) {
  return (zigzag(static_cast<std::int64_t>(addr - prev)) << 1) |
         static_cast<std::uint64_t>(is_write);
}

}  // namespace

// ---- TraceEncoder -----------------------------------------------------------

TraceEncoder::TraceEncoder(EncodedTrace& out, std::uint64_t sync_interval)
    : out_(out), sync_interval_(sync_interval) {
  if (!out_.bytes.empty() || out_.records != 0)
    throw Error("TraceEncoder: output trace must be fresh");
  out_.syncs = {SyncPoint{0, 0}};
  pending_.reserve(1024);
}

void TraceEncoder::append(std::uint64_t addr, bool is_write) {
  const std::uint64_t val = make_val(addr, last_addr_, is_write);
  last_addr_ = addr;
  ++appended_;
  push_val(val);
  maybe_auto_sync();
}

void TraceEncoder::push_val(std::uint64_t val) {
  if (run_period_ != 0) {
    if (hist_size_ >= run_period_ && val == hist_at(run_period_ - 1)) {
      ++run_extra_;
      push_hist(val);
      return;
    }
    close_run();
  }
  literal_push(val);
}

void TraceEncoder::literal_push(std::uint64_t val) {
  push_hist(val);
  // `val` continues period P when it equals the val P pushes before it
  // (val itself is now back 0, so that predecessor sits at back P).
  const std::size_t pmax = hist_size_ > 0 ? hist_size_ - 1 : 0;
  for (std::size_t p = 1; p <= kAutoPeriodMax; ++p)
    matched_[p] = (p <= pmax && hist_at(p) == val) ? matched_[p] + 1 : 0;
  pending_.push_back(val);

  // Open the smallest period whose run is long enough to pay for the op.
  for (std::size_t p = 1; p <= kAutoPeriodMax; ++p) {
    const std::uint32_t threshold =
        p > kMinAutoRun ? static_cast<std::uint32_t>(p) : kMinAutoRun;
    if (matched_[p] < threshold) continue;
    // The RUN op replays the last p *emitted* vals; make sure a full
    // reference period will precede it in the output stream.
    const std::uint64_t m = matched_[p];  // content vals, all in pending_
    const std::uint64_t preceding =
        (emitted_ - last_sync_records_) + (pending_.size() - m);
    if (preceding < p) continue;
    pending_.resize(pending_.size() - m);
    emit_literals();
    run_period_ = p;
    run_extra_ = m;
    for (auto& c : matched_) c = 0;
    break;
  }
}

void TraceEncoder::close_run() {
  const std::uint64_t repeats = run_extra_ / run_period_;
  const std::uint64_t leftover = run_extra_ % run_period_;
  out_.bytes.push_back(kOpRun);
  write_varint(out_.bytes, run_period_);
  write_varint(out_.bytes, repeats);
  emitted_ += repeats * run_period_;
  // Vals past the last whole period go back to literals (they are the
  // most recent pushes, still in the history ring).
  for (std::uint64_t i = leftover; i >= 1; --i)
    pending_.push_back(hist_at(i - 1));
  run_period_ = 0;
  run_extra_ = 0;
  for (auto& c : matched_) c = 0;
}

void TraceEncoder::emit_literals() {
  if (pending_.empty()) return;
  out_.bytes.push_back(kOpLit);
  write_varint(out_.bytes, pending_.size());
  for (std::uint64_t v : pending_) write_varint(out_.bytes, v);
  emitted_ += pending_.size();
  pending_.clear();
}

void TraceEncoder::append_run_affine(std::span<const RefPattern> slots,
                                     std::uint64_t repeats) {
  if (slots.empty() || repeats == 0) return;
  if (slots.size() > kMaxPeriod)
    throw Error("TraceEncoder: RUNA pattern exceeds kMaxPeriod");
  if (run_period_ != 0) close_run();
  emit_literals();
  const std::uint64_t anchor = last_addr_;
  out_.bytes.push_back(kOpRunA);
  write_varint(out_.bytes, slots.size());
  write_varint(out_.bytes, repeats);
  for (const RefPattern& s : slots) {
    write_varint(
        out_.bytes,
        (zigzag(static_cast<std::int64_t>(s.start_addr - anchor)) << 1) |
            static_cast<std::uint64_t>(s.is_write));
    write_varint(out_.bytes, zigzag(s.stride));
  }
  const std::uint64_t n = slots.size() * repeats;
  appended_ += n;
  emitted_ += n;
  last_addr_ = slots.back().start_addr +
               static_cast<std::uint64_t>(slots.back().stride) * (repeats - 1);
  // The decoder clears its val history after a RUNA; mirror that so any
  // later RUN op only references post-RUNA vals.
  reset_pattern_state();
  maybe_auto_sync();
}

void TraceEncoder::sync() {
  if (finished_) throw Error("TraceEncoder: sync after finish");
  if (run_period_ != 0) close_run();
  emit_literals();
  // Collapse duplicate syncs (e.g. sync() right after construction).
  if (out_.syncs.back().byte_offset != out_.bytes.size())
    out_.syncs.push_back(
        SyncPoint{out_.bytes.size(), emitted_});
  last_addr_ = 0;
  reset_pattern_state();
  last_sync_records_ = emitted_;
}

void TraceEncoder::maybe_auto_sync() {
  if (sync_interval_ == 0 || run_period_ != 0) return;
  if (emitted_ + pending_.size() - last_sync_records_ >= sync_interval_)
    sync();
}

void TraceEncoder::finish() {
  if (finished_) throw Error("TraceEncoder: finish called twice");
  if (run_period_ != 0) close_run();
  emit_literals();
  out_.records = emitted_;
  finished_ = true;
}

// ---- TraceDecoder -----------------------------------------------------------

TraceDecoder::TraceDecoder(const EncodedTrace& t)
    : TraceDecoder(t, 0, t.bytes.size()) {}

TraceDecoder::TraceDecoder(const EncodedTrace& t, std::uint64_t byte_begin,
                           std::uint64_t byte_end)
    : data_(t.bytes.data()), pos_(byte_begin), end_(byte_end),
      syncs_(&t.syncs) {
  if (byte_begin > byte_end || byte_end > t.bytes.size())
    throw Error("TraceDecoder: byte range out of bounds");
  // State is already clean at byte_begin (a shard must start on a sync),
  // so only syncs strictly inside the range trigger a reset.
  while (sync_idx_ < syncs_->size() &&
         (*syncs_)[sync_idx_].byte_offset <= byte_begin)
    ++sync_idx_;
  pattern_.reserve(TraceEncoder::kAutoPeriodMax);
  slots_.reserve(8);
}

std::uint64_t TraceDecoder::read_varint() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos_ >= end_) throw Error("TraceDecoder: truncated varint");
    const std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) throw Error("TraceDecoder: varint overflow");
  }
}

void TraceDecoder::begin_op() {
  const std::uint8_t tag = data_[pos_++];
  switch (tag) {
    case kOpLit:
      op_ = Op::Lit;
      op_remaining_ = read_varint();
      break;
    case kOpRun: {
      const std::uint64_t p = read_varint();
      const std::uint64_t r = read_varint();
      if (p == 0 || p > hist_size_)
        throw Error("TraceDecoder: RUN period exceeds history");
      pattern_.clear();
      for (std::uint64_t i = p; i >= 1; --i) pattern_.push_back(hist_[
          (hist_head_ - (i - 1)) & (TraceEncoder::kHistCap - 1)]);
      pattern_pos_ = 0;
      op_ = Op::Run;
      op_remaining_ = p * r;
      break;
    }
    case kOpRunA: {
      const std::uint64_t p = read_varint();
      const std::uint64_t r = read_varint();
      if (p == 0 || p > TraceEncoder::kMaxPeriod)
        throw Error("TraceDecoder: bad RUNA period");
      slots_.clear();
      const std::uint64_t anchor = last_addr_;
      for (std::uint64_t j = 0; j < p; ++j) {
        const std::uint64_t sv = read_varint();
        const std::int64_t ds = unzigzag(sv >> 1);
        const std::int64_t g = unzigzag(read_varint());
        slots_.push_back(Slot{anchor + static_cast<std::uint64_t>(ds), g,
                              (sv & 1) != 0});
      }
      slot_pos_ = 0;
      op_ = Op::RunA;
      op_remaining_ = p * r;
      break;
    }
    default:
      throw Error("TraceDecoder: unknown op tag");
  }
}

std::size_t TraceDecoder::next(std::span<interp::TraceRecord> out) {
  std::size_t n = 0;
  while (n < out.size()) {
    if (op_ == Op::None) {
      if (pos_ >= end_) break;
      while (sync_idx_ < syncs_->size() &&
             (*syncs_)[sync_idx_].byte_offset == pos_) {
        last_addr_ = 0;
        hist_size_ = 0;
        ++sync_idx_;
      }
      begin_op();
      if (op_remaining_ == 0) {  // degenerate empty op
        op_ = Op::None;
        continue;
      }
    }
    switch (op_) {
      case Op::Lit: {
        const std::uint64_t v = read_varint();
        last_addr_ += static_cast<std::uint64_t>(unzigzag(v >> 1));
        out[n++] = {last_addr_, (v & 1) != 0};
        hist_head_ = (hist_head_ + 1) & (TraceEncoder::kHistCap - 1);
        hist_[hist_head_] = v;
        if (hist_size_ < TraceEncoder::kHistCap) ++hist_size_;
        break;
      }
      case Op::Run: {
        const std::uint64_t v = pattern_[pattern_pos_];
        pattern_pos_ = (pattern_pos_ + 1) % pattern_.size();
        last_addr_ += static_cast<std::uint64_t>(unzigzag(v >> 1));
        out[n++] = {last_addr_, (v & 1) != 0};
        hist_head_ = (hist_head_ + 1) & (TraceEncoder::kHistCap - 1);
        hist_[hist_head_] = v;
        if (hist_size_ < TraceEncoder::kHistCap) ++hist_size_;
        break;
      }
      case Op::RunA: {
        Slot& s = slots_[slot_pos_];
        out[n++] = {s.addr, s.is_write};
        last_addr_ = s.addr;
        s.addr += static_cast<std::uint64_t>(s.stride);
        if (++slot_pos_ == slots_.size()) slot_pos_ = 0;
        break;
      }
      case Op::None:
        break;  // unreachable
    }
    if (--op_remaining_ == 0) {
      if (op_ == Op::RunA) {
        // Mirror the encoder: val history resets after a RUNA op.
        hist_size_ = 0;
      }
      op_ = Op::None;
    }
  }
  return n;
}

// ---- Sharding ---------------------------------------------------------------

std::vector<Shard> make_shard_plan(const EncodedTrace& t,
                                   std::uint64_t target_records) {
  if (target_records == 0) target_records = 1;
  std::vector<Shard> plan;
  std::uint64_t cur_byte = 0;
  std::uint64_t cur_rec = 0;
  for (const SyncPoint& sp : t.syncs) {
    if (sp.record_index - cur_rec >= target_records &&
        sp.byte_offset > cur_byte) {
      plan.push_back(Shard{cur_byte, sp.byte_offset, cur_rec,
                           sp.record_index});
      cur_byte = sp.byte_offset;
      cur_rec = sp.record_index;
    }
  }
  if (plan.empty() || cur_byte < t.bytes.size())
    plan.push_back(Shard{cur_byte, t.bytes.size(), cur_rec, t.records});
  return plan;
}

std::vector<interp::TraceRecord> decode_all(const EncodedTrace& t) {
  std::vector<interp::TraceRecord> out;
  out.reserve(t.records);
  TraceDecoder dec(t);
  interp::TraceRecord batch[4096];
  std::size_t n;
  while ((n = dec.next(batch)) != 0) out.insert(out.end(), batch, batch + n);
  return out;
}

// ---- Record from the VM -----------------------------------------------------

EncodedTrace record_trace(const ir::Program& p, const ir::Env& params,
                          std::uint64_t seed) {
  interp::ExecEngine eng(p, params);
  interp::seed_store(eng.store(), seed);
  EncodedTrace t;
  TraceEncoder enc(t);
  interp::TraceBuffer buf(1 << 16, &enc, &TraceEncoder::sink);
  eng.run(buf);
  buf.flush();
  enc.finish();
  return t;
}

// ---- Disk round-trip --------------------------------------------------------

namespace {
constexpr char kMagic[8] = {'B', 'L', 'K', 'T', 'R', 'C', '0', '1'};

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);
  }
};
}  // namespace

void EncodedTrace::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw Error("EncodedTrace::save: cannot open " + path);
  FileCloser closer{f};
  const std::uint64_t nbytes = bytes.size();
  const std::uint64_t nsyncs = syncs.size();
  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic &&
            std::fwrite(&records, sizeof records, 1, f) == 1 &&
            std::fwrite(&nbytes, sizeof nbytes, 1, f) == 1 &&
            std::fwrite(&nsyncs, sizeof nsyncs, 1, f) == 1;
  for (const SyncPoint& sp : syncs)
    ok = ok && std::fwrite(&sp.byte_offset, sizeof sp.byte_offset, 1, f) == 1 &&
         std::fwrite(&sp.record_index, sizeof sp.record_index, 1, f) == 1;
  if (nbytes != 0)
    ok = ok && std::fwrite(bytes.data(), 1, nbytes, f) == nbytes;
  if (!ok) throw Error("EncodedTrace::save: short write to " + path);
}

EncodedTrace EncodedTrace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw Error("EncodedTrace::load: cannot open " + path);
  FileCloser closer{f};
  char magic[8];
  EncodedTrace t;
  std::uint64_t nbytes = 0;
  std::uint64_t nsyncs = 0;
  bool ok = std::fread(magic, 1, sizeof magic, f) == sizeof magic &&
            std::memcmp(magic, kMagic, sizeof kMagic) == 0 &&
            std::fread(&t.records, sizeof t.records, 1, f) == 1 &&
            std::fread(&nbytes, sizeof nbytes, 1, f) == 1 &&
            std::fread(&nsyncs, sizeof nsyncs, 1, f) == 1;
  if (!ok) throw Error("EncodedTrace::load: bad header in " + path);
  t.syncs.resize(nsyncs);
  for (SyncPoint& sp : t.syncs)
    ok = ok && std::fread(&sp.byte_offset, sizeof sp.byte_offset, 1, f) == 1 &&
         std::fread(&sp.record_index, sizeof sp.record_index, 1, f) == 1;
  t.bytes.resize(nbytes);
  if (nbytes != 0) ok = ok && std::fread(t.bytes.data(), 1, nbytes, f) == nbytes;
  if (!ok) throw Error("EncodedTrace::load: truncated file " + path);
  if (t.syncs.empty() || t.syncs.front() != SyncPoint{0, 0})
    throw Error("EncodedTrace::load: malformed sync table in " + path);
  return t;
}

}  // namespace blk::trace
