// Compressed access-trace format: record once, replay many.
//
// A raw trace is a stream of TraceRecord{addr, is_write} — 16 bytes per
// array access, ~10^8 records for N=300 LU and ~10^10 for N=2000, which
// makes gigabyte traces the inner loop of blocking-factor selection.
// This format exploits what the VM already strength-reduces: numerical
// kernels touch memory in affine patterns, so the *delta* stream is tiny
// and overwhelmingly periodic.
//
// ## Encoding
//
// Each record becomes a value `val = zigzag(addr - prev_addr) << 1 | w`
// (w = is_write).  Values are grouped into ops, each a tag byte followed
// by LEB128 varints:
//
//   LIT  (0x01) n, then n vals            — n literal records
//   RUN  (0x02) P, R                      — repeat the last P decoded
//                                           vals R times (P*R records);
//                                           the pattern is the decoder's
//                                           val history, so any periodic
//                                           delta sequence collapses
//   RUNA (0x03) P, R, then P slots of     — P interleaved arithmetic
//        (zigzag(start-anchor)<<1|w, G)     streams: rep t emits, for
//                                           each slot j, the access
//                                           start_j + t*G_j.  anchor is
//                                           the decoder's last address
//                                           at op start.  This is the
//                                           synthesizer's workhorse: one
//                                           inner-loop *instance* of any
//                                           affine nest is exactly one
//                                           RUNA op, because each
//                                           reference's address is affine
//                                           in the loop variable even
//                                           when different references
//                                           carry different coefficients
//                                           (A(I,J), A(I,K), A(K,J) in
//                                           LU).  A plain RUN cannot
//                                           express that: its deltas
//                                           would drift with I.
//
// The encoder auto-detects RUNs online (periods up to 32) for VM-recorded
// traces; RUNA ops are only emitted explicitly by the trace synthesizer,
// which knows the strides symbolically.
//
// ## Sync points and sharding
//
// A side table of (byte_offset, record_index) sync points marks positions
// where the decoder state (previous address, val history) resets, so a
// decode may *start* at any sync point without reading what came before.
// The encoder plants one roughly every `sync_interval` records, always on
// an op boundary.  make_shard_plan() cuts the stream at sync points into
// shards of ~target_records each — the plan depends only on the trace and
// the target, never on worker count, which is what makes sharded replay
// bit-identical at any parallelism (see trace/replay.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interp/trace.hpp"
#include "ir/program.hpp"

namespace blk::trace {

/// A position where decoding may begin: decoder state is reset here.
struct SyncPoint {
  std::uint64_t byte_offset = 0;
  std::uint64_t record_index = 0;

  [[nodiscard]] bool operator==(const SyncPoint&) const = default;
};

/// A finished compressed trace.
struct EncodedTrace {
  std::vector<std::uint8_t> bytes;
  std::uint64_t records = 0;
  std::vector<SyncPoint> syncs;  ///< ascending; first is always {0, 0}

  /// Size of the equivalent raw in-memory TraceRecord stream.
  [[nodiscard]] std::uint64_t raw_bytes() const {
    return records * sizeof(interp::TraceRecord);
  }
  [[nodiscard]] double compression_ratio() const {
    return bytes.empty() ? 0.0
                         : static_cast<double>(raw_bytes()) /
                               static_cast<double>(bytes.size());
  }

  /// Binary round-trip to disk (magic + counts + sync table + bytes).
  /// Throws blk::Error on I/O failure or a malformed file.
  void save(const std::string& path) const;
  [[nodiscard]] static EncodedTrace load(const std::string& path);
};

/// Streaming encoder.  Feed accesses with append() (or hook a TraceBuffer
/// via sink()); the synthesizer uses append_run_affine() for whole loop
/// instances.  Call finish() exactly once before using the EncodedTrace.
class TraceEncoder {
 public:
  static constexpr std::size_t kAutoPeriodMax = 32;  ///< RUN detection
  static constexpr std::size_t kMaxPeriod = 64;      ///< RUNA slot cap
  static constexpr std::uint64_t kDefaultSyncInterval = 1u << 20;
  static constexpr std::size_t kHistCap = 128;  ///< val-history ring (pow2)

  /// One arithmetic reference stream for append_run_affine(): at
  /// repetition t it contributes the access `start_addr + t*stride`.
  struct RefPattern {
    std::uint64_t start_addr = 0;
    std::int64_t stride = 0;
    bool is_write = false;
  };

  /// `out` must be a fresh EncodedTrace; it is finalized by finish().
  /// sync_interval = 0 disables automatic sync points (the single
  /// implicit sync at offset 0 remains).
  explicit TraceEncoder(EncodedTrace& out,
                        std::uint64_t sync_interval = kDefaultSyncInterval);

  void append(std::uint64_t addr, bool is_write);

  /// Emit `slots.size() * repeats` records in one RUNA op: repetition t
  /// emits slots in order, slot j at address start_addr_j + t*stride_j.
  /// repeats == 0 or empty slots is a no-op; slots.size() must be
  /// <= kMaxPeriod (throws blk::Error otherwise).
  void append_run_affine(std::span<const RefPattern> slots,
                         std::uint64_t repeats);

  /// Force a sync point here (closes any open run, flushes literals).
  void sync();

  /// Flush everything and finalize the EncodedTrace.
  void finish();

  [[nodiscard]] std::uint64_t records() const { return appended_; }

  /// TraceBuffer::SinkFn adapter: pass (encoder pointer, &sink) as the
  /// buffer's (ctx, fn) to record a VM execution straight into the
  /// encoder with no per-access indirection beyond one flush call.
  static void sink(void* ctx, std::span<const interp::TraceRecord> recs) {
    auto* enc = static_cast<TraceEncoder*>(ctx);
    for (const interp::TraceRecord& r : recs) enc->append(r.addr, r.is_write);
  }

 private:
  static constexpr std::uint32_t kMinAutoRun = 4;

  EncodedTrace& out_;
  std::uint64_t sync_interval_;
  std::uint64_t last_addr_ = 0;
  std::uint64_t appended_ = 0;       ///< records fed in
  std::uint64_t emitted_ = 0;        ///< records written to ops
  std::uint64_t last_sync_records_ = 0;
  std::vector<std::uint64_t> pending_;  ///< literal vals not yet emitted
  std::uint64_t hist_[kHistCap] = {};   ///< ring of recent vals
  std::size_t hist_head_ = 0;
  std::size_t hist_size_ = 0;
  std::uint32_t matched_[kAutoPeriodMax + 1] = {};
  std::size_t run_period_ = 0;  ///< 0: no open auto-run
  std::uint64_t run_extra_ = 0; ///< vals absorbed by the open run
  bool finished_ = false;

  /// Val pushed `back` pushes ago (back = 0 is the most recent).
  [[nodiscard]] std::uint64_t hist_at(std::size_t back) const {
    return hist_[(hist_head_ - back) & (kHistCap - 1)];
  }
  void push_hist(std::uint64_t v) {
    hist_head_ = (hist_head_ + 1) & (kHistCap - 1);
    hist_[hist_head_] = v;
    if (hist_size_ < kHistCap) ++hist_size_;
  }
  void reset_pattern_state() {
    hist_size_ = 0;
    for (auto& m : matched_) m = 0;
  }

  void push_val(std::uint64_t val);
  void literal_push(std::uint64_t val);
  void close_run();
  void emit_literals();
  void maybe_auto_sync();
};

/// Streaming decoder over a whole trace or one shard byte range.  A shard
/// range must begin at a sync point (where decoder state is defined to be
/// reset) and end at a sync point or at the end of the stream.
class TraceDecoder {
 public:
  explicit TraceDecoder(const EncodedTrace& t);
  TraceDecoder(const EncodedTrace& t, std::uint64_t byte_begin,
               std::uint64_t byte_end);

  /// Fill `out` with the next decoded records; returns how many were
  /// produced (0 exactly when the range is exhausted).
  std::size_t next(std::span<interp::TraceRecord> out);

 private:
  const std::uint8_t* data_;
  std::uint64_t pos_;
  std::uint64_t end_;
  // Sync points inside the range: decoder state resets when an op
  // boundary lands on one, mirroring the encoder (which encodes the
  // first post-sync record as a delta from address 0).
  const std::vector<SyncPoint>* syncs_;
  std::size_t sync_idx_ = 0;  ///< next sync not yet crossed
  std::uint64_t last_addr_ = 0;
  // val history for RUN patterns
  std::uint64_t hist_[TraceEncoder::kHistCap] = {};
  std::size_t hist_head_ = 0;
  std::size_t hist_size_ = 0;
  // in-progress op state (an op larger than the output span resumes)
  enum class Op : std::uint8_t { None, Lit, Run, RunA };
  Op op_ = Op::None;
  std::uint64_t op_remaining_ = 0;  ///< records left in the current op
  std::vector<std::uint64_t> pattern_;  ///< RUN: snapshot of P vals
  std::size_t pattern_pos_ = 0;
  struct Slot {
    std::uint64_t addr;
    std::int64_t stride;
    bool is_write;
  };
  std::vector<Slot> slots_;  ///< RUNA streams (addr advances in place)
  std::size_t slot_pos_ = 0;

  void begin_op();
  [[nodiscard]] std::uint64_t read_varint();
};

/// One contiguous piece of the encoded stream, cut at sync points.
struct Shard {
  std::uint64_t byte_begin = 0;
  std::uint64_t byte_end = 0;
  std::uint64_t record_begin = 0;
  std::uint64_t record_end = 0;

  [[nodiscard]] std::uint64_t records() const {
    return record_end - record_begin;
  }
};

/// Deterministic shard plan: cut the trace at sync points into pieces of
/// roughly `target_records` each.  Depends only on (trace, target), never
/// on worker count.  Always returns at least one shard covering the whole
/// stream; a trace smaller than the target yields exactly one shard.
[[nodiscard]] std::vector<Shard> make_shard_plan(const EncodedTrace& t,
                                                 std::uint64_t target_records);

/// Decode the whole trace into memory (test/debug convenience — defeats
/// the point for production-sized traces).
[[nodiscard]] std::vector<interp::TraceRecord> decode_all(
    const EncodedTrace& t);

/// Record one VM execution of `p` (seeded by `seed`) into a compressed
/// trace.  Works for any program, including data-dependent control flow;
/// the synthesizer (trace/synth.hpp) is the faster path when eligible.
[[nodiscard]] EncodedTrace record_trace(const ir::Program& p,
                                        const ir::Env& params,
                                        std::uint64_t seed = 42);

}  // namespace blk::trace
