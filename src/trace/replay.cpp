#include "trace/replay.hpp"

#include <atomic>
#include <thread>

#include "ir/error.hpp"

namespace blk::trace {

namespace {

struct ShardResult {
  std::vector<cachesim::CacheStats> levels;
  std::uint64_t back_invalidations = 0;
};

/// Decode one shard through a fresh hierarchy.
[[nodiscard]] ShardResult simulate_shard(
    const EncodedTrace& t, const Shard& sh,
    const std::vector<cachesim::CacheConfig>& levels) {
  cachesim::Hierarchy h(levels);
  TraceDecoder dec(t, sh.byte_begin, sh.byte_end);
  interp::TraceRecord batch[1 << 14];
  std::size_t n;
  while ((n = dec.next(batch)) != 0)
    h.simulate(std::span<const interp::TraceRecord>(batch, n));
  ShardResult r;
  r.levels.reserve(h.num_levels());
  for (std::size_t i = 0; i < h.num_levels(); ++i)
    r.levels.push_back(h.stats(i));
  r.back_invalidations = h.back_invalidations();
  return r;
}

}  // namespace

ReplayResult replay(const EncodedTrace& t, const ReplayOptions& opt) {
  if (opt.levels.empty()) throw Error("replay: need at least one cache level");
  const std::vector<Shard> plan = make_shard_plan(
      t, opt.shard_records == 0 ? 1 : opt.shard_records);

  unsigned workers = opt.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    if (workers > 16) workers = 16;
  }
  if (workers > plan.size()) workers = static_cast<unsigned>(plan.size());

  std::vector<ShardResult> results(plan.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i)
      results[i] = simulate_shard(t, plan[i], opt.levels);
  } else {
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= plan.size()) return;
        results[i] = simulate_shard(t, plan[i], opt.levels);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  // Merge in shard order.  The sums are unsigned and therefore order-
  // independent anyway; iterating the plan keeps it obviously so.
  ReplayResult out;
  out.levels.assign(opt.levels.size(), cachesim::CacheStats{});
  out.shards = plan.size();
  out.records = t.records;
  for (const ShardResult& r : results) {
    for (std::size_t l = 0; l < out.levels.size(); ++l)
      out.levels[l] += r.levels[l];
    out.back_invalidations += r.back_invalidations;
  }
  return out;
}

}  // namespace blk::trace
