// Sharded trace replay: one compressed trace, many cache simulators.
//
// The trace is cut at sync points into a deterministic shard plan (a
// function of the trace and the target shard size only — never of worker
// count).  Workers pull shards from an atomic cursor, each decoding its
// byte range into a private cachesim::Hierarchy replica, and the
// per-shard CacheStats are combined with the commutative, associative
// CacheStats::operator+= — so the merged totals are bit-identical whether
// 1 or 8 threads did the work (replay_test pins this).
//
// Shard boundaries are cache-state resets: each shard's replica starts
// cold, so a K-shard replay counts slightly more compulsory misses than
// one sequential pass (the classic trade of time-parallel simulation).
// The boundary effect is bounded by shards * lines-per-hierarchy records;
// with the default ~4M-record shards it is noise (<0.1% of accesses), and
// a trace that fits in a single shard — every probe-sized sweep the
// selectblock pass runs — is replayed exactly, shard plan or not.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "trace/format.hpp"

namespace blk::trace {

struct ReplayOptions {
  std::vector<cachesim::CacheConfig> levels = {cachesim::CacheConfig{}};
  unsigned workers = 0;  ///< simulation threads; 0 = hardware concurrency
  /// Target records per shard.  The shard *plan* depends only on this and
  /// the trace, so results are reproducible across machines and worker
  /// counts.  Traces at or below this size form a single shard and are
  /// replayed exactly like a sequential simulation.
  std::uint64_t shard_records = 4u << 20;
};

struct ReplayResult {
  std::vector<cachesim::CacheStats> levels;  ///< merged, one per level
  std::uint64_t back_invalidations = 0;
  std::size_t shards = 0;
  std::uint64_t records = 0;

  /// AMAT over the merged stats (latencies: one per level plus memory).
  [[nodiscard]] double amat(std::span<const double> latencies) const {
    return cachesim::amat(levels, latencies);
  }
};

/// Replay `t` through per-shard Hierarchy replicas on a worker pool and
/// merge the stats.  Deterministic: same trace + same options => same
/// result, bit for bit, at any worker count.
[[nodiscard]] ReplayResult replay(const EncodedTrace& t,
                                  const ReplayOptions& opt);

}  // namespace blk::trace
