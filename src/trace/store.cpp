#include "trace/store.hpp"

#include "ir/printer.hpp"

namespace blk::trace {

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_program(const ir::Program& p) {
  return fnv1a(ir::print(p));
}

std::uint64_t hash_env(const ir::Env& env) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [name, value] : env) {  // std::map: sorted, canonical
    h = fnv1a(name, h);
    h ^= static_cast<std::uint64_t>(value);
    h *= 1099511628211ULL;
  }
  return h;
}

std::shared_ptr<const EncodedTrace> TraceStore::get(const TraceKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->trace;
}

std::shared_ptr<const EncodedTrace> TraceStore::put(const TraceKey& key,
                                                    EncodedTrace trace) {
  auto sp = std::make_shared<const EncodedTrace>(std::move(trace));
  const std::uint64_t sz = sp->bytes.size();
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->trace->bytes.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (sz > max_bytes_) return sp;  // too big to retain; hand it back only
  lru_.push_front(Entry{key, sp});
  index_[key] = lru_.begin();
  bytes_ += sz;
  evict_to_cap_locked();
  return sp;
}

void TraceStore::evict_to_cap_locked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.trace->bytes.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

TraceStore::Stats TraceStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, evictions_, bytes_, lru_.size()};
}

void TraceStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

TraceStore& TraceStore::process() {
  static TraceStore store;
  return store;
}

}  // namespace blk::trace
