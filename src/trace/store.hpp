// Record-once / replay-many: a process-wide cache of encoded traces.
//
// A trace is a pure function of (program text, blocking factor, parameter
// bindings, seed, sampling options).  The blocking-factor sweep asks for
// the same traces every time a client re-tunes — the kernel-compilation
// service re-runs selectblock per client cache geometry, and the *trace*
// does not depend on the geometry at all.  So traces are keyed and kept:
// the first sweep records (or synthesizes) each candidate's trace once;
// every later sweep against any hierarchy replays straight from the
// store, skipping VM execution entirely.  Compressed traces are megabytes
// where raw ones are gigabytes, which is what makes retention viable; a
// byte-capped LRU bounds the footprint regardless.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include <map>

#include "ir/program.hpp"
#include "trace/format.hpp"

namespace blk::trace {

/// Identity of one recorded trace.
struct TraceKey {
  std::uint64_t program_hash = 0;  ///< FNV-1a of the printed program
  std::uint64_t env_hash = 0;      ///< FNV-1a over sorted (name, value)
  long ks = 0;                     ///< blocking-factor binding (0 if none)
  std::uint64_t seed = 0;
  long sample_every = 1;
  int sample_depth = 1;

  [[nodiscard]] auto operator<=>(const TraceKey&) const = default;
};

/// FNV-1a helpers used to build keys.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s,
                                  std::uint64_t h = 14695981039346656037ULL);
[[nodiscard]] std::uint64_t hash_program(const ir::Program& p);
[[nodiscard]] std::uint64_t hash_env(const ir::Env& env);

/// Thread-safe byte-capped LRU map of encoded traces.  Values are shared
/// pointers, so an entry evicted while a replay is still reading it stays
/// alive until the reader drops it.
class TraceStore {
 public:
  explicit TraceStore(std::uint64_t max_bytes = 256ull << 20)
      : max_bytes_(max_bytes) {}

  /// null when absent (counts a miss).
  [[nodiscard]] std::shared_ptr<const EncodedTrace> get(const TraceKey& key);

  /// Insert (replacing any existing entry) and LRU-evict down to the byte
  /// cap.  Returns the stored pointer.  A trace larger than the whole cap
  /// is returned but not retained.
  std::shared_ptr<const EncodedTrace> put(const TraceKey& key,
                                          EncodedTrace trace);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

  /// Shared per-process instance (the sweep's default).
  [[nodiscard]] static TraceStore& process();

 private:
  struct Entry {
    TraceKey key;
    std::shared_ptr<const EncodedTrace> trace;
  };

  mutable std::mutex mu_;
  std::uint64_t max_bytes_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  ///< front = most recent
  std::map<TraceKey, std::list<Entry>::iterator> index_;

  void evict_to_cap_locked();
};

}  // namespace blk::trace
