#include "trace/synth.hpp"

#include <map>
#include <set>
#include <vector>

#include "interp/interp.hpp"
#include "ir/error.hpp"

namespace blk::trace {

using namespace blk::ir;

// ---- Eligibility ------------------------------------------------------------

namespace {

[[nodiscard]] bool has_array_elem(const IExpr& e) {
  if (e.kind == IKind::ArrayElem) return true;
  if (e.lhs && has_array_elem(*e.lhs)) return true;
  if (e.rhs && has_array_elem(*e.rhs)) return true;
  return false;
}

/// Check one index expression: no ArrayElem, all free vars in scope.
[[nodiscard]] std::optional<std::string> check_iexpr(
    const IExprPtr& e, const std::set<std::string>& scope) {
  if (has_array_elem(*e))
    return "index expression '" + to_string(e) +
           "' reads an array element (data-dependent subscript)";
  std::vector<std::string> vars;
  free_vars(*e, vars);
  for (const std::string& v : vars)
    if (!scope.contains(v))
      return "index expression '" + to_string(e) + "' depends on '" + v +
             "', which is not an enclosing loop variable or parameter";
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> check_vexpr(
    const VExpr& e, const std::set<std::string>& scope) {
  switch (e.kind) {
    case VKind::Const:
    case VKind::ScalarRef:
      return std::nullopt;
    case VKind::IndexVal:
      return check_iexpr(e.index, scope);
    case VKind::ArrayRef:
      for (const IExprPtr& s : e.subs)
        if (auto r = check_iexpr(s, scope)) return r;
      return std::nullopt;
    case VKind::Bin: {
      if (auto r = check_vexpr(*e.lhs, scope)) return r;
      return check_vexpr(*e.rhs, scope);
    }
    case VKind::Un:
      return check_vexpr(*e.lhs, scope);
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<std::string> check_list(
    const StmtList& body, std::set<std::string>& scope) {
  for (const StmtPtr& s : body) {
    switch (s->kind()) {
      case SKind::If:
        return std::string(
            "IF statement (control flow depends on runtime data)");
      case SKind::Assign: {
        const Assign& a = s->as_assign();
        if (auto r = check_vexpr(*a.rhs, scope)) return r;
        for (const IExprPtr& sub : a.lhs.subs)
          if (auto r = check_iexpr(sub, scope)) return r;
        break;
      }
      case SKind::Loop: {
        const Loop& l = s->as_loop();
        if (auto r = check_iexpr(l.lb, scope)) return r;
        if (auto r = check_iexpr(l.ub, scope)) return r;
        if (auto r = check_iexpr(l.step, scope)) return r;
        const bool fresh = scope.insert(l.var).second;
        auto r = check_list(l.body, scope);
        if (fresh) scope.erase(l.var);
        if (r) return r;
        break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> synth_ineligible_reason(const Program& p) {
  std::set<std::string> scope(p.params().begin(), p.params().end());
  return check_list(p.body, scope);
}

// ---- Synthesis --------------------------------------------------------------

namespace {

/// Is the address of a subscript affine in loop variable `v`?  Constant
/// (v-free) subtrees may be arbitrary — MIN/MAX bounds folded into a
/// subscript are fine as long as they do not mention v itself.
[[nodiscard]] bool affine_in(const IExpr& e, const std::string& v) {
  switch (e.kind) {
    case IKind::Const:
      return true;
    case IKind::Var:
      return true;
    case IKind::Add:
    case IKind::Sub:
      return affine_in(*e.lhs, v) && affine_in(*e.rhs, v);
    case IKind::Mul: {
      const bool lm = mentions(*e.lhs, v);
      const bool rm = mentions(*e.rhs, v);
      if (lm && rm) return false;
      if (lm) return affine_in(*e.lhs, v);
      if (rm) return affine_in(*e.rhs, v);
      return true;
    }
    case IKind::Min:
    case IKind::Max:
    case IKind::FloorDiv:
    case IKind::CeilDiv:
      return !mentions(e, v);
    case IKind::ArrayElem:
      return false;
  }
  return false;
}

/// One traced reference of an assignment, in VM emission order.
struct Ref {
  const interp::Tensor* tensor = nullptr;
  const std::vector<IExprPtr>* subs = nullptr;
  bool is_write = false;
};

/// Append `rhs`'s array reads in evaluation order (depth-first, left to
/// right) — exactly the order Interpreter::eval and the VM's postfix
/// bytecode touch them.
void collect_rhs_refs(const VExpr& e, const interp::Store& store,
                      std::vector<Ref>& out) {
  switch (e.kind) {
    case VKind::ArrayRef:
      out.push_back(Ref{&store.arrays.at(e.name), &e.subs, false});
      return;
    case VKind::Bin:
      collect_rhs_refs(*e.lhs, store, out);
      collect_rhs_refs(*e.rhs, store, out);
      return;
    case VKind::Un:
      collect_rhs_refs(*e.lhs, store, out);
      return;
    case VKind::Const:
    case VKind::ScalarRef:
    case VKind::IndexVal:
      return;
  }
}

class Synthesizer {
 public:
  Synthesizer(const Program& p, const ir::Env& params, TraceEncoder* enc,
              const SynthOptions& opt)
      : program_(p),
        enc_(enc),
        opt_(opt),
        store_(interp::make_store(p, params)),
        env_(params) {
    if (opt_.sample_every < 1)
      throw Error("synthesize: sample_every must be >= 1");
    if (opt_.sample_depth < 0)
      throw Error("synthesize: sample_depth must be >= 0");
  }

  SynthStats run() {
    exec_list(program_.body, /*depth=*/0);
    return stats_;
  }

 private:
  const Program& program_;
  TraceEncoder* enc_;  ///< null: count records only (estimate_records)
  SynthOptions opt_;
  interp::Store store_;
  ir::Env env_;  ///< params + live loop variables
  SynthStats stats_;
  std::uint64_t unit_counter_ = 0;
  std::map<const Assign*, std::vector<Ref>> ref_cache_;
  std::map<const Loop*, int> fast_cache_;  ///< -1 unknown handled via find

  [[nodiscard]] const std::vector<Ref>& refs_of(const Assign& a) {
    auto it = ref_cache_.find(&a);
    if (it != ref_cache_.end()) return it->second;
    std::vector<Ref> refs;
    collect_rhs_refs(*a.rhs, store_, refs);
    if (a.lhs.is_array())
      refs.push_back(Ref{&store_.arrays.at(a.lhs.name), &a.lhs.subs, true});
    return ref_cache_.emplace(&a, std::move(refs)).first->second;
  }

  [[nodiscard]] std::uint64_t ref_addr(const Ref& r) {
    idx_scratch_.clear();
    for (const IExprPtr& s : *r.subs)
      idx_scratch_.push_back(evaluate(s, env_));
    return r.tensor->address(r.tensor->offset(idx_scratch_));
  }

  std::vector<long> idx_scratch_;
  std::vector<TraceEncoder::RefPattern> slot_scratch_;

  void emit_assign(const Assign& a) {
    for (const Ref& r : refs_of(a)) {
      ++stats_.records;
      if (enc_) enc_->append(ref_addr(r), r.is_write);
    }
  }

  /// An innermost all-Assign loop whose traced subscripts are affine in
  /// its variable collapses to one RUNA op per instance.
  [[nodiscard]] bool fast_eligible(const Loop& l) {
    auto it = fast_cache_.find(&l);
    if (it != fast_cache_.end()) return it->second != 0;
    bool ok = !l.body.empty();
    std::size_t total_refs = 0;
    for (const StmtPtr& s : l.body) {
      if (s->kind() != SKind::Assign) {
        ok = false;
        break;
      }
      for (const Ref& r : refs_of(s->as_assign())) {
        ++total_refs;
        for (const IExprPtr& sub : *r.subs)
          if (!affine_in(*sub, l.var)) ok = false;
      }
    }
    if (total_refs == 0 || total_refs > TraceEncoder::kMaxPeriod) ok = false;
    fast_cache_[&l] = ok ? 1 : 0;
    return ok;
  }

  /// Trip count of `DO v = lb, ub, step` (0 when the loop doesn't run).
  [[nodiscard]] static std::uint64_t trip_count(long lb, long ub, long step) {
    if (step > 0) return ub < lb ? 0 : static_cast<std::uint64_t>(
                                           (ub - lb) / step + 1);
    return lb < ub ? 0 : static_cast<std::uint64_t>((lb - ub) / (-step) + 1);
  }

  void exec_list(const StmtList& body, int depth) {
    for (const StmtPtr& s : body) exec(*s, depth);
  }

  void exec(const Stmt& s, int depth) {
    if (s.kind() == SKind::Assign) {
      emit_assign(s.as_assign());
      return;
    }
    const Loop& l = s.as_loop();  // If is ineligible, never reaches here
    const long lb = evaluate(l.lb, env_);
    const long ub = evaluate(l.ub, env_);
    const long step = evaluate(l.step, env_);
    if (step == 0) throw Error("synthesize: zero loop step in " + l.var);
    const std::uint64_t trips = trip_count(lb, ub, step);
    if (trips == 0) return;

    // Save/restore an outer binding of the same variable name, matching
    // the interpreter's sequential-reuse semantics.
    long saved = 0;
    bool had = false;
    if (auto it = env_.find(l.var); it != env_.end()) {
      saved = it->second;
      had = true;
    }

    const bool sampling = opt_.sample_every > 1 && depth == opt_.sample_depth;
    if (fast_eligible(l)) {
      fast_loop(l, lb, step, trips, sampling);
    } else {
      for (std::uint64_t t = 0; t < trips; ++t) {
        if (sampling) {
          const std::uint64_t u = unit_counter_++;
          ++stats_.units;
          if (u % static_cast<std::uint64_t>(opt_.sample_every) != 0)
            continue;
          ++stats_.kept_units;
        }
        env_[l.var] = lb + static_cast<long>(t) * step;
        exec_list(l.body, depth + 1);
      }
    }

    if (had)
      env_[l.var] = saved;
    else
      env_.erase(l.var);
  }

  void fast_loop(const Loop& l, long lb, long step, std::uint64_t trips,
                 bool sampling) {
    std::uint64_t t0 = 0;
    std::uint64_t stride_factor = 1;
    std::uint64_t kept = trips;
    if (sampling) {
      const auto k = static_cast<std::uint64_t>(opt_.sample_every);
      const std::uint64_t phase = unit_counter_ % k;
      t0 = phase == 0 ? 0 : k - phase;
      kept = trips > t0 ? (trips - t0 + k - 1) / k : 0;
      stride_factor = k;
      unit_counter_ += trips;
      stats_.units += trips;
      stats_.kept_units += kept;
    }
    if (kept == 0) return;

    // Two evaluations per reference pin its affine address progression.
    slot_scratch_.clear();
    env_[l.var] = lb + static_cast<long>(t0) * step;
    for (const StmtPtr& s : l.body)
      for (const Ref& r : refs_of(s->as_assign()))
        slot_scratch_.push_back(
            TraceEncoder::RefPattern{ref_addr(r), 0, r.is_write});
    if (kept > 1) {
      env_[l.var] = lb + static_cast<long>(t0 + 1) * step;
      std::size_t j = 0;
      for (const StmtPtr& s : l.body)
        for (const Ref& r : refs_of(s->as_assign())) {
          TraceEncoder::RefPattern& slot = slot_scratch_[j++];
          slot.stride = static_cast<std::int64_t>(
                            ref_addr(r) - slot.start_addr) *
                        static_cast<std::int64_t>(stride_factor);
        }
    }
    stats_.records += slot_scratch_.size() * kept;
    if (enc_) enc_->append_run_affine(slot_scratch_, kept);
  }
};

}  // namespace

SynthStats synthesize(const Program& p, const ir::Env& params,
                      TraceEncoder& enc, const SynthOptions& opt) {
  if (auto reason = synth_ineligible_reason(p))
    throw Error("synthesize: program is not synthesizable: " + *reason);
  return Synthesizer(p, params, &enc, opt).run();
}

std::uint64_t estimate_records(const Program& p, const ir::Env& params) {
  if (auto reason = synth_ineligible_reason(p))
    throw Error("estimate_records: program is not synthesizable: " + *reason);
  SynthOptions full;
  full.sample_every = 1;
  return Synthesizer(p, params, nullptr, full).run().records;
}

EncodedTrace synthesize_or_record(const Program& p, const ir::Env& params,
                                  std::uint64_t seed, const SynthOptions& opt,
                                  bool* used_synth, SynthStats* stats) {
  if (synth_eligible(p)) {
    EncodedTrace t;
    TraceEncoder enc(t);
    SynthStats st = Synthesizer(p, params, &enc, opt).run();
    enc.finish();
    if (used_synth) *used_synth = true;
    if (stats) *stats = st;
    return t;
  }
  if (used_synth) *used_synth = false;
  EncodedTrace t = record_trace(p, params, seed);
  if (stats) {
    *stats = SynthStats{};
    stats->records = t.records;
  }
  return t;
}

}  // namespace blk::trace
