// Affine trace synthesis: emit the VM's exact access trace straight from
// the IR, without executing any floating-point work.
//
// For the paper's kernels the access trace is a pure function of loop
// bounds and affine subscripts — the data never steers control flow.  So
// instead of running the VM for ~10^10 accesses on an N=2000 LU, walk the
// loop nest with an integer environment and emit each *innermost loop
// instance* as a single RUNA op (trace/format.hpp): per reference the
// address is affine in the loop variable, so two subscript evaluations
// yield (start, stride) exactly.  Cost is O(#inner-loop instances), about
// N^2 for a triply nested kernel, while the emitted trace is
// record-for-record identical to what Vm::run would have produced
// (synth_test pins this against the VM for every eligible kernel).
//
// Eligibility is static: no IF statements, no ArrayElem index reads, and
// every index expression closed over enclosing loop variables and
// parameters.  Data-dependent programs (pivoting LU, IF-guarded matmul)
// report a reason and fall back to VM recording (format.hpp's
// record_trace) — same format, slower producer.
//
// Sampling: with sample_every = k > 1, only every k-th *sample unit* is
// emitted.  A unit is one iteration of any loop at nesting depth
// `sample_depth` (0 = outermost); statements shallower than that are
// always emitted.  The unit counter is global across the program, so the
// kept subset — and therefore the sampled trace — is a deterministic
// function of (program, params, k, depth) alone.  Because kept iterations
// of an affine inner loop are themselves an arithmetic progression, a
// sampled instance is still one RUNA op with the stride scaled by k.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/program.hpp"
#include "trace/format.hpp"

namespace blk::trace {

struct SynthOptions {
  long sample_every = 1;  ///< keep every k-th sample unit (1 = everything)
  int sample_depth = 1;   ///< loop depth whose iterations are sample units
};

struct SynthStats {
  std::uint64_t records = 0;     ///< records emitted into the encoder
  std::uint64_t units = 0;       ///< sample units encountered
  std::uint64_t kept_units = 0;  ///< units actually emitted
};

/// Why `p` cannot be synthesized (nullopt = eligible).
[[nodiscard]] std::optional<std::string> synth_ineligible_reason(
    const ir::Program& p);

[[nodiscard]] inline bool synth_eligible(const ir::Program& p) {
  return !synth_ineligible_reason(p).has_value();
}

/// Emit the access trace of `p` under `params` into `enc` (caller owns
/// finish()).  Throws blk::Error if the program is ineligible — check
/// synth_eligible() first.  Array addresses come from interp::make_store,
/// so they match both execution engines exactly.
SynthStats synthesize(const ir::Program& p, const ir::Env& params,
                      TraceEncoder& enc, const SynthOptions& opt = {});

/// Predicted full-trace record count (what synthesize with sample_every=1
/// would emit), at O(#inner-loop instances) cost.  Used to auto-pick a
/// sampling rate before committing to a full synthesis.  Throws if
/// ineligible.
[[nodiscard]] std::uint64_t estimate_records(const ir::Program& p,
                                             const ir::Env& params);

/// synthesize() + finish() into a fresh trace, falling back to VM
/// recording (record_trace) when the program is ineligible.  `used_synth`
/// (optional out) reports which path ran.  Sampling options apply only to
/// the synthesis path; an ineligible program is recorded in full.
[[nodiscard]] EncodedTrace synthesize_or_record(const ir::Program& p,
                                                const ir::Env& params,
                                                std::uint64_t seed,
                                                const SynthOptions& opt = {},
                                                bool* used_synth = nullptr,
                                                SynthStats* stats = nullptr);

}  // namespace blk::trace
