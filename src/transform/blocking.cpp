// The simple driver pieces that live with the transform primitives.  The
// composite drivers (auto_block & friends) are implemented on the pass-
// manager layer in src/pm/drivers.cpp; their declarations stay in
// blocking.hpp so callers are unchanged.
#include "transform/blocking.hpp"

#include "ir/error.hpp"
#include "transform/instrument.hpp"
#include "transform/interchange.hpp"
#include "transform/stripmine.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;

Loop& strip_mine_and_interchange(Program& p, Loop& loop, IExprPtr block,
                                 const Assumptions* ctx) {
  Loop& strip = strip_mine(p, loop, std::move(block));
  sink_loop(p.body, strip, /*check=*/true, ctx);
  return strip;
}

void simplify_bounds_in(StmtList& body, Assumptions ctx) {
  for (auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign:
        break;
      case SKind::Loop: {
        Loop& l = s->as_loop();
        l.lb = simplify(ctx.resolve_minmax(l.lb));
        l.ub = simplify(ctx.resolve_minmax(l.ub));
        Assumptions inner = ctx;
        inner.add_loop_range(l);
        simplify_bounds_in(l.body, std::move(inner));
        break;
      }
      case SKind::If: {
        If& f = s->as_if();
        simplify_bounds_in(f.then_body, ctx);
        simplify_bounds_in(f.else_body, ctx);
        break;
      }
    }
  }
}

void simplify_all_bounds(StmtList& body, const Assumptions& hints) {
  PassScope scope("simplify-bounds", body);
  simplify_bounds_in(body, hints);
}

void normalize_loop(StmtList& root, Loop& loop, long origin) {
  PassScope scope("normalize", root);
  // var = var' + (lb - origin):  var' runs from origin to origin+(ub-lb).
  IExprPtr shift = simplify(isub(loop.lb, iconst(origin)));
  if (shift->kind == IKind::Const && shift->value == 0) return;
  substitute_index_in_list(loop.body, loop.var,
                           iadd(ivar(loop.var), shift));
  loop.ub = simplify(isub(loop.ub, shift));
  loop.lb = iconst(origin);
}

}  // namespace blk::transform
