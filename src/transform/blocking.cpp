#include "transform/blocking.hpp"

#include "ir/error.hpp"
#include "transform/ifinspect.hpp"
#include "transform/instrument.hpp"
#include "transform/interchange.hpp"
#include "transform/pattern.hpp"
#include "transform/scalarrepl.hpp"
#include "transform/split.hpp"
#include "transform/stripmine.hpp"
#include "transform/unrolljam.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;

Loop& strip_mine_and_interchange(Program& p, Loop& loop, IExprPtr block,
                                 const Assumptions* ctx) {
  Loop& strip = strip_mine(p, loop, std::move(block));
  sink_loop(p.body, strip, /*check=*/true, ctx);
  return strip;
}

namespace {

void simplify_bounds_rec(StmtList& body, Assumptions ctx) {
  for (auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign:
        break;
      case SKind::Loop: {
        Loop& l = s->as_loop();
        l.lb = simplify(ctx.resolve_minmax(l.lb));
        l.ub = simplify(ctx.resolve_minmax(l.ub));
        Assumptions inner = ctx;
        inner.add_loop_range(l);
        simplify_bounds_rec(l.body, std::move(inner));
        break;
      }
      case SKind::If: {
        If& f = s->as_if();
        simplify_bounds_rec(f.then_body, ctx);
        simplify_bounds_rec(f.else_body, ctx);
        break;
      }
    }
  }
}

}  // namespace

void simplify_all_bounds(StmtList& body, const Assumptions& hints) {
  PassScope scope("simplify-bounds", body);
  simplify_bounds_rec(body, hints);
}

AutoBlockResult auto_block(Program& p, Loop& loop, IExprPtr block,
                           const Assumptions& hints,
                           bool use_commutativity) {
  AutoBlockResult result;

  // 1. Strip-mine (with the MIN guard, so the result is exact for ragged
  //    trailing blocks).
  Loop& strip = strip_mine(p, loop, std::move(block));
  result.strip = &strip;

  // 2. Procedure IndexSetSplit against the strip loop's recurrences.  The
  //    hints (e.g. the full-block view K+BS-1 <= N-1) steer only *where*
  //    to split — splitting itself is unconditionally safe, so a hint that
  //    is false for the ragged final block cannot break correctness.
  SplitReport rep =
      index_set_split(p.body, strip, hints, use_commutativity);
  result.splits = rep.splits;
  if (!rep.distributable) return result;

  // 3. Distribute the strip loop over its dependence components.  The
  //    commutativity filter is rebuilt: splitting moved and cloned
  //    statements.  NOTE: legality here must not lean on the hints (they
  //    may be false on the ragged block); loop-range facts alone decide.
  IgnoreEdge ignore;
  if (use_commutativity) ignore = commutativity_filter(strip);
  result.pieces = distribute(p.body, strip, nullptr, ignore);
  result.blocked = result.pieces.size() > 1 || rep.distributable;
  // Distribution replaced the strip node; re-point at the surviving copy
  // (the first piece still carries the strip variable at its head).
  result.strip =
      result.pieces.empty() ? &strip : result.pieces.front();

  // 4. Sink the strip loop in every piece that forms a perfect nest.  The
  //    MIN/MAX bounds created by splitting are first resolved using only
  //    loop-range facts (always exact); e.g. MAX(KK+1, <split point>+1)
  //    resolves to the split-point side because KK never exceeds it.
  for (Loop* piece : result.pieces) {
    if (piece->body.size() != 1 || piece->body[0]->kind() != SKind::Loop)
      continue;  // the point-algorithm piece keeps the strip loop outside
    Assumptions ctx;
    for (Loop* outer : enclosing_loops(p.body, *piece))
      ctx.add_loop_range(*outer);
    ctx.add_loop_range(*piece);
    simplify_bounds_rec(piece->body, ctx);
    result.interchanges +=
        sink_loop(p.body, *piece, /*check=*/true, nullptr);
  }
  return result;
}

int register_block(Program& p, Loop& loop, long factor,
                   const Assumptions& hints) {
  // Jam: triangular when the immediate inner bound tracks the unrolled
  // variable with slope one, rectangular otherwise.
  bool triangular = false;
  if (loop.body.size() == 1 && loop.body[0]->kind() == SKind::Loop) {
    const Loop& inner = loop.body[0]->as_loop();
    if (auto f = as_affine(*inner.lb);
        f && f->coef_of(loop.var) == 1 && !mentions(*inner.ub, loop.var))
      triangular = true;
  }
  if (triangular)
    unroll_and_jam_triangular(p.body, loop, factor, &hints);
  else
    unroll_and_jam(p.body, loop, factor, &hints);

  // Scalar-replace the invariant references of every innermost loop the
  // jam produced (the unrolled accumulators).
  std::vector<Loop*> innermost;
  for_each_stmt(p.body, [&](Stmt& s) {
    if (s.kind() != SKind::Loop) return;
    Loop& l = s.as_loop();
    bool has_inner = false;
    for (const auto& c : l.body)
      if (c->kind() == SKind::Loop) has_inner = true;
    if (!has_inner) innermost.push_back(&l);
  });
  int replaced = 0;
  for (Loop* l : innermost)
    replaced += scalar_replace(p, p.body, *l, hints);
  return replaced;
}

AutoBlockResult auto_block_plus(Program& p, Loop& loop, IExprPtr block,
                                long unroll, const Assumptions& hints,
                                bool use_commutativity) {
  AutoBlockResult result =
      auto_block(p, loop, std::move(block), hints, use_commutativity);
  if (!result.blocked || unroll <= 1) return result;
  // Register-block the trailing pieces (the perfect nests the strip loop
  // sank into); the first piece keeps the point algorithm, as in Fig. 6.
  for (std::size_t i = 1; i < result.pieces.size(); ++i) {
    try {
      register_block(p, *result.pieces[i], unroll, hints);
    } catch (const Error&) {
      // An unjammable piece stays as derived; blocking already succeeded.
    }
  }
  return result;
}

ConvOptResult optimize_convolution(Program& p, long unroll,
                                   const Assumptions& hints) {
  if (p.body.empty() || p.body[0]->kind() != SKind::Loop)
    throw Error("optimize_convolution: expected an outer loop");
  ConvOptResult result;

  // 1. De-trapezoidalize.
  result.pieces = split_trapezoid_all(p.body, p.body[0]->as_loop());

  for (Loop* piece : result.pieces) {
    if (piece->body.size() != 1 || piece->body[0]->kind() != SKind::Loop)
      continue;
    Loop& inner = piece->body[0]->as_loop();
    // 2. Rhomboid (both inner bounds track the outer variable with the
    //    same slope): normalization makes it rectangular.
    auto flb = as_affine(*inner.lb);
    auto fub = as_affine(*inner.ub);
    if (flb && fub) {
      long a_lb = flb->coef_of(piece->var);
      long a_ub = fub->coef_of(piece->var);
      if (a_lb != 0 && a_lb == a_ub) {
        normalize_loop(p.body, inner);
        ++result.normalized;
      }
    }
    // 3. Register blocking: unroll-and-jam + scalar replacement.  A piece
    //    whose dependences or shape refuse stays as split.
    try {
      register_block(p, *piece, unroll, hints);
      ++result.jammed;
    } catch (const Error&) {
    }
  }
  return result;
}

GivensOptResult optimize_givens(Program& p) {
  if (p.body.empty() || p.body[0]->kind() != SKind::Loop)
    throw Error("optimize_givens: expected an outer column loop");
  Loop& l = p.body[0]->as_loop();
  if (l.body.size() != 1 || l.body[0]->kind() != SKind::Loop)
    throw Error("optimize_givens: expected the guarded row loop inside");
  Loop& j = l.body[0]->as_loop();

  // 1. Preparation + inspection (Fig. 10's first half).
  IfInspectResult insp = if_inspect_auto(p, p.body, j);

  GivensOptResult result;
  // 2. Sink the executor's row loop below the update loop: the executor
  //    (DO J = JLB(JN), JUB(JN)) perfectly nests the K update loop; two
  //    rectangular interchanges make K outermost of the JN/J pair.
  interchange(p.body, *insp.executor);
  interchange(p.body, *insp.range_loop);
  result.interchanges = 2;
  result.column_loop = insp.range_loop;  // now the K loop (in place)
  return result;
}

void normalize_loop(StmtList& root, Loop& loop, long origin) {
  PassScope scope("normalize", root);
  // var = var' + (lb - origin):  var' runs from origin to origin+(ub-lb).
  IExprPtr shift = simplify(isub(loop.lb, iconst(origin)));
  if (shift->kind == IKind::Const && shift->value == 0) return;
  substitute_index_in_list(loop.body, loop.var,
                           iadd(ivar(loop.var), shift));
  loop.ub = simplify(isub(loop.ub, shift));
  loop.lb = iconst(origin);
}

}  // namespace blk::transform
