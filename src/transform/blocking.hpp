// Blocking drivers: the end-to-end pipelines the paper's study runs.
#pragma once

#include <vector>

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "transform/distribute.hpp"

namespace blk::transform {

/// Simple strip-mine-and-interchange (§2.3): strip `loop` by `block` and
/// sink the strip loop as deep as dependences allow.  Returns the strip
/// (inner) loop.
ir::Loop& strip_mine_and_interchange(ir::Program& p, ir::Loop& loop,
                                     ir::IExprPtr block,
                                     const analysis::Assumptions* ctx =
                                         nullptr);

/// Resolve MIN/MAX in every loop bound under `body` using `hints` plus the
/// enclosing loops' range facts, and canonicalize.  With an empty `hints`
/// this is always semantics-preserving; driver hints (e.g. the full-block
/// assumption) may rewrite a ragged-edge bound into a form that is
/// equivalent only because out-of-range pieces iterate empty ranges — the
/// drivers that pass hints are validated end-to-end by the interpreter
/// equivalence suite.
void simplify_all_bounds(ir::StmtList& body,
                         const analysis::Assumptions& hints = {});

/// Uninstrumented core of simplify_all_bounds (no PassScope): resolve
/// MIN/MAX loop bounds under `ctx` plus inner loops' range facts.  Used by
/// the pass manager's interchange stage, which runs it per distributed
/// piece inside its own instrumentation.
void simplify_bounds_in(ir::StmtList& body, analysis::Assumptions ctx);

/// Outcome of the automatic blocking pipeline.
struct AutoBlockResult {
  bool blocked = false;        ///< distribution succeeded
  int splits = 0;              ///< index-set splits performed
  int interchanges = 0;        ///< loops the strip variable sank past
  ir::Loop* strip = nullptr;   ///< the strip (KK) loop of the first nest
                               ///< (pieces.front() once distribution ran)
  std::vector<ir::Loop*> pieces;  ///< distributed strip loops, in order
};

/// The paper's §5.1 pipeline, fully automatic:
///
///   1. strip-mine `loop` by `block`                          (K -> K, KK)
///   2. Procedure IndexSetSplit on the strip loop             (split J)
///   3. distribute the strip loop                             (SCC order)
///   4. in every distributed piece that is a perfect nest, resolve MIN/MAX
///      bounds and sink the strip loop inward (triangular interchange)
///
/// `hints` guides the section analysis (e.g. K+BS-1 <= N-1, the full-block
/// view); `use_commutativity` arms the §5.2 pattern matcher so dependences
/// between recognized row interchanges and whole-column updates are
/// discounted during splitting and distribution.  Deriving block LU
/// without pivoting needs only hints; with partial pivoting it needs the
/// commutativity knowledge too.
AutoBlockResult auto_block(ir::Program& p, ir::Loop& loop,
                           ir::IExprPtr block,
                           const analysis::Assumptions& hints = {},
                           bool use_commutativity = false);

/// Normalize `loop` to run from `origin` upward: substitutes
/// var = var' + (lb - origin) so the new lower bound is `origin`.
/// Rhomboidal iteration spaces (convolutions) become rectangular this way,
/// after which plain unroll-and-jam applies.
void normalize_loop(ir::StmtList& root, ir::Loop& loop, long origin = 0);

/// Register blocking (the "+" of the paper's "2+"/"1+" variants): apply
/// unroll-and-jam to `loop` (rectangular or triangular as its shape
/// demands) and then scalar-replace the invariant references of every
/// innermost loop underneath.  Legality is checked; throws blk::Error if
/// the jam is unsafe.  Returns the number of scalar groups replaced.
int register_block(ir::Program& p, ir::Loop& loop, long factor,
                   const analysis::Assumptions& hints = {});

/// auto_block + register_block in one driver: the §5.1 pipeline taken all
/// the way to the paper's "2+" — the trailing-update nest's column loop is
/// unroll-and-jammed by the machine model's factor and the A(I,J)
/// accumulators are scalar-replaced.  `unroll` <= 1 selects jam-off
/// (plain auto_block).
AutoBlockResult auto_block_plus(ir::Program& p, ir::Loop& loop,
                                ir::IExprPtr block, long unroll,
                                const analysis::Assumptions& hints = {},
                                bool use_commutativity = false);

/// Outcome of the §3.2 driver.
struct ConvOptResult {
  std::vector<ir::Loop*> pieces;  ///< outer loops after trapezoid splitting
  int normalized = 0;             ///< rhomboidal pieces made rectangular
  int jammed = 0;                 ///< pieces register-blocked
};

/// The §3.2 pipeline, fully automatic, for a trapezoidal reduction like
/// the seismic convolutions (an outer loop over an inner loop whose
/// MIN/MAX bounds cross):
///
///   1. index-set split the outer loop at every MIN/MAX crossover
///      (split_trapezoid_all) — rectangular, triangular and rhomboidal
///      pieces fall out;
///   2. normalize rhomboidal pieces (both inner bounds tracking the outer
///      variable) so the inner loop becomes rectangular;
///   3. register-block each piece (unroll-and-jam by `unroll`, triangular
///      where the shape demands, then scalar replacement of the invariant
///      accumulators).  Unjammable pieces are left split-but-unjammed.
ConvOptResult optimize_convolution(ir::Program& p, long unroll = 4,
                                   const analysis::Assumptions& hints = {});

/// Outcome of the §5.4 driver.
struct GivensOptResult {
  ir::Loop* column_loop = nullptr;  ///< the new K-outermost update loop
  int interchanges = 0;
};

/// The paper's §5.4 pipeline, fully automatic, applied to a Fig. 9-shaped
/// program (an L loop over a guarded J loop whose guarded body ends with
/// the K update loop):
///
///   1. if_inspect_auto on the J loop — scalar-expands the rotation
///      coefficients, index-set splits K at the recurrence boundary
///      (K = L), and installs the inspector/executor pair;
///   2. interchanges the executor nest until the K update loop is
///      outermost (giving stride-one column traversal) — Fig. 10.
GivensOptResult optimize_givens(ir::Program& p);

}  // namespace blk::transform
