#include "transform/distribute.hpp"

#include <algorithm>
#include <map>

#include "analysis/manager.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::DepGraph;

std::vector<Loop*> distribute(StmtList& root, Loop& loop,
                              const analysis::Assumptions* ctx,
                              const IgnoreEdge& ignore) {
  PassScope scope("distribute", root);
  analysis::DepGraphPtr g = analysis::dep_graph_for(root, loop, ctx);
  std::vector<std::vector<std::size_t>> groups = g->components(ignore);

  if (groups.size() <= 1) return {&loop};

  // Stability guard: a distribution must not reorder statements connected
  // by dependences; topological component order guarantees that.  Also
  // keep the original textual order within each group (node indices are
  // body positions).
  for (auto& gp : groups) std::sort(gp.begin(), gp.end());

  // Find the loop in its parent list.
  LoopLocation loc = find_loop(root, loop.var);
  // find_loop finds the first loop with this name; ensure identity.
  if (loc.loop != &loop) {
    // Search exhaustively: walk all loops with this var.
    // (Occurs after splitting created same-named siblings.)
    struct Finder {
      Loop* target;
      LoopLocation found;
      void walk(StmtList& body) {
        for (std::size_t i = 0; i < body.size(); ++i) {
          Stmt& s = *body[i];
          if (s.kind() == SKind::Loop) {
            Loop& l = s.as_loop();
            if (&l == target) {
              found = {.parent = &body, .index = i, .loop = &l};
              return;
            }
            walk(l.body);
          } else if (s.kind() == SKind::If) {
            walk(s.as_if().then_body);
            walk(s.as_if().else_body);
          }
          if (found.loop) return;
        }
      }
    } finder{.target = &loop, .found = {}};
    finder.walk(root);
    loc = finder.found;
  }
  if (!loc) throw Error("distribute: loop not found in tree");

  // Build one loop per group, in order.
  std::vector<StmtPtr> pieces;
  std::vector<Loop*> out;
  for (const auto& gp : groups) {
    StmtList body;
    for (std::size_t node : gp) {
      if (!loop.body[node])
        throw Error("distribute: node claimed twice");
      body.push_back(std::move(loop.body[node]));
    }
    StmtPtr l = make_loop(loop.var, loop.lb, loop.ub, std::move(body),
                          loop.step);
    out.push_back(&l->as_loop());
    pieces.push_back(std::move(l));
  }

  // Replace the original loop by the pieces.
  StmtList& parent = *loc.parent;
  parent.erase(parent.begin() + static_cast<long>(loc.index));
  parent.insert(parent.begin() + static_cast<long>(loc.index),
                std::make_move_iterator(pieces.begin()),
                std::make_move_iterator(pieces.end()));
  return out;
}

}  // namespace blk::transform
