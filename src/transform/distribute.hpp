// Loop distribution (loop fission).
#pragma once

#include <functional>
#include <vector>

#include "analysis/depgraph.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Predicate deciding whether a recurrence edge may be ignored for
/// distribution.  Used by the commutativity machinery of §5.2: dependences
/// between a row-interchange and a whole-column update are semantically
/// ignorable even though data dependence forbids them.
using IgnoreEdge = analysis::DepGraph::EdgeFilter;

/// Distribute `loop` into one loop per strongly connected component of its
/// body's dependence graph, in topological order.  Components that are
/// adjacent and carry no edge between them are still separated (maximal
/// distribution); callers wanting fusion can refuse.
///
/// Returns pointers to the new loops, in execution order.  When the body
/// is a single component, the loop is left untouched and returned alone.
///
/// `ignore` (optional) removes specific edges from the graph before the
/// SCC computation — the hook for commutativity knowledge.
std::vector<ir::Loop*> distribute(ir::StmtList& root, ir::Loop& loop,
                                  const analysis::Assumptions* ctx = nullptr,
                                  const IgnoreEdge& ignore = {});

}  // namespace blk::transform
