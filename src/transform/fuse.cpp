#include "transform/fuse.hpp"

#include <algorithm>
#include <set>

#include "analysis/ddtest.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;

namespace {

LoopLocation locate(StmtList& root, const Loop& loop) {
  struct Finder {
    const Loop* target;
    LoopLocation found;
    void walk(StmtList& body) {
      for (std::size_t i = 0; i < body.size() && !found.loop; ++i) {
        Stmt& s = *body[i];
        if (s.kind() == SKind::Loop) {
          Loop& l = s.as_loop();
          if (&l == target) {
            found = {.parent = &body, .index = i, .loop = &l};
            return;
          }
          walk(l.body);
        } else if (s.kind() == SKind::If) {
          walk(s.as_if().then_body);
          walk(s.as_if().else_body);
        }
      }
    }
  } finder{.target = &loop, .found = {}};
  finder.walk(root);
  if (!finder.found) throw Error("fuse: loop not found in tree");
  return finder.found;
}

void collect_subtree(const Stmt& s, std::set<const Stmt*>& out) {
  out.insert(&s);
  switch (s.kind()) {
    case SKind::Assign:
      return;
    case SKind::Loop:
      for (const auto& c : s.as_loop().body) collect_subtree(*c, out);
      return;
    case SKind::If:
      for (const auto& c : s.as_if().then_body) collect_subtree(*c, out);
      for (const auto& c : s.as_if().else_body) collect_subtree(*c, out);
      return;
  }
}

}  // namespace

Loop& fuse(StmtList& root, Loop& first, bool check,
           const Assumptions* ctx) {
  PassScope scope("fuse", root);
  LoopLocation loc = locate(root, first);
  StmtList& parent = *loc.parent;
  if (loc.index + 1 >= parent.size() ||
      parent[loc.index + 1]->kind() != SKind::Loop)
    throw Error("fuse: no loop follows " + first.var);
  Loop& second = parent[loc.index + 1]->as_loop();

  if (!provably_equal(first.lb, second.lb) ||
      !provably_equal(first.ub, second.ub) ||
      !provably_equal(first.step, second.step))
    throw Error("fuse: headers of " + first.var + " and " + second.var +
                " are not provably identical");

  // Trial-fuse: rename the second body onto the first variable and append.
  const std::size_t first_count = first.body.size();
  if (second.var != first.var)
    substitute_index_in_list(second.body, second.var, ivar(first.var));
  for (auto& s : second.body) first.body.push_back(std::move(s));
  parent.erase(parent.begin() + static_cast<long>(loc.index) + 1);

  if (check) {
    // Any carried dependence from a (formerly) second-body statement into
    // a first-body statement reverses an original ordering: all of body1
    // ran before any of body2 prior to fusion.
    std::set<const Stmt*> g1;
    for (std::size_t i = 0; i < first_count; ++i)
      collect_subtree(*first.body[i], g1);
    auto level_of = [&](const analysis::RefInfo& r)
        -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < r.loops.size(); ++i)
        if (r.loops[i] == &first) return i;
      return std::nullopt;
    };
    for (const auto& d : analysis::all_dependences(root, {.ctx = ctx})) {
      if (!d.src.owner || !d.dst.owner) continue;
      bool src_in_g2 = !g1.contains(d.src.owner);
      bool dst_in_g1 = g1.contains(d.dst.owner);
      if (!src_in_g2 || !dst_in_g1) continue;
      auto lvl = level_of(d.src);
      if (lvl && d.carried_at(*lvl)) {
        // Undo the fusion before reporting.
        StmtList tail;
        for (std::size_t i = first_count; i < first.body.size(); ++i)
          tail.push_back(std::move(first.body[i]));
        first.body.resize(first_count);
        StmtPtr restored = make_loop(first.var, first.lb, first.ub,
                                     std::move(tail), first.step);
        parent.insert(parent.begin() + static_cast<long>(loc.index) + 1,
                      std::move(restored));
        throw Error("fuse: dependence forbids fusing " + first.var + " (" +
                    d.to_string() + ")");
      }
    }
  }
  return first;
}

void reverse_loop(StmtList& root, Loop& loop, bool check,
                  const Assumptions* ctx) {
  PassScope scope("reverse", root);
  if (check) {
    auto deps = analysis::all_dependences(root, {.ctx = ctx});
    for (const auto& d : deps) {
      std::size_t depth = d.src.common_depth(d.dst);
      for (std::size_t i = 0; i < depth; ++i) {
        if (d.src.loops[i] != &loop) continue;
        if (d.carried_at(i))
          throw Error("reverse_loop: " + loop.var +
                      " carries a dependence (" + d.to_string() + ")");
      }
    }
  }
  std::swap(loop.lb, loop.ub);
  loop.step = simplify(isub(iconst(0), loop.step));
}

}  // namespace blk::transform
