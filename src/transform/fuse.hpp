// Loop fusion (the inverse of distribution) and loop reversal — the two
// classical transformations that round out the catalogue: maximal
// distribution followed by selective fusion is the standard way to
// re-group statements after index-set splitting.
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Fuse `first` with the loop immediately following it in the same
/// statement list.  The headers must be provably identical (lower bound,
/// upper bound, step); the second loop's body is renamed to the first's
/// variable and appended.
///
/// Legality: fusion is illegal when a dependence from the first body to
/// the second would become *backward-carried* — i.e. the second loop's
/// iteration i consumes what the first produces at some later iteration
/// j > i.  Such dependences surface after trial fusion as carried edges
/// from second-body statements to first-body statements; `check` verifies
/// none exist (and undoes the trial when they do, throwing blk::Error).
///
/// Returns the fused loop (the `first` node, grown).
ir::Loop& fuse(ir::StmtList& root, ir::Loop& first, bool check = true,
               const analysis::Assumptions* ctx = nullptr);

/// Reverse `loop` (DO I = lb, ub  ->  DO I = ub, lb, -1).  Legal only when
/// the loop carries no dependence (every dependence at its level is
/// loop-independent); `check` enforces that.
void reverse_loop(ir::StmtList& root, ir::Loop& loop, bool check = true,
                  const analysis::Assumptions* ctx = nullptr);

}  // namespace blk::transform
