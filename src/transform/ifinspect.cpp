#include "transform/ifinspect.hpp"

#include <algorithm>
#include <set>

#include "analysis/ddtest.hpp"
#include "analysis/manager.hpp"
#include "ir/affine.hpp"
#include "analysis/sections.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"
#include "transform/scalarrepl.hpp"
#include "transform/split.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::RefInfo;

namespace {

LoopLocation locate(StmtList& root, const Loop& loop) {
  struct Finder {
    const Loop* target;
    LoopLocation found;
    void walk(StmtList& body) {
      for (std::size_t i = 0; i < body.size() && !found.loop; ++i) {
        Stmt& s = *body[i];
        if (s.kind() == SKind::Loop) {
          Loop& l = s.as_loop();
          if (&l == target) {
            found = {.parent = &body, .index = i, .loop = &l};
            return;
          }
          walk(l.body);
        } else if (s.kind() == SKind::If) {
          walk(s.as_if().then_body);
          walk(s.as_if().else_body);
        }
      }
    }
  } finder{.target = &loop, .found = {}};
  finder.walk(root);
  if (!finder.found) throw Error("if_inspect: loop not found in tree");
  return finder.found;
}

/// Is `target` the statement `s` or inside it?
bool contains_stmt(const Stmt& s, const Stmt* target) {
  if (&s == target) return true;
  switch (s.kind()) {
    case SKind::Assign:
      return false;
    case SKind::Loop:
      for (const auto& c : s.as_loop().body)
        if (contains_stmt(*c, target)) return true;
      return false;
    case SKind::If:
      for (const auto& c : s.as_if().then_body)
        if (contains_stmt(*c, target)) return true;
      for (const auto& c : s.as_if().else_body)
        if (contains_stmt(*c, target)) return true;
      return false;
  }
  return false;
}

}  // namespace

namespace {

/// Dependences carried by `loop` from inside `work_stmt` back into the
/// retained (guard/prep) region — the ones that make IF-inspection
/// illegal.
std::vector<analysis::Dependence> blocking_deps(StmtList& root, Loop& loop,
                                                const Stmt* work_stmt) {
  std::vector<analysis::Dependence> out;
  std::vector<RefInfo> refs = analysis::collect_refs(root);
  auto in_work = [&](const RefInfo& r) {
    return r.owner && contains_stmt(*work_stmt, r.owner);
  };
  auto in_this_loop = [&](const RefInfo& r) {
    return std::find(r.loops.begin(), r.loops.end(), &loop) != r.loops.end();
  };
  auto level_of = [&](const RefInfo& r) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < r.loops.size(); ++i)
      if (r.loops[i] == &loop) return i;
    return std::nullopt;
  };
  for (const RefInfo& a : refs) {
    if (!in_this_loop(a) || !in_work(a)) continue;
    for (const RefInfo& b : refs) {
      if (!in_this_loop(b) || in_work(b)) continue;
      if (a.array != b.array || (!a.is_write && !b.is_write)) continue;
      for (auto& dep : analysis::test_pair(a, b)) {
        if (!in_work(dep.src) || in_work(dep.dst)) continue;
        auto lvl = level_of(dep.src);
        if (lvl && dep.carried_at(*lvl)) out.push_back(std::move(dep));
      }
    }
  }
  return out;
}

}  // namespace

IfInspectResult if_inspect_auto(Program& p, StmtList& root, Loop& loop) {
  PassScope scope("if-inspect-auto", root);
  if (loop.body.size() != 1 || loop.body[0]->kind() != SKind::If)
    throw Error("if_inspect_auto: loop " + loop.var +
                " body must be a single guarded IF");
  If& guard = loop.body[0]->as_if();
  if (guard.then_body.empty() ||
      guard.then_body.back()->kind() != SKind::Loop)
    throw Error("if_inspect_auto: guarded body must end with a work loop");

  // 1. Scalar expansion: scalars defined in the prefix and consumed by the
  //    work loop would be stale once the work is delayed.
  {
    const Stmt* work = guard.then_body.back().get();
    std::vector<RefInfo> refs = analysis::collect_refs(loop.body);
    std::set<std::string> written_outside, read_inside;
    for (const RefInfo& r : refs) {
      if (!r.is_scalar()) continue;
      bool in_work = r.owner && contains_stmt(*work, r.owner);
      if (r.is_write && !in_work) written_outside.insert(r.array);
      if (!r.is_write && in_work) read_inside.insert(r.array);
    }
    for (const std::string& name : written_outside)
      if (read_inside.contains(name) && p.has_scalar(name))
        scalar_expand(p, root, loop, name);
  }

  // 2. Recurrence confinement: split the work's inner loops so the part
  //    that feeds later guard iterations stays in the guard region.
  for (int iter = 0; iter < 4; ++iter) {
    Stmt* work = guard.then_body.back().get();
    auto offenders = blocking_deps(root, loop, work);
    if (offenders.empty()) break;
    bool progressed = false;
    for (const auto& dep : offenders) {
      if (dep.src.is_scalar() || dep.dst.is_scalar()) continue;
      analysis::Assumptions ctx;
      for (Loop* outer : enclosing_loops(root, loop))
        ctx.add_loop_range(*outer);
      analysis::Section s_src = analysis::section_within_for(dep.src, loop);
      analysis::Section s_dst = analysis::section_within_for(dep.dst, loop);
      for (const auto& cand :
           analysis::split_boundaries(s_src, s_dst, ctx)) {
        // Only split loops that live inside the work statement.
        const RefInfo& victim = cand.split_b ? dep.dst : dep.src;
        auto fa = as_affine(*victim.subs[cand.dim]);
        if (!fa) continue;
        Loop* target = nullptr;
        long alpha = 0;
        for (Loop* l : victim.loops) {
          long k = fa->coef_of(l->var);
          if (k != 0 && contains_stmt(*work, l)) {
            if (target) {
              target = nullptr;
              break;
            }
            target = l;
            alpha = k;
          }
        }
        if (!target || std::abs(alpha) != 1) continue;
        Affine beta = *fa - Affine::variable(target->var, alpha);
        IExprPtr point =
            alpha == 1 ? isub(cand.boundary, from_affine(beta))
                       : isub(from_affine(beta), cand.boundary);
        split_at(root, *target, simplify(point));
        progressed = true;
        break;
      }
      if (progressed) break;
    }
    if (!progressed) break;
  }

  // 3. Privatize per-iteration temporaries: a scalar written both in the
  //    retained piece and in the work (A1/A2 after the K split) carries
  //    false output/anti dependences.  When the work's first access is an
  //    unconditional write the scalar is dead on entry there, so renaming
  //    the work's copy is semantics-preserving.
  {
    Stmt* work = guard.then_body.back().get();
    std::vector<RefInfo> refs = analysis::collect_refs(loop.body);
    std::set<std::string> outside_writes;
    for (const RefInfo& r : refs)
      if (r.is_scalar() && r.is_write &&
          !(r.owner && contains_stmt(*work, r.owner)))
        outside_writes.insert(r.array);

    std::vector<RefInfo> wrefs = analysis::collect_refs(
        work->as_loop().body);
    std::set<std::string> handled;
    for (const RefInfo& r : wrefs) {
      if (!r.is_scalar() || !outside_writes.contains(r.array) ||
          handled.contains(r.array))
        continue;
      handled.insert(r.array);
      // First textual access must be a write owned by a plain assignment
      // (not guarded by an inner IF).
      const RefInfo* first = nullptr;
      for (const RefInfo& q : wrefs)
        if (q.array == r.array && (!first ||
                                   q.textual_pos < first->textual_pos ||
                                   (q.textual_pos == first->textual_pos &&
                                    !q.is_write)))
          first = &q;
      if (!first || !first->is_write) continue;
      bool guarded = false;
      for_each_stmt(work->as_loop().body, [&](Stmt& s) {
        if (s.kind() == SKind::If)
          for (const auto& c : s.as_if().then_body)
            if (c.get() == first->owner) guarded = true;
      });
      if (guarded) continue;
      // Rename throughout the work subtree.
      std::string fresh = r.array + "P";
      while (p.has_scalar(fresh) || p.has_array(fresh)) fresh += "P";
      p.scalar(fresh);
      std::function<void(StmtList&)> rename = [&](StmtList& body) {
        for (auto& s : body) {
          switch (s->kind()) {
            case SKind::Assign: {
              Assign& a2 = s->as_assign();
              a2.rhs = substitute_scalar(a2.rhs, r.array, vscalar(fresh));
              if (!a2.lhs.is_array() && a2.lhs.name == r.array)
                a2.lhs.name = fresh;
              break;
            }
            case SKind::Loop:
              rename(s->as_loop().body);
              break;
            case SKind::If: {
              If& f = s->as_if();
              f.cond.lhs = substitute_scalar(f.cond.lhs, r.array,
                                             vscalar(fresh));
              f.cond.rhs = substitute_scalar(f.cond.rhs, r.array,
                                             vscalar(fresh));
              rename(f.then_body);
              rename(f.else_body);
              break;
            }
          }
        }
      };
      rename(work->as_loop().body);
    }
  }

  // 4. The instrumented transformation proper (re-checks legality).
  return if_inspect(p, root, loop);
}

IfInspectResult if_inspect(Program& p, StmtList& root, Loop& loop) {
  PassScope scope("if-inspect", root);
  if (loop.body.size() != 1 || loop.body[0]->kind() != SKind::If)
    throw Error("if_inspect: loop " + loop.var +
                " body must be a single guarded IF");
  If& guard = loop.body[0]->as_if();
  if (!guard.else_body.empty())
    throw Error("if_inspect: guard must have no ELSE branch");
  if (guard.then_body.empty() ||
      guard.then_body.back()->kind() != SKind::Loop)
    throw Error(
        "if_inspect: the guarded body must end with the work loop to be "
        "extracted");

  Stmt* work_stmt = guard.then_body.back().get();

  // Legality: moving all work instances after the whole inspector loop must
  // not reverse a dependence from the work into the guard or the retained
  // statements, and the work must not change the guard's own inputs.
  {
    std::vector<RefInfo> refs = analysis::collect_refs(root);
    auto in_work = [&](const RefInfo& r) {
      return r.owner && contains_stmt(*work_stmt, r.owner);
    };
    auto in_this_loop = [&](const RefInfo& r) {
      return std::find(r.loops.begin(), r.loops.end(), &loop) !=
             r.loops.end();
    };
    auto level_of = [&](const RefInfo& r) -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < r.loops.size(); ++i)
        if (r.loops[i] == &loop) return i;
      return std::nullopt;
    };
    for (const RefInfo& a : refs) {
      if (!in_this_loop(a) || !in_work(a)) continue;
      for (const RefInfo& b : refs) {
        if (!in_this_loop(b) || in_work(b)) continue;
        if (a.array != b.array || (!a.is_write && !b.is_write)) continue;
        for (const auto& dep : analysis::test_pair(a, b)) {
          // A dependence whose source is inside the work and whose sink is
          // a retained statement is reversed by the move exactly when it
          // is carried by the inspected loop itself: only then does a
          // later iteration's guard/prep consume what the delayed work
          // produces.  Dependences carried by outer loops are unaffected
          // (the whole inspector+executor pair stays inside them).
          if (!in_work(dep.src) || in_work(dep.dst)) continue;
          auto lvl = level_of(dep.src);
          if (lvl && dep.carried_at(*lvl))
            throw Error(
                "if_inspect: dependence from the work loop back into the "
                "guard region forbids inspection (" + dep.to_string() + ")");
        }
      }
    }
  }

  const std::string& v = loop.var;
  std::string lb_arr = v + "LB";
  std::string ub_arr = v + "UB";
  std::string counter = v + "C";
  std::string range_var = v + "N";
  std::string flag = "FLAG";
  while (p.has_scalar(flag) || p.has_array(flag)) flag += "F";

  // Dimension the range arrays by the loop's worst-case trip count.
  std::vector<Loop*> outer = enclosing_loops(root, loop);
  std::span<Loop* const> outer_span(outer.data(), outer.size());
  IExprPtr trip =
      analysis::sweep_extreme(iadd(isub(loop.ub, loop.lb), iconst(2)),
                              outer_span, /*lower=*/false);
  if (!trip)
    throw Error("if_inspect: cannot bound the trip count of " + v);
  p.array_bounds(lb_arr, {{.lb = iconst(1), .ub = trip}});
  p.array_bounds(ub_arr, {{.lb = iconst(1), .ub = trip}});
  p.scalar(counter);
  p.scalar(flag);

  auto scal = [](const std::string& n) { return vscalar(n); };
  auto record_true = [&]() {
    // IF (FLAG .EQ. 0) THEN KC=KC+1; KLB(KC)=K; FLAG=1
    StmtList body;
    body.push_back(make_assign({.name = counter, .subs = {}},
                               vadd(scal(counter), vconst(1.0))));
    body.push_back(make_assign({.name = lb_arr, .subs = {ivar(counter)}},
                               vindex(ivar(v))));
    body.push_back(make_assign({.name = flag, .subs = {}}, vconst(1.0)));
    return make_if({.lhs = scal(flag), .op = CmpOp::EQ, .rhs = vconst(0.0)},
                   std::move(body));
  };
  auto record_false = [&]() {
    // IF (FLAG .NE. 0) THEN KUB(KC)=K-1; FLAG=0
    StmtList body;
    body.push_back(make_assign({.name = ub_arr, .subs = {ivar(counter)}},
                               vindex(isub(ivar(v), iconst(1)))));
    body.push_back(make_assign({.name = flag, .subs = {}}, vconst(0.0)));
    return make_if({.lhs = scal(flag), .op = CmpOp::NE, .rhs = vconst(0.0)},
                   std::move(body));
  };

  // Extract the work loop, then instrument the guard.
  StmtPtr work = std::move(guard.then_body.back());
  guard.then_body.pop_back();
  guard.then_body.push_back(record_true());
  guard.else_body.push_back(record_false());

  LoopLocation loc = locate(root, loop);
  StmtList& parent = *loc.parent;
  std::size_t idx = loc.index;

  // KC = 0 ; FLAG = 0 before the inspector.
  parent.insert(parent.begin() + static_cast<long>(idx),
                make_assign({.name = counter, .subs = {}}, vconst(0.0)));
  parent.insert(parent.begin() + static_cast<long>(idx) + 1,
                make_assign({.name = flag, .subs = {}}, vconst(0.0)));
  idx += 2;  // inspector loop position

  // Close the last open range after the inspector.
  {
    StmtList body;
    body.push_back(make_assign({.name = ub_arr, .subs = {ivar(counter)}},
                               vindex(loop.ub)));
    body.push_back(make_assign({.name = flag, .subs = {}}, vconst(0.0)));
    parent.insert(
        parent.begin() + static_cast<long>(idx) + 1,
        make_if({.lhs = scal(flag), .op = CmpOp::NE, .rhs = vconst(0.0)},
                std::move(body)));
  }

  // Executor: DO KN = 1, KC / DO K = KLB(KN), KUB(KN) / <work>.
  StmtList exec_k_body;
  exec_k_body.push_back(std::move(work));
  StmtPtr exec_k =
      make_loop(v, ielem(lb_arr, ivar(range_var)),
                ielem(ub_arr, ivar(range_var)), std::move(exec_k_body));
  Loop* exec_k_ptr = &exec_k->as_loop();
  StmtList exec_body;
  exec_body.push_back(std::move(exec_k));
  StmtPtr range_loop =
      make_loop(range_var, iconst(1), ivar(counter), std::move(exec_body));
  Loop* range_ptr = &range_loop->as_loop();
  parent.insert(parent.begin() + static_cast<long>(idx) + 2,
                std::move(range_loop));
  p.note_var(range_var);

  return {.inspector = &loop, .range_loop = range_ptr,
          .executor = exec_k_ptr};
}

}  // namespace blk::transform
