// IF-inspection (§4): an inspector/executor transformation that records, at
// run time, the ranges of an outer loop for which a guard holds, then runs
// the guarded work over just those ranges — keeping the guard out of the
// innermost loop so unroll-and-jam stays legal and profitable.
#pragma once

#include "ir/program.hpp"

namespace blk::transform {

/// Result handles after IF-inspection.
struct IfInspectResult {
  ir::Loop* inspector = nullptr;  ///< the loop that records ranges
  ir::Loop* range_loop = nullptr; ///< DO KN = 1, KC over recorded ranges
  ir::Loop* executor = nullptr;   ///< DO K = KLB(KN), KUB(KN) work loop
};

/// Transform
///
///   DO K = lb, ub
///     IF (cond) THEN
///       <work>
///
/// into the paper's Fig. 4 shape:
///
///   KC = 0 ; FLAG = false
///   DO K = lb, ub                 ! inspector
///     IF (cond) THEN
///       IF (.NOT. FLAG) THEN  KC = KC+1 ; KLB(KC) = K ; FLAG = .TRUE.
///     ELSE
///       IF (FLAG) THEN  KUB(KC) = K-1 ; FLAG = .FALSE.
///   IF (FLAG) THEN  KUB(KC) = ub ; FLAG = .FALSE.
///   DO KN = 1, KC                 ! executor
///     DO K = KLB(KN), KUB(KN)
///       <work>
///
/// `loop`'s body must be exactly one IF with no ELSE branch.  The guard
/// condition must not be affected by <work> (the transformation checks that
/// no array or scalar read by the condition is written by the body).  KLB,
/// KUB, KC and FLAG are created fresh; the integer-valued scalars are legal
/// subscripts for the interpreter.  `max_ranges` dimensions the KLB/KUB
/// arrays (defaults to the loop trip count bound).
IfInspectResult if_inspect(ir::Program& p, ir::StmtList& root,
                           ir::Loop& loop);

/// IF-inspection with automatic preparation — the §5.4 Givens recipe:
///
///   1. every scalar written in the guarded prefix and read by the work
///      loop is scalar-expanded over `loop` (C, S -> CX(J), SX(J));
///   2. while a dependence carried by `loop` still runs from the work back
///      into the guard region, the offending reference's inner loop is
///      index-set split at the section boundary (the K = L split of
///      Fig. 10), confining the recurrence to the retained piece;
///   3. plain if_inspect runs on the prepared loop.
///
/// Throws blk::Error when preparation cannot reach a legal state.
IfInspectResult if_inspect_auto(ir::Program& p, ir::StmtList& root,
                                ir::Loop& loop);

}  // namespace blk::transform
