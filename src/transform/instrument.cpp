#include "transform/instrument.hpp"

#include <algorithm>
#include <exception>
#include <vector>

#include "analysis/manager.hpp"

namespace blk::transform {

namespace {
// One observer stack per thread: fuzzer campaigns install a
// VerifiedPipeline per seed from a thread pool and must not see (or
// clobber) each other's observers.
thread_local std::vector<PassObserver*> t_observers;
// Nestable mute count: while non-zero, new PassScopes skip observers.
thread_local int t_mute = 0;
}  // namespace

ObserverMute::ObserverMute() { ++t_mute; }
ObserverMute::~ObserverMute() { --t_mute; }

bool pass_observers_muted() { return t_mute > 0; }

PassObserver* set_pass_observer(PassObserver* obs) {
  PassObserver* prev = t_observers.empty() ? nullptr : t_observers.back();
  if (obs == nullptr) {
    t_observers.clear();
    return prev;
  }
  // Restoring a pointer already on the stack pops down to it (the RAII
  // uninstall path); anything new pushes.
  auto it = std::find(t_observers.begin(), t_observers.end(), obs);
  if (it != t_observers.end())
    t_observers.erase(it + 1, t_observers.end());
  else
    t_observers.push_back(obs);
  return prev;
}

PassObserver* pass_observer() {
  return t_observers.empty() ? nullptr : t_observers.back();
}

std::size_t pass_observer_depth() { return t_observers.size(); }

PassScope::PassScope(std::string_view name, ir::StmtList& root)
    : name_(name),
      root_(root),
      uncaught_(std::uncaught_exceptions()),
      // A muted scope captures depth 0: no before callbacks now, no after
      // callbacks in the destructor — but notify_pass_end still fires.
      depth_(t_mute > 0 ? 0 : t_observers.size()) {
  for (std::size_t i = 0; i < depth_; ++i)
    t_observers[i]->before_pass(name_, root_);
}

PassScope::~PassScope() {
  // The pass committed iff no new exception is in flight relative to
  // construction time (legality refusals throw after undoing trials).
  bool committed = std::uncaught_exceptions() == uncaught_;
  // Whatever happened, the tree may have been rewritten (trial undos
  // restore *values*, not node identities): cached analyses go stale.
  analysis::notify_pass_end(name_, committed);
  // Observers that joined mid-pass never saw `before`; skip their `after`.
  std::size_t n = std::min(depth_, t_observers.size());
  for (std::size_t i = n; i-- > 0;)
    t_observers[i]->after_pass(name_, root_, committed);
}

}  // namespace blk::transform
