#include "transform/instrument.hpp"

#include <exception>

namespace blk::transform {

namespace {
PassObserver* g_observer = nullptr;
}  // namespace

PassObserver* set_pass_observer(PassObserver* obs) {
  PassObserver* prev = g_observer;
  g_observer = obs;
  return prev;
}

PassObserver* pass_observer() { return g_observer; }

PassScope::PassScope(std::string_view name, ir::StmtList& root)
    : name_(name),
      root_(root),
      uncaught_(std::uncaught_exceptions()),
      active_(g_observer != nullptr) {
  if (active_) g_observer->before_pass(name_, root_);
}

PassScope::~PassScope() {
  if (!active_) return;
  // The pass committed iff no new exception is in flight relative to
  // construction time (legality refusals throw after undoing trials).
  bool committed = std::uncaught_exceptions() == uncaught_;
  if (g_observer) g_observer->after_pass(name_, root_, committed);
}

}  // namespace blk::transform
