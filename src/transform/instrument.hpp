// Pass instrumentation: every transformation entry point announces itself
// through an observer hook so external clients — the translation validator
// in src/verify, the pass manager's statistics collector in src/pm — can
// snapshot the IR before a pass and audit the result after it, without the
// passes knowing who watches.
//
// The hook is deliberately minimal: a pass wraps its body in a PassScope;
// the observer receives before/after callbacks with the statement-tree
// root the pass was asked to mutate.  Nested passes (a driver invoking
// primitives) produce properly nested scopes, so observers can verify at
// primitive granularity.  A pass that throws (legality refused, trial
// undone) reports `committed = false` and observers discard the snapshot.
//
// Observer registration is per-thread and stacking.  Each thread owns an
// independent observer stack (the fuzzer installs a VerifiedPipeline per
// seed from a thread pool; campaigns must not see each other's passes).
// Installing pushes; uninstalling restores the previous observer, so
// nested clients (a VerifiedPipeline inside an instrumented pipeline run)
// compose: a PassScope notifies every stacked observer, outermost first on
// `before`, innermost first on `after`.
#pragma once

#include <string_view>

#include "ir/stmt.hpp"

namespace blk::transform {

/// Client interface.  Callbacks run synchronously on the transforming
/// thread; observers must not mutate the tree.
class PassObserver {
 public:
  virtual ~PassObserver() = default;
  virtual void before_pass(std::string_view name, ir::StmtList& root) = 0;
  virtual void after_pass(std::string_view name, ir::StmtList& root,
                          bool committed) = 0;
};

/// Install `obs` as this thread's innermost observer (nullptr uninstalls
/// the whole stack — legacy behaviour kept for tests).  Returns the
/// previously innermost observer so clients can chain/restore by passing
/// it back, which pops `obs` again.  The common RAII pattern:
///
///   prev_ = set_pass_observer(this);   // install (push)
///   ...
///   set_pass_observer(prev_);          // restore (pop back to prev)
///
/// works unchanged, but now per-thread and without clobbering outer
/// observers: passing back a pointer that is already on the stack pops
/// down to it instead of pushing a duplicate.
PassObserver* set_pass_observer(PassObserver* obs);

/// This thread's innermost observer (nullptr when none).
[[nodiscard]] PassObserver* pass_observer();

/// Number of observers currently stacked on this thread.
[[nodiscard]] std::size_t pass_observer_depth();

/// RAII suppression of this thread's observers: PassScopes constructed
/// while a mute is live skip the before/after callbacks (analysis-cache
/// invalidation still runs — it is correctness, not observation).  Used by
/// work on *cloned* programs (the machine model blocks a throwaway copy to
/// measure it) that must not be snapshot-verified against the real one.
/// Nests: observers stay muted until the outermost mute dies.
class ObserverMute {
 public:
  ObserverMute();
  ~ObserverMute();
  ObserverMute(const ObserverMute&) = delete;
  ObserverMute& operator=(const ObserverMute&) = delete;
};

/// Whether a mute is live on this thread.
[[nodiscard]] bool pass_observers_muted();

/// RAII marker placed at the top of each transformation entry point.
/// The observer stack is captured at construction, so observers installed
/// mid-pass only see subsequently started passes.
class PassScope {
 public:
  PassScope(std::string_view name, ir::StmtList& root);
  ~PassScope();
  PassScope(const PassScope&) = delete;
  PassScope& operator=(const PassScope&) = delete;

 private:
  std::string_view name_;
  ir::StmtList& root_;
  int uncaught_;
  std::size_t depth_;  ///< observer-stack depth captured at entry
};

}  // namespace blk::transform
