// Pass instrumentation: every transformation entry point announces itself
// through a process-wide observer hook so an external client — the
// translation validator in src/verify — can snapshot the IR before a pass
// and audit the result after it, without the passes knowing who watches.
//
// The hook is deliberately minimal: a pass wraps its body in a PassScope;
// the observer receives before/after callbacks with the statement-tree
// root the pass was asked to mutate.  Nested passes (a driver invoking
// primitives) produce properly nested scopes, so observers can verify at
// primitive granularity.  A pass that throws (legality refused, trial
// undone) reports `committed = false` and observers discard the snapshot.
#pragma once

#include <string_view>

#include "ir/stmt.hpp"

namespace blk::transform {

/// Client interface.  Callbacks run synchronously on the transforming
/// thread; observers must not mutate the tree.
class PassObserver {
 public:
  virtual ~PassObserver() = default;
  virtual void before_pass(std::string_view name, ir::StmtList& root) = 0;
  virtual void after_pass(std::string_view name, ir::StmtList& root,
                          bool committed) = 0;
};

/// Install `obs` as the process-wide observer (nullptr uninstalls).
/// Returns the previously installed observer so clients can chain/restore.
PassObserver* set_pass_observer(PassObserver* obs);

/// The currently installed observer (nullptr when none).
[[nodiscard]] PassObserver* pass_observer();

/// RAII marker placed at the top of each transformation entry point.
class PassScope {
 public:
  PassScope(std::string_view name, ir::StmtList& root);
  ~PassScope();
  PassScope(const PassScope&) = delete;
  PassScope& operator=(const PassScope&) = delete;

 private:
  std::string_view name_;
  ir::StmtList& root_;
  int uncaught_;
  bool active_;
};

}  // namespace blk::transform
