#include "transform/interchange.hpp"

#include <algorithm>

#include <set>

#include "analysis/ddtest.hpp"
#include "analysis/refs.hpp"
#include "ir/affine.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;

namespace {

[[nodiscard]] bool unit_step(const Loop& l) {
  return l.step->kind == IKind::Const && l.step->value == 1;
}

}  // namespace

bool interchange_legal(StmtList& root, Loop& outer,
                       const Assumptions* ctx) {
  if (outer.body.size() != 1 || outer.body[0]->kind() != SKind::Loop)
    return false;
  Loop& inner = outer.body[0]->as_loop();

  // Per-iteration temporaries (def-before-use scalars of the innermost
  // bodies) carry only register-reuse dependences; reordering may ignore
  // them because every iteration can take a private copy.
  std::set<std::string> priv;
  for_each_stmt(inner.body, [&](Stmt& s) {
    if (s.kind() == SKind::Loop)
      for (const auto& name :
           analysis::privatizable_scalars(s.as_loop().body))
        priv.insert(name);
  });
  for (const auto& name : analysis::privatizable_scalars(inner.body))
    priv.insert(name);
  // Privatization is only sound when the scalar is not live outside the
  // nest: a reference beyond `outer` would observe the (reordered) last
  // value.  Drop any candidate referenced outside.
  if (!priv.empty()) {
    for (const analysis::RefInfo& r : analysis::collect_refs(root)) {
      if (r.subs.empty() && priv.contains(r.array) &&
          std::find(r.loops.begin(), r.loops.end(), &outer) ==
              r.loops.end())
        priv.erase(r.array);
    }
  }

  auto deps = analysis::all_dependences(root, {.ctx = ctx});
  for (const auto& d : deps) {
    if (d.src.is_scalar() && priv.contains(d.src.array)) continue;
    // Locate the two loops in the dependence's common-loop prefix.
    std::size_t depth = d.src.common_depth(d.dst);
    auto pos_of = [&](const Loop* l) -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < depth; ++i)
        if (d.src.loops[i] == l) return i;
      return std::nullopt;
    };
    auto po = pos_of(&outer);
    auto pi = pos_of(&inner);
    if (!po || !pi) continue;
    for (const auto& v : d.vectors)
      if (v[*po] == analysis::Dir::LT && v[*pi] == analysis::Dir::GT)
        return false;  // interchange would reverse this dependence
  }
  return true;
}

Loop& do_interchange(Loop& outer) {
  Loop& inner = outer.body[0]->as_loop();
  if (!unit_step(outer) || !unit_step(inner))
    throw Error("interchange: both loops must have unit step");

  const std::string vo = outer.var;
  const std::string vi = inner.var;

  const bool lb_dep = mentions(*inner.lb, vo);
  const bool ub_dep = mentions(*inner.ub, vo);
  if (mentions(*outer.lb, vi) || mentions(*outer.ub, vi))
    throw Error("interchange: malformed nest, outer bound mentions " + vi);

  IExprPtr new_outer_lb, new_outer_ub;  // bounds for the vi loop (outside)
  IExprPtr new_inner_lb, new_inner_ub;  // bounds for the vo loop (inside)

  if (lb_dep && ub_dep) {
    // Both bounds depend on the outer variable — the skewed-wavefront
    // shape.  With positive coefficients a_l, a_u the inner window
    // [a_l*II+b_l, a_u*II+b_u] slides upward as II grows, so the J2 range
    // of the whole nest is [a_l*L+b_l, a_u*U+b_u], and for a fixed J2 the
    // IIs whose window contains it form the interval
    //   [ceil((J2-b_u)/a_u), floor((J2-b_l)/a_l)]  clamped to [L, U].
    // The two linear inequalities cut an exact interval out of [L, U]:
    // the interchanged nest enumerates precisely the original pairs.
    auto fl = as_affine(*inner.lb);
    auto fu = as_affine(*inner.ub);
    if (!fl || !fu)
      throw Error("interchange: inner bound " +
                  to_string(fl ? inner.ub : inner.lb) +
                  " is not affine in " + vo +
                  "; resolve MIN/MAX bounds before interchanging");
    const long al = fl->coef_of(vo);
    const long au = fu->coef_of(vo);
    if (al <= 0 || au <= 0)
      throw Error(
          "interchange: both inner bounds depend on the outer variable (" +
          vo +
          ") with non-positive coefficients; split the iteration space "
          "first");
    IExprPtr bl = from_affine(*fl - Affine::variable(vo, al));
    IExprPtr bu = from_affine(*fu - Affine::variable(vo, au));
    IExprPtr j = ivar(vi);
    new_outer_lb = simplify(iadd(imul(iconst(al), outer.lb), bl));
    new_outer_ub = simplify(iadd(imul(iconst(au), outer.ub), bu));
    new_inner_lb = imax(iceildiv(isub(j, bu), au), outer.lb);
    new_inner_ub = imin(ifloordiv(isub(j, bl), al), outer.ub);
  } else if (!lb_dep && !ub_dep) {
    // Rectangular: plain swap.
    new_outer_lb = inner.lb;
    new_outer_ub = inner.ub;
    new_inner_lb = outer.lb;
    new_inner_ub = outer.ub;
  } else {
    const IExprPtr& dep_bound = lb_dep ? inner.lb : inner.ub;
    auto f = as_affine(*dep_bound);
    if (!f)
      throw Error("interchange: inner bound " + to_string(dep_bound) +
                  " is not affine in " + vo +
                  "; resolve MIN/MAX bounds before interchanging");
    long alpha = f->coef_of(vo);
    if (alpha == 0)
      throw Error("interchange: internal - expected dependence on " + vo);
    Affine beta_aff = *f - Affine::variable(vo, alpha);
    IExprPtr beta = from_affine(beta_aff);
    IExprPtr j = ivar(vi);

    if (lb_dep && alpha > 0) {
      // DO II=L,U / DO J=a*II+b,M  =>  DO J=a*L+b,M / DO II=L,MIN((J-b)/a,U)
      new_outer_lb = simplify(iadd(imul(iconst(alpha), outer.lb), beta));
      new_outer_ub = inner.ub;
      new_inner_lb = outer.lb;
      new_inner_ub = imin(ifloordiv(isub(j, beta), alpha), outer.ub);
    } else if (lb_dep) {
      // a < 0: J >= a*II+b  <=>  II >= ceil((b-J)/(-a))
      long a = -alpha;
      new_outer_lb = simplify(iadd(imul(iconst(alpha), outer.ub), beta));
      new_outer_ub = inner.ub;
      new_inner_lb = imax(iceildiv(isub(beta, j), a), outer.lb);
      new_inner_ub = outer.ub;
    } else if (alpha > 0) {
      // DO II=L,U / DO J=M,a*II+b  =>  J <= a*II+b  <=>  II >= ceil((J-b)/a)
      new_outer_lb = inner.lb;
      new_outer_ub = simplify(iadd(imul(iconst(alpha), outer.ub), beta));
      new_inner_lb = imax(iceildiv(isub(j, beta), alpha), outer.lb);
      new_inner_ub = outer.ub;
    } else {
      // ub depends, a < 0: J <= a*II+b  <=>  II <= floor((b-J)/(-a))
      long a = -alpha;
      new_outer_lb = inner.lb;
      new_outer_ub = simplify(iadd(imul(iconst(alpha), outer.lb), beta));
      new_inner_lb = outer.lb;
      new_inner_ub = imin(ifloordiv(isub(beta, j), a), outer.ub);
    }
  }

  // Rebuild in place: the tree node that was `outer` becomes the vi loop;
  // a fresh node inside it becomes the vo loop carrying the old body.
  StmtList body = std::move(inner.body);
  StmtPtr new_inner = make_loop(vo, std::move(new_inner_lb),
                                std::move(new_inner_ub), std::move(body));
  Loop& result = new_inner->as_loop();
  outer.var = vi;
  outer.lb = simplify(new_outer_lb);
  outer.ub = simplify(new_outer_ub);
  outer.body.clear();
  outer.body.push_back(std::move(new_inner));
  return result;
}

void interchange(StmtList& root, Loop& outer, bool check,
                 const Assumptions* ctx) {
  PassScope scope("interchange", root);
  if (outer.body.size() != 1 || outer.body[0]->kind() != SKind::Loop)
    throw Error("interchange: loop " + outer.var +
                " is not perfectly nested over a single inner loop");
  if (check && !interchange_legal(root, outer, ctx))
    throw Error("interchange: dependences forbid interchanging " +
                outer.var + " with " + outer.body[0]->as_loop().var);
  do_interchange(outer);
}

int sink_loop(StmtList& root, Loop& loop, bool check,
              const Assumptions* ctx) {
  int count = 0;
  Loop* current = &loop;
  while (current->body.size() == 1 &&
         current->body[0]->kind() == SKind::Loop) {
    if (check && !interchange_legal(root, *current, ctx)) break;
    current = &do_interchange(*current);
    ++count;
  }
  return count;
}

}  // namespace blk::transform
