// Loop interchange, including the paper's triangular bound rewrite (§3.1).
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Can `outer` legally be interchanged with its immediately nested loop?
/// Requires a perfect 2-deep nest at this level; illegal when any
/// dependence has a (<,>) direction pattern on the pair.  `ctx` supplies
/// extra facts for the dependence screen.
[[nodiscard]] bool interchange_legal(ir::StmtList& root, ir::Loop& outer,
                                     const analysis::Assumptions* ctx =
                                         nullptr);

/// Interchange `outer` with its single child loop.
///
/// Rectangular nests swap headers.  Triangular nests — where exactly one
/// bound of the inner loop is an affine function a*OUTER+b of the outer
/// variable — are rewritten per §3.1; e.g. for an inner lower bound with
/// a > 0:
///
///   DO II = I, U            DO J = a*I+b, M
///     DO J = a*II+b, M  =>    DO II = I, MIN((J-b)/a, U)
///
/// and symmetrically for upper bounds and a < 0.  Bounds that depend on
/// the outer variable through MIN/MAX must be resolved first (see
/// Assumptions::resolve_minmax).  Throws blk::Error when the shape is not
/// supported; `check` additionally enforces dependence legality.
void interchange(ir::StmtList& root, ir::Loop& outer, bool check = true,
                 const analysis::Assumptions* ctx = nullptr);

/// Repeatedly interchange to sink `loop` to the innermost position of its
/// perfect subnest (used by blocking drivers to move a strip loop inward).
/// Returns the number of interchanges performed.
int sink_loop(ir::StmtList& root, ir::Loop& loop, bool check = true,
              const analysis::Assumptions* ctx = nullptr);

}  // namespace blk::transform
