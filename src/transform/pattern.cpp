#include "transform/pattern.hpp"

#include <algorithm>

#include "ir/error.hpp"

namespace blk::transform {

using namespace blk::ir;

std::optional<RowSwapPattern> match_row_swap(const Loop& loop) {
  if (loop.body.size() != 3) return std::nullopt;
  for (const auto& s : loop.body)
    if (s->kind() != SKind::Assign) return std::nullopt;

  const Assign& save = loop.body[0]->as_assign();    // TAU = A(r1,J)
  const Assign& move = loop.body[1]->as_assign();    // A(r1,J) = A(r2,J)
  const Assign& restore = loop.body[2]->as_assign(); // A(r2,J) = TAU

  // TAU = A(r1, J)
  if (save.lhs.is_array()) return std::nullopt;
  if (save.rhs->kind != VKind::ArrayRef || save.rhs->subs.size() != 2)
    return std::nullopt;
  const std::string& tau = save.lhs.name;
  const std::string& arr = save.rhs->name;
  IExprPtr r1 = save.rhs->subs[0];

  // A(r1, J) = A(r2, J)
  if (!move.lhs.is_array() || move.lhs.name != arr ||
      move.lhs.subs.size() != 2)
    return std::nullopt;
  if (move.rhs->kind != VKind::ArrayRef || move.rhs->name != arr ||
      move.rhs->subs.size() != 2)
    return std::nullopt;
  if (!provably_equal(move.lhs.subs[0], r1)) return std::nullopt;
  IExprPtr r2 = move.rhs->subs[0];

  // A(r2, J) = TAU
  if (!restore.lhs.is_array() || restore.lhs.name != arr ||
      restore.lhs.subs.size() != 2)
    return std::nullopt;
  if (!provably_equal(restore.lhs.subs[0], r2)) return std::nullopt;
  if (restore.rhs->kind != VKind::ScalarRef || restore.rhs->name != tau)
    return std::nullopt;

  // Column subscripts must all be exactly the loop variable, and the row
  // indices must be invariant in it.
  auto is_loop_var = [&](const IExprPtr& e) {
    return e->kind == IKind::Var && e->name == loop.var;
  };
  if (!is_loop_var(save.rhs->subs[1]) || !is_loop_var(move.lhs.subs[1]) ||
      !is_loop_var(move.rhs->subs[1]) || !is_loop_var(restore.lhs.subs[1]))
    return std::nullopt;
  if (mentions(*r1, loop.var) || mentions(*r2, loop.var))
    return std::nullopt;

  return RowSwapPattern{.loop = &loop,
                        .array = arr,
                        .row1 = std::move(r1),
                        .row2 = std::move(r2),
                        .col_var = loop.var};
}

namespace {

/// The row subscript variable of the write, for checking reads.
bool reads_are_columnwise(const VExprPtr& e, const std::string& array,
                          const IExprPtr& row_sub) {
  switch (e->kind) {
    case VKind::Const:
    case VKind::ScalarRef:
    case VKind::IndexVal:
      return true;
    case VKind::ArrayRef: {
      if (e->name != array) return true;
      if (e->subs.size() != 2) return false;
      // Allowed reads: same row as the write (A(i, *)), or a row index
      // invariant in the write's row variable (the pivot row A(k, *)).
      if (provably_equal(e->subs[0], row_sub)) return true;
      std::vector<std::string> rv = free_vars(row_sub);
      for (const auto& v : rv)
        if (mentions(*e->subs[0], v)) return false;
      return true;
    }
    case VKind::Bin:
      return reads_are_columnwise(e->lhs, array, row_sub) &&
             reads_are_columnwise(e->rhs, array, row_sub);
    case VKind::Un:
      return reads_are_columnwise(e->lhs, array, row_sub);
  }
  return false;
}

}  // namespace

bool is_column_update(const Stmt& stmt, const std::string& array) {
  switch (stmt.kind()) {
    case SKind::Assign: {
      const Assign& a = stmt.as_assign();
      if (!a.lhs.is_array()) return false;
      if (a.lhs.name != array || a.lhs.subs.size() != 2) return false;
      return reads_are_columnwise(a.rhs, array, a.lhs.subs[0]);
    }
    case SKind::Loop: {
      const Loop& l = stmt.as_loop();
      return std::all_of(l.body.begin(), l.body.end(),
                         [&](const StmtPtr& s) {
                           return is_column_update(*s, array);
                         });
    }
    case SKind::If:
      return false;
  }
  return false;
}

IgnoreEdge commutativity_filter(const Loop& carrier) {
  // Pre-scan the carrier body: find row-swap loops and column-update nodes.
  struct Match {
    const Stmt* node;
    bool is_swap;
    std::string array;
  };
  std::vector<Match> matches;
  for (const auto& s : carrier.body) {
    if (s->kind() == SKind::Loop) {
      if (auto swap = match_row_swap(s->as_loop())) {
        matches.push_back(
            {.node = s.get(), .is_swap = true, .array = swap->array});
        continue;
      }
    }
  }
  // For every array named by a swap, classify the other nodes.
  for (const auto& s : carrier.body) {
    bool already = std::any_of(matches.begin(), matches.end(),
                               [&](const Match& m) {
                                 return m.node == s.get() && m.is_swap;
                               });
    if (already) continue;
    for (const auto& m : std::vector<Match>(matches)) {
      if (!m.is_swap) continue;
      if (is_column_update(*s, m.array))
        matches.push_back(
            {.node = s.get(), .is_swap = false, .array = m.array});
    }
  }

  auto contains = [](const Stmt* node, const Stmt* target) {
    std::function<bool(const Stmt&)> rec = [&](const Stmt& s) -> bool {
      if (&s == target) return true;
      switch (s.kind()) {
        case SKind::Assign:
          return false;
        case SKind::Loop:
          for (const auto& c : s.as_loop().body)
            if (rec(*c)) return true;
          return false;
        case SKind::If:
          for (const auto& c : s.as_if().then_body)
            if (rec(*c)) return true;
          for (const auto& c : s.as_if().else_body)
            if (rec(*c)) return true;
          return false;
      }
      return false;
    };
    return rec(*node);
  };

  return [matches, contains](const analysis::DepGraph::Edge& e) -> bool {
    if (!e.dep.src.owner || !e.dep.dst.owner) return false;
    const Match* src_match = nullptr;
    const Match* dst_match = nullptr;
    for (const auto& m : matches) {
      if (contains(m.node, e.dep.src.owner)) src_match = &m;
      if (contains(m.node, e.dep.dst.owner)) dst_match = &m;
    }
    if (!src_match || !dst_match) return false;
    if (src_match->array != dst_match->array) return false;
    // Ignorable exactly when one endpoint is the row swap and the other a
    // whole-column update on the same array.
    return src_match->is_swap != dst_match->is_swap;
  };
}

}  // namespace blk::transform
