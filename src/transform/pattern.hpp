// Commutativity pattern matching (§5.2).
//
// Data dependence alone cannot block LU decomposition with partial
// pivoting: distributing the strip loop turns a flow dependence between the
// whole-column update (statement 10) and the row interchange (statement 25)
// into a reversed antidependence.  The paper's remedy is semantic knowledge:
// row interchanges commute with whole-column updates.  This module
// recognizes both shapes so the blocking driver can ignore the recurrence
// edges between them.
#pragma once

#include <optional>

#include "analysis/depgraph.hpp"
#include "ir/program.hpp"
#include "transform/distribute.hpp"

namespace blk::transform {

/// A matched row-interchange loop:
///
///   DO J = lo, hi
///     TAU      = A(r1, J)
///     A(r1, J) = A(r2, J)
///     A(r2, J) = TAU
///
/// with r1, r2 invariant in J.  The swap touches whole rows of `array`.
struct RowSwapPattern {
  const ir::Loop* loop = nullptr;
  std::string array;
  ir::IExprPtr row1, row2;
  std::string col_var;
};

/// Match a loop against the row-interchange shape.
[[nodiscard]] std::optional<RowSwapPattern> match_row_swap(
    const ir::Loop& loop);

/// A whole-column update assignment:
///
///   A(i, j) = A(i, j) - A(i, k) * A(k, j)
///
/// where i is an inner loop variable sweeping rows and j a loop variable
/// sweeping columns — the Gaussian elimination rank-1 update applied
/// column-wise.  Weaker shapes (scaling A(i,k) = A(i,k)/A(k,k)) also count:
/// any assignment that writes A(i, c) reading only column entries with the
/// same row variable i or a row index invariant in i.
[[nodiscard]] bool is_column_update(const ir::Stmt& stmt,
                                    const std::string& array);

/// Distribution edge filter implementing the commutativity rule: an edge
/// may be ignored when one endpoint lies inside a matched row-interchange
/// loop and the other is (or contains only) whole-column updates on the
/// same array.  Everything else is kept.
[[nodiscard]] IgnoreEdge commutativity_filter(const ir::Loop& carrier);

}  // namespace blk::transform
