#include "transform/scalarrepl.hpp"

#include <algorithm>

#include <map>

#include "analysis/refs.hpp"
#include "analysis/sections.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;
using analysis::RefInfo;

namespace {

LoopLocation locate(StmtList& root, const Loop& loop) {
  struct Finder {
    const Loop* target;
    LoopLocation found;
    void walk(StmtList& body) {
      for (std::size_t i = 0; i < body.size() && !found.loop; ++i) {
        Stmt& s = *body[i];
        if (s.kind() == SKind::Loop) {
          Loop& l = s.as_loop();
          if (&l == target) {
            found = {.parent = &body, .index = i, .loop = &l};
            return;
          }
          walk(l.body);
        } else if (s.kind() == SKind::If) {
          walk(s.as_if().then_body);
          walk(s.as_if().else_body);
        }
      }
    }
  } finder{.target = &loop, .found = {}};
  finder.walk(root);
  if (!finder.found) throw Error("scalarrepl: loop not found in tree");
  return finder.found;
}

[[nodiscard]] bool mentions_any(const blk::analysis::RefInfo& r,
                                const std::string& var) {
  for (const auto& sub : r.subs)
    if (mentions(*sub, var)) return true;
  return false;
}

[[nodiscard]] bool same_subs(const std::vector<IExprPtr>& a,
                             const std::vector<IExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!provably_equal(a[i], b[i])) return false;
  return true;
}

/// Rewrite reads of A(subs) into the scalar `t` throughout an expression.
VExprPtr replace_reads(const VExprPtr& e, const std::string& array,
                       const std::vector<IExprPtr>& subs,
                       const std::string& t) {
  switch (e->kind) {
    case VKind::Const:
    case VKind::ScalarRef:
    case VKind::IndexVal:
      return e;
    case VKind::ArrayRef:
      if (e->name == array && same_subs(e->subs, subs)) return vscalar(t);
      return e;
    case VKind::Bin: {
      VExprPtr l = replace_reads(e->lhs, array, subs, t);
      VExprPtr r = replace_reads(e->rhs, array, subs, t);
      if (l == e->lhs && r == e->rhs) return e;
      return vbin(e->bop, std::move(l), std::move(r));
    }
    case VKind::Un: {
      VExprPtr l = replace_reads(e->lhs, array, subs, t);
      if (l == e->lhs) return e;
      return vun(e->uop, std::move(l));
    }
  }
  throw Error("scalarrepl: corrupt VExpr");
}

void rewrite_group(StmtList& body, const std::string& array,
                   const std::vector<IExprPtr>& subs, const std::string& t) {
  for (auto& s : body) {
    switch (s->kind()) {
      case SKind::Assign: {
        Assign& a = s->as_assign();
        a.rhs = replace_reads(a.rhs, array, subs, t);
        if (a.lhs.name == array && same_subs(a.lhs.subs, subs))
          a.lhs = {.name = t, .subs = {}};
        break;
      }
      case SKind::Loop:
        rewrite_group(s->as_loop().body, array, subs, t);
        break;
      case SKind::If: {
        If& f = s->as_if();
        f.cond.lhs = replace_reads(f.cond.lhs, array, subs, t);
        f.cond.rhs = replace_reads(f.cond.rhs, array, subs, t);
        rewrite_group(f.then_body, array, subs, t);
        rewrite_group(f.else_body, array, subs, t);
        break;
      }
    }
  }
}

}  // namespace

int scalar_replace(Program& p, StmtList& root, Loop& loop,
                   const Assumptions& base) {
  PassScope scope("scalar-replace", root);
  LoopLocation loc = locate(root, loop);

  // Context: caller facts + every loop range in the enclosing nest and
  // inside the target loop.
  Assumptions ctx = base;
  for (Loop* l : enclosing_loops(root, loop)) ctx.add_loop_range(*l);
  ctx.add_loop_range(loop);
  for_each_stmt(loop.body, [&ctx](Stmt& s) {
    if (s.kind() == SKind::Loop) ctx.add_loop_range(s.as_loop());
  });

  std::vector<RefInfo> refs = analysis::collect_refs(loop.body);

  // Candidate groups: invariant array references, keyed by identical subs.
  struct Group {
    std::string array;
    std::vector<IExprPtr> subs;
    bool written = false;
  };
  std::vector<Group> groups;
  for (const RefInfo& r : refs) {
    if (r.is_scalar()) continue;
    bool invariant = true;
    for (const auto& sub : r.subs) {
      if (mentions(*sub, loop.var)) invariant = false;
      for (const Loop* inner : r.loops)
        if (mentions(*sub, inner->var)) invariant = false;
    }
    if (!invariant) continue;
    auto it = std::find_if(groups.begin(), groups.end(), [&](const Group& g) {
      return g.array == r.array && same_subs(g.subs, r.subs);
    });
    if (it == groups.end())
      groups.push_back(
          {.array = r.array, .subs = r.subs, .written = r.is_write});
    else
      it->written |= r.is_write;
  }

  int replaced = 0;
  int counter = 0;
  for (const Group& g : groups) {
    // Safety: every other reference to this array inside the loop must be
    // provably disjoint from the group's element in some dimension.
    bool safe = true;
    for (const RefInfo& r : refs) {
      if (r.array != g.array || same_subs(r.subs, g.subs)) continue;
      // Section of the varying reference over the loops inside the target
      // loop, including the target loop itself.
      std::vector<Loop*> expand{&loop};
      expand.insert(expand.end(), r.loops.begin(), r.loops.end());
      analysis::Section sec = analysis::section_of(r, expand);
      bool dim_disjoint = false;
      for (std::size_t d = 0; d < g.subs.size() && d < sec.dims.size(); ++d) {
        const auto& t = sec.dims[d];
        if (!t.lb || !t.ub) continue;
        if (ctx.nonneg_expr(isub(isub(t.lb, g.subs[d]), iconst(1))) ||
            ctx.nonneg_expr(isub(isub(g.subs[d], t.ub), iconst(1)))) {
          dim_disjoint = true;
          break;
        }
      }
      if (!dim_disjoint) {
        safe = false;
        break;
      }
    }
    if (!safe) continue;

    // Fresh scalar name.
    std::string t;
    do {
      t = "T" + std::to_string(counter++);
    } while (p.has_scalar(t) || p.has_array(t));
    p.scalar(t);

    rewrite_group(loop.body, g.array, g.subs, t);
    // Load before the loop; store after when written.
    StmtList& parent = *loc.parent;
    parent.insert(parent.begin() + static_cast<long>(loc.index),
                  make_assign({.name = t, .subs = {}}, vref(g.array, g.subs)));
    ++loc.index;  // the loop shifted right
    if (g.written)
      parent.insert(parent.begin() + static_cast<long>(loc.index) + 1,
                    make_assign({.name = g.array, .subs = g.subs},
                                vscalar(t)));
    ++replaced;
  }
  return replaced;
}

int scalar_replace_carried(Program& p, StmtList& root, Loop& loop) {
  PassScope scope("scalar-replace-carried", root);
  if (!(loop.step->kind == IKind::Const && loop.step->value == 1)) return 0;
  LoopLocation loc = locate(root, loop);

  // Candidate pattern: refs directly at this loop level (not inside inner
  // loops), one write per array, reads either same-iteration or shifted by
  // exactly one iteration.
  std::vector<RefInfo> refs = analysis::collect_refs(loop.body);
  std::map<std::string, std::vector<const RefInfo*>> by_array;
  for (const RefInfo& r : refs) {
    if (r.is_scalar()) continue;
    if (!r.loops.empty()) return 0;  // nested shapes: out of scope here
    by_array[r.array].push_back(&r);
  }

  IExprPtr shift_back = isub(ivar(loop.var), iconst(1));
  int rotated = 0;
  int counter = 0;
  for (auto& [array, group] : by_array) {
    const RefInfo* write = nullptr;
    std::vector<const RefInfo*> carried_reads;
    bool ok = true;
    for (const RefInfo* r : group) {
      if (r->is_write) {
        if (write) ok = false;  // more than one write: too hard
        write = r;
      }
    }
    if (!ok || !write) continue;
    for (const RefInfo* r : group) {
      if (r->is_write) continue;
      bool shifted = r->subs.size() == write->subs.size();
      bool same = shifted;
      for (std::size_t d = 0; d < r->subs.size() && (shifted || same);
           ++d) {
        IExprPtr w_prev =
            substitute(write->subs[d], loop.var, shift_back);
        shifted = shifted && provably_equal(r->subs[d], w_prev);
        same = same && provably_equal(r->subs[d], write->subs[d]);
      }
      if (shifted && mentions_any(*write, loop.var))
        carried_reads.push_back(r);
      else if (!same)
        ok = false;  // unrelated access pattern: leave it alone
    }
    if (!ok || carried_reads.empty()) continue;
    // The write must vary with the loop (else every iteration hits the
    // same cell and the shift test above is vacuous).
    bool varies = false;
    for (const auto& sub : write->subs)
      if (mentions(*sub, loop.var)) varies = true;
    if (!varies) continue;

    // Fresh scalar.
    std::string t;
    do {
      t = "R" + std::to_string(counter++);
    } while (p.has_scalar(t) || p.has_array(t));
    p.scalar(t);

    // Rewrite the carried reads to T, and chain the written value into T
    // right after the write's statement.
    std::vector<IExprPtr> prev_subs;
    for (const auto& sub : write->subs)
      prev_subs.push_back(substitute(sub, loop.var, shift_back));
    rewrite_group(loop.body, array, prev_subs, t);
    // Insert "T = A(f(I))" after the writing statement.
    for (std::size_t i = 0; i < loop.body.size(); ++i) {
      if (loop.body[i].get() !=
          static_cast<const Stmt*>(write->stmt))
        continue;
      loop.body.insert(
          loop.body.begin() + static_cast<long>(i) + 1,
          make_assign({.name = t, .subs = {}},
                      vref(array, write->subs)));
      break;
    }

    // Guarded preheader: T = A(f(lb-1)), only when the loop runs at all.
    std::vector<IExprPtr> first_subs;
    for (const auto& sub : prev_subs)
      first_subs.push_back(
          simplify(substitute(sub, loop.var, loop.lb)));
    StmtList then_body;
    then_body.push_back(make_assign({.name = t, .subs = {}},
                                    vref(array, std::move(first_subs))));
    then_body.push_back(std::move((*loc.parent)[loc.index]));
    StmtPtr guard = make_if({.lhs = vindex(loop.lb),
                             .op = CmpOp::LE,
                             .rhs = vindex(loop.ub)},
                            std::move(then_body));
    (*loc.parent)[loc.index] = std::move(guard);
    ++rotated;
    break;  // the loop node moved; one rotation per invocation
  }
  return rotated;
}

std::string scalar_expand(Program& p, StmtList& root, Loop& loop,
                          const std::string& name) {
  PassScope scope("scalar-expand", root);
  if (!p.has_scalar(name))
    throw Error("scalar_expand: " + name + " is not a declared scalar");

  // Dimension the expansion array by the loop's extreme bounds over the
  // enclosing nest.
  std::vector<Loop*> outer = enclosing_loops(root, loop);
  std::span<Loop* const> outer_span(outer.data(), outer.size());
  IExprPtr lo = analysis::sweep_extreme(loop.lb, outer_span, /*lower=*/true);
  IExprPtr hi = analysis::sweep_extreme(loop.ub, outer_span, /*lower=*/false);
  if (!lo || !hi)
    throw Error("scalar_expand: cannot bound the range of " + loop.var);

  std::string arr = name + "X";
  while (p.has_array(arr) || p.has_scalar(arr)) arr += "X";
  p.array_bounds(arr, {{.lb = lo, .ub = hi}});

  // Rewrite all reads/writes of the scalar in the loop body.
  IExprPtr v = ivar(loop.var);
  std::function<void(StmtList&)> rewrite = [&](StmtList& body) {
    for (auto& s : body) {
      switch (s->kind()) {
        case SKind::Assign: {
          Assign& a = s->as_assign();
          a.rhs = substitute_scalar(a.rhs, name, vref(arr, {v}));
          if (!a.lhs.is_array() && a.lhs.name == name)
            a.lhs = {.name = arr, .subs = {v}};
          break;
        }
        case SKind::Loop:
          rewrite(s->as_loop().body);
          break;
        case SKind::If: {
          If& f = s->as_if();
          f.cond.lhs = substitute_scalar(f.cond.lhs, name, vref(arr, {v}));
          f.cond.rhs = substitute_scalar(f.cond.rhs, name, vref(arr, {v}));
          rewrite(f.then_body);
          rewrite(f.else_body);
          break;
        }
      }
    }
  };
  rewrite(loop.body);
  return arr;
}

}  // namespace blk::transform
