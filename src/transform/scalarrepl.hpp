// Scalar replacement and scalar expansion.
//
// Scalar replacement (Callahan/Carr/Kennedy, "Improving register allocation
// for subscripted variables") keeps loop-invariant array elements in
// scalars so the backend can register-allocate them; in this study it is
// the transformation that turns blocked code ("2") into the fast variant
// ("2+").  Scalar expansion turns a scalar assigned in a loop into an
// array indexed by the loop variable, breaking the scalar's loop-carried
// anti/output dependences so the loop can be distributed (used on the
// Givens rotation coefficients C, S in §5.4).
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Replace array references inside `loop` whose subscripts are invariant
/// with respect to `loop` and every loop nested inside it.  A group of
/// provably identical references becomes:
///
///   T = A(subs)          ! before the loop
///   ... T ...            ! inside
///   A(subs) = T          ! after, when the group contains a write
///
/// A group is only replaced when every other reference to the same array
/// inside the loop is provably disjoint from it (section analysis under
/// `base` plus the enclosing loops' range facts).  Returns the number of
/// groups replaced.
int scalar_replace(ir::Program& p, ir::StmtList& root, ir::Loop& loop,
                   const analysis::Assumptions& base = {});

/// Expand scalar `name` assigned inside `loop` into a compiler temporary
/// array indexed by the loop variable: every read and write of the scalar
/// in the loop body becomes NAME_X(V).  The array is dimensioned by the
/// loop bounds' extreme values over the enclosing nest.  Returns the new
/// array's name.
std::string scalar_expand(ir::Program& p, ir::StmtList& root, ir::Loop& loop,
                          const std::string& name);

/// Cross-iteration scalar replacement (the "rotating values" case of
/// Callahan/Carr/Kennedy that the paper's §3.2 results build on):
///
///   DO I = lb, ub                  IF (lb <= ub) THEN
///     A(f(I)) = g(A(f(I-1)))  ->     T = A(f(lb-1))
///                                    DO I = lb, ub
///                                      A(f(I)) = g(T)
///                                      T = A(f(I))
///
/// The written value flows to the next iteration through a scalar instead
/// of memory.  Applies when the loop body contains exactly one write to
/// the array at this level, the carried reads are its subscripts shifted
/// by one iteration, and no other reference interferes.  Returns the
/// number of arrays rotated (0 when the pattern is absent).
int scalar_replace_carried(ir::Program& p, ir::StmtList& root,
                           ir::Loop& loop);

}  // namespace blk::transform
