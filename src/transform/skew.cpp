#include "transform/skew.hpp"

#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;

Loop& skew(Program& p, Loop& outer, long factor) {
  PassScope scope("skew", p.body);
  if (outer.body.size() != 1 || outer.body[0]->kind() != SKind::Loop)
    throw Error("skew: loop " + outer.var +
                " is not perfectly nested over a single inner loop");
  Loop& inner = outer.body[0]->as_loop();
  auto unit = [](const Loop& l) {
    return l.step->kind == IKind::Const && l.step->value == 1;
  };
  if (!unit(outer) || !unit(inner))
    throw Error("skew: both loops must have unit step");
  if (factor == 0) throw Error("skew: factor must be nonzero");
  if (mentions(*inner.lb, outer.var) || mentions(*inner.ub, outer.var))
    throw Error("skew: inner bounds depend on " + outer.var +
                "; skew needs a rectangular nest");
  if (mentions(*outer.lb, inner.var) || mentions(*outer.ub, inner.var))
    throw Error("skew: malformed nest, outer bound mentions " + inner.var);

  const std::string nv = p.fresh_var(inner.var);
  p.note_var(nv);

  // J := J2 - f*I everywhere in the body; bounds shift by +f*I.
  IExprPtr shift = imul(iconst(factor), ivar(outer.var));
  substitute_index_in_list(inner.body,
                           inner.var,
                           simplify(isub(ivar(nv), shift)));
  inner.lb = simplify(iadd(inner.lb, shift));
  inner.ub = simplify(iadd(inner.ub, shift));
  inner.var = nv;
  return inner;
}

}  // namespace blk::transform
