// Loop skewing: the unimodular reindexing that turns a wavefront into a
// parallel inner loop.
//
// Skewing by itself changes no execution order — it is a coordinate
// change.  Its value comes from composing: a stencil whose dependences
// are (1,0) and (0,1) has no parallel loop in either order, but after
// skew(f=1) the dependences become (1,1) and (0,1); interchanging then
// puts the wavefront outside, and the (now inner) loop carries nothing —
// sa::certify re-proves it parallel and the native backend may run its
// iterations concurrently (§14).
#pragma once

#include "ir/program.hpp"

namespace blk::transform {

/// Skew the inner loop of the rectangular unit-step 2-nest rooted at
/// `outer` by `factor`:
///
///   DO I = lo, hi            DO I  = lo, hi
///     DO J = lb, ub      =>    DO J2 = lb + f*I, ub + f*I
///       B(I, J)                  B(I, J2 - f*I)
///
/// The inner bounds must not mention `outer.var` (rectangular) and both
/// steps must be 1.  Execution order is untouched — every iteration runs
/// at the same position, under new coordinates — so the transform is
/// trivially semantics-preserving; the translation validator treats it as
/// a reordering (empty reordering, in fact) and re-checks dependence
/// preservation like any other.
///
/// Returns the skewed inner loop (same node, new variable and bounds).
ir::Loop& skew(ir::Program& p, ir::Loop& outer, long factor);

}  // namespace blk::transform
