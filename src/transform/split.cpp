#include "transform/split.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>

#include "analysis/manager.hpp"
#include "ir/affine.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"
#include "ir/printer.hpp"
#include "transform/pattern.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;
using analysis::DepGraph;
using analysis::RefInfo;
using analysis::Section;

namespace {

/// Locate `loop` by identity anywhere under `root`.
LoopLocation locate(StmtList& root, const Loop& loop) {
  struct Finder {
    const Loop* target;
    LoopLocation found;
    void walk(StmtList& body) {
      for (std::size_t i = 0; i < body.size() && !found.loop; ++i) {
        Stmt& s = *body[i];
        if (s.kind() == SKind::Loop) {
          Loop& l = s.as_loop();
          if (&l == target) {
            found = {.parent = &body, .index = i, .loop = &l};
            return;
          }
          walk(l.body);
        } else if (s.kind() == SKind::If) {
          walk(s.as_if().then_body);
          walk(s.as_if().else_body);
        }
      }
    }
  } finder{.target = &loop, .found = {}};
  finder.walk(root);
  if (!finder.found)
    throw Error("split: loop " + loop.var + " not found in tree");
  return finder.found;
}

}  // namespace

std::pair<Loop*, Loop*> split_at(StmtList& root, Loop& loop, IExprPtr point) {
  PassScope scope("split", root);
  // The MIN/MAX bound construction below assumes ascending unit-step
  // iteration; reversed or strided loops would land in the wrong pieces
  // (or the wrong phase).
  if (!(loop.step->kind == IKind::Const && loop.step->value == 1))
    throw Error("split_at: loop " + loop.var + " must have unit step");
  LoopLocation loc = locate(root, loop);

  IExprPtr ub1 = simplify(imin(loop.ub, point));
  IExprPtr lb2 = simplify(imax(loop.lb, iadd(ub1, iconst(1))));

  StmtPtr second = make_loop(loop.var, std::move(lb2), loop.ub,
                             clone_list(loop.body), loop.step);
  Loop* second_ptr = &second->as_loop();
  loop.ub = std::move(ub1);
  loc.parent->insert(loc.parent->begin() + static_cast<long>(loc.index) + 1,
                     std::move(second));
  return {&loop, second_ptr};
}

namespace {

/// Split decomposition of one MIN/MAX inner bound: the operand depending
/// on `var` (affine) and the independent one.
struct CrossoverInfo {
  bool is_min = false;     ///< MIN in ub (vs MAX in lb)
  long alpha = 0;          ///< coefficient of the outer var in f
  IExprPtr beta;           ///< f minus its alpha*var term
  IExprPtr f;              ///< dependent operand
  IExprPtr g;              ///< independent operand
};

std::optional<CrossoverInfo> find_crossover(const Loop& inner,
                                            const std::string& var) {
  auto classify = [&](const IExprPtr& bound,
                      bool is_min) -> std::optional<CrossoverInfo> {
    if (bound->kind != (is_min ? IKind::Min : IKind::Max)) return std::nullopt;
    const IExprPtr& a = bound->lhs;
    const IExprPtr& b = bound->rhs;
    bool am = mentions(*a, var);
    bool bm = mentions(*b, var);
    if (am == bm) return std::nullopt;  // need exactly one dependent side
    const IExprPtr& f = am ? a : b;
    const IExprPtr& g = am ? b : a;
    auto fa = as_affine(*f);
    if (!fa) return std::nullopt;
    long alpha = fa->coef_of(var);
    if (alpha == 0) return std::nullopt;
    Affine beta = *fa - Affine::variable(var, alpha);
    return CrossoverInfo{.is_min = is_min,
                         .alpha = alpha,
                         .beta = from_affine(beta),
                         .f = f,
                         .g = g};
  };
  if (auto c = classify(inner.ub, /*is_min=*/true)) return c;
  if (auto c = classify(inner.lb, /*is_min=*/false)) return c;
  return std::nullopt;
}

}  // namespace

std::pair<Loop*, Loop*> split_trapezoid(StmtList& root, Loop& outer) {
  PassScope scope("split-trapezoid", root);
  if (outer.body.size() != 1 || outer.body[0]->kind() != SKind::Loop)
    throw Error("split_trapezoid: " + outer.var +
                " must perfectly enclose a single loop");
  Loop& inner = outer.body[0]->as_loop();
  auto info = find_crossover(inner, outer.var);
  if (!info)
    throw Error("split_trapezoid: no MIN/MAX bound of " + inner.var +
                " depends on " + outer.var);

  // Crossover: the outer value where f and g trade places.
  IExprPtr point;
  bool f_wins_low;  // does the dependent operand win in the low piece?
  if (info->is_min) {
    if (info->alpha > 0) {
      // f <= g  <=>  I <= floor((g - beta)/alpha): low piece keeps f.
      point = ifloordiv(isub(info->g, info->beta), info->alpha);
      f_wins_low = true;
    } else {
      // f <= g  <=>  I >= ceil((beta - g)/(-alpha)): high piece keeps f.
      point = isub(iceildiv(isub(info->beta, info->g), -info->alpha),
                   iconst(1));
      f_wins_low = false;
    }
  } else {
    if (info->alpha > 0) {
      // f >= g  <=>  I >= ceil((g - beta)/alpha): high piece keeps f.
      point = isub(iceildiv(isub(info->g, info->beta), info->alpha),
                   iconst(1));
      f_wins_low = false;
    } else {
      // f >= g  <=>  I <= floor((beta - g)/(-alpha)): low piece keeps f.
      point = ifloordiv(isub(info->beta, info->g), -info->alpha);
      f_wins_low = true;
    }
  }

  bool is_min = info->is_min;
  IExprPtr f = info->f;
  IExprPtr g = info->g;
  auto [low, high] = split_at(root, outer, simplify(point));

  auto set_bound = [is_min](Loop& piece, const IExprPtr& winner) {
    Loop& in = piece.body[0]->as_loop();
    if (is_min)
      in.ub = winner;
    else
      in.lb = winner;
  };
  set_bound(*low, f_wins_low ? f : g);
  set_bound(*high, f_wins_low ? g : f);
  return {low, high};
}

std::vector<Loop*> split_trapezoid_all(StmtList& root, Loop& outer) {
  std::vector<Loop*> work{&outer};
  std::vector<Loop*> done;
  while (!work.empty()) {
    Loop* l = work.back();
    work.pop_back();
    bool splittable = l->body.size() == 1 &&
                      l->body[0]->kind() == SKind::Loop &&
                      find_crossover(l->body[0]->as_loop(), l->var)
                          .has_value();
    if (!splittable) {
      done.push_back(l);
      continue;
    }
    auto [low, high] = split_trapezoid(root, *l);
    // Process both pieces again (a bound may carry several MIN/MAX).
    work.push_back(high);
    work.push_back(low);
  }
  // `done` is accumulated with low pieces last-in; restore execution order
  // by sorting on position in the tree via the parent lists.
  // Simpler: collect in order of discovery from the tree.
  std::vector<Loop*> ordered;
  std::set<const Loop*> wanted(done.begin(), done.end());
  std::function<void(StmtList&)> walk = [&](StmtList& body) {
    for (auto& s : body) {
      if (s->kind() == SKind::Loop) {
        Loop& l = s->as_loop();
        if (wanted.contains(&l))
          ordered.push_back(&l);
        else
          walk(l.body);
      } else if (s->kind() == SKind::If) {
        walk(s->as_if().then_body);
        walk(s->as_if().else_body);
      }
    }
  };
  walk(root);
  return ordered;
}

namespace {

/// Solve `sub == boundary` for the unique inner-loop variable of `ref`
/// (a loop strictly inside `carrier`), yielding the split point for that
/// loop and the loop itself.
struct SolvedSplit {
  Loop* loop = nullptr;
  IExprPtr point;
};

std::optional<SolvedSplit> solve_split(const RefInfo& ref, std::size_t dim,
                                       const IExprPtr& boundary,
                                       const Loop& carrier) {
  auto pos_it = std::find(ref.loops.begin(), ref.loops.end(), &carrier);
  if (pos_it == ref.loops.end()) return std::nullopt;
  auto fa = as_affine(*ref.subs[dim]);
  if (!fa) return std::nullopt;
  // Find the unique inner loop whose variable appears in the subscript.
  Loop* target = nullptr;
  long alpha = 0;
  for (auto it = pos_it + 1; it != ref.loops.end(); ++it) {
    long k = fa->coef_of((*it)->var);
    if (k != 0) {
      if (target) return std::nullopt;  // more than one inner variable
      target = *it;
      alpha = k;
    }
  }
  if (!target || std::abs(alpha) != 1) return std::nullopt;
  Affine beta = *fa - Affine::variable(target->var, alpha);
  // alpha * v + beta == boundary  =>  v == (boundary - beta)/alpha
  IExprPtr point = alpha == 1
                       ? isub(boundary, from_affine(beta))
                       : isub(from_affine(beta), boundary);
  return SolvedSplit{.loop = target, .point = simplify(point)};
}

}  // namespace

namespace {

/// Number of dependence components of the carrier body under the filter,
/// plus whether any multi-node component (recurrence) remains.
struct BodyShape {
  std::size_t parts = 0;
  bool recurrence = false;
};

BodyShape shape_of(StmtList& root, Loop& carrier, const Assumptions& base,
                   bool use_commutativity) {
  analysis::DepGraphPtr g = analysis::dep_graph_for(root, carrier, &base);
  DepGraph::EdgeFilter ignore;
  if (use_commutativity) ignore = commutativity_filter(carrier);
  auto comps = g->components(ignore);
  BodyShape s{.parts = comps.size(), .recurrence = false};
  for (const auto& c : comps)
    if (c.size() > 1) s.recurrence = true;
  return s;
}

}  // namespace

SplitReport index_set_split(StmtList& root, Loop& carrier,
                            const Assumptions& base,
                            bool use_commutativity) {
  PassScope scope("index-set-split", root);
  SplitReport report;
  std::set<std::string> attempted;  // "var@point" keys, to guarantee progress

  for (int iter = 0; iter < 8; ++iter) {
    // Both this scan and shape_of below want the carrier graph; the
    // AnalysisManager (when installed) coalesces them into one build.
    analysis::DepGraphPtr g =
        analysis::dep_graph_for(root, carrier, &base);
    DepGraph::EdgeFilter ignore;
    if (use_commutativity) ignore = commutativity_filter(carrier);
    BodyShape before = shape_of(root, carrier, base, use_commutativity);
    if (before.parts > 1 || !before.recurrence) {
      report.distributable = true;
      return report;
    }
    bool progressed = false;
    for (const auto& e : g->recurrence_edges()) {
      const RefInfo& src = e.dep.src;
      const RefInfo& dst = e.dep.dst;
      if (src.is_scalar() || dst.is_scalar()) continue;
      if (ignore && ignore(e)) continue;  // already discounted
      // Steps 1-3 of Fig. 3: sections, intersection vs union.
      Section s_src = analysis::section_within_for(src, carrier);
      Section s_dst = analysis::section_within_for(dst, carrier);
      if (auto eq = analysis::equal(s_src, s_dst, base); eq && *eq)
        continue;  // intersection == union: nothing to carve off
      // Step 4: boundary between the disjoint and common regions.
      for (const auto& cand :
           analysis::split_boundaries(s_src, s_dst, base)) {
        const RefInfo& victim = cand.split_b ? dst : src;
        auto solved = solve_split(victim, cand.dim, cand.boundary, carrier);
        if (!solved) continue;
        // Key trials by loop identity: distinct loops often share a
        // variable name (the swap and update J loops of Fig. 7).
        std::string key =
            std::to_string(reinterpret_cast<std::uintptr_t>(solved->loop)) +
            "@" + to_string(solved->point);
        if (attempted.contains(key)) continue;
        attempted.insert(key);
        // Step 5: trial-split the inner loop's index set at the solved
        // point; keep it only if the carrier body gains a component.
        IExprPtr saved_ub = solved->loop->ub;
        auto [lo, hi] = split_at(root, *solved->loop, solved->point);
        BodyShape after = shape_of(root, carrier, base, use_commutativity);
        if (getenv("BLK_TRACE_SPLIT"))
          fprintf(stderr, "trial %s@%s: parts %zu->%zu rec %d->%d\n",
                  solved->loop->var.c_str(), to_string(solved->point).c_str(),
                  before.parts, after.parts, (int)before.recurrence,
                  (int)after.recurrence);
        if (after.parts > before.parts || !after.recurrence) {
          ++report.splits;
          progressed = true;
          break;
        }
        // No progress: undo (restore the bound, drop the clone).  This
        // mutates the tree outside any PassScope, so cached analyses must
        // be dropped by hand.
        lo->ub = std::move(saved_ub);
        LoopLocation loc = locate(root, *hi);
        loc.parent->erase(loc.parent->begin() +
                          static_cast<long>(loc.index));
        analysis::notify_ir_mutation();
      }
      if (progressed) break;
    }
    if (!progressed) break;
  }
  BodyShape final_shape = shape_of(root, carrier, base, use_commutativity);
  report.distributable = final_shape.parts > 1 || !final_shape.recurrence;
  return report;
}

}  // namespace blk::transform
