// Index-set splitting (§3) — the paper's key enabling transformation.
//
// Three entry points:
//   * split_at           - the primitive: one loop into two disjoint pieces
//   * split_trapezoid    - §3.2: remove a MIN/MAX from an inner bound by
//                          splitting the outer loop at the crossover
//   * index_set_split    - Fig. 3: section-analysis-driven splitting that
//                          carves the non-recurrent part out of a loop with
//                          a partial recurrence, enabling distribution
#pragma once

#include <utility>

#include "analysis/depgraph.hpp"
#include "analysis/sections.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Split `loop` at `point`:
///
///   DO V = lb, MIN(ub, point)            ! piece 1
///   DO V = MAX(lb, MIN(ub,point)+1), ub  ! piece 2
///
/// Execution order and the iteration set are unchanged for every value of
/// the symbols, so this is unconditionally safe.  Returns the two pieces
/// (the first reuses the original node).
std::pair<ir::Loop*, ir::Loop*> split_at(ir::StmtList& root, ir::Loop& loop,
                                         ir::IExprPtr point);

/// §3.2 trapezoid handling.  `outer` must perfectly enclose one inner loop
/// whose upper bound is MIN(f(outer), g) or whose lower bound is
/// MAX(f(outer), g), with f affine in the outer variable and g independent
/// of it.  Splits `outer` at the crossover and replaces the MIN/MAX by the
/// winning operand in each piece.  Returns the two outer pieces.
std::pair<ir::Loop*, ir::Loop*> split_trapezoid(ir::StmtList& root,
                                                ir::Loop& outer);

/// Fully de-trapezoidalize: repeatedly apply split_trapezoid to `outer`
/// and its pieces until no inner bound carries a MIN/MAX that mentions the
/// outer variable.  Returns the resulting outer loops in execution order.
std::vector<ir::Loop*> split_trapezoid_all(ir::StmtList& root,
                                           ir::Loop& outer);

/// Result of Procedure IndexSetSplit (Fig. 3).
struct SplitReport {
  bool distributable = false;  ///< the body now has >1 dependence component
  int splits = 0;              ///< index-set splits performed
};

/// Procedure IndexSetSplit: for each transformation-preventing dependence
/// of `carrier`'s body (edges inside a multi-statement SCC), compute source
/// and sink sections, and when they provably diverge, split the sink's
/// generator loop at the boundary between the common and disjoint regions.
/// Each candidate split is *trialled*: if it does not increase the number
/// of dependence components of the carrier body it is undone, so hopeless
/// recurrences (a scalar binding everything together) cannot trigger split
/// cascades.  Repeats until the body is distributable or no trial helps.
///
/// `base` carries driver facts (e.g. the full-block assumption
/// K+KS-1 <= N-1) that guide *where* to split; splitting is safe for any
/// symbol values, so wrong guidance can only cost performance.
/// `use_commutativity` applies the §5.2 pattern matcher when measuring
/// progress (the filter is re-derived after every mutation, since matched
/// statements move and clone during splitting).
SplitReport index_set_split(ir::StmtList& root, ir::Loop& carrier,
                            const analysis::Assumptions& base,
                            bool use_commutativity = false);

}  // namespace blk::transform
