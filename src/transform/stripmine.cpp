#include "transform/stripmine.hpp"

#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;

Loop& strip_mine(Program& p, Loop& loop, IExprPtr block, bool exact) {
  PassScope scope("strip-mine", p.body);
  if (!(loop.step->kind == IKind::Const && loop.step->value == 1))
    throw Error("strip_mine: loop " + loop.var + " must have unit step");

  std::string inner_var = p.fresh_var(loop.var);
  p.note_var(inner_var);

  // Body now belongs to the inner loop, iterating with the new variable.
  StmtList body = std::move(loop.body);
  substitute_index_in_list(body, loop.var, ivar(inner_var));

  IExprPtr inner_ub = simplify(isub(iadd(ivar(loop.var), block), iconst(1)));
  if (!exact) inner_ub = imin(inner_ub, loop.ub);

  StmtPtr inner = make_loop(inner_var, ivar(loop.var), std::move(inner_ub),
                            std::move(body));
  Loop& inner_ref = inner->as_loop();
  loop.body.clear();
  loop.body.push_back(std::move(inner));
  loop.step = std::move(block);
  return inner_ref;
}

}  // namespace blk::transform
