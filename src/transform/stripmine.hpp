// Strip mining: the first half of strip-mine-and-interchange (§2.3).
#pragma once

#include "ir/program.hpp"

namespace blk::transform {

/// Turn `DO V = lb, ub` into
///
///   DO V  = lb, ub, BS
///     DO VV = V, MIN(V+BS-1, ub)
///       <body with V replaced by VV>
///
/// The loop must have unit step.  `block` is the (possibly symbolic) strip
/// size BS.  When `exact` is true the MIN is omitted (caller guarantees BS
/// divides the trip count — used while deriving, where MIN bounds would
/// blind the symbolic analyses; the driver reinstates the MIN afterwards).
///
/// Returns the new inner loop; the outer loop is the original in place.
ir::Loop& strip_mine(ir::Program& p, ir::Loop& loop, ir::IExprPtr block,
                     bool exact = false);

}  // namespace blk::transform
