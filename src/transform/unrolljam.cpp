#include "transform/unrolljam.hpp"

#include <algorithm>

#include "analysis/ddtest.hpp"
#include "ir/affine.hpp"
#include "ir/error.hpp"
#include "transform/instrument.hpp"

namespace blk::transform {

using namespace blk::ir;
using analysis::Assumptions;

namespace {

/// Locate `loop` by identity anywhere under `root`.
LoopLocation locate(StmtList& root, const Loop& loop) {
  struct Finder {
    const Loop* target;
    LoopLocation found;
    void walk(StmtList& body) {
      for (std::size_t i = 0; i < body.size() && !found.loop; ++i) {
        Stmt& s = *body[i];
        if (s.kind() == SKind::Loop) {
          Loop& l = s.as_loop();
          if (&l == target) {
            found = {.parent = &body, .index = i, .loop = &l};
            return;
          }
          walk(l.body);
        } else if (s.kind() == SKind::If) {
          walk(s.as_if().then_body);
          walk(s.as_if().else_body);
        }
      }
    }
  } finder{.target = &loop, .found = {}};
  finder.walk(root);
  if (!finder.found)
    throw Error("unroll_and_jam: loop " + loop.var + " not found in tree");
  return finder.found;
}

/// Merge `factor` unrolled copies of a statement list position-by-position.
StmtList jam(std::vector<StmtList> copies) {
  StmtList out;
  if (copies.empty()) return out;
  std::size_t len = copies[0].size();
  for (const auto& c : copies)
    if (c.size() != len)
      throw Error("unroll_and_jam: copies diverge in statement count");
  for (std::size_t i = 0; i < len; ++i) {
    SKind kind = copies[0][i]->kind();
    for (const auto& c : copies)
      if (c[i]->kind() != kind)
        throw Error("unroll_and_jam: copies diverge in statement kind");
    switch (kind) {
      case SKind::Assign:
        for (auto& c : copies) out.push_back(std::move(c[i]));
        break;
      case SKind::Loop: {
        Loop& first = copies[0][i]->as_loop();
        std::vector<StmtList> bodies;
        for (auto& c : copies) {
          Loop& l = c[i]->as_loop();
          if (!provably_equal(l.lb, first.lb) ||
              !provably_equal(l.ub, first.ub) ||
              !provably_equal(l.step, first.step))
            throw Error(
                "unroll_and_jam: inner loop bounds depend on the unrolled "
                "variable; use the triangular variant");
          if (l.var != first.var)
            throw Error("unroll_and_jam: inner variable mismatch");
          bodies.push_back(std::move(l.body));
        }
        first.body = jam(std::move(bodies));
        out.push_back(std::move(copies[0][i]));
        break;
      }
      case SKind::If: {
        If& first = copies[0][i]->as_if();
        std::vector<StmtList> thens, elses;
        for (auto& c : copies) {
          If& f = c[i]->as_if();
          if (!same_vexpr(*f.cond.lhs, *first.cond.lhs) ||
              f.cond.op != first.cond.op ||
              !same_vexpr(*f.cond.rhs, *first.cond.rhs))
            throw Error(
                "unroll_and_jam: IF condition depends on the unrolled "
                "variable; apply IF-inspection first");
          thens.push_back(std::move(f.then_body));
          elses.push_back(std::move(f.else_body));
        }
        first.then_body = jam(std::move(thens));
        first.else_body = jam(std::move(elses));
        out.push_back(std::move(copies[0][i]));
        break;
      }
    }
  }
  return out;
}

/// Unrolled copies of `body` with `var` shifted by 0..factor-1.
std::vector<StmtList> make_copies(const StmtList& body,
                                  const std::string& var, long factor) {
  std::vector<StmtList> copies;
  copies.reserve(static_cast<std::size_t>(factor));
  for (long k = 0; k < factor; ++k) {
    StmtList c = clone_list(body);
    if (k != 0)
      substitute_index_in_list(c, var, iadd(ivar(var), iconst(k)));
    copies.push_back(std::move(c));
  }
  return copies;
}

/// Append the remainder loop after the (mutated-in-place) main loop.
/// `original_body` is a pristine clone of the pre-transformation body.
void add_remainder(StmtList& parent, std::size_t index, const Loop& main,
                   IExprPtr orig_lb, IExprPtr orig_ub, StmtList body) {
  // First iteration not covered by the main loop:
  //   lb + floor(max(trip, 0)/factor) * factor
  // The MAX guard keeps an originally empty loop (negative trip count)
  // from spawning phantom iterations below the lower bound.
  IExprPtr trip =
      imax(iadd(isub(orig_ub, orig_lb), iconst(1)), iconst(0));
  IExprPtr rem_lb = simplify(
      iadd(orig_lb, imul(ifloordiv(trip, main.const_step()),
                         iconst(main.const_step()))));
  StmtPtr rem =
      make_loop(main.var, std::move(rem_lb), std::move(orig_ub),
                std::move(body));
  parent.insert(parent.begin() + static_cast<long>(index) + 1,
                std::move(rem));
}

}  // namespace

bool unroll_and_jam_legal(StmtList& root, Loop& loop, long factor,
                          const Assumptions* ctx) {
  auto deps = analysis::all_dependences(root, {.ctx = ctx});
  for (const auto& d : deps) {
    std::size_t depth = d.src.common_depth(d.dst);
    std::optional<std::size_t> pos;
    for (std::size_t i = 0; i < depth; ++i)
      if (d.src.loops[i] == &loop) pos = i;
    if (!pos) continue;
    for (const auto& v : d.vectors) {
      if (v[*pos] != analysis::Dir::LT) continue;
      // (<, ..., >) against an inner loop: reversed by the jam.
      for (std::size_t j = *pos + 1; j < v.size(); ++j)
        if (v[j] == analysis::Dir::GT) return false;
      // Later-statement -> earlier-statement carried within the strip:
      // after jamming, all of the earlier statement's copies run first,
      // reversing the dependence unless the carried distance clears the
      // strip.
      if (d.src.textual_pos > d.dst.textual_pos) {
        auto dist = d.distance_at(*pos);
        if (!dist || *dist < factor) return false;
      }
    }
  }
  return true;
}

void unroll_and_jam(StmtList& root, Loop& loop, long factor,
                    const Assumptions* ctx, bool check) {
  PassScope scope("unroll-and-jam", root);
  if (factor < 2) throw Error("unroll_and_jam: factor must be >= 2");
  if (!(loop.step->kind == IKind::Const && loop.step->value == 1))
    throw Error("unroll_and_jam: loop must have unit step");
  if (check && !unroll_and_jam_legal(root, loop, factor, ctx))
    throw Error("unroll_and_jam: dependences forbid jamming " + loop.var);

  LoopLocation loc = locate(root, loop);
  IExprPtr orig_lb = loop.lb;
  IExprPtr orig_ub = loop.ub;
  StmtList pristine = clone_list(loop.body);

  loop.body = jam(make_copies(loop.body, loop.var, factor));
  loop.ub = simplify(isub(loop.ub, iconst(factor - 1)));
  loop.step = iconst(factor);
  add_remainder(*loc.parent, loc.index, loop, std::move(orig_lb),
                std::move(orig_ub), std::move(pristine));
}

void unroll_and_jam_triangular(StmtList& root, Loop& loop, long factor,
                               const Assumptions* ctx, bool check) {
  PassScope scope("unroll-and-jam-triangular", root);
  if (factor < 2)
    throw Error("unroll_and_jam_triangular: factor must be >= 2");
  if (loop.body.size() != 1 || loop.body[0]->kind() != SKind::Loop)
    throw Error(
        "unroll_and_jam_triangular: need a perfect 2-deep nest under " +
        loop.var);
  Loop& inner = loop.body[0]->as_loop();
  auto f = as_affine(*inner.lb);
  if (!f || f->coef_of(loop.var) != 1)
    throw Error(
        "unroll_and_jam_triangular: inner lower bound must be " + loop.var +
        " + beta (slope one)");
  if (mentions(*inner.ub, loop.var))
    throw Error(
        "unroll_and_jam_triangular: inner upper bound must not depend on " +
        loop.var);
  if (check && !unroll_and_jam_legal(root, loop, factor, ctx))
    throw Error("unroll_and_jam_triangular: dependences forbid jamming " +
                loop.var);

  LoopLocation loc = locate(root, loop);
  IExprPtr orig_lb = loop.lb;
  IExprPtr orig_ub = loop.ub;
  IExprPtr m = inner.ub;                         // independent upper bound
  Affine beta_aff = *f - Affine::variable(loop.var, 1);
  IExprPtr beta = from_affine(beta_aff);
  std::string jvar = inner.var;
  StmtList pristine = clone_list(loop.body);
  StmtList inner_body = std::move(inner.body);

  const std::string i = loop.var;
  const std::string ii = i + "T";  // triangular-head induction variable

  // Triangular head: DO II = I, I+f-2 / DO J = II+beta, MIN(I+f-2+beta, M).
  StmtList head_inner_body = clone_list(inner_body);
  substitute_index_in_list(head_inner_body, i, ivar(ii));
  IExprPtr head_j_ub =
      imin(simplify(iadd(iadd(ivar(i), iconst(factor - 2)), beta)), m);
  StmtPtr head_j = make_loop(
      jvar, simplify(iadd(ivar(ii), beta)), std::move(head_j_ub),
      std::move(head_inner_body));
  // The head body uses II where the original used I; the substitution above
  // replaced I inside the body, and the J bound uses II directly.
  StmtList head_body;
  head_body.push_back(std::move(head_j));
  StmtPtr head = make_loop(ii, ivar(i),
                           simplify(iadd(ivar(i), iconst(factor - 2))),
                           std::move(head_body));

  // Rectangular part: DO J = I+f-1+beta, M with the body unrolled over the
  // strip I .. I+f-1.
  std::vector<StmtList> copies = make_copies(inner_body, i, factor);
  StmtList rect_body = jam(std::move(copies));
  StmtPtr rect = make_loop(
      jvar, simplify(iadd(iadd(ivar(i), iconst(factor - 1)), beta)), m,
      std::move(rect_body));

  loop.body.clear();
  loop.body.push_back(std::move(head));
  loop.body.push_back(std::move(rect));
  loop.ub = simplify(isub(loop.ub, iconst(factor - 1)));
  loop.step = iconst(factor);
  add_remainder(*loc.parent, loc.index, loop, std::move(orig_lb),
                std::move(orig_ub), std::move(pristine));
}

}  // namespace blk::transform
