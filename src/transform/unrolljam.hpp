// Unroll-and-jam (register blocking), rectangular and triangular (§2.3,
// §3.1).
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"

namespace blk::transform {

/// Rectangular unroll-and-jam of `loop` by `factor`:
///
///   DO I = lb, ub              DO I = lb, ub-(factor-1), factor
///     <body(I)>           =>     <jam(body(I), ..., body(I+factor-1))>
///                              DO I = <past main part>, ub
///                                <body(I)>          ! remainder pre/post loop
///
/// Jamming merges the unrolled copies position-by-position: assignments
/// concatenate in unroll order; loops whose bounds are provably identical
/// across copies fuse into one loop with concatenated bodies (recursively).
/// Throws blk::Error when the loop body's inner-loop bounds depend on the
/// unrolled variable (use unroll_and_jam_triangular) or when dependences
/// forbid the jam.
void unroll_and_jam(ir::StmtList& root, ir::Loop& loop, long factor,
                    const analysis::Assumptions* ctx = nullptr,
                    bool check = true);

/// Triangular unroll-and-jam (§3.1) for a 2-deep nest
///
///   DO I = lb, ub
///     DO J = I+beta, M         ! lower bound tracks I with slope 1
///       <body>
///
/// Produces, per strip of `factor` iterations of I (the paper's Fig. in
/// §3.1 with alpha = 1):
///
///   DO I = lb, ub-(factor-1), factor
///     DO II = I, I+factor-2              ! triangular head, not unrolled
///       DO J = II+beta, MIN(I+factor-2+beta, M)
///         <body(II)>
///     DO J = I+factor-1+beta, M          ! rectangular part, unrolled
///       <body(I) ... body(I+factor-1)>
///   DO I = ..., ub                       ! remainder
///     DO J = I+beta, M
///       <body>
///
/// Requires the inner lower bound to be exactly I + beta (slope one, the
/// form every kernel in the paper exhibits).
void unroll_and_jam_triangular(ir::StmtList& root, ir::Loop& loop,
                               long factor,
                               const analysis::Assumptions* ctx = nullptr,
                               bool check = true);

/// Legality.  Jamming maps iteration order (k, position) to
/// (position, k-within-strip), so it is an interchange in disguise and is
/// illegal when a dependence carried by `loop`
///   * has a (<,>) pattern against an inner loop, or
///   * runs from a textually later statement back to an earlier one at a
///     carried distance smaller than `factor` (the reordered window).
[[nodiscard]] bool unroll_and_jam_legal(ir::StmtList& root, ir::Loop& loop,
                                        long factor,
                                        const analysis::Assumptions* ctx =
                                            nullptr);

}  // namespace blk::transform
