#include "verify/depcheck.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ddtest.hpp"
#include "analysis/refs.hpp"
#include "transform/pattern.hpp"

namespace blk::verify {

using namespace blk::ir;
using analysis::DepType;
using analysis::Dependence;
using analysis::RefInfo;

namespace {

// ---- Statement-correspondence keys -----------------------------------------

[[nodiscard]] char bop_char(BinOp op) {
  switch (op) {
    case BinOp::Add: return '+';
    case BinOp::Sub: return '-';
    case BinOp::Mul: return '*';
    case BinOp::Div: return '/';
  }
  return '?';
}

/// Operator skeleton of a value expression: leaf names kept, subscripts and
/// index expressions erased.  Invariant under the index substitutions the
/// reordering passes perform (strip-mine, interchange, unroll offsets, ...).
void vskel(const VExpr& e, std::string& out) {
  switch (e.kind) {
    case VKind::Const: {
      std::ostringstream os;
      os << e.cval;
      out += os.str();
      return;
    }
    case VKind::ArrayRef:
      out += e.name;
      return;
    case VKind::ScalarRef:
      out += e.name;
      return;
    case VKind::IndexVal:
      out += '@';  // index value: expression erased like a subscript
      return;
    case VKind::Bin:
      out += '(';
      if (e.lhs) vskel(*e.lhs, out);
      out += bop_char(e.bop);
      if (e.rhs) vskel(*e.rhs, out);
      out += ')';
      return;
    case VKind::Un:
      out += (e.uop == UnOp::Neg ? "neg(" : e.uop == UnOp::Sqrt ? "sqrt("
                                                                : "abs(");
      if (e.lhs) vskel(*e.lhs, out);
      out += ')';
      return;
  }
}

[[nodiscard]] const char* cmp_str(CmpOp op) {
  switch (op) {
    case CmpOp::EQ: return "==";
    case CmpOp::NE: return "!=";
    case CmpOp::LT: return "<";
    case CmpOp::LE: return "<=";
    case CmpOp::GT: return ">";
    case CmpOp::GE: return ">=";
  }
  return "?";
}

[[nodiscard]] std::string describe_owner(const Stmt& s) {
  switch (s.kind()) {
    case SKind::Assign: {
      const Assign& a = s.as_assign();
      std::string out;
      if (a.label != 0) out += std::to_string(a.label) + ": ";
      out += a.lhs.name;
      if (a.lhs.is_array()) {
        out += "(";
        for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
          if (i) out += ",";
          out += ir::to_string(a.lhs.subs[i]);
        }
        out += ")";
      }
      return out + "=...";
    }
    case SKind::If:
      return "IF (" + ir::to_string(s.as_if().cond) + ")";
    case SKind::Loop:
      return "DO " + s.as_loop().var;
  }
  return "?";
}

// ---- Descending-loop normalization -----------------------------------------

/// Rewrite every `DO V = hi, lo, -1` as `DO V = lo, hi` with occurrences
/// of V replaced by (lo + hi) - V — same iteration sequence read forwards.
/// The dependence tester assumes ascending loops; after normalization an
/// illegally reversed loop shows its dependences running backwards.
void normalize_descending(StmtList& body) {
  for (auto& s : body) {
    if (!s) continue;
    switch (s->kind()) {
      case SKind::Assign:
        break;
      case SKind::Loop: {
        Loop& l = s->as_loop();
        if (l.step && l.step->kind == IKind::Const && l.step->value == -1) {
          IExprPtr lo = l.ub, hi = l.lb;
          IExprPtr mirror = isub(iadd(lo, hi), ivar(l.var));
          substitute_index_in_list(l.body, l.var, mirror);
          l.lb = lo;
          l.ub = hi;
          l.step = iconst(1);
        }
        normalize_descending(l.body);
        break;
      }
      case SKind::If: {
        If& f = s->as_if();
        normalize_descending(f.then_body);
        normalize_descending(f.else_body);
        break;
      }
    }
  }
}

// ---- Commutativity whitelist (§5.2) ----------------------------------------

/// True when one dependence endpoint lies inside a matched row-interchange
/// loop on the dependence's array while the other endpoint is a
/// whole-column update of the same array.
[[nodiscard]] bool commutes(const Dependence& dep) {
  auto in_row_swap = [&](const RefInfo& r) {
    for (Loop* l : r.loops) {
      auto m = transform::match_row_swap(*l);
      if (m && m->array == dep.src.array) return true;
    }
    return false;
  };
  auto col_update = [&](const RefInfo& r) {
    return r.owner != nullptr &&
           transform::is_column_update(*r.owner, dep.src.array);
  };
  return (in_row_swap(dep.src) && col_update(dep.dst)) ||
         (in_row_swap(dep.dst) && col_update(dep.src));
}

// ---- Matching --------------------------------------------------------------

[[nodiscard]] std::string dep_signature(DepType t, const std::string& src_key,
                                        const std::string& dst_key,
                                        const std::string& array) {
  return std::string(analysis::to_string(t)) + "\x1f" + src_key + "\x1f" +
         dst_key + "\x1f" + array;
}

[[nodiscard]] std::string summarize_vectors(const Dependence& d) {
  std::string out;
  for (std::size_t i = 0; i < d.vectors.size() && i < 4; ++i) {
    out += i ? " " : "";
    out += "(";
    for (std::size_t l = 0; l < d.vectors[i].size(); ++l) {
      if (l) out += ",";
      out += analysis::to_char(d.vectors[i][l]);
    }
    out += ")";
  }
  if (d.vectors.size() > 4) out += " ...";
  if (d.vectors.empty()) out += "(loop-independent)";
  return out;
}

}  // namespace

std::string stmt_key(const Stmt& s) {
  switch (s.kind()) {
    case SKind::Assign: {
      const Assign& a = s.as_assign();
      std::string key = "A|" + std::to_string(a.label) + "|" + a.lhs.name +
                        "|";
      if (a.rhs) vskel(*a.rhs, key);
      return key;
    }
    case SKind::If: {
      const If& f = s.as_if();
      std::string key = "IF|";
      if (f.cond.lhs) vskel(*f.cond.lhs, key);
      key += cmp_str(f.cond.op);
      if (f.cond.rhs) vskel(*f.cond.rhs, key);
      return key;
    }
    case SKind::Loop:
      // Loop-owned references are bound reads; fuse/strip-mine rename loop
      // variables freely, so all loops share one correspondence group.
      return "DO";
  }
  return "?";
}

Report check_dependence_preservation(const Program& pre, const Program& post,
                                     const DepCheckOptions& opt) {
  Report rep;

  // Work on private clones: normalization rewrites loop headers.
  Program a = pre.clone();
  Program b = post.clone();
  normalize_descending(a.body);
  normalize_descending(b.body);

  analysis::DepOptions dopt{.include_inputs = false, .ctx = opt.ctx};
  std::vector<Dependence> pre_deps = analysis::all_dependences(a.body, dopt);
  std::vector<Dependence> post_deps = analysis::all_dependences(b.body, dopt);

  // Post-side correspondence groups: which keys survive, which references
  // belong to each, and which (type, src, dst, array) edges exist.
  std::set<std::string> post_keys;
  ir::for_each_stmt(b.body,
                    [&](Stmt& s) { post_keys.insert(stmt_key(s)); });
  std::vector<RefInfo> post_refs = analysis::collect_refs(b.body);
  std::map<std::string, std::vector<const RefInfo*>> post_groups;
  for (const RefInfo& r : post_refs)
    post_groups[stmt_key(*r.owner)].push_back(&r);
  std::set<std::string> post_index;
  for (const Dependence& d : post_deps)
    post_index.insert(dep_signature(d.type, stmt_key(*d.src.owner),
                                    stmt_key(*d.dst.owner), d.src.array));

  for (const Dependence& dep : pre_deps) {
    if (dep.type == DepType::Input) continue;
    if (!opt.check_scalars && dep.src.is_scalar()) continue;
    if (opt.allow_commutative_swaps && commutes(dep)) continue;

    std::string src_key = stmt_key(*dep.src.owner);
    std::string dst_key = stmt_key(*dep.dst.owner);
    std::string src_desc = describe_owner(*dep.src.owner);
    std::string dst_desc = describe_owner(*dep.dst.owner);

    if (!post_keys.count(src_key) || !post_keys.count(dst_key)) {
      const std::string& lost =
          post_keys.count(src_key) ? dst_desc : src_desc;
      rep.add(Severity::Error, "lost-statement",
              "statement '" + lost + "' (endpoint of a " +
                  analysis::to_string(dep.type) + " dependence on " +
                  dep.src.array +
                  ") has no corresponding statement after the pass",
              src_desc + " -> " + dst_desc);
      continue;
    }

    if (post_index.count(
            dep_signature(dep.type, src_key, dst_key, dep.src.array)))
      continue;  // preserved: same-type edge between the same groups

    // No matching edge.  Either the accesses became provably independent
    // (legal — index-set splitting does this) or they still conflict but
    // only in the reversed order (the pass broke the dependence).
    std::set<std::string> residual;
    auto src_it = post_groups.find(src_key);
    auto dst_it = post_groups.find(dst_key);
    if (src_it != post_groups.end() && dst_it != post_groups.end()) {
      for (const RefInfo* x : src_it->second) {
        if (x->is_write != dep.src.is_write || x->array != dep.src.array)
          continue;
        for (const RefInfo* y : dst_it->second) {
          if (y->is_write != dep.dst.is_write || y->array != dep.dst.array)
            continue;
          if (x == y) continue;
          const RefInfo* first = x;
          const RefInfo* second = y;
          if (second->textual_pos < first->textual_pos)
            std::swap(first, second);
          for (const Dependence& e :
               analysis::test_pair(*first, *second, opt.ctx)) {
            std::string dir = (stmt_key(*e.src.owner) == src_key &&
                               (src_key != dst_key ||
                                e.src.is_write == dep.src.is_write))
                                  ? "forward"
                                  : "reversed";
            residual.insert(std::string(analysis::to_string(e.type)) + " (" +
                            dir + ")");
          }
        }
      }
    }
    if (residual.empty()) continue;  // provably independent now: legal

    std::string found;
    for (const auto& r : residual) {
      if (!found.empty()) found += ", ";
      found += r;
    }
    rep.add(Severity::Error, "dep-broken",
            std::string(analysis::to_string(dep.type)) + " dependence on " +
                dep.src.array + " from '" + src_desc + "' to '" + dst_desc +
                "' " + summarize_vectors(dep) +
                " is not preserved: the accesses still conflict, but as " +
                found +
                " — the pass reordered accesses whose order carries a value",
            src_desc + " -> " + dst_desc);
  }

  return rep;
}

}  // namespace blk::verify
