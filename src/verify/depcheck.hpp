// Dependence-preservation checking (translation validation for reordering
// transformations).
//
// A reordering pass is legal iff every data dependence of the original
// program is respected by the transformed program.  This checker verifies
// that property *independently of the pass that claimed it*: it recomputes
// the statement dependence graph on both the pre- and post-transformation
// IR with the conservative tester (analysis/ddtest) and demands that every
// original non-input dependence either
//   * reappears after the pass with the same type (flow/anti/output)
//     between corresponding statements — the accesses still execute in
//     dependence order; or
//   * is provably gone — the conflicting accesses no longer overlap
//     (index-set splitting can achieve this).
// A dependence whose endpoints still conflict but only in the *reversed*
// order is a broken dependence: the pass reordered two accesses whose
// order carries a value.
//
// Statements are matched across the pass by structural keys (label, target
// and an rhs operator skeleton with subscripts erased), which are invariant
// under every index substitution the reordering passes perform; cloned
// statements (unrolling, splitting) share their original's key, and the
// check works at key-group granularity.  Descending (step -1) loops are
// normalized to ascending form on private clones first — the tester
// assumes ascending loops, and normalization is exactly what makes an
// illegal loop reversal visible.
//
// The paper's §5.2 escape hatch is honoured: dependences between a
// row-interchange loop and whole-column updates on the same array commute
// semantically, and may be reordered even though data dependence alone
// forbids it (that is what blocks pivoted LU).
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "verify/diagnostic.hpp"

namespace blk::verify {

struct DepCheckOptions {
  /// Extra symbolic facts for the dependence tester's direction screen
  /// (the same hints handed to the transformation driver).  May be null.
  const analysis::Assumptions* ctx = nullptr;
  /// Honour the §5.2 commutativity whitelist: skip dependences between a
  /// matched row-interchange loop and whole-column updates on its array.
  bool allow_commutative_swaps = true;
  /// Also check dependences carried by scalars.  Reordering passes that
  /// legitimately rewire scalar values (scalar replacement / expansion)
  /// must not be checked with this on — the pipeline harness runs them
  /// under a lint-only policy instead.
  bool check_scalars = true;
};

/// Check that every dependence of `pre` is preserved in `post`.
/// Errors identify the broken dependence, its endpoints and what the
/// post-pass program does instead.  Both programs are cloned internally;
/// neither argument is modified.
[[nodiscard]] Report check_dependence_preservation(
    const ir::Program& pre, const ir::Program& post,
    const DepCheckOptions& opt = {});

/// Structural statement-correspondence key (exposed for tests): assignment
/// label, target name and rhs skeleton with subscripts erased — stable
/// across index substitution, cloning and reordering.
[[nodiscard]] std::string stmt_key(const ir::Stmt& s);

}  // namespace blk::verify
