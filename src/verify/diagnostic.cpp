#include "verify/diagnostic.hpp"

#include <algorithm>
#include <sstream>

namespace blk::verify {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << verify::to_string(severity) << " [" << code << "] " << message;
  if (subscript > 0) os << " (subscript " << subscript << ")";
  if (!where.empty()) os << "\n    at " << where;
  return os.str();
}

bool Report::ok() const {
  return std::none_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
}

std::size_t Report::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      }));
}

std::size_t Report::warning_count() const {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Warning;
      }));
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags) os << d.to_string() << "\n";
  return os.str();
}

void Report::add(Severity sev, std::string code, std::string message,
                 std::string where, int subscript) {
  diags.push_back({.severity = sev,
                   .code = std::move(code),
                   .message = std::move(message),
                   .where = std::move(where),
                   .subscript = subscript});
}

void Report::merge(const Report& other) {
  diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

void Report::canonicalize() {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.where != b.where) return a.where < b.where;
                     if (a.code != b.code) return a.code < b.code;
                     if (a.subscript != b.subscript)
                       return a.subscript < b.subscript;
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  auto last = std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.code == b.code && a.where == b.where &&
                                   a.subscript == b.subscript;
                          });
  diags.erase(last, diags.end());
}

}  // namespace blk::verify
