// Diagnostics shared by the verification passes (lint, dependence check,
// pipeline harness).  One entry point, one format: every finding carries a
// severity, a stable machine-readable code, a human message and the
// statement path it anchors to, so tools (blk-verify, the fuzzer, tests)
// can filter and render uniformly.
#pragma once

#include <string>
#include <vector>

namespace blk::verify {

enum class Severity : int { Note = 0, Warning = 1, Error = 2 };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     ///< stable id, e.g. "oob-subscript", "dep-broken"
  std::string message;  ///< human-readable finding
  std::string where;    ///< statement path, e.g. "DO K > DO I > A(I,K)=..."
  int subscript = 0;    ///< offending subscript position (1-based), 0 = n/a

  [[nodiscard]] std::string to_string() const;
};

/// Outcome of one verification pass.
struct Report {
  std::vector<Diagnostic> diags;

  /// True when no diagnostic reaches Error severity.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] std::string to_string() const;

  void add(Severity sev, std::string code, std::string message,
           std::string where = {}, int subscript = 0);
  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  /// Make the report diff-able: sort by (where, code, subscript, severity
  /// descending) and drop duplicates with the same code+where+subscript,
  /// keeping the most severe (first after the sort).
  void canonicalize();
};

}  // namespace blk::verify
