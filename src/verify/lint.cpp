#include "verify/lint.hpp"

#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/refs.hpp"
#include "analysis/sections.hpp"
#include "ir/validate.hpp"

namespace blk::verify {

using namespace blk::ir;
using analysis::Assumptions;

namespace {

[[nodiscard]] std::string describe_assign(const Assign& a) {
  std::ostringstream os;
  if (a.label != 0) os << a.label << ": ";
  os << a.lhs.name;
  if (a.lhs.is_array()) {
    os << "(";
    for (std::size_t i = 0; i < a.lhs.subs.size(); ++i) {
      if (i) os << ",";
      os << ir::to_string(a.lhs.subs[i]);
    }
    os << ")";
  }
  os << "=...";
  return os.str();
}

/// First textual read/write position of each scalar, with the path of the
/// earliest read (for the use-before-def diagnostic).
struct ScalarUse {
  int first_read = -1;
  int first_write = -1;
  std::string read_path;
};

struct Linter {
  Program& p;
  const LintOptions& opt;
  Report rep;

  std::vector<Loop*> loops;        ///< enclosing loops, outermost first
  std::vector<std::string> path;   ///< human-readable statement path
  std::vector<Assumptions> ctxs;   ///< assumption context per nesting level
  int if_depth = 0;
  int dead_depth = 0;  ///< > 0 inside a provably zero-trip loop
  int counter = 0;     ///< pre-order statement index
  std::map<std::string, ScalarUse> scalar_uses;

  explicit Linter(Program& prog, const LintOptions& o) : p(prog), opt(o) {
    ctxs.push_back(o.ctx ? *o.ctx : Assumptions{});
  }

  [[nodiscard]] std::string path_str() const {
    std::string out;
    for (const auto& seg : path) {
      if (!out.empty()) out += " > ";
      out += seg;
    }
    return out;
  }

  void note_scalar_read(const std::string& name) {
    if (!p.has_scalar(name)) return;
    auto& u = scalar_uses[name];
    if (u.first_read < 0) {
      u.first_read = counter;
      u.read_path = path_str();
    }
  }

  void note_scalar_write(const std::string& name) {
    if (!p.has_scalar(name)) return;
    auto& u = scalar_uses[name];
    if (u.first_write < 0) u.first_write = counter;
  }

  /// Scalars read from index position (free variables of subscripts and
  /// loop bounds that name declared scalars, e.g. the pivot row IMAX) and
  /// integer-array reads used as bounds (ArrayElem).
  void scan_iexpr(const IExpr& e) {
    switch (e.kind) {
      case IKind::Const:
        return;
      case IKind::Var:
        note_scalar_read(e.name);
        return;
      case IKind::ArrayElem:
        check_elem_bounds(e);
        scan_iexpr(*e.lhs);
        return;
      default:
        if (e.lhs) scan_iexpr(*e.lhs);
        if (e.rhs) scan_iexpr(*e.rhs);
        return;
    }
  }

  /// Bounds-check a rank-1 integer array used in index position.
  void check_elem_bounds(const IExpr& e) {
    if (!p.has_array(e.name) || p.array_decl(e.name).rank() != 1) return;
    std::vector<IExprPtr> subs{e.lhs};
    check_oob(e.name, subs, /*is_write=*/false);
  }

  void scan_vexpr(const VExpr& e) {
    switch (e.kind) {
      case VKind::Const:
        return;
      case VKind::ScalarRef:
        note_scalar_read(e.name);
        return;
      case VKind::IndexVal:
        if (e.index) scan_iexpr(*e.index);
        return;
      case VKind::ArrayRef:
        check_oob(e.name, e.subs, /*is_write=*/false);
        for (const auto& s : e.subs)
          if (s) scan_iexpr(*s);
        return;
      case VKind::Bin:
        if (e.lhs) scan_vexpr(*e.lhs);
        if (e.rhs) scan_vexpr(*e.rhs);
        return;
      case VKind::Un:
        if (e.lhs) scan_vexpr(*e.lhs);
        return;
    }
  }

  /// Intersect the bounded regular section of one reference (all enclosing
  /// loops swept over their full ranges) with the declared extents.  Under
  /// a provably zero-trip loop the access never happens, so nothing is
  /// reported; under an IF guard a provable violation is demoted to a
  /// warning (the guard may exclude the extreme iterations).
  void check_oob(const std::string& array, const std::vector<IExprPtr>& subs,
                 bool is_write) {
    if (dead_depth > 0) return;
    if (!p.has_array(array)) return;  // structural diagnostics cover this
    const ArrayDecl& decl = p.array_decl(array);
    if (decl.rank() != subs.size()) return;  // ditto (rank mismatch)
    for (const auto& s : subs)
      if (!s) return;

    analysis::RefInfo ref{.stmt = nullptr,
                          .owner = nullptr,
                          .is_write = is_write,
                          .array = array,
                          .subs = subs,
                          .loops = loops,
                          .textual_pos = counter};
    analysis::Section sec =
        analysis::section_of(ref, std::span<Loop* const>(loops));
    const Assumptions& ctx = ctxs.front();  // all loops expanded away

    for (std::size_t d = 0; d < decl.rank(); ++d) {
      const auto& t = sec.dims[d];
      if (!t.lb || !t.ub) {
        if (opt.pedantic)
          rep.add(Severity::Note, "unanalyzable-subscript",
                  "subscript " + std::to_string(d + 1) + " of " + array +
                      " defeats section analysis; bounds not checked",
                  path_str(), static_cast<int>(d + 1));
        continue;
      }
      bool above = ctx.ge(t.ub, iadd(decl.dims[d].ub, iconst(1)));
      bool below = ctx.le(t.lb, isub(decl.dims[d].lb, iconst(1)));
      if (above || below) {
        std::string extent = ir::to_string(decl.dims[d].lb) + ":" +
                             ir::to_string(decl.dims[d].ub);
        std::string msg = "subscript " + std::to_string(d + 1) + " of " +
                          array + " spans " + t.to_string() + " but " +
                          array + " is declared " + extent +
                          (above ? " (exceeds upper bound)"
                                 : " (below lower bound)");
        if (if_depth > 0)
          rep.add(Severity::Warning, "oob-subscript-guarded",
                  msg + "; an enclosing IF may exclude the violation",
                  path_str(), static_cast<int>(d + 1));
        else
          rep.add(Severity::Error, "oob-subscript", msg, path_str(),
                  static_cast<int>(d + 1));
        continue;
      }
      if (opt.pedantic &&
          !(ctx.ge(t.lb, decl.dims[d].lb) && ctx.le(t.ub, decl.dims[d].ub)))
        rep.add(Severity::Note, "unproven-bounds",
                "subscript " + std::to_string(d + 1) + " of " + array +
                    " spans " + t.to_string() +
                    ", not provably within the declared extent",
                path_str(), static_cast<int>(d + 1));
    }
  }

  void walk(StmtList& body) {
    for (auto& s : body) {
      if (!s) continue;  // structural diagnostics cover null statements
      ++counter;
      switch (s->kind()) {
        case SKind::Assign: {
          Assign& a = s->as_assign();
          path.push_back(describe_assign(a));
          // Fortran order: the RHS (and subscripts) read before the LHS
          // writes, so scan reads first for use-before-def precision.
          if (a.rhs) scan_vexpr(*a.rhs);
          if (a.lhs.is_array()) {
            check_oob(a.lhs.name, a.lhs.subs, /*is_write=*/true);
            for (const auto& sub : a.lhs.subs)
              if (sub) scan_iexpr(*sub);
          } else {
            note_scalar_write(a.lhs.name);
          }
          path.pop_back();
          break;
        }
        case SKind::Loop: {
          Loop& l = s->as_loop();
          path.push_back("DO " + l.var);
          if (l.lb) scan_iexpr(*l.lb);
          if (l.ub) scan_iexpr(*l.ub);
          if (l.step) scan_iexpr(*l.step);

          bool zero_trip = false;
          if (dead_depth == 0 && l.lb && l.ub && l.step) {
            const Assumptions& ctx = ctxs.back();
            bool descending =
                l.step->kind == IKind::Const && l.step->value < 0;
            zero_trip = descending
                            ? ctx.le(l.lb, isub(l.ub, iconst(1)))
                            : ctx.ge(l.lb, iadd(l.ub, iconst(1)));
            if (zero_trip)
              rep.add(Severity::Warning, "zero-trip-loop",
                      "loop " + l.var + " never executes: range " +
                          ir::to_string(l.lb) + ".." + ir::to_string(l.ub) +
                          " is provably empty under the assumptions",
                      path_str());
          }

          Assumptions inner = ctxs.back();
          if (l.lb && l.ub) inner.add_loop_range(l.var, l.lb, l.ub, l.step);
          ctxs.push_back(std::move(inner));
          loops.push_back(&l);
          if (zero_trip) ++dead_depth;
          walk(l.body);
          if (zero_trip) --dead_depth;
          loops.pop_back();
          ctxs.pop_back();
          path.pop_back();
          break;
        }
        case SKind::If: {
          If& f = s->as_if();
          path.push_back("IF (" + ir::to_string(f.cond) + ")");
          if (f.cond.lhs) scan_vexpr(*f.cond.lhs);
          if (f.cond.rhs) scan_vexpr(*f.cond.rhs);
          ++if_depth;
          walk(f.then_body);
          walk(f.else_body);
          --if_depth;
          path.pop_back();
          break;
        }
      }
    }
  }

  void report_scalar_uses() {
    for (const auto& [name, use] : scalar_uses) {
      if (use.first_write < 0) continue;  // never written: external input
      if (use.first_read >= 0 && use.first_read <= use.first_write)
        rep.add(Severity::Warning, "use-before-def",
                "scalar " + name +
                    " is read before its first write (textual order); "
                    "its initial value is undefined unless set externally",
                use.read_path);
    }
  }
};

}  // namespace

Report lint(Program& p, const LintOptions& opt) {
  Linter linter(p, opt);
  // Structural invariants first (undeclared names, rank mismatches with
  // subscript positions, shadowed induction variables, null nodes).
  for (auto& problem : ir::validate(p))
    linter.rep.add(Severity::Error, "structure", std::move(problem));
  linter.walk(p.body);
  linter.report_scalar_uses();
  linter.rep.canonicalize();
  return std::move(linter.rep);
}

}  // namespace blk::verify
