// IR lint: static well-formedness and plausibility checks over a whole
// program.
//
// Subsumes the structural validator (ir/validate) and layers semantic
// checks on top of the existing analyses:
//  * provably out-of-bounds subscripts — the bounded regular section of
//    each reference (analysis/sections) is intersected with the declared
//    extents under the symbolic assumption context;
//  * scalars read before any textual write (use-before-def);
//  * loops that provably never execute (zero-trip) under the assumptions;
//  * shadowed induction variables and every other structural invariant,
//    folded in from ir::validate as `structure` diagnostics.
//
// All findings flow through one entry point and carry statement paths, so
// a pass pipeline, the blk-verify CLI and the fuzzer render them the same
// way.
#pragma once

#include "analysis/assume.hpp"
#include "ir/program.hpp"
#include "verify/diagnostic.hpp"

namespace blk::verify {

struct LintOptions {
  /// Extra symbolic facts (driver hints like KS >= 1, K+KS-1 <= N-1) used
  /// for the bounds and zero-trip proofs.  May be null.
  const analysis::Assumptions* ctx = nullptr;
  /// Also report what could NOT be proven: subscripts whose sections defeat
  /// the sweep and references not provably in bounds (as notes).
  bool pedantic = false;
};

/// Lint `p`.  Errors mean the program is definitely broken (structural
/// violation or a subscript provably outside its declared extent on an
/// executed path); warnings flag likely bugs (use-before-def scalars,
/// zero-trip loops, guarded references that can stray out of bounds).
[[nodiscard]] Report lint(ir::Program& p, const LintOptions& opt = {});

}  // namespace blk::verify
