#include "verify/pipeline.hpp"

#include <sstream>

#include "ir/error.hpp"

namespace blk::verify {

Policy policy_for(std::string_view pass) {
  // Pure reordering passes: statement instances are moved, cloned or
  // re-indexed, but every value still flows the same way — the dependence
  // set must be preserved.
  static constexpr std::string_view kReordering[] = {
      "strip-mine",     "split",
      "split-trapezoid", "index-set-split",
      "interchange",    "distribute",
      "fuse",           "reverse",
      "unroll-and-jam", "unroll-and-jam-triangular",
      "normalize",      "skew",
  };
  for (std::string_view name : kReordering)
    if (pass == name) return Policy::Full;
  return Policy::LintOnly;
}

VerifiedPipeline::VerifiedPipeline(ir::Program& prog, DepCheckOptions opt)
    : prog_(prog), opt_(opt), prev_(transform::set_pass_observer(this)) {}

VerifiedPipeline::~VerifiedPipeline() {
  transform::set_pass_observer(prev_);
}

void VerifiedPipeline::before_pass(std::string_view /*name*/,
                                   ir::StmtList& /*root*/) {
  snapshots_.push_back(prog_.clone());
}

void VerifiedPipeline::after_pass(std::string_view name,
                                  ir::StmtList& /*root*/, bool committed) {
  if (snapshots_.empty()) return;  // unmatched callback; be defensive
  ir::Program pre = std::move(snapshots_.back());
  snapshots_.pop_back();

  StepReport step{.pass = std::string(name),
                  .committed = committed,
                  .policy = policy_for(name),
                  .report = {}};
  if (committed) {
    try {
      if (step.policy == Policy::Full)
        step.report.merge(check_dependence_preservation(pre, prog_, opt_));
      step.report.merge(lint(prog_, {.ctx = opt_.ctx, .pedantic = false}));
    } catch (const std::exception& e) {
      step.report.add(Severity::Error, "verifier-error",
                      std::string("verification itself failed: ") + e.what());
    }
  }
  steps_.push_back(std::move(step));
}

bool VerifiedPipeline::ok() const {
  for (const StepReport& s : steps_)
    if (!s.report.ok()) return false;
  return true;
}

Report VerifiedPipeline::combined() const {
  Report out;
  for (const StepReport& s : steps_) {
    for (Diagnostic d : s.report.diags) {
      d.message = "[after " + s.pass + "] " + d.message;
      out.diags.push_back(std::move(d));
    }
  }
  return out;
}

std::string VerifiedPipeline::to_string() const {
  std::ostringstream os;
  for (const StepReport& s : steps_) {
    os << s.pass << ": "
       << (!s.committed        ? "aborted (not verified)"
           : s.report.ok()     ? "ok"
                               : "FAILED")
       << (s.policy == Policy::Full && s.committed ? " [dep+lint]"
           : s.committed                           ? " [lint]"
                                                   : "")
       << "\n";
    for (const Diagnostic& d : s.report.diags) os << "  " << d.to_string()
                                                  << "\n";
  }
  return os.str();
}

void VerifiedPipeline::throw_if_failed() const {
  if (ok()) return;
  throw blk::Error("verified pipeline failed:\n" + to_string());
}

}  // namespace blk::verify
