// Verified transformation pipeline.
//
// VerifiedPipeline installs itself as the process-wide pass observer
// (transform/instrument) and translation-validates every transformation
// applied to one program while it is alive: the IR is snapshotted before
// each pass, and when the pass commits, the pre/post pair is checked.
//
// What is checked depends on the pass:
//  * reordering passes (strip-mine, split, split-trapezoid,
//    index-set-split, interchange, distribute, fuse, reverse,
//    unroll-and-jam[-triangular], normalize) preserve the set of data
//    dependences by construction — they get the full dependence-
//    preservation check plus a lint of the result;
//  * value-rewiring passes (scalar-replace[-carried], scalar-expand,
//    if-inspect[-auto]) and bound simplification legitimately change the
//    dependence structure (that is their purpose) — they get lint only.
//
// Passes that abort (trial-undo-throw legality refusals) are recorded but
// not verified: they restored the IR themselves.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/program.hpp"
#include "transform/instrument.hpp"
#include "verify/depcheck.hpp"
#include "verify/diagnostic.hpp"
#include "verify/lint.hpp"

namespace blk::verify {

/// What the pipeline verifies after a given pass.
enum class Policy : int { Full, LintOnly };

/// Verification policy for a pass name (unknown names get LintOnly —
/// a new pass must opt in to the dependence check explicitly).
[[nodiscard]] Policy policy_for(std::string_view pass);

/// Verification outcome for one observed pass application.
struct StepReport {
  std::string pass;
  bool committed = true;
  Policy policy = Policy::Full;
  Report report;  ///< empty for uncommitted passes
};

class VerifiedPipeline final : public transform::PassObserver {
 public:
  /// Starts observing passes applied to `prog`.  The previous observer is
  /// restored on destruction.  All passes run while this object is alive
  /// must target `prog` (there is one process-wide observer).
  explicit VerifiedPipeline(ir::Program& prog, DepCheckOptions opt = {});
  ~VerifiedPipeline() override;
  VerifiedPipeline(const VerifiedPipeline&) = delete;
  VerifiedPipeline& operator=(const VerifiedPipeline&) = delete;

  void before_pass(std::string_view name, ir::StmtList& root) override;
  void after_pass(std::string_view name, ir::StmtList& root,
                  bool committed) override;

  [[nodiscard]] const std::vector<StepReport>& steps() const {
    return steps_;
  }
  /// True when no verified step produced an error.
  [[nodiscard]] bool ok() const;
  /// All diagnostics across all steps, each prefixed with its pass name.
  [[nodiscard]] Report combined() const;
  [[nodiscard]] std::string to_string() const;
  /// Throws blk::Error carrying to_string() when !ok().
  void throw_if_failed() const;

 private:
  ir::Program& prog_;
  DepCheckOptions opt_;
  transform::PassObserver* prev_ = nullptr;
  std::vector<ir::Program> snapshots_;  ///< stack: nested passes nest scopes
  std::vector<StepReport> steps_;
};

/// Run `fn` under a VerifiedPipeline on `p` and return the combined
/// verification report (fn typically applies a sequence of passes).
template <typename Fn>
[[nodiscard]] Report verified(ir::Program& p, Fn&& fn,
                              DepCheckOptions opt = {}) {
  VerifiedPipeline vp(p, std::move(opt));
  std::forward<Fn>(fn)();
  return vp.combined();
}

}  // namespace blk::verify
