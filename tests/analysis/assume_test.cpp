// Tests for the symbolic assumption context and its MIN/MAX case-split
// proof machinery.
#include <gtest/gtest.h>

#include "analysis/assume.hpp"
#include "ir/builder.hpp"

namespace blk::analysis {
namespace {

using namespace blk::ir;
using namespace blk::ir::dsl;

TEST(Assume, ConstantFactsAreDirect) {
  Assumptions ctx;
  EXPECT_TRUE(ctx.ge(c(5), c(3)));
  EXPECT_FALSE(ctx.ge(c(3), c(5)));
  EXPECT_TRUE(ctx.eq(c(4), c(4)));
  EXPECT_TRUE(ctx.le(c(3), c(3)));
}

TEST(Assume, SingleFactChain) {
  Assumptions ctx;
  ctx.assert_ge(v("N"), c(10));
  EXPECT_TRUE(ctx.ge(v("N"), c(10)));
  EXPECT_TRUE(ctx.ge(v("N"), c(7)));    // N >= 10 >= 7
  EXPECT_FALSE(ctx.ge(v("N"), c(11)));  // not provable
  EXPECT_TRUE(ctx.ge(v("N") + 5, c(15)));
}

TEST(Assume, TwoFactChain) {
  Assumptions ctx;
  ctx.assert_le(v("KK"), v("K") + v("KS") - 1);
  ctx.assert_le(v("K") + v("KS") - 1, v("N") - 1);
  // KK <= K+KS-1 <= N-1 requires combining both facts.
  EXPECT_TRUE(ctx.le(v("KK"), v("N") - 1));
  EXPECT_TRUE(ctx.ge(v("N"), v("KK") + 1));
}

TEST(Assume, ThreeFactChain) {
  Assumptions ctx;
  ctx.assert_ge(v("A"), v("B"));
  ctx.assert_ge(v("B"), v("C"));
  ctx.assert_ge(v("C"), v("D"));
  EXPECT_TRUE(ctx.ge(v("A"), v("D")));
}

TEST(Assume, UnrelatedFactsDoNotProve) {
  Assumptions ctx;
  ctx.assert_ge(v("X"), c(0));
  ctx.assert_ge(v("Y"), c(0));
  EXPECT_FALSE(ctx.ge(v("X"), v("Y")));
}

TEST(Assume, LoopRangeFacts) {
  Assumptions ctx;
  Loop loop("I", iadd(ivar("K"), iconst(1)), ivar("N"), iconst(1));
  ctx.add_loop_range(loop);
  EXPECT_TRUE(ctx.ge(v("I"), v("K") + 1));
  EXPECT_TRUE(ctx.le(v("I"), v("N")));
  EXPECT_TRUE(ctx.ge(v("I"), v("K")));  // weaker consequence
}

TEST(Assume, MinUpperBoundDecomposes) {
  Assumptions ctx;
  Loop loop("KK", ivar("K"),
            imin(isub(iadd(ivar("K"), ivar("KS")), iconst(1)),
                 isub(ivar("N"), iconst(1))),
            iconst(1));
  ctx.add_loop_range(loop);
  // KK <= MIN(K+KS-1, N-1) gives both conjuncts.
  EXPECT_TRUE(ctx.le(v("KK"), v("K") + v("KS") - 1));
  EXPECT_TRUE(ctx.le(v("KK"), v("N") - 1));
}

TEST(Assume, MaxLowerBoundDecomposes) {
  Assumptions ctx;
  Loop loop("J", imax(iadd(ivar("KK"), iconst(1)), ivar("P")), ivar("N"),
            iconst(1));
  ctx.add_loop_range(loop);
  EXPECT_TRUE(ctx.ge(v("J"), v("KK") + 1));
  EXPECT_TRUE(ctx.ge(v("J"), v("P")));
}

TEST(Assume, NonnegExprCaseSplitsGoalMin) {
  Assumptions ctx;
  ctx.assert_ge(v("X"), v("A"));
  ctx.assert_ge(v("X"), v("B"));
  // X - MIN(A,B) >= 0 needs only one branch each... both hold here.
  EXPECT_TRUE(ctx.nonneg_expr(isub(v("X"), imin(v("A"), v("B")))));
  // X - MAX(A,B) >= 0 requires both branches; also provable.
  EXPECT_TRUE(ctx.nonneg_expr(isub(v("X"), imax(v("A"), v("B")))));
}

TEST(Assume, NonnegExprFailsWhenOneBranchFails) {
  Assumptions ctx;
  ctx.assert_ge(v("X"), v("A"));
  // X >= MAX(A,B) unprovable without X >= B.
  EXPECT_FALSE(ctx.nonneg_expr(isub(v("X"), imax(v("A"), v("B")))));
}

TEST(Assume, RawMinFactCaseSplits) {
  // J >= MIN(N, K+KS-1)+1 together with KK <= K+KS-1 and KK <= N-1 proves
  // J > KK: the fact's MIN must be case-split.
  Assumptions ctx;
  ctx.assert_ge(v("J"),
                imin(v("N"), v("K") + v("KS") - 1) + 1);
  ctx.assert_le(v("KK"), v("K") + v("KS") - 1);
  ctx.assert_le(v("KK"), v("N") - 1);
  EXPECT_TRUE(ctx.ge(v("J"), v("KK") + 1));
}

TEST(Assume, ResolveMinmaxUsesContext) {
  Assumptions ctx;
  ctx.assert_le(v("K") + v("KS") - 1, v("N") - 1);
  IExprPtr e = imin(isub(iadd(ivar("K"), ivar("KS")), iconst(1)),
                    isub(ivar("N"), iconst(1)));
  EXPECT_EQ(to_string(ctx.resolve_minmax(e)), "K+KS-1");
  // MAX resolves to the other side.
  IExprPtr m = imax(isub(iadd(ivar("K"), ivar("KS")), iconst(1)),
                    isub(ivar("N"), iconst(1)));
  EXPECT_EQ(to_string(ctx.resolve_minmax(m)), "N-1");
}

TEST(Assume, ResolveMinmaxKeepsUnresolvable) {
  Assumptions ctx;
  IExprPtr e = imin(ivar("A"), ivar("B"));
  EXPECT_EQ(to_string(ctx.resolve_minmax(e)), "MIN(A,B)");
}

TEST(Assume, ResolveMinmaxRecursesThroughArithmetic) {
  Assumptions ctx;
  ctx.assert_ge(v("A"), v("B"));
  IExprPtr e = iadd(imin(ivar("A"), ivar("B")), iconst(1));
  EXPECT_EQ(to_string(ctx.resolve_minmax(e)), "B+1");
}

TEST(Assume, EqViaBidirectionalProof) {
  Assumptions ctx;
  ctx.assert_ge(v("A"), v("B"));
  ctx.assert_ge(v("B"), v("A"));
  EXPECT_TRUE(ctx.eq(v("A"), v("B")));
}

TEST(Assume, ConstantAssertionsIgnored) {
  Assumptions ctx;
  ctx.assert_ge(c(1), c(0));  // carries no information
  EXPECT_EQ(ctx.fact_count(), 0u);
}

TEST(Assume, NestedMinMaxFactIsConjunctive) {
  Assumptions ctx;
  ctx.assert_le(v("KK"), imin(v("K") + v("KS") - 1, v("N") - 1));
  // KK <= MIN(a,b) implies KK <= a AND KK <= b (the MIN sits in positive
  // position in the fact), so both consequences are provable.
  EXPECT_TRUE(ctx.ge(v("N"), v("KK") + 1));
  EXPECT_TRUE(ctx.le(v("KK"), v("K") + v("KS") - 1));
  // But nothing false becomes provable.
  EXPECT_FALSE(ctx.ge(v("KK"), v("N")));
}

TEST(Assume, DisjunctiveGoalNeedsOnlyOneBranch) {
  // J > MIN(a,b) is provable from J > a alone (MIN in negative position).
  Assumptions ctx;
  ctx.assert_ge(v("J"), v("A") + 1);
  EXPECT_TRUE(ctx.ge(v("J"), imin(v("A"), v("B")) + 1));
  // J > MAX(a,b) needs both.
  EXPECT_FALSE(ctx.ge(v("J"), imax(v("A"), v("B")) + 1));
  ctx.assert_ge(v("J"), v("B") + 1);
  EXPECT_TRUE(ctx.ge(v("J"), imax(v("A"), v("B")) + 1));
}

}  // namespace
}  // namespace blk::analysis
