// Dependence-testing tests: classical subscript tests, direction vectors,
// and the symbolic Banerjee screen.
#include <gtest/gtest.h>

#include "analysis/ddtest.hpp"
#include "ir/builder.hpp"
#include "kernels/ir_kernels.hpp"

namespace blk::analysis {
namespace {

using namespace blk::ir;
using namespace blk::ir::dsl;

/// Find the first dependence of the given type between the named arrays'
/// accesses (nullptr if none).
const Dependence* find_dep(const std::vector<Dependence>& deps, DepType t) {
  for (const auto& d : deps)
    if (d.type == t) return &d;
  return nullptr;
}

TEST(DDTest, StrongSivCarriedFlow) {
  // DO I: A(I) = A(I-5) + 1  -- flow dependence, distance 5, carried.
  Program p;
  p.param("N");
  p.array_bounds("A", {{.lb = isub(c(0), c(10)), .ub = v("N")}});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {v("I")}), a("A", {v("I") - 5}) + f(1.0))));
  auto deps = all_dependences(p.body);
  const Dependence* d = find_dep(deps, DepType::Flow);
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->depth(), 1u);
  EXPECT_EQ(d->distance_at(0), 5);
  EXPECT_TRUE(d->carried_at(0));
  EXPECT_FALSE(d->loop_independent());
}

TEST(DDTest, StrongSivAntiWhenReadAhead) {
  // DO I: A(I) = A(I+3) -- the read is of a *later* iteration's write:
  // antidependence from the read to the write, distance 3.
  Program p;
  p.param("N");
  p.array("A", {iadd(v("N"), c(3))});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {v("I")}), a("A", {v("I") + 3}))));
  auto deps = all_dependences(p.body);
  const Dependence* d = find_dep(deps, DepType::Anti);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->distance_at(0), 3);
  EXPECT_EQ(find_dep(deps, DepType::Flow), nullptr);
}

TEST(DDTest, ZivDistinctConstantsNoDependence) {
  // A(1) and A(2) never conflict.
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.add(loop("I", c(1), v("N"), assign(lv("A", {c(1)}), a("A", {c(2)}))));
  auto deps = all_dependences(p.body);
  EXPECT_EQ(find_dep(deps, DepType::Flow), nullptr);
  EXPECT_EQ(find_dep(deps, DepType::Anti), nullptr);
  // But the write A(1) conflicts with itself across iterations (output).
  EXPECT_NE(find_dep(deps, DepType::Output), nullptr);
}

TEST(DDTest, GcdTestKillsParityMismatch) {
  // A(2*I) = A(2*I+1): even vs odd subscripts never meet.
  Program p;
  p.param("N");
  p.array("A", {imul(c(2), v("N")) + 1});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {imul(c(2), v("I"))}),
                    a("A", {imul(c(2), v("I")) + 1}))));
  auto deps = all_dependences(p.body);
  EXPECT_EQ(find_dep(deps, DepType::Flow), nullptr);
  EXPECT_EQ(find_dep(deps, DepType::Anti), nullptr);
}

TEST(DDTest, SymbolicConstantDistanceUnknownIsConservative) {
  // A(I) vs A(I+M): M symbolic -- must assume a dependence may exist.
  Program p;
  p.param("N");
  p.param("M");
  p.array("A", {iadd(v("N"), v("M"))});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {v("I")}), a("A", {v("I") + v("M")}))));
  auto deps = all_dependences(p.body);
  EXPECT_TRUE(find_dep(deps, DepType::Flow) != nullptr ||
              find_dep(deps, DepType::Anti) != nullptr);
}

TEST(DDTest, TwoDimensionalDistanceVector) {
  // A(I,J) = A(I-1,J+1): classic (1,-1) distance -> interchange-hostile.
  Program p;
  p.param("N");
  p.array("A", {iadd(v("N"), c(2)), iadd(v("N"), c(2))});
  p.add(loop("I", c(2), v("N"),
             loop("J", c(1), v("N"),
                  assign(lv("A", {v("I"), v("J")}),
                         a("A", {v("I") - 1, v("J") + 1})))));
  auto deps = all_dependences(p.body);
  const Dependence* d = find_dep(deps, DepType::Flow);
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->depth(), 2u);
  EXPECT_EQ(d->distance_at(0), 1);
  EXPECT_EQ(d->distance_at(1), -1);
  ASSERT_EQ(d->vectors.size(), 1u);
  EXPECT_EQ(d->vectors[0][0], Dir::LT);
  EXPECT_EQ(d->vectors[0][1], Dir::GT);
}

TEST(DDTest, LoopIndependentWithinIteration) {
  // B(I) = A(I); C(I) = B(I): loop-independent flow B -> use.
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.array("B", {v("N")});
  p.array("C", {v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("B", {v("I")}), a("A", {v("I")})),
             assign(lv("C", {v("I")}), a("B", {v("I")}))));
  auto deps = all_dependences(p.body);
  const Dependence* d = nullptr;
  for (const auto& dep : deps)
    if (dep.type == DepType::Flow && dep.src.array == "B") d = &dep;
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->loop_independent());
  EXPECT_FALSE(d->carried_at(0));
}

TEST(DDTest, ReductionSelfOutputDependence) {
  // S(I) accumulation inside a K loop carries an output self-dependence.
  Program p;
  p.param("N");
  p.array("S", {v("N")});
  p.array("A", {v("N"), v("N")});
  p.add(loop("I", c(1), v("N"),
             loop("K", c(1), v("N"),
                  assign(lv("S", {v("I")}),
                         a("S", {v("I")}) + a("A", {v("I"), v("K")})))));
  auto deps = all_dependences(p.body);
  const Dependence* d = find_dep(deps, DepType::Output);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->carried_at(1));   // carried by K
  EXPECT_FALSE(d->carried_at(0));  // I distance is 0
}

TEST(DDTest, ScalarsConflictConservatively) {
  // T = A(I); B(I) = T: every pair of T accesses conflicts (rank 0).
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.array("B", {v("N")});
  p.scalar("T");
  p.add(loop("I", c(1), v("N"),
             assign(lvs("T"), a("A", {v("I")})),
             assign(lv("B", {v("I")}), s("T"))));
  auto deps = all_dependences(p.body);
  bool t_flow = false, t_anti = false;
  for (const auto& d : deps) {
    if (d.src.array != "T") continue;
    if (d.type == DepType::Flow) t_flow = true;
    if (d.type == DepType::Anti) t_anti = true;
  }
  EXPECT_TRUE(t_flow);  // T written then read
  EXPECT_TRUE(t_anti);  // read then re-written next iteration
}

TEST(DDTest, BanerjeeScreenSeparatesDisjointColumns) {
  // DO K / DO J1 = 1,K ... A(J1) / DO J2 = K+1,N ... A(J2):
  // writes in [1,K] never meet reads in [K+1,N].
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.array("B", {v("N")});
  p.add(loop("K", c(1), v("N") - 1,
             loop("J1", c(1), v("K"),
                  assign(lv("A", {v("J1")}), f(1.0))),
             loop("J2", v("K") + 1, v("N"),
                  assign(lv("B", {v("J2")}), a("A", {v("J2")})))));
  auto deps = all_dependences(p.body);
  // The only A-to-A pairs must carry no flow edge from the J1 write into
  // the J2 read at equal K (the screen proves J1 <= K < J2)... dependences
  // across different K iterations (write at K, read at K' > K) are real
  // though: A(J1<=K) written, later read when J2 range has dropped to
  // J2 > K' -- still disjoint?  J2 > K' >= K+1 > J1 only when K' >= K.
  // For K' > K: read range [K'+1, N], write range [1, K] with K < K'+1:
  // disjoint.  So no flow at all.
  for (const auto& d : deps) {
    if (d.src.array == "A" && d.type == DepType::Flow &&
        d.dst.stmt != d.src.stmt)
      FAIL() << "spurious dependence: " << d.to_string();
  }
}

TEST(DDTest, InputDependencesOnlyOnRequest) {
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.array("B", {v("N")});
  p.array("C", {v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("B", {v("I")}), a("A", {v("I")})),
             assign(lv("C", {v("I")}), a("A", {v("I")}))));
  EXPECT_EQ(find_dep(all_dependences(p.body), DepType::Input), nullptr);
  EXPECT_NE(find_dep(all_dependences(p.body, {.include_inputs = true}),
                     DepType::Input),
            nullptr);
}

TEST(DDTest, LuRecurrenceDetected) {
  // The paper's LU kernel: statements 20 and 10 form a K-carried cycle.
  Program p = blk::kernels::lu_point_ir();
  auto deps = all_dependences(p.body);
  bool flow_20_to_10 = false, flow_10_to_20 = false;
  for (const auto& d : deps) {
    if (d.type != DepType::Flow || !d.src.stmt || !d.dst.stmt) continue;
    if (d.src.stmt->label == 20 && d.dst.stmt->label == 10)
      flow_20_to_10 = true;
    if (d.src.stmt->label == 10 && d.dst.stmt->label == 20 &&
        d.carried_at(0))
      flow_10_to_20 = true;
  }
  EXPECT_TRUE(flow_20_to_10);
  EXPECT_TRUE(flow_10_to_20);
}

TEST(DDTest, DirectionVectorPrinting) {
  Program p;
  p.param("N");
  p.array("A", {iadd(v("N"), c(1))});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {v("I")}), a("A", {v("I") - 1}))));
  auto deps = all_dependences(p.body);
  const Dependence* d = find_dep(deps, DepType::Flow);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->to_string().find("(<)"), std::string::npos);
}

TEST(DDTest, WeakZeroSivIsConservative) {
  // A(5) = A(I): the constant-vs-variable pair cannot be resolved without
  // bounds reasoning, so a dependence must be assumed.
  Program p;
  p.param("N");
  p.array("A", {v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {c(5)}), a("A", {v("I")}))));
  auto deps = all_dependences(p.body);
  bool any = false;
  for (const auto& d : deps)
    if (d.type == DepType::Anti || d.type == DepType::Flow) any = true;
  EXPECT_TRUE(any);
}

TEST(DDTest, WeakCrossingSivIsConservative) {
  // A(I) = A(N-I): coefficients +1/-1 cross somewhere in the range.
  Program p;
  p.param("N");
  p.array_bounds("A", {{.lb = c(0), .ub = v("N")}});
  p.add(loop("I", c(1), v("N") - 1,
             assign(lv("A", {v("I")}), a("A", {v("N") - v("I")}))));
  auto deps = all_dependences(p.body);
  EXPECT_FALSE(deps.empty());
}

TEST(DDTest, ScreenUsesTriangularBounds) {
  // DO I / DO J = I+1, N: A(I,...) write vs A(J,...) read — J > I always,
  // so same-iteration aliasing on dimension 0 is impossible; only the
  // carried dependence (write at I, read when some later J' equals it...
  // J' > I' >= ... ) survives as real.
  Program p;
  p.param("N");
  p.array("A", {v("N"), v("N")});
  p.add(loop("I", c(1), v("N") - 1,
             loop("J", v("I") + 1, v("N"),
                  assign(lv("A", {v("I"), v("J")}),
                         a("A", {v("J"), v("I")})))));
  auto deps = all_dependences(p.body);
  for (const auto& d : deps) {
    if (d.src.array != "A" || d.src.stmt == nullptr) continue;
    // No loop-independent self-aliasing: every surviving vector must have
    // a non-EQ component.
    for (const auto& vct : d.vectors) {
      bool all_eq = true;
      for (auto dir : vct) all_eq &= (dir == Dir::EQ);
      EXPECT_FALSE(all_eq) << d.to_string();
    }
  }
}

TEST(DDTest, SameCellConstantSubscriptsConflict) {
  // A(3,7) written and read by every iteration: carried both ways.
  Program p;
  p.param("N");
  p.array("A", {v("N"), v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {c(3), c(7)}),
                    a("A", {c(3), c(7)}) + f(1.0))));
  auto deps = all_dependences(p.body);
  const Dependence* flow = find_dep(deps, DepType::Flow);
  ASSERT_NE(flow, nullptr);
  EXPECT_TRUE(flow->carried_at(0));
}

TEST(DDTest, RankMismatchCommonPrefixOnly) {
  // B(I) vs B(I,?) cannot happen (declared rank fixed); instead check a
  // 2-D pair where only one dim constrains: A(I,1) vs A(I,2) never alias.
  Program p;
  p.param("N");
  p.array("A", {v("N"), c(2)});
  p.add(loop("I", c(1), v("N"),
             assign(lv("A", {v("I"), c(1)}), a("A", {v("I"), c(2)}))));
  auto deps = all_dependences(p.body);
  EXPECT_EQ(find_dep(deps, DepType::Flow), nullptr);
  EXPECT_EQ(find_dep(deps, DepType::Anti), nullptr);
}

TEST(DDTest, DistanceFiveAcrossTwoStatements) {
  // S1: B(I) = A(I); S2: A(I-5) = 0 — S2's write at iteration i feeds
  // nothing (it trails the read), so the read-then-write order makes an
  // antidependence from S1's read at i-5 to S2's write at i: distance 5.
  Program p;
  p.param("N");
  p.array_bounds("A", {{.lb = isub(c(0), c(5)), .ub = v("N")}});
  p.array("B", {v("N")});
  p.add(loop("I", c(1), v("N"),
             assign(lv("B", {v("I")}), a("A", {v("I")})),
             assign(lv("A", {v("I") - 5}), f(0.0))));
  auto deps = all_dependences(p.body);
  const Dependence* d = nullptr;
  for (const auto& q : deps)
    if (q.type == DepType::Anti && q.src.array == "A") d = &q;
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->distance_at(0), 5);
  EXPECT_TRUE(d->carried_at(0));
}

}  // namespace
}  // namespace blk::analysis
